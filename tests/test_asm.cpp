// Assembler tests: directives, labels, expressions, pseudo-instructions,
// error reporting, and golden encodings.
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "common/error.hpp"
#include "isa/encoding.hpp"

namespace focs::assembler {
namespace {

TEST(Assembler, MinimalProgram) {
    const Program p = assemble("_start:\n  l.nop 0x1\n");
    EXPECT_EQ(p.entry(), 0u);
    EXPECT_EQ(p.word_at(0), 0x15000001u);
}

TEST(Assembler, EntryDefaultsToTextBaseWithoutStart) {
    const Program p = assemble("  l.nop\n");
    EXPECT_EQ(p.entry(), 0u);
}

TEST(Assembler, LabelsAndBranches) {
    const Program p = assemble(R"(
_start:
  l.addi r5, r0, 3
loop:
  l.addi r5, r5, -1
  l.sfgts r5, r0
  l.bf loop
  l.nop
  l.nop 0x1
)");
    // l.bf loop: loop is 8 bytes behind the branch at 0x8 -> offset -2 words.
    const auto branch = isa::decode(p.word_at(0xc));
    EXPECT_EQ(branch.opcode, isa::Opcode::kBf);
    EXPECT_EQ(branch.imm, -2);
}

TEST(Assembler, ForwardReferences) {
    const Program p = assemble(R"(
_start:
  l.j end
  l.nop
  l.nop
end:
  l.nop 0x1
)");
    const auto jump = isa::decode(p.word_at(0));
    EXPECT_EQ(jump.opcode, isa::Opcode::kJ);
    EXPECT_EQ(jump.imm, 3);
}

TEST(Assembler, DataDirectivesBigEndian) {
    const Program p = assemble(R"(
.data
values:
  .word 0x11223344, 1
  .half 0xaabb
  .byte 0x7f, 0x80
  .space 2, 0xee
str:
  .asciz "Hi\n"
)");
    EXPECT_EQ(p.word_at(kDataBase), 0x11223344u);
    EXPECT_EQ(p.word_at(kDataBase + 4), 1u);
    EXPECT_EQ(p.bytes().at(kDataBase + 8), 0xaa);
    EXPECT_EQ(p.bytes().at(kDataBase + 9), 0xbb);
    EXPECT_EQ(p.bytes().at(kDataBase + 10), 0x7f);
    EXPECT_EQ(p.bytes().at(kDataBase + 11), 0x80);
    EXPECT_EQ(p.bytes().at(kDataBase + 12), 0xee);
    EXPECT_EQ(p.bytes().at(kDataBase + 13), 0xee);
    EXPECT_EQ(p.bytes().at(kDataBase + 14), 'H');
    EXPECT_EQ(p.bytes().at(kDataBase + 16), '\n');
    EXPECT_EQ(p.bytes().at(kDataBase + 17), 0);
    const auto str = p.symbol("str");
    ASSERT_TRUE(str.has_value());
    EXPECT_EQ(*str, kDataBase + 14);
}

TEST(Assembler, AlignDirective) {
    const Program p = assemble(".data\n.byte 1\n.align 8\naligned: .word 2\n");
    const auto sym = p.symbol("aligned");
    ASSERT_TRUE(sym.has_value());
    EXPECT_EQ(*sym % 8, 0u);
}

TEST(Assembler, HiLoRelocationOperators) {
    const Program p = assemble(R"(
_start:
  l.movhi r5, hi(target)
  l.ori r5, r5, lo(target)
  l.nop 0x1
.data
.org 0x00123456 - 2
.align 2
target: .word 0
)");
    const auto hi = isa::decode(p.word_at(0));
    const auto lo = isa::decode(p.word_at(4));
    const auto target = *p.symbol("target");
    EXPECT_EQ(static_cast<std::uint32_t>(hi.imm), target >> 16);
    EXPECT_EQ(static_cast<std::uint32_t>(lo.imm), target & 0xffffu);
}

TEST(Assembler, LiPseudoExpandsToMovhiOri) {
    const Program p = assemble("_start:\n  l.li r7, 0xdeadbeef\n  l.nop 0x1\n");
    const auto first = isa::decode(p.word_at(0));
    const auto second = isa::decode(p.word_at(4));
    EXPECT_EQ(first.opcode, isa::Opcode::kMovhi);
    EXPECT_EQ(static_cast<std::uint32_t>(first.imm), 0xdeadu);
    EXPECT_EQ(second.opcode, isa::Opcode::kOri);
    EXPECT_EQ(static_cast<std::uint32_t>(second.imm), 0xbeefu);
    EXPECT_EQ(second.ra, 7);
    EXPECT_EQ(second.rd, 7);
}

TEST(Assembler, MovPseudo) {
    const Program p = assemble("_start:\n  l.mov r5, r6\n  l.nop 0x1\n");
    const auto inst = isa::decode(p.word_at(0));
    EXPECT_EQ(inst.opcode, isa::Opcode::kOri);
    EXPECT_EQ(inst.rd, 5);
    EXPECT_EQ(inst.ra, 6);
    EXPECT_EQ(inst.imm, 0);
}

TEST(Assembler, EquConstants) {
    const Program p = assemble(R"(
.equ COUNT, 5
.equ DOUBLE, COUNT + COUNT
_start:
  l.addi r5, r0, DOUBLE
  l.nop 0x1
)");
    EXPECT_EQ(isa::decode(p.word_at(0)).imm, 10);
}

TEST(Assembler, Expressions) {
    const Program p = assemble(R"(
.equ BASE, 0x100
_start:
  l.addi r5, r0, BASE + 4
  l.addi r6, r0, (BASE - 0x80) + 2
  l.addi r7, r0, -BASE
  l.nop 0x1
)");
    EXPECT_EQ(isa::decode(p.word_at(0)).imm, 0x104);
    EXPECT_EQ(isa::decode(p.word_at(4)).imm, 0x82);
    EXPECT_EQ(isa::decode(p.word_at(8)).imm, -0x100);
}

TEST(Assembler, MemoryOperands) {
    const Program p = assemble(R"(
_start:
  l.lwz r4, 8(r2)
  l.sw -4(r2), r5
  l.lbz r6, (r3)
  l.nop 0x1
)");
    const auto load = isa::decode(p.word_at(0));
    EXPECT_EQ(load.opcode, isa::Opcode::kLwz);
    EXPECT_EQ(load.ra, 2);
    EXPECT_EQ(load.imm, 8);
    const auto store = isa::decode(p.word_at(4));
    EXPECT_EQ(store.imm, -4);
    EXPECT_EQ(store.rb, 5);
    EXPECT_EQ(isa::decode(p.word_at(8)).imm, 0);
}

TEST(Assembler, CommentsAndBlankLines) {
    const Program p = assemble(R"(
# hash comment
; semi comment
// slash comment
_start:  l.nop 0x1   ; trailing
)");
    EXPECT_EQ(p.word_at(0), 0x15000001u);
}

TEST(Assembler, JumpTableWords) {
    const Program p = assemble(R"(
_start:
a: l.nop
b: l.nop 0x1
.data
tab: .word a, b
)");
    EXPECT_EQ(p.word_at(kDataBase), 0u);
    EXPECT_EQ(p.word_at(kDataBase + 4), 4u);
}

// ---- Error handling ----------------------------------------------------

TEST(AssemblerErrors, UnknownMnemonic) {
    EXPECT_THROW(assemble("  l.bogus r1, r2, r3\n"), ParseError);
}

TEST(AssemblerErrors, UndefinedSymbol) {
    EXPECT_THROW(assemble("  l.j nowhere\n  l.nop\n"), ParseError);
}

TEST(AssemblerErrors, DuplicateLabel) {
    EXPECT_THROW(assemble("x:\n l.nop\nx:\n l.nop\n"), ParseError);
}

TEST(AssemblerErrors, ImmediateOutOfRange) {
    EXPECT_THROW(assemble("  l.addi r1, r0, 40000\n"), ParseError);
    EXPECT_THROW(assemble("  l.andi r1, r0, 0x10000\n"), ParseError);
    EXPECT_THROW(assemble("  l.slli r1, r1, 64\n"), ParseError);
}

TEST(AssemblerErrors, WrongOperandCount) {
    EXPECT_THROW(assemble("  l.add r1, r2\n"), ParseError);
    EXPECT_THROW(assemble("  l.jr r1, r2\n"), ParseError);
}

TEST(AssemblerErrors, BadRegister) {
    EXPECT_THROW(assemble("  l.add r1, r2, r32\n"), ParseError);
    EXPECT_THROW(assemble("  l.add r1, r2, x3\n"), ParseError);
}

TEST(AssemblerErrors, MisalignedBranchTarget) {
    EXPECT_THROW(assemble(".equ odd, 0x102\n  l.j odd + 1\n  l.nop\n"), ParseError);
}

TEST(AssemblerErrors, LineNumberReported) {
    try {
        assemble("  l.nop\n  l.nop\n  l.frobnicate\n");
        FAIL() << "expected ParseError";
    } catch (const ParseError& e) {
        EXPECT_EQ(e.line(), 3);
    }
}

TEST(Assembler, ListingContainsDisassembly) {
    const Program p = assemble("_start:\n  l.addi r3, r0, 7\n  l.nop 0x1\n");
    const std::string listing = p.listing_text();
    EXPECT_NE(listing.find("l.addi r3,r0,7"), std::string::npos);
}

}  // namespace
}  // namespace focs::assembler
