// Pipeline simulator tests: instruction semantics (architectural results),
// forwarding/hazard behaviour, delay slots, redirect penalties, memory
// system and simulation control.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "test_util.hpp"

namespace focs::sim {
namespace {

using test::exit_seq;
using test::run_asm;

std::uint32_t reg(const test::RunOutcome& o, int r) {
    return o.registers[static_cast<std::size_t>(r)];
}

// ---- ALU semantics (parameterized) ---------------------------------------

struct AluCase {
    const char* name;
    const char* body;          ///< writes result to r11 from r5 (a) and r6 (b)
    std::uint32_t a, b;
    std::uint32_t expected;
};

class AluSemantics : public ::testing::TestWithParam<AluCase> {};

TEST_P(AluSemantics, Result) {
    const AluCase& c = GetParam();
    std::string source = "_start:\n";
    source += "  l.li r5, " + std::to_string(c.a) + "\n";
    source += "  l.li r6, " + std::to_string(c.b) + "\n";
    source += std::string(c.body) + "\n";
    source += exit_seq();
    const auto outcome = run_asm(source);
    EXPECT_EQ(reg(outcome, 11), c.expected) << c.name;
}

constexpr AluCase kAluCases[] = {
    {"add", "  l.add r11, r5, r6", 2, 3, 5},
    {"add_wrap", "  l.add r11, r5, r6", 0xffffffffu, 1, 0},
    {"addi_neg", "  l.addi r11, r5, -1", 10, 0, 9},
    {"sub", "  l.sub r11, r5, r6", 3, 10, 0xfffffff9u},
    {"and", "  l.and r11, r5, r6", 0xff00ff00u, 0x0ff00ff0u, 0x0f000f00u},
    {"andi", "  l.andi r11, r5, 0xff00", 0x12345678u, 0, 0x5600u},
    {"or", "  l.or r11, r5, r6", 0xf0f00000u, 0x0000f0f0u, 0xf0f0f0f0u},
    {"ori", "  l.ori r11, r5, 0x00ff", 0x12340000u, 0, 0x123400ffu},
    {"xor", "  l.xor r11, r5, r6", 0xaaaaaaaau, 0xffffffffu, 0x55555555u},
    {"xori_signext", "  l.xori r11, r5, -1", 0x0f0f0f0fu, 0, 0xf0f0f0f0u},
    {"mul", "  l.mul r11, r5, r6", 7, 6, 42},
    {"mul_wrap", "  l.mul r11, r5, r6", 0x10000u, 0x10000u, 0},
    {"mul_signed_low", "  l.mul r11, r5, r6", 0xffffffffu, 5, 0xfffffffbu},
    {"muli", "  l.muli r11, r5, -3", 7, 0, 0xffffffebu},
    {"div", "  l.div r11, r5, r6", 0xffffffe2u, 5, 0xfffffffau},  // -30/5 = -6
    {"div_pos", "  l.div r11, r5, r6", 30, 5, 6},
    {"div_by_zero", "  l.div r11, r5, r6", 30, 0, 0},
    {"divu", "  l.divu r11, r5, r6", 0xffffffffu, 16, 0x0fffffffu},
    {"divu_by_zero", "  l.divu r11, r5, r6", 5, 0, 0},
    {"sll", "  l.sll r11, r5, r6", 1, 31, 0x80000000u},
    {"sll_mask", "  l.sll r11, r5, r6", 1, 33, 2},  // amount masked to 5 bits
    {"slli", "  l.slli r11, r5, 4", 0x0000000fu, 0, 0xf0u},
    {"srl", "  l.srl r11, r5, r6", 0x80000000u, 31, 1},
    {"srli", "  l.srli r11, r5, 8", 0xaabbccddu, 0, 0x00aabbccu},
    {"sra_neg", "  l.sra r11, r5, r6", 0x80000000u, 4, 0xf8000000u},
    {"srai_pos", "  l.srai r11, r5, 4", 0x40000000u, 0, 0x04000000u},
    {"ror", "  l.ror r11, r5, r6", 0x80000001u, 1, 0xc0000000u},
    {"rori", "  l.rori r11, r5, 8", 0x11223344u, 0, 0x44112233u},
    {"rori_zero", "  l.rori r11, r5, 0", 0x12345678u, 0, 0x12345678u},
    {"movhi", "  l.movhi r11, 0xabcd", 0, 0, 0xabcd0000u},
    {"mulu", "  l.mulu r11, r5, r6", 0xffffffffu, 2, 0xfffffffeu},
    {"exths_neg", "  l.exths r11, r5", 0x1234ff80u, 0, 0xffffff80u},
    {"exths_pos", "  l.exths r11, r5", 0xffff7fffu, 0, 0x00007fffu},
    {"extbs", "  l.extbs r11, r5", 0x123456f0u, 0, 0xfffffff0u},
    {"exthz", "  l.exthz r11, r5", 0xabcdef01u, 0, 0x0000ef01u},
    {"extbz", "  l.extbz r11, r5", 0xabcdef81u, 0, 0x00000081u},
    {"extws", "  l.extws r11, r5", 0xdeadbeefu, 0, 0xdeadbeefu},
    {"extwz", "  l.extwz r11, r5", 0xdeadbeefu, 0, 0xdeadbeefu},
    {"ff1_lsb", "  l.ff1 r11, r5", 0x00000001u, 0, 1},
    {"ff1_mid", "  l.ff1 r11, r5", 0x00010000u, 0, 17},
    {"ff1_zero", "  l.ff1 r11, r5", 0, 0, 0},
    {"fl1_msb", "  l.fl1 r11, r5", 0x80000000u, 0, 32},
    {"fl1_mixed", "  l.fl1 r11, r5", 0x00010400u, 0, 17},
    {"fl1_zero", "  l.fl1 r11, r5", 0, 0, 0},
};

TEST(Cmov, SelectsOnFlag) {
    const auto taken = run_asm(std::string(R"(
_start:
  l.addi r5, r0, 11
  l.addi r6, r0, 22
  l.sfeq r0, r0
  l.cmov r11, r5, r6     ; flag true -> rA
  l.sfne r0, r0
  l.cmov r12, r5, r6     ; flag false -> rB
)") + exit_seq());
    EXPECT_EQ(reg(taken, 11), 11u);
    EXPECT_EQ(reg(taken, 12), 22u);
}

TEST(Cmov, UsesForwardedFlag) {
    // The flag producer is immediately ahead of the cmov in the pipeline.
    const auto o = run_asm(std::string(R"(
_start:
  l.addi r5, r0, 7
  l.addi r6, r0, 9
  l.sfgts r6, r5
  l.cmov r11, r6, r5     ; expect max(7, 9) = 9
)") + exit_seq());
    EXPECT_EQ(reg(o, 11), 9u);
}

INSTANTIATE_TEST_SUITE_P(Ops, AluSemantics, ::testing::ValuesIn(kAluCases),
                         [](const ::testing::TestParamInfo<AluCase>& info) {
                             return std::string(info.param.name);
                         });

// ---- Set-flag semantics ---------------------------------------------------

struct FlagCase {
    const char* name;
    const char* compare;  ///< full compare instruction using r5, r6
    std::uint32_t a, b;
    bool expected;
};

class FlagSemantics : public ::testing::TestWithParam<FlagCase> {};

TEST_P(FlagSemantics, Flag) {
    const FlagCase& c = GetParam();
    std::string source = "_start:\n";
    source += "  l.li r5, " + std::to_string(c.a) + "\n";
    source += "  l.li r6, " + std::to_string(c.b) + "\n";
    source += std::string(c.compare) + "\n";
    source += exit_seq();
    const auto outcome = run_asm(source);
    EXPECT_EQ(outcome.flag, c.expected) << c.name;
}

constexpr FlagCase kFlagCases[] = {
    {"eq_true", "  l.sfeq r5, r6", 5, 5, true},
    {"eq_false", "  l.sfeq r5, r6", 5, 6, false},
    {"ne_true", "  l.sfne r5, r6", 5, 6, true},
    {"gtu_wraps", "  l.sfgtu r5, r6", 0xffffffffu, 1, true},
    {"gts_signed", "  l.sfgts r5, r6", 0xffffffffu, 1, false},  // -1 > 1 is false
    {"ges_equal", "  l.sfges r5, r6", 7, 7, true},
    {"ltu", "  l.sfltu r5, r6", 1, 0xffffffffu, true},
    {"lts_signed", "  l.sflts r5, r6", 0x80000000u, 0, true},  // INT_MIN < 0
    {"leu_equal", "  l.sfleu r5, r6", 9, 9, true},
    {"les_false", "  l.sfles r5, r6", 3, 0xfffffffeu, false},  // 3 <= -2 false
    {"eqi", "  l.sfeqi r5, -1", 0xffffffffu, 0, true},
    {"gtui_signext", "  l.sfgtui r5, -1", 0xfffffffeu, 0, false},  // imm extends to ffffffff
    {"ltsi", "  l.sfltsi r5, 10", 3, 0, true},
    {"gesi", "  l.sfgesi r5, -5", 0xfffffffcu, 0, true},  // -4 >= -5
};

INSTANTIATE_TEST_SUITE_P(Compares, FlagSemantics, ::testing::ValuesIn(kFlagCases),
                         [](const ::testing::TestParamInfo<FlagCase>& info) {
                             return std::string(info.param.name);
                         });

// ---- Memory semantics -------------------------------------------------------

TEST(Memory, WordRoundTrip) {
    const auto o = run_asm(std::string(R"(
_start:
  l.li r5, 0x00100000
  l.li r6, 0xcafebabe
  l.sw 16(r5), r6
  l.lwz r11, 16(r5)
)") + exit_seq());
    EXPECT_EQ(reg(o, 11), 0xcafebabeu);
}

TEST(Memory, ByteAndHalfExtension) {
    const auto o = run_asm(std::string(R"(
_start:
  l.li r5, 0x00100000
  l.li r6, 0x000000f7
  l.sb 3(r5), r6
  l.lbz r11, 3(r5)
  l.lbs r12, 3(r5)
  l.li r6, 0x00008001
  l.sh 8(r5), r6
  l.lhz r13, 8(r5)
  l.lhs r14, 8(r5)
)") + exit_seq());
    EXPECT_EQ(reg(o, 11), 0xf7u);
    EXPECT_EQ(reg(o, 12), 0xfffffff7u);
    EXPECT_EQ(reg(o, 13), 0x8001u);
    EXPECT_EQ(reg(o, 14), 0xffff8001u);
}

TEST(Memory, BigEndianByteOrder) {
    const auto o = run_asm(std::string(R"(
_start:
  l.li r5, 0x00100000
  l.li r6, 0x11223344
  l.sw 0(r5), r6
  l.lbz r11, 0(r5)
  l.lbz r12, 3(r5)
  l.lhz r13, 0(r5)
)") + exit_seq());
    EXPECT_EQ(reg(o, 11), 0x11u);
    EXPECT_EQ(reg(o, 12), 0x44u);
    EXPECT_EQ(reg(o, 13), 0x1122u);
}

TEST(Memory, MisalignedWordAccessFaults) {
    EXPECT_THROW(run_asm(std::string(R"(
_start:
  l.li r5, 0x00100002
  l.lwz r11, 0(r5)
)") + exit_seq()),
                 GuestError);
}

TEST(Memory, OutOfRangeAccessFaults) {
    EXPECT_THROW(run_asm(std::string(R"(
_start:
  l.li r5, 0x00200000
  l.lwz r11, 0(r5)
)") + exit_seq()),
                 GuestError);
}

TEST(Memory, StoreThenLoadSameAddressBackToBack) {
    const auto o = run_asm(std::string(R"(
_start:
  l.li r5, 0x00100000
  l.li r6, 0x12121212
  l.sw 0(r5), r6
  l.lwz r11, 0(r5)
  l.addi r12, r11, 1
)") + exit_seq());
    EXPECT_EQ(reg(o, 11), 0x12121212u);
    EXPECT_EQ(reg(o, 12), 0x12121213u);
}

// ---- Register file invariants ----------------------------------------------

TEST(RegFile, R0IsHardwiredZero) {
    const auto o = run_asm(std::string(R"(
_start:
  l.addi r0, r0, 123
  l.add r11, r0, r0
)") + exit_seq());
    EXPECT_EQ(reg(o, 0), 0u);
    EXPECT_EQ(reg(o, 11), 0u);
}

// ---- Forwarding / hazards ----------------------------------------------------

TEST(Hazards, BackToBackAluForwarding) {
    const auto o = run_asm(std::string(R"(
_start:
  l.addi r5, r0, 1
  l.addi r5, r5, 1
  l.addi r5, r5, 1
  l.addi r5, r5, 1
  l.add r11, r5, r5
)") + exit_seq());
    EXPECT_EQ(reg(o, 11), 8u);
}

TEST(Hazards, LoadUseStallProducesCorrectValue) {
    const auto o = run_asm(std::string(R"(
_start:
  l.li r5, 0x00100000
  l.li r6, 41
  l.sw 0(r5), r6
  l.lwz r7, 0(r5)
  l.addi r11, r7, 1   ; immediate consumer of the load
)") + exit_seq());
    EXPECT_EQ(reg(o, 11), 42u);
}

TEST(Hazards, LoadUseCostsOneCycle) {
    const std::string prefix = R"(
_start:
  l.li r5, 0x00100000
  l.sw 0(r5), r5
)";
    // Variant A: consumer immediately after the load (one stall bubble).
    const auto a = run_asm(prefix + "  l.lwz r7, 0(r5)\n  l.addi r11, r7, 1\n" + exit_seq());
    // Variant B: an independent nop separates them (no stall). One more
    // instruction, zero bubbles: identical cycle count to variant A.
    const auto b = run_asm(prefix + "  l.lwz r7, 0(r5)\n  l.nop\n  l.addi r11, r7, 1\n" + exit_seq());
    EXPECT_EQ(a.result.cycles, b.result.cycles);
    EXPECT_EQ(reg(a, 11), reg(b, 11));
}

TEST(Hazards, FlagForwardingToImmediateBranch) {
    const auto o = run_asm(std::string(R"(
_start:
  l.addi r5, r0, 1
  l.sfeq r5, r5
  l.bf taken
  l.nop
  l.addi r11, r0, 111
  l.j end
  l.nop
taken:
  l.addi r11, r0, 222
end:
)") + exit_seq());
    EXPECT_EQ(reg(o, 11), 222u);
}

// ---- Control flow -------------------------------------------------------------

TEST(ControlFlow, DelaySlotAlwaysExecutes) {
    const auto o = run_asm(std::string(R"(
_start:
  l.addi r11, r0, 0
  l.j target
  l.addi r11, r11, 5   ; delay slot executes
  l.addi r11, r11, 100 ; skipped
target:
  l.addi r11, r11, 1
)") + exit_seq());
    EXPECT_EQ(reg(o, 11), 6u);
}

TEST(ControlFlow, UntakenBranchDelaySlotExecutes) {
    const auto o = run_asm(std::string(R"(
_start:
  l.addi r5, r0, 1
  l.sfeq r5, r0
  l.bf never
  l.addi r11, r0, 7   ; delay slot
  l.addi r11, r11, 1
never:
)") + exit_seq());
    EXPECT_EQ(reg(o, 11), 8u);
}

TEST(ControlFlow, JalLinkValueSkipsDelaySlot) {
    const auto o = run_asm(std::string(R"(
_start:
  l.jal callee
  l.nop              ; delay slot
  l.addi r11, r0, 55 ; return lands here
  l.j end
  l.nop
callee:
  l.jr r9
  l.nop
end:
)") + exit_seq());
    EXPECT_EQ(reg(o, 11), 55u);
}

TEST(ControlFlow, JalrViaRegister) {
    const auto o = run_asm(std::string(R"(
_start:
  l.li r16, callee
  l.jalr r16
  l.nop
  l.addi r11, r0, 77
  l.j end
  l.nop
callee:
  l.jr r9
  l.nop
end:
)") + exit_seq());
    EXPECT_EQ(reg(o, 11), 77u);
}

TEST(ControlFlow, LoopIterationCount) {
    const auto o = run_asm(std::string(R"(
_start:
  l.addi r5, r0, 10
  l.addi r11, r0, 0
loop:
  l.addi r11, r11, 3
  l.addi r5, r5, -1
  l.sfgts r5, r0
  l.bf loop
  l.nop
)") + exit_seq());
    EXPECT_EQ(reg(o, 11), 30u);
}

TEST(ControlFlow, ControlTransferInDelaySlotFaults) {
    EXPECT_THROW(run_asm(std::string(R"(
_start:
  l.sfeq r0, r0
  l.bf away
  l.j elsewhere      ; illegal: jump in delay slot
away:
elsewhere:
)") + exit_seq()),
                 GuestError);
}

TEST(ControlFlow, ImmediateJumpIsFree) {
    // l.j is resolved in the fetch stage: a chain of taken jumps should not
    // add bubbles beyond the instructions themselves.
    std::string jumps = "_start:\n";
    for (int i = 0; i < 8; ++i) {
        jumps += "  l.j hop" + std::to_string(i) + "\n  l.nop\nhop" + std::to_string(i) + ":\n";
    }
    const auto with_jumps = run_asm(jumps + exit_seq());

    std::string straight = "_start:\n";
    for (int i = 0; i < 16; ++i) straight += "  l.nop\n";
    const auto without = run_asm(straight + exit_seq());
    EXPECT_EQ(with_jumps.result.cycles, without.result.cycles);
}

TEST(ControlFlow, TakenConditionalBranchCostsTwoBubbles) {
    // 8 taken branches vs. 8 untaken ones, same instruction count.
    std::string taken = "_start:\n  l.sfeq r0, r0\n";  // flag true
    for (int i = 0; i < 8; ++i) {
        taken += "  l.bf t" + std::to_string(i) + "\n  l.nop\nt" + std::to_string(i) + ":\n";
    }
    std::string untaken = "_start:\n  l.sfne r0, r0\n";  // flag false
    for (int i = 0; i < 8; ++i) {
        untaken += "  l.bf u" + std::to_string(i) + "\n  l.nop\nu" + std::to_string(i) + ":\n";
    }
    const auto t = run_asm(taken + exit_seq());
    const auto u = run_asm(untaken + exit_seq());
    EXPECT_EQ(t.result.cycles, u.result.cycles + 8 * 2);
}

TEST(ControlFlow, NestedCallsViaStackedLinkRegister) {
    // callee2 saves r9 on a software stack, calls callee1, restores, returns.
    const auto o = run_asm(std::string(R"(
_start:
  l.li r1, 0x00110000      ; stack top
  l.jal callee2
  l.nop
  l.addi r11, r11, 1000    ; after the outer call
  l.j end
  l.nop
callee1:
  l.addi r11, r11, 1
  l.jr r9
  l.nop
callee2:
  l.addi r1, r1, -4
  l.sw 0(r1), r9
  l.jal callee1
  l.nop
  l.jal callee1
  l.nop
  l.lwz r9, 0(r1)
  l.addi r1, r1, 4
  l.jr r9
  l.nop
end:
)") + exit_seq());
    EXPECT_EQ(reg(o, 11), 1002u);
}

TEST(ControlFlow, BackwardAndForwardBranchesMix) {
    // Countdown loop with an embedded forward skip.
    const auto o = run_asm(std::string(R"(
_start:
  l.addi r5, r0, 6
  l.addi r11, r0, 0
loop:
  l.andi r6, r5, 1
  l.sfne r6, r0
  l.bf odd
  l.nop
  l.addi r11, r11, 100    ; even
  l.j next
  l.nop
odd:
  l.addi r11, r11, 1
next:
  l.addi r5, r5, -1
  l.sfgts r5, r0
  l.bf loop
  l.nop
)") + exit_seq());
    EXPECT_EQ(reg(o, 11), 303u);  // 3 evens (6,4,2) + 3 odds (5,3,1)
}

TEST(ControlFlow, MisalignedJrTargetFaults) {
    EXPECT_THROW(run_asm(std::string(R"(
_start:
  l.addi r5, r0, 0x102
  l.jr r5
  l.nop
)") + exit_seq()),
                 GuestError);
}

TEST(ControlFlow, FlagDistanceTwoUsesArchitecturalFlag) {
    // sf -> unrelated -> unrelated -> bf: flag comes from the committed
    // architectural register, not from forwarding.
    const auto o = run_asm(std::string(R"(
_start:
  l.sfeq r0, r0
  l.addi r5, r0, 1
  l.addi r6, r0, 2
  l.addi r7, r0, 3
  l.bf yes
  l.nop
  l.addi r11, r0, 1
  l.j end
  l.nop
yes:
  l.addi r11, r0, 2
end:
)") + exit_seq());
    EXPECT_EQ(reg(o, 11), 2u);
}

TEST(Divider, SignedOverflowCaseIsDefined) {
    const auto o = run_asm(std::string(R"(
_start:
  l.li r5, 0x80000000
  l.addi r6, r0, -1
  l.div r11, r5, r6        ; INT_MIN / -1: defined as 0 in this model
)") + exit_seq());
    EXPECT_EQ(reg(o, 11), 0u);
}

TEST(Hazards, StoreDataForwardedAfterLoadUse) {
    // load -> store of the loaded value (distance 1: stall + forward).
    const auto o = run_asm(std::string(R"(
_start:
  l.li r5, 0x00100000
  l.li r6, 77
  l.sw 0(r5), r6
  l.lwz r7, 0(r5)
  l.sw 4(r5), r7
  l.lwz r11, 4(r5)
)") + exit_seq());
    EXPECT_EQ(reg(o, 11), 77u);
}

TEST(Hazards, JrAfterLoadOfTarget) {
    // The register jump target comes straight out of a load (load-use on rb).
    const auto o = run_asm(std::string(R"(
_start:
  l.li r5, 0x00100000
  l.li r6, dest
  l.sw 0(r5), r6
  l.lwz r7, 0(r5)
  l.jr r7
  l.nop
  l.addi r11, r0, 1     ; skipped
dest:
  l.addi r11, r11, 5
)") + exit_seq());
    EXPECT_EQ(reg(o, 11), 5u);
}

// ---- Divider stall --------------------------------------------------------------

TEST(Divider, SerialDividerStallsPipeline) {
    sim::MachineConfig config;
    config.pipeline.div_latency = 32;
    const std::string body = R"(
_start:
  l.li r5, 1000000
  l.addi r6, r0, 7
  l.divu r11, r5, r6
)";
    const auto with_div = run_asm(body + exit_seq(), config);
    config.pipeline.div_latency = 1;
    const auto fast_div = run_asm(body + exit_seq(), config);
    EXPECT_EQ(reg(with_div, 11), 142857u);
    EXPECT_EQ(with_div.result.cycles, fast_div.result.cycles + 31);
}

// ---- Simulation control -----------------------------------------------------------

TEST(SimControl, ExitCodeFromR3) {
    const auto o = run_asm("_start:\n  l.addi r3, r0, 17\n" + std::string(exit_seq()));
    EXPECT_EQ(o.result.exit_code, 17u);
}

TEST(SimControl, ReportNops) {
    const auto o = run_asm(std::string(R"(
_start:
  l.addi r3, r0, 5
  l.nop 0x2
  l.addi r3, r0, 9
  l.nop 0x2
  l.addi r3, r0, 0
)") + exit_seq());
    ASSERT_EQ(o.result.reports.size(), 2u);
    EXPECT_EQ(o.result.reports[0], 5u);
    EXPECT_EQ(o.result.reports[1], 9u);
}

TEST(SimControl, WatchdogFiresOnInfiniteLoop) {
    sim::MachineConfig config;
    config.max_cycles = 5000;
    EXPECT_THROW(run_asm("_start:\nspin:\n  l.j spin\n  l.nop\n", config), GuestError);
}

TEST(SimControl, InvalidInstructionFaults) {
    EXPECT_THROW(run_asm(".org 0\n  .word 0xffffffff\n  .word 0xffffffff\n"
                         "  .word 0xffffffff\n  .word 0xffffffff\n"),
                 GuestError);
}

TEST(SimControl, IpcNearOneForStraightLineCode) {
    std::string source = "_start:\n";
    for (int i = 0; i < 400; ++i) source += "  l.addi r5, r5, 1\n";
    const auto o = run_asm(source + exit_seq());
    EXPECT_GT(o.result.ipc(), 0.95);
}

}  // namespace
}  // namespace focs::sim
