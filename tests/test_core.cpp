// Core DCA tests: policy contracts, the engine's time accounting and the
// central safety property — a predictive policy must never grant a period
// below a cycle's actual requirement.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "asm/assembler.hpp"
#include "clock/clock_generator.hpp"
#include "common/error.hpp"
#include "core/dca_engine.hpp"
#include "core/flows.hpp"
#include "core/policies.hpp"
#include "isa/isa_info.hpp"
#include "workloads/kernel.hpp"

namespace focs::core {
namespace {

/// Shared characterization result (built once; characterization over the
/// full suite takes a moment).
const CharacterizationResult& characterization() {
    static const CharacterizationResult result = [] {
        const CharacterizationFlow flow(timing::DesignConfig{});
        return flow.run(workloads::assemble_programs(workloads::characterization_suite()));
    }();
    return result;
}

const assembler::Program& program_of(const char* name) {
    static std::map<std::string, assembler::Program>* cache =
        new std::map<std::string, assembler::Program>();
    auto it = cache->find(name);
    if (it == cache->end()) {
        it = cache->emplace(name, assembler::assemble(workloads::find_kernel(name).source)).first;
    }
    return it->second;
}

TEST(Policies, StaticRequestsConstantPeriod) {
    DcaEngine engine({});
    StaticClockPolicy policy(engine.calculator().static_period_ps());
    const DcaRunResult r = engine.run(program_of("fibcall"), policy);
    EXPECT_DOUBLE_EQ(r.avg_period_ps, engine.calculator().static_period_ps());
    EXPECT_DOUBLE_EQ(r.speedup_vs_static, 1.0);
    EXPECT_EQ(r.timing_violations, 0u);
}

TEST(Policies, GenieNeverViolatesAndIsFastest) {
    DcaEngine engine({});
    GenieOraclePolicy genie;
    InstructionLutPolicy lut(characterization().table);
    const DcaRunResult genie_run = engine.run(program_of("crc32"), genie);
    const DcaRunResult lut_run = engine.run(program_of("crc32"), lut);
    EXPECT_EQ(genie_run.timing_violations, 0u);
    EXPECT_EQ(lut_run.timing_violations, 0u);
    EXPECT_LE(genie_run.avg_period_ps, lut_run.avg_period_ps);
}

TEST(Policies, OrderingAcrossTheLadder) {
    // genie <= instruction-lut <= ex-only <= static, and two-class within
    // [instruction-lut, static], for every benchmark checked.
    DcaEngine engine({});
    const auto& table = characterization().table;
    for (const char* name : {"bubblesort", "matmult", "fsm"}) {
        GenieOraclePolicy genie;
        InstructionLutPolicy lut(table);
        ExOnlyPolicy ex_only(table);
        TwoClassPolicy two_class(table);
        StaticClockPolicy static_policy(engine.calculator().static_period_ps());
        const double t_genie = engine.run(program_of(name), genie).avg_period_ps;
        const double t_lut = engine.run(program_of(name), lut).avg_period_ps;
        const double t_ex = engine.run(program_of(name), ex_only).avg_period_ps;
        const double t_two = engine.run(program_of(name), two_class).avg_period_ps;
        const double t_static = engine.run(program_of(name), static_policy).avg_period_ps;
        EXPECT_LE(t_genie, t_lut + 1e-9) << name;
        EXPECT_LE(t_lut, t_ex + 1e-9) << name;
        EXPECT_LE(t_ex, t_static + 1e-9) << name;
        EXPECT_LE(t_lut, t_two + 1e-9) << name;
        EXPECT_LE(t_two, t_static + 1e-9) << name;
    }
}

TEST(Policies, SafetyAcrossWholeSuiteAndPolicies) {
    // THE core guarantee of the paper's approach: predictive adjustment
    // without timing-error detection requires zero violations, always.
    DcaEngine engine({});
    const auto& table = characterization().table;
    for (const auto& [name, program] : workloads::assemble_suite(workloads::benchmark_suite())) {
        // approx-lut is deliberately excluded: it trades violations for
        // speed by design (its accounting parity is covered in test_replay).
        for (const PolicyKind kind : {PolicyKind::kInstructionLut, PolicyKind::kExOnly,
                                      PolicyKind::kTwoClass, PolicyKind::kStatic,
                                      PolicyKind::kDualCycle}) {
            const auto policy = make_policy(kind, table, engine.calculator().static_period_ps());
            const DcaRunResult r = engine.run(program, *policy);
            EXPECT_EQ(r.timing_violations, 0u)
                << name << " under " << policy->name() << " worst " << r.worst_violation_ps;
            EXPECT_EQ(r.guest.exit_code, 0u) << name;
        }
    }
}

TEST(Policies, LutWithMarginIsSlowerButSafe) {
    DcaEngine engine({});
    InstructionLutPolicy no_margin(characterization().table, 0.0);
    InstructionLutPolicy margin(characterization().table, 100.0);
    const double plain = engine.run(program_of("edn"), no_margin).avg_period_ps;
    const double padded = engine.run(program_of("edn"), margin).avg_period_ps;
    EXPECT_NEAR(padded, plain + 100.0, 1.0);
}

TEST(Policies, ExOnlyFloorCoversNonExStages) {
    const ExOnlyPolicy policy(characterization().table);
    // The floor must cover the worst non-EX entry: the l.j ADR path.
    EXPECT_GE(policy.floor_ps(),
              characterization().table.lookup(static_cast<dta::OccKey>(isa::Opcode::kJ),
                                              sim::Stage::kAdr));
}

TEST(Policies, TwoClassTreatsMulAsSlow) {
    DcaEngine engine({});
    TwoClassPolicy policy(characterization().table);
    // fir is multiplier-heavy: two-class must be much slower than the LUT.
    InstructionLutPolicy lut(characterization().table);
    const double t_two = engine.run(program_of("fir"), policy).avg_period_ps;
    const double t_lut = engine.run(program_of("fir"), lut).avg_period_ps;
    EXPECT_GT(t_two, t_lut + 50.0);
}

TEST(Engine, TimeAccountingIsConsistent) {
    DcaEngine engine({});
    GenieOraclePolicy genie;
    const DcaRunResult r = engine.run(program_of("prime"), genie);
    EXPECT_NEAR(r.avg_period_ps * static_cast<double>(r.cycles), r.total_time_ps, 1e-3);
    EXPECT_NEAR(r.eff_freq_mhz, 1e6 / r.avg_period_ps, 1e-6);
    EXPECT_EQ(r.cycles, r.guest.cycles);
}

TEST(Engine, QuantizedGeneratorDegradesGracefully) {
    DcaEngine engine({});
    const auto& table = characterization().table;
    const double static_ps = engine.calculator().static_period_ps();
    double previous = 1e18;
    for (const int taps : {2, 4, 8, 32, 128}) {
        InstructionLutPolicy policy(table);
        clocking::QuantizedClockGenerator cg =
            clocking::QuantizedClockGenerator::for_static_period(static_ps, taps);
        const DcaRunResult r = engine.run(program_of("crc32"), policy, cg);
        EXPECT_EQ(r.timing_violations, 0u) << taps << " taps";
        EXPECT_LE(r.avg_period_ps, previous + 1e-9) << taps << " taps";
        previous = r.avg_period_ps;
    }
    // Many taps approach the ideal generator.
    InstructionLutPolicy policy(table);
    const double ideal = engine.run(program_of("crc32"), policy).avg_period_ps;
    EXPECT_NEAR(previous, ideal, 0.02 * ideal);
}

TEST(Engine, PllBankIsSafeDespiteDwell) {
    DcaEngine engine({});
    InstructionLutPolicy policy(characterization().table);
    clocking::PllBankClockGenerator cg({1300.0, 1500.0, 1700.0, 2026.0}, 8);
    const DcaRunResult r = engine.run(program_of("dijkstra"), policy, cg);
    EXPECT_EQ(r.timing_violations, 0u);
    EXPECT_GE(r.speedup_vs_static, 1.0);
}

TEST(Flows, EvaluationSuiteAggregates) {
    const EvaluationFlow flow(timing::DesignConfig{}, characterization().table);
    const auto suite = workloads::assemble_suite(
        {workloads::find_kernel("fibcall"), workloads::find_kernel("fsm")});
    const SuiteResult result = flow.run_suite(suite, PolicyKind::kInstructionLut);
    ASSERT_EQ(result.rows.size(), 2u);
    EXPECT_EQ(result.total_violations, 0u);
    EXPECT_NEAR(result.mean_speedup,
                (result.rows[0].result.speedup_vs_static + result.rows[1].result.speedup_vs_static) / 2,
                1e-9);
}

TEST(Flows, CharacterizationProducesCompleteTable) {
    const auto& result = characterization();
    EXPECT_GT(result.cycles, 10000u);
    EXPECT_GT(result.genie_speedup, 1.2);
    // Every opcode must be characterized in the EX stage (coverage test for
    // the characterization suite + extraction pipeline).
    for (int i = 0; i < isa::kOpcodeCount; ++i) {
        EXPECT_TRUE(result.table.characterized(static_cast<dta::OccKey>(i), sim::Stage::kEx))
            << isa::mnemonic(static_cast<isa::Opcode>(i));
    }
}

TEST(Flows, StreamingMatchesMaterializedAcrossKernelsAndVoltages) {
    // The acceptance bar of the streaming characterization path: for every
    // operating point, the single-pass streaming flow and the materialized
    // merged-log flow must serialize byte-identical delay tables.
    const std::vector<assembler::Program> programs = workloads::assemble_programs(
        {workloads::find_kernel("crc32"), workloads::find_kernel("fir"),
         workloads::find_kernel("bubblesort"), workloads::find_kernel("fsm")});
    for (const double voltage : {0.70, 0.80}) {
        timing::DesignConfig design;
        design.voltage_v = voltage;
        const CharacterizationFlow flow(design);
        const auto streaming = flow.run(programs, CharacterizationMode::kStreaming);
        const auto materialized = flow.run(programs, CharacterizationMode::kMaterialized);
        EXPECT_EQ(streaming.table.serialize(), materialized.table.serialize()) << voltage;
        EXPECT_EQ(streaming.cycles, materialized.cycles) << voltage;
        EXPECT_DOUBLE_EQ(streaming.genie_mean_period_ps, materialized.genie_mean_period_ps)
            << voltage;
        // Only the materialized mode exposes the merged gate-level log for
        // offline dumps; its text round trip re-derives the same LUT.
        EXPECT_EQ(streaming.event_log, nullptr);
        ASSERT_NE(materialized.event_log, nullptr);
        ASSERT_NE(materialized.trace, nullptr);
        EXPECT_EQ(materialized.event_log->size(),
                  materialized.trace->size() * flow.netlist().endpoints().size());

        // The batched engine (the default mode) must agree too, serial and
        // with intra-flow worker threads.
        for (const int threads : {1, 4}) {
            CharacterizationOptions options;
            options.threads = threads;
            options.batch_cycles = 311;  // odd boundary on purpose
            const auto batched = flow.run(programs, options);
            EXPECT_EQ(batched.table.serialize(), streaming.table.serialize())
                << voltage << " threads " << threads;
            EXPECT_EQ(batched.cycles, streaming.cycles);
            EXPECT_DOUBLE_EQ(batched.genie_mean_period_ps, streaming.genie_mean_period_ps);
            EXPECT_EQ(batched.event_log, nullptr);
        }
    }
}

TEST(Flows, ScaledViewsMatchPerVoltageCharacterizationOnDenseGrid) {
    // The characterization-collapse contract at the table level: for each
    // benchmark kernel, every point of a dense voltage grid must get a
    // delay table bit-identical to a full per-voltage characterization
    // when derived as a scaled view of the single nominal table. This is
    // the rounding-monotonicity argument behind DelayTable::scaled made
    // concrete — fl(raw * s) plus the re-applied guard-band rule commutes
    // with the per-voltage flow's own arithmetic at every grid point.
    const auto& library = timing::CellLibrary::fdsoi28();
    for (const char* kernel : {"crc32", "fir", "fsm"}) {
        const std::vector<assembler::Program> programs =
            workloads::assemble_programs({workloads::find_kernel(kernel)});
        timing::DesignConfig nominal;
        nominal.voltage_v = timing::kNominalVoltageV;
        const dta::DelayTable nominal_table =
            CharacterizationFlow(nominal).run(programs).table;
        for (const double voltage : {0.50, 0.55, 0.60, 0.65, 0.70, 0.75, 0.80, 0.85, 0.90}) {
            timing::DesignConfig point;
            point.voltage_v = voltage;
            const dta::DelayTable reference =
                CharacterizationFlow(point).run(programs).table;
            const double ratio =
                library.delay_scale(voltage) / library.delay_scale(timing::kNominalVoltageV);
            EXPECT_EQ(nominal_table.scaled(ratio).serialize(), reference.serialize())
                << kernel << " @ " << voltage << " V";
        }
    }
}

TEST(Flows, MakePolicyFactoryCoversAllKinds) {
    const auto& table = characterization().table;
    for (const PolicyKind kind :
         {PolicyKind::kStatic, PolicyKind::kGenie, PolicyKind::kInstructionLut,
          PolicyKind::kExOnly, PolicyKind::kTwoClass, PolicyKind::kApproxLut,
          PolicyKind::kDualCycle}) {
        const auto policy = make_policy(kind, table, 2026.0);
        ASSERT_NE(policy, nullptr);
        EXPECT_EQ(parse_policy_kind(policy_kind_name(kind)), kind);
    }
}

TEST(PolicySpec, ParseLabelRoundTrip) {
    // Every label re-parses to an equal spec, bare kinds label as their
    // plain names, and an explicitly spelled default parameter normalizes
    // to the bare form (equal specs produce equal labels and spec hashes).
    for (const char* text : {"static", "lut", "genie", "ex-only", "two-class", "approx-lut",
                             "dual-cycle", "approx-lut:0.8", "approx-lut:0.125",
                             "dual-cycle:3", "dual-cycle:1.5", "dual-cycle:1"}) {
        const PolicySpec spec = PolicySpec::parse(text);
        EXPECT_EQ(spec.label(), text);
        EXPECT_EQ(PolicySpec::parse(spec.label()), spec);
    }
    EXPECT_EQ(PolicySpec::parse("approx-lut:0.9"), PolicySpec{PolicyKind::kApproxLut});
    EXPECT_EQ(PolicySpec::parse("approx-lut:0.9").label(), "approx-lut");
    EXPECT_EQ(PolicySpec::parse("dual-cycle:2"), PolicySpec{PolicyKind::kDualCycle});
    EXPECT_EQ(PolicySpec::parse("dual-cycle:2").label(), "dual-cycle");
    // Bare kinds convert implicitly and resolve to the kind's default.
    const PolicySpec bare = PolicyKind::kApproxLut;
    EXPECT_EQ(bare.param, -1.0);
    EXPECT_EQ(bare.resolved_param(), kApproxLutKindScale);
    EXPECT_EQ(PolicySpec::parse("dual-cycle:3").resolved_param(), 3.0);
}

TEST(PolicySpec, RejectsOutOfRangeAndMalformedParameters) {
    // approx-lut scale must land in (0, 1], dual-cycle stretch in [1, inf);
    // only those two kinds take a parameter at all. All rejections are
    // usage errors (focs::Error) raised at parse time, before any build.
    for (const char* text : {"approx-lut:0", "approx-lut:-0.5", "approx-lut:1.0001",
                             "approx-lut:2", "dual-cycle:0.99", "dual-cycle:0",
                             "dual-cycle:-3", "lut:0.8", "static:2", "genie:1",
                             "approx-lut:", "approx-lut:abc", "approx-lut:0.8x",
                             "dual-cycle:1e999", "bogus", "bogus:1"}) {
        EXPECT_THROW((void)PolicySpec::parse(text), Error) << text;
    }
}

TEST(PolicySpec, ParameterReachesTheConstructedPolicy) {
    const auto& table = characterization().table;
    // The factory hands the resolved parameter to the concrete policy: a
    // parameterized spec produces the same decisions as the directly
    // constructed policy object.
    const auto via_spec = make_policy(PolicySpec::parse("dual-cycle:3"), table, 2026.0);
    DualCyclePolicy direct(table, 3.0);
    EXPECT_EQ(via_spec->name(), direct.name());
    EXPECT_EQ(via_spec->name(), "dual-cycle/3.00");
    const auto approx = make_policy(PolicySpec::parse("approx-lut:0.8"), table, 2026.0);
    EXPECT_EQ(approx->name(), "approx-lut/0.80");
    // Defaults keep their historical names, so existing result documents
    // and golden files are unaffected.
    EXPECT_EQ(make_policy(PolicySpec::parse("dual-cycle"), table, 2026.0)->name(),
              "dual-cycle");
    EXPECT_EQ(make_policy(PolicyKind::kApproxLut, table, 2026.0)->name(), "approx-lut/0.90");
}

}  // namespace
}  // namespace focs::core
