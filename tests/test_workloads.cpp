// Workload tests: every benchmark kernel assembles, runs to completion and
// passes its embedded self-check; characterization kernels terminate
// cleanly; the semi-random generator is deterministic and covers the ISA.
#include <gtest/gtest.h>

#include <set>

#include "asm/assembler.hpp"
#include "common/error.hpp"
#include "isa/encoding.hpp"
#include "isa/isa_info.hpp"
#include "sim/machine.hpp"
#include "workloads/kernel.hpp"
#include "workloads/testgen.hpp"

namespace focs::workloads {
namespace {

sim::RunResult run_kernel(const Kernel& kernel) {
    sim::Machine machine;
    machine.load(assembler::assemble(kernel.source));
    return machine.run();
}

class BenchmarkKernel : public ::testing::TestWithParam<int> {};

TEST_P(BenchmarkKernel, SelfCheckPasses) {
    const Kernel& kernel = benchmark_suite()[static_cast<std::size_t>(GetParam())];
    const sim::RunResult result = run_kernel(kernel);
    EXPECT_EQ(result.exit_code, 0u) << kernel.name << " failed its self-check";
    ASSERT_FALSE(result.reports.empty()) << kernel.name << " reported no checksum";
    EXPECT_GT(result.instructions, 100u) << kernel.name << " is trivially short";
}

std::vector<int> benchmark_indices() {
    std::vector<int> v(benchmark_suite().size());
    for (std::size_t i = 0; i < v.size(); ++i) v[i] = static_cast<int>(i);
    return v;
}

INSTANTIATE_TEST_SUITE_P(Suite, BenchmarkKernel, ::testing::ValuesIn(benchmark_indices()),
                         [](const ::testing::TestParamInfo<int>& info) {
                             return benchmark_suite()[static_cast<std::size_t>(info.param)].name;
                         });

class CharacterizationKernel : public ::testing::TestWithParam<int> {};

TEST_P(CharacterizationKernel, RunsToCompletion) {
    const Kernel& kernel = characterization_suite()[static_cast<std::size_t>(GetParam())];
    const sim::RunResult result = run_kernel(kernel);
    EXPECT_EQ(result.exit_code, 0u) << kernel.name;
    EXPECT_GT(result.instructions, 50u) << kernel.name;
}

std::vector<int> characterization_indices() {
    std::vector<int> v(characterization_suite().size());
    for (std::size_t i = 0; i < v.size(); ++i) v[i] = static_cast<int>(i);
    return v;
}

INSTANTIATE_TEST_SUITE_P(Suite, CharacterizationKernel,
                         ::testing::ValuesIn(characterization_indices()),
                         [](const ::testing::TestParamInfo<int>& info) {
                             return characterization_suite()[static_cast<std::size_t>(info.param)]
                                 .name;
                         });

TEST(Registry, FindKernelByName) {
    EXPECT_EQ(find_kernel("crc32").name, "crc32");
    EXPECT_EQ(find_kernel("char_alu").name, "char_alu");
    EXPECT_THROW(find_kernel("no_such_kernel"), Error);
}

TEST(Registry, SuiteSizes) {
    EXPECT_GE(benchmark_suite().size(), 14u);
    EXPECT_GE(characterization_suite().size(), 10u);
}

TEST(Registry, NamesAreUnique) {
    std::set<std::string> names;
    for (const auto& k : benchmark_suite()) EXPECT_TRUE(names.insert(k.name).second) << k.name;
    for (const auto& k : characterization_suite()) {
        EXPECT_TRUE(names.insert(k.name).second) << k.name;
    }
}

TEST(TestGen, DeterministicForSameSeed) {
    TestGenConfig config;
    config.seed = 99;
    const Kernel a = generate_random_kernel(config);
    const Kernel b = generate_random_kernel(config);
    EXPECT_EQ(a.source, b.source);
}

TEST(TestGen, DifferentSeedsDiffer) {
    TestGenConfig a_config, b_config;
    a_config.seed = 1;
    b_config.seed = 2;
    EXPECT_NE(generate_random_kernel(a_config).source, generate_random_kernel(b_config).source);
}

TEST(TestGen, GeneratedProgramsRun) {
    for (const std::uint64_t seed : {7ULL, 8ULL, 9ULL}) {
        TestGenConfig config;
        config.seed = seed;
        config.instruction_count = 600;
        const Kernel kernel = generate_random_kernel(config);
        const sim::RunResult result = run_kernel(kernel);
        EXPECT_EQ(result.exit_code, 0u) << "seed " << seed;
        EXPECT_GT(result.instructions, 400u);
    }
}

TEST(TestGen, RespectsInstructionBudget) {
    TestGenConfig config;
    config.seed = 5;
    config.instruction_count = 300;
    const Kernel kernel = generate_random_kernel(config);
    const auto program = assembler::assemble(kernel.source);
    const std::size_t words = program.listing().size();
    EXPECT_GE(words, 300u);
    EXPECT_LE(words, 450u);  // budget plus header/footer/expansion slack
}

/// The characterization suite must cover every opcode of the subset so the
/// delay LUT has no uncharacterized rows (paper: instructions without
/// enough occurrences fall back to the static limit).
TEST(Coverage, CharacterizationSuiteCoversAllOpcodes) {
    std::set<isa::Opcode> seen;
    for (const auto& kernel : characterization_suite()) {
        const auto program = assembler::assemble(kernel.source);
        for (const auto& entry : program.listing()) {
            seen.insert(isa::decode(entry.word).opcode);
        }
    }
    for (int i = 0; i < isa::kOpcodeCount; ++i) {
        const auto op = static_cast<isa::Opcode>(i);
        EXPECT_TRUE(seen.count(op) == 1) << "uncovered opcode: " << isa::mnemonic(op);
    }
}

}  // namespace
}  // namespace focs::workloads
