// Tests for the extension features: approximate over-scaling (paper
// Sec. IV-A), online LUT updating under PVT drift (paper Sec. V), table
// rescaling, and the pipeline trace printer.
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "common/error.hpp"
#include "core/dca_engine.hpp"
#include "core/flows.hpp"
#include "sim/machine.hpp"
#include "sim/trace_printer.hpp"
#include "timing/cell_library.hpp"
#include "workloads/kernel.hpp"

namespace focs::core {
namespace {

const CharacterizationResult& characterization() {
    static const CharacterizationResult result = [] {
        const CharacterizationFlow flow(timing::DesignConfig{});
        return flow.run(workloads::assemble_programs(workloads::characterization_suite()));
    }();
    return result;
}

const assembler::Program& fir_program() {
    static const assembler::Program program =
        assembler::assemble(workloads::find_kernel("fir").source);
    return program;
}

// ---- Approximate over-scaling --------------------------------------------------

TEST(Approximate, ScaleOneEqualsExactPolicy) {
    DcaEngine engine({});
    ApproximateLutPolicy approx(characterization().table, 1.0);
    InstructionLutPolicy exact(characterization().table);
    const auto a = engine.run(fir_program(), approx);
    const auto b = engine.run(fir_program(), exact);
    EXPECT_DOUBLE_EQ(a.total_time_ps, b.total_time_ps);
    EXPECT_EQ(a.timing_violations, 0u);
}

TEST(Approximate, SpeedAndViolationsGrowMonotonically) {
    DcaEngine engine({});
    double prev_time = 1e300;
    std::uint64_t prev_violations = 0;
    for (const double scale : {1.0, 0.95, 0.90, 0.85}) {
        ApproximateLutPolicy policy(characterization().table, scale);
        const auto r = engine.run(fir_program(), policy);
        EXPECT_LT(r.total_time_ps, prev_time) << scale;
        EXPECT_GE(r.timing_violations, prev_violations) << scale;
        prev_time = r.total_time_ps;
        prev_violations = r.timing_violations;
    }
    EXPECT_GT(prev_violations, 0u);  // aggressive scaling must violate
}

TEST(Approximate, RejectsBadScale) {
    EXPECT_THROW(ApproximateLutPolicy(characterization().table, 0.0), Error);
    EXPECT_THROW(ApproximateLutPolicy(characterization().table, 1.5), Error);
}

// ---- PVT drift and online updating ---------------------------------------------

TEST(PvtDrift, StaleLutViolatesAtLowerVoltage) {
    timing::DesignConfig drifted;
    drifted.voltage_v = 0.66;
    DcaEngine engine(drifted);
    InstructionLutPolicy stale(characterization().table);
    const auto r = engine.run(fir_program(), stale);
    EXPECT_GT(r.timing_violations, 0u);
}

TEST(PvtDrift, OnlineUpdatedLutStaysSafeEverywhere) {
    const auto& library = timing::CellLibrary::fdsoi28();
    for (const double voltage : {0.70, 0.68, 0.65, 0.60}) {
        timing::DesignConfig drifted;
        drifted.voltage_v = voltage;
        DcaEngine engine(drifted);
        const double ratio = library.delay_scale(voltage) / library.delay_scale(0.70);
        const dta::DelayTable updated = characterization().table.scaled(ratio);
        InstructionLutPolicy policy(updated);
        const auto r = engine.run(fir_program(), policy);
        EXPECT_EQ(r.timing_violations, 0u) << voltage;
        // Relative speedup is voltage-invariant: all paths scale together.
        EXPECT_NEAR(r.speedup_vs_static,
                    engine.calculator().static_period_ps() / r.avg_period_ps, 1e-9);
    }
}

TEST(PvtDrift, SpeedupIsVoltageInvariantWithUpdatedLut) {
    const auto& library = timing::CellLibrary::fdsoi28();
    double reference = 0;
    for (const double voltage : {0.70, 0.65, 0.60}) {
        timing::DesignConfig config;
        config.voltage_v = voltage;
        DcaEngine engine(config);
        const double ratio = library.delay_scale(voltage) / library.delay_scale(0.70);
        const dta::DelayTable updated = characterization().table.scaled(ratio);
        InstructionLutPolicy policy(updated);
        const double speedup = engine.run(fir_program(), policy).speedup_vs_static;
        if (reference == 0) {
            reference = speedup;
        } else {
            EXPECT_NEAR(speedup, reference, 0.01) << voltage;
        }
    }
}

// ---- DelayTable::scaled ----------------------------------------------------------

TEST(ScaledTable, EntriesAndFallbackScale) {
    dta::DelayTable table(2000.0);
    table.set(3, sim::Stage::kEx, 1500.0);
    const dta::DelayTable scaled = table.scaled(1.25);
    EXPECT_DOUBLE_EQ(scaled.static_period_ps(), 2500.0);
    EXPECT_DOUBLE_EQ(scaled.lookup(3, sim::Stage::kEx), 1875.0);
    EXPECT_DOUBLE_EQ(scaled.lookup(4, sim::Stage::kEx), 2500.0);  // fallback scaled too
    EXPECT_THROW(table.scaled(0.0), Error);
}

// ---- Trace printer -----------------------------------------------------------------

TEST(TracePrinter, RendersOccupancyAndRedirects) {
    sim::Machine machine;
    machine.load(assembler::assemble(R"(
_start:
  l.addi r5, r0, 1
  l.sfeq r5, r5
  l.bf target
  l.nop
  l.addi r6, r0, 9
target:
  l.addi r3, r0, 0
  l.nop 0x1
  l.nop
  l.nop
  l.nop
  l.nop
)"));
    sim::TracePrinter tracer;
    machine.run(&tracer);
    const std::string text = tracer.text();
    EXPECT_NE(text.find("l.addi"), std::string::npos);
    EXPECT_NE(text.find("l.sfeq"), std::string::npos);
    EXPECT_NE(text.find("redirect<-l.bf"), std::string::npos);
    EXPECT_NE(text.find("--------"), std::string::npos);  // squash bubbles visible
    EXPECT_NE(text.find(" cycle | adr"), std::string::npos);
}

TEST(TracePrinter, RespectsCycleLimit) {
    sim::Machine machine;
    machine.load(assembler::assemble(workloads::find_kernel("fibcall").source));
    sim::TracePrinter tracer(5);
    machine.run(&tracer);
    int lines = 0;
    for (const char c : tracer.text()) {
        if (c == '\n') ++lines;
    }
    EXPECT_EQ(lines, 2 + 5);  // header + rule + 5 rows
}

TEST(TracePrinter, MarksHeldSlots) {
    sim::Machine machine;
    machine.load(assembler::assemble(R"(
_start:
  l.addi r5, r0, 100
  l.addi r6, r0, 7
  l.divu r7, r5, r6
  l.addi r3, r0, 0
  l.nop 0x1
  l.nop
  l.nop
  l.nop
  l.nop
)"));
    sim::TracePrinter tracer;
    machine.run(&tracer);
    EXPECT_NE(tracer.text().find("l.addi*"), std::string::npos);  // stalled behind divider
}

}  // namespace
}  // namespace focs::core
