// Timing substrate tests: calibration tables, cell library, synthetic
// netlist STA, and the dynamic delay calculator.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "isa/encoding.hpp"
#include "timing/cell_library.hpp"
#include "timing/delay_model.hpp"
#include "timing/netlist.hpp"
#include "timing/timing_params.hpp"

namespace focs::timing {
namespace {

using isa::Opcode;
using sim::CycleRecord;
using sim::Stage;
using sim::StageView;

StageView view_of(Opcode op, std::uint32_t a = 0, std::uint32_t b = 0, std::uint32_t pc = 0x100) {
    StageView v;
    v.valid = true;
    v.inst.opcode = op;
    v.pc = pc;
    v.operand_a = a;
    v.operand_b = b;
    return v;
}

CycleRecord record_with_ex(Opcode op, std::uint32_t a, std::uint32_t b, std::uint64_t cycle) {
    CycleRecord r;
    r.cycle = cycle;
    for (auto& s : r.stages) s = StageView{};  // bubbles
    r.stages[static_cast<std::size_t>(Stage::kEx)] = view_of(op, a, b);
    r.stages[static_cast<std::size_t>(Stage::kAdr)] = view_of(Opcode::kAddi);
    return r;
}

// ---- Calibration tables -----------------------------------------------------

TEST(TimingParams, StaticPeriodsMatchPaper) {
    EXPECT_DOUBLE_EQ(timing_params(DesignVariant::kCriticalRangeOptimized).static_period_ps,
                     2026.0);
    EXPECT_DOUBLE_EQ(timing_params(DesignVariant::kConventional).static_period_ps, 1859.0);
    // Paper Sec. III-A: critical-range constraints cost +9% static period.
    EXPECT_NEAR(2026.0 / 1859.0, 1.09, 0.001);
}

TEST(TimingParams, TableIIAnchors) {
    const auto& p = timing_params(DesignVariant::kCriticalRangeOptimized);
    const auto ex = [&](isa::TimingFamily f) {
        return p.bands[static_cast<std::size_t>(Stage::kEx)][static_cast<int>(f)].anchor_ps;
    };
    EXPECT_DOUBLE_EQ(ex(isa::TimingFamily::kAdd), 1467.0);
    EXPECT_DOUBLE_EQ(ex(isa::TimingFamily::kLogicAnd), 1482.0);
    EXPECT_DOUBLE_EQ(ex(isa::TimingFamily::kBranch), 1470.0);
    EXPECT_DOUBLE_EQ(ex(isa::TimingFamily::kLoad), 1391.0);
    EXPECT_DOUBLE_EQ(ex(isa::TimingFamily::kMul), 1899.0);
    EXPECT_DOUBLE_EQ(ex(isa::TimingFamily::kShift), 1270.0);
    EXPECT_DOUBLE_EQ(ex(isa::TimingFamily::kLogicXor), 1514.0);
    EXPECT_DOUBLE_EQ(
        p.adr_redirect[static_cast<int>(isa::TimingFamily::kJump)].anchor_ps, 1172.0);
}

TEST(TimingParams, MulOwnsTheCriticalPath) {
    const auto& p = timing_params(DesignVariant::kCriticalRangeOptimized);
    EXPECT_DOUBLE_EQ(
        p.bands[static_cast<std::size_t>(Stage::kEx)][static_cast<int>(isa::TimingFamily::kMul)]
            .sta_ps,
        p.static_period_ps);
}

TEST(TimingParams, ConventionalHasTimingWall) {
    // Most conventional EX anchors sit close to the conventional static
    // period; the optimized ones are spread far below theirs.
    const auto& conv = timing_params(DesignVariant::kConventional);
    const auto& opt = timing_params(DesignVariant::kCriticalRangeOptimized);
    int conv_near = 0;
    int opt_near = 0;
    for (int f = 0; f < isa::kTimingFamilyCount; ++f) {
        if (conv.bands[static_cast<std::size_t>(Stage::kEx)][static_cast<std::size_t>(f)].anchor_ps >=
            0.8 * conv.static_period_ps) {
            ++conv_near;
        }
        if (opt.bands[static_cast<std::size_t>(Stage::kEx)][static_cast<std::size_t>(f)].anchor_ps >=
            0.8 * opt.static_period_ps) {
            ++opt_near;
        }
    }
    EXPECT_GT(conv_near, opt_near + 4);
}

TEST(TimingParams, TableIFactorsReproduced) {
    const auto& conv = timing_params(DesignVariant::kConventional);
    const auto& opt = timing_params(DesignVariant::kCriticalRangeOptimized);
    const auto factor = [&](isa::TimingFamily f) {
        return opt.bands[static_cast<std::size_t>(Stage::kEx)][static_cast<int>(f)].anchor_ps /
               conv.bands[static_cast<std::size_t>(Stage::kEx)][static_cast<int>(f)].anchor_ps;
    };
    EXPECT_NEAR(factor(isa::TimingFamily::kAdd), 0.92, 0.01);     // Table I l.add(i)
    EXPECT_NEAR(factor(isa::TimingFamily::kLoad), 0.85, 0.01);    // Table I l.lwz
    EXPECT_NEAR(factor(isa::TimingFamily::kMul), 1.10, 0.01);     // Table I l.mul
    EXPECT_NEAR(factor(isa::TimingFamily::kNop), 0.78, 0.01);     // Table I l.nop
    EXPECT_NEAR(factor(isa::TimingFamily::kStore), 0.85, 0.01);   // Table I l.sw
}

// ---- Cell library -----------------------------------------------------------

TEST(CellLibrary, NominalPointIsUnity) {
    // Exactly 1.0, not approximately: 0.70 V is a grid node of the
    // log-interpolated table, so delay_scale evaluates exp(0). The nominal-
    // once characterization depends on this — a sweep cell AT the nominal
    // voltage must see the nominal table itself, bit for bit.
    EXPECT_EQ(CellLibrary::fdsoi28().delay_scale(kNominalVoltageV), 1.0);
    EXPECT_EQ(kNominalVoltageV, 0.70);
}

TEST(CellLibrary, PaperIsoThroughputPoint) {
    // delay_scale(0.63) = 1.376 puts the iso-throughput voltage 70 mV down.
    EXPECT_NEAR(CellLibrary::fdsoi28().delay_scale(0.63), 1.376, 0.002);
}

TEST(CellLibrary, DelayMonotoneDecreasingInVoltage) {
    const auto& lib = CellLibrary::fdsoi28();
    double prev = lib.delay_scale(0.50);
    for (double v = 0.51; v <= 0.90; v += 0.01) {
        const double s = lib.delay_scale(v);
        EXPECT_LT(s, prev) << "at " << v;
        prev = s;
    }
}

TEST(CellLibrary, PowerQuadraticInVoltage) {
    const auto& lib = CellLibrary::fdsoi28();
    const double p70 = lib.dynamic_uw_per_mhz(0.70);
    const double p63 = lib.dynamic_uw_per_mhz(0.63);
    EXPECT_NEAR(p63 / p70, (0.63 * 0.63) / (0.70 * 0.70), 0.01);
}

TEST(CellLibrary, RejectsBadTables) {
    EXPECT_THROW(CellLibrary({{0.7, 1.0, 1.0, 1.0}}), Error);  // single point
    EXPECT_THROW(CellLibrary({{0.7, 1, 1, 1}, {0.6, 1, 1, 1}}), Error);  // descending
}

// ---- Synthetic netlist / STA --------------------------------------------------

TEST(Netlist, StaMatchesCalibration) {
    DesignConfig config;
    const auto netlist = SyntheticNetlist::generate(config);
    EXPECT_NEAR(netlist.static_period_ps(), 2026.0, 1e-6);
    config.variant = DesignVariant::kConventional;
    EXPECT_NEAR(SyntheticNetlist::generate(config).static_period_ps(), 1859.0, 1e-6);
}

TEST(Netlist, StaScalesWithVoltage) {
    DesignConfig config;
    config.voltage_v = 0.63;
    const auto netlist = SyntheticNetlist::generate(config);
    EXPECT_NEAR(netlist.static_period_ps(), 2026.0 * 1.376, 3.0);
}

TEST(Netlist, EveryStageHasEndpoints) {
    const auto netlist = SyntheticNetlist::generate({});
    for (int s = 0; s < sim::kStageCount; ++s) {
        EXPECT_FALSE(netlist.endpoints_of_stage(static_cast<Stage>(s)).empty());
    }
}

TEST(Netlist, CachedStageListsAndSoaMatchEndpoints) {
    const auto netlist = SyntheticNetlist::generate({});
    const auto& soa = netlist.endpoint_soa();
    ASSERT_EQ(soa.size(), netlist.endpoints().size());
    ASSERT_EQ(soa.stage_begin[0], 0u);
    ASSERT_EQ(soa.stage_begin[sim::kStageCount], soa.size());

    std::size_t soa_index = 0;
    for (int s = 0; s < sim::kStageCount; ++s) {
        const auto stage = static_cast<Stage>(s);
        // The cached per-stage list equals a fresh scan of the endpoints.
        std::vector<int> scanned;
        for (const auto& e : netlist.endpoints()) {
            if (e.stage == stage) scanned.push_back(e.id);
        }
        EXPECT_EQ(netlist.endpoints_of_stage(stage), scanned);

        // The SoA slice of the stage mirrors the same endpoints, in the
        // same order, with the jitter-hash constant precomputed.
        ASSERT_EQ(soa.stage_begin[static_cast<std::size_t>(s)], soa_index);
        ASSERT_EQ(soa.stage_size(s), scanned.size());
        for (const int id : scanned) {
            const Endpoint& e = netlist.endpoint(id);
            EXPECT_EQ(soa.id[soa_index], id);
            EXPECT_DOUBLE_EQ(soa.skew_ps[soa_index], e.skew_ps);
            EXPECT_DOUBLE_EQ(soa.setup_ps[soa_index], e.setup_ps);
            EXPECT_EQ(soa.jitter_key[soa_index], static_cast<std::uint64_t>(id) * 7919ULL);
            ++soa_index;
        }
    }
}

TEST(Netlist, TimingWallVisibleInNearCriticalCount) {
    DesignConfig opt;
    DesignConfig conv;
    conv.variant = DesignVariant::kConventional;
    const auto opt_netlist = SyntheticNetlist::generate(opt);
    const auto conv_netlist = SyntheticNetlist::generate(conv);
    // Fraction of paths within 15% of the critical path (Fig. 3 wall).
    const double opt_frac =
        static_cast<double>(opt_netlist.near_critical_count(0.15 * opt_netlist.static_period_ps())) /
        static_cast<double>(opt_netlist.paths().size());
    const double conv_frac =
        static_cast<double>(
            conv_netlist.near_critical_count(0.15 * conv_netlist.static_period_ps())) /
        static_cast<double>(conv_netlist.paths().size());
    EXPECT_GT(conv_frac, 2.0 * opt_frac);
}

TEST(Netlist, DeterministicForSeed) {
    DesignConfig config;
    const auto a = SyntheticNetlist::generate(config);
    const auto b = SyntheticNetlist::generate(config);
    ASSERT_EQ(a.paths().size(), b.paths().size());
    for (std::size_t i = 0; i < a.paths().size(); ++i) {
        EXPECT_DOUBLE_EQ(a.paths()[i].sta_delay_ps, b.paths()[i].sta_delay_ps);
    }
}

TEST(Netlist, HistogramCoversAllPaths) {
    const auto netlist = SyntheticNetlist::generate({});
    EXPECT_EQ(netlist.path_delay_histogram().total(), netlist.paths().size());
}

// ---- Delay calculator ---------------------------------------------------------

TEST(DelayCalculator, Deterministic) {
    const DelayCalculator calc({});
    const auto r = record_with_ex(Opcode::kAdd, 123, 456, 10);
    const auto a = calc.evaluate(r);
    const auto b = calc.evaluate(r);
    EXPECT_DOUBLE_EQ(a.required_period_ps, b.required_period_ps);
}

TEST(DelayCalculator, NeverExceedsStatic) {
    const DelayCalculator calc({});
    for (std::uint64_t c = 0; c < 3000; ++c) {
        const auto delays =
            calc.evaluate(record_with_ex(Opcode::kMul, 0xffffffffu, 0xffffffffu, c));
        EXPECT_LE(delays.required_period_ps, calc.static_period_ps());
    }
}

TEST(DelayCalculator, WorstCaseOperandsApproachAnchor) {
    const DelayCalculator calc({});
    double worst = 0;
    for (std::uint64_t c = 0; c < 4000; ++c) {
        // Full-length carry chain: data_factor = 0.
        const auto delays = calc.evaluate(record_with_ex(Opcode::kAdd, 0xffffffffu, 1u, c));
        worst = std::max(worst, delays.stage_ps[static_cast<std::size_t>(Stage::kEx)]);
    }
    EXPECT_LE(worst, 1467.0);
    EXPECT_GT(worst, 1467.0 - 5.0);  // jitter tail reaches the anchor
}

TEST(DelayCalculator, EasyOperandsAreFaster) {
    const DelayCalculator calc({});
    RunningStats hard;
    RunningStats easy;
    for (std::uint64_t c = 0; c < 500; ++c) {
        hard.add(calc.evaluate(record_with_ex(Opcode::kAdd, 0xffffffffu, 1u, c))
                     .stage_ps[static_cast<std::size_t>(Stage::kEx)]);
        easy.add(calc.evaluate(record_with_ex(Opcode::kAdd, 1u, 1u, c))
                     .stage_ps[static_cast<std::size_t>(Stage::kEx)]);
    }
    EXPECT_GT(hard.mean(), easy.mean() + 50.0);
}

TEST(DelayCalculator, MulIsSlowerThanShift) {
    const DelayCalculator calc({});
    RunningStats mul;
    RunningStats shift;
    for (std::uint64_t c = 0; c < 500; ++c) {
        mul.add(calc.evaluate(record_with_ex(Opcode::kMul, 0x12345678u, 0x9abcdef0u, c))
                    .required_period_ps);
        shift.add(calc.evaluate(record_with_ex(Opcode::kSlli, 0x12345678u, 7u, c))
                      .required_period_ps);
    }
    EXPECT_GT(mul.mean(), shift.mean() + 300.0);
}

TEST(DelayCalculator, VoltageScalingAppliesUniformly) {
    DesignConfig low;
    low.voltage_v = 0.60;
    const DelayCalculator nominal({});
    const DelayCalculator scaled(low);
    const auto r = record_with_ex(Opcode::kXor, 0xf0f0f0f0u, 0x0f0f0f0fu, 42);
    const double ratio =
        scaled.evaluate(r).required_period_ps / nominal.evaluate(r).required_period_ps;
    EXPECT_NEAR(ratio, CellLibrary::fdsoi28().delay_scale(0.60), 1e-6);
}

TEST(DelayCalculator, RedirectCyclesChargeTheJump) {
    const DelayCalculator calc({});
    CycleRecord r = record_with_ex(Opcode::kNop, 0, 0, 7);
    r.fetch_redirect = true;
    r.redirect_source = Opcode::kJ;
    const auto with_redirect = calc.evaluate(r);
    r.fetch_redirect = false;
    const auto without = calc.evaluate(r);
    EXPECT_GT(with_redirect.stage_ps[static_cast<std::size_t>(Stage::kAdr)],
              without.stage_ps[static_cast<std::size_t>(Stage::kAdr)]);
}

// ---- Occupancy classification ----------------------------------------------

TEST(OccupancyClass, BubbleAndHeld) {
    StageView bubble;
    EXPECT_EQ(occupancy_class(bubble), kBubbleClass);
    StageView held = view_of(Opcode::kAdd);
    held.held = true;
    EXPECT_EQ(occupancy_class(held), kHeldClass);
    StageView div_held = view_of(Opcode::kDiv);
    div_held.held = true;
    EXPECT_EQ(occupancy_class(div_held), static_cast<int>(isa::TimingFamily::kDiv));
}

TEST(OccupancyClass, AdrAttribution) {
    CycleRecord r = record_with_ex(Opcode::kAdd, 1, 2, 3);
    EXPECT_EQ(adr_occupancy_class(r), static_cast<int>(isa::TimingFamily::kAdd));
    r.fetch_redirect = true;
    r.redirect_source = Opcode::kBf;
    EXPECT_EQ(adr_occupancy_class(r), static_cast<int>(isa::TimingFamily::kBranch));
}

TEST(OccupancyClass, Names) {
    EXPECT_EQ(occupancy_class_name(kBubbleClass), "bubble");
    EXPECT_EQ(occupancy_class_name(kHeldClass), "held");
    EXPECT_EQ(occupancy_class_name(static_cast<int>(isa::TimingFamily::kMul)), "mul");
}

}  // namespace
}  // namespace focs::timing
