// Shared helpers for tests: assemble-and-run convenience wrappers.
#pragma once

#include <string>

#include "asm/assembler.hpp"
#include "sim/machine.hpp"

namespace focs::test {

struct RunOutcome {
    sim::RunResult result;
    std::array<std::uint32_t, 32> registers{};
    bool flag = false;
};

/// Assembles `source`, runs it to completion and captures final state.
inline RunOutcome run_asm(const std::string& source, sim::MachineConfig config = {}) {
    sim::Machine machine(config);
    machine.load(assembler::assemble(source));
    RunOutcome outcome;
    outcome.result = machine.run();
    for (int r = 0; r < 32; ++r) {
        outcome.registers[static_cast<std::size_t>(r)] =
            machine.pipeline().registers().read(static_cast<std::uint8_t>(r));
    }
    outcome.flag = machine.pipeline().flag();
    return outcome;
}

/// Standard epilogue (exit 0 + pipeline-drain padding).
inline const char* exit_seq() {
    return "  l.nop 0x1\n  l.nop\n  l.nop\n  l.nop\n  l.nop\n";
}

}  // namespace focs::test
