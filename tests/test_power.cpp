// Power model and voltage-frequency scaling tests (paper Sec. IV-B
// calibration: 13.7 uW/MHz at 0.70 V / 494 MHz; -70 mV at iso-throughput
// for a 1.376x speedup; ~24% energy-efficiency gain).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "power/power_model.hpp"
#include "power/vf_scaling.hpp"

namespace focs::power {
namespace {

using timing::DesignVariant;

TEST(PowerModel, PaperCalibrationAtNominal) {
    const PowerModel model(DesignVariant::kCriticalRangeOptimized);
    const PowerBreakdown p = model.at(0.70, 494.0);
    EXPECT_NEAR(p.uw_per_mhz, 13.7, 0.1);
}

TEST(PowerModel, LeakageIsSmallFraction) {
    const PowerModel model(DesignVariant::kCriticalRangeOptimized);
    const PowerBreakdown p = model.at(0.70, 494.0);
    EXPECT_LT(p.leakage_uw / p.total_uw, 0.02);
    EXPECT_NEAR(p.total_uw, p.dynamic_uw + p.leakage_uw, 1e-9);
}

TEST(PowerModel, MonotoneInVoltageAndFrequency) {
    const PowerModel model(DesignVariant::kCriticalRangeOptimized);
    EXPECT_LT(model.at(0.60, 400.0).total_uw, model.at(0.70, 400.0).total_uw);
    EXPECT_LT(model.at(0.70, 300.0).total_uw, model.at(0.70, 500.0).total_uw);
}

TEST(PowerModel, CriticalRangeVariantCostsPower) {
    const PowerModel opt(DesignVariant::kCriticalRangeOptimized);
    const PowerModel conv(DesignVariant::kConventional);
    const double ratio = opt.at(0.70, 494.0).total_uw / conv.at(0.70, 494.0).total_uw;
    EXPECT_NEAR(ratio, 1.08, 0.001);  // paper: 5-13% penalty band
}

TEST(PowerModel, RejectsNonPositiveFrequency) {
    const PowerModel model(DesignVariant::kCriticalRangeOptimized);
    EXPECT_THROW(model.at(0.7, 0.0), Error);
}

TEST(VfScaler, SolvesPaperOperatingPoint) {
    const PowerModel model(DesignVariant::kCriticalRangeOptimized);
    const VoltageFrequencyScaler scaler(model);
    // 1.376x speedup at 0.70 V -> iso-throughput at ~0.63 V (paper: -70 mV).
    const double v = scaler.solve_voltage_for_frequency(494.0 * 1.376, 0.70, 494.0);
    EXPECT_NEAR(v, 0.63, 0.005);
}

TEST(VfScaler, IsoThroughputMatchesPaperNumbers) {
    const PowerModel model(DesignVariant::kCriticalRangeOptimized);
    const VoltageFrequencyScaler scaler(model);
    const IsoThroughputResult r = scaler.iso_throughput(494.0, 1.376, 0.70);
    EXPECT_NEAR(r.voltage_reduction_mv, 70.0, 6.0);
    EXPECT_NEAR(r.baseline_power.uw_per_mhz, 13.7, 0.1);
    EXPECT_NEAR(r.scaled_power.uw_per_mhz, 11.0, 0.25);
    // 13.7 / 11.0 - 1 = 24.5% efficiency gain (the paper's "24%").
    EXPECT_NEAR(r.efficiency_gain, 0.245, 0.03);
    EXPECT_GT(r.power_reduction, 0.15);
}

TEST(VfScaler, NoSpeedupMeansNoScaling) {
    const PowerModel model(DesignVariant::kCriticalRangeOptimized);
    const VoltageFrequencyScaler scaler(model);
    const IsoThroughputResult r = scaler.iso_throughput(494.0, 1.0, 0.70);
    EXPECT_NEAR(r.scaled_voltage_v, 0.70, 0.002);
    EXPECT_NEAR(r.efficiency_gain, 0.0, 0.01);
}

TEST(VfScaler, LargerSpeedupScalesLower) {
    const PowerModel model(DesignVariant::kCriticalRangeOptimized);
    const VoltageFrequencyScaler scaler(model);
    const auto small = scaler.iso_throughput(494.0, 1.2, 0.70);
    const auto large = scaler.iso_throughput(494.0, 1.5, 0.70);
    EXPECT_LT(large.scaled_voltage_v, small.scaled_voltage_v);
    EXPECT_GT(large.efficiency_gain, small.efficiency_gain);
}

TEST(VfScaler, UnreachableTargetThrows) {
    const PowerModel model(DesignVariant::kCriticalRangeOptimized);
    const VoltageFrequencyScaler scaler(model);
    // Demanding 10x the achievable frequency cannot be solved upward.
    EXPECT_THROW(scaler.solve_voltage_for_frequency(494.0, 0.70, 4940.0), Error);
}

TEST(VfScaler, SubSpeedupRejected) {
    const PowerModel model(DesignVariant::kCriticalRangeOptimized);
    const VoltageFrequencyScaler scaler(model);
    EXPECT_THROW(scaler.iso_throughput(494.0, 0.9, 0.70), Error);
}

}  // namespace
}  // namespace focs::power
