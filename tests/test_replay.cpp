// Record/replay correctness: a replayed evaluation must be byte-identical
// to a live DcaEngine::run of the same cell — for every bundled PolicyKind,
// every clock-generator family, at every replay block size (including odd
// boundaries), and through the generic virtual-policy fallback. The
// voltage-invariance contract is tested explicitly: one fused unit delay
// pass per trace must serve every operating point bit-identically to the
// per-voltage reference pass.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "asm/assembler.hpp"
#include "clock/clock_generator.hpp"
#include "common/error.hpp"
#include "core/dca_engine.hpp"
#include "core/flows.hpp"
#include "core/policies.hpp"
#include "core/replay_engine.hpp"
#include "core/replay_kernels.hpp"
#include "sim/trace_recorder.hpp"
#include "timing/cell_library.hpp"
#include "timing/trace_delays.hpp"
#include "workloads/kernel.hpp"

namespace focs::core {
namespace {

constexpr PolicyKind kAllKinds[] = {PolicyKind::kStatic,    PolicyKind::kGenie,
                                    PolicyKind::kInstructionLut, PolicyKind::kExOnly,
                                    PolicyKind::kTwoClass,  PolicyKind::kApproxLut,
                                    PolicyKind::kDualCycle};

/// Shared fixture artifacts: one characterized table and one recorded trace
/// (crc32 exercises redirects, loads and held cycles), built once. The
/// required-period ground truth is the voltage-free unit array plus the
/// design point's ScaledTraceDelays view.
struct ReplayFixture {
    timing::DesignConfig design;
    dta::DelayTable table;
    assembler::Program program;
    sim::PipelineTrace trace;
    std::shared_ptr<const timing::UnitTraceDelays> unit;
    timing::ScaledTraceDelays delays;

    ReplayFixture()
        : table(CharacterizationFlow(design)
                    .run(workloads::assemble_programs(workloads::characterization_suite()))
                    .table),
          program(assembler::assemble(workloads::find_kernel("crc32").source)),
          trace(sim::record_trace(program)),
          unit(std::make_shared<const timing::UnitTraceDelays>(
              timing::compute_unit_trace_delays(timing::DelayCalculator(design),
                                                trace.records))),
          delays(timing::scale_trace_delays(unit, timing::DelayCalculator(design))) {}
};

const ReplayFixture& fixture() {
    static const ReplayFixture f;
    return f;
}

/// Exact (bitwise) equality of every DcaRunResult field — the replay
/// contract is byte-identity, so no tolerances anywhere.
void expect_identical(const DcaRunResult& live, const DcaRunResult& replayed) {
    EXPECT_EQ(live.policy, replayed.policy);
    EXPECT_EQ(live.clock_generator, replayed.clock_generator);
    EXPECT_EQ(live.cycles, replayed.cycles);
    EXPECT_EQ(live.total_time_ps, replayed.total_time_ps);
    EXPECT_EQ(live.avg_period_ps, replayed.avg_period_ps);
    EXPECT_EQ(live.eff_freq_mhz, replayed.eff_freq_mhz);
    EXPECT_EQ(live.static_period_ps, replayed.static_period_ps);
    EXPECT_EQ(live.speedup_vs_static, replayed.speedup_vs_static);
    EXPECT_EQ(live.timing_violations, replayed.timing_violations);
    EXPECT_EQ(live.worst_violation_ps, replayed.worst_violation_ps);
    EXPECT_EQ(live.guest.exit_code, replayed.guest.exit_code);
    EXPECT_EQ(live.guest.cycles, replayed.guest.cycles);
    EXPECT_EQ(live.guest.instructions, replayed.guest.instructions);
    EXPECT_EQ(live.guest.reports, replayed.guest.reports);
}

std::unique_ptr<clocking::ClockGenerator> make_generator(int which, double static_period_ps) {
    switch (which) {
        case 1:
            return std::make_unique<clocking::QuantizedClockGenerator>(
                clocking::QuantizedClockGenerator::for_static_period(static_period_ps, 8));
        case 2:
            return std::make_unique<clocking::PllBankClockGenerator>(
                std::vector<double>{0.6 * static_period_ps, 0.8 * static_period_ps,
                                    static_period_ps},
                4);
        default: return nullptr;  // ideal
    }
}

TEST(Replay, MatchesLiveForEveryPolicyAndGenerator) {
    const ReplayFixture& f = fixture();
    const ReplayEvaluationEngine engine(f.trace, f.delays, f.table);
    for (const PolicyKind kind : kAllKinds) {
        for (int which = 0; which < 3; ++which) {
            SCOPED_TRACE(policy_kind_name(kind) + "/generator" + std::to_string(which));
            auto live_generator = make_generator(which, f.delays.static_period_ps);
            const DcaRunResult live =
                evaluate_cell(f.design, f.table, f.program, kind, live_generator.get());
            auto replay_generator = make_generator(which, f.delays.static_period_ps);
            const DcaRunResult replayed = engine.run(kind, replay_generator.get());
            expect_identical(live, replayed);
        }
    }
}

TEST(Replay, ApproxLutKindProvokesViolationsLikeLive) {
    // The promoted approx-lut kind deliberately under-clocks; its replayed
    // violation accounting must match the live run *and* be non-trivial, or
    // the parity above proves less than it claims.
    const ReplayFixture& f = fixture();
    const ReplayEvaluationEngine engine(f.trace, f.delays, f.table);
    const DcaRunResult replayed = engine.run(PolicyKind::kApproxLut);
    EXPECT_GT(replayed.timing_violations, 0u);
    EXPECT_EQ(replayed.policy, "approx-lut/0.90");
}

TEST(Replay, BlockBoundariesDoNotChangeResults) {
    const ReplayFixture& f = fixture();
    // Odd block sizes, a single-cycle block, and one block spanning the
    // whole trace must all reproduce the default's bytes (the stateful PLL
    // generator is the sharpest detector of a boundary bug).
    const ReplayEvaluationEngine reference(f.trace, f.delays, f.table);
    for (const int block : {1, 3, 7, 1023, 1 << 20}) {
        ReplayOptions options;
        options.block_cycles = block;
        const ReplayEvaluationEngine engine(f.trace, f.delays, f.table, options);
        for (const PolicyKind kind : kAllKinds) {
            SCOPED_TRACE("block=" + std::to_string(block) + " " + policy_kind_name(kind));
            auto generator_a = make_generator(2, f.delays.static_period_ps);
            auto generator_b = make_generator(2, f.delays.static_period_ps);
            expect_identical(reference.run(kind, generator_a.get()),
                             engine.run(kind, generator_b.get()));
        }
    }
}

TEST(Replay, GenericFallbackMatchesLiveForCustomPolicy) {
    const ReplayFixture& f = fixture();
    // A policy instance outside the promoted grid points (a non-default
    // approx scale) exercises DcaEngine::replay, the virtual-dispatch
    // fallback over the recorded CycleRecords.
    ApproximateLutPolicy live_policy(f.table, 0.92);
    ApproximateLutPolicy replay_policy(f.table, 0.92);
    DcaEngine engine(f.design);
    const DcaRunResult live = engine.run(f.program, live_policy);
    const DcaRunResult replayed = engine.replay(f.trace, replay_policy);
    expect_identical(live, replayed);
    // The 0.92 scale must actually provoke violations, or this proves less
    // than it claims about the violation accounting.
    EXPECT_GT(live.timing_violations, 0u);
}

TEST(Replay, SharedGroundTruthFallbackMatchesEvaluatingFallback) {
    // The ScaledTraceDelays overload of DcaEngine::replay derives the per-
    // cycle requirement from the shared unit array instead of re-running
    // the delay model; for policies honouring the PolicyContext contract
    // (actual is the genie's channel) it must reproduce the evaluating
    // fallback's bytes.
    const ReplayFixture& f = fixture();
    DcaEngine engine(f.design);
    ApproximateLutPolicy evaluating(f.table, 0.92);
    ApproximateLutPolicy shared(f.table, 0.92);
    expect_identical(engine.replay(f.trace, evaluating),
                     engine.replay(f.trace, f.delays, shared));

    GenieOraclePolicy genie_a;
    GenieOraclePolicy genie_b;
    auto generator_a = make_generator(2, f.delays.static_period_ps);
    auto generator_b = make_generator(2, f.delays.static_period_ps);
    expect_identical(engine.replay(f.trace, genie_a, *generator_a),
                     engine.replay(f.trace, f.delays, genie_b, *generator_b));
}

TEST(Replay, GenericFallbackMatchesDevirtualizedKernels) {
    const ReplayFixture& f = fixture();
    const ReplayEvaluationEngine engine(f.trace, f.delays, f.table);
    DcaEngine dca(f.design);
    for (const PolicyKind kind : kAllKinds) {
        SCOPED_TRACE(policy_kind_name(kind));
        const auto policy = make_policy(kind, f.table, f.delays.static_period_ps);
        auto generator_a = make_generator(1, f.delays.static_period_ps);
        auto generator_b = make_generator(1, f.delays.static_period_ps);
        expect_identical(dca.replay(f.trace, *policy, *generator_a),
                         engine.run(kind, generator_b.get()));
    }
}

TEST(Replay, RunBatchSharesOneTrace) {
    const ReplayFixture& f = fixture();
    const ReplayEvaluationEngine engine(f.trace, f.delays, f.table);
    auto taps = make_generator(1, f.delays.static_period_ps);
    const std::vector<ReplayRequest> requests = {
        {PolicyKind::kStatic, nullptr},
        {PolicyKind::kInstructionLut, nullptr},
        {PolicyKind::kInstructionLut, taps.get()},
        {PolicyKind::kDualCycle, nullptr},
        {PolicyKind::kGenie, nullptr},
    };
    const auto results = engine.run_batch(requests);
    ASSERT_EQ(results.size(), requests.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        auto generator = make_generator(requests[i].generator != nullptr ? 1 : 0,
                                        f.delays.static_period_ps);
        expect_identical(
            evaluate_cell(f.design, f.table, f.program, requests[i].policy, generator.get()),
            results[i]);
    }
}

TEST(Replay, ParameterizedSpecsDispatchToKernelsAndMatchLive) {
    const ReplayFixture& f = fixture();
    // Parameterized grid points must hit the same devirtualized kernel
    // paths as their default-parameter kinds: the replayed result, the
    // scalar-forced replayed result, and the live run are all byte-
    // identical, for every generator family.
    const ReplayEvaluationEngine engine(f.trace, f.delays, f.table);
    ReplayOptions scalar_options;
    scalar_options.force_scalar = true;
    const ReplayEvaluationEngine scalar(f.trace, f.delays, f.table, scalar_options);
    for (const char* text : {"approx-lut:0.8", "approx-lut:0.95", "dual-cycle:3",
                             "dual-cycle:1", "dual-cycle:1.5"}) {
        const PolicySpec spec = PolicySpec::parse(text);
        for (int which = 0; which < 3; ++which) {
            SCOPED_TRACE(std::string(text) + "/generator" + std::to_string(which));
            auto live_generator = make_generator(which, f.delays.static_period_ps);
            const DcaRunResult live =
                evaluate_cell(f.design, f.table, f.program, spec, live_generator.get());
            auto replay_generator = make_generator(which, f.delays.static_period_ps);
            expect_identical(live, engine.run(spec, replay_generator.get()));
            auto scalar_generator = make_generator(which, f.delays.static_period_ps);
            expect_identical(live, scalar.run(spec, scalar_generator.get()));
        }
    }
    // The parameter reaches the policy: a non-default scale shows up in the
    // reported name and changes the figures.
    const DcaRunResult tight = engine.run(PolicySpec::parse("approx-lut:0.8"));
    EXPECT_EQ(tight.policy, "approx-lut/0.80");
    EXPECT_GT(tight.timing_violations, engine.run(PolicyKind::kApproxLut).timing_violations);
    EXPECT_EQ(engine.run(PolicySpec::parse("dual-cycle:3")).policy, "dual-cycle/3.00");
    // The defaults keep their historical names (result bytes unchanged).
    EXPECT_EQ(engine.run(PolicySpec::parse("dual-cycle:2")).policy, "dual-cycle");
    EXPECT_EQ(engine.run(PolicySpec::parse("approx-lut:0.9")).policy, "approx-lut/0.90");
}

TEST(Replay, FusedRunIsByteIdenticalToPerVariantRuns) {
    const ReplayFixture& f = fixture();
    const ReplayEvaluationEngine engine(f.trace, f.delays, f.table);
    // One fused pass over {ideal, taps, pll} vs three independent runs:
    // byte-identical per variant, for every policy kind (the request fill
    // is generator-independent, so fusion must not perturb a single bit).
    const std::vector<PolicySpec> specs = {
        PolicyKind::kStatic,          PolicyKind::kGenie,
        PolicyKind::kInstructionLut,  PolicyKind::kExOnly,
        PolicyKind::kTwoClass,        PolicyKind::kApproxLut,
        PolicyKind::kDualCycle,       PolicySpec::parse("approx-lut:0.8"),
        PolicySpec::parse("dual-cycle:3")};
    for (const PolicySpec& spec : specs) {
        SCOPED_TRACE(spec.label());
        std::vector<std::unique_ptr<clocking::ClockGenerator>> owned;
        std::vector<clocking::ClockGenerator*> variants;
        for (int which = 0; which < 3; ++which) {
            owned.push_back(make_generator(which, f.delays.static_period_ps));
            variants.push_back(owned.back().get());  // nullptr for ideal
        }
        const auto fused = engine.run_fused(spec, variants);
        ASSERT_EQ(fused.size(), variants.size());
        for (int which = 0; which < 3; ++which) {
            SCOPED_TRACE("generator" + std::to_string(which));
            auto solo = make_generator(which, f.delays.static_period_ps);
            expect_identical(engine.run(spec, solo.get()), fused[static_cast<std::size_t>(which)]);
        }
    }
    // Degenerate shapes: a single-variant fuse delegates to run(), an empty
    // variant list is a no-op.
    auto solo = make_generator(1, f.delays.static_period_ps);
    auto again = make_generator(1, f.delays.static_period_ps);
    const auto one = engine.run_fused(PolicyKind::kInstructionLut, {solo.get()});
    ASSERT_EQ(one.size(), 1u);
    expect_identical(engine.run(PolicyKind::kInstructionLut, again.get()), one[0]);
    EXPECT_TRUE(engine.run_fused(PolicyKind::kInstructionLut, {}).empty());
}

TEST(TraceRecorder, CapturesGuestMetadataAndKeys) {
    const ReplayFixture& f = fixture();
    sim::Machine machine;
    machine.load(f.program);
    const sim::RunResult direct = machine.run();
    EXPECT_EQ(f.trace.guest.exit_code, direct.exit_code);
    EXPECT_EQ(f.trace.guest.cycles, direct.cycles);
    EXPECT_EQ(f.trace.guest.instructions, direct.instructions);
    EXPECT_EQ(f.trace.guest.reports, direct.reports);
    EXPECT_EQ(f.trace.cycles(), direct.cycles);

    // The stage-major SoA rows are exactly attribution_keys of each record.
    ASSERT_EQ(f.trace.records.size(), f.trace.stage_keys[0].size());
    for (std::size_t c = 0; c < f.trace.records.size(); c += 97) {
        const auto keys = dta::attribution_keys(f.trace.records[c]);
        for (int s = 0; s < sim::kStageCount; ++s) {
            EXPECT_EQ(f.trace.stage_keys[static_cast<std::size_t>(s)][c],
                      keys[static_cast<std::size_t>(s)])
                << "cycle " << c << " stage " << s;
        }
    }
}

TEST(TraceDelays, UnitPassMatchesPerCycleUnitEvaluation) {
    // The fused stage-major kernel must reproduce the per-cycle
    // evaluate_unit() exactly — value and limiting-stage attribution.
    const ReplayFixture& f = fixture();
    const timing::DelayCalculator calculator(f.design);
    ASSERT_EQ(f.unit->cycles(), f.trace.cycles());
    EXPECT_EQ(f.unit->unit_static_period_ps, calculator.unit_static_period_ps());
    ASSERT_EQ(f.unit->limiting_stage.size(), f.trace.records.size());
    for (std::size_t c = 0; c < f.trace.records.size(); c += 131) {
        const timing::CycleDelays reference = calculator.evaluate_unit(f.trace.records[c]);
        EXPECT_EQ(f.unit->unit_required_period_ps[c], reference.required_period_ps)
            << "cycle " << c;
        EXPECT_EQ(f.unit->limiting_stage[c], reference.limiting_stage) << "cycle " << c;
    }
}

TEST(TraceDelays, ScaledViewMatchesPerCycleEvaluation) {
    const ReplayFixture& f = fixture();
    const timing::DelayCalculator calculator(f.design);
    ASSERT_EQ(f.delays.cycles(), f.trace.cycles());
    EXPECT_EQ(f.delays.static_period_ps, calculator.static_period_ps());
    for (std::size_t c = 0; c < f.trace.records.size(); c += 131) {
        EXPECT_EQ(f.delays.required_period_ps(c),
                  calculator.evaluate(f.trace.records[c]).required_period_ps)
            << "cycle " << c;
    }
}

TEST(TraceDelays, OneUnitPassServesEveryVoltageBitIdentically) {
    // The tentpole contract: for every benchmark kernel, the single unit
    // pass scaled to each point of a dense voltage grid must be
    // byte-identical to the per-voltage reference pass
    // (compute_trace_delays) — every cycle, every voltage, no tolerances.
    // Each trace is truncated to a prefix so the dense grid stays fast; the
    // identity is per-cycle, so a prefix proves the same thing.
    constexpr double kVoltages[] = {0.50, 0.55, 0.60, 0.65, 0.70,
                                    0.75, 0.80, 0.85, 0.90, 0.62};
    constexpr std::size_t kMaxCycles = 3000;
    for (const auto& kernel : workloads::benchmark_suite()) {
        SCOPED_TRACE(kernel.name);
        const auto program = assembler::assemble(kernel.source);
        const sim::PipelineTrace trace = sim::record_trace(program);
        const std::vector<sim::CycleRecord> records(
            trace.records.begin(),
            trace.records.begin() +
                static_cast<std::ptrdiff_t>(std::min(kMaxCycles, trace.records.size())));
        timing::DesignConfig design;
        const auto unit = std::make_shared<const timing::UnitTraceDelays>(
            timing::compute_unit_trace_delays(timing::DelayCalculator(design), records));
        for (const double voltage : kVoltages) {
            SCOPED_TRACE(voltage);
            design.voltage_v = voltage;
            const timing::DelayCalculator calculator(design);
            const timing::TraceDelays reference =
                timing::compute_trace_delays(calculator, records);
            const timing::ScaledTraceDelays scaled =
                timing::scale_trace_delays(unit, calculator);
            ASSERT_EQ(scaled.cycles(), reference.cycles());
            EXPECT_EQ(scaled.static_period_ps, reference.static_period_ps);
            const timing::TraceDelays materialized = scaled.materialize();
            // Vector equality is element-exact: one comparison per grid
            // point instead of a quadratic EXPECT storm.
            EXPECT_EQ(materialized.required_period_ps, reference.required_period_ps);
            EXPECT_EQ(materialized.static_period_ps, reference.static_period_ps);
        }
    }
}

TEST(Replay, ScalarReferenceAndSimdKernelsAreByteIdentical) {
    // The tentpole contract of the vectorized kernels: the default engine
    // (SIMD kernel table when compiled + supported, portable scalar table
    // otherwise, fixed-point period arithmetic either way) must reproduce
    // the force_scalar reference path byte for byte — for all 7 policy
    // kinds, across block sizes including single-cycle blocks and one
    // block spanning the whole trace, at two operating points (the second
    // voltage exercises a non-nominal delay scale through the fixed-point
    // mult+shift). The stateful PLL generator is the sharpest detector of
    // any divergence in the grant/integrate order.
    const ReplayFixture& f = fixture();
    const timing::CellLibrary& library = timing::CellLibrary::fdsoi28();
    const double nominal_scale = library.delay_scale(timing::DesignConfig{}.voltage_v);
    for (const double voltage : {timing::DesignConfig{}.voltage_v, 0.60}) {
        SCOPED_TRACE(voltage);
        timing::DesignConfig design = f.design;
        design.voltage_v = voltage;
        const timing::DelayCalculator calculator(design);
        const timing::ScaledTraceDelays delays = timing::scale_trace_delays(f.unit, calculator);
        const dta::DelayTable table =
            f.table.scaled(library.delay_scale(voltage) / nominal_scale);
        for (const int block : {1, 3, 7, 1023, 1 << 20}) {
            ReplayOptions reference_options;
            reference_options.block_cycles = block;
            reference_options.force_scalar = true;
            const ReplayEvaluationEngine reference(f.trace, delays, table, reference_options);
            ReplayOptions kernel_options;
            kernel_options.block_cycles = block;
            const ReplayEvaluationEngine kernels(f.trace, delays, table, kernel_options);
            // The comparison must actually cover the SIMD table wherever
            // one exists for this build/CPU (otherwise it still pins the
            // portable kernel table against the reference loops).
            EXPECT_EQ(kernels.simd_active(), simd_replay_kernels() != nullptr);
            for (const PolicyKind kind : kAllKinds) {
                for (const int which : {0, 2}) {
                    SCOPED_TRACE("block=" + std::to_string(block) + " " +
                                 policy_kind_name(kind) + "/generator" + std::to_string(which));
                    auto generator_a = make_generator(which, delays.static_period_ps);
                    auto generator_b = make_generator(which, delays.static_period_ps);
                    expect_identical(reference.run(kind, generator_a.get()),
                                     kernels.run(kind, generator_b.get()));
                }
            }
        }
    }
}

TEST(TraceDelays, PeriodScaleDecomposesExactly) {
    for (const double scale : {1.0, 0.7315, 1.6180339887, 2.25e-3, 317.5}) {
        const timing::PeriodScale decomposed = timing::PeriodScale::of(scale);
        ASSERT_TRUE(decomposed.valid) << scale;
        // mult carries a full 53-bit significand and the mult+shift
        // recomposition is exact — not an approximation like cyc2ns.
        EXPECT_GE(decomposed.mult, std::uint64_t{1} << 52);
        EXPECT_LT(decomposed.mult, std::uint64_t{1} << 53);
        EXPECT_EQ(static_cast<double>(decomposed.mult) * std::ldexp(1.0, decomposed.exp2),
                  scale);
    }
    EXPECT_FALSE(timing::PeriodScale::of(0.0).valid);
    EXPECT_FALSE(timing::PeriodScale::of(-1.0).valid);
    EXPECT_FALSE(timing::PeriodScale::of(std::numeric_limits<double>::infinity()).valid);
    EXPECT_FALSE(timing::PeriodScale::of(std::numeric_limits<double>::quiet_NaN()).valid);
}

TEST(TraceDelays, FixedPointPeriodMatchesDoublePathOnEveryBenchmarkKernel) {
    // The fixed-point proof: for every benchmark kernel at a dense voltage
    // grid, the integer mult+shift evaluator must resolve and reproduce
    // fl(unit * delay_scale) bit for bit on every cycle — no tolerances,
    // and no silent skips (a failed resolve would demote the hot loop to
    // the double path, so it fails the test). Prefix-truncated traces keep
    // the grid fast; the identity is per-cycle, so a prefix proves the
    // same thing.
    constexpr double kVoltages[] = {0.50, 0.54, 0.58, 0.62, 0.66, 0.70,
                                    0.74, 0.78, 0.82, 0.86, 0.90};
    constexpr std::size_t kMaxCycles = 3000;
    for (const auto& kernel : workloads::benchmark_suite()) {
        SCOPED_TRACE(kernel.name);
        const auto program = assembler::assemble(kernel.source);
        const sim::PipelineTrace trace = sim::record_trace(program);
        const std::vector<sim::CycleRecord> records(
            trace.records.begin(),
            trace.records.begin() +
                static_cast<std::ptrdiff_t>(std::min(kMaxCycles, trace.records.size())));
        timing::DesignConfig design;
        const auto unit = std::make_shared<const timing::UnitTraceDelays>(
            timing::compute_unit_trace_delays(timing::DelayCalculator(design), records));
        for (const double voltage : kVoltages) {
            SCOPED_TRACE(voltage);
            design.voltage_v = voltage;
            const timing::ScaledTraceDelays scaled =
                timing::scale_trace_delays(unit, timing::DelayCalculator(design));
            ASSERT_TRUE(scaled.period_scale.valid);
            const auto fixed = timing::FixedPointPeriod::resolve(scaled);
            ASSERT_TRUE(fixed.has_value());
            ASSERT_EQ(fixed->cycles(), scaled.cycles());
            std::vector<double> via_fixed(records.size());
            std::vector<double> via_double(records.size());
            for (std::size_t c = 0; c < records.size(); ++c) {
                via_fixed[c] = (*fixed)(c);
                via_double[c] = scaled.required_period_ps(c);
            }
            // Element-exact vector equality: one comparison per grid point.
            EXPECT_EQ(via_fixed, via_double);
        }
    }
}

TEST(Replay, RejectsMismatchedDelays) {
    const ReplayFixture& f = fixture();
    timing::UnitTraceDelays truncated = *f.unit;
    truncated.unit_required_period_ps.pop_back();
    timing::ScaledTraceDelays bad = f.delays;
    bad.unit = std::make_shared<const timing::UnitTraceDelays>(std::move(truncated));
    EXPECT_THROW(ReplayEvaluationEngine(f.trace, bad, f.table), Error);
    timing::ScaledTraceDelays null_view;
    EXPECT_THROW(ReplayEvaluationEngine(f.trace, null_view, f.table), Error);
    ReplayOptions options;
    options.block_cycles = 0;
    EXPECT_THROW(ReplayEvaluationEngine(f.trace, f.delays, f.table, options), Error);
}

}  // namespace
}  // namespace focs::core
