// Clock generator tests: request/grant contracts of all CG models.
#include <gtest/gtest.h>

#include "clock/clock_generator.hpp"
#include "common/error.hpp"

namespace focs::clocking {
namespace {

TEST(Ideal, GrantsExactly) {
    IdealClockGenerator cg;
    EXPECT_DOUBLE_EQ(cg.grant_period_ps(1234.5), 1234.5);
}

TEST(Quantized, CeilsToNextTap) {
    QuantizedClockGenerator cg(1000.0, 2000.0, 11);  // taps every 100 ps
    EXPECT_DOUBLE_EQ(cg.grant_period_ps(1000.0), 1000.0);
    EXPECT_DOUBLE_EQ(cg.grant_period_ps(1001.0), 1100.0);
    EXPECT_DOUBLE_EQ(cg.grant_period_ps(1399.9), 1400.0);
    EXPECT_DOUBLE_EQ(cg.grant_period_ps(555.0), 1000.0);  // below range: slowest-safe tap
}

TEST(Quantized, BeyondSlowestTapStretches) {
    QuantizedClockGenerator cg(1000.0, 2000.0, 3);
    EXPECT_DOUBLE_EQ(cg.grant_period_ps(2500.0), 2500.0);
}

TEST(Quantized, NeverUnsafe) {
    QuantizedClockGenerator cg = QuantizedClockGenerator::for_static_period(2026.0, 16);
    for (double request = 900.0; request < 2300.0; request += 13.7) {
        EXPECT_GE(cg.grant_period_ps(request), request);
    }
}

TEST(Quantized, SingleTapDegeneratesToStatic) {
    QuantizedClockGenerator cg = QuantizedClockGenerator::for_static_period(2026.0, 1);
    EXPECT_DOUBLE_EQ(cg.grant_period_ps(1100.0), 2026.0);
}

TEST(Quantized, MoreTapsNeverWorse) {
    QuantizedClockGenerator coarse = QuantizedClockGenerator::for_static_period(2026.0, 4);
    QuantizedClockGenerator fine = QuantizedClockGenerator::for_static_period(2026.0, 64);
    for (double request = 1013.0; request <= 2026.0; request += 7.0) {
        EXPECT_LE(fine.grant_period_ps(request), coarse.grant_period_ps(request));
    }
}

TEST(Quantized, RejectsBadConfig) {
    EXPECT_THROW(QuantizedClockGenerator(0.0, 100.0, 4), Error);
    EXPECT_THROW(QuantizedClockGenerator(200.0, 100.0, 4), Error);
    EXPECT_THROW(QuantizedClockGenerator(100.0, 200.0, 0), Error);
}

TEST(PllBank, SlowingDownIsImmediate) {
    PllBankClockGenerator cg({1000.0, 1500.0, 2000.0}, /*min_dwell_cycles=*/4);
    EXPECT_DOUBLE_EQ(cg.grant_period_ps(900.0), 1000.0);
    // Request slower: granted immediately.
    EXPECT_DOUBLE_EQ(cg.grant_period_ps(1800.0), 2000.0);
}

TEST(PllBank, SpeedingUpWaitsForDwell) {
    PllBankClockGenerator cg({1000.0, 2000.0}, /*min_dwell_cycles=*/3);
    EXPECT_DOUBLE_EQ(cg.grant_period_ps(2000.0), 2000.0);  // start slow, dwell=1
    EXPECT_DOUBLE_EQ(cg.grant_period_ps(1000.0), 2000.0);  // dwell 2: still slow
    EXPECT_DOUBLE_EQ(cg.grant_period_ps(1000.0), 2000.0);  // dwell 3: still slow
    EXPECT_DOUBLE_EQ(cg.grant_period_ps(1000.0), 1000.0);  // dwell satisfied
}

TEST(PllBank, AlwaysSafeDuringDwell) {
    PllBankClockGenerator cg({1000.0, 1400.0, 2000.0}, 5);
    for (double request : {2000.0, 1000.0, 1200.0, 1900.0, 1000.0, 1000.0, 1000.0}) {
        EXPECT_GE(cg.grant_period_ps(request), request);
    }
}

TEST(PllBank, ResetRestoresInitialState) {
    PllBankClockGenerator cg({1000.0, 2000.0}, 8);
    (void)cg.grant_period_ps(2000.0);
    cg.reset();
    EXPECT_DOUBLE_EQ(cg.grant_period_ps(1000.0), 1000.0);  // fresh start picks fast source
}

TEST(Names, AreDescriptive) {
    EXPECT_EQ(IdealClockGenerator().name(), "ideal");
    EXPECT_NE(QuantizedClockGenerator(1, 2, 4).name().find("4-taps"), std::string::npos);
    EXPECT_NE(PllBankClockGenerator({1.0}, 0).name().find("1-sources"), std::string::npos);
}

}  // namespace
}  // namespace focs::clocking
