// Architectural equivalence: the pipelined model and the golden-reference
// sequential interpreter must agree on every architecturally visible
// outcome — registers, flag, data memory, report stream, exit code and
// retired instruction count — for every bundled kernel and a sweep of
// randomly generated programs.
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "common/error.hpp"
#include "sim/machine.hpp"
#include "sim/reference_iss.hpp"
#include "workloads/kernel.hpp"
#include "workloads/testgen.hpp"

namespace focs::sim {
namespace {

struct ArchState {
    std::array<std::uint32_t, 32> regs{};
    bool flag = false;
    std::vector<std::uint8_t> dmem;
    RunResult result;
};

ArchState run_pipeline(const assembler::Program& program) {
    Machine machine;
    machine.load(program);
    ArchState state;
    state.result = machine.run();
    for (int r = 0; r < 32; ++r) {
        state.regs[static_cast<std::size_t>(r)] =
            machine.pipeline().registers().read(static_cast<std::uint8_t>(r));
    }
    state.flag = machine.pipeline().flag();
    state.dmem.reserve(machine.dmem().size());
    for (std::uint32_t i = 0; i < machine.dmem().size(); ++i) {
        state.dmem.push_back(machine.dmem().read_u8(machine.dmem().base() + i));
    }
    return state;
}

ArchState run_reference(const assembler::Program& program) {
    MachineConfig config;
    Sram imem("imem", 0, config.imem_size);
    Sram dmem("dmem", config.dmem_base, config.dmem_size);
    for (const auto& [addr, value] : program.bytes()) {
        (addr < config.dmem_base ? imem : dmem).write_u8(addr, value);
    }
    ReferenceIss iss(imem, dmem);
    iss.reset(program.entry());
    ArchState state;
    state.result = iss.run();
    for (int r = 0; r < 32; ++r) {
        state.regs[static_cast<std::size_t>(r)] =
            iss.registers().read(static_cast<std::uint8_t>(r));
    }
    state.flag = iss.flag();
    state.dmem.reserve(dmem.size());
    for (std::uint32_t i = 0; i < dmem.size(); ++i) {
        state.dmem.push_back(dmem.read_u8(dmem.base() + i));
    }
    return state;
}

void expect_equivalent(const assembler::Program& program, const std::string& label) {
    const ArchState pipe = run_pipeline(program);
    const ArchState ref = run_reference(program);
    EXPECT_EQ(pipe.result.exit_code, ref.result.exit_code) << label;
    EXPECT_EQ(pipe.result.reports, ref.result.reports) << label;
    EXPECT_EQ(pipe.result.instructions, ref.result.instructions)
        << label << ": retired instruction counts differ";
    EXPECT_EQ(pipe.regs, ref.regs) << label;
    EXPECT_EQ(pipe.flag, ref.flag) << label;
    EXPECT_EQ(pipe.dmem, ref.dmem) << label << ": data memory differs";
}

class KernelEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(KernelEquivalence, PipelineMatchesReference) {
    const auto& kernel = workloads::benchmark_suite()[static_cast<std::size_t>(GetParam())];
    expect_equivalent(assembler::assemble(kernel.source), kernel.name);
}

std::vector<int> kernel_indices() {
    std::vector<int> v(workloads::benchmark_suite().size());
    for (std::size_t i = 0; i < v.size(); ++i) v[i] = static_cast<int>(i);
    return v;
}

INSTANTIATE_TEST_SUITE_P(Suite, KernelEquivalence, ::testing::ValuesIn(kernel_indices()),
                         [](const ::testing::TestParamInfo<int>& info) {
                             return workloads::benchmark_suite()[static_cast<std::size_t>(
                                                                     info.param)]
                                 .name;
                         });

class RandomProgramEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomProgramEquivalence, PipelineMatchesReference) {
    workloads::TestGenConfig config;
    config.seed = GetParam();
    config.instruction_count = 900;
    const auto kernel = workloads::generate_random_kernel(config);
    expect_equivalent(assembler::assemble(kernel.source), kernel.name);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramEquivalence,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u, 77u, 88u));

TEST(ReferenceIss, FaultsMatchPipelineSemantics) {
    // Control transfer in a delay slot faults in both models.
    const auto program = assembler::assemble(R"(
_start:
  l.j a
  l.j b
a:
b:
  l.nop 0x1
)");
    EXPECT_THROW(run_reference(program), GuestError);
    EXPECT_THROW(run_pipeline(program), GuestError);
}

TEST(ReferenceIss, StepLimitGuardsInfiniteLoops) {
    MachineConfig config;
    Sram imem("imem", 0, config.imem_size);
    Sram dmem("dmem", config.dmem_base, config.dmem_size);
    const auto program = assembler::assemble("_start:\nspin:\n  l.j spin\n  l.nop\n");
    for (const auto& [addr, value] : program.bytes()) imem.write_u8(addr, value);
    ReferenceIss iss(imem, dmem);
    iss.reset(0);
    EXPECT_THROW(iss.run(1000), GuestError);
}

}  // namespace
}  // namespace focs::sim
