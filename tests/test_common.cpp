// Tests for shared utilities: stats, histogram, strings, rng, tables,
// units, error taxonomy, cancellation tokens and fault injection.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <thread>

#include "common/cancel.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/histogram.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace focs {
namespace {

TEST(Units, PeriodFrequencyInverse) {
    EXPECT_NEAR(mhz_from_period_ps(2026.0), 493.58, 0.01);
    EXPECT_NEAR(period_ps_from_mhz(494.0), 2024.29, 0.01);
    EXPECT_NEAR(period_ps_from_mhz(mhz_from_period_ps(1337.0)), 1337.0, 1e-9);
}

TEST(Units, EnergyConversion) {
    // 1000 uW for 1 ns = 1 pJ.
    EXPECT_NEAR(pj_from_uw_ps(1000.0, 1000.0), 1.0, 1e-12);
}

TEST(RunningStats, Moments) {
    RunningStats s;
    for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(RunningStats, MergeMatchesSequential) {
    RunningStats a, b, all;
    for (int i = 0; i < 100; ++i) {
        const double x = i * 0.37;
        (i % 2 == 0 ? a : b).add(x);
        all.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(Histogram, BinningAndStats) {
    Histogram h(0.0, 10.0, 10);
    for (int i = 0; i < 10; ++i) h.add(i + 0.5);
    EXPECT_EQ(h.total(), 10u);
    for (int b = 0; b < 10; ++b) EXPECT_EQ(h.count(b), 1u);
    EXPECT_NEAR(h.stats().mean(), 5.0, 1e-12);
    EXPECT_NEAR(h.quantile(0.5), 5.0, 0.51);
}

TEST(Histogram, OutOfRangeClamped) {
    Histogram h(0.0, 10.0, 5);
    h.add(-100.0);
    h.add(100.0);
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(4), 1u);
}

TEST(Histogram, MergeRequiresIdenticalBinning) {
    Histogram a(0.0, 10.0, 5);
    Histogram b(0.0, 10.0, 6);
    EXPECT_THROW(a.merge(b), Error);
}

TEST(Histogram, CoarsenedSumsGroupsAndKeepsStats) {
    Histogram fine(0.0, 10.0, 10);
    for (int i = 0; i < 10; ++i) fine.add(0.5 + i);
    const Histogram coarse = fine.coarsened(5);
    EXPECT_EQ(coarse.bins(), 5);
    EXPECT_EQ(coarse.total(), fine.total());
    for (int b = 0; b < 5; ++b) EXPECT_EQ(coarse.count(b), 2u) << b;
    // Summary statistics describe the underlying samples, not the bins.
    EXPECT_DOUBLE_EQ(coarse.stats().mean(), fine.stats().mean());
    EXPECT_THROW(fine.coarsened(3), Error);   // 3 does not divide 10
    EXPECT_THROW(fine.coarsened(0), Error);
}

TEST(Histogram, RenderContainsSummary) {
    Histogram h(0.0, 100.0, 4);
    h.add(10);
    h.add(90);
    const std::string text = h.render_ascii(20);
    EXPECT_NE(text.find("n=2"), std::string::npos);
    EXPECT_NE(text.find('#'), std::string::npos);
}

TEST(Rng, DeterministicAcrossInstances) {
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, RangesRespected) {
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.next_range(-5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
        const double d = rng.next_double(1.0, 2.0);
        EXPECT_GE(d, 1.0);
        EXPECT_LT(d, 2.0);
    }
}

TEST(Rng, HashUnitDoubleIsUniformish) {
    RunningStats s;
    for (std::uint64_t i = 0; i < 10000; ++i) s.add(hash_unit_double(i));
    EXPECT_NEAR(s.mean(), 0.5, 0.02);
    EXPECT_GE(s.min(), 0.0);
    EXPECT_LT(s.max(), 1.0);
}

TEST(Strings, TrimSplit) {
    EXPECT_EQ(trim("  a b  "), "a b");
    EXPECT_EQ(trim(""), "");
    const auto parts = split("a, b ,c", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[1], "b");
    const auto words = split_whitespace("  x\ty  z ");
    ASSERT_EQ(words.size(), 3u);
    EXPECT_EQ(words[2], "z");
}

TEST(Strings, ParseInt) {
    EXPECT_EQ(parse_int("42"), 42);
    EXPECT_EQ(parse_int("-17"), -17);
    EXPECT_EQ(parse_int("0x1f"), 31);
    EXPECT_EQ(parse_int("0b101"), 5);
    EXPECT_EQ(parse_int("0xFFFFFFFF"), 0xffffffffLL);
    EXPECT_FALSE(parse_int("").has_value());
    EXPECT_FALSE(parse_int("12x").has_value());
    EXPECT_FALSE(parse_int("0x").has_value());
}

TEST(TextTable, RendersAligned) {
    TextTable t({"Name", "Value"});
    t.add_row({"alpha", "1"});
    t.add_row({"b", "22222"});
    const std::string text = t.to_string();
    EXPECT_NE(text.find("| alpha | 1     |"), std::string::npos);
    EXPECT_NE(text.find("| b     | 22222 |"), std::string::npos);
}

TEST(TextTable, ArityEnforced) {
    TextTable t({"A", "B"});
    EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Check, ThrowsWithLocation) {
    try {
        check(false, "boom");
        FAIL();
    } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("test_common.cpp"), std::string::npos);
    }
}

TEST(ErrorCode, NamesRoundTrip) {
    for (const ErrorCode code :
         {ErrorCode::kUnknown, ErrorCode::kArtifactBuild, ErrorCode::kEvaluation,
          ErrorCode::kDeadline, ErrorCode::kCancelled, ErrorCode::kInjected}) {
        EXPECT_EQ(parse_error_code(error_code_name(code)), code) << error_code_name(code);
    }
    EXPECT_THROW(parse_error_code("not-a-code"), Error);
}

TEST(ErrorCode, CarriedByErrorAndCancelledError) {
    const Error plain("plain");
    EXPECT_EQ(plain.code(), ErrorCode::kUnknown);
    const Error coded("boom", ErrorCode::kArtifactBuild);
    EXPECT_EQ(coded.code(), ErrorCode::kArtifactBuild);
    const CancelledError cancelled("stop", ErrorCode::kDeadline);
    EXPECT_EQ(cancelled.code(), ErrorCode::kDeadline);
    // CancelledError stays catchable as the base Error.
    try {
        throw CancelledError("stop", ErrorCode::kCancelled);
    } catch (const Error& e) {
        EXPECT_EQ(e.code(), ErrorCode::kCancelled);
    }
}

TEST(CancellationToken, ExplicitRequestSharedAcrossCopies) {
    const CancellationToken token;
    const CancellationToken copy = token;
    EXPECT_FALSE(token.cancelled());
    EXPECT_NO_THROW(token.throw_if_cancelled());
    copy.request_cancel();
    EXPECT_TRUE(token.cancelled());
    EXPECT_EQ(token.reason(), ErrorCode::kCancelled);
    try {
        token.throw_if_cancelled();
        FAIL();
    } catch (const CancelledError& e) {
        EXPECT_EQ(e.code(), ErrorCode::kCancelled);
    }
}

TEST(CancellationToken, DeadlineExpiresAndReportsReason) {
    const CancellationToken expired = CancellationToken::with_deadline_ms(0);
    EXPECT_TRUE(expired.cancelled());
    EXPECT_EQ(expired.reason(), ErrorCode::kDeadline);
    EXPECT_THROW(expired.throw_if_cancelled(), CancelledError);
    // A generous deadline has not fired yet; an explicit request wins the
    // reason tie-break once both hold.
    const CancellationToken soon = CancellationToken::with_deadline_ms(60000);
    EXPECT_FALSE(soon.cancelled());
    soon.request_cancel();
    EXPECT_EQ(soon.reason(), ErrorCode::kCancelled);
}

TEST(FaultInjector, DisarmedByDefaultAndAfterEmptySpec) {
    fault::FaultInjector injector;
    EXPECT_FALSE(injector.armed());
    EXPECT_NO_THROW(injector.inject("build.program", "k"));
    injector.configure("build.*:1");
    EXPECT_TRUE(injector.armed());
    injector.configure("");
    EXPECT_FALSE(injector.armed());
}

TEST(FaultInjector, DecisionIsDeterministicPerSiteKeyAttemptSeed) {
    const fault::FaultInjector a("eval.cell:0.5:seed=7");
    const fault::FaultInjector b("eval.cell:0.5:seed=7");
    int fired = 0;
    for (int i = 0; i < 200; ++i) {
        const std::string key = "cell-" + std::to_string(i);
        EXPECT_EQ(a.would_fire("eval.cell", key), b.would_fire("eval.cell", key)) << key;
        if (a.would_fire("eval.cell", key)) ++fired;
    }
    // Half-probability rule: the deterministic draw set lands near 50%.
    EXPECT_GT(fired, 60);
    EXPECT_LT(fired, 140);
    // Different attempts and seeds re-draw.
    const fault::FaultInjector reseeded("eval.cell:0.5:seed=8");
    bool any_attempt_differs = false;
    bool any_seed_differs = false;
    for (int i = 0; i < 50; ++i) {
        const std::string key = "cell-" + std::to_string(i);
        any_attempt_differs |=
            a.would_fire("eval.cell", key, 0) != a.would_fire("eval.cell", key, 1);
        any_seed_differs |= a.would_fire("eval.cell", key) != reseeded.would_fire("eval.cell", key);
    }
    EXPECT_TRUE(any_attempt_differs);
    EXPECT_TRUE(any_seed_differs);
}

TEST(FaultInjector, SiteMatchingExactAndPrefixWildcard) {
    const fault::FaultInjector injector("build.*:1");
    EXPECT_TRUE(injector.would_fire("build.program", "k"));
    EXPECT_TRUE(injector.would_fire("build.delay_table", "k"));
    EXPECT_FALSE(injector.would_fire("eval.cell", "k"));
    const fault::FaultInjector exact("eval.cell:1");
    EXPECT_TRUE(exact.would_fire("eval.cell", "k"));
    EXPECT_FALSE(exact.would_fire("eval.cell2", "k"));
}

TEST(FaultInjector, MaxFiresCapsDeterministically) {
    fault::FaultInjector injector("build.delay_table:1:max=2");
    EXPECT_THROW(injector.inject("build.delay_table", "k", 0), Error);
    EXPECT_THROW(injector.inject("build.delay_table", "k", 1), Error);
    EXPECT_NO_THROW(injector.inject("build.delay_table", "k", 2));
    EXPECT_NO_THROW(injector.inject("build.delay_table", "other", 0));
    EXPECT_EQ(injector.fires(), 2u);
    // The thrown fault carries the injected error code and names the site.
    injector.configure("eval.cell:1");
    try {
        injector.inject("eval.cell", "crc32/lut/ideal@0.62V");
        FAIL();
    } catch (const Error& e) {
        EXPECT_EQ(e.code(), ErrorCode::kInjected);
        EXPECT_NE(std::string(e.what()).find("eval.cell"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("crc32/lut/ideal@0.62V"), std::string::npos);
    }
}

TEST(FaultInjector, DelayRuleSleepsInsteadOfThrowing) {
    fault::FaultInjector injector("eval.cell:1:delay_ms=5");
    const auto start = std::chrono::steady_clock::now();
    EXPECT_NO_THROW(injector.inject("eval.cell", "k"));
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
            .count();
    EXPECT_GE(elapsed_ms, 4.0);
    EXPECT_EQ(injector.fires(), 1u);
}

TEST(FaultInjector, MalformedSpecsRejected) {
    fault::FaultInjector injector;
    EXPECT_THROW(injector.configure(":0.5"), Error);               // missing site
    EXPECT_THROW(injector.configure("site:1.5"), Error);           // probability > 1
    EXPECT_THROW(injector.configure("site:abc"), Error);           // not a number
    EXPECT_THROW(injector.configure("site:0.5:0.7"), Error);       // duplicate probability
    EXPECT_THROW(injector.configure("site:1:seed=-1"), Error);     // negative seed
    EXPECT_THROW(injector.configure("site:1:max=0"), Error);       // max wants >= 1
    EXPECT_THROW(injector.configure("site:1:delay_ms=-2"), Error); // negative delay
    EXPECT_THROW(injector.configure("site:1:bogus=3"), Error);     // unknown option
    // A failed configure leaves the injector disarmed, not half-armed.
    EXPECT_FALSE(injector.armed());
    // Multi-rule specs with blank segments parse.
    injector.configure(" build.*:0.5:seed=3 ; ; eval.cell:1:max=1 ");
    EXPECT_TRUE(injector.armed());
    EXPECT_EQ(injector.rules().size(), 2u);
}

}  // namespace
}  // namespace focs
