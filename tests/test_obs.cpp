// Observability layer tests: exactness of the sharded metrics registry
// under concurrency (run under TSan in CI), span-tracer export shape, and
// the disabled-mode contract (no output, no mutation).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/json.hpp"
#include "obs/metrics.hpp"
#include "obs/span_tracer.hpp"

namespace {

using focs::obs::MetricsRegistry;
using focs::obs::MetricsSnapshot;
using focs::obs::Span;
using focs::obs::SpanEvent;
using focs::obs::SpanTracer;

TEST(MetricsRegistry, ConcurrentCounterMergesAreExact) {
    MetricsRegistry registry(/*enabled=*/true);
    const auto ticks = registry.counter("test.ticks");
    const auto bulk = registry.counter("test.bulk");

    constexpr int kThreads = 8;
    constexpr std::uint64_t kPerThread = 20000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (std::uint64_t i = 0; i < kPerThread; ++i) {
                registry.add(ticks);
                registry.add(bulk, 3);
            }
        });
    }
    for (auto& thread : threads) thread.join();

    EXPECT_EQ(registry.counter_value(ticks), kThreads * kPerThread);
    EXPECT_EQ(registry.counter_value(bulk), kThreads * kPerThread * 3);
    const MetricsSnapshot snap = registry.snapshot();
    EXPECT_EQ(snap.counter_value("test.ticks"), kThreads * kPerThread);
    EXPECT_EQ(snap.counter_value("test.bulk"), kThreads * kPerThread * 3);
    EXPECT_EQ(snap.counter_value("test.absent"), 0u);
}

TEST(MetricsRegistry, ConcurrentHistogramMergesAreExact) {
    MetricsRegistry registry(/*enabled=*/true);
    const auto hist = registry.histogram("test.latency", {1.0, 10.0, 100.0});

    constexpr int kThreads = 8;
    constexpr int kPerThread = 5000;
    // Integer-valued observations so the double sum is exact.
    const double values[] = {0.5, 5.0, 50.0, 500.0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < kPerThread; ++i) registry.observe(hist, values[i % 4]);
        });
    }
    for (auto& thread : threads) thread.join();

    const MetricsSnapshot snap = registry.snapshot();
    const auto* h = snap.find_histogram("test.latency");
    ASSERT_NE(h, nullptr);
    ASSERT_EQ(h->bounds.size(), 3u);
    ASSERT_EQ(h->buckets.size(), 4u);  // three bounds + overflow
    constexpr std::uint64_t kPerBucket = kThreads * kPerThread / 4;
    EXPECT_EQ(h->buckets[0], kPerBucket);  // 0.5  <= 1
    EXPECT_EQ(h->buckets[1], kPerBucket);  // 5    <= 10
    EXPECT_EQ(h->buckets[2], kPerBucket);  // 50   <= 100
    EXPECT_EQ(h->buckets[3], kPerBucket);  // 500  -> overflow
    EXPECT_EQ(h->count, kThreads * static_cast<std::uint64_t>(kPerThread));
    EXPECT_DOUBLE_EQ(h->sum, kPerBucket * (0.5 + 5.0 + 50.0 + 500.0));
}

TEST(MetricsRegistry, GaugeKeepsConcurrentHighWaterMark) {
    MetricsRegistry registry(/*enabled=*/true);
    const auto depth = registry.gauge("test.depth");

    constexpr int kThreads = 8;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < 10000; ++i) {
                registry.gauge_max(depth, static_cast<std::int64_t>(t) * 10000 + i);
            }
        });
    }
    for (auto& thread : threads) thread.join();

    const MetricsSnapshot snap = registry.snapshot();
    ASSERT_EQ(snap.gauges.size(), 1u);
    EXPECT_EQ(snap.gauges[0].name, "test.depth");
    EXPECT_EQ(snap.gauges[0].max, (kThreads - 1) * 10000 + 9999);
}

TEST(MetricsRegistry, RegistrationIsIdempotentAndBoundsChecked) {
    MetricsRegistry registry(/*enabled=*/true);
    const auto a = registry.counter("test.same");
    EXPECT_EQ(registry.counter("test.same"), a);
    const auto h = registry.histogram("test.hist", {1.0, 2.0});
    EXPECT_EQ(registry.histogram("test.hist", {1.0, 2.0}), h);
    EXPECT_THROW(registry.histogram("test.hist", {1.0, 3.0}), focs::Error);
}

TEST(MetricsRegistry, DisabledRegistryMutatesNothing) {
    MetricsRegistry registry(/*enabled=*/false);
    const auto ticks = registry.counter("test.ticks");
    const auto depth = registry.gauge("test.depth");
    const auto hist = registry.histogram("test.latency", {1.0});

    registry.add(ticks, 7);
    registry.gauge_max(depth, 42);
    registry.observe(hist, 0.5);

    EXPECT_EQ(registry.counter_value(ticks), 0u);
    const MetricsSnapshot snap = registry.snapshot();
    EXPECT_EQ(snap.counter_value("test.ticks"), 0u);
    EXPECT_EQ(snap.gauges[0].max, 0);
    EXPECT_EQ(snap.find_histogram("test.latency")->count, 0u);

    registry.set_enabled(true);
    registry.add(ticks, 7);
    EXPECT_EQ(registry.counter_value(ticks), 7u);
}

TEST(MetricsRegistry, ResetZeroesValuesButKeepsRegistrations) {
    MetricsRegistry registry(/*enabled=*/true);
    const auto ticks = registry.counter("test.ticks");
    const auto hist = registry.histogram("test.latency", {1.0});
    registry.add(ticks, 5);
    registry.observe(hist, 0.5);

    registry.reset();
    EXPECT_EQ(registry.counter_value(ticks), 0u);
    const MetricsSnapshot snap = registry.snapshot();
    EXPECT_EQ(snap.counter_value("test.ticks"), 0u);
    EXPECT_EQ(snap.find_histogram("test.latency")->count, 0u);
    // Same name still maps to the same id after a reset.
    EXPECT_EQ(registry.counter("test.ticks"), ticks);
}

TEST(MetricsRegistry, SnapshotJsonParsesAndCarriesValues) {
    MetricsRegistry registry(/*enabled=*/true);
    registry.add(registry.counter("test.ticks"), 12);
    registry.gauge_max(registry.gauge("test.depth"), 4);
    registry.observe(registry.histogram("test.latency", {1.0, 10.0}), 5.0);

    const auto doc = focs::json::parse(registry.snapshot().to_json());
    const auto& counters = focs::json::field(doc.object(), "counters").object();
    EXPECT_DOUBLE_EQ(focs::json::field(counters, "test.ticks").number(), 12.0);
    const auto& gauges = focs::json::field(doc.object(), "gauges").object();
    EXPECT_DOUBLE_EQ(focs::json::field(gauges, "test.depth").number(), 4.0);
    const auto& hists = focs::json::field(doc.object(), "histograms").object();
    const auto& hist = focs::json::field(hists, "test.latency").object();
    EXPECT_DOUBLE_EQ(focs::json::field(hist, "count").number(), 1.0);
    EXPECT_EQ(focs::json::field(hist, "buckets").array().size(), 3u);
}

TEST(SpanTracer, DisabledTracerEmitsNothing) {
    SpanTracer tracer(/*enabled=*/false);
    {
        Span span = tracer.span("work");
        EXPECT_FALSE(span.active());
        span.arg("key", std::int64_t{1});
    }
    tracer.instant("marker");
    EXPECT_TRUE(tracer.snapshot().empty());

    const auto doc = focs::json::parse(tracer.export_chrome_json());
    EXPECT_TRUE(focs::json::field(doc.object(), "traceEvents").array().empty());
}

TEST(SpanTracer, ExportIsValidChromeTraceJson) {
    SpanTracer tracer(/*enabled=*/true);
    {
        Span outer = tracer.span("outer");
        outer.arg("label", std::string("a\"b")).arg("n", std::int64_t{3}).arg("x", 1.5);
        Span inner = tracer.span("inner");
    }
    tracer.instant("marker");

    MetricsRegistry registry(/*enabled=*/true);
    registry.add(registry.counter("test.ticks"), 2);
    const MetricsSnapshot metrics = registry.snapshot();

    const std::string json = tracer.export_chrome_json(&metrics);
    const auto doc = focs::json::parse(json);
    const auto& events = focs::json::field(doc.object(), "traceEvents").array();
    ASSERT_EQ(events.size(), 3u);
    int complete = 0;
    int instants = 0;
    for (const auto& event : events) {
        const auto& obj = event.object();
        EXPECT_FALSE(focs::json::field(obj, "name").string().empty());
        EXPECT_GE(focs::json::field(obj, "ts").number(), 0.0);
        const std::string ph = focs::json::field(obj, "ph").string();
        if (ph == "X") {
            ++complete;
            EXPECT_GE(focs::json::field(obj, "dur").number(), 0.0);
        } else {
            ++instants;
            EXPECT_EQ(ph, "i");
        }
    }
    EXPECT_EQ(complete, 2);
    EXPECT_EQ(instants, 1);
    // The metrics snapshot rides along in the same file.
    const auto& counters =
        focs::json::field(focs::json::field(doc.object(), "metrics").object(), "counters")
            .object();
    EXPECT_DOUBLE_EQ(focs::json::field(counters, "test.ticks").number(), 2.0);
}

TEST(SpanTracer, SameThreadSpansNestOrAreDisjoint) {
    SpanTracer tracer(/*enabled=*/true);
    for (int i = 0; i < 4; ++i) {
        Span outer = tracer.span("outer");
        { Span inner = tracer.span("inner"); }
    }

    const std::vector<SpanEvent> events = tracer.snapshot();
    ASSERT_EQ(events.size(), 8u);
    for (const SpanEvent& event : events) {
        EXPECT_EQ(event.tid, events.front().tid);
        EXPECT_GE(event.duration_us, 0.0);
    }
    // Pairwise: on one thread, span intervals either nest or are disjoint —
    // partial overlap would mean a malformed (interleaved) close order.
    for (std::size_t i = 0; i < events.size(); ++i) {
        for (std::size_t j = i + 1; j < events.size(); ++j) {
            const double a0 = events[i].start_us, a1 = a0 + events[i].duration_us;
            const double b0 = events[j].start_us, b1 = b0 + events[j].duration_us;
            const bool disjoint = a1 <= b0 || b1 <= a0;
            const bool a_in_b = b0 <= a0 && a1 <= b1;
            const bool b_in_a = a0 <= b0 && b1 <= a1;
            EXPECT_TRUE(disjoint || a_in_b || b_in_a)
                << "spans " << i << " and " << j << " partially overlap";
        }
    }
}

TEST(SpanTracer, ConcurrentSpansLandOnDistinctTids) {
    SpanTracer tracer(/*enabled=*/true);
    constexpr int kThreads = 4;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < 50; ++i) {
                Span span = tracer.span("work");
                span.arg("i", static_cast<std::int64_t>(i));
            }
        });
    }
    for (auto& thread : threads) thread.join();

    const std::vector<SpanEvent> events = tracer.snapshot();
    ASSERT_EQ(events.size(), kThreads * 50u);
    std::vector<std::uint32_t> tids;
    for (const SpanEvent& event : events) tids.push_back(event.tid);
    std::sort(tids.begin(), tids.end());
    tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
    EXPECT_EQ(tids.size(), static_cast<std::size_t>(kThreads));
}

TEST(SpanTracer, ResetDropsEventsAndRebasesClock) {
    SpanTracer tracer(/*enabled=*/true);
    { Span span = tracer.span("before"); }
    ASSERT_EQ(tracer.snapshot().size(), 1u);

    tracer.reset();
    EXPECT_TRUE(tracer.snapshot().empty());
    { Span span = tracer.span("after"); }
    const std::vector<SpanEvent> events = tracer.snapshot();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].name, "after");
    EXPECT_GE(events[0].start_us, 0.0);
}

}  // namespace
