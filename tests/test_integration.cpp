// End-to-end reproduction tests: run the full methodology and assert that
// every headline metric of the paper is reproduced in *shape* (who wins,
// by roughly what factor, where the crossovers fall). Exact picoseconds are
// not expected — the substrate is a synthetic netlist — but each asserted
// band brackets the paper's published value.
#include <gtest/gtest.h>

#include <map>

#include "asm/assembler.hpp"
#include "core/flows.hpp"
#include "dta/delay_table.hpp"
#include "isa/isa_info.hpp"
#include "power/power_model.hpp"
#include "power/vf_scaling.hpp"
#include "workloads/kernel.hpp"

namespace focs::core {
namespace {

const CharacterizationResult& characterization() {
    static const CharacterizationResult result = [] {
        const CharacterizationFlow flow(timing::DesignConfig{});
        return flow.run(workloads::assemble_programs(workloads::characterization_suite()));
    }();
    return result;
}

const SuiteResult& suite_under(PolicyKind kind) {
    static auto* cache = new std::map<PolicyKind, SuiteResult>();
    const auto it = cache->find(kind);
    if (it != cache->end()) return it->second;
    const EvaluationFlow flow(timing::DesignConfig{}, characterization().table);
    return cache->emplace(kind, flow.run_suite(
                                    workloads::assemble_suite(workloads::benchmark_suite()), kind))
        .first->second;
}

// ---- Sec. IV-A: dynamic timing analysis of the core -------------------------

TEST(PaperSecIVA, StaticTimingLimit) {
    // 2026 ps / 494 MHz at 0.70 V.
    EXPECT_DOUBLE_EQ(characterization().static_period_ps, 2026.0);
}

TEST(PaperSecIVA, GenieBound) {
    // Paper: mean 1334 ps, theoretical speedup ~50%.
    EXPECT_GT(characterization().genie_mean_period_ps, 1200.0);
    EXPECT_LT(characterization().genie_mean_period_ps, 1400.0);
    EXPECT_GT(characterization().genie_speedup, 1.40);
    EXPECT_LT(characterization().genie_speedup, 1.70);
}

TEST(PaperFig6, LimitingStageShares) {
    const auto counts = characterization().analysis->limiting_stage_counts();
    const double total = static_cast<double>(characterization().cycles);
    const auto share = [&](sim::Stage s) {
        return 100.0 * static_cast<double>(counts[static_cast<std::size_t>(s)]) / total;
    };
    // Paper: EX 93%, ADR 7%, rest < 1%.
    EXPECT_GT(share(sim::Stage::kEx), 85.0);
    EXPECT_LT(share(sim::Stage::kEx), 97.0);
    EXPECT_GT(share(sim::Stage::kAdr), 1.5);
    EXPECT_LT(share(sim::Stage::kAdr), 12.0);
    EXPECT_LT(share(sim::Stage::kFe), 1.0);
    EXPECT_LT(share(sim::Stage::kWb), 1.0);
    EXPECT_LT(share(sim::Stage::kDc) + share(sim::Stage::kCtrl), 6.0);
}

TEST(PaperTableII, ExtractedWorstCases) {
    const auto& table = characterization().table;
    const auto entry = [&](isa::Opcode op, sim::Stage stage) {
        return table.lookup(static_cast<dta::OccKey>(op), stage);
    };
    const double guard = timing::kLutGuardPs;
    // Entries are observed maxima + guard; anchors are the paper's values.
    EXPECT_NEAR(entry(isa::Opcode::kAdd, sim::Stage::kEx), 1467.0 + guard, 15.0);
    EXPECT_NEAR(entry(isa::Opcode::kAnd, sim::Stage::kEx), 1482.0 + guard, 15.0);
    EXPECT_NEAR(entry(isa::Opcode::kXor, sim::Stage::kEx), 1514.0 + guard, 15.0);
    EXPECT_NEAR(entry(isa::Opcode::kMul, sim::Stage::kEx), 1899.0 + guard, 15.0);
    // Loads/branches cannot excite their absolute worst path dynamically
    // (word-aligned addresses cap address-bit density; the flag path is
    // data-invariant) so their observed maxima sit ~1-2% under the anchor,
    // just like l.mul never reaches its 2026 ps STA path.
    EXPECT_NEAR(entry(isa::Opcode::kLwz, sim::Stage::kEx), 1391.0 + guard, 45.0);
    EXPECT_NEAR(entry(isa::Opcode::kSll, sim::Stage::kEx), 1270.0 + guard, 15.0);
    EXPECT_NEAR(entry(isa::Opcode::kBf, sim::Stage::kEx), 1470.0 + guard, 45.0);
    // l.j's worst case lives in the ADR stage (instruction memory address).
    EXPECT_NEAR(entry(isa::Opcode::kJ, sim::Stage::kAdr), 1172.0 + guard, 40.0);
    // And for l.j the ADR entry must dominate its own EX entry.
    EXPECT_GT(entry(isa::Opcode::kJ, sim::Stage::kAdr), entry(isa::Opcode::kJ, sim::Stage::kEx));
}

TEST(PaperFig7, MulPerStageShape) {
    const auto& analysis = *characterization().analysis;
    const auto key = static_cast<dta::OccKey>(isa::Opcode::kMul);
    const auto& ex = analysis.stats(key, sim::Stage::kEx);
    // EX is close to the static maximum with ~300 ps data-dependent spread;
    // every other stage is far lower.
    EXPECT_NEAR(ex.max_ps, 1899.0, 10.0);
    EXPECT_NEAR(ex.max_ps - ex.stats.min(), 300.0, 80.0);
    for (const auto stage : {sim::Stage::kAdr, sim::Stage::kFe, sim::Stage::kDc,
                             sim::Stage::kCtrl, sim::Stage::kWb}) {
        EXPECT_LT(analysis.stats(key, stage).max_ps, 0.75 * ex.max_ps)
            << sim::stage_name(stage);
    }
}

// ---- Sec. IV-B: performance and power ---------------------------------------

TEST(PaperFig8, SpeedupPerBenchmarkAndAverage) {
    const auto& conventional = suite_under(PolicyKind::kStatic);
    const auto& dca = suite_under(PolicyKind::kInstructionLut);
    const auto& genie = suite_under(PolicyKind::kGenie);

    EXPECT_NEAR(conventional.mean_eff_freq_mhz, 494.0, 1.0);
    // Paper: 680 MHz / +38% on average; brackets include our leaner
    // hand-written kernels (see EXPERIMENTS.md).
    EXPECT_GT(dca.mean_speedup, 1.30);
    EXPECT_LT(dca.mean_speedup, 1.55);
    EXPECT_GT(dca.mean_eff_freq_mhz, 640.0);
    EXPECT_LT(dca.mean_eff_freq_mhz, 770.0);
    // Genie bound: ~1.5x, and strictly above the realizable policy.
    EXPECT_GT(genie.mean_speedup, dca.mean_speedup);
    for (std::size_t i = 0; i < dca.rows.size(); ++i) {
        EXPECT_GT(dca.rows[i].result.speedup_vs_static, 1.25) << dca.rows[i].benchmark;
        EXPECT_LT(dca.rows[i].result.speedup_vs_static, 1.70) << dca.rows[i].benchmark;
        EXPECT_GE(genie.rows[i].result.speedup_vs_static + 1e-9,
                  dca.rows[i].result.speedup_vs_static)
            << dca.rows[i].benchmark;
    }
    EXPECT_EQ(dca.total_violations + genie.total_violations + conventional.total_violations, 0u);
}

TEST(PaperSecIVB, GiveUpVersusGenieIsModest) {
    // Paper: instruction-granularity prediction gives up ~12% vs the genie.
    const double dca = suite_under(PolicyKind::kInstructionLut).mean_speedup;
    const double genie = suite_under(PolicyKind::kGenie).mean_speedup;
    const double give_up = (genie - dca) / genie;
    EXPECT_GT(give_up, 0.02);
    EXPECT_LT(give_up, 0.20);
}

TEST(PaperSecIVB, VoltageScalingResult) {
    const double speedup = suite_under(PolicyKind::kInstructionLut).mean_speedup;
    const power::PowerModel model(timing::DesignVariant::kCriticalRangeOptimized);
    const power::VoltageFrequencyScaler scaler(model);
    const auto iso = scaler.iso_throughput(494.0, speedup, 0.70);
    // Paper: -70 mV, 13.7 -> 11.0 uW/MHz, "24%" efficiency gain.
    EXPECT_GT(iso.voltage_reduction_mv, 50.0);
    EXPECT_LT(iso.voltage_reduction_mv, 110.0);
    EXPECT_NEAR(iso.baseline_power.uw_per_mhz, 13.7, 0.15);
    EXPECT_GT(iso.scaled_power.uw_per_mhz, 9.8);
    EXPECT_LT(iso.scaled_power.uw_per_mhz, 11.8);
    EXPECT_GT(iso.efficiency_gain, 0.15);
    EXPECT_LT(iso.efficiency_gain, 0.35);
}

// ---- Cross-cutting properties -------------------------------------------------

TEST(Reproducibility, CharacterizationIsDeterministic) {
    const CharacterizationFlow flow(timing::DesignConfig{});
    const auto again =
        flow.run(workloads::assemble_programs(workloads::characterization_suite()));
    EXPECT_EQ(again.table.serialize(), characterization().table.serialize());
    EXPECT_DOUBLE_EQ(again.genie_mean_period_ps, characterization().genie_mean_period_ps);
}

TEST(Reproducibility, EvaluationIsDeterministic) {
    const EvaluationFlow flow(timing::DesignConfig{}, characterization().table);
    const auto program = assembler::assemble(workloads::find_kernel("fsm").source);
    const auto a = flow.run_one(program, PolicyKind::kInstructionLut);
    const auto b = flow.run_one(program, PolicyKind::kInstructionLut);
    EXPECT_DOUBLE_EQ(a.total_time_ps, b.total_time_ps);
}

TEST(PaperTableI, CriticalRangeFactors) {
    timing::DesignConfig conventional;
    conventional.variant = timing::DesignVariant::kConventional;
    const CharacterizationFlow conv_flow(conventional);
    const auto conv =
        conv_flow.run(workloads::assemble_programs(workloads::characterization_suite()));
    EXPECT_DOUBLE_EQ(conv.static_period_ps, 1859.0);  // 2026 / 1.09

    const auto max_of = [](const CharacterizationResult& r, isa::Opcode op) {
        double best = 0;
        for (int s = 0; s < sim::kStageCount; ++s) {
            best = std::max(best, r.analysis
                                      ->stats(static_cast<dta::OccKey>(op),
                                              static_cast<sim::Stage>(s))
                                      .max_ps);
        }
        return best;
    };
    const auto factor = [&](isa::Opcode op) {
        return max_of(characterization(), op) / max_of(conv, op);
    };
    EXPECT_NEAR(factor(isa::Opcode::kAdd), 0.92, 0.04);   // Table I
    EXPECT_NEAR(factor(isa::Opcode::kLwz), 0.85, 0.04);   // Table I
    EXPECT_NEAR(factor(isa::Opcode::kMul), 1.10, 0.04);   // Table I
    EXPECT_NEAR(factor(isa::Opcode::kJ), 0.74, 0.05);     // Table I
    EXPECT_NEAR(factor(isa::Opcode::kSw), 0.85, 0.04);    // Table I
    // The conventional design under DCA gains far less: its timing wall
    // leaves little per-instruction headroom (the paper's motivation for
    // the critical-range implementation step).
    const EvaluationFlow conv_eval(conventional, conv.table);
    const EvaluationFlow opt_eval(timing::DesignConfig{}, characterization().table);
    const auto program = assembler::assemble(workloads::find_kernel("crc32").source);
    const double conv_speedup =
        conv_eval.run_one(program, PolicyKind::kInstructionLut).speedup_vs_static;
    const double opt_speedup =
        opt_eval.run_one(program, PolicyKind::kInstructionLut).speedup_vs_static;
    EXPECT_GT(opt_speedup, conv_speedup + 0.15);
}

TEST(PaperClaim, IpcCloseToOne) {
    // Sec. III-A: the tuned core achieves close to 1 instruction/cycle.
    const auto& rows = suite_under(PolicyKind::kStatic).rows;
    double worst = 1.0;
    double sum = 0;
    for (const auto& row : rows) {
        worst = std::min(worst, row.result.guest.ipc());
        sum += row.result.guest.ipc();
    }
    EXPECT_GT(sum / static_cast<double>(rows.size()), 0.75);
    EXPECT_GT(worst, 0.25);  // `prime` stalls on the 32-cycle serial divider
}

}  // namespace
}  // namespace focs::core
