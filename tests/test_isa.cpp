// ISA tests: encode/decode round trips for the whole subset, field
// handling, immediate extension semantics, and disassembly.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "isa/disasm.hpp"
#include "isa/encoding.hpp"
#include "isa/isa_info.hpp"

namespace focs::isa {
namespace {

std::vector<Opcode> all_opcodes() {
    std::vector<Opcode> ops;
    for (int i = 0; i < kOpcodeCount; ++i) ops.push_back(static_cast<Opcode>(i));
    return ops;
}

/// Builds a representative instruction with non-trivial field values.
Instruction sample(Opcode op) {
    const auto& meta = info(op);
    Instruction inst;
    inst.opcode = op;
    if (meta.writes_rd) inst.rd = 21;
    if (op == Opcode::kJal || op == Opcode::kJalr) inst.rd = 9;  // architectural link register
    if (meta.reads_ra) inst.ra = 13;
    if (meta.reads_rb) inst.rb = 7;
    if (meta.has_immediate) {
        switch (op) {
            case Opcode::kAndi:
            case Opcode::kOri:
            case Opcode::kMovhi:
            case Opcode::kNop: inst.imm = 0xbeef; break;
            case Opcode::kSlli:
            case Opcode::kSrli:
            case Opcode::kSrai:
            case Opcode::kRori: inst.imm = 19; break;
            case Opcode::kJ:
            case Opcode::kJal:
            case Opcode::kBf:
            case Opcode::kBnf: inst.imm = -12345; break;
            default: inst.imm = -17; break;
        }
    }
    return inst;
}

class OpcodeRoundTrip : public ::testing::TestWithParam<Opcode> {};

TEST_P(OpcodeRoundTrip, EncodeDecodeIdentity) {
    const Instruction original = sample(GetParam());
    const std::uint32_t word = encode(original);
    const Instruction decoded = decode(word);
    EXPECT_EQ(decoded, original) << "opcode " << mnemonic(GetParam());
}

TEST_P(OpcodeRoundTrip, MnemonicLookupInverse) {
    const Opcode op = GetParam();
    const auto found = opcode_from_mnemonic(mnemonic(op));
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(*found, op);
}

TEST_P(OpcodeRoundTrip, TimingFamilyIsDefined) {
    EXPECT_LT(static_cast<int>(timing_family(GetParam())), kTimingFamilyCount);
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, OpcodeRoundTrip, ::testing::ValuesIn(all_opcodes()),
                         [](const ::testing::TestParamInfo<Opcode>& info_param) {
                             std::string name{mnemonic(info_param.param)};
                             for (char& c : name) {
                                 if (c == '.') c = '_';
                             }
                             return name;
                         });

TEST(Encoding, KnownWords) {
    // Hand-checked encodings against the OpenRISC 1000 manual.
    EXPECT_EQ(encode({Opcode::kNop, 0, 0, 0, 0}), 0x15000000u);
    EXPECT_EQ(encode({Opcode::kNop, 0, 0, 0, 1}), 0x15000001u);
    // l.addi r3, r3, -1 -> 0x9c63ffff
    EXPECT_EQ(encode({Opcode::kAddi, 3, 3, 0, -1}), 0x9c63ffffu);
    // l.add r4, r5, r6 -> 0xe0853000
    EXPECT_EQ(encode({Opcode::kAdd, 4, 5, 6, 0}), 0xe0853000u);
    // l.j 0 -> 0x00000000
    EXPECT_EQ(encode({Opcode::kJ, 0, 0, 0, 0}), 0x00000000u);
    // l.jr r9 -> 0x44004800
    EXPECT_EQ(encode({Opcode::kJr, 0, 0, 9, 0}), 0x44004800u);
    // l.movhi r5, 0x1234 -> 0x18a01234
    EXPECT_EQ(encode({Opcode::kMovhi, 5, 0, 0, 0x1234}), 0x18a01234u);
    // l.sw -4(r1), r2 -> store imm split: 0xd7e117fc
    EXPECT_EQ(encode({Opcode::kSw, 0, 1, 2, -4}), 0xd7e117fcu);
    // l.mul r3, r4, r5 -> 0xe0642b06
    EXPECT_EQ(encode({Opcode::kMul, 3, 4, 5, 0}), 0xe0642b06u);
}

TEST(Encoding, StoreImmediateSplitRoundTrip) {
    for (const std::int32_t imm : {-32768, -4, -1, 0, 1, 2047, 2048, 32767}) {
        const Instruction inst{Opcode::kSw, 0, 2, 3, imm};
        EXPECT_EQ(decode(encode(inst)), inst) << imm;
    }
}

TEST(Encoding, JumpOffsetRange) {
    EXPECT_NO_THROW(encode({Opcode::kJ, 0, 0, 0, (1 << 25) - 1}));
    EXPECT_NO_THROW(encode({Opcode::kJ, 0, 0, 0, -(1 << 25)}));
    EXPECT_THROW(encode({Opcode::kJ, 0, 0, 0, 1 << 25}), Error);
}

TEST(Encoding, RegisterRangeChecked) {
    Instruction bad{Opcode::kAdd, 32, 0, 0, 0};
    EXPECT_THROW(encode(bad), Error);
}

TEST(Decoding, UnknownWordsAreInvalid) {
    EXPECT_EQ(decode(0xffffffffu).opcode, Opcode::kInvalid);   // 0x3f major
    EXPECT_EQ(decode(0xe0000001u).opcode, Opcode::kInvalid);   // ALU op3=1 (addc unsupported)
    EXPECT_EQ(decode(0x18010000u).opcode, Opcode::kInvalid);   // l.macrc bit set
    EXPECT_EQ(decode(0x14000000u).opcode, Opcode::kInvalid);   // 0x05 major, bits24=00
}

TEST(Decoding, ImmediateExtension) {
    // andi/ori zero-extend.
    EXPECT_EQ(decode(encode({Opcode::kAndi, 1, 2, 0, 0xffff})).imm, 0xffff);
    // addi/xori sign-extend.
    EXPECT_EQ(decode(0x9c63ffffu).imm, -1);
    const Instruction xori = decode(encode({Opcode::kXori, 1, 2, 0, -1}));
    EXPECT_EQ(xori.imm, -1);
    // Branch offsets sign-extend over 26 bits.
    EXPECT_EQ(decode(encode({Opcode::kBf, 0, 0, 0, -1})).imm, -1);
}

TEST(Decoding, JalSetsLinkRegister) {
    EXPECT_EQ(decode(encode({Opcode::kJal, 9, 0, 0, 64})).rd, 9);
    EXPECT_EQ(decode(encode({Opcode::kJalr, 9, 0, 5, 0})).rd, 9);
}

TEST(Disasm, Format) {
    EXPECT_EQ(disassemble({Opcode::kAddi, 3, 3, 0, -1}), "l.addi r3,r3,-1");
    EXPECT_EQ(disassemble({Opcode::kAdd, 4, 5, 6, 0}), "l.add r4,r5,r6");
    EXPECT_EQ(disassemble({Opcode::kLwz, 4, 2, 0, 8}), "l.lwz r4,8(r2)");
    EXPECT_EQ(disassemble({Opcode::kSw, 0, 2, 5, -4}), "l.sw -4(r2),r5");
    EXPECT_EQ(disassemble({Opcode::kBf, 0, 0, 0, 4}, 0x100), "l.bf 0x110");
    EXPECT_EQ(disassemble({Opcode::kNop, 0, 0, 0, 1}), "l.nop 0x1");
    EXPECT_EQ(disassemble({Opcode::kSfeqi, 0, 7, 0, -3}), "l.sfeqi r7,-3");
    EXPECT_EQ(disassemble({Opcode::kJr, 0, 0, 9, 0}), "l.jr r9");
}

TEST(IsaInfo, Properties) {
    EXPECT_TRUE(info(Opcode::kLwz).is_load);
    EXPECT_TRUE(info(Opcode::kSw).is_store);
    EXPECT_TRUE(info(Opcode::kBf).reads_flag);
    EXPECT_TRUE(info(Opcode::kSfgtu).sets_flag);
    EXPECT_TRUE(is_control_transfer(Opcode::kJ));
    EXPECT_TRUE(is_control_transfer(Opcode::kBnf));
    EXPECT_FALSE(is_control_transfer(Opcode::kAdd));
    EXPECT_FALSE(info(Opcode::kSw).writes_rd);
    EXPECT_TRUE(info(Opcode::kJal).writes_rd);
}

}  // namespace
}  // namespace focs::isa
