// Sweep-daemon tests over real loopback sockets: request/response framing,
// cross-request artifact reuse (warm requests perform zero builds),
// deterministic admission-window shedding, deadline-bounded partial
// results, malformed-input rejection, and the graceful-drain contract.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "runtime/result_io.hpp"
#include "service/client.hpp"
#include "service/sweep_server.hpp"

namespace focs::service {
namespace {

/// One-cell spec: cheap enough to serve in tens of milliseconds, expensive
/// enough (cold characterization) that a concurrent burst lands while the
/// first request is still in flight.
constexpr const char* kSmallSpec = "kernels = crc32\npolicies = lut\nvoltages = 0.70\n";

/// A wider grid for deadline tests: 2 kernels x 2 policies x 3 voltages =
/// 12 cells and 3 characterizations.
constexpr const char* kWideSpec =
    "kernels = crc32, fibcall\npolicies = lut, static\nvoltages = 0.60, 0.65, 0.70\n";

ServerConfig test_config() {
    ServerConfig config;
    config.port = 0;  // ephemeral
    config.max_inflight = 2;
    config.queue_depth = 4;
    config.jobs = 1;
    return config;
}

/// Starts, runs `body(server)`, then drains and joins — every test exits
/// through the graceful-drain path.
template <typename Body>
void with_server(ServerConfig config, Body&& body) {
    SweepServer server(std::move(config));
    server.start();
    ASSERT_GT(server.port(), 0);
    body(server);
    server.request_drain();
    server.wait();
}

TEST(SweepService, ServesSweepOverLoopbackHttp) {
    with_server(test_config(), [](SweepServer& server) {
        const ClientResponse response = post_sweep(server.port(), kSmallSpec);
        ASSERT_EQ(response.status, 200);
        // The body is the standard result document plus the partial flag —
        // and the standard parser must not notice the extra key.
        EXPECT_NE(response.body.find("\"partial\": false"), std::string::npos);
        const runtime::SweepResult result = runtime::from_json(response.body);
        ASSERT_EQ(result.cells.size(), 1u);
        EXPECT_TRUE(result.complete());
        EXPECT_EQ(result.cells[0].kernel, "crc32");
        EXPECT_EQ(result.characterizations, 1u);
    });
}

TEST(SweepService, WarmRepeatPerformsZeroBuilds) {
    with_server(test_config(), [](SweepServer& server) {
        const ClientResponse cold = post_sweep(server.port(), kSmallSpec);
        ASSERT_EQ(cold.status, 200);
        const ClientResponse warm = post_sweep(server.port(), kSmallSpec);
        ASSERT_EQ(warm.status, 200);
        const runtime::SweepResult result = runtime::from_json(warm.body);
        // The headline serving contract: the shared cache answers a warm
        // repeat without a single characterization or guest simulation.
        EXPECT_EQ(result.characterizations, 0u);
        EXPECT_EQ(result.guest_simulations, 0u);
        EXPECT_EQ(result.unit_delay_passes, 0u);
        EXPECT_GT(result.cache_hits, 0u);
    });
    // Cells themselves must be byte-identical cold vs warm — checked via
    // the runtime's own determinism tests; here the status codes suffice.
}

TEST(SweepService, HealthAndMetricsEndpointsRespond) {
    with_server(test_config(), [](SweepServer& server) {
        HttpRequest health;
        health.method = "GET";
        health.target = "/healthz";
        const ClientResponse h = http_request(server.port(), health);
        EXPECT_EQ(h.status, 200);
        EXPECT_NE(h.body.find("\"status\": \"ok\""), std::string::npos);
        EXPECT_NE(h.body.find("\"draining\": false"), std::string::npos);

        post_sweep(server.port(), kSmallSpec);
        HttpRequest metrics;
        metrics.method = "GET";
        metrics.target = "/metricsz";
        const ClientResponse m = http_request(server.port(), metrics);
        EXPECT_EQ(m.status, 200);
        // Server counters and the shared cache's counters, one document.
        EXPECT_NE(m.body.find("server.requests.served_ok"), std::string::npos);
        EXPECT_NE(m.body.find("cache.delay_table.miss"), std::string::npos);
    });
}

TEST(SweepService, ShedsLoadBeyondAdmissionWindowWithOverloadedCode) {
    ServerConfig config = test_config();
    config.max_inflight = 1;
    config.queue_depth = 1;  // admission window = 2
    with_server(config, [](SweepServer& server) {
        LoadOptions options;
        options.port = server.port();
        options.spec_text = kWideSpec;  // slow enough to hold the window open
        options.requests = 5;
        options.concurrency = 5;
        const LoadReport report = run_load(options);
        EXPECT_EQ(report.responses(), 5u);
        EXPECT_EQ(report.ok, 2u);
        EXPECT_EQ(report.shed, 3u);
        EXPECT_EQ(report.transport_error, 0u);
        // Shed responses carry the machine-readable overload code.
        for (std::size_t i = 0; i < report.statuses.size(); ++i) {
            if (report.statuses[i] != 503) continue;
            EXPECT_NE(report.bodies[i].find("\"error_code\": \"overloaded\""),
                      std::string::npos);
        }
        const ServerStats stats = server.stats();
        EXPECT_EQ(stats.accepted, 2u);
        EXPECT_EQ(stats.shed, 3u);
    });
}

TEST(SweepService, DeadlineReturnsPartialResultsAs206) {
    ServerConfig config = test_config();
    with_server(config, [](SweepServer& server) {
        // A 1 ms deadline against a cold 12-cell grid: the token fires
        // before the first characterization finishes, so every cell drains
        // as cancelled and the finished prefix (possibly empty) comes back
        // as a partial document — never an error, never a hang.
        const ClientResponse response = post_sweep(server.port(), kWideSpec,
                                                   /*deadline_ms=*/1);
        ASSERT_EQ(response.status, 206);
        EXPECT_NE(response.body.find("\"partial\": true"), std::string::npos);
        const runtime::SweepResult result = runtime::from_json(response.body);
        EXPECT_EQ(result.cells.size(), 12u);
        EXPECT_FALSE(result.complete());
        EXPECT_GT(result.cells_cancelled, 0u);
        const ServerStats stats = server.stats();
        EXPECT_EQ(stats.served_partial, 1u);
        EXPECT_EQ(stats.served_ok, 0u);
    });
}

TEST(SweepService, RejectsMalformedRequests) {
    with_server(test_config(), [](SweepServer& server) {
        // Malformed spec body -> 400 with a classified error document.
        const ClientResponse bad_spec = post_sweep(server.port(), "kernels = \x01nope\nwat\n");
        EXPECT_EQ(bad_spec.status, 400);
        EXPECT_NE(bad_spec.body.find("\"error\""), std::string::npos);

        // Malformed deadline header -> 400 before admission.
        HttpRequest bad_deadline;
        bad_deadline.method = "POST";
        bad_deadline.target = "/sweep";
        bad_deadline.body = kSmallSpec;
        bad_deadline.headers["X-Focs-Deadline-Ms"] = "-5";
        EXPECT_EQ(http_request(server.port(), bad_deadline).status, 400);

        // Unknown target -> 404; wrong method -> 405.
        HttpRequest unknown;
        unknown.method = "GET";
        unknown.target = "/nope";
        EXPECT_EQ(http_request(server.port(), unknown).status, 404);
        HttpRequest wrong_method;
        wrong_method.method = "GET";
        wrong_method.target = "/sweep";
        EXPECT_EQ(http_request(server.port(), wrong_method).status, 405);

        const ServerStats stats = server.stats();
        EXPECT_EQ(stats.bad_request, 4u);
        EXPECT_EQ(stats.served(), 0u);
    });
}

TEST(SweepService, DrainFinishesInFlightThenRefusesConnections) {
    SweepServer server(test_config());
    server.start();
    const int port = server.port();

    // Launch a request, then drain while it is (very likely) in flight.
    // Three legitimate outcomes, all bounded: admitted before the drain ->
    // served; reached the acceptor during the drain -> shed with 503; lost
    // the race entirely -> the closed listen socket refuses the connect.
    bool refused = false;
    std::thread client([&] {
        try {
            const ClientResponse response = post_sweep(port, kSmallSpec);
            EXPECT_TRUE(response.status == 200 || response.status == 503)
                << "status " << response.status;
        } catch (const Error&) {
            refused = true;
        }
    });
    server.request_drain();
    client.join();
    server.wait();

    // Post-drain the listen socket is closed: connects are refused.
    EXPECT_THROW(post_sweep(port, kSmallSpec), Error);
    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.served() + stats.shed + (refused ? 1u : 0u), 1u);
}

TEST(SweepService, HardCancelAnswersEverythingQuickly) {
    ServerConfig config = test_config();
    config.max_inflight = 1;
    config.queue_depth = 4;
    SweepServer server(config);
    server.start();
    const int port = server.port();

    // Three slow requests: one in flight, two queued. A hard cancel fires
    // the in-flight token (partial 206) and sheds the queued ones (503) —
    // nobody waits for the grid to finish.
    std::vector<std::thread> clients;
    std::vector<int> statuses(3, 0);
    for (int i = 0; i < 3; ++i) {
        clients.emplace_back([&, i] {
            try {
                statuses[static_cast<std::size_t>(i)] = post_sweep(port, kWideSpec).status;
            } catch (const Error&) {
                statuses[static_cast<std::size_t>(i)] = -1;
            }
        });
    }
    // Give the burst a moment to land, then pull the plug.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    server.request_hard_cancel();
    for (auto& client : clients) client.join();
    server.wait();

    for (const int status : statuses) {
        EXPECT_TRUE(status == 200 || status == 206 || status == 503) << "status " << status;
    }
    EXPECT_TRUE(server.draining());
}

TEST(SweepService, SweepResponseBodyKeepsCanonicalDocumentIntact) {
    // The partial-flag injection must leave the rest of the document
    // byte-identical to the offline artifact, so stripping the first key
    // recovers to_json exactly.
    runtime::SweepResult result;
    result.cells_ok = 1;
    result.cells.emplace_back();
    result.spec_text = "kernels = crc32\n";
    result.spec_hash = "fnv1a:0";
    const std::string offline = runtime::to_json(result, /*include_timing=*/false);
    const std::string body = sweep_response_body(result, /*include_timing=*/false);
    ASSERT_NE(body.find("\"partial\": false,\n"), std::string::npos);
    std::string stripped = body;
    const std::string flag = "  \"partial\": false,\n";
    stripped.erase(stripped.find(flag), flag.size());
    EXPECT_EQ(stripped, offline);
    // And the parser round-trips the decorated body.
    EXPECT_NO_THROW(runtime::from_json(body));
}

}  // namespace
}  // namespace focs::service
