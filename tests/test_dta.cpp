// Dynamic timing analysis tests: delay table, event log round trips, the
// gate-level-simulation observer, and analyzer recovery of the reference
// per-cycle delays (including clock skew and setup handling).
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "common/error.hpp"
#include "dta/analyzer.hpp"
#include "dta/batch_engine.hpp"
#include "dta/delay_table.hpp"
#include "dta/event_log.hpp"
#include "dta/gatesim.hpp"
#include "sim/machine.hpp"
#include "timing/delay_model.hpp"
#include "timing/netlist.hpp"
#include "workloads/kernel.hpp"

namespace focs::dta {
namespace {

using sim::Stage;

// ---- DelayTable -------------------------------------------------------------

TEST(DelayTable, FallbackToStatic) {
    DelayTable table(2026.0);
    EXPECT_FALSE(table.characterized(0, Stage::kEx));
    EXPECT_DOUBLE_EQ(table.lookup(0, Stage::kEx), 2026.0);
    table.set(0, Stage::kEx, 1467.0);
    EXPECT_TRUE(table.characterized(0, Stage::kEx));
    EXPECT_DOUBLE_EQ(table.lookup(0, Stage::kEx), 1467.0);
}

TEST(DelayTable, CyclePeriodIsMaxOverStages) {
    DelayTable table(2026.0);
    std::array<OccKey, sim::kStageCount> keys{};
    keys.fill(static_cast<OccKey>(isa::Opcode::kAdd));
    for (int s = 0; s < sim::kStageCount; ++s) {
        table.set(static_cast<OccKey>(isa::Opcode::kAdd), static_cast<Stage>(s),
                  800.0 + 100.0 * s);
    }
    EXPECT_DOUBLE_EQ(table.cycle_period_ps(keys), 800.0 + 100.0 * (sim::kStageCount - 1));
}

TEST(DelayTable, ScaledByOneIsIdentity) {
    // Factor 1.0 must reproduce the table bit for bit: fl(x * 1.0) == x for
    // every finite x, so the nominal view of the nominal table is itself.
    DelayTable table(2026.0, 10.0);
    table.set_characterized(static_cast<OccKey>(isa::Opcode::kMul), Stage::kEx, 1899.25);
    table.set_characterized(kKeyBubble, Stage::kAdr, 612.5);
    const DelayTable view = table.scaled(1.0);
    EXPECT_EQ(view.static_period_ps(), table.static_period_ps());
    EXPECT_EQ(view.lut_guard_ps(), table.lut_guard_ps());
    EXPECT_TRUE(view.has_raw());
    for (int key = 0; key < kKeyCount; ++key) {
        for (int stage = 0; stage < sim::kStageCount; ++stage) {
            const auto k = static_cast<OccKey>(key);
            const auto s = static_cast<Stage>(stage);
            EXPECT_EQ(view.characterized(k, s), table.characterized(k, s));
            EXPECT_EQ(view.lookup(k, s), table.lookup(k, s));
            EXPECT_EQ(view.effective(k, s), table.effective(k, s));
        }
    }
}

TEST(DelayTable, ScaledKeepsUncharacterizedFallback) {
    // Uncharacterized entries fall back to the static period; in a scaled
    // view they must fall back to the SCALED static period, not the nominal
    // one (the operating point's STA limit moves with the voltage).
    DelayTable table(2000.0, 5.0);
    table.set_characterized(static_cast<OccKey>(isa::Opcode::kAdd), Stage::kEx, 900.0);
    const DelayTable view = table.scaled(1.5);
    EXPECT_FALSE(view.characterized(kKeyBubble, Stage::kWb));
    EXPECT_EQ(view.lookup(kKeyBubble, Stage::kWb), 2000.0 * 1.5);
    EXPECT_EQ(view.effective(kKeyBubble, Stage::kWb), 2000.0 * 1.5);
    // The characterized entry follows the scaling rule: the raw part
    // scales, the guard band does not.
    EXPECT_EQ(view.lookup(static_cast<OccKey>(isa::Opcode::kAdd), Stage::kEx),
              900.0 * 1.5 + 5.0);
}

TEST(DelayTable, ScaledReappliesStaticClampAtBandBoundary) {
    // An entry whose raw+guard exceeds the static period is clamped to the
    // static period; the scaled view clamps against the SCALED static
    // period. An entry just under the boundary stays unclamped, on both
    // sides of the view.
    DelayTable table(1000.0, 50.0);
    table.set_characterized(static_cast<OccKey>(isa::Opcode::kDiv), Stage::kEx, 980.0);
    table.set_characterized(static_cast<OccKey>(isa::Opcode::kAdd), Stage::kEx, 940.0);
    EXPECT_EQ(table.lookup(static_cast<OccKey>(isa::Opcode::kDiv), Stage::kEx), 1000.0);
    EXPECT_EQ(table.lookup(static_cast<OccKey>(isa::Opcode::kAdd), Stage::kEx), 990.0);
    const DelayTable up = table.scaled(2.0);
    // raw 980 * 2 + guard 50 = 2010 > static 2000 -> clamped.
    EXPECT_EQ(up.lookup(static_cast<OccKey>(isa::Opcode::kDiv), Stage::kEx), 2000.0);
    // raw 940 * 2 + guard 50 = 1930 < 2000 -> exact scaled value. Note the
    // guard band did NOT double: at nominal this entry sat at 990, a naive
    // finished-entry multiply would give 1980.
    EXPECT_EQ(up.lookup(static_cast<OccKey>(isa::Opcode::kAdd), Stage::kEx), 1930.0);
    // Shrinking the period can push a previously-unclamped entry into the
    // clamp: raw 940 * 0.5 + 50 = 520 > static 500.
    const DelayTable down = table.scaled(0.5);
    EXPECT_EQ(down.lookup(static_cast<OccKey>(isa::Opcode::kAdd), Stage::kEx), 500.0);
}

TEST(DelayTable, LegacySetFallsBackToFinishedEntryScaling) {
    // A manual set() abandons the raw/guard split for good: scaled() then
    // multiplies finished entries (the pre-split semantics).
    DelayTable table(2000.0, 50.0);
    table.set_characterized(static_cast<OccKey>(isa::Opcode::kAdd), Stage::kEx, 900.0);
    EXPECT_TRUE(table.has_raw());
    table.set(static_cast<OccKey>(isa::Opcode::kMul), Stage::kEx, 1200.0);
    EXPECT_FALSE(table.has_raw());
    const DelayTable view = table.scaled(2.0);
    EXPECT_FALSE(view.has_raw());
    // Finished entry 900 + 50 = 950 doubles wholesale (guard band included).
    EXPECT_EQ(view.lookup(static_cast<OccKey>(isa::Opcode::kAdd), Stage::kEx), 1900.0);
    EXPECT_EQ(view.lookup(static_cast<OccKey>(isa::Opcode::kMul), Stage::kEx), 2400.0);
}

TEST(DelayTable, SerializeRoundTrip) {
    DelayTable table(2026.0);
    table.set(static_cast<OccKey>(isa::Opcode::kMul), Stage::kEx, 1899.25);
    table.set(kKeyBubble, Stage::kAdr, 612.5);
    const DelayTable copy = DelayTable::deserialize(table.serialize());
    EXPECT_DOUBLE_EQ(copy.static_period_ps(), 2026.0);
    EXPECT_NEAR(copy.lookup(static_cast<OccKey>(isa::Opcode::kMul), Stage::kEx), 1899.25, 1e-3);
    EXPECT_NEAR(copy.lookup(kKeyBubble, Stage::kAdr), 612.5, 1e-3);
    EXPECT_FALSE(copy.characterized(kKeyHeld, Stage::kWb));
}

TEST(DelayTable, DeserializeRejectsGarbage) {
    EXPECT_THROW(DelayTable::deserialize("not a table\n"), ParseError);
    EXPECT_THROW(DelayTable::deserialize("delay_table v1 static_ps=2026\n999 0 100\n"),
                 ParseError);
}

TEST(Keys, BubbleHeldAndRedirectAttribution) {
    sim::StageView bubble;
    EXPECT_EQ(key_of(bubble), kKeyBubble);
    sim::StageView add;
    add.valid = true;
    add.inst.opcode = isa::Opcode::kAdd;
    EXPECT_EQ(key_of(add), static_cast<OccKey>(isa::Opcode::kAdd));
    add.held = true;
    EXPECT_EQ(key_of(add), kKeyHeld);

    sim::CycleRecord record;
    record.stages[static_cast<std::size_t>(Stage::kAdr)] = bubble;
    record.fetch_redirect = true;
    record.redirect_source = isa::Opcode::kJ;
    const auto keys = attribution_keys(record);
    EXPECT_EQ(keys[static_cast<std::size_t>(Stage::kAdr)], static_cast<OccKey>(isa::Opcode::kJ));
}

TEST(Keys, Names) {
    EXPECT_EQ(key_name(kKeyBubble), "<bubble>");
    EXPECT_EQ(key_name(kKeyHeld), "<held>");
    EXPECT_EQ(key_name(static_cast<OccKey>(isa::Opcode::kMul)), "l.mul");
}

// ---- Event log / trace round trips ------------------------------------------

TEST(EventLog, SerializeRoundTrip) {
    EventLog log;
    log.add({3, 14, 1234.5, 2532.5});
    log.add({4, 2, 999.25, 2500.0});
    const EventLog copy = EventLog::deserialize(log.serialize());
    ASSERT_EQ(copy.size(), 2u);
    EXPECT_EQ(copy.events()[0].cycle, 3u);
    EXPECT_EQ(copy.events()[1].endpoint_id, 2);
    EXPECT_NEAR(copy.events()[0].data_arrival_ps, 1234.5, 1e-3);
}

TEST(OccupancyTraceIo, SerializeRoundTrip) {
    OccupancyTrace trace;
    TraceEntry entry;
    entry.cycle = 9;
    entry.keys = {1, 2, 3, kKeyBubble, kKeyHeld, 0};
    trace.add(entry);
    const OccupancyTrace copy = OccupancyTrace::deserialize(trace.serialize());
    ASSERT_EQ(copy.size(), 1u);
    EXPECT_EQ(copy.entries()[0].keys[3], kKeyBubble);
}

TEST(EventLog, DeserializeRejectsGarbage) {
    EXPECT_THROW(EventLog::deserialize("bogus\n"), ParseError);
    EXPECT_THROW(OccupancyTrace::deserialize("occupancy_trace v1\n1 2 3\n"), ParseError);
}

// ---- Gate-level simulation + analyzer -----------------------------------------

struct FlowArtifacts {
    EventLog log;
    OccupancyTrace trace;
    std::vector<std::array<double, sim::kStageCount>> reference;
    double static_period_ps = 0;
};

FlowArtifacts run_gatesim(const std::string& kernel_name) {
    const timing::DesignConfig design;
    static const auto netlist = timing::SyntheticNetlist::generate({});
    const timing::DelayCalculator calculator(design);
    sim::Machine machine;
    machine.load(assembler::assemble(workloads::find_kernel(kernel_name).source));
    GateLevelSimulation gatesim(netlist, calculator);
    machine.run(&gatesim);
    return {gatesim.event_log(), gatesim.trace(), gatesim.reference_delays(),
            calculator.static_period_ps()};
}

TEST(Analyzer, RecoversReferenceDelaysExactly) {
    const auto artifacts = run_gatesim("crc32");
    AnalyzerConfig config;
    config.static_period_ps = artifacts.static_period_ps;
    DynamicTimingAnalysis analysis(PipelineSpec::from_netlist(timing::SyntheticNetlist::generate({})),
                                   config);
    analysis.analyze(artifacts.log, artifacts.trace);
    ASSERT_EQ(analysis.cycles(), artifacts.reference.size());
    // The analyzer reconstructs per-stage delays from raw endpoint events;
    // events carry the endpoint's required period directly, so recovery is
    // an identity and must match the model's ground truth bit for bit (the
    // nominal-once characterization rests on this exactness).
    for (std::size_t c = 0; c < artifacts.reference.size(); c += 7) {
        for (int s = 0; s < sim::kStageCount; ++s) {
            EXPECT_EQ(analysis.cycle_stage_delays()[c][static_cast<std::size_t>(s)],
                      artifacts.reference[c][static_cast<std::size_t>(s)])
                << "cycle " << c << " stage " << s;
        }
    }
}

TEST(Analyzer, LutDominatesEveryObservation) {
    const auto artifacts = run_gatesim("fir");
    AnalyzerConfig config;
    config.static_period_ps = artifacts.static_period_ps;
    DynamicTimingAnalysis analysis(PipelineSpec::from_netlist(timing::SyntheticNetlist::generate({})),
                                   config);
    analysis.analyze(artifacts.log, artifacts.trace);
    const DelayTable table = analysis.build_delay_table();
    for (std::size_t c = 0; c < artifacts.reference.size(); ++c) {
        const auto& entry = artifacts.trace.entries()[c];
        for (int s = 0; s < sim::kStageCount; ++s) {
            const double lut = table.lookup(entry.keys[static_cast<std::size_t>(s)],
                                            static_cast<Stage>(s));
            EXPECT_GE(lut + 1e-9, artifacts.reference[c][static_cast<std::size_t>(s)])
                << "cycle " << c << " stage " << s;
        }
    }
}

TEST(Analyzer, EntriesNeverExceedStatic) {
    const auto artifacts = run_gatesim("char_mul_div");
    AnalyzerConfig config;
    config.static_period_ps = artifacts.static_period_ps;
    DynamicTimingAnalysis analysis(PipelineSpec::from_netlist(timing::SyntheticNetlist::generate({})),
                                   config);
    analysis.analyze(artifacts.log, artifacts.trace);
    const DelayTable table = analysis.build_delay_table();
    for (OccKey key = 0; key < kKeyCount; ++key) {
        for (int s = 0; s < sim::kStageCount; ++s) {
            EXPECT_LE(table.lookup(key, static_cast<Stage>(s)), config.static_period_ps + 1e-9);
        }
    }
}

TEST(Analyzer, MinOccurrencesFallsBackToStatic) {
    const auto artifacts = run_gatesim("fibcall");
    AnalyzerConfig config;
    config.static_period_ps = artifacts.static_period_ps;
    config.min_occurrences = 1 << 30;  // nothing qualifies
    DynamicTimingAnalysis analysis(PipelineSpec::from_netlist(timing::SyntheticNetlist::generate({})),
                                   config);
    analysis.analyze(artifacts.log, artifacts.trace);
    const DelayTable table = analysis.build_delay_table();
    for (OccKey key = 0; key < kKeyCount; ++key) {
        for (int s = 0; s < sim::kStageCount; ++s) {
            EXPECT_FALSE(table.characterized(key, static_cast<Stage>(s)));
        }
    }
}

TEST(Analyzer, GenieMeanBelowStatic) {
    const auto artifacts = run_gatesim("bubblesort");
    AnalyzerConfig config;
    config.static_period_ps = artifacts.static_period_ps;
    DynamicTimingAnalysis analysis(PipelineSpec::from_netlist(timing::SyntheticNetlist::generate({})),
                                   config);
    analysis.analyze(artifacts.log, artifacts.trace);
    EXPECT_GT(analysis.genie_mean_period_ps(), 0.0);
    EXPECT_LT(analysis.genie_mean_period_ps(), config.static_period_ps);
    // The histogram of per-cycle maxima agrees with the mean accessor.
    EXPECT_NEAR(analysis.genie_histogram().stats().mean(), analysis.genie_mean_period_ps(), 1e-6);
}

TEST(Analyzer, LimitingStageCountsSumToCycles) {
    const auto artifacts = run_gatesim("matmult");
    AnalyzerConfig config;
    config.static_period_ps = artifacts.static_period_ps;
    DynamicTimingAnalysis analysis(PipelineSpec::from_netlist(timing::SyntheticNetlist::generate({})),
                                   config);
    analysis.analyze(artifacts.log, artifacts.trace);
    std::uint64_t total = 0;
    for (const auto count : analysis.limiting_stage_counts()) total += count;
    EXPECT_EQ(total, analysis.cycles());
}

TEST(Analyzer, OfflineFileFlowMatchesInMemory) {
    // The paper's flow is offline: the gate-level simulator writes the
    // event log to disk (TSSI), the DTA tool reads it back. Serializing the
    // log and trace through text and re-analyzing must produce a
    // byte-identical LUT.
    const auto artifacts = run_gatesim("fsm");
    AnalyzerConfig config;
    config.static_period_ps = artifacts.static_period_ps;
    const auto spec = PipelineSpec::from_netlist(timing::SyntheticNetlist::generate({}));

    DynamicTimingAnalysis direct(spec, config);
    direct.analyze(artifacts.log, artifacts.trace);

    const EventLog reloaded_log = EventLog::deserialize(artifacts.log.serialize());
    const OccupancyTrace reloaded_trace =
        OccupancyTrace::deserialize(artifacts.trace.serialize());
    DynamicTimingAnalysis offline(spec, config);
    offline.analyze(reloaded_log, reloaded_trace);

    EXPECT_EQ(direct.build_delay_table().serialize(), offline.build_delay_table().serialize());
    EXPECT_NEAR(direct.genie_mean_period_ps(), offline.genie_mean_period_ps(), 1e-3);
}

// ---- Streaming (EventSink) ingestion ----------------------------------------

/// Runs one kernel through a streaming gate-sim into `analysis`.
void run_gatesim_streaming(const std::string& kernel_name, DynamicTimingAnalysis& analysis) {
    const timing::DesignConfig design;
    static const auto netlist = timing::SyntheticNetlist::generate({});
    const timing::DelayCalculator calculator(design);
    sim::Machine machine;
    machine.load(assembler::assemble(workloads::find_kernel(kernel_name).source));
    GateLevelSimulation gatesim(netlist, calculator, analysis);
    machine.run(&gatesim);
    // Streaming mode materializes nothing in the observer.
    EXPECT_EQ(gatesim.event_log().size(), 0u);
    EXPECT_EQ(gatesim.trace().size(), 0u);
    EXPECT_TRUE(gatesim.reference_delays().empty());
    EXPECT_GT(gatesim.cycles_observed(), 0u);
}

TEST(StreamingAnalyzer, ByteIdenticalTableAndStatsVsMaterialized) {
    AnalyzerConfig config;
    config.static_period_ps = timing::DelayCalculator({}).static_period_ps();
    const auto spec = PipelineSpec::from_netlist(timing::SyntheticNetlist::generate({}));

    // Chain three kernels through ONE streaming analyzer...
    DynamicTimingAnalysis streaming(spec, config);
    for (const char* kernel : {"crc32", "fir", "bubblesort"}) {
        run_gatesim_streaming(kernel, streaming);
    }

    // ...and compare against a materialized merged-log analysis of the same
    // concatenated cycle stream.
    EventLog merged_log;
    OccupancyTrace merged_trace;
    std::uint64_t offset = 0;
    for (const char* kernel : {"crc32", "fir", "bubblesort"}) {
        const auto artifacts = run_gatesim(kernel);
        merged_log.append_shifted(artifacts.log, offset);
        merged_trace.append_shifted(artifacts.trace, offset);
        offset += artifacts.trace.size();
    }
    DynamicTimingAnalysis materialized(spec, config);
    materialized.analyze(merged_log, merged_trace);

    EXPECT_EQ(streaming.cycles(), materialized.cycles());
    EXPECT_EQ(streaming.build_delay_table().serialize(),
              materialized.build_delay_table().serialize());
    EXPECT_DOUBLE_EQ(streaming.genie_mean_period_ps(), materialized.genie_mean_period_ps());
    EXPECT_EQ(streaming.limiting_stage_counts(), materialized.limiting_stage_counts());
    for (OccKey key = 0; key < kKeyCount; ++key) {
        for (int s = 0; s < sim::kStageCount; ++s) {
            const auto& a = streaming.stats(key, static_cast<Stage>(s));
            const auto& b = materialized.stats(key, static_cast<Stage>(s));
            ASSERT_EQ(a.occurrences, b.occurrences);
            ASSERT_DOUBLE_EQ(a.max_ps, b.max_ps);
        }
    }
    // Streaming keeps no per-cycle vector; its figure accumulators still
    // agree with the exact statistics.
    EXPECT_TRUE(streaming.cycle_stage_delays().empty());
    const Histogram genie = streaming.genie_histogram(40);
    EXPECT_EQ(genie.total(), streaming.cycles());
    EXPECT_NEAR(genie.stats().mean(), streaming.genie_mean_period_ps(), 1e-9);
}

TEST(StreamingAnalyzer, RejectsMixingModes) {
    AnalyzerConfig config;
    config.static_period_ps = timing::DelayCalculator({}).static_period_ps();
    const auto spec = PipelineSpec::from_netlist(timing::SyntheticNetlist::generate({}));
    const auto artifacts = run_gatesim("fibcall");

    DynamicTimingAnalysis streamed(spec, config);
    run_gatesim_streaming("fibcall", streamed);
    EXPECT_THROW(streamed.analyze(artifacts.log, artifacts.trace), Error);

    DynamicTimingAnalysis analyzed(spec, config);
    analyzed.analyze(artifacts.log, artifacts.trace);
    TraceEntry entry;
    EXPECT_THROW(analyzed.consume_cycle(entry, {}), Error);
}

// ---- Batched characterization engine ----------------------------------------

/// Runs `kernels` through ONE batched engine (threads/batch from `options`)
/// chained over all programs, exactly like CharacterizationFlow does.
void run_batched(const std::vector<const char*>& kernels, DynamicTimingAnalysis& analysis,
                 BatchOptions options) {
    const timing::DesignConfig design;
    static const auto netlist = timing::SyntheticNetlist::generate({});
    const timing::DelayCalculator calculator(design);
    BatchCharacterizationEngine engine(netlist, calculator, analysis, options);
    for (const char* kernel : kernels) {
        sim::Machine machine;
        machine.load(assembler::assemble(workloads::find_kernel(kernel).source));
        machine.run(&engine);
    }
    engine.finish();
    EXPECT_EQ(engine.cycles_observed(), analysis.cycles());
}

void expect_identical_histograms(const Histogram& a, const Histogram& b) {
    ASSERT_EQ(a.bins(), b.bins());
    ASSERT_DOUBLE_EQ(a.lo(), b.lo());
    ASSERT_DOUBLE_EQ(a.hi(), b.hi());
    for (int bin = 0; bin < a.bins(); ++bin) ASSERT_EQ(a.count(bin), b.count(bin)) << bin;
    ASSERT_EQ(a.total(), b.total());
    ASSERT_DOUBLE_EQ(a.stats().mean(), b.stats().mean());
    ASSERT_DOUBLE_EQ(a.stats().min(), b.stats().min());
    ASSERT_DOUBLE_EQ(a.stats().max(), b.stats().max());
}

TEST(BatchedCharacterization, ByteIdenticalAcrossWorkersAndBatchBoundaries) {
    AnalyzerConfig config;
    config.static_period_ps = timing::DelayCalculator({}).static_period_ps();
    const auto spec = PipelineSpec::from_netlist(timing::SyntheticNetlist::generate({}));
    const std::vector<const char*> kernels = {"crc32", "fir", "bubblesort"};

    // Serial streaming reference: the per-cycle EventSink path.
    DynamicTimingAnalysis streaming(spec, config);
    for (const char* kernel : kernels) run_gatesim_streaming(kernel, streaming);
    const std::string reference_table = streaming.build_delay_table().serialize();

    // Worker counts around the shard edges (1 = inline serial kernel, 8 >
    // stages) and batch sizes hitting odd block boundaries: every cycle its
    // own slot, non-divisor slot sizes, and one slot larger than the whole
    // run (flush-only path).
    const BatchOptions configs[] = {
        {.threads = 1, .batch_cycles = 1},      {.threads = 1, .batch_cycles = 7},
        {.threads = 1, .batch_cycles = 1024},   {.threads = 2, .batch_cycles = 64},
        {.threads = 2, .batch_cycles = 100000}, {.threads = 8, .batch_cycles = 257},
    };
    for (const BatchOptions& options : configs) {
        SCOPED_TRACE(std::to_string(options.threads) + " workers, batch " +
                     std::to_string(options.batch_cycles));
        DynamicTimingAnalysis batched(spec, config);
        run_batched(kernels, batched, options);

        EXPECT_EQ(batched.cycles(), streaming.cycles());
        EXPECT_EQ(batched.build_delay_table().serialize(), reference_table);
        EXPECT_DOUBLE_EQ(batched.genie_mean_period_ps(), streaming.genie_mean_period_ps());
        EXPECT_EQ(batched.limiting_stage_counts(), streaming.limiting_stage_counts());
        expect_identical_histograms(batched.genie_histogram(40), streaming.genie_histogram(40));
        for (int s = 0; s < sim::kStageCount; ++s) {
            const auto stage = static_cast<Stage>(s);
            expect_identical_histograms(batched.stage_histogram(stage, 50),
                                        streaming.stage_histogram(stage, 50));
        }
        for (OccKey key = 0; key < kKeyCount; ++key) {
            for (int s = 0; s < sim::kStageCount; ++s) {
                const auto stage = static_cast<Stage>(s);
                const auto& a = batched.stats(key, stage);
                const auto& b = streaming.stats(key, stage);
                ASSERT_EQ(a.occurrences, b.occurrences);
                ASSERT_DOUBLE_EQ(a.max_ps, b.max_ps);
                // The deterministic reservoir retains identical samples, so
                // even the per-(instruction, stage) histograms match.
                if (a.occurrences > 0) {
                    expect_identical_histograms(batched.key_stage_histogram(key, stage),
                                                streaming.key_stage_histogram(key, stage));
                }
            }
        }
    }
}

TEST(BatchedCharacterization, RejectsUseAfterFinish) {
    AnalyzerConfig config;
    config.static_period_ps = timing::DelayCalculator({}).static_period_ps();
    DynamicTimingAnalysis analysis(PipelineSpec::from_netlist(timing::SyntheticNetlist::generate({})),
                                   config);
    run_batched({"fibcall"}, analysis, {.threads = 2, .batch_cycles = 32});

    const timing::DesignConfig design;
    static const auto netlist = timing::SyntheticNetlist::generate({});
    const timing::DelayCalculator calculator(design);
    BatchCharacterizationEngine engine(netlist, calculator, analysis, {});
    engine.finish();
    EXPECT_THROW(engine.on_cycle(sim::CycleRecord{}), Error);
    engine.finish();  // idempotent
}

TEST(Analyzer, SampleCapBoundsHistogramMemory) {
    const auto artifacts = run_gatesim("crc32");
    AnalyzerConfig config;
    config.static_period_ps = artifacts.static_period_ps;
    config.sample_cap = 16;
    DynamicTimingAnalysis analysis(PipelineSpec::from_netlist(timing::SyntheticNetlist::generate({})),
                                   config);
    analysis.analyze(artifacts.log, artifacts.trace);
    // Stats see every occurrence; the raw-sample histogram is truncated to
    // the cap (bubble slots occur in thousands of cycles).
    EXPECT_GT(analysis.stats(kKeyBubble, Stage::kEx).occurrences, 16u);
    EXPECT_EQ(analysis.key_stage_histogram(kKeyBubble, Stage::kEx).total(), 16u);
}

TEST(Analyzer, StageHistogramsMatchPerCycleData) {
    const auto artifacts = run_gatesim("bsearch");
    AnalyzerConfig config;
    config.static_period_ps = artifacts.static_period_ps;
    DynamicTimingAnalysis analysis(PipelineSpec::from_netlist(timing::SyntheticNetlist::generate({})),
                                   config);
    analysis.analyze(artifacts.log, artifacts.trace);
    for (int s = 0; s < sim::kStageCount; ++s) {
        const auto stage = static_cast<Stage>(s);
        const Histogram h = analysis.stage_histogram(stage);
        EXPECT_EQ(h.total(), analysis.cycles()) << s;
        // The EX stage must carry by far the largest mean (paper Fig. 6).
        if (stage != Stage::kEx) {
            EXPECT_LT(h.stats().mean(),
                      analysis.stage_histogram(Stage::kEx).stats().mean())
                << s;
        }
    }
}

TEST(Analyzer, MulHistogramShowsExSpread) {
    const auto artifacts = run_gatesim("fir");  // multiplier heavy
    AnalyzerConfig config;
    config.static_period_ps = artifacts.static_period_ps;
    DynamicTimingAnalysis analysis(PipelineSpec::from_netlist(timing::SyntheticNetlist::generate({})),
                                   config);
    analysis.analyze(artifacts.log, artifacts.trace);
    const auto mul_key = static_cast<OccKey>(isa::Opcode::kMul);
    const auto& ex_stats = analysis.stats(mul_key, Stage::kEx);
    ASSERT_GT(ex_stats.occurrences, 100u);
    // EX delays for l.mul sit far above its other stages (paper Fig. 7).
    EXPECT_GT(ex_stats.stats.mean(), analysis.stats(mul_key, Stage::kFe).stats.mean() + 400.0);
    EXPECT_GT(ex_stats.stats.mean(), analysis.stats(mul_key, Stage::kWb).stats.mean() + 400.0);
}

}  // namespace
}  // namespace focs::dta
