// Tests for the related-work baseline policies and the mix-statistics
// module, plus cross-voltage safety sweeps.
#include <gtest/gtest.h>

#include <map>

#include "asm/assembler.hpp"
#include "core/dca_engine.hpp"
#include "core/flows.hpp"
#include "common/error.hpp"
#include "core/controller_cost.hpp"
#include "core/mix_stats.hpp"
#include "isa/isa_info.hpp"
#include "timing/cell_library.hpp"
#include "workloads/kernel.hpp"

namespace focs::core {
namespace {

const CharacterizationResult& characterization() {
    static const CharacterizationResult result = [] {
        const CharacterizationFlow flow(timing::DesignConfig{});
        return flow.run(workloads::assemble_programs(workloads::characterization_suite()));
    }();
    return result;
}

const assembler::Program& program_of(const char* name) {
    static auto* cache = new std::map<std::string, assembler::Program>();
    auto it = cache->find(name);
    if (it == cache->end()) {
        it = cache->emplace(name, assembler::assemble(workloads::find_kernel(name).source)).first;
    }
    return it->second;
}

// ---- Dual-cycle (CRISTA-style) baseline -------------------------------------

TEST(DualCycle, SafeOnWholeSuite) {
    DcaEngine engine({});
    for (const auto& [name, program] : workloads::assemble_suite(workloads::benchmark_suite())) {
        DualCyclePolicy policy(characterization().table);
        const auto r = engine.run(program, policy);
        EXPECT_EQ(r.timing_violations, 0u) << name;
        EXPECT_EQ(r.guest.exit_code, 0u) << name;
    }
}

TEST(DualCycle, FastPeriodCoversHalfStatic) {
    DualCyclePolicy policy(characterization().table);
    EXPECT_GE(policy.fast_period_ps(), 0.5 * characterization().table.static_period_ps());
}

TEST(DualCycle, LandsBetweenStaticAndLut) {
    DcaEngine engine({});
    DualCyclePolicy dual(characterization().table);
    InstructionLutPolicy lut(characterization().table);
    const double t_dual = engine.run(program_of("bsearch"), dual).avg_period_ps;
    const double t_lut = engine.run(program_of("bsearch"), lut).avg_period_ps;
    const double t_static = engine.calculator().static_period_ps();
    EXPECT_LT(t_dual, t_static);
    EXPECT_GT(t_dual, t_lut);
}

TEST(DualCycle, StretchesOnMultiplies) {
    DcaEngine engine({});
    DualCyclePolicy policy(characterization().table);
    // fir (multiplier heavy) must pay more double-cycles than bsearch.
    const double fir = engine.run(program_of("fir"), policy).avg_period_ps;
    DualCyclePolicy policy2(characterization().table);
    const double bsearch = engine.run(program_of("bsearch"), policy2).avg_period_ps;
    EXPECT_GT(fir, bsearch + 30.0);
}

// ---- Mix statistics -----------------------------------------------------------

TEST(MixStats, SharesSumToOne) {
    const MixReport report = collect_mix(program_of("matmult"));
    std::uint64_t ex_total = 0;
    for (const auto c : report.ex_cycles) ex_total += c;
    EXPECT_EQ(ex_total, report.total_cycles);
    std::uint64_t retired = 0;
    for (const auto c : report.retired) retired += c;
    EXPECT_EQ(retired, report.total_instructions);
}

TEST(MixStats, MatmultIsMultiplierHeavy) {
    const MixReport report = collect_mix(program_of("matmult"));
    const auto mul = static_cast<std::size_t>(isa::Opcode::kMul);
    EXPECT_GT(report.ex_cycles[mul], report.total_cycles / 20);  // > 5% of cycles
    EXPECT_GT(report.ipc, 0.6);
}

TEST(MixStats, ReportRendersWithAndWithoutLut) {
    const MixReport report = collect_mix(program_of("fsm"));
    const std::string plain = report.to_string();
    EXPECT_NE(plain.find("l.jr"), std::string::npos);
    EXPECT_NE(plain.find("IPC"), std::string::npos);
    const std::string with_lut = report.to_string(&characterization().table);
    EXPECT_NE(with_lut.find("EX LUT [ps]"), std::string::npos);
}

TEST(MixStats, RedirectCyclesTrackTakenBranches) {
    // fibcall: one taken branch per 31-step inner loop + outer loop.
    const MixReport report = collect_mix(program_of("fibcall"));
    EXPECT_GT(report.redirect_cycles, 60u);
    EXPECT_LT(report.redirect_cycles, report.total_cycles / 5);
}

// ---- Controller hardware cost ----------------------------------------------------

TEST(ControllerCost, ScalesWithResolutionAndStages) {
    const auto& table = characterization().table;
    ControllerCostConfig coarse;
    coarse.resolution_bits = 3;
    ControllerCostConfig fine;
    fine.resolution_bits = 7;
    const auto c = ControllerCostModel(coarse).estimate(table, 494.0, 6000.0);
    const auto f = ControllerCostModel(fine).estimate(table, 494.0, 6000.0);
    EXPECT_GT(f.total_lut_bits, c.total_lut_bits);
    EXPECT_GT(f.dynamic_uw, c.dynamic_uw);

    ControllerCostConfig ex_only;
    ex_only.monitored_stages = 1;
    const auto e = ControllerCostModel(ex_only).estimate(table, 494.0, 6000.0);
    const auto full = ControllerCostModel().estimate(table, 494.0, 6000.0);
    EXPECT_LT(e.total_lut_bits, full.total_lut_bits);
    EXPECT_LT(e.dynamic_uw, full.dynamic_uw);
}

TEST(ControllerCost, OverheadIsSmallFractionOfCore) {
    // The technique only makes sense if the controller costs a few percent
    // of the core at most; with the default parameters it does.
    const auto cost = ControllerCostModel().estimate(characterization().table, 494.0, 6000.0);
    EXPECT_GT(cost.overhead_fraction, 0.001);
    EXPECT_LT(cost.overhead_fraction, 0.05);
    EXPECT_EQ(cost.total_uw, cost.dynamic_uw + cost.standing_uw);
}

TEST(ControllerCost, EnergyScalesWithVoltageSquared) {
    const auto& table = characterization().table;
    const ControllerCostModel model;
    const auto high = model.estimate(table, 494.0, 6000.0, 0.70);
    const auto low = model.estimate(table, 494.0, 6000.0, 0.63);
    EXPECT_NEAR(low.dynamic_uw / high.dynamic_uw, (0.63 * 0.63) / (0.70 * 0.70), 1e-9);
}

TEST(ControllerCost, RejectsBadConfig) {
    ControllerCostConfig bad;
    bad.resolution_bits = 0;
    EXPECT_THROW(ControllerCostModel{bad}, Error);
    bad.resolution_bits = 5;
    bad.monitored_stages = 9;
    EXPECT_THROW(ControllerCostModel{bad}, Error);
}

// ---- Cross-voltage property sweep -----------------------------------------------

class VoltageSweep : public ::testing::TestWithParam<double> {};

TEST_P(VoltageSweep, CharacterizeAndEvaluateStaysSafe) {
    // Characterize *at* the operating voltage (per-point libraries, as the
    // paper does) and evaluate there: safety and the relative speedup must
    // hold at every characterized operating point.
    timing::DesignConfig design;
    design.voltage_v = GetParam();
    const CharacterizationFlow flow(design);
    const auto result = flow.run(workloads::assemble_programs(
        {workloads::find_kernel("char_alu"), workloads::find_kernel("char_mul_div"),
         workloads::find_kernel("char_shift"), workloads::find_kernel("char_memory"),
         workloads::find_kernel("char_compare_branch"), workloads::find_kernel("char_jump"),
         workloads::find_kernel("testgen_161"), workloads::find_kernel("testgen_178")}));
    DcaEngine engine(design);
    InstructionLutPolicy policy(result.table);
    const auto run = engine.run(program_of("crc32"), policy);
    EXPECT_EQ(run.timing_violations, 0u) << GetParam();
    EXPECT_GT(run.speedup_vs_static, 1.25) << GetParam();
    // Absolute frequency scales with voltage; relative speedup does not.
    EXPECT_NEAR(run.static_period_ps,
                2026.0 * timing::CellLibrary::fdsoi28().delay_scale(GetParam()), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Points, VoltageSweep, ::testing::Values(0.60, 0.65, 0.70, 0.75, 0.80),
                         [](const ::testing::TestParamInfo<double>& info) {
                             return "v" + std::to_string(static_cast<int>(info.param * 100));
                         });

}  // namespace
}  // namespace focs::core
