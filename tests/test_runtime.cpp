// Sweep runtime tests: parallel determinism (the central contract — a
// --jobs N run must be byte-identical to a serial run of the same spec),
// exactly-once artifact construction, fault tolerance (per-cell isolation,
// cache poison recovery, deadlines), JSON round-trips, and spec parsing.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/cancel.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "core/flows.hpp"
#include "runtime/artifact_cache.hpp"
#include "runtime/result_io.hpp"
#include "runtime/sweep_engine.hpp"
#include "runtime/sweep_spec.hpp"
#include "workloads/kernel.hpp"

namespace focs::runtime {
namespace {

/// Small but multi-axis spec: 3 kernels x 2 policies x 2 generators, one
/// voltage; 12 cells, enough to keep 4 workers busy concurrently.
SweepSpec small_spec() {
    SweepSpec spec;
    spec.kernels = {"crc32", "fibcall", "bitcount"};
    spec.policies = {core::PolicyKind::kInstructionLut, core::PolicyKind::kStatic};
    spec.generators = {GeneratorSpec::parse("ideal"), GeneratorSpec::parse("taps:8")};
    return spec;
}

/// Arms the process-global fault injector for one test body and guarantees
/// it is disarmed again on every exit path (the injector is shared across
/// every test in this binary).
struct GlobalFaultGuard {
    explicit GlobalFaultGuard(const std::string& spec) {
        fault::global_injector().configure(spec);
    }
    ~GlobalFaultGuard() { fault::global_injector().configure(""); }
};

/// Tests that need the product code's inject points to fire cannot run in
/// a -DFOCS_FAULT_COMPILE_OUT build (the macros compile to nothing there).
#ifdef FOCS_FAULT_COMPILE_OUT
#define FOCS_REQUIRE_FAULT_POINTS() GTEST_SKIP() << "fault inject points compiled out"
#else
#define FOCS_REQUIRE_FAULT_POINTS() ((void)0)
#endif

TEST(SweepEngine, ParallelRunIsByteIdenticalToSerial) {
    const SweepEngine serial(1);
    const SweepEngine parallel(4);
    SweepResult a = serial.run(small_spec());
    SweepResult b = parallel.run(small_spec());
    EXPECT_EQ(a.jobs, 1);
    EXPECT_EQ(b.jobs, 4);
    ASSERT_EQ(a.cells.size(), b.cells.size());
    // The canonical document excludes run-dependent timing fields; on equal
    // specs it must match byte for byte regardless of the job count.
    EXPECT_EQ(to_json(a, /*include_timing=*/false), to_json(b, /*include_timing=*/false));
}

TEST(SweepEngine, ReplayIsByteIdenticalToLiveAtEveryJobCount) {
    // The central record/replay contract at the sweep level: the same grid
    // evaluated live and via cached traces produces identical canonical
    // documents, for 1/2/8 workers (8 > cell-per-kernel count, so workers
    // race for shared trace futures under TSan). The grid spans every
    // bundled policy kind — including the promoted approx-lut/dual-cycle
    // kernels and two parameterized grid points — and two voltage points,
    // so the shared unit delay arrays are raced and scaled across the
    // voltage axis too. With two generators per column the replay side
    // schedules fused columns, so this also proves fusion is invisible in
    // the bytes at every job count.
    SweepSpec spec = small_spec();
    spec.policies = {core::PolicyKind::kInstructionLut, core::PolicyKind::kStatic,
                     core::PolicyKind::kGenie, core::PolicyKind::kExOnly,
                     core::PolicyKind::kTwoClass, core::PolicyKind::kApproxLut,
                     core::PolicyKind::kDualCycle,
                     core::PolicySpec::parse("approx-lut:0.8"),
                     core::PolicySpec::parse("dual-cycle:3")};
    spec.voltages_v = {0.65, 0.70};
    const SweepResult live = SweepEngine(2, nullptr, EvalMode::kLive).run(spec);
    EXPECT_EQ(live.mode, "live");
    EXPECT_EQ(live.guest_simulations, live.cells.size());
    EXPECT_EQ(live.unit_delay_passes, 0u);
    const std::string live_json = to_json(live, /*include_timing=*/false);
    for (const int jobs : {1, 2, 8}) {
        const SweepResult replayed = SweepEngine(jobs, nullptr, EvalMode::kReplay).run(spec);
        EXPECT_EQ(replayed.mode, "replay");
        // Exactly one guest simulation AND one unit delay pass per kernel,
        // regardless of the 18 policy x generator cells and 2 voltage
        // points stacked on each.
        EXPECT_EQ(replayed.guest_simulations, spec.kernels.size()) << jobs << " jobs";
        EXPECT_EQ(replayed.unit_delay_passes, spec.kernels.size()) << jobs << " jobs";
        EXPECT_EQ(replayed.unit_delay_reuses,
                  replayed.cells.size() - spec.kernels.size())
            << jobs << " jobs";
        EXPECT_EQ(to_json(replayed, /*include_timing=*/false), live_json) << jobs << " jobs";
    }
}

TEST(SweepEngine, DenseVoltageGridPaysOneUnitDelayPassPerKernel) {
    // The voltage-axis amortization contract on a >= 10-point grid: delay-
    // model work is one pass per (kernel, variant), not per (kernel,
    // voltage). The delay table is pre-seeded per point so the test
    // measures the trace-delay axis, not characterization.
    SweepSpec spec;
    spec.kernels = {"crc32", "fibcall"};
    spec.policies = {core::PolicyKind::kGenie, core::PolicyKind::kStatic};
    spec.voltages_v = {0.50, 0.55, 0.60, 0.65, 0.70, 0.75, 0.80, 0.85, 0.90, 0.62};
    auto cache = std::make_shared<ArtifactCache>();
    for (const double voltage : spec.voltages_v) {
        cache->put_delay_table(spec.design_for(voltage), SweepEngine::analyzer_config_for(spec),
                               dta::DelayTable(5000.0));
    }
    const SweepResult result = SweepEngine(4, cache, EvalMode::kReplay).run(spec);
    EXPECT_EQ(result.cells.size(), 2u * 2u * 10u);
    EXPECT_EQ(result.characterizations, 0u);
    EXPECT_EQ(result.guest_simulations, spec.kernels.size());
    // 10 voltages x 2 policies x 2 kernels = 40 unit-delay requests, but
    // only one fused pass per kernel; the other 38 are view derivations.
    EXPECT_EQ(result.unit_delay_passes, spec.kernels.size());
    EXPECT_EQ(result.unit_delay_reuses, result.cells.size() - spec.kernels.size());
    EXPECT_EQ(cache->unit_delay_passes(), spec.kernels.size());
}

TEST(SweepEngine, ReplayReusesTracesAcrossSweeps) {
    auto cache = std::make_shared<ArtifactCache>();
    const SweepEngine engine(4, cache, EvalMode::kReplay);
    const SweepResult first = engine.run(small_spec());
    EXPECT_EQ(first.guest_simulations, 3u);
    EXPECT_EQ(cache->traces_recorded(), 3u);
    EXPECT_EQ(cache->unit_delay_passes(), 3u);  // one per kernel, voltage-free
    // A warm cache serves traces and unit delays without any new guest
    // runs or delay-model passes.
    const SweepResult again = engine.run(small_spec());
    EXPECT_EQ(again.guest_simulations, 0u);
    EXPECT_EQ(again.unit_delay_passes, 0u);
    EXPECT_EQ(cache->traces_recorded(), 3u);
    EXPECT_EQ(cache->unit_delay_passes(), 3u);
    EXPECT_EQ(to_json(first, false), to_json(again, false));
}

TEST(SweepEngine, StampsCacheOutcomeMetrics) {
    auto cache = std::make_shared<ArtifactCache>();
    const SweepEngine engine(4, cache, EvalMode::kReplay);
    const SweepResult result = engine.run(small_spec());
    // Misses are the deterministic exactly-once builds; the hit/wait split
    // depends on thread scheduling, so the assertions use the served sums.
    EXPECT_EQ(result.metrics.program.miss, 3u);      // one per kernel (trace builders)
    EXPECT_EQ(result.metrics.delay_table.miss, 1u);  // one operating point
    EXPECT_EQ(result.metrics.trace.miss, 3u);
    EXPECT_EQ(result.metrics.unit_delays.miss, 3u);
    // 12 cells plus 3 unit-delay builders request the trace; 3 of the 15
    // requests build, the rest are served from the shared futures.
    EXPECT_EQ(result.metrics.trace.served(), 12u);
    EXPECT_EQ(result.metrics.unit_delays.served(), 9u);
    EXPECT_EQ(result.metrics.delay_table.served(), 11u);
    EXPECT_EQ(result.metrics.program.served(), 0u);
    // Wall-time distribution: ordered percentiles over populated samples.
    EXPECT_GE(result.metrics.cell_wall_ms_p95, result.metrics.cell_wall_ms_p50);
    EXPECT_GE(result.metrics.cell_wall_ms_max, result.metrics.cell_wall_ms_p95);
    EXPECT_GT(result.metrics.cell_wall_ms_max, 0.0);
    EXPECT_GE(result.metrics.queue_wait_ms_total, 0.0);
    for (const auto& cell : result.cells) EXPECT_GE(cell.wall_ms, 0.0);

    // A warm cache builds nothing: every request is served.
    const SweepResult again = engine.run(small_spec());
    EXPECT_EQ(again.metrics.trace.miss, 0u);
    EXPECT_EQ(again.metrics.unit_delays.miss, 0u);
    EXPECT_EQ(again.metrics.delay_table.miss, 0u);
    EXPECT_EQ(again.metrics.trace.served(), 12u);
    EXPECT_EQ(again.metrics.unit_delays.served(), 12u);
    EXPECT_EQ(again.metrics.delay_table.served(), 12u);
}

TEST(SweepEngine, StampsSpecTextAndHash) {
    const SweepEngine engine(1);
    const SweepSpec spec = small_spec();
    const SweepResult result = engine.run(spec);
    EXPECT_EQ(result.spec_text, spec.resolved().serialize());
    EXPECT_EQ(result.spec_hash, stable_text_hash(result.spec_text));
    EXPECT_EQ(result.spec_hash.rfind("fnv1a:", 0), 0u);
    // The stamp survives the JSON round trip (both document flavours).
    const SweepResult parsed = from_json(to_json(result));
    EXPECT_EQ(parsed.spec_text, result.spec_text);
    EXPECT_EQ(parsed.spec_hash, result.spec_hash);
    EXPECT_EQ(parsed.mode, result.mode);
    EXPECT_EQ(parsed.guest_simulations, result.guest_simulations);
    const SweepResult canonical = from_json(to_json(result, /*include_timing=*/false));
    EXPECT_EQ(canonical.spec_hash, result.spec_hash);
    EXPECT_TRUE(canonical.mode.empty());
}

TEST(SweepEngine, VoltageAxisPaysOneNominalCharacterization) {
    auto cache = std::make_shared<ArtifactCache>();
    const SweepEngine engine(4, cache);
    SweepSpec spec = small_spec();
    spec.voltages_v = {0.70, 0.80};

    const SweepResult result = engine.run(spec);
    EXPECT_EQ(result.cells.size(), 24u);
    // Two voltages -> ONE nominal characterization; each operating point's
    // table is a derived scaled view (including 0.70 V itself, whose view
    // is the factor-1.0 identity), each built once despite 12 cells racing
    // for it.
    EXPECT_EQ(result.characterizations, 1u);
    EXPECT_EQ(result.nominal_passes, 1u);
    EXPECT_EQ(result.scaled_views, 2u);
    EXPECT_EQ(cache->characterizations_built(), 1u);
    EXPECT_EQ(cache->reference_passes(), 0u);

    // A second sweep over the same grid is served entirely from the cache.
    const SweepResult again = engine.run(spec);
    EXPECT_EQ(again.characterizations, 0u);
    EXPECT_EQ(again.nominal_passes, 0u);
    EXPECT_EQ(again.scaled_views, 0u);
    EXPECT_EQ(to_json(result, false), to_json(again, false));
}

TEST(SweepEngine, ReferenceCharacterizationIsByteIdenticalToScaledViews) {
    // The escape hatch characterizes every operating point with the full
    // per-voltage flow; canonical output must be byte-identical to the
    // nominal-once scaled-view path.
    SweepSpec spec = small_spec();
    spec.voltages_v = {0.62, 0.70, 0.78};

    auto derived_cache = std::make_shared<ArtifactCache>();
    const SweepResult derived = SweepEngine(4, derived_cache).run(spec);

    auto reference_cache = std::make_shared<ArtifactCache>();
    SweepRunOptions options;
    options.reference_characterization = true;
    const SweepResult reference = SweepEngine(4, reference_cache).run(spec, options);

    EXPECT_EQ(derived.nominal_passes, 1u);
    EXPECT_EQ(derived.scaled_views, 3u);
    EXPECT_EQ(reference.nominal_passes, 0u);
    EXPECT_EQ(reference.scaled_views, 0u);
    EXPECT_EQ(reference.characterizations, 3u);
    EXPECT_EQ(reference_cache->reference_passes(), 3u);
    EXPECT_EQ(to_json(derived, false), to_json(reference, false));
}

TEST(SweepEngine, CellsArriveInSpecDeclarationOrder) {
    const SweepEngine engine(4);
    const SweepResult result = engine.run(small_spec());
    ASSERT_EQ(result.cells.size(), 12u);
    // kernel-major, then policy, then generator.
    EXPECT_EQ(result.cells[0].kernel, "crc32");
    EXPECT_EQ(result.cells[0].policy, "lut");
    EXPECT_EQ(result.cells[0].generator, "ideal");
    EXPECT_EQ(result.cells[1].generator, "taps:8");
    EXPECT_EQ(result.cells[2].policy, "static");
    EXPECT_EQ(result.cells[4].kernel, "fibcall");
    EXPECT_EQ(result.cells[8].kernel, "bitcount");
    for (const auto& cell : result.cells) {
        EXPECT_EQ(cell.result.guest.exit_code, 0u) << cell.kernel;
        EXPECT_EQ(cell.result.timing_violations, 0u) << cell.kernel;
        EXPECT_GT(cell.result.eff_freq_mhz, 0.0) << cell.kernel;
    }
}

TEST(SweepEngine, PreseededTableSkipsCharacterization) {
    auto cache = std::make_shared<ArtifactCache>();
    const SweepEngine engine(2, cache);
    SweepSpec spec = small_spec();

    // Seed the (single) operating point with a trivial table; the sweep must
    // not characterize at all and must use the seeded fallback everywhere.
    cache->put_delay_table(spec.design_for(timing::DesignConfig{}.voltage_v),
                           SweepEngine::analyzer_config_for(spec),
                           dta::DelayTable(1000.0));
    const SweepResult result = engine.run(spec);
    EXPECT_EQ(result.characterizations, 0u);
    EXPECT_EQ(cache->characterizations_built(), 0u);
}

TEST(SweepEngine, KeepGoingIsolatesFailedCellsAcrossJobCounts) {
    FOCS_REQUIRE_FAULT_POINTS();
    // Per-cell isolation under injected evaluation faults: failing cells
    // carry their status and error, every other cell completes, and *which*
    // cells fail is a pure function of the cell key — so the canonical
    // document is byte-identical at any job count even on a faulty run.
    const GlobalFaultGuard guard("eval.cell:0.5:seed=11");
    const SweepResult serial = SweepEngine(1).run(small_spec());
    EXPECT_GT(serial.cells_failed, 0u);
    EXPECT_GT(serial.cells_ok, 0u);
    EXPECT_EQ(serial.cells_cancelled, 0u);
    EXPECT_EQ(serial.cells_ok + serial.cells_failed, serial.cells.size());
    EXPECT_FALSE(serial.complete());
    double ok_freq_sum = 0;
    for (const auto& cell : serial.cells) {
        if (cell.ok()) {
            ok_freq_sum += cell.result.eff_freq_mhz;
            EXPECT_TRUE(cell.error.empty());
            continue;
        }
        EXPECT_EQ(cell.status, CellStatus::kFailed);
        EXPECT_EQ(cell.error_code, ErrorCode::kInjected);
        EXPECT_NE(cell.error.find("eval.cell"), std::string::npos);
    }
    // Aggregates cover the surviving cells only.
    EXPECT_DOUBLE_EQ(serial.mean_eff_freq_mhz,
                     ok_freq_sum / static_cast<double>(serial.cells_ok));
    const SweepResult parallel = SweepEngine(8).run(small_spec());
    EXPECT_EQ(parallel.cells_failed, serial.cells_failed);
    EXPECT_EQ(to_json(serial, /*include_timing=*/false),
              to_json(parallel, /*include_timing=*/false));
}

TEST(SweepEngine, FailFastNamesTheFailingCell) {
    FOCS_REQUIRE_FAULT_POINTS();
    const GlobalFaultGuard guard("eval.cell:1:max=1");
    SweepRunOptions options;
    options.failure_mode = FailureMode::kFailFast;
    try {
        SweepEngine(1).run(small_spec(), options);
        FAIL() << "fail-fast sweep did not throw";
    } catch (const Error& e) {
        EXPECT_EQ(e.code(), ErrorCode::kInjected);
        // The rethrown failure names the failing cell's grid coordinates
        // (first cell in declaration order under one worker).
        EXPECT_NE(std::string(e.what()).find("sweep cell crc32/lut/ideal@"),
                  std::string::npos);
    }
}

TEST(SweepEngine, ExpiredDeadlineDrainsQueueAsCancelledCells) {
    const CancellationToken expired = CancellationToken::with_deadline_ms(0);
    SweepRunOptions options;
    options.cancel = &expired;
    const SweepResult result = SweepEngine(2).run(small_spec(), options);
    EXPECT_EQ(result.cells_cancelled, result.cells.size());
    EXPECT_EQ(result.cells_ok, 0u);
    EXPECT_FALSE(result.complete());
    EXPECT_EQ(result.mean_eff_freq_mhz, 0.0);
    for (const auto& cell : result.cells) {
        EXPECT_EQ(cell.status, CellStatus::kCancelled);
        EXPECT_EQ(cell.error_code, ErrorCode::kDeadline);
        EXPECT_NE(cell.error.find("deadline"), std::string::npos);
        EXPECT_FALSE(cell.kernel.empty());  // coordinates survive the drain
    }
    // The drained queue paid for no work at all.
    EXPECT_EQ(result.guest_simulations, 0u);
    EXPECT_EQ(result.characterizations, 0u);

    // An explicit request reports kCancelled instead of kDeadline.
    const CancellationToken requested;
    requested.request_cancel();
    options.cancel = &requested;
    const SweepResult stopped = SweepEngine(2).run(small_spec(), options);
    EXPECT_EQ(stopped.cells_cancelled, stopped.cells.size());
    EXPECT_EQ(stopped.cells[0].error_code, ErrorCode::kCancelled);
}

TEST(SweepEngine, MidRunDeadlineReturnsPartialResults) {
    FOCS_REQUIRE_FAULT_POINTS();
    // Slow every cell down with a delay fault so a short deadline fires
    // mid-sweep: the run still returns normally, with each cell either ok,
    // or cancelled at the boundary. How far the sweep got is timing-
    // dependent; the status partition is not.
    const GlobalFaultGuard guard("eval.cell:1:delay_ms=20");
    const CancellationToken deadline = CancellationToken::with_deadline_ms(5);
    SweepRunOptions options;
    options.cancel = &deadline;
    const SweepResult result = SweepEngine(1).run(small_spec(), options);
    EXPECT_GE(result.cells_cancelled, 1u);
    EXPECT_EQ(result.cells_failed, 0u);
    EXPECT_EQ(result.cells_ok + result.cells_cancelled, result.cells.size());
    for (const auto& cell : result.cells) {
        if (!cell.ok()) {
            EXPECT_EQ(cell.error_code, ErrorCode::kDeadline);
        }
    }
}

TEST(ResultIo, JsonRoundTripIsLossless) {
    const SweepEngine engine(2);
    SweepSpec spec = small_spec();
    spec.kernels = {"crc32"};
    const SweepResult result = engine.run(spec);

    const std::string json = to_json(result);
    EXPECT_NE(json.find("\"focs-sweep-v6\""), std::string::npos);
    const SweepResult parsed = from_json(json);
    EXPECT_EQ(parsed.jobs, result.jobs);
    EXPECT_EQ(parsed.characterizations, result.characterizations);
    EXPECT_EQ(parsed.nominal_passes, result.nominal_passes);
    EXPECT_EQ(parsed.scaled_views, result.scaled_views);
    // The stamped spec hash matches an independent recomputation over the
    // round-tripped canonical spec text (FNV-1a over the exact bytes).
    EXPECT_EQ(parsed.spec_hash, stable_text_hash(parsed.spec_text));
    EXPECT_EQ(parsed.unit_delay_passes, result.unit_delay_passes);
    EXPECT_EQ(parsed.unit_delay_reuses, result.unit_delay_reuses);
    // The metrics block survives the round trip.
    EXPECT_EQ(parsed.metrics.trace.miss, result.metrics.trace.miss);
    EXPECT_EQ(parsed.metrics.unit_delays.hit, result.metrics.unit_delays.hit);
    EXPECT_EQ(parsed.metrics.unit_delays.wait, result.metrics.unit_delays.wait);
    EXPECT_EQ(parsed.metrics.delay_table.miss, result.metrics.delay_table.miss);
    EXPECT_DOUBLE_EQ(parsed.metrics.cell_wall_ms_p50, result.metrics.cell_wall_ms_p50);
    EXPECT_DOUBLE_EQ(parsed.metrics.cell_wall_ms_p95, result.metrics.cell_wall_ms_p95);
    EXPECT_DOUBLE_EQ(parsed.metrics.cell_wall_ms_max, result.metrics.cell_wall_ms_max);
    EXPECT_DOUBLE_EQ(parsed.metrics.queue_wait_ms_total, result.metrics.queue_wait_ms_total);
    ASSERT_EQ(parsed.cells.size(), result.cells.size());
    for (std::size_t i = 0; i < parsed.cells.size(); ++i) {
        EXPECT_EQ(parsed.cells[i].kernel, result.cells[i].kernel);
        EXPECT_EQ(parsed.cells[i].result.cycles, result.cells[i].result.cycles);
        EXPECT_EQ(parsed.cells[i].result.guest.reports, result.cells[i].result.guest.reports);
        EXPECT_DOUBLE_EQ(parsed.cells[i].wall_ms, result.cells[i].wall_ms);
        EXPECT_DOUBLE_EQ(parsed.cells[i].queue_wait_ms, result.cells[i].queue_wait_ms);
    }
    // Re-serializing the parsed document reproduces it byte for byte ("%.17g"
    // doubles survive the round trip).
    EXPECT_EQ(to_json(parsed), json);
}

TEST(ResultIo, ParsesOlderSchemaDocuments) {
    // Artifacts produced by older builds must still load, with the absent
    // fields left zero: v3 lacks the metrics block and per-cell timing, v2
    // additionally lacks the voltage-axis counters.
    const SweepEngine engine(1);
    SweepSpec spec = small_spec();
    spec.kernels = {"crc32"};
    const SweepResult result = engine.run(spec);

    // Reconstruct a v5 document from the v6 emission: rename the schema
    // string and drop the characterization-collapse counters.
    std::string v5 = to_json(result);
    const auto v6_at = v5.find("focs-sweep-v6");
    ASSERT_NE(v6_at, std::string::npos);
    v5.replace(v6_at, 13, "focs-sweep-v5");
    const auto nominal_at = v5.find("  \"nominal_passes\"");
    ASSERT_NE(nominal_at, std::string::npos);
    const auto views_end = v5.find('\n', v5.find("\"scaled_views\""));
    ASSERT_NE(views_end, std::string::npos);
    v5.erase(nominal_at, views_end + 1 - nominal_at);
    const SweepResult parsed_v5 = from_json(v5);
    EXPECT_EQ(parsed_v5.nominal_passes, 0u);
    EXPECT_EQ(parsed_v5.scaled_views, 0u);
    EXPECT_EQ(parsed_v5.characterizations, result.characterizations);

    // A v4 document on top: an all-ok sweep's wire format is identical,
    // only the schema string changed — so the rename alone produces a
    // faithful v4 artifact.
    std::string v4 = v5;
    const auto v5_at = v4.find("focs-sweep-v5");
    ASSERT_NE(v5_at, std::string::npos);
    v4.replace(v5_at, 13, "focs-sweep-v4");
    const SweepResult parsed_v4 = from_json(v4);
    EXPECT_EQ(parsed_v4.unit_delay_passes, result.unit_delay_passes);
    // The per-status counts are derived from the cells when the header
    // (of any pre-v5 vintage) lacks them.
    EXPECT_EQ(parsed_v4.cells_ok, result.cells.size());
    EXPECT_EQ(parsed_v4.cells_failed, 0u);

    // Then a v3 document on top: rename the schema, drop the metrics block
    // and the per-cell timing fields.
    std::string v3 = v4;
    const auto schema_at = v3.find("focs-sweep-v4");
    ASSERT_NE(schema_at, std::string::npos);
    v3.replace(schema_at, 13, "focs-sweep-v3");
    const auto metrics_at = v3.find("  \"metrics\": ");
    ASSERT_NE(metrics_at, std::string::npos);
    const auto metrics_end = v3.find("  \"mean_eff_freq_mhz\"", metrics_at);
    ASSERT_NE(metrics_end, std::string::npos);
    v3.erase(metrics_at, metrics_end - metrics_at);
    for (std::size_t at = v3.find(", \"wall_ms\""); at != std::string::npos;
         at = v3.find(", \"wall_ms\"")) {
        const auto guest_at = v3.find(", \"guest\"", at);
        ASSERT_NE(guest_at, std::string::npos);
        v3.erase(at, guest_at - at);
    }

    const SweepResult parsed_v3 = from_json(v3);
    EXPECT_EQ(parsed_v3.metrics.trace.miss, 0u);
    EXPECT_EQ(parsed_v3.metrics.cell_wall_ms_p95, 0.0);
    EXPECT_EQ(parsed_v3.cells[0].wall_ms, 0.0);
    EXPECT_EQ(parsed_v3.unit_delay_passes, result.unit_delay_passes);
    EXPECT_EQ(parsed_v3.spec_hash, result.spec_hash);

    // And a v2 document on top: no unit-delay counters either.
    std::string v2 = v3;
    v2.replace(v2.find("focs-sweep-v3"), 13, "focs-sweep-v2");
    const auto passes_at = v2.find("  \"unit_delay_passes\"");
    ASSERT_NE(passes_at, std::string::npos);
    const auto reuses_end = v2.find('\n', v2.find("\"unit_delay_reuses\""));
    v2.erase(passes_at, reuses_end + 1 - passes_at);

    const SweepResult parsed = from_json(v2);
    EXPECT_EQ(parsed.unit_delay_passes, 0u);
    EXPECT_EQ(parsed.unit_delay_reuses, 0u);
    EXPECT_EQ(parsed.spec_hash, result.spec_hash);
    ASSERT_EQ(parsed.cells.size(), result.cells.size());
    EXPECT_EQ(parsed.cells[0].result.total_time_ps, result.cells[0].result.total_time_ps);

    // v1 on top of that: pre-replay, no spec stamp.
    std::string v1 = v2;
    v1.replace(v1.find("focs-sweep-v2"), 13, "focs-sweep-v1");
    const auto spec_at = v1.find("  \"spec\"");
    ASSERT_NE(spec_at, std::string::npos);
    const auto spec_end = v1.find('\n', v1.find("\"spec_hash\""));
    v1.erase(spec_at, spec_end + 1 - spec_at);
    const SweepResult parsed_v1 = from_json(v1);
    EXPECT_TRUE(parsed_v1.spec_hash.empty());
    ASSERT_EQ(parsed_v1.cells.size(), result.cells.size());
    EXPECT_EQ(parsed_v1.cells[0].result.cycles, result.cells[0].result.cycles);
}

TEST(ResultIo, RejectsMalformedDocuments) {
    EXPECT_THROW(from_json(""), Error);
    EXPECT_THROW(from_json("{"), Error);
    EXPECT_THROW(from_json("{\"schema\": \"bogus\"}"), Error);
    EXPECT_THROW(from_json("{\"schema\": \"focs-sweep-v1\"}"), Error);  // missing fields
    EXPECT_THROW(from_json("{\"schema\": \"\\uZZZZ\"}"), Error);        // non-hex \u escape
    EXPECT_THROW(from_json("{\"schema\": \"\\u20ac\"}"), Error);  // beyond control range
}

TEST(ResultIo, RejectsTruncatedAndCorruptDocuments) {
    SweepSpec spec = small_spec();
    spec.kernels = {"crc32"};
    const std::string json = to_json(SweepEngine(1).run(spec));
    // Truncation anywhere — mid-cells or just before the closing brace —
    // is a hard parse error, never a silently shorter result.
    EXPECT_THROW(from_json(json.substr(0, json.size() / 2)), Error);
    EXPECT_THROW(from_json(json.substr(0, json.size() - 2)), Error);
    EXPECT_THROW(from_json(json + "x"), Error);  // trailing garbage
}

TEST(ResultIo, V6RoundTripPreservesFailureFields) {
    FOCS_REQUIRE_FAULT_POINTS();
    const GlobalFaultGuard guard("eval.cell:0.5:seed=11");
    const SweepResult result = SweepEngine(2).run(small_spec());
    ASSERT_GT(result.cells_failed, 0u);
    ASSERT_GT(result.cells_ok, 0u);

    const std::string json = to_json(result);
    EXPECT_NE(json.find("\"cells_failed\""), std::string::npos);
    EXPECT_NE(json.find("\"status\": \"failed\""), std::string::npos);
    const SweepResult parsed = from_json(json);
    EXPECT_EQ(parsed.cells_ok, result.cells_ok);
    EXPECT_EQ(parsed.cells_failed, result.cells_failed);
    EXPECT_EQ(parsed.cells_cancelled, 0u);
    ASSERT_EQ(parsed.cells.size(), result.cells.size());
    for (std::size_t i = 0; i < parsed.cells.size(); ++i) {
        EXPECT_EQ(parsed.cells[i].status, result.cells[i].status) << i;
        EXPECT_EQ(parsed.cells[i].error_code, result.cells[i].error_code) << i;
        EXPECT_EQ(parsed.cells[i].error, result.cells[i].error) << i;
    }
    EXPECT_EQ(to_json(parsed), json);  // byte-stable re-serialization

    // The canonical flavour keeps the failure vocabulary too (which cells
    // fail is deterministic, so it belongs in the canonical document).
    const SweepResult canonical = from_json(to_json(result, /*include_timing=*/false));
    EXPECT_EQ(canonical.cells_failed, result.cells_failed);

    // Corrupt enum values are rejected, not zero-filled.
    std::string bad_code = json;
    bad_code.replace(bad_code.find("\"injected\""), 10, "\"gremlins\"");
    EXPECT_THROW(from_json(bad_code), Error);
    std::string bad_status = json;
    bad_status.replace(bad_status.find("\"status\": \"failed\""), 18,
                       "\"status\": \"exploded\"");
    EXPECT_THROW(from_json(bad_status), Error);
}

TEST(ResultIo, AllOkDocumentCarriesNoFailureVocabulary) {
    // A fully successful sweep's document must not mention failures at all:
    // a canonical v6 emission differs from a v4 one only in the schema
    // string, keeping historical byte-comparison workflows valid.
    const SweepResult result = SweepEngine(2).run(small_spec());
    ASSERT_TRUE(result.complete());
    for (const std::string& json :
         {to_json(result), to_json(result, /*include_timing=*/false)}) {
        EXPECT_EQ(json.find("\"cells_ok\""), std::string::npos);
        EXPECT_EQ(json.find("\"cells_failed\""), std::string::npos);
        EXPECT_EQ(json.find("\"cells_cancelled\""), std::string::npos);
        EXPECT_EQ(json.find("\"status\""), std::string::npos);
        EXPECT_EQ(json.find("\"error_code\""), std::string::npos);
        // Parsing still reports the counts, derived from the cells.
        const SweepResult parsed = from_json(json);
        EXPECT_EQ(parsed.cells_ok, result.cells.size());
        EXPECT_TRUE(parsed.complete());
    }
}

TEST(SweepSpec, ParseSerializeRoundTrip) {
    const char* text =
        "# Fig. 8 style sweep\n"
        "kernels = crc32, fibcall\n"
        "policies = static, lut, genie\n"
        "generators = ideal, taps:8, pll:1300/1500:4\n"
        "voltages = 0.7, 0.8\n"
        "variant = conventional\n"
        "guard_ps = 30\n"
        "min_occurrences = 5\n"
        "jobs = 3\n";
    const SweepSpec spec = SweepSpec::parse(text);
    EXPECT_EQ(spec.kernels.size(), 2u);
    EXPECT_EQ(spec.policies.size(), 3u);
    ASSERT_EQ(spec.generators.size(), 3u);
    EXPECT_EQ(spec.generators[2].label(), "pll:1300/1500:4");
    EXPECT_EQ(spec.voltages_v.size(), 2u);
    EXPECT_EQ(spec.variant, timing::DesignVariant::kConventional);
    EXPECT_DOUBLE_EQ(spec.lut_guard_ps, 30.0);
    EXPECT_EQ(spec.min_occurrences, 5);
    EXPECT_EQ(spec.jobs, 3);
    EXPECT_EQ(spec.cell_count(), 2u * 3u * 3u * 2u);

    // serialize -> parse -> serialize is a fixed point.
    const std::string serialized = spec.serialize();
    EXPECT_EQ(SweepSpec::parse(serialized).serialize(), serialized);
}

TEST(SweepSpec, RejectsBadInput) {
    EXPECT_THROW(SweepSpec::parse("nonsense\n"), Error);
    EXPECT_THROW(SweepSpec::parse("policies = warp-drive\n"), Error);
    EXPECT_THROW(SweepSpec::parse("generators = taps:1\n"), Error);
    EXPECT_THROW(GeneratorSpec::parse("pll:"), Error);
    EXPECT_THROW(SweepSpec::parse("jobs = -2\n"), Error);
    EXPECT_THROW(SweepSpec::parse("voltages = 0.7, oops\n"), Error);
    EXPECT_THROW(SweepSpec::parse("voltages = 0.7 0.8\n"), Error);  // missing comma
    EXPECT_THROW(SweepSpec::parse("guard_ps = many\n"), Error);
    EXPECT_THROW(SweepSpec::parse("variant = quantum\n"), Error);
    EXPECT_THROW(SweepSpec::parse("min_occurrences = -3\n"), Error);
}

TEST(SweepSpec, ResolvedFillsDefaults) {
    const SweepSpec resolved = SweepSpec{}.resolved();
    EXPECT_FALSE(resolved.kernels.empty());
    ASSERT_EQ(resolved.policies.size(), 1u);
    EXPECT_EQ(resolved.policies[0], core::PolicyKind::kInstructionLut);
    ASSERT_EQ(resolved.generators.size(), 1u);
    EXPECT_EQ(resolved.generators[0].label(), "ideal");
    ASSERT_EQ(resolved.voltages_v.size(), 1u);
    EXPECT_DOUBLE_EQ(resolved.voltages_v[0], timing::DesignConfig{}.voltage_v);
}

TEST(ArtifactCache, DelayTableMatchesStreamingFlowByteForByte) {
    // The sweep runtime characterizes through the cache, which uses the
    // streaming flow; a directly-run streaming AND a materialized flow must
    // serialize the exact same table, so parallel sweeps built on the
    // streaming path stay byte-identical to any offline reference.
    ArtifactCache cache;
    const timing::DesignConfig design;
    const dta::AnalyzerConfig analyzer_config =
        SweepEngine::analyzer_config_for(SweepSpec{}.resolved());
    const dta::DelayTable cached = cache.delay_table(design, analyzer_config).get();

    const core::CharacterizationFlow flow(design, analyzer_config);
    const auto programs = workloads::assemble_programs(workloads::characterization_suite());
    const auto streaming = flow.run(programs, core::CharacterizationMode::kStreaming);
    const auto materialized = flow.run(programs, core::CharacterizationMode::kMaterialized);
    EXPECT_EQ(cached.serialize(), streaming.table.serialize());
    EXPECT_EQ(cached.serialize(), materialized.table.serialize());
}

TEST(ArtifactCache, ProgramsAreSharedAndCounted) {
    ArtifactCache cache;
    const auto first = cache.program("crc32");
    const auto second = cache.program("crc32");
    EXPECT_EQ(&first.get(), &second.get());  // same shared state
    EXPECT_EQ(cache.cache_hits(), 1u);
    EXPECT_THROW(cache.program("no-such-kernel").get(), Error);
}

TEST(ArtifactCache, RetriesFailedBuildInPlace) {
    FOCS_REQUIRE_FAULT_POINTS();
    // One injected failure on the first build attempt: the elected builder
    // retries in place and succeeds, without eviction or re-election.
    const GlobalFaultGuard guard("build.program:1:max=1");
    ArtifactCache cache;
    EXPECT_NO_THROW(cache.program("crc32").get());
    const ArtifactBuildStats stats = cache.build_stats(ArtifactClass::kProgram);
    EXPECT_EQ(stats.built, 1u);
    EXPECT_EQ(stats.failed, 1u);
    EXPECT_EQ(stats.retried, 1u);
    EXPECT_EQ(stats.evicted, 0u);
    EXPECT_EQ(cache.class_counters(ArtifactClass::kProgram).miss, 1u);
    // The recovered artifact is served like any healthy one.
    EXPECT_NO_THROW(cache.program("crc32").get());
    EXPECT_EQ(cache.build_stats(ArtifactClass::kProgram).built, 1u);
}

TEST(ArtifactCache, EvictsPoisonedEntryAndReelectsBuilderExactlyOnce) {
    FOCS_REQUIRE_FAULT_POINTS();
    // Terminal failure (both in-place attempts fail): the classified error
    // reaches every waiter through the shared future, the entry is evicted,
    // and the *next* requester re-elects a builder — exactly one more
    // election, even with six threads hammering the same key.
    const GlobalFaultGuard guard("build.delay_table:1:max=2");
    ArtifactCache cache;  // max_build_attempts = 2
    const timing::DesignConfig design;
    const dta::AnalyzerConfig analyzer_config =
        SweepEngine::analyzer_config_for(SweepSpec{}.resolved());
    std::atomic<int> failures_seen{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 6; ++t) {
        threads.emplace_back([&] {
            for (int tries = 0; tries < 1000; ++tries) {
                try {
                    cache.delay_table(design, analyzer_config).get();
                    return;
                } catch (const Error& e) {
                    EXPECT_EQ(e.code(), ErrorCode::kArtifactBuild);
                    EXPECT_NE(std::string(e.what()).find("artifact build failed"),
                              std::string::npos);
                    failures_seen.fetch_add(1, std::memory_order_relaxed);
                    std::this_thread::yield();
                }
            }
            ADD_FAILURE() << "delay table was never rebuilt after eviction";
        });
    }
    for (auto& thread : threads) thread.join();
    EXPECT_GE(failures_seen.load(), 1);
    const ArtifactBuildStats stats = cache.build_stats(ArtifactClass::kDelayTable);
    EXPECT_EQ(stats.built, 1u);    // the post-eviction election succeeded
    EXPECT_EQ(stats.failed, 2u);   // attempts 0 and 1 of the first election
    EXPECT_EQ(stats.retried, 1u);  // one bounded in-place retry
    EXPECT_EQ(stats.evicted, 1u);  // exactly one poisoned entry removed
    // Two builder elections in total: the poisoned one and its replacement.
    EXPECT_EQ(cache.class_counters(ArtifactClass::kDelayTable).miss, 2u);
    EXPECT_EQ(cache.characterizations_built(), 1u);
}

TEST(ArtifactCache, CancelledBuildEvictsWithoutRetryAndRebuildsClean) {
    // A fired CancellationToken fails the build with the cancellation code;
    // cancellation is terminal (no in-place retry burned), the entry is
    // evicted, and a later request without the token rebuilds.
    ArtifactCache cache;
    const timing::DesignConfig design;
    const dta::AnalyzerConfig analyzer_config =
        SweepEngine::analyzer_config_for(SweepSpec{}.resolved());
    const CancellationToken expired = CancellationToken::with_deadline_ms(0);
    try {
        cache.delay_table(design, analyzer_config, 1, &expired).get();
        FAIL() << "cancelled build did not throw";
    } catch (const Error& e) {
        EXPECT_EQ(e.code(), ErrorCode::kDeadline);
        EXPECT_NE(std::string(e.what()).find("cancelled"), std::string::npos);
    }
    ArtifactBuildStats stats = cache.build_stats(ArtifactClass::kDelayTable);
    EXPECT_EQ(stats.built, 0u);
    EXPECT_EQ(stats.failed, 1u);
    EXPECT_EQ(stats.retried, 0u);  // cancellation is never retried
    EXPECT_EQ(stats.evicted, 1u);
    EXPECT_NO_THROW(cache.delay_table(design, analyzer_config).get());
    stats = cache.build_stats(ArtifactClass::kDelayTable);
    EXPECT_EQ(stats.built, 1u);
    EXPECT_EQ(cache.characterizations_built(), 1u);
}

TEST(ArtifactCacheLru, EvictsLeastRecentlyUsedFirst) {
    // Three programs built unbounded, then a budget that holds only two:
    // the least recently *used* entry goes, and a touch (cache hit)
    // refreshes recency — so after touching the oldest entry, the middle
    // one is the victim.
    ArtifactCache cache;
    cache.program("crc32").get();
    const std::uint64_t bytes_crc32 = cache.cached_bytes();
    cache.program("fibcall").get();
    cache.program("bitcount").get();
    const std::uint64_t total = cache.cached_bytes();
    EXPECT_GT(total, bytes_crc32);

    cache.program("crc32").get();  // touch: crc32 becomes most recent
    cache.set_byte_budget(total - 1);
    EXPECT_EQ(cache.lru_evictions(), 1u);
    EXPECT_EQ(cache.build_stats(ArtifactClass::kProgram).evicted_lru, 1u);
    EXPECT_LE(cache.cached_bytes(), total - 1);

    // crc32 and bitcount survived (hits); fibcall was the victim and
    // re-elects a builder (a fresh miss).
    const std::uint64_t misses_before = cache.class_counters(ArtifactClass::kProgram).miss;
    cache.program("crc32").get();
    cache.program("bitcount").get();
    EXPECT_EQ(cache.class_counters(ArtifactClass::kProgram).miss, misses_before);
    cache.program("fibcall").get();
    EXPECT_EQ(cache.class_counters(ArtifactClass::kProgram).miss, misses_before + 1);
    EXPECT_EQ(cache.build_stats(ArtifactClass::kProgram).built, 4u);
}

TEST(ArtifactCacheLru, OverBudgetSingleArtifactIsAdmittedThenEvictedByTheNext) {
    // A budget smaller than any single artifact: the freshly built entry is
    // admitted anyway (the build already paid for it) and stays until the
    // next completion pushes it off the back of the LRU list.
    ArtifactCache cache;
    cache.set_byte_budget(1);
    cache.program("crc32").get();
    EXPECT_EQ(cache.lru_evictions(), 0u);
    EXPECT_GT(cache.cached_bytes(), 1u);  // resident although over budget

    cache.program("fibcall").get();
    EXPECT_EQ(cache.lru_evictions(), 1u);  // crc32 made way
    const std::uint64_t misses_before = cache.class_counters(ArtifactClass::kProgram).miss;
    cache.program("fibcall").get();  // newest entry still resident
    EXPECT_EQ(cache.class_counters(ArtifactClass::kProgram).miss, misses_before);
}

TEST(ArtifactCacheLru, ByteAccountingIsExactAcrossEvictRebuildCycles) {
    // estimated_bytes is deterministic, so evict + rebuild must return the
    // accounting to the exact same figure, cycle after cycle.
    ArtifactCache cache;
    cache.program("crc32").get();
    const std::uint64_t bytes_crc32 = cache.cached_bytes();
    cache.program("fibcall").get();
    const std::uint64_t total = cache.cached_bytes();

    EXPECT_GT(bytes_crc32, 0u);
    for (int cycle = 0; cycle < 3; ++cycle) {
        cache.set_byte_budget(total - 1);  // evict exactly one (the LRU front)
        cache.set_byte_budget(0);          // disarm so the rebuild sticks
        cache.program("crc32").get();
        cache.program("fibcall").get();
        EXPECT_EQ(cache.cached_bytes(), total) << "cycle " << cycle;
    }
    EXPECT_EQ(cache.lru_evictions(), 3u);
}

TEST(ArtifactCacheLru, EvictedCounterRoundTripsThroughMetricsSnapshot) {
    ArtifactCache cache;
    cache.program("crc32").get();
    cache.program("fibcall").get();
    cache.set_byte_budget(1);  // evicts all but the newest
    const ArtifactBuildStats stats = cache.build_stats(ArtifactClass::kProgram);
    EXPECT_EQ(stats.evicted_lru, 1u);
    const obs::MetricsSnapshot snapshot = cache.metrics_snapshot();
    EXPECT_EQ(snapshot.counter_value("cache.program.evicted_lru"), stats.evicted_lru);
    EXPECT_EQ(snapshot.counter_value("cache.trace.evicted_lru"), 0u);
}

TEST(ArtifactCacheLru, PreseededTableReplacementKeepsAccountingStable) {
    // put_delay_table twice under the same key must not double-account: the
    // replaced entry is unlinked before the replacement is accounted.
    ArtifactCache cache;
    const timing::DesignConfig design;
    const dta::AnalyzerConfig analyzer_config =
        SweepEngine::analyzer_config_for(SweepSpec{}.resolved());
    cache.put_delay_table(design, analyzer_config, dta::DelayTable(900));
    const std::uint64_t bytes = cache.cached_bytes();
    EXPECT_GT(bytes, 0u);
    cache.put_delay_table(design, analyzer_config, dta::DelayTable(901));
    EXPECT_EQ(cache.cached_bytes(), bytes);
    EXPECT_DOUBLE_EQ(cache.delay_table(design, analyzer_config).get().static_period_ps(), 901);
}

TEST(ArtifactCacheLru, ConcurrentBudgetedLoadServesEveryRequest) {
    // TSan-facing: many threads hammer a budgeted cache across every
    // artifact class while LRU eviction churns underneath. Every .get()
    // must succeed (consumers hold shared_future copies, in-flight entries
    // are pinned), and the accounting must be consistent at quiesce.
    const std::vector<std::string> kernels = {"crc32", "fibcall", "bitcount",
                                              "isqrt", "prime",   "bsearch"};
    // Size the budget off real artifact footprints: roomy enough to hold
    // the largest single artifact (so the quiesced set always fits), tight
    // enough to force steady eviction.
    std::uint64_t largest = 0;
    {
        ArtifactCache sizing;
        for (const auto& kernel : kernels) {
            for (const bool with_trace : {false, true}) {
                const std::uint64_t before = sizing.cached_bytes();
                if (with_trace) {
                    sizing.trace(kernel).get();
                } else {
                    sizing.program(kernel).get();
                }
                const std::uint64_t size = sizing.cached_bytes() - before;
                if (size > largest) largest = size;
            }
        }
    }
    const std::uint64_t budget = largest + largest / 2;
    ArtifactCache cache;
    cache.set_byte_budget(budget);
    std::vector<std::thread> threads;
    for (int t = 0; t < 6; ++t) {
        threads.emplace_back([&, t] {
            for (int round = 0; round < 8; ++round) {
                const auto& kernel = kernels[static_cast<std::size_t>((t + round) %
                                                                     static_cast<int>(
                                                                         kernels.size()))];
                EXPECT_NO_THROW(cache.program(kernel).get());
                EXPECT_NO_THROW(cache.trace(kernel).get());
            }
        });
    }
    for (auto& thread : threads) thread.join();
    EXPECT_LE(cache.cached_bytes(), budget);
    const ArtifactBuildStats programs = cache.build_stats(ArtifactClass::kProgram);
    const ArtifactBuildStats traces = cache.build_stats(ArtifactClass::kTrace);
    // Builds = initial misses + one rebuild per eviction that was
    // re-requested; eviction count can never exceed completed builds.
    EXPECT_GE(programs.built, kernels.size());
    EXPECT_LE(programs.evicted_lru + traces.evicted_lru, programs.built + traces.built);
    EXPECT_GT(cache.lru_evictions(), 0u);
}

TEST(ArtifactCacheLru, BudgetedSweepProducesByteIdenticalResults) {
    // A sweep over a budget-starved shared cache rebuilds artifacts it
    // would otherwise reuse — the canonical result document must not
    // notice.
    const SweepEngine unbounded(2);
    const SweepResult reference = unbounded.run(small_spec());

    auto cache = std::make_shared<ArtifactCache>();
    cache->set_byte_budget(64 * 1024);  // well under one trace's footprint
    const SweepEngine budgeted(2, cache);
    const SweepResult result = budgeted.run(small_spec());
    EXPECT_EQ(to_json(result, /*include_timing=*/false),
              to_json(reference, /*include_timing=*/false));
}

}  // namespace
}  // namespace focs::runtime
