#include "timing/cell_library.hpp"

#include <cmath>

#include "common/error.hpp"

namespace focs::timing {

namespace {

/// Delay-vs-voltage slope (1/V) of the synthetic FDSOI curve around the
/// 0.6-0.8 V region: exp-law calibrated so delay_scale(0.63) = 1.376,
/// placing the paper's iso-throughput point 70 mV below 0.70 V.
constexpr double kDelaySlopePerV = 4.5581299;  // ln(1.376) / 0.07

/// Dynamic energy coefficient (uW/MHz/V^2) of the conventional-variant
/// core. The critical-range-optimized variant multiplies by its
/// power_factor (1.08), landing at the paper's 13.7 uW/MHz at 0.70 V
/// together with leakage at 494 MHz.
constexpr double kDynamicCoeff = 25.735;

/// Leakage of the conventional-variant core at 0.70 V and its voltage slope.
constexpr double kLeakageAt070Uw = 37.0;
constexpr double kLeakageSlopePerV = 3.5;

OperatingPoint characterize(double v) {
    OperatingPoint p;
    p.voltage_v = v;
    p.delay_scale = std::exp(kDelaySlopePerV * (0.70 - v));
    p.dynamic_uw_per_mhz = kDynamicCoeff * v * v;
    p.leakage_uw = kLeakageAt070Uw * std::exp(kLeakageSlopePerV * (v - 0.70));
    return p;
}

}  // namespace

const CellLibrary& CellLibrary::fdsoi28() {
    static const CellLibrary library = [] {
        std::vector<OperatingPoint> points;
        for (int mv = 500; mv <= 900; mv += 50) points.push_back(characterize(mv / 1000.0));
        return CellLibrary(std::move(points));
    }();
    return library;
}

CellLibrary::CellLibrary(std::vector<OperatingPoint> points) : points_(std::move(points)) {
    check(points_.size() >= 2, "cell library needs at least two operating points");
    for (std::size_t i = 1; i < points_.size(); ++i) {
        check(points_[i].voltage_v > points_[i - 1].voltage_v,
              "operating points must be in ascending voltage order");
    }
}

double CellLibrary::interpolate(double v, double OperatingPoint::* field, bool log_domain) const {
    if (v <= points_.front().voltage_v) return points_.front().*field;
    if (v >= points_.back().voltage_v) return points_.back().*field;
    std::size_t hi = 1;
    while (points_[hi].voltage_v < v) ++hi;
    const OperatingPoint& a = points_[hi - 1];
    const OperatingPoint& b = points_[hi];
    const double t = (v - a.voltage_v) / (b.voltage_v - a.voltage_v);
    if (log_domain) return std::exp(std::log(a.*field) * (1 - t) + std::log(b.*field) * t);
    return (a.*field) * (1 - t) + (b.*field) * t;
}

double CellLibrary::delay_scale(double voltage_v) const {
    return interpolate(voltage_v, &OperatingPoint::delay_scale, /*log_domain=*/true);
}

double CellLibrary::dynamic_uw_per_mhz(double voltage_v) const {
    return interpolate(voltage_v, &OperatingPoint::dynamic_uw_per_mhz, /*log_domain=*/false);
}

double CellLibrary::leakage_uw(double voltage_v) const {
    return interpolate(voltage_v, &OperatingPoint::leakage_uw, /*log_domain=*/true);
}

}  // namespace focs::timing
