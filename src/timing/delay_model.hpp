// Dynamic (per-cycle) delay model.
//
// Substitutes the paper's SDF-annotated gate-level simulation: given the
// per-cycle pipeline occupancy (CycleRecord), it produces the actual data
// arrival time required by every pipeline stage in that cycle. Delays are
//   required(stage, t) = anchor - spread * mix(jitter, data_factor)
// where `anchor`/`spread` come from the calibrated per-(stage, family)
// bands, `jitter` is deterministic pseudo-randomness standing in for
// wire/state effects, and `data_factor` models operand-dependent path
// excitation (carry-chain length for the adder, operand widths for the
// multiplier, toggle counts for logic ops, ...). All values scale with the
// operating voltage via the cell library — and *only* via a single
// multiplicative `delay_scale(v)`: the unscaled ("unit") requirement of a
// cycle is a pure function of (variant, seed, cycle record), so it can be
// computed once per trace and retargeted to any voltage by one multiply
// (see timing/trace_delays).
#pragma once

#include <array>
#include <cstdint>

#include "sim/cycle_record.hpp"
#include "timing/cell_library.hpp"
#include "timing/design_config.hpp"
#include "timing/timing_params.hpp"

namespace focs::timing {

/// Actual timing requirements of one cycle.
struct CycleDelays {
    /// Max data-arrival requirement per stage (incl. setup), picoseconds.
    std::array<double, sim::kStageCount> stage_ps{};
    /// Stage owning the overall maximum (paper Fig. 6 attribution).
    sim::Stage limiting_stage = sim::Stage::kEx;
    /// Minimum safe clock period for this cycle = max over stages.
    double required_period_ps = 0;
};

/// Occupancy classification shared by the delay model, the DTA attribution
/// and the DCA policies (this is the paper's "pipeline specification").
/// Returns a class index in [0, kOccupancyClasses).
int occupancy_class(const sim::StageView& view);

/// Class charged for the ADR stage: on redirect cycles the instruction
/// driving the target (jump/branch) is charged; otherwise the instruction
/// being fetched (see DESIGN.md "ADR attribution").
int adr_occupancy_class(const sim::CycleRecord& record);

/// Human-readable class name ("add", "mul", ..., "bubble", "held").
std::string_view occupancy_class_name(int occupancy_class);

class DelayCalculator {
public:
    /// Extra band_lut_ row holding the ADR redirect bands.
    static constexpr int kAdrRedirectRow = sim::kStageCount;

    explicit DelayCalculator(const DesignConfig& config,
                             const CellLibrary& library = CellLibrary::fdsoi28());

    /// Computes the actual per-stage timing requirements for one cycle.
    CycleDelays evaluate(const sim::CycleRecord& record) const;

    /// Voltage-free flavour of evaluate(): the same per-stage requirements
    /// before the operating point's delay_scale multiplier. Because scaling
    /// by a positive constant is monotone under IEEE rounding,
    /// fl(evaluate_unit().required_period_ps * voltage_scale()) is
    /// bit-identical to evaluate().required_period_ps — the property the
    /// voltage-invariant trace-delay artifact is built on.
    CycleDelays evaluate_unit(const sim::CycleRecord& record) const;

    /// Unscaled delay of one band for one (stage, cycle) slot: one
    /// splitmix64 jitter draw mixed with the operand excitation. Exposed for
    /// the fused stage-major unit kernel in timing/trace_delays.
    double unit_band_delay(const DelayBand& band, const sim::StageView& view, sim::Stage stage,
                           std::uint64_t cycle) const;

    /// Band resolved for (row, occupancy class); `row` is a stage index or
    /// kAdrRedirectRow.
    const DelayBand& band(int row, int occupancy_class) const {
        return *band_lut_[static_cast<std::size_t>(row)][static_cast<std::size_t>(occupancy_class)];
    }

    /// The static (STA) clock period of this design at its voltage.
    double static_period_ps() const { return static_period_ps_; }

    /// The static period before voltage scaling (the calibration tables'
    /// 0.70 V reference value).
    double unit_static_period_ps() const { return params_->static_period_ps; }

    const DesignConfig& config() const { return config_; }
    const TimingParams& params() const { return *params_; }
    double voltage_scale() const { return voltage_scale_; }

private:
    double band_delay(const DelayBand& band, const sim::StageView& view, sim::Stage stage,
                      std::uint64_t cycle) const;

    DesignConfig config_;
    const TimingParams* params_;
    double voltage_scale_;
    double static_period_ps_;
    /// Flattened (stage, occupancy class) -> band resolution, built once at
    /// construction so the per-cycle evaluate() loop is a single indexed
    /// load. Row kStageCount holds the ADR redirect bands.
    std::array<std::array<const DelayBand*, kOccupancyClasses>, sim::kStageCount + 1> band_lut_{};
};

/// Operand-driven excitation factor in [0, 1]; 0 excites the family's worst
/// path. Only the EX stage sees real operand values; other stages use a
/// neutral 0.5. Shared by the per-cycle calculator and the stage-major unit
/// trace kernel.
double data_factor(const sim::StageView& view, sim::Stage stage);

}  // namespace focs::timing
