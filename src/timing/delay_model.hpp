// Dynamic (per-cycle) delay model.
//
// Substitutes the paper's SDF-annotated gate-level simulation: given the
// per-cycle pipeline occupancy (CycleRecord), it produces the actual data
// arrival time required by every pipeline stage in that cycle. Delays are
//   required(stage, t) = anchor - spread * mix(jitter, data_factor)
// where `anchor`/`spread` come from the calibrated per-(stage, family)
// bands, `jitter` is deterministic pseudo-randomness standing in for
// wire/state effects, and `data_factor` models operand-dependent path
// excitation (carry-chain length for the adder, operand widths for the
// multiplier, toggle counts for logic ops, ...). All values scale with the
// operating voltage via the cell library.
#pragma once

#include <array>
#include <cstdint>

#include "sim/cycle_record.hpp"
#include "timing/cell_library.hpp"
#include "timing/design_config.hpp"
#include "timing/timing_params.hpp"

namespace focs::timing {

/// Actual timing requirements of one cycle.
struct CycleDelays {
    /// Max data-arrival requirement per stage (incl. setup), picoseconds.
    std::array<double, sim::kStageCount> stage_ps{};
    /// Stage owning the overall maximum (paper Fig. 6 attribution).
    sim::Stage limiting_stage = sim::Stage::kEx;
    /// Minimum safe clock period for this cycle = max over stages.
    double required_period_ps = 0;
};

/// Occupancy classification shared by the delay model, the DTA attribution
/// and the DCA policies (this is the paper's "pipeline specification").
/// Returns a class index in [0, kOccupancyClasses).
int occupancy_class(const sim::StageView& view);

/// Class charged for the ADR stage: on redirect cycles the instruction
/// driving the target (jump/branch) is charged; otherwise the instruction
/// being fetched (see DESIGN.md "ADR attribution").
int adr_occupancy_class(const sim::CycleRecord& record);

/// Human-readable class name ("add", "mul", ..., "bubble", "held").
std::string_view occupancy_class_name(int occupancy_class);

class DelayCalculator {
public:
    explicit DelayCalculator(const DesignConfig& config,
                             const CellLibrary& library = CellLibrary::fdsoi28());

    /// Computes the actual per-stage timing requirements for one cycle.
    CycleDelays evaluate(const sim::CycleRecord& record) const;

    /// The static (STA) clock period of this design at its voltage.
    double static_period_ps() const { return static_period_ps_; }

    const DesignConfig& config() const { return config_; }
    const TimingParams& params() const { return *params_; }
    double voltage_scale() const { return voltage_scale_; }

private:
    double band_delay(const DelayBand& band, const sim::StageView& view, sim::Stage stage,
                      std::uint64_t cycle) const;

    DesignConfig config_;
    const TimingParams* params_;
    double voltage_scale_;
    double static_period_ps_;
    /// Flattened (stage, occupancy class) -> band resolution, built once at
    /// construction so the per-cycle evaluate() loop is a single indexed
    /// load. Row kStageCount holds the ADR redirect bands.
    std::array<std::array<const DelayBand*, kOccupancyClasses>, sim::kStageCount + 1> band_lut_{};
};

}  // namespace focs::timing
