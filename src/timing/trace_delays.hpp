// Required-period ground truth of a recorded trace — voltage-invariant.
//
// The DCA engine's safety checker and the genie oracle both consume the
// per-cycle minimum safe clock period. Live evaluation derives it inside
// every run (DelayCalculator::evaluate per cycle per cell). For replay the
// requirement factors: the delay model's voltage dependence is a single
// multiplicative delay_scale(v) (see DelayCalculator::unit_band_delay), so
// the *unit* (unscaled) requirement is a pure function of (trace, design
// variant, seed) alone. It is therefore computed exactly once per trace by
// a fused stage-major pass — one splitmix64 per (stage, cycle), in the
// style of the batched characterization kernel — and every operating point
// on the voltage axis is served by a ScaledTraceDelays *view*: the shared
// unit array plus one scalar. A V-point sweep grid pays ~one delay-model
// pass instead of V, and keeps one resident double array per trace instead
// of V copies.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "sim/cycle_record.hpp"
#include "timing/delay_model.hpp"

namespace focs::timing {

/// Flat per-cycle timing requirements of one (trace, operating point) pair,
/// fully materialized. Kept as the reference artifact (and for consumers
/// that want a self-contained array); the sweep runtime shares
/// UnitTraceDelays + ScaledTraceDelays views instead.
struct TraceDelays {
    /// STA period of the operating point (the static-policy request and the
    /// uncharacterized-LUT fallback).
    double static_period_ps = 0;
    /// required_period_ps[c]: minimum safe clock period of trace cycle c —
    /// bit-identical to DelayCalculator::evaluate(records[c]) on the same
    /// design, so replayed violation counts match live runs exactly.
    std::vector<double> required_period_ps;

    std::uint64_t cycles() const { return static_cast<std::uint64_t>(required_period_ps.size()); }
};

/// Voltage-free per-cycle requirements of one trace: one entry per cycle in
/// the calibration tables' 0.70 V unit domain. Computed once per (trace,
/// design variant, seed); immutable afterwards and shared read-only — via
/// shared_ptr — by every ScaledTraceDelays view on the voltage axis.
struct UnitTraceDelays {
    /// Static period before voltage scaling
    /// (DelayCalculator::unit_static_period_ps of the same variant).
    double unit_static_period_ps = 0;
    /// unit_required_period_ps[c] * delay_scale(v) is bit-identical to
    /// DelayCalculator::evaluate(records[c]).required_period_ps at voltage
    /// v: positive-constant multiplication is monotone under IEEE rounding,
    /// so the max over stages commutes with the scale.
    std::vector<double> unit_required_period_ps;
    /// Stage owning each cycle's maximum (paper Fig. 6 attribution) — also
    /// voltage-invariant, recorded for figure-level replay consumers.
    std::vector<sim::Stage> limiting_stage;

    std::uint64_t cycles() const {
        return static_cast<std::uint64_t>(unit_required_period_ps.size());
    }

    /// Resident size for cache byte budgeting: one double plus one stage
    /// tag per trace cycle.
    std::uint64_t estimated_bytes() const {
        return sizeof *this +
               static_cast<std::uint64_t>(unit_required_period_ps.capacity()) * sizeof(double) +
               static_cast<std::uint64_t>(limiting_stage.capacity()) * sizeof(sim::Stage);
    }
};

/// Fixed-point decomposition of one operating point's delay scale, in the
/// style of the Linux cyc2ns mult+shift (`cyc2ns_scale`): the positive
/// normal double `scale` is split exactly into a 53-bit integer significand
/// and a power-of-two exponent, scale == mult * 2^exp2 with mult in
/// [2^52, 2^53). Unlike cyc2ns the decomposition is lossless (a double has
/// exactly 53 significand bits), which is what lets the integer hot path
/// reproduce the double path bit for bit instead of merely approximating
/// it. `valid` is false for zero/subnormal/inf/NaN scales — consumers then
/// stay on the double path.
struct PeriodScale {
    std::uint64_t mult = 0;
    int exp2 = 0;
    bool valid = false;

    static PeriodScale of(double scale);
};

/// One operating point's view of a shared UnitTraceDelays: the unit array
/// plus the point's delay scale. Copyable (a shared_ptr and two doubles);
/// safe to hand to replay workers by value.
struct ScaledTraceDelays {
    std::shared_ptr<const UnitTraceDelays> unit;
    /// Cell-library delay_scale(v) of the operating point.
    double delay_scale = 1.0;
    /// STA period at the operating point, bit-identical to
    /// DelayCalculator::static_period_ps() of the same design.
    double static_period_ps = 0;
    /// Fixed-point mult+shift form of delay_scale, precomputed once per
    /// operating point by scale_trace_delays (the replay engine's integer
    /// hot path consumes it through FixedPointPeriod::resolve).
    PeriodScale period_scale;

    /// Minimum safe clock period of trace cycle c at this operating point;
    /// bit-identical to compute_trace_delays(...).required_period_ps[c].
    double required_period_ps(std::uint64_t c) const {
        return unit->unit_required_period_ps[c] * delay_scale;
    }

    std::uint64_t cycles() const { return unit != nullptr ? unit->cycles() : 0; }

    /// Materializes the per-voltage flat array (reference/offline form).
    TraceDelays materialize() const;
};

/// Integer mult+shift evaluator of one ScaledTraceDelays view, bit-exact
/// against the double path: operator()(c) returns the very same double as
/// required_period_ps(c) — fl(unit[c] * delay_scale) — for every cycle.
///
/// Why this is exact rather than approximate: resolve() quantizes the unit
/// array to unsigned 64-bit fixed point at F fractional bits, choosing F
/// from the array's maximum so the largest value uses 63 bits. Physical
/// unit periods span only a few binades, so every element is *exactly*
/// representable at that F (checked element-wise via an ldexp round trip;
/// any miss invalidates the whole resolve). The delay scale is split
/// exactly by PeriodScale into mult * 2^exp2. The hot path then computes
/// fx[c] * mult in 128-bit integer arithmetic — the mathematically exact
/// product — rounds it to 53 significand bits with IEEE round-to-nearest-
/// even, and applies the power-of-two exponent with one exact multiply
/// from a precomputed table. That is, by construction, precisely what the
/// hardware double multiply computes; the identity is independent of libm,
/// compiler, or host (and is additionally pinned empirically by
/// tests/test_replay.cpp over every benchmark kernel at a dense voltage
/// grid).
///
/// resolve() returns nullopt — and callers keep the double path — when the
/// platform lacks a 128-bit integer type, the scale is not a positive
/// normal double, the unit array does not quantize exactly (binade spread
/// too wide), or the exponent range would leave normal-double territory.
class FixedPointPeriod {
public:
    static std::optional<FixedPointPeriod> resolve(const ScaledTraceDelays& delays);

    /// Bit-identical to ScaledTraceDelays::required_period_ps(c).
    double operator()(std::uint64_t c) const {
#if defined(__SIZEOF_INT128__)
        const unsigned __int128 product =
            static_cast<unsigned __int128>(fx_[c]) * mult_;
        if (product == 0) return 0.0;
        const auto hi = static_cast<std::uint64_t>(product >> 64);
        const auto lo = static_cast<std::uint64_t>(product);
        const int bits = hi != 0 ? 64 + std::bit_width(hi) : std::bit_width(lo);
        const int drop = bits > 53 ? bits - 53 : 0;
        auto keep = static_cast<std::uint64_t>(product >> drop);
        if (drop > 0) {
            // Round to nearest, ties to even — the carry can push keep to
            // 2^53, which is still exactly representable.
            const unsigned __int128 remainder =
                product - (static_cast<unsigned __int128>(keep) << drop);
            const unsigned __int128 half = static_cast<unsigned __int128>(1) << (drop - 1);
            if (remainder > half || (remainder == half && (keep & 1) != 0)) ++keep;
        }
        return static_cast<double>(keep) * pow2_[static_cast<std::size_t>(drop)];
#else
        // Unreachable: resolve() never yields an instance without __int128.
        (void)c;
        return 0.0;
#endif
    }

    std::uint64_t cycles() const { return static_cast<std::uint64_t>(fx_.size()); }
    int frac_bits() const { return frac_bits_; }

private:
    /// unit_required_period_ps quantized at frac_bits_ (exact by checked
    /// construction).
    std::vector<std::uint64_t> fx_;
    /// 53-bit significand of the delay scale (PeriodScale::mult).
    std::uint64_t mult_ = 0;
    int frac_bits_ = 0;
    /// pow2_[drop] = 2^(exp2 - frac_bits + drop): the exact power-of-two
    /// step for every possible rounding shift (the 128-bit product of a
    /// 63-bit and a 53-bit integer never exceeds 116 bits, so drop <= 63).
    std::array<double, 64> pow2_{};
};

/// Evaluates the delay model over every recorded cycle once, at the
/// calculator's operating point (reference path; one pass per voltage).
TraceDelays compute_trace_delays(const DelayCalculator& calculator,
                                 const std::vector<sim::CycleRecord>& records);

/// One fused stage-major pass over the trace: for each stage row the band
/// is resolved and one splitmix64 jitter sample drawn per cycle, maxing the
/// unit delays in place. Voltage-free — `calculator` contributes only its
/// variant's bands and the design seed. Call once per (trace, variant).
UnitTraceDelays compute_unit_trace_delays(const DelayCalculator& calculator,
                                          const std::vector<sim::CycleRecord>& records);

/// Derives one operating point's view from a shared unit array; the scale
/// and static period are taken from `calculator` so they are bit-identical
/// to the live engine's values at that point.
ScaledTraceDelays scale_trace_delays(std::shared_ptr<const UnitTraceDelays> unit,
                                     const DelayCalculator& calculator);

}  // namespace focs::timing
