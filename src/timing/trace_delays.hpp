// Required-period ground truth of a recorded trace at one operating point.
//
// The DCA engine's safety checker and the genie oracle both consume the
// per-cycle minimum safe clock period. Live evaluation derives it inside
// every run (DelayCalculator::evaluate per cycle per cell); for replay the
// requirement is a pure function of (trace, voltage), so it is computed
// exactly once per (trace, operating point) as a flat array and shared
// read-only by every policy/generator cell replayed over that trace.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/cycle_record.hpp"
#include "timing/delay_model.hpp"

namespace focs::timing {

/// Flat per-cycle timing requirements of one (trace, operating point) pair.
/// Immutable after computation; safe to share across replay workers.
struct TraceDelays {
    /// STA period of the operating point (the static-policy request and the
    /// uncharacterized-LUT fallback).
    double static_period_ps = 0;
    /// required_period_ps[c]: minimum safe clock period of trace cycle c —
    /// bit-identical to DelayCalculator::evaluate(records[c]) on the same
    /// design, so replayed violation counts match live runs exactly.
    std::vector<double> required_period_ps;

    std::uint64_t cycles() const { return static_cast<std::uint64_t>(required_period_ps.size()); }
};

/// Evaluates the delay model over every recorded cycle once.
TraceDelays compute_trace_delays(const DelayCalculator& calculator,
                                 const std::vector<sim::CycleRecord>& records);

}  // namespace focs::timing
