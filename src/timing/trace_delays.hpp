// Required-period ground truth of a recorded trace — voltage-invariant.
//
// The DCA engine's safety checker and the genie oracle both consume the
// per-cycle minimum safe clock period. Live evaluation derives it inside
// every run (DelayCalculator::evaluate per cycle per cell). For replay the
// requirement factors: the delay model's voltage dependence is a single
// multiplicative delay_scale(v) (see DelayCalculator::unit_band_delay), so
// the *unit* (unscaled) requirement is a pure function of (trace, design
// variant, seed) alone. It is therefore computed exactly once per trace by
// a fused stage-major pass — one splitmix64 per (stage, cycle), in the
// style of the batched characterization kernel — and every operating point
// on the voltage axis is served by a ScaledTraceDelays *view*: the shared
// unit array plus one scalar. A V-point sweep grid pays ~one delay-model
// pass instead of V, and keeps one resident double array per trace instead
// of V copies.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/cycle_record.hpp"
#include "timing/delay_model.hpp"

namespace focs::timing {

/// Flat per-cycle timing requirements of one (trace, operating point) pair,
/// fully materialized. Kept as the reference artifact (and for consumers
/// that want a self-contained array); the sweep runtime shares
/// UnitTraceDelays + ScaledTraceDelays views instead.
struct TraceDelays {
    /// STA period of the operating point (the static-policy request and the
    /// uncharacterized-LUT fallback).
    double static_period_ps = 0;
    /// required_period_ps[c]: minimum safe clock period of trace cycle c —
    /// bit-identical to DelayCalculator::evaluate(records[c]) on the same
    /// design, so replayed violation counts match live runs exactly.
    std::vector<double> required_period_ps;

    std::uint64_t cycles() const { return static_cast<std::uint64_t>(required_period_ps.size()); }
};

/// Voltage-free per-cycle requirements of one trace: one entry per cycle in
/// the calibration tables' 0.70 V unit domain. Computed once per (trace,
/// design variant, seed); immutable afterwards and shared read-only — via
/// shared_ptr — by every ScaledTraceDelays view on the voltage axis.
struct UnitTraceDelays {
    /// Static period before voltage scaling
    /// (DelayCalculator::unit_static_period_ps of the same variant).
    double unit_static_period_ps = 0;
    /// unit_required_period_ps[c] * delay_scale(v) is bit-identical to
    /// DelayCalculator::evaluate(records[c]).required_period_ps at voltage
    /// v: positive-constant multiplication is monotone under IEEE rounding,
    /// so the max over stages commutes with the scale.
    std::vector<double> unit_required_period_ps;
    /// Stage owning each cycle's maximum (paper Fig. 6 attribution) — also
    /// voltage-invariant, recorded for figure-level replay consumers.
    std::vector<sim::Stage> limiting_stage;

    std::uint64_t cycles() const {
        return static_cast<std::uint64_t>(unit_required_period_ps.size());
    }

    /// Resident size for cache byte budgeting: one double plus one stage
    /// tag per trace cycle.
    std::uint64_t estimated_bytes() const {
        return sizeof *this +
               static_cast<std::uint64_t>(unit_required_period_ps.capacity()) * sizeof(double) +
               static_cast<std::uint64_t>(limiting_stage.capacity()) * sizeof(sim::Stage);
    }
};

/// One operating point's view of a shared UnitTraceDelays: the unit array
/// plus the point's delay scale. Copyable (a shared_ptr and two doubles);
/// safe to hand to replay workers by value.
struct ScaledTraceDelays {
    std::shared_ptr<const UnitTraceDelays> unit;
    /// Cell-library delay_scale(v) of the operating point.
    double delay_scale = 1.0;
    /// STA period at the operating point, bit-identical to
    /// DelayCalculator::static_period_ps() of the same design.
    double static_period_ps = 0;

    /// Minimum safe clock period of trace cycle c at this operating point;
    /// bit-identical to compute_trace_delays(...).required_period_ps[c].
    double required_period_ps(std::uint64_t c) const {
        return unit->unit_required_period_ps[c] * delay_scale;
    }

    std::uint64_t cycles() const { return unit != nullptr ? unit->cycles() : 0; }

    /// Materializes the per-voltage flat array (reference/offline form).
    TraceDelays materialize() const;
};

/// Evaluates the delay model over every recorded cycle once, at the
/// calculator's operating point (reference path; one pass per voltage).
TraceDelays compute_trace_delays(const DelayCalculator& calculator,
                                 const std::vector<sim::CycleRecord>& records);

/// One fused stage-major pass over the trace: for each stage row the band
/// is resolved and one splitmix64 jitter sample drawn per cycle, maxing the
/// unit delays in place. Voltage-free — `calculator` contributes only its
/// variant's bands and the design seed. Call once per (trace, variant).
UnitTraceDelays compute_unit_trace_delays(const DelayCalculator& calculator,
                                          const std::vector<sim::CycleRecord>& records);

/// Derives one operating point's view from a shared unit array; the scale
/// and static period are taken from `calculator` so they are bit-identical
/// to the live engine's values at that point.
ScaledTraceDelays scale_trace_delays(std::shared_ptr<const UnitTraceDelays> unit,
                                     const DelayCalculator& calculator);

}  // namespace focs::timing
