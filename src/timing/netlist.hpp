// Synthetic post-layout netlist: endpoints and timing paths.
//
// Substitutes the paper's placed-and-routed mor1kx netlist + SDF. The
// generator materializes, per pipeline stage and per instruction family, a
// group of combinational paths ending in flip-flops or SRAM macro pins,
// with static (STA) delays drawn below the calibrated per-group ceilings.
// This provides:
//   - static timing analysis (T_static, near-critical path counts, the
//     Fig. 3 timing-profile histograms),
//   - the endpoint population used by the gate-level-style event log that
//     feeds dynamic timing analysis (including per-endpoint setup times and
//     clock skew, which the paper's DTA explicitly accounts for).
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "common/histogram.hpp"
#include "sim/cycle_record.hpp"
#include "timing/design_config.hpp"
#include "timing/timing_params.hpp"

namespace focs::timing {

/// A sequential element (flip-flop or SRAM macro pin) capturing data.
struct Endpoint {
    int id = 0;
    std::string name;            ///< e.g. "ex/alu_result_reg[7]" or "dmem/macro_addr[3]"
    sim::Stage stage = sim::Stage::kAdr;
    double setup_ps = 0;
    double skew_ps = 0;          ///< clock arrival offset at this endpoint
    bool is_sram_macro = false;
};

/// One combinational path, attributed to exactly one stage by its endpoint.
struct TimingPath {
    int id = 0;
    int endpoint_id = 0;
    sim::Stage stage = sim::Stage::kAdr;
    int occupancy_class = 0;     ///< which instruction family excites it
    bool redirect_path = false;  ///< ADR path excited by target application
    double sta_delay_ps = 0;     ///< STA arrival incl. setup, at config voltage
};

/// Structure-of-arrays view over the endpoint population, ordered
/// stage-major (every stage's endpoints occupy one contiguous slice). This
/// is the layout the per-cycle characterization hot paths iterate: the
/// timing constants of a whole stage load as contiguous doubles instead of
/// pointer-chasing Endpoint structs, and the per-endpoint jitter hash
/// constant is precomputed once instead of per endpoint per cycle.
struct EndpointSoA {
    std::vector<double> skew_ps;
    std::vector<double> setup_ps;
    /// Per-endpoint constant term of the cycle-jitter hash (id * 7919).
    std::vector<std::uint64_t> jitter_key;
    /// Original endpoint id of each slot (event-log emission).
    std::vector<std::int32_t> id;
    /// Slice of stage `s` is [stage_begin[s], stage_begin[s + 1]).
    std::array<std::size_t, sim::kStageCount + 1> stage_begin{};

    std::size_t size() const { return skew_ps.size(); }
    std::size_t stage_size(int stage) const {
        return stage_begin[static_cast<std::size_t>(stage) + 1] -
               stage_begin[static_cast<std::size_t>(stage)];
    }
};

class SyntheticNetlist {
public:
    /// Generates the netlist for one design variant/voltage.
    static SyntheticNetlist generate(const DesignConfig& config);

    const DesignConfig& config() const { return config_; }
    const std::vector<Endpoint>& endpoints() const { return endpoints_; }
    const std::vector<TimingPath>& paths() const { return paths_; }

    /// Endpoint by id. Ids handed out by this netlist are dense [0, n), so
    /// the per-event hot paths index directly; the bounds assert documents
    /// the contract without a release-mode branch per event.
    const Endpoint& endpoint(int id) const {
        assert(id >= 0 && static_cast<std::size_t>(id) < endpoints_.size());
        return endpoints_[static_cast<std::size_t>(id)];
    }

    /// Endpoints belonging to `stage`. Built once during generation; the
    /// per-flow consumers (gate-sim construction, path generation) used to
    /// re-scan the whole endpoint list on every call.
    const std::vector<int>& endpoints_of_stage(sim::Stage stage) const {
        return stage_endpoints_[static_cast<std::size_t>(stage)];
    }

    /// Stage-major SoA view of the endpoints (batched characterization).
    const EndpointSoA& endpoint_soa() const { return soa_; }

    /// Static timing analysis: the minimum safe clock period (max STA
    /// arrival over all paths). Matches timing_params().static_period_ps
    /// scaled to the configured voltage.
    double static_period_ps() const;

    /// Number of paths within `range_ps` of the critical path (the
    /// "timing wall" metric of paper Fig. 3).
    int near_critical_count(double range_ps) const;

    /// Histogram of STA path delays (paper Fig. 3).
    Histogram path_delay_histogram(int bins = 40) const;

private:
    void build_endpoint_caches();

    DesignConfig config_;
    std::vector<Endpoint> endpoints_;
    std::vector<TimingPath> paths_;
    std::array<std::vector<int>, sim::kStageCount> stage_endpoints_;
    EndpointSoA soa_;
};

}  // namespace focs::timing
