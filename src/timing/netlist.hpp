// Synthetic post-layout netlist: endpoints and timing paths.
//
// Substitutes the paper's placed-and-routed mor1kx netlist + SDF. The
// generator materializes, per pipeline stage and per instruction family, a
// group of combinational paths ending in flip-flops or SRAM macro pins,
// with static (STA) delays drawn below the calibrated per-group ceilings.
// This provides:
//   - static timing analysis (T_static, near-critical path counts, the
//     Fig. 3 timing-profile histograms),
//   - the endpoint population used by the gate-level-style event log that
//     feeds dynamic timing analysis (including per-endpoint setup times and
//     clock skew, which the paper's DTA explicitly accounts for).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/histogram.hpp"
#include "sim/cycle_record.hpp"
#include "timing/design_config.hpp"
#include "timing/timing_params.hpp"

namespace focs::timing {

/// A sequential element (flip-flop or SRAM macro pin) capturing data.
struct Endpoint {
    int id = 0;
    std::string name;            ///< e.g. "ex/alu_result_reg[7]" or "dmem/macro_addr[3]"
    sim::Stage stage = sim::Stage::kAdr;
    double setup_ps = 0;
    double skew_ps = 0;          ///< clock arrival offset at this endpoint
    bool is_sram_macro = false;
};

/// One combinational path, attributed to exactly one stage by its endpoint.
struct TimingPath {
    int id = 0;
    int endpoint_id = 0;
    sim::Stage stage = sim::Stage::kAdr;
    int occupancy_class = 0;     ///< which instruction family excites it
    bool redirect_path = false;  ///< ADR path excited by target application
    double sta_delay_ps = 0;     ///< STA arrival incl. setup, at config voltage
};

class SyntheticNetlist {
public:
    /// Generates the netlist for one design variant/voltage.
    static SyntheticNetlist generate(const DesignConfig& config);

    const DesignConfig& config() const { return config_; }
    const std::vector<Endpoint>& endpoints() const { return endpoints_; }
    const std::vector<TimingPath>& paths() const { return paths_; }

    const Endpoint& endpoint(int id) const { return endpoints_.at(static_cast<std::size_t>(id)); }

    /// Endpoints belonging to `stage`.
    std::vector<int> endpoints_of_stage(sim::Stage stage) const;

    /// Static timing analysis: the minimum safe clock period (max STA
    /// arrival over all paths). Matches timing_params().static_period_ps
    /// scaled to the configured voltage.
    double static_period_ps() const;

    /// Number of paths within `range_ps` of the critical path (the
    /// "timing wall" metric of paper Fig. 3).
    int near_critical_count(double range_ps) const;

    /// Histogram of STA path delays (paper Fig. 3).
    Histogram path_delay_histogram(int bins = 40) const;

private:
    DesignConfig config_;
    std::vector<Endpoint> endpoints_;
    std::vector<TimingPath> paths_;
};

}  // namespace focs::timing
