// Configuration of the synthetic post-layout design.
#pragma once

#include <cstdint>

namespace focs::timing {

/// Implementation strategy of the synthetic netlist (paper Sec. II-B.1 /
/// Fig. 3): a conventional flow produces a "timing wall" (many near-critical
/// paths); the proposed flow applies critical-range optimization and path
/// over-constraining to keep sub-critical paths short, at a small area/power
/// overhead and a 9% longer static period.
enum class DesignVariant : std::uint8_t {
    kConventional,            ///< standard synthesis, timing wall
    kCriticalRangeOptimized,  ///< paper's proposed implementation style
};

struct DesignConfig {
    DesignVariant variant = DesignVariant::kCriticalRangeOptimized;
    double voltage_v = 0.70;     ///< supply voltage of the operating point
    std::uint64_t seed = 0xf0c5; ///< seed for synthetic path/endpoint jitter
};

}  // namespace focs::timing
