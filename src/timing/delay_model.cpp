#include "timing/delay_model.hpp"

#include <bit>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "isa/isa_info.hpp"

namespace focs::timing {

namespace {

using isa::Opcode;
using isa::TimingFamily;
using sim::Stage;
using sim::StageView;

/// Length of the longest carry-propagation run for a + b (the dynamic
/// depth actually exercised in a ripple/carry-select adder).
int carry_chain_length(std::uint32_t a, std::uint32_t b) {
    const std::uint32_t sum = a + b;
    // Carry into bit i+1 was generated or propagated: standard identity.
    std::uint32_t carries = (a & b) | ((a | b) & ~sum);
    int longest = 0;
    while (carries != 0) {
        carries &= carries << 1;
        ++longest;
    }
    return longest;
}

/// Effective operand width (position of the highest set bit).
int bit_width(std::uint32_t v) { return 32 - std::countl_zero(v); }

}  // namespace

double data_factor(const StageView& view, Stage stage) {
    if (stage != Stage::kEx || !view.valid) return 0.5;
    const std::uint32_t a = view.operand_a;
    const std::uint32_t b = view.operand_b;
    switch (isa::timing_family(view.inst.opcode)) {
        case TimingFamily::kAdd:
        case TimingFamily::kCompare:
        case TimingFamily::kDiv:
            return 1.0 - carry_chain_length(a, b) / 32.0;
        case TimingFamily::kMul:
            return 1.0 - (bit_width(a) + bit_width(b)) / 64.0;
        case TimingFamily::kLogicAnd:
        case TimingFamily::kLogicOr:
        case TimingFamily::kLogicXor:
            return 1.0 - std::popcount(a ^ b) / 32.0;
        case TimingFamily::kShift:
            return 1.0 - (b & 31u) / 31.0;
        case TimingFamily::kLoad:
        case TimingFamily::kStore:
            return 1.0 - std::popcount((a + static_cast<std::uint32_t>(view.inst.imm)) & 0xffffu) / 16.0;
        case TimingFamily::kBranch:
            return 0.35;  // flag-path excitation varies little with data
        case TimingFamily::kJump:
        case TimingFamily::kMovhi:
        case TimingFamily::kNop:
            return 0.5;
        case TimingFamily::kCount: break;
    }
    return 0.5;
}

int occupancy_class(const StageView& view) {
    if (!view.valid) return kBubbleClass;
    if (view.held) {
        // A held divider keeps its datapath iterating; everything else that
        // is held shows almost no switching activity.
        const TimingFamily family = isa::timing_family(view.inst.opcode);
        if (family == TimingFamily::kDiv) return static_cast<int>(TimingFamily::kDiv);
        return kHeldClass;
    }
    return static_cast<int>(isa::timing_family(view.inst.opcode));
}

int adr_occupancy_class(const sim::CycleRecord& record) {
    if (record.fetch_redirect && record.redirect_source != Opcode::kInvalid) {
        return static_cast<int>(isa::timing_family(record.redirect_source));
    }
    return occupancy_class(record.stage(Stage::kAdr));
}

std::string_view occupancy_class_name(int occupancy_class_index) {
    if (occupancy_class_index == kBubbleClass) return "bubble";
    if (occupancy_class_index == kHeldClass) return "held";
    return isa::timing_family_name(static_cast<isa::TimingFamily>(occupancy_class_index));
}

DelayCalculator::DelayCalculator(const DesignConfig& config, const CellLibrary& library)
    : config_(config), params_(&timing_params(config.variant)) {
    voltage_scale_ = library.delay_scale(config.voltage_v);
    static_period_ps_ = params_->static_period_ps * voltage_scale_;
    for (int s = 0; s < sim::kStageCount; ++s) {
        for (int c = 0; c < kOccupancyClasses; ++c) {
            band_lut_[static_cast<std::size_t>(s)][static_cast<std::size_t>(c)] =
                &params_->bands[static_cast<std::size_t>(s)][static_cast<std::size_t>(c)];
        }
    }
    for (int c = 0; c < kOccupancyClasses; ++c) {
        band_lut_[sim::kStageCount][static_cast<std::size_t>(c)] =
            &params_->adr_redirect[static_cast<std::size_t>(c)];
    }
}

double DelayCalculator::unit_band_delay(const DelayBand& band, const StageView& view, Stage stage,
                                        std::uint64_t cycle) const {
    // Deterministic jitter: a function of (seed, cycle, stage, pc) so a
    // rerun of the same program reproduces the exact same "measurement".
    const std::uint64_t key =
        splitmix64(config_.seed ^ (cycle * 0x9e37'79b9'7f4a'7c15ULL) ^
                   (static_cast<std::uint64_t>(stage) << 56) ^
                   (static_cast<std::uint64_t>(view.pc) << 20) ^ view.operand_a);
    // Squared jitter biases samples toward the band's worst case: within one
    // path group the near-critical path variants dominate dynamic excitation
    // (which is what makes per-instruction prediction attractive at all).
    const double uniform = hash_unit_double(key);
    const double jitter = uniform * uniform;
    const double mix = (1.0 - kDataMixWeight) * jitter + kDataMixWeight * data_factor(view, stage);
    return band.anchor_ps - band.spread_ps * mix;
}

double DelayCalculator::band_delay(const DelayBand& band, const StageView& view, Stage stage,
                                   std::uint64_t cycle) const {
    return unit_band_delay(band, view, stage, cycle) * voltage_scale_;
}

namespace {

/// Shared cycle loop of the two evaluators. `delay_of(band, view, stage)`
/// supplies the per-stage delay in the caller's domain (scaled or unit);
/// the per-stage max, tie attribution (earliest stage wins) and guard
/// epsilon therefore apply in that same domain. The 1e-9 ps slack windows
/// of the two domains differ by < 1e-9·|1 − 1/scale| ps — far below any
/// modeled margin; the guard only trips on calibration bugs.
template <typename DelayOf>
CycleDelays evaluate_cycle(const sim::CycleRecord& record,
                           const DelayCalculator& calculator, double static_limit_ps,
                           DelayOf&& delay_of) {
    CycleDelays out;
    double worst = 0;
    // Hoisted once per cycle instead of per stage; when it holds, the ADR
    // stage resolves to the redirect band row of the cache.
    const bool adr_redirect =
        record.fetch_redirect && record.redirect_source != Opcode::kInvalid;
    for (int s = 0; s < sim::kStageCount; ++s) {
        const auto stage = static_cast<Stage>(s);
        const StageView& view = record.stages[static_cast<std::size_t>(s)];
        const DelayBand* band;
        if (s == static_cast<int>(Stage::kAdr) && adr_redirect) {
            band = &calculator.band(DelayCalculator::kAdrRedirectRow,
                                    static_cast<int>(isa::timing_family(record.redirect_source)));
        } else {
            band = &calculator.band(s, occupancy_class(view));
        }
        const double delay = delay_of(*band, view, stage);
        out.stage_ps[static_cast<std::size_t>(s)] = delay;
        if (delay > worst) {
            worst = delay;
            out.limiting_stage = stage;
        }
    }
    out.required_period_ps = worst;
    // Not check(): that would build its message string per cycle, and this
    // runs once per simulated cycle in every characterization flow.
    if (worst > static_limit_ps + 1e-9) [[unlikely]] {
        throw Error("dynamic delay exceeded the static period");
    }
    return out;
}

}  // namespace

CycleDelays DelayCalculator::evaluate(const sim::CycleRecord& record) const {
    return evaluate_cycle(record, *this, static_period_ps_,
                          [&](const DelayBand& band, const StageView& view, Stage stage) {
                              return band_delay(band, view, stage, record.cycle);
                          });
}

CycleDelays DelayCalculator::evaluate_unit(const sim::CycleRecord& record) const {
    return evaluate_cycle(record, *this, params_->static_period_ps,
                          [&](const DelayBand& band, const StageView& view, Stage stage) {
                              return unit_band_delay(band, view, stage, record.cycle);
                          });
}

}  // namespace focs::timing
