// 28 nm FDSOI cell-library characterization across operating points.
//
// The paper evaluates voltage-frequency scaling "based on fully
// characterized cell libraries for different operating points" (0.6 V,
// 0.7 V, ...). This class provides that characterization as a table of
// operating points with interpolation:
//   - delay_scale(V): path-delay multiplier relative to 0.70 V. Calibrated
//     so that the paper's iso-throughput operating point lands 70 mV below
//     nominal for the measured 1.376x speedup (Sec. IV-B).
//   - dynamic power ~ C_eff * V^2 (13.7 uW/MHz at 0.70 V / 494 MHz for the
//     critical-range-optimized core, including leakage).
#pragma once

#include <vector>

namespace focs::timing {

/// The calibration reference voltage: delay_scale(kNominalVoltageV) is
/// exactly 1.0 (0.70 V is a characterized grid node, so the log-linear
/// interpolation evaluates to exp(0) with no rounding). Nominal-once
/// characterization runs at this point, making the nominal DelayTable
/// bit-identical to the unit (voltage-free) delay domain.
inline constexpr double kNominalVoltageV = 0.70;

struct OperatingPoint {
    double voltage_v = 0;
    double delay_scale = 1.0;       ///< relative to 0.70 V
    double dynamic_uw_per_mhz = 0;  ///< core dynamic energy/cycle, uW per MHz
    double leakage_uw = 0;          ///< static power of the core
};

class CellLibrary {
public:
    /// The default 28 nm FDSOI characterization: points every 50 mV in
    /// [0.50 V, 0.90 V].
    static const CellLibrary& fdsoi28();

    /// Builds a library from explicit operating points (ascending voltage).
    explicit CellLibrary(std::vector<OperatingPoint> points);

    const std::vector<OperatingPoint>& points() const { return points_; }
    double min_voltage() const { return points_.front().voltage_v; }
    double max_voltage() const { return points_.back().voltage_v; }

    /// Path-delay multiplier at `voltage_v` (log-linear interpolation
    /// between characterized points; clamped at the table edges).
    double delay_scale(double voltage_v) const;

    /// Core dynamic power per MHz at `voltage_v` (quadratic interpolation
    /// consistent with C*V^2 between points).
    double dynamic_uw_per_mhz(double voltage_v) const;

    /// Core leakage power at `voltage_v`.
    double leakage_uw(double voltage_v) const;

private:
    double interpolate(double voltage_v, double OperatingPoint::* field, bool log_domain) const;

    std::vector<OperatingPoint> points_;
};

}  // namespace focs::timing
