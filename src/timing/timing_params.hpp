// Calibration tables of the synthetic timing model.
//
// Every anchor in this file is taken from, or interpolated between, numbers
// published in the paper (DATE'15, Tables I/II and Sec. IV) for the 28 nm
// FDSOI mor1kx core at 0.70 V with critical-range optimization:
//   - T_static = 2026 ps (494 MHz)                     [Sec. IV-A, Fig. 5]
//   - EX worst dynamic delays: l.add(i) 1467, l.and(i) 1482, l.bf 1470,
//     l.j 1172 (ADR), l.lwz 1391, l.mul 1899, l.sll(i) 1270, l.xor 1514
//                                                      [Table II]
//   - conventional/optimized max-delay factors: l.add(i) 0.92, l.bf 0.78,
//     l.j 0.74, l.lwz 0.85, l.mul 1.10, l.nop 0.78, l.sw 0.85   [Table I]
//   - conventional static period: 2026/1.09 = 1859 ps  [Sec. III-A, +9%]
//   - l.mul EX delay spread ~300 ps (data dependent)   [Fig. 7]
// Families not listed in the paper are interpolated from their functional
// unit (documented per entry below).
#pragma once

#include <array>

#include "isa/opcode.hpp"
#include "sim/cycle_record.hpp"
#include "timing/design_config.hpp"

namespace focs::timing {

/// Number of per-stage occupancy classes: one per timing family plus
/// bubble (squashed/empty slot) and held (stalled slot, no transitions).
inline constexpr int kOccupancyClasses = isa::kTimingFamilyCount + 2;
inline constexpr int kBubbleClass = isa::kTimingFamilyCount;
inline constexpr int kHeldClass = isa::kTimingFamilyCount + 1;

/// Per-(stage, class) delay behaviour of the synthetic design:
/// dynamic arrival(t) = anchor_ps - spread_ps * mix(jitter, data_factor),
/// and the path group's static (STA) ceiling is sta_ps >= anchor_ps.
struct DelayBand {
    double anchor_ps = 0;  ///< worst achievable dynamic arrival (incl. setup)
    double spread_ps = 0;  ///< width of the data/jitter dependent variation
    double sta_ps = 0;     ///< static timing ceiling of the path group
};

/// Full per-stage delay band tables for one design variant at 0.70 V.
struct TimingParams {
    /// [stage][class] delay bands.
    std::array<std::array<DelayBand, kOccupancyClasses>, sim::kStageCount> bands;

    /// Extra ADR-stage band excited when the fetch address mux applies a
    /// branch/jump target (attributed to the redirecting instruction; see
    /// DESIGN.md "ADR attribution"). Indexed by occupancy class of the
    /// redirect source.
    std::array<DelayBand, kOccupancyClasses> adr_redirect;

    /// Static period of the design as found by STA (max over all bands'
    /// sta_ps). 2026 ps optimized / 1859 ps conventional at 0.70 V.
    double static_period_ps = 0;

    /// Relative area and power cost versus the conventional variant
    /// (paper: 5-13% depending on library/voltage; we use 9%/8%).
    double area_factor = 1.0;
    double power_factor = 1.0;
};

/// Returns the calibrated tables for one design variant (at 0.70 V; voltage
/// scaling is applied on top by the cell library).
const TimingParams& timing_params(DesignVariant variant);

/// Fraction of the delay variation driven by operand values (the rest is
/// cycle-level pseudo-random jitter standing in for wire/state effects).
inline constexpr double kDataMixWeight = 0.45;

/// Guard added by the characterization flow on top of the observed maxima
/// when populating the delay LUT (covers the residual tail of the jitter
/// distribution; see DESIGN.md "LUT guard band").
inline constexpr double kLutGuardPs = 25.0;

}  // namespace focs::timing
