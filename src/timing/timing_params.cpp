#include "timing/timing_params.hpp"

#include "common/error.hpp"

namespace focs::timing {

namespace {

using isa::TimingFamily;
using sim::Stage;

constexpr int stage_index(Stage s) { return static_cast<int>(s); }
constexpr int family_index(TimingFamily f) { return static_cast<int>(f); }

/// Mutable builder for one variant's tables.
struct Builder {
    TimingParams params;

    void set(Stage stage, int occupancy_class, DelayBand band) {
        params.bands[static_cast<std::size_t>(stage_index(stage))]
                    [static_cast<std::size_t>(occupancy_class)] = band;
    }
    void set(Stage stage, TimingFamily family, DelayBand band) {
        set(stage, family_index(family), band);
    }
    /// Applies `band` to every family class (not bubble/held) of a stage.
    void set_all_families(Stage stage, DelayBand band) {
        for (int f = 0; f < isa::kTimingFamilyCount; ++f) set(stage, f, band);
    }
    void set_redirect(TimingFamily family, DelayBand band) {
        params.adr_redirect[static_cast<std::size_t>(family_index(family))] = band;
    }
};

/// Critical-range-optimized design at 0.70 V. EX anchors for the families
/// listed in Table II are the paper's exact values; the rest are
/// interpolated per functional unit (rationale in the comment per line).
TimingParams build_optimized() {
    Builder b;
    b.params.static_period_ps = 2026.0;  // Sec. IV-A
    b.params.area_factor = 1.09;         // Sec. III-A: 5-13% penalty band
    b.params.power_factor = 1.08;

    // ---- EX: the dominating stage (93% of limiting paths, Fig. 6) -------
    b.set(Stage::kEx, TimingFamily::kAdd, {1467, 260, 1560});      // Table II
    b.set(Stage::kEx, TimingFamily::kLogicAnd, {1482, 220, 1570}); // Table II
    b.set(Stage::kEx, TimingFamily::kLogicOr, {1474, 220, 1565});  // between and/xor
    b.set(Stage::kEx, TimingFamily::kLogicXor, {1514, 220, 1600}); // Table II
    b.set(Stage::kEx, TimingFamily::kShift, {1270, 230, 1360});    // Table II (l.sll(i))
    b.set(Stage::kEx, TimingFamily::kMul, {1899, 300, 2026});      // Table II; THE critical path
    b.set(Stage::kEx, TimingFamily::kDiv, {1310, 180, 1400});      // serial step ~ adder class
    b.set(Stage::kEx, TimingFamily::kCompare, {1445, 230, 1530});  // subtractor + flag logic
    b.set(Stage::kEx, TimingFamily::kBranch, {1470, 200, 1550});   // Table II (l.bf)
    b.set(Stage::kEx, TimingFamily::kJump, {1050, 130, 1150});      // link-address adder only
    b.set(Stage::kEx, TimingFamily::kLoad, {1391, 180, 1470});     // Table II (l.lwz)
    b.set(Stage::kEx, TimingFamily::kStore, {1370, 180, 1450});    // slightly below lwz (Table I)
    b.set(Stage::kEx, TimingFamily::kMovhi, {1180, 160, 1280});    // immediate mux path
    b.set(Stage::kEx, TimingFamily::kNop, {905, 100, 1000});       // Table I factor 0.78 anchor
    b.set(Stage::kEx, kBubbleClass, {1350, 200, 0});
    b.set(Stage::kEx, kHeldClass, {540, 60, 0});

    // ---- ADR: instruction SRAM address paths -----------------------------
    b.set_all_families(Stage::kAdr, {890, 110, 1240});  // sequential +4 fetch
    b.set(Stage::kAdr, kBubbleClass, {600, 80, 0});
    b.set(Stage::kAdr, kHeldClass, {500, 60, 0});
    // Redirect (target application through the address mux), attributed to
    // the redirecting control-transfer instruction; l.j worst case is
    // Table II's 1172 ps ADR entry.
    for (int f = 0; f < isa::kTimingFamilyCount; ++f) {
        b.params.adr_redirect[static_cast<std::size_t>(f)] = {1145, 120, 1240};
    }
    b.set_redirect(TimingFamily::kJump, {1172, 150, 1240});   // Table II (l.j)
    b.set_redirect(TimingFamily::kBranch, {1145, 120, 1240});

    // ---- FE: instruction word distribution / pre-decode -------------------
    b.set_all_families(Stage::kFe, {850, 130, 1020});
    b.set(Stage::kFe, kBubbleClass, {800, 100, 0});
    b.set(Stage::kFe, kHeldClass, {520, 60, 0});

    // ---- DC: decode + register file read ----------------------------------
    b.set_all_families(Stage::kDc, {920, 140, 1150});
    b.set(Stage::kDc, TimingFamily::kMul, {950, 140, 1180});  // mul operand shield regs
    b.set(Stage::kDc, kBubbleClass, {900, 120, 0});
    b.set(Stage::kDc, kHeldClass, {520, 60, 0});

    // ---- CTRL: data SRAM return, align/extend, flag/branch bookkeeping ----
    b.set_all_families(Stage::kCtrl, {880, 130, 1100});
    b.set(Stage::kCtrl, TimingFamily::kLoad, {1020, 130, 1260});    // dmem data + align/ext
    b.set(Stage::kCtrl, TimingFamily::kMul, {1050, 150, 1180});     // result staging
    b.set(Stage::kCtrl, TimingFamily::kStore, {940, 130, 1080});
    b.set(Stage::kCtrl, TimingFamily::kCompare, {960, 140, 1090});  // flag distribution
    b.set(Stage::kCtrl, TimingFamily::kBranch, {960, 140, 1090});
    b.set(Stage::kCtrl, kBubbleClass, {600, 80, 0});
    b.set(Stage::kCtrl, kHeldClass, {500, 60, 0});

    // ---- WB: register file write port -------------------------------------
    b.set_all_families(Stage::kWb, {680, 110, 800});
    b.set(Stage::kWb, TimingFamily::kNop, {560, 90, 700});
    b.set(Stage::kWb, TimingFamily::kStore, {560, 90, 700});
    b.set(Stage::kWb, TimingFamily::kCompare, {590, 90, 710});
    b.set(Stage::kWb, kBubbleClass, {500, 70, 0});
    b.set(Stage::kWb, kHeldClass, {450, 60, 0});

    return b.params;
}

/// Conventional design at 0.70 V: 9% shorter static period but a timing
/// wall — per-family dynamic maxima cluster near the static limit. Anchors
/// are optimized_anchor / factor using Table I factors where published.
TimingParams build_conventional() {
    Builder b;
    b.params.static_period_ps = 1859.0;  // 2026 / 1.09 (Sec. III-A)
    b.params.area_factor = 1.0;
    b.params.power_factor = 1.0;

    b.set(Stage::kEx, TimingFamily::kAdd, {1595, 140, 1680});      // 1467/0.92 (Table I)
    b.set(Stage::kEx, TimingFamily::kLogicAnd, {1647, 160, 1730}); // /0.90
    b.set(Stage::kEx, TimingFamily::kLogicOr, {1638, 160, 1720});
    b.set(Stage::kEx, TimingFamily::kLogicXor, {1646, 160, 1730});
    b.set(Stage::kEx, TimingFamily::kShift, {1588, 180, 1680});    // /0.80
    b.set(Stage::kEx, TimingFamily::kMul, {1726, 280, 1859});      // 1899/1.10 (Table I)
    b.set(Stage::kEx, TimingFamily::kDiv, {1541, 180, 1630});
    b.set(Stage::kEx, TimingFamily::kCompare, {1700, 200, 1790});
    b.set(Stage::kEx, TimingFamily::kBranch, {1850, 180, 1855});   // 1470/0.78, wall-limited
    b.set(Stage::kEx, TimingFamily::kJump, {1231, 150, 1330});
    b.set(Stage::kEx, TimingFamily::kLoad, {1636, 170, 1720});     // 1391/0.85 (Table I)
    b.set(Stage::kEx, TimingFamily::kStore, {1612, 170, 1700});    // 1370/0.85 (Table I)
    b.set(Stage::kEx, TimingFamily::kMovhi, {1400, 160, 1500});
    b.set(Stage::kEx, TimingFamily::kNop, {1160, 130, 1260});      // 905/0.78 (Table I)
    b.set(Stage::kEx, kBubbleClass, {900, 100, 0});
    b.set(Stage::kEx, kHeldClass, {650, 60, 0});

    b.set_all_families(Stage::kAdr, {1250, 140, 1450});
    b.set(Stage::kAdr, kBubbleClass, {700, 80, 0});
    b.set(Stage::kAdr, kHeldClass, {560, 60, 0});
    for (int f = 0; f < isa::kTimingFamilyCount; ++f) {
        b.params.adr_redirect[static_cast<std::size_t>(f)] = {1550, 150, 1700};
    }
    b.set_redirect(TimingFamily::kJump, {1584, 160, 1700});  // 1172/0.74 (Table I)
    b.set_redirect(TimingFamily::kBranch, {1550, 150, 1700});

    b.set_all_families(Stage::kFe, {1100, 160, 1300});
    b.set(Stage::kFe, kBubbleClass, {700, 80, 0});
    b.set(Stage::kFe, kHeldClass, {560, 60, 0});

    b.set_all_families(Stage::kDc, {1300, 180, 1450});
    b.set(Stage::kDc, kBubbleClass, {720, 80, 0});
    b.set(Stage::kDc, kHeldClass, {560, 60, 0});

    b.set_all_families(Stage::kCtrl, {1150, 150, 1300});
    b.set(Stage::kCtrl, TimingFamily::kLoad, {1450, 170, 1550});
    b.set(Stage::kCtrl, TimingFamily::kMul, {1300, 150, 1400});
    b.set(Stage::kCtrl, kBubbleClass, {680, 80, 0});
    b.set(Stage::kCtrl, kHeldClass, {540, 60, 0});

    b.set_all_families(Stage::kWb, {880, 120, 1000});
    b.set(Stage::kWb, kBubbleClass, {600, 70, 0});
    b.set(Stage::kWb, kHeldClass, {500, 60, 0});

    return b.params;
}

void validate(const TimingParams& p) {
    for (const auto& stage_bands : p.bands) {
        for (const auto& band : stage_bands) {
            check(band.anchor_ps > 0, "delay band not initialized");
            check(band.spread_ps >= 0 && band.spread_ps < band.anchor_ps,
                  "delay spread must be within the anchor");
            check(band.sta_ps == 0 || band.sta_ps >= band.anchor_ps,
                  "STA ceiling below dynamic anchor");
            check(band.sta_ps <= p.static_period_ps, "path group exceeds static period");
        }
    }
    // Redirect bands exist only for real instruction families (a redirect
    // source is never a bubble/held slot); those must be fully consistent.
    for (int f = 0; f < isa::kTimingFamilyCount; ++f) {
        const auto& band = p.adr_redirect[static_cast<std::size_t>(f)];
        check(band.anchor_ps > 0 && band.sta_ps <= p.static_period_ps,
              "redirect band inconsistent");
    }
}

}  // namespace

const TimingParams& timing_params(DesignVariant variant) {
    static const TimingParams optimized = [] {
        TimingParams p = build_optimized();
        validate(p);
        return p;
    }();
    static const TimingParams conventional = [] {
        TimingParams p = build_conventional();
        validate(p);
        return p;
    }();
    return variant == DesignVariant::kCriticalRangeOptimized ? optimized : conventional;
}

}  // namespace focs::timing
