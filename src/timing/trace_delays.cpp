#include "timing/trace_delays.hpp"

namespace focs::timing {

TraceDelays compute_trace_delays(const DelayCalculator& calculator,
                                 const std::vector<sim::CycleRecord>& records) {
    TraceDelays delays;
    delays.static_period_ps = calculator.static_period_ps();
    delays.required_period_ps.reserve(records.size());
    for (const sim::CycleRecord& record : records) {
        delays.required_period_ps.push_back(calculator.evaluate(record).required_period_ps);
    }
    return delays;
}

}  // namespace focs::timing
