#include "timing/trace_delays.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/error.hpp"
#include "isa/isa_info.hpp"

namespace focs::timing {

TraceDelays compute_trace_delays(const DelayCalculator& calculator,
                                 const std::vector<sim::CycleRecord>& records) {
    TraceDelays delays;
    delays.static_period_ps = calculator.static_period_ps();
    delays.required_period_ps.reserve(records.size());
    for (const sim::CycleRecord& record : records) {
        delays.required_period_ps.push_back(calculator.evaluate(record).required_period_ps);
    }
    return delays;
}

UnitTraceDelays compute_unit_trace_delays(const DelayCalculator& calculator,
                                          const std::vector<sim::CycleRecord>& records) {
    UnitTraceDelays out;
    out.unit_static_period_ps = calculator.unit_static_period_ps();
    const std::size_t cycles = records.size();
    out.unit_required_period_ps.assign(cycles, 0.0);
    // Matches CycleDelays' default attribution when no stage exceeds 0.
    out.limiting_stage.assign(cycles, sim::Stage::kEx);

    // Stage-major fused pass: each row resolves its band and draws its one
    // splitmix64 jitter sample per cycle, then maxes into the flat array.
    // The band resolution is the stage-major transpose of the cycle-major
    // evaluate_unit() loop (delay_model.cpp evaluate_cycle) with the
    // ADR-redirect test hoisted into the one stage it can apply to; stages
    // are visited in ascending order and replace only on strictly greater
    // delays, so ties attribute to the earliest stage exactly like the
    // cycle-major loop. test_replay asserts the bit-level equivalence.
    double* required = out.unit_required_period_ps.data();
    sim::Stage* limiting = out.limiting_stage.data();
    for (int s = 0; s < sim::kStageCount; ++s) {
        const auto stage = static_cast<sim::Stage>(s);
        const bool is_adr = stage == sim::Stage::kAdr;
        for (std::size_t c = 0; c < cycles; ++c) {
            const sim::CycleRecord& record = records[c];
            const sim::StageView& view = record.stages[static_cast<std::size_t>(s)];
            const DelayBand* band;
            if (is_adr && record.fetch_redirect &&
                record.redirect_source != isa::Opcode::kInvalid) {
                band = &calculator.band(
                    DelayCalculator::kAdrRedirectRow,
                    static_cast<int>(isa::timing_family(record.redirect_source)));
            } else {
                band = &calculator.band(s, occupancy_class(view));
            }
            const double delay = calculator.unit_band_delay(*band, view, stage, record.cycle);
            if (delay > required[c]) {
                required[c] = delay;
                limiting[c] = stage;
            }
        }
    }

    // Same guard as the per-cycle evaluators, applied once after the fused
    // pass (cold path: the calibrated bands always cover their excitation).
    const double limit = out.unit_static_period_ps + 1e-9;
    for (std::size_t c = 0; c < cycles; ++c) {
        if (required[c] > limit) [[unlikely]] {
            throw Error("dynamic delay exceeded the static period");
        }
    }
    return out;
}

PeriodScale PeriodScale::of(double scale) {
    PeriodScale out;
    if (std::fpclassify(scale) != FP_NORMAL || scale <= 0.0) return out;
    int exponent = 0;
    // frexp is exact: frac in [0.5, 1) carries the full 53-bit significand,
    // so shifting it up 53 bits yields an integer in [2^52, 2^53).
    const double frac = std::frexp(scale, &exponent);
    const double significand = std::ldexp(frac, 53);
    if (significand != std::floor(significand)) return out;
    out.mult = static_cast<std::uint64_t>(significand);
    out.exp2 = exponent - 53;
    // Round-trip check pins the decomposition as exact (it always is for a
    // normal double, but the integer hot path's correctness rides on it).
    out.valid = static_cast<double>(out.mult) * std::ldexp(1.0, out.exp2) == scale;
    return out;
}

std::optional<FixedPointPeriod> FixedPointPeriod::resolve(const ScaledTraceDelays& delays) {
#if !defined(__SIZEOF_INT128__)
    (void)delays;
    return std::nullopt;
#else
    if (delays.unit == nullptr) return std::nullopt;
    const PeriodScale scale = delays.period_scale.valid
                                  ? delays.period_scale
                                  : PeriodScale::of(delays.delay_scale);
    if (!scale.valid) return std::nullopt;
    const std::vector<double>& unit = delays.unit->unit_required_period_ps;
    double max_value = 0.0;
    for (const double v : unit) {
        if (!std::isfinite(v) || v < 0.0) return std::nullopt;
        max_value = std::max(max_value, v);
    }
    FixedPointPeriod out;
    // Place the largest element at 63 bits; every element then quantizes
    // exactly iff its binade is within ~10 of the maximum (a 53-bit
    // significand shifted down by the binade gap), which physical delay
    // arrays satisfy by a wide margin. The round trip below catches any
    // exception and falls back wholesale.
    out.frac_bits_ = max_value > 0.0 ? 62 - std::ilogb(max_value) : 0;
    constexpr double kTwo63 = 9223372036854775808.0;  // 2^63
    out.fx_.resize(unit.size());
    for (std::size_t c = 0; c < unit.size(); ++c) {
        const double quantized = std::ldexp(unit[c], out.frac_bits_);
        if (!(quantized >= 0.0) || quantized >= kTwo63) return std::nullopt;
        const auto fx = static_cast<std::uint64_t>(quantized);
        if (static_cast<double>(fx) != quantized) return std::nullopt;
        out.fx_[c] = fx;
    }
    out.mult_ = scale.mult;
    const int base_exp2 = scale.exp2 - out.frac_bits_;
    for (int drop = 0; drop < 64; ++drop) {
        out.pow2_[static_cast<std::size_t>(drop)] = std::ldexp(1.0, base_exp2 + drop);
    }
    // The power-of-two step must itself be exact (normal) over the whole
    // drop range, or the final multiply would round twice.
    if (std::fpclassify(out.pow2_[0]) != FP_NORMAL ||
        std::fpclassify(out.pow2_[63]) != FP_NORMAL) {
        return std::nullopt;
    }
    return out;
#endif
}

ScaledTraceDelays scale_trace_delays(std::shared_ptr<const UnitTraceDelays> unit,
                                     const DelayCalculator& calculator) {
    check(unit != nullptr, "cannot scale a null unit trace-delay artifact");
    ScaledTraceDelays scaled;
    scaled.unit = std::move(unit);
    scaled.delay_scale = calculator.voltage_scale();
    scaled.static_period_ps = calculator.static_period_ps();
    scaled.period_scale = PeriodScale::of(scaled.delay_scale);
    return scaled;
}

TraceDelays ScaledTraceDelays::materialize() const {
    check(unit != nullptr, "cannot materialize a null unit trace-delay artifact");
    TraceDelays out;
    out.static_period_ps = static_period_ps;
    out.required_period_ps.reserve(unit->unit_required_period_ps.size());
    for (const double u : unit->unit_required_period_ps) {
        out.required_period_ps.push_back(u * delay_scale);
    }
    return out;
}

}  // namespace focs::timing
