#include "timing/trace_delays.hpp"

#include <utility>

#include "common/error.hpp"
#include "isa/isa_info.hpp"

namespace focs::timing {

TraceDelays compute_trace_delays(const DelayCalculator& calculator,
                                 const std::vector<sim::CycleRecord>& records) {
    TraceDelays delays;
    delays.static_period_ps = calculator.static_period_ps();
    delays.required_period_ps.reserve(records.size());
    for (const sim::CycleRecord& record : records) {
        delays.required_period_ps.push_back(calculator.evaluate(record).required_period_ps);
    }
    return delays;
}

UnitTraceDelays compute_unit_trace_delays(const DelayCalculator& calculator,
                                          const std::vector<sim::CycleRecord>& records) {
    UnitTraceDelays out;
    out.unit_static_period_ps = calculator.unit_static_period_ps();
    const std::size_t cycles = records.size();
    out.unit_required_period_ps.assign(cycles, 0.0);
    // Matches CycleDelays' default attribution when no stage exceeds 0.
    out.limiting_stage.assign(cycles, sim::Stage::kEx);

    // Stage-major fused pass: each row resolves its band and draws its one
    // splitmix64 jitter sample per cycle, then maxes into the flat array.
    // The band resolution is the stage-major transpose of the cycle-major
    // evaluate_unit() loop (delay_model.cpp evaluate_cycle) with the
    // ADR-redirect test hoisted into the one stage it can apply to; stages
    // are visited in ascending order and replace only on strictly greater
    // delays, so ties attribute to the earliest stage exactly like the
    // cycle-major loop. test_replay asserts the bit-level equivalence.
    double* required = out.unit_required_period_ps.data();
    sim::Stage* limiting = out.limiting_stage.data();
    for (int s = 0; s < sim::kStageCount; ++s) {
        const auto stage = static_cast<sim::Stage>(s);
        const bool is_adr = stage == sim::Stage::kAdr;
        for (std::size_t c = 0; c < cycles; ++c) {
            const sim::CycleRecord& record = records[c];
            const sim::StageView& view = record.stages[static_cast<std::size_t>(s)];
            const DelayBand* band;
            if (is_adr && record.fetch_redirect &&
                record.redirect_source != isa::Opcode::kInvalid) {
                band = &calculator.band(
                    DelayCalculator::kAdrRedirectRow,
                    static_cast<int>(isa::timing_family(record.redirect_source)));
            } else {
                band = &calculator.band(s, occupancy_class(view));
            }
            const double delay = calculator.unit_band_delay(*band, view, stage, record.cycle);
            if (delay > required[c]) {
                required[c] = delay;
                limiting[c] = stage;
            }
        }
    }

    // Same guard as the per-cycle evaluators, applied once after the fused
    // pass (cold path: the calibrated bands always cover their excitation).
    const double limit = out.unit_static_period_ps + 1e-9;
    for (std::size_t c = 0; c < cycles; ++c) {
        if (required[c] > limit) [[unlikely]] {
            throw Error("dynamic delay exceeded the static period");
        }
    }
    return out;
}

ScaledTraceDelays scale_trace_delays(std::shared_ptr<const UnitTraceDelays> unit,
                                     const DelayCalculator& calculator) {
    check(unit != nullptr, "cannot scale a null unit trace-delay artifact");
    ScaledTraceDelays scaled;
    scaled.unit = std::move(unit);
    scaled.delay_scale = calculator.voltage_scale();
    scaled.static_period_ps = calculator.static_period_ps();
    return scaled;
}

TraceDelays ScaledTraceDelays::materialize() const {
    check(unit != nullptr, "cannot materialize a null unit trace-delay artifact");
    TraceDelays out;
    out.static_period_ps = static_period_ps;
    out.required_period_ps.reserve(unit->unit_required_period_ps.size());
    for (const double u : unit->unit_required_period_ps) {
        out.required_period_ps.push_back(u * delay_scale);
    }
    return out;
}

}  // namespace focs::timing
