#include "timing/netlist.hpp"

#include <algorithm>
#include <cstdio>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "isa/isa_info.hpp"
#include "timing/cell_library.hpp"

namespace focs::timing {

namespace {

using sim::Stage;

struct EndpointPlan {
    Stage stage;
    int flops;
    int sram_pins;
    const char* prefix;
};

constexpr EndpointPlan kEndpointPlan[] = {
    {Stage::kAdr, 2, 2, "adr/pc"},        // PC register + instruction SRAM address pins
    {Stage::kFe, 4, 0, "fe/instr_reg"},   // fetched instruction word register
    {Stage::kDc, 6, 0, "dc/pipe_reg"},    // decode outputs, operand registers
    {Stage::kEx, 10, 2, "ex/pipe_reg"},   // EX/CTRL boundary regs + data SRAM pins
    {Stage::kCtrl, 6, 2, "ctrl/pipe_reg"},// load align/extend regs + SRAM data pins
    {Stage::kWb, 4, 0, "wb/rf_write"},    // register-file write port
};

/// Number of synthetic paths per (stage, class) group.
constexpr int kPathsPerGroup = 8;

/// Multiplier decorrelating per-endpoint jitter streams (historically
/// applied per endpoint per cycle in the gate-sim hot loop; now baked into
/// the SoA's precomputed jitter keys).
constexpr std::uint64_t kJitterKeyStride = 7919ULL;

}  // namespace

SyntheticNetlist SyntheticNetlist::generate(const DesignConfig& config) {
    SyntheticNetlist netlist;
    netlist.config_ = config;
    Rng rng(config.seed);
    const double vscale = CellLibrary::fdsoi28().delay_scale(config.voltage_v);
    const TimingParams& params = timing_params(config.variant);

    // --- Endpoints ---------------------------------------------------------
    for (const auto& plan : kEndpointPlan) {
        for (int i = 0; i < plan.flops + plan.sram_pins; ++i) {
            Endpoint e;
            e.id = static_cast<int>(netlist.endpoints_.size());
            e.stage = plan.stage;
            e.is_sram_macro = i >= plan.flops;
            char buf[64];
            std::snprintf(buf, sizeof buf, "%s%s[%d]", plan.prefix,
                          e.is_sram_macro ? "_macro" : "", i);
            e.name = buf;
            e.setup_ps = e.is_sram_macro ? 45.0 : 30.0;
            // Post-layout clock skew, sometimes introduced deliberately
            // (useful skew); zero on SRAM macros to keep the critical
            // macro arrival exact.
            e.skew_ps = e.is_sram_macro ? 0.0 : rng.next_double(-25.0, 25.0);
            netlist.endpoints_.push_back(std::move(e));
        }
    }

    // The endpoint population is final: build the per-stage lists and the
    // SoA view once, before the path generator (and later every flow)
    // starts querying them.
    netlist.build_endpoint_caches();

    // --- Paths per (stage, family) group ------------------------------------
    auto add_group = [&](Stage stage, int occupancy_class, const DelayBand& band, bool redirect) {
        if (band.sta_ps <= 0) return;  // bubble/held classes own no physical paths
        const auto& stage_endpoints = netlist.endpoints_of_stage(stage);
        for (int i = 0; i < kPathsPerGroup; ++i) {
            TimingPath p;
            p.id = static_cast<int>(netlist.paths_.size());
            p.stage = stage;
            p.occupancy_class = occupancy_class;
            p.redirect_path = redirect;
            // The first path of a group carries the group's STA ceiling;
            // the rest tail off (critical-range optimization keeps this
            // tail short in the optimized variant, which is already encoded
            // in the per-variant band ceilings).
            const double fraction = i == 0 ? 1.0 : rng.next_double(0.55, 0.97);
            p.sta_delay_ps = band.sta_ps * fraction * vscale;
            const std::size_t pick = static_cast<std::size_t>(rng.next_below(stage_endpoints.size()));
            p.endpoint_id = stage_endpoints[pick];
            netlist.paths_.push_back(p);
        }
    };

    for (int s = 0; s < sim::kStageCount; ++s) {
        for (int c = 0; c < kOccupancyClasses; ++c) {
            add_group(static_cast<Stage>(s), c,
                      params.bands[static_cast<std::size_t>(s)][static_cast<std::size_t>(c)],
                      /*redirect=*/false);
        }
    }
    // ADR redirect paths (target application through the fetch address mux).
    add_group(Stage::kAdr, static_cast<int>(isa::TimingFamily::kJump),
              params.adr_redirect[static_cast<std::size_t>(isa::TimingFamily::kJump)],
              /*redirect=*/true);
    add_group(Stage::kAdr, static_cast<int>(isa::TimingFamily::kBranch),
              params.adr_redirect[static_cast<std::size_t>(isa::TimingFamily::kBranch)],
              /*redirect=*/true);

    check(!netlist.paths_.empty(), "netlist generation produced no paths");
    return netlist;
}

void SyntheticNetlist::build_endpoint_caches() {
    for (auto& ids : stage_endpoints_) ids.clear();
    for (const auto& e : endpoints_) {
        stage_endpoints_[static_cast<std::size_t>(e.stage)].push_back(e.id);
    }
    soa_ = {};
    soa_.skew_ps.reserve(endpoints_.size());
    soa_.setup_ps.reserve(endpoints_.size());
    soa_.jitter_key.reserve(endpoints_.size());
    soa_.id.reserve(endpoints_.size());
    for (int s = 0; s < sim::kStageCount; ++s) {
        soa_.stage_begin[static_cast<std::size_t>(s)] = soa_.id.size();
        for (const int id : stage_endpoints_[static_cast<std::size_t>(s)]) {
            const Endpoint& e = endpoints_[static_cast<std::size_t>(id)];
            soa_.skew_ps.push_back(e.skew_ps);
            soa_.setup_ps.push_back(e.setup_ps);
            soa_.jitter_key.push_back(static_cast<std::uint64_t>(e.id) * kJitterKeyStride);
            soa_.id.push_back(static_cast<std::int32_t>(e.id));
        }
    }
    soa_.stage_begin[sim::kStageCount] = soa_.id.size();
}

double SyntheticNetlist::static_period_ps() const {
    double worst = 0;
    for (const auto& p : paths_) worst = std::max(worst, p.sta_delay_ps);
    return worst;
}

int SyntheticNetlist::near_critical_count(double range_ps) const {
    const double limit = static_period_ps() - range_ps;
    return static_cast<int>(
        std::count_if(paths_.begin(), paths_.end(),
                      [&](const TimingPath& p) { return p.sta_delay_ps >= limit; }));
}

Histogram SyntheticNetlist::path_delay_histogram(int bins) const {
    const double hi = static_period_ps() * 1.02;
    Histogram h(0.0, hi, bins);
    for (const auto& p : paths_) h.add(p.sta_delay_ps);
    return h;
}

}  // namespace focs::timing
