#include "power/power_model.hpp"

#include "common/error.hpp"

namespace focs::power {

PowerModel::PowerModel(timing::DesignVariant variant, const timing::CellLibrary& library)
    : library_(&library), power_factor_(timing::timing_params(variant).power_factor) {}

PowerBreakdown PowerModel::at(double voltage_v, double freq_mhz) const {
    check(freq_mhz > 0, "frequency must be positive");
    PowerBreakdown p;
    p.dynamic_uw = library_->dynamic_uw_per_mhz(voltage_v) * power_factor_ * freq_mhz;
    p.leakage_uw = library_->leakage_uw(voltage_v) * power_factor_;
    p.total_uw = p.dynamic_uw + p.leakage_uw;
    p.uw_per_mhz = p.total_uw / freq_mhz;
    return p;
}

}  // namespace focs::power
