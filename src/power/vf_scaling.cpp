#include "power/vf_scaling.hpp"

#include "common/error.hpp"

namespace focs::power {

VoltageFrequencyScaler::VoltageFrequencyScaler(const PowerModel& model,
                                               const timing::CellLibrary& library)
    : model_(&model), library_(&library) {}

double VoltageFrequencyScaler::solve_voltage_for_frequency(double freq_at_nominal_mhz,
                                                           double nominal_voltage_v,
                                                           double target_freq_mhz) const {
    check(freq_at_nominal_mhz > 0 && target_freq_mhz > 0, "frequencies must be positive");
    const double nominal_scale = library_->delay_scale(nominal_voltage_v);
    auto freq_at = [&](double v) {
        return freq_at_nominal_mhz * nominal_scale / library_->delay_scale(v);
    };
    if (freq_at(library_->min_voltage()) >= target_freq_mhz) return library_->min_voltage();
    if (freq_at(library_->max_voltage()) < target_freq_mhz) {
        throw Error("target frequency unreachable within the characterized voltage range");
    }
    double lo = library_->min_voltage();
    double hi = library_->max_voltage();
    while (hi - lo > 1e-3) {  // 1 mV
        const double mid = 0.5 * (lo + hi);
        if (freq_at(mid) >= target_freq_mhz) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    return hi;
}

IsoThroughputResult VoltageFrequencyScaler::iso_throughput(double static_freq_mhz,
                                                           double dca_speedup,
                                                           double nominal_voltage_v) const {
    check(dca_speedup >= 1.0, "DCA speedup below 1 cannot be traded for voltage");
    IsoThroughputResult r;
    r.nominal_voltage_v = nominal_voltage_v;
    r.target_freq_mhz = static_freq_mhz;
    r.dca_freq_at_nominal_mhz = static_freq_mhz * dca_speedup;
    r.scaled_voltage_v = solve_voltage_for_frequency(r.dca_freq_at_nominal_mhz, nominal_voltage_v,
                                                     static_freq_mhz);
    r.voltage_reduction_mv = (nominal_voltage_v - r.scaled_voltage_v) * 1000.0;
    r.baseline_power = model_->at(nominal_voltage_v, static_freq_mhz);
    // At the reduced voltage the DCA core is throttled to exactly the target
    // throughput (same execution time as the conventional design).
    r.scaled_power = model_->at(r.scaled_voltage_v, static_freq_mhz);
    r.efficiency_gain = r.baseline_power.uw_per_mhz / r.scaled_power.uw_per_mhz - 1.0;
    r.power_reduction = 1.0 - r.scaled_power.total_uw / r.baseline_power.total_uw;
    return r;
}

}  // namespace focs::power
