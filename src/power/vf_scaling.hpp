// Iso-throughput voltage-frequency scaling (paper Sec. IV-B).
//
// Given the DCA speedup at the nominal voltage, finds the reduced supply
// voltage at which the dynamically-clocked core still delivers the
// conventional design's throughput, and compares energy efficiency at both
// operating points (the paper reports -70 mV and 13.7 -> 11.0 uW/MHz).
#pragma once

#include "power/power_model.hpp"
#include "timing/cell_library.hpp"

namespace focs::power {

struct IsoThroughputResult {
    double nominal_voltage_v = 0;
    double scaled_voltage_v = 0;        ///< reduced supply at iso-throughput
    double voltage_reduction_mv = 0;
    double target_freq_mhz = 0;         ///< throughput that must be sustained
    double dca_freq_at_nominal_mhz = 0; ///< DCA effective frequency before scaling
    PowerBreakdown baseline_power;      ///< conventional clocking at nominal V
    PowerBreakdown scaled_power;        ///< DCA at the reduced voltage
    double efficiency_gain = 0;         ///< baseline uW/MHz / scaled uW/MHz - 1
    double power_reduction = 0;         ///< 1 - scaled total / baseline total
};

class VoltageFrequencyScaler {
public:
    VoltageFrequencyScaler(const PowerModel& model,
                           const timing::CellLibrary& library = timing::CellLibrary::fdsoi28());

    /// Smallest voltage (within the library's characterized range) at which
    /// a design whose effective frequency at `nominal_voltage_v` is
    /// `freq_at_nominal_mhz` still reaches `target_freq_mhz`.
    /// Found by bisection on the library delay-scale curve (1 mV tolerance).
    double solve_voltage_for_frequency(double freq_at_nominal_mhz, double nominal_voltage_v,
                                       double target_freq_mhz) const;

    /// Full paper-style comparison: conventional clocking at nominal voltage
    /// vs. DCA (speedup x) scaled down to iso-throughput.
    IsoThroughputResult iso_throughput(double static_freq_mhz, double dca_speedup,
                                       double nominal_voltage_v) const;

private:
    const PowerModel* model_;
    const timing::CellLibrary* library_;
};

}  // namespace focs::power
