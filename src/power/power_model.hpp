// Core power model on top of the cell-library characterization.
//
// P(V, f) = dynamic_uw_per_mhz(V) * variant_power_factor * f + leakage(V),
// reported both in absolute microwatts and in the paper's uW/MHz metric.
// Calibrated to 13.7 uW/MHz for the critical-range-optimized core at
// 0.70 V / 494 MHz (paper Sec. IV-B).
#pragma once

#include "timing/cell_library.hpp"
#include "timing/design_config.hpp"
#include "timing/timing_params.hpp"

namespace focs::power {

struct PowerBreakdown {
    double dynamic_uw = 0;
    double leakage_uw = 0;
    double total_uw = 0;
    double uw_per_mhz = 0;  ///< total power divided by effective frequency
};

class PowerModel {
public:
    explicit PowerModel(timing::DesignVariant variant,
                        const timing::CellLibrary& library = timing::CellLibrary::fdsoi28());

    /// Power of the core running at `freq_mhz` effective clock at `voltage_v`.
    PowerBreakdown at(double voltage_v, double freq_mhz) const;

    const timing::CellLibrary& library() const { return *library_; }
    double variant_power_factor() const { return power_factor_; }

private:
    const timing::CellLibrary* library_;
    double power_factor_;
};

}  // namespace focs::power
