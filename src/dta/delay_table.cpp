#include "dta/delay_table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "isa/isa_info.hpp"
#include "timing/delay_model.hpp"

namespace focs::dta {

using sim::Stage;

OccKey key_of(const sim::StageView& view) {
    if (!view.valid) return kKeyBubble;
    if (view.held) {
        if (isa::timing_family(view.inst.opcode) == isa::TimingFamily::kDiv) {
            return static_cast<OccKey>(view.inst.opcode);
        }
        return kKeyHeld;
    }
    return static_cast<OccKey>(view.inst.opcode);
}

std::array<OccKey, sim::kStageCount> attribution_keys(const sim::CycleRecord& record) {
    std::array<OccKey, sim::kStageCount> keys{};
    for (int s = 0; s < sim::kStageCount; ++s) {
        keys[static_cast<std::size_t>(s)] = key_of(record.stages[static_cast<std::size_t>(s)]);
    }
    if (record.fetch_redirect && record.redirect_source != isa::Opcode::kInvalid) {
        keys[static_cast<std::size_t>(Stage::kAdr)] =
            static_cast<OccKey>(record.redirect_source);
    }
    return keys;
}

std::string_view key_name(OccKey key) {
    if (key == kKeyBubble) return "<bubble>";
    if (key == kKeyHeld) return "<held>";
    return isa::mnemonic(static_cast<isa::Opcode>(key));
}

DelayTable::DelayTable(double static_period_ps, double lut_guard_ps)
    : static_period_ps_(static_period_ps), lut_guard_ps_(lut_guard_ps) {
    check(static_period_ps >= 0, "negative static period");
    check(lut_guard_ps >= 0, "negative LUT guard band");
    for (auto& row : effective_) row.fill(static_period_ps_);
}

void DelayTable::set(OccKey key, Stage stage, double delay_ps) {
    check(key >= 0 && key < kKeyCount, "delay table key out of range");
    check(delay_ps > 0, "delay table entry must be positive");
    has_raw_ = false;
    delays_[static_cast<std::size_t>(key)][static_cast<std::size_t>(stage)] = delay_ps;
    present_[static_cast<std::size_t>(key)][static_cast<std::size_t>(stage)] = true;
    effective_[static_cast<std::size_t>(key)][static_cast<std::size_t>(stage)] = delay_ps;
}

void DelayTable::set_characterized(OccKey key, Stage stage, double raw_max_ps) {
    check(key >= 0 && key < kKeyCount, "delay table key out of range");
    check(raw_max_ps > 0, "raw characterized maximum must be positive");
    check(has_raw_, "cannot mix raw characterized entries into a legacy table");
    raw_[static_cast<std::size_t>(key)][static_cast<std::size_t>(stage)] = raw_max_ps;
    const double entry = std::min(raw_max_ps + lut_guard_ps_, static_period_ps_);
    delays_[static_cast<std::size_t>(key)][static_cast<std::size_t>(stage)] = entry;
    present_[static_cast<std::size_t>(key)][static_cast<std::size_t>(stage)] = true;
    effective_[static_cast<std::size_t>(key)][static_cast<std::size_t>(stage)] = entry;
}

bool DelayTable::characterized(OccKey key, Stage stage) const {
    check(key >= 0 && key < kKeyCount, "delay table key out of range");
    return present_[static_cast<std::size_t>(key)][static_cast<std::size_t>(stage)];
}

double DelayTable::lookup(OccKey key, Stage stage) const {
    return characterized(key, stage)
               ? delays_[static_cast<std::size_t>(key)][static_cast<std::size_t>(stage)]
               : static_period_ps_;
}

double DelayTable::cycle_period_ps(const std::array<OccKey, sim::kStageCount>& keys) const {
    double period = 0;
    for (int s = 0; s < sim::kStageCount; ++s) {
        const double d = lookup(keys[static_cast<std::size_t>(s)], static_cast<Stage>(s));
        if (d > period) period = d;
    }
    return period;
}

double DelayTable::cycle_period_ps(const sim::CycleRecord& record) const {
    const bool adr_redirect =
        record.fetch_redirect && record.redirect_source != isa::Opcode::kInvalid;
    double period = 0;
    for (int s = 0; s < sim::kStageCount; ++s) {
        const OccKey key = s == static_cast<int>(Stage::kAdr) && adr_redirect
                               ? static_cast<OccKey>(record.redirect_source)
                               : key_of(record.stages[static_cast<std::size_t>(s)]);
        const double d = effective_[static_cast<std::size_t>(key)][static_cast<std::size_t>(s)];
        if (d > period) period = d;
    }
    return period;
}

DelayTable DelayTable::scaled(double factor) const {
    check(factor > 0, "scale factor must be positive");
    DelayTable out(static_period_ps_ * factor, lut_guard_ps_);
    for (OccKey key = 0; key < kKeyCount; ++key) {
        for (int s = 0; s < sim::kStageCount; ++s) {
            if (!characterized(key, static_cast<Stage>(s))) continue;
            if (has_raw_) {
                // Scale the raw maximum, then re-apply the voltage-
                // independent guard band and the scaled static clamp inside
                // set_characterized — the exact expression a reference
                // characterization at the target operating point computes.
                out.set_characterized(
                    key, static_cast<Stage>(s),
                    raw_[static_cast<std::size_t>(key)][static_cast<std::size_t>(s)] * factor);
            } else {
                out.set(key, static_cast<Stage>(s),
                        delays_[static_cast<std::size_t>(key)][static_cast<std::size_t>(s)] *
                            factor);
            }
        }
    }
    return out;
}

std::string DelayTable::serialize() const {
    char line[160];
    std::string out;
    if (has_raw_) {
        // v2: raw maxima at full precision so a deserialized table keeps
        // producing bit-identical scaled() views.
        std::snprintf(line, sizeof line, "delay_table v2 static_ps=%.17g guard_ps=%.17g\n",
                      static_period_ps_, lut_guard_ps_);
        out = line;
        for (OccKey key = 0; key < kKeyCount; ++key) {
            for (int s = 0; s < sim::kStageCount; ++s) {
                if (!characterized(key, static_cast<Stage>(s))) continue;
                std::snprintf(line, sizeof line, "%d %d %.17g\n", key, s,
                              raw_[static_cast<std::size_t>(key)][static_cast<std::size_t>(s)]);
                out += line;
            }
        }
        return out;
    }
    out = "delay_table v1 static_ps=" + std::to_string(static_period_ps_) + "\n";
    for (OccKey key = 0; key < kKeyCount; ++key) {
        for (int s = 0; s < sim::kStageCount; ++s) {
            if (!characterized(key, static_cast<Stage>(s))) continue;
            std::snprintf(line, sizeof line, "%d %d %.4f\n", key, s,
                          delays_[static_cast<std::size_t>(key)][static_cast<std::size_t>(s)]);
            out += line;
        }
    }
    return out;
}

DelayTable DelayTable::deserialize(const std::string& text) {
    std::istringstream in(text);
    std::string header;
    std::getline(in, header);
    const auto fields = split_whitespace(header);
    const bool v1 = fields.size() == 3 && fields[1] == "v1" && starts_with(fields[2], "static_ps=");
    const bool v2 = fields.size() == 4 && fields[1] == "v2" &&
                    starts_with(fields[2], "static_ps=") && starts_with(fields[3], "guard_ps=");
    if (fields.empty() || fields[0] != "delay_table" || (!v1 && !v2)) {
        throw ParseError("malformed delay table header: " + header);
    }
    const double guard = v2 ? std::stod(fields[3].substr(9)) : 0.0;
    DelayTable table(std::stod(fields[2].substr(10)), guard);
    std::string line;
    int line_no = 1;
    while (std::getline(in, line)) {
        ++line_no;
        if (trim(line).empty()) continue;
        const auto parts = split_whitespace(line);
        if (parts.size() != 3) throw ParseError("malformed delay table entry", line_no);
        const auto key = parse_int(parts[0]);
        const auto stage = parse_int(parts[1]);
        if (!key || !stage || *key < 0 || *key >= kKeyCount || *stage < 0 ||
            *stage >= sim::kStageCount) {
            throw ParseError("delay table entry out of range", line_no);
        }
        if (v2) {
            table.set_characterized(static_cast<OccKey>(*key), static_cast<Stage>(*stage),
                                    std::stod(parts[2]));
        } else {
            table.set(static_cast<OccKey>(*key), static_cast<Stage>(*stage), std::stod(parts[2]));
        }
    }
    return table;
}

}  // namespace focs::dta
