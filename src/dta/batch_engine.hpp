// Batched characterization engine.
//
// The streaming characterization path (GateLevelSimulation + EventSink)
// still pays, per cycle, for materializing one EndpointEvent per endpoint
// and for re-deriving per-endpoint constants inside two virtual calls. This
// engine rebuilds that hot path around *batches*:
//
//   pipeline (producer thread)
//        │  distills each CycleRecord into a batch entry
//        │  (cycle id, occupancy keys, per-stage required delays)
//        ▼
//   bounded ring of batch slots
//        │  worker threads run the endpoint kernel over contiguous
//        │  *endpoint shards* of the netlist's SoA view, writing
//        ▼  per-shard partial per-stage maxima
//   in-order merger
//        │  max-merges the shard partials in deterministic shard order and
//        ▼  folds the block into the DynamicTimingAnalysis accumulators
//   DynamicTimingAnalysis::consume_batch
//
// The endpoint kernel performs exactly the arithmetic of the event-emitting
// producer fused with the analyzer's slack recovery (one fused splitmix64
// per endpoint, SoA constant loads, no EndpointEvent), so the resulting
// delay tables, figure histograms and per-(instruction, stage) statistics
// are byte-identical to the serial streaming path for every worker count
// and batch size. With threads <= 1 the engine runs the same batch kernel
// inline on the producer thread (no ring, no locks) — that serial batched
// mode is already several times faster than the per-cycle streaming path
// and is the default of CharacterizationFlow.
#pragma once

#include <cstdint>
#include <exception>
#include <memory>
#include <vector>

#include "common/cancel.hpp"
#include "dta/analyzer.hpp"
#include "sim/cycle_record.hpp"
#include "timing/delay_model.hpp"
#include "timing/netlist.hpp"

namespace focs::dta {

struct BatchOptions {
    /// Endpoint-kernel worker threads. <= 1 runs the batch kernel inline on
    /// the producing thread (serial batched mode, no threads spawned);
    /// N > 1 spawns N kernel workers plus one in-order merger thread.
    int threads = 1;
    /// Cycles per batch slot. Any value >= 1 produces identical results;
    /// the default amortizes slot hand-off without hurting locality.
    int batch_cycles = 1024;
    /// Optional cooperative cancellation, polled once per batch slot (never
    /// per cycle): a fired token throws CancelledError out of on_cycle at
    /// the next slot boundary. nullptr = never cancelled.
    const CancellationToken* cancel = nullptr;
};

class BatchCharacterizationEngine final : public sim::PipelineObserver {
public:
    /// `netlist`, `calculator` and `analysis` must outlive the engine. The
    /// engine may observe several machine runs back to back (the
    /// characterization suite); call finish() once after the last run.
    BatchCharacterizationEngine(const timing::SyntheticNetlist& netlist,
                                const timing::DelayCalculator& calculator,
                                DynamicTimingAnalysis& analysis, BatchOptions options = {},
                                double sim_period_factor = 1.25);
    ~BatchCharacterizationEngine() override;

    BatchCharacterizationEngine(const BatchCharacterizationEngine&) = delete;
    BatchCharacterizationEngine& operator=(const BatchCharacterizationEngine&) = delete;

    void on_cycle(const sim::CycleRecord& record) override;

    /// Flushes the partial batch, drains the ring, joins all threads and
    /// rethrows the first kernel/fold error (e.g. a violated endpoint).
    /// Must be called before reading results from the analysis; the engine
    /// cannot observe further cycles afterwards.
    void finish();

    double sim_period_ps() const { return sim_period_ps_; }
    std::uint64_t cycles_observed() const { return cycles_observed_; }
    int threads() const { return options_.threads; }

private:
    struct Impl;

    /// One contiguous SoA endpoint run of one stage inside a shard.
    struct Segment {
        int stage = 0;
        std::size_t begin = 0;        ///< SoA slice [begin, end)
        std::size_t end = 0;
        std::size_t stage_first = 0;  ///< SoA index of the stage's first endpoint
        std::size_t stage_size = 0;
    };

    /// Runs the endpoint kernel for `shard` over `count` batch entries,
    /// writing the shard's per-cycle per-stage partial maxima (stages the
    /// shard does not cover stay 0, the fold identity).
    void run_shard(const std::vector<Segment>& shard, const std::uint64_t* cycles,
                   const std::array<double, sim::kStageCount>* stage_ps, std::size_t count,
                   double* partial) const;

    void flush_serial();

    const timing::EndpointSoA& soa_;
    const timing::DelayCalculator& calculator_;
    DynamicTimingAnalysis& analysis_;
    BatchOptions options_;
    double sim_period_ps_ = 0;
    std::vector<std::vector<Segment>> shards_;
    std::uint64_t cycles_observed_ = 0;
    bool finished_ = false;

    // Serial batched mode: one producer-owned slot, processed inline.
    std::vector<std::uint64_t> serial_cycles_;
    std::vector<std::array<OccKey, sim::kStageCount>> serial_keys_;
    std::vector<std::array<double, sim::kStageCount>> serial_stage_ps_;
    std::size_t serial_count_ = 0;
    std::vector<double> serial_partial_;
    std::vector<FoldedCycle> fold_scratch_;

    // Parallel mode state (ring, threads, synchronization).
    std::unique_ptr<Impl> impl_;
};

}  // namespace focs::dta
