#include "dta/gatesim.hpp"

#include "common/error.hpp"
#include "common/rng.hpp"

namespace focs::dta {

GateLevelSimulation::GateLevelSimulation(const timing::SyntheticNetlist& netlist,
                                         const timing::DelayCalculator& calculator,
                                         double sim_period_factor)
    : netlist_(netlist), calculator_(calculator) {
    check(sim_period_factor >= 1.0, "gate-sim clock must be at or below the STA frequency");
    sim_period_ps_ = calculator.static_period_ps() * sim_period_factor;
    std::size_t total_endpoints = 0;
    for (int s = 0; s < sim::kStageCount; ++s) {
        stage_endpoints_[static_cast<std::size_t>(s)] =
            netlist.endpoints_of_stage(static_cast<sim::Stage>(s));
        check(!stage_endpoints_[static_cast<std::size_t>(s)].empty(),
              "netlist has a stage without endpoints");
        total_endpoints += stage_endpoints_[static_cast<std::size_t>(s)].size();
    }
    cycle_events_.reserve(total_endpoints);
}

GateLevelSimulation::GateLevelSimulation(const timing::SyntheticNetlist& netlist,
                                         const timing::DelayCalculator& calculator,
                                         EventSink& sink, double sim_period_factor)
    : GateLevelSimulation(netlist, calculator, sim_period_factor) {
    sink_ = &sink;
}

void GateLevelSimulation::on_cycle(const sim::CycleRecord& record) {
    const timing::CycleDelays delays = calculator_.evaluate(record);

    TraceEntry trace_entry;
    trace_entry.cycle = record.cycle;
    trace_entry.keys = attribution_keys(record);

    cycle_events_.clear();
    for (int s = 0; s < sim::kStageCount; ++s) {
        const auto& endpoints = stage_endpoints_[static_cast<std::size_t>(s)];
        const double required = delays.stage_ps[static_cast<std::size_t>(s)];
        // One endpoint carries the stage's worst arrival this cycle; the
        // others settle earlier. The pick rotates pseudo-randomly, like the
        // shifting worst endpoint of a real design.
        const std::size_t worst_pick = static_cast<std::size_t>(
            splitmix64(record.cycle * 31 + static_cast<std::uint64_t>(s)) % endpoints.size());
        for (std::size_t i = 0; i < endpoints.size(); ++i) {
            const timing::Endpoint& endpoint = netlist_.endpoint(endpoints[i]);
            const double endpoint_required =
                i == worst_pick
                    ? required
                    : required * (0.45 + 0.5 * hash_unit_double(splitmix64(
                                                   record.cycle * 131 + endpoint.id * 7919ULL)));
            EndpointEvent event;
            event.cycle = record.cycle;
            event.endpoint_id = endpoint.id;
            // The data pin settles `setup` before the "virtual" capture
            // deadline; the clock edge at this endpoint is skewed.
            event.data_arrival_ps = endpoint_required + endpoint.skew_ps - endpoint.setup_ps;
            event.clock_edge_ps = sim_period_ps_ + endpoint.skew_ps;
            cycle_events_.push_back(event);
        }
    }
    ++cycles_observed_;

    if (sink_ != nullptr) {
        sink_->consume_cycle(trace_entry, cycle_events_);
        return;
    }
    reference_delays_.push_back(delays.stage_ps);
    trace_.add(trace_entry);
    event_log_.append(cycle_events_);
}

}  // namespace focs::dta
