#include "dta/gatesim.hpp"

#include "common/error.hpp"
#include "common/rng.hpp"

namespace focs::dta {

GateLevelSimulation::GateLevelSimulation(const timing::SyntheticNetlist& netlist,
                                         const timing::DelayCalculator& calculator,
                                         double sim_period_factor)
    : soa_(netlist.endpoint_soa()), calculator_(calculator) {
    check(sim_period_factor >= 1.0, "gate-sim clock must be at or below the STA frequency");
    sim_period_ps_ = calculator.static_period_ps() * sim_period_factor;
    for (int s = 0; s < sim::kStageCount; ++s) {
        check(soa_.stage_size(s) > 0, "netlist has a stage without endpoints");
    }
    cycle_events_.reserve(soa_.size());
}

GateLevelSimulation::GateLevelSimulation(const timing::SyntheticNetlist& netlist,
                                         const timing::DelayCalculator& calculator,
                                         EventSink& sink, double sim_period_factor)
    : GateLevelSimulation(netlist, calculator, sim_period_factor) {
    sink_ = &sink;
}

void GateLevelSimulation::on_cycle(const sim::CycleRecord& record) {
    const timing::CycleDelays delays = calculator_.evaluate(record);

    TraceEntry trace_entry;
    trace_entry.cycle = record.cycle;
    trace_entry.keys = attribution_keys(record);

    cycle_events_.clear();
    for (int s = 0; s < sim::kStageCount; ++s) {
        const std::size_t begin = soa_.stage_begin[static_cast<std::size_t>(s)];
        const std::size_t end = soa_.stage_begin[static_cast<std::size_t>(s) + 1];
        const double required = delays.stage_ps[static_cast<std::size_t>(s)];
        // One endpoint carries the stage's worst arrival this cycle; the
        // others settle earlier. The pick rotates pseudo-randomly, like the
        // shifting worst endpoint of a real design.
        const std::size_t worst_pick = static_cast<std::size_t>(
            splitmix64(record.cycle * 31 + static_cast<std::uint64_t>(s)) % (end - begin));
        for (std::size_t i = begin; i < end; ++i) {
            const double endpoint_required =
                i - begin == worst_pick
                    ? required
                    : required * (0.45 + 0.5 * hash_unit_double(splitmix64(
                                                   record.cycle * 131 + soa_.jitter_key[i])));
            EndpointEvent event;
            event.cycle = record.cycle;
            event.endpoint_id = soa_.id[i];
            // Events carry the setup-and-skew-normalized arrival directly
            // (the endpoint's dynamic period requirement): the raw data-pin
            // timestamp would be endpoint_required + skew - setup, and the
            // analyzer would immediately undo that shift. Folding the
            // normalization into the producer keeps the recovered per-stage
            // delay an exact floating-point image of the timing model's
            // output, which the voltage-scaling identity of
            // DelayTable::scaled depends on. The clock edge at this endpoint
            // is still skewed.
            event.data_arrival_ps = endpoint_required;
            event.clock_edge_ps = sim_period_ps_ + soa_.skew_ps[i];
            cycle_events_.push_back(event);
        }
    }
    ++cycles_observed_;

    if (sink_ != nullptr) {
        sink_->consume_cycle(trace_entry, cycle_events_);
        return;
    }
    reference_delays_.push_back(delays.stage_ps);
    trace_.add(trace_entry);
    event_log_.append(cycle_events_);
}

}  // namespace focs::dta
