#include "dta/event_log.hpp"

#include <cstdio>
#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace focs::dta {

std::string EventLog::serialize() const {
    std::string out = "event_log v1\n";
    char line[128];
    for (const auto& e : events_) {
        // %.17g keeps doubles bit-exact through the text round trip, so an
        // offline analysis of dumped logs reproduces the in-memory LUT.
        std::snprintf(line, sizeof line, "%llu %d %.17g %.17g\n",
                      static_cast<unsigned long long>(e.cycle), e.endpoint_id, e.data_arrival_ps,
                      e.clock_edge_ps);
        out += line;
    }
    return out;
}

EventLog EventLog::deserialize(const std::string& text) {
    std::istringstream in(text);
    std::string line;
    std::getline(in, line);
    if (trim(line) != "event_log v1") throw ParseError("malformed event log header");
    EventLog log;
    int line_no = 1;
    while (std::getline(in, line)) {
        ++line_no;
        if (trim(line).empty()) continue;
        const auto parts = split_whitespace(line);
        if (parts.size() != 4) throw ParseError("malformed event log entry", line_no);
        EndpointEvent e;
        const auto cycle = parse_int(parts[0]);
        const auto endpoint = parse_int(parts[1]);
        if (!cycle || !endpoint) throw ParseError("malformed event log entry", line_no);
        e.cycle = static_cast<std::uint64_t>(*cycle);
        e.endpoint_id = static_cast<std::int32_t>(*endpoint);
        e.data_arrival_ps = std::stod(parts[2]);
        e.clock_edge_ps = std::stod(parts[3]);
        log.add(e);
    }
    return log;
}

std::string OccupancyTrace::serialize() const {
    std::string out = "occupancy_trace v1\n";
    char line[96];
    for (const auto& t : entries_) {
        std::snprintf(line, sizeof line, "%llu %d %d %d %d %d %d\n",
                      static_cast<unsigned long long>(t.cycle), t.keys[0], t.keys[1], t.keys[2],
                      t.keys[3], t.keys[4], t.keys[5]);
        out += line;
    }
    return out;
}

OccupancyTrace OccupancyTrace::deserialize(const std::string& text) {
    std::istringstream in(text);
    std::string line;
    std::getline(in, line);
    if (trim(line) != "occupancy_trace v1") throw ParseError("malformed occupancy trace header");
    OccupancyTrace trace;
    int line_no = 1;
    while (std::getline(in, line)) {
        ++line_no;
        if (trim(line).empty()) continue;
        const auto parts = split_whitespace(line);
        if (parts.size() != 1 + sim::kStageCount) throw ParseError("malformed trace entry", line_no);
        TraceEntry t;
        const auto cycle = parse_int(parts[0]);
        if (!cycle) throw ParseError("malformed trace entry", line_no);
        t.cycle = static_cast<std::uint64_t>(*cycle);
        for (int s = 0; s < sim::kStageCount; ++s) {
            const auto key = parse_int(parts[static_cast<std::size_t>(s) + 1]);
            if (!key || *key < 0 || *key >= kKeyCount) {
                throw ParseError("trace key out of range", line_no);
            }
            t.keys[static_cast<std::size_t>(s)] = static_cast<OccKey>(*key);
        }
        trace.add(t);
    }
    return trace;
}

}  // namespace focs::dta
