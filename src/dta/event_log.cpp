#include "dta/event_log.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace focs::dta {

void EventLog::append_shifted(const EventLog& other, std::uint64_t cycle_offset) {
    // Geometric growth, not an exact-fit reserve: repeated appends (one per
    // characterization program) would otherwise reallocate and copy the
    // whole log every time — quadratic in the number of programs.
    const std::size_t needed = events_.size() + other.events_.size();
    if (events_.capacity() < needed) {
        events_.reserve(std::max(needed, events_.capacity() * 2));
    }
    for (EndpointEvent event : other.events_) {
        event.cycle += cycle_offset;
        events_.push_back(event);
    }
}

std::string EventLog::serialize() const {
    std::string out = "event_log v1\n";
    // A line is two "%.17g" doubles plus cycle and endpoint id: ~60 bytes on
    // average. Reserving up front avoids repeated growth copies of a
    // multi-megabyte log.
    out.reserve(out.size() + events_.size() * 64);
    char line[128];
    for (const auto& e : events_) {
        // %.17g keeps doubles bit-exact through the text round trip, so an
        // offline analysis of dumped logs reproduces the in-memory LUT.
        const int len =
            std::snprintf(line, sizeof line, "%llu %d %.17g %.17g\n",
                          static_cast<unsigned long long>(e.cycle), e.endpoint_id,
                          e.data_arrival_ps, e.clock_edge_ps);
        out.append(line, static_cast<std::size_t>(len));
    }
    return out;
}

EventLog EventLog::deserialize(const std::string& text) {
    std::istringstream in(text);
    std::string line;
    std::getline(in, line);
    if (trim(line) != "event_log v1") throw ParseError("malformed event log header");
    EventLog log;
    int line_no = 1;
    while (std::getline(in, line)) {
        ++line_no;
        if (trim(line).empty()) continue;
        const auto parts = split_whitespace(line);
        if (parts.size() != 4) throw ParseError("malformed event log entry", line_no);
        EndpointEvent e;
        const auto cycle = parse_int(parts[0]);
        const auto endpoint = parse_int(parts[1]);
        if (!cycle || !endpoint) throw ParseError("malformed event log entry", line_no);
        e.cycle = static_cast<std::uint64_t>(*cycle);
        e.endpoint_id = static_cast<std::int32_t>(*endpoint);
        e.data_arrival_ps = std::stod(parts[2]);
        e.clock_edge_ps = std::stod(parts[3]);
        log.add(e);
    }
    return log;
}

void OccupancyTrace::append_shifted(const OccupancyTrace& other, std::uint64_t cycle_offset) {
    const std::size_t needed = entries_.size() + other.entries_.size();
    if (entries_.capacity() < needed) {
        entries_.reserve(std::max(needed, entries_.capacity() * 2));
    }
    for (TraceEntry entry : other.entries_) {
        entry.cycle += cycle_offset;
        entries_.push_back(entry);
    }
}

std::string OccupancyTrace::serialize() const {
    std::string out = "occupancy_trace v1\n";
    out.reserve(out.size() + entries_.size() * 28);
    char line[96];
    for (const auto& t : entries_) {
        const int len = std::snprintf(line, sizeof line, "%llu %d %d %d %d %d %d\n",
                                      static_cast<unsigned long long>(t.cycle), t.keys[0],
                                      t.keys[1], t.keys[2], t.keys[3], t.keys[4], t.keys[5]);
        out.append(line, static_cast<std::size_t>(len));
    }
    return out;
}

OccupancyTrace OccupancyTrace::deserialize(const std::string& text) {
    std::istringstream in(text);
    std::string line;
    std::getline(in, line);
    if (trim(line) != "occupancy_trace v1") throw ParseError("malformed occupancy trace header");
    OccupancyTrace trace;
    int line_no = 1;
    while (std::getline(in, line)) {
        ++line_no;
        if (trim(line).empty()) continue;
        const auto parts = split_whitespace(line);
        if (parts.size() != 1 + sim::kStageCount) throw ParseError("malformed trace entry", line_no);
        TraceEntry t;
        const auto cycle = parse_int(parts[0]);
        if (!cycle) throw ParseError("malformed trace entry", line_no);
        t.cycle = static_cast<std::uint64_t>(*cycle);
        for (int s = 0; s < sim::kStageCount; ++s) {
            const auto key = parse_int(parts[static_cast<std::size_t>(s) + 1]);
            if (!key || *key < 0 || *key >= kKeyCount) {
                throw ParseError("trace key out of range", line_no);
            }
            t.keys[static_cast<std::size_t>(s)] = static_cast<OccKey>(*key);
        }
        trace.add(t);
    }
    return trace;
}

}  // namespace focs::dta
