// Dynamic timing analysis (the paper's Perl DTA tool + Matlab extraction).
//
// Consumes the endpoint event log and the aligned occupancy trace, and for
// every cycle: recovers per-endpoint dynamic slack (relating each data
// arrival to the *skewed* clock edge of the same endpoint and its setup
// time), groups endpoints into pipeline stages via the pipeline
// specification, takes per-stage maxima, attributes them to the occupying
// instructions, and finally extracts per-(instruction, stage) worst-case
// delays that populate the delay LUT.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/histogram.hpp"
#include "common/stats.hpp"
#include "dta/delay_table.hpp"
#include "dta/event_log.hpp"
#include "timing/netlist.hpp"

namespace focs::dta {

/// Endpoint-side inputs the analyzer needs (stage grouping, setup, skew).
/// This is the "pipeline specification" of paper Fig. 2.
struct PipelineSpec {
    struct EndpointInfo {
        sim::Stage stage = sim::Stage::kAdr;
        double setup_ps = 0;
        double skew_ps = 0;
    };
    std::vector<EndpointInfo> endpoints;  ///< indexed by endpoint id

    static PipelineSpec from_netlist(const timing::SyntheticNetlist& netlist);
};

struct AnalyzerConfig {
    double static_period_ps = 0;  ///< STA fallback / report ceiling
    double lut_guard_ps = 25.0;   ///< guard added on observed maxima
    int min_occurrences = 10;     ///< below: fall back to the static limit
};

/// Aggregated delay statistics of one (instruction key, stage) pair.
struct KeyStageStats {
    std::uint64_t occurrences = 0;
    double max_ps = 0;
    RunningStats stats;
};

class DynamicTimingAnalysis {
public:
    DynamicTimingAnalysis(PipelineSpec spec, AnalyzerConfig config);

    /// Runs the analysis. Events may arrive in any order; the trace must
    /// contain every cycle referenced by an event.
    void analyze(const EventLog& log, const OccupancyTrace& trace);

    // ---- Per-cycle results (paper Figs. 5/6) -------------------------------
    /// Recovered per-cycle per-stage maximum dynamic delays.
    const std::vector<std::array<double, sim::kStageCount>>& cycle_stage_delays() const {
        return cycle_delays_;
    }
    /// Histogram of per-cycle maxima over all stages (Fig. 5).
    Histogram genie_histogram(int bins = 50) const;
    /// Histogram of one stage's per-cycle maximum delays (the "dynamic
    /// slack distributions ... at pipeline stage granularity" of Sec. II-B).
    Histogram stage_histogram(sim::Stage stage, int bins = 50) const;
    /// Mean of the per-cycle maxima: the genie-aided average clock period.
    double genie_mean_period_ps() const;
    /// How often each stage owned the per-cycle maximum (Fig. 6).
    std::array<std::uint64_t, sim::kStageCount> limiting_stage_counts() const {
        return limiting_counts_;
    }
    std::uint64_t cycles() const { return static_cast<std::uint64_t>(cycle_delays_.size()); }

    // ---- Per-instruction results (Table II, Fig. 7) ------------------------
    const KeyStageStats& stats(OccKey key, sim::Stage stage) const;
    /// Delay histogram of one (instruction, stage) pair (Fig. 7 uses l.mul).
    Histogram key_stage_histogram(OccKey key, sim::Stage stage, int bins = 40) const;

    /// Builds the delay LUT: observed max + guard for sufficiently
    /// characterized entries, static fallback otherwise.
    DelayTable build_delay_table() const;

private:
    PipelineSpec spec_;
    AnalyzerConfig config_;
    std::vector<std::array<double, sim::kStageCount>> cycle_delays_;
    std::array<std::uint64_t, sim::kStageCount> limiting_counts_{};
    std::array<std::array<KeyStageStats, sim::kStageCount>, kKeyCount> key_stats_{};
    // Raw samples per (key, stage) for histogram rendering; bounded by
    // sample_cap to keep memory proportional to the characterization run.
    std::array<std::array<std::vector<float>, sim::kStageCount>, kKeyCount> key_samples_;
};

}  // namespace focs::dta
