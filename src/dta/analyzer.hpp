// Dynamic timing analysis (the paper's Perl DTA tool + Matlab extraction).
//
// Consumes the endpoint event log and the aligned occupancy trace, and for
// every cycle: recovers per-endpoint dynamic slack (relating each data
// arrival to the *skewed* clock edge of the same endpoint and its setup
// time), groups endpoints into pipeline stages via the pipeline
// specification, takes per-stage maxima, attributes them to the occupying
// instructions, and finally extracts per-(instruction, stage) worst-case
// delays that populate the delay LUT.
//
// Two ingestion modes share the same extraction arithmetic:
//  - analyze(log, trace): offline analysis of a materialized event log
//    (events in any order), retaining per-cycle delays for figure queries.
//  - consume_cycle(...): incremental streaming mode (EventSink). Events are
//    folded into the per-(key, stage) worst-delay accumulators as they
//    arrive, cycle by cycle; nothing is materialized, so peak memory is
//    independent of the number of cycles. Produces delay tables
//    byte-identical to the materialized path over the same cycle stream.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/histogram.hpp"
#include "common/stats.hpp"
#include "dta/delay_table.hpp"
#include "dta/event_log.hpp"
#include "timing/netlist.hpp"

namespace focs::dta {

/// Endpoint-side inputs the analyzer needs (stage grouping, setup, skew).
/// This is the "pipeline specification" of paper Fig. 2.
struct PipelineSpec {
    struct EndpointInfo {
        sim::Stage stage = sim::Stage::kAdr;
        double setup_ps = 0;
        double skew_ps = 0;
    };
    std::vector<EndpointInfo> endpoints;  ///< indexed by endpoint id

    static PipelineSpec from_netlist(const timing::SyntheticNetlist& netlist);
};

struct AnalyzerConfig {
    double static_period_ps = 0;  ///< STA fallback / report ceiling
    double lut_guard_ps = 25.0;   ///< guard added on observed maxima
    int min_occurrences = 10;     ///< below: fall back to the static limit
    /// Raw samples retained per (key, stage) for histogram rendering; keeps
    /// sample memory bounded for arbitrarily long runs. Beyond the cap a
    /// deterministic reservoir keeps the retained set representative of the
    /// whole run. 0 = unlimited.
    int sample_cap = 8192;
};

/// Fixed resolution of the streaming-mode figure accumulators. Figure
/// queries (genie_histogram, stage_histogram) serve any bin count that
/// divides this (covers the 32/40/50-bin figures of the benches).
inline constexpr int kStreamingFigureBins = 1600;

/// Aggregated delay statistics of one (instruction key, stage) pair.
struct KeyStageStats {
    std::uint64_t occurrences = 0;
    double max_ps = 0;
    RunningStats stats;
};

class DynamicTimingAnalysis final : public EventSink {
public:
    DynamicTimingAnalysis(PipelineSpec spec, AnalyzerConfig config);

    /// Runs the offline analysis. Events may arrive in any order; the trace
    /// must contain every cycle referenced by an event. Cannot be combined
    /// with streaming ingestion on the same instance.
    void analyze(const EventLog& log, const OccupancyTrace& trace);

    /// Streaming ingestion (EventSink): folds one cycle's endpoint events
    /// and occupancy into the accumulators. Call once per cycle, in cycle
    /// order; chain multiple programs by simply continuing to call it.
    void consume_cycle(const TraceEntry& entry,
                       std::span<const EndpointEvent> events) override;

    /// Batched streaming ingestion: folds a block of cycles whose endpoint
    /// events were already reduced to per-stage maxima by the batch
    /// endpoint kernel (BatchCharacterizationEngine). Cycles must arrive in
    /// order across calls; produces accumulator states byte-identical to
    /// consume_cycle over the same per-cycle event streams.
    void consume_batch(std::span<const FoldedCycle> batch);

    // ---- Per-cycle results (paper Figs. 5/6) -------------------------------
    /// Recovered per-cycle per-stage maximum dynamic delays. Materialized
    /// mode only: empty after streaming ingestion (nothing is retained).
    const std::vector<std::array<double, sim::kStageCount>>& cycle_stage_delays() const {
        return cycle_delays_;
    }
    /// Histogram of per-cycle maxima over all stages (Fig. 5). In streaming
    /// mode `bins` must divide kStreamingFigureBins.
    Histogram genie_histogram(int bins = 50) const;
    /// Histogram of one stage's per-cycle maximum delays (the "dynamic
    /// slack distributions ... at pipeline stage granularity" of Sec. II-B).
    /// In streaming mode `bins` must divide kStreamingFigureBins.
    Histogram stage_histogram(sim::Stage stage, int bins = 50) const;
    /// Mean of the per-cycle maxima: the genie-aided average clock period.
    double genie_mean_period_ps() const;
    /// How often each stage owned the per-cycle maximum (Fig. 6).
    std::array<std::uint64_t, sim::kStageCount> limiting_stage_counts() const {
        return limiting_counts_;
    }
    std::uint64_t cycles() const { return cycles_; }

    // ---- Per-instruction results (Table II, Fig. 7) ------------------------
    const KeyStageStats& stats(OccKey key, sim::Stage stage) const;
    /// Delay histogram of one (instruction, stage) pair (Fig. 7 uses l.mul).
    Histogram key_stage_histogram(OccKey key, sim::Stage stage, int bins = 40) const;

    /// Builds the delay LUT: observed max + guard for sufficiently
    /// characterized entries, static fallback otherwise.
    DelayTable build_delay_table() const;

private:
    /// Shared extraction step of both modes: limiting-stage attribution and
    /// per-(key, stage) statistics for one cycle. Returns the cycle's worst
    /// stage delay (the genie period of that cycle).
    double accumulate_cycle(const std::array<OccKey, sim::kStageCount>& keys,
                            const std::array<double, sim::kStageCount>& delays);

    /// Enters streaming mode on first use (allocates the fixed-resolution
    /// figure accumulators) and rejects mixing with analyze().
    void ensure_streaming();

    /// Streaming fold of one cycle whose per-stage delays are already
    /// reduced; shared by consume_cycle and consume_batch.
    void fold_cycle_delays(const std::array<OccKey, sim::kStageCount>& keys,
                           const std::array<double, sim::kStageCount>& delays);

    PipelineSpec spec_;
    AnalyzerConfig config_;
    std::uint64_t cycles_ = 0;
    bool streaming_ = false;
    std::vector<std::array<double, sim::kStageCount>> cycle_delays_;
    std::array<std::uint64_t, sim::kStageCount> limiting_counts_{};
    std::array<std::array<KeyStageStats, sim::kStageCount>, kKeyCount> key_stats_{};
    // Raw samples per (key, stage) for histogram rendering; reservoir-
    // bounded by config_.sample_cap to keep memory independent of the run
    // length while remaining representative of the whole run.
    std::array<std::array<std::vector<float>, sim::kStageCount>, kKeyCount> key_samples_;
    // Streaming-mode figure accumulators (fixed binning, constant memory):
    // [0] = genie (per-cycle maxima), [1 + stage] = per-stage delays.
    std::vector<Histogram> figure_hists_;
    RunningStats genie_stats_;
};

}  // namespace focs::dta
