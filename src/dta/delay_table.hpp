// Per-instruction / per-stage delay lookup table (the LUT of paper Fig. 1).
//
// Rows are occupancy keys: one per opcode plus `bubble` (squashed/empty
// pipeline slot) and `held` (stalled slot). Columns are the six pipeline
// stages. Entries hold the worst dynamic delay observed during
// characterization (plus the guard band); uncharacterized entries fall back
// to the static timing limit, exactly as the paper handles instructions
// with too few occurrences in the characterization benchmark. Each entry is
// stored split into its scalable raw maximum and the voltage-independent
// guard band, so one nominal characterization serves every operating point
// through exact scaled() views (see DelayTable::scaled).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "isa/opcode.hpp"
#include "sim/cycle_record.hpp"

namespace focs::dta {

/// Row index into the delay table.
using OccKey = std::int16_t;

inline constexpr OccKey kKeyBubble = isa::kOpcodeCount;
inline constexpr OccKey kKeyHeld = isa::kOpcodeCount + 1;
inline constexpr int kKeyCount = isa::kOpcodeCount + 2;

/// Occupancy key of one stage slot (opcode, bubble, or held).
OccKey key_of(const sim::StageView& view);

/// Per-stage attribution keys for one cycle. Matches the timing model's
/// attribution rules: the ADR stage is charged to the redirecting
/// control-transfer instruction on redirect cycles (DESIGN.md,
/// "ADR attribution"); a held divider stays charged as l.div.
std::array<OccKey, sim::kStageCount> attribution_keys(const sim::CycleRecord& record);

/// Display name for a key: mnemonic, "<bubble>" or "<held>".
std::string_view key_name(OccKey key);

class DelayTable {
public:
    /// `static_period_ps` is the STA clock period used as fallback;
    /// `lut_guard_ps` is the guard band added on top of raw characterized
    /// maxima by set_characterized().
    explicit DelayTable(double static_period_ps = 0, double lut_guard_ps = 0);

    double static_period_ps() const { return static_period_ps_; }
    double lut_guard_ps() const { return lut_guard_ps_; }

    /// Sets an entry directly (legacy/manual form). The final LUT value is
    /// stored as-is, with no raw/guard decomposition, so the table loses
    /// its exact-rescaling property: scaled() falls back to multiplying
    /// finished entries.
    void set(OccKey key, sim::Stage stage, double delay_ps);

    /// Sets a characterized entry from the RAW observed maximum (before the
    /// guard band): the finished LUT value becomes
    /// min(raw_max_ps + lut_guard_ps, static_period_ps). Keeping the raw
    /// maximum lets scaled() reproduce a per-voltage reference
    /// characterization bit-identically (scale the raw part, then re-apply
    /// the voltage-independent guard band and the scaled static clamp).
    void set_characterized(OccKey key, sim::Stage stage, double raw_max_ps);

    /// True while every entry was produced by set_characterized(): the
    /// table carries raw maxima and scaled() is an exact reference-
    /// characterization image. A single legacy set() clears it for good.
    bool has_raw() const { return has_raw_; }

    /// Raw characterized maximum (before guard band); only meaningful when
    /// has_raw() and characterized(key, stage).
    double raw(OccKey key, sim::Stage stage) const {
        return raw_[static_cast<std::size_t>(key)][static_cast<std::size_t>(stage)];
    }

    /// True when characterization produced an entry for (key, stage).
    bool characterized(OccKey key, sim::Stage stage) const;

    /// Characterized delay, or the static period as a safe fallback.
    double lookup(OccKey key, sim::Stage stage) const;

    /// Clock period for a whole cycle: max over stages of lookup(keys[s], s)
    /// (paper eq. 2).
    double cycle_period_ps(const std::array<OccKey, sim::kStageCount>& keys) const;

    /// Fused attribution + lookup fast path for the per-cycle policy hot
    /// loop: equivalent to cycle_period_ps(attribution_keys(record)) but
    /// derives each stage's key inline and reads the fallback-resolved
    /// entry directly (no intermediate key array, no per-stage range
    /// checks — keys produced by attribution are in range by construction).
    double cycle_period_ps(const sim::CycleRecord& record) const;

    /// Unchecked fallback-resolved read for the replay engine's SoA policy
    /// kernels: identical to lookup(), but a single indexed load. `key`
    /// must come from attribution (in range by construction).
    double effective(OccKey key, sim::Stage stage) const {
        return effective_[static_cast<std::size_t>(key)][static_cast<std::size_t>(stage)];
    }

    /// Voltage view: retargets the table to another operating point by
    /// `factor` (the cell library's delay-scale ratio). This is the paper's
    /// proposed "(online-)updating of the used delay prediction table".
    /// For a table built with set_characterized() (has_raw()), the view is
    /// bit-identical to re-running the characterization at the target
    /// operating point: the per-voltage reference computes
    ///   min(fl(fl(raw * factor) + guard), fl(static * factor))
    /// because per-cycle delays scale as fl(unit * factor) and max commutes
    /// with multiplication by a positive constant under IEEE rounding
    /// (rounding monotonicity), and scaled() evaluates exactly that
    /// expression. Legacy tables (manual set(), v1 deserialization) fall
    /// back to multiplying finished entries, which matches the pre-split
    /// semantics but not a reference characterization bit-for-bit.
    DelayTable scaled(double factor) const;

    /// Serialization (text, one line per characterized entry). Raw-backed
    /// tables emit the v2 format (guard band in the header, full-precision
    /// raw maxima); legacy tables keep emitting v1. deserialize() accepts
    /// both.
    std::string serialize() const;
    static DelayTable deserialize(const std::string& text);

    /// Resident size for cache byte budgeting: the table is a fixed-shape
    /// value type (key x stage arrays), so its footprint is its own size.
    std::uint64_t estimated_bytes() const { return sizeof *this; }

private:
    double static_period_ps_;
    double lut_guard_ps_;
    /// Sticky raw-backed flag: true until the first legacy set().
    bool has_raw_ = true;
    std::array<std::array<double, sim::kStageCount>, kKeyCount> delays_{};
    std::array<std::array<bool, sim::kStageCount>, kKeyCount> present_{};
    /// Raw characterized maxima (before the guard band); the scalable part
    /// of each entry. Only maintained by set_characterized().
    std::array<std::array<double, sim::kStageCount>, kKeyCount> raw_{};
    /// Fallback-resolved view of the table: the characterized delay where
    /// present, the static period otherwise. Maintained by set() /
    /// set_characterized() so the per-cycle hot path is a plain load per
    /// stage.
    std::array<std::array<double, sim::kStageCount>, kKeyCount> effective_{};
};

}  // namespace focs::dta
