// Endpoint event log — the equivalent of the paper's TSSI event log
// produced by SDF gate-level simulation.
//
// For every clock cycle and sequential endpoint the log records the
// endpoint's dynamic delay requirement (the last data-input event already
// normalized by the endpoint's setup margin and clock skew) and the arrival
// of the next active clock edge at that same endpoint (which differs per
// endpoint because of clock skew). The dynamic timing analyzer recovers
// per-endpoint slack from exactly these two timestamps, as described in
// paper Sec. II-B.2; producers pre-normalize the arrival so the recovered
// requirement is an exact floating-point image of the timing model output
// (the invariant behind DelayTable's scaled voltage views).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "dta/delay_table.hpp"
#include "sim/cycle_record.hpp"

namespace focs::dta {

struct EndpointEvent {
    std::uint64_t cycle = 0;
    std::int32_t endpoint_id = 0;
    double data_arrival_ps = 0;  ///< setup/skew-normalized last data-pin event
    double clock_edge_ps = 0;    ///< next capture edge at this endpoint
};

/// Per-cycle pipeline occupancy attribution (the "PC trace + disassembly"
/// side input of the paper's flow, already aligned to stages).
struct TraceEntry {
    std::uint64_t cycle = 0;
    std::array<OccKey, sim::kStageCount> keys{};
};

/// One cycle of a characterization batch after the endpoint kernel reduced
/// the per-endpoint events to per-stage maxima: the occupancy attribution
/// plus the worst recovered data-arrival requirement of every stage. Blocks
/// of these are folded straight into the DynamicTimingAnalysis accumulators
/// (consume_batch) without materializing any EndpointEvent.
struct FoldedCycle {
    std::uint64_t cycle = 0;
    std::array<OccKey, sim::kStageCount> keys{};
    std::array<double, sim::kStageCount> stage_ps{};
};

/// Per-cycle consumer of the gate-level endpoint event stream: the streaming
/// counterpart of a materialized (EventLog, OccupancyTrace) pair. A producer
/// (GateLevelSimulation) invokes consume_cycle exactly once per simulated
/// cycle, in cycle order, with the cycle's occupancy attribution and every
/// endpoint event of that cycle. Consumers fold events on the fly, so peak
/// memory stays independent of the number of simulated cycles instead of
/// materializing the O(cycles x endpoints) log.
class EventSink {
public:
    virtual ~EventSink() = default;

    /// `events` is only valid for the duration of the call (producers reuse
    /// a scratch buffer); `entry.cycle` and every event's `cycle` refer to
    /// the producer's local cycle counter.
    virtual void consume_cycle(const TraceEntry& entry,
                               std::span<const EndpointEvent> events) = 0;
};

/// In-memory event log with text (de)serialization.
class EventLog {
public:
    void add(EndpointEvent event) { events_.push_back(event); }
    /// Bulk-appends a batch of events (e.g. one cycle's scratch buffer).
    void append(std::span<const EndpointEvent> events) {
        events_.insert(events_.end(), events.begin(), events.end());
    }
    /// Bulk-appends one producer's events, shifting cycles by `cycle_offset`
    /// (concatenating per-program timelines into one global timeline).
    void append_shifted(const EventLog& other, std::uint64_t cycle_offset);
    const std::vector<EndpointEvent>& events() const { return events_; }
    std::size_t size() const { return events_.size(); }

    std::string serialize() const;
    static EventLog deserialize(const std::string& text);

private:
    std::vector<EndpointEvent> events_;
};

/// Occupancy trace with text (de)serialization.
class OccupancyTrace {
public:
    void add(TraceEntry entry) { entries_.push_back(entry); }
    /// Bulk-appends another trace with its cycles shifted by `cycle_offset`.
    void append_shifted(const OccupancyTrace& other, std::uint64_t cycle_offset);
    const std::vector<TraceEntry>& entries() const { return entries_; }
    std::size_t size() const { return entries_.size(); }

    std::string serialize() const;
    static OccupancyTrace deserialize(const std::string& text);

private:
    std::vector<TraceEntry> entries_;
};

}  // namespace focs::dta
