// Endpoint event log — the equivalent of the paper's TSSI event log
// produced by SDF gate-level simulation.
//
// For every clock cycle and sequential endpoint the log records the time of
// the last data-input event and the arrival of the next active clock edge
// at that same endpoint (which differs per endpoint because of clock skew).
// The dynamic timing analyzer recovers per-endpoint slack from exactly
// these two timestamps, as described in paper Sec. II-B.2.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dta/delay_table.hpp"
#include "sim/cycle_record.hpp"

namespace focs::dta {

struct EndpointEvent {
    std::uint64_t cycle = 0;
    std::int32_t endpoint_id = 0;
    double data_arrival_ps = 0;  ///< last data-pin event, relative to launch edge
    double clock_edge_ps = 0;    ///< next capture edge at this endpoint
};

/// Per-cycle pipeline occupancy attribution (the "PC trace + disassembly"
/// side input of the paper's flow, already aligned to stages).
struct TraceEntry {
    std::uint64_t cycle = 0;
    std::array<OccKey, sim::kStageCount> keys{};
};

/// In-memory event log with text (de)serialization.
class EventLog {
public:
    void add(EndpointEvent event) { events_.push_back(event); }
    const std::vector<EndpointEvent>& events() const { return events_; }
    std::size_t size() const { return events_.size(); }

    std::string serialize() const;
    static EventLog deserialize(const std::string& text);

private:
    std::vector<EndpointEvent> events_;
};

/// Occupancy trace with text (de)serialization.
class OccupancyTrace {
public:
    void add(TraceEntry entry) { entries_.push_back(entry); }
    const std::vector<TraceEntry>& entries() const { return entries_; }
    std::size_t size() const { return entries_.size(); }

    std::string serialize() const;
    static OccupancyTrace deserialize(const std::string& text);

private:
    std::vector<TraceEntry> entries_;
};

}  // namespace focs::dta
