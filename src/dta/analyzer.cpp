#include "dta/analyzer.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace focs::dta {

using sim::Stage;

PipelineSpec PipelineSpec::from_netlist(const timing::SyntheticNetlist& netlist) {
    PipelineSpec spec;
    spec.endpoints.resize(netlist.endpoints().size());
    for (const auto& endpoint : netlist.endpoints()) {
        spec.endpoints[static_cast<std::size_t>(endpoint.id)] = {endpoint.stage, endpoint.setup_ps,
                                                                 endpoint.skew_ps};
    }
    return spec;
}

DynamicTimingAnalysis::DynamicTimingAnalysis(PipelineSpec spec, AnalyzerConfig config)
    : spec_(std::move(spec)), config_(config) {
    check(!spec_.endpoints.empty(), "pipeline specification has no endpoints");
    check(config_.static_period_ps > 0, "analyzer needs the static period as fallback");
}

double DynamicTimingAnalysis::accumulate_cycle(
    const std::array<OccKey, sim::kStageCount>& keys,
    const std::array<double, sim::kStageCount>& delays) {
    int limiting = 0;
    for (int s = 1; s < sim::kStageCount; ++s) {
        if (delays[static_cast<std::size_t>(s)] > delays[static_cast<std::size_t>(limiting)]) {
            limiting = s;
        }
    }
    ++limiting_counts_[static_cast<std::size_t>(limiting)];

    for (int s = 0; s < sim::kStageCount; ++s) {
        const OccKey key = keys[static_cast<std::size_t>(s)];
        const double delay = delays[static_cast<std::size_t>(s)];
        auto& ks = key_stats_[static_cast<std::size_t>(key)][static_cast<std::size_t>(s)];
        ++ks.occurrences;
        ks.max_ps = std::max(ks.max_ps, delay);
        ks.stats.add(delay);
        auto& samples = key_samples_[static_cast<std::size_t>(key)][static_cast<std::size_t>(s)];
        const auto cap = static_cast<std::size_t>(config_.sample_cap);
        if (config_.sample_cap <= 0 || samples.size() < cap) {
            samples.push_back(static_cast<float>(delay));
        } else {
            // Deterministic reservoir sampling: each of the ks.occurrences
            // observations ends up in the retained set with equal
            // probability, so capped histograms stay representative of the
            // whole run instead of its first cap cycles. Hash-derived
            // indices keep reruns (and the streaming, batched and
            // materialized paths, which see the same sequence)
            // bit-identical. The hash is mapped into [0, occurrences) with
            // a fixed-point multiply (Lemire reduction) — a 64-bit modulo
            // here costs a hardware divide per stage per cycle in the
            // characterization hot loop.
            const std::uint64_t slot = splitmix64(
                (static_cast<std::uint64_t>(key) << 40) ^
                (static_cast<std::uint64_t>(s) << 32) ^ ks.occurrences);
            const auto r = static_cast<std::uint64_t>(
                (static_cast<unsigned __int128>(slot) * ks.occurrences) >> 64);
            if (r < cap) {
                samples[static_cast<std::size_t>(r)] = static_cast<float>(delay);
            }
        }
    }
    return delays[static_cast<std::size_t>(limiting)];
}

void DynamicTimingAnalysis::analyze(const EventLog& log, const OccupancyTrace& trace) {
    check(!streaming_, "cannot mix materialized analysis with streaming ingestion");
    // One-shot: a second analyze() would reset the per-cycle state but keep
    // accumulating key statistics, leaving the instance inconsistent.
    check(cycles_ == 0, "analyze() may only be called once per instance");
    const std::uint64_t cycles = trace.size();
    cycle_delays_.assign(cycles, {});
    limiting_counts_ = {};
    cycles_ = cycles;

    // Phase 1 (per-endpoint slack -> per-stage grouping -> per-cycle maxima).
    // The paper identifies, per endpoint and cycle, the last data event and
    // relates it to the *next* clock edge at the same endpoint. Events carry
    // the arrival already normalized by setup and skew (see
    // GateLevelSimulation::on_cycle), so the dynamic delay requirement is
    // the arrival field itself — an exact read, with no re-rounding between
    // the timing model and the per-stage maxima.
    for (const auto& event : log.events()) {
        check(event.cycle < cycles, "event log references a cycle beyond the trace");
        const auto id = static_cast<std::size_t>(event.endpoint_id);
        check(id < spec_.endpoints.size(), "event log references an unknown endpoint");
        const auto& info = spec_.endpoints[id];
        const double required = event.data_arrival_ps;
        // Dynamic slack against the gate-sim clock (kept as a sanity check
        // that the relaxed simulation clock never violated timing).
        const double slack = event.clock_edge_ps - event.data_arrival_ps - info.skew_ps;
        check(slack >= 0, "gate-level simulation clock violated an endpoint");
        auto& stage_delay =
            cycle_delays_[event.cycle][static_cast<std::size_t>(info.stage)];
        stage_delay = std::max(stage_delay, required);
    }

    // Phase 2: limiting-stage attribution and per-instruction extraction.
    for (const auto& entry : trace.entries()) {
        check(entry.cycle < cycles, "trace cycle out of range");
        accumulate_cycle(entry.keys, cycle_delays_[entry.cycle]);
    }
}

void DynamicTimingAnalysis::ensure_streaming() {
    check(cycle_delays_.empty(), "cannot mix streaming ingestion with materialized analysis");
    if (streaming_) return;
    streaming_ = true;
    // Constant-size figure accumulators replacing the per-cycle delay
    // vector of the materialized mode.
    const double hi = config_.static_period_ps * 1.02;
    figure_hists_.reserve(1 + sim::kStageCount);
    for (int i = 0; i < 1 + sim::kStageCount; ++i) {
        figure_hists_.emplace_back(0.0, hi, kStreamingFigureBins);
    }
}

void DynamicTimingAnalysis::fold_cycle_delays(
    const std::array<OccKey, sim::kStageCount>& keys,
    const std::array<double, sim::kStageCount>& delays) {
    const double worst = accumulate_cycle(keys, delays);
    genie_stats_.add(worst);
    figure_hists_[0].add(worst);
    for (int s = 0; s < sim::kStageCount; ++s) {
        figure_hists_[static_cast<std::size_t>(1 + s)].add(delays[static_cast<std::size_t>(s)]);
    }
    ++cycles_;
}

void DynamicTimingAnalysis::consume_cycle(const TraceEntry& entry,
                                          std::span<const EndpointEvent> events) {
    ensure_streaming();

    // Same slack recovery as analyze() phase 1, folded into a stack-local
    // per-stage array instead of the materialized per-cycle vector.
    std::array<double, sim::kStageCount> delays{};
    for (const auto& event : events) {
        const auto id = static_cast<std::size_t>(event.endpoint_id);
        check(id < spec_.endpoints.size(), "event stream references an unknown endpoint");
        const auto& info = spec_.endpoints[id];
        const double required = event.data_arrival_ps;
        const double slack = event.clock_edge_ps - event.data_arrival_ps - info.skew_ps;
        check(slack >= 0, "gate-level simulation clock violated an endpoint");
        auto& stage_delay = delays[static_cast<std::size_t>(info.stage)];
        stage_delay = std::max(stage_delay, required);
    }

    fold_cycle_delays(entry.keys, delays);
}

void DynamicTimingAnalysis::consume_batch(std::span<const FoldedCycle> batch) {
    ensure_streaming();
    // The endpoint kernel already reduced each cycle's events to per-stage
    // maxima with the exact slack arithmetic of consume_cycle, so the fold
    // is a straight block replay of the shared extraction step.
    for (const FoldedCycle& cycle : batch) fold_cycle_delays(cycle.keys, cycle.stage_ps);
}

Histogram DynamicTimingAnalysis::genie_histogram(int bins) const {
    if (streaming_) return figure_hists_[0].coarsened(bins);
    Histogram h(0.0, config_.static_period_ps * 1.02, bins);
    for (const auto& delays : cycle_delays_) {
        h.add(*std::max_element(delays.begin(), delays.end()));
    }
    return h;
}

Histogram DynamicTimingAnalysis::stage_histogram(sim::Stage stage, int bins) const {
    if (streaming_) {
        return figure_hists_[1 + static_cast<std::size_t>(stage)].coarsened(bins);
    }
    Histogram h(0.0, config_.static_period_ps * 1.02, bins);
    for (const auto& delays : cycle_delays_) {
        h.add(delays[static_cast<std::size_t>(stage)]);
    }
    return h;
}

double DynamicTimingAnalysis::genie_mean_period_ps() const {
    if (streaming_) return genie_stats_.mean();
    RunningStats stats;
    for (const auto& delays : cycle_delays_) {
        stats.add(*std::max_element(delays.begin(), delays.end()));
    }
    return stats.mean();
}

const KeyStageStats& DynamicTimingAnalysis::stats(OccKey key, Stage stage) const {
    check(key >= 0 && key < kKeyCount, "key out of range");
    return key_stats_[static_cast<std::size_t>(key)][static_cast<std::size_t>(stage)];
}

Histogram DynamicTimingAnalysis::key_stage_histogram(OccKey key, Stage stage, int bins) const {
    Histogram h(0.0, config_.static_period_ps * 1.02, bins);
    check(key >= 0 && key < kKeyCount, "key out of range");
    for (const float sample :
         key_samples_[static_cast<std::size_t>(key)][static_cast<std::size_t>(stage)]) {
        h.add(sample);
    }
    return h;
}

DelayTable DynamicTimingAnalysis::build_delay_table() const {
    // The table keeps the raw observed maximum and the guard band separate
    // (set_characterized applies min(raw + guard, static)), so a nominal
    // table can be retargeted to any operating point as an exact scaled()
    // view instead of re-characterizing per voltage.
    DelayTable table(config_.static_period_ps, config_.lut_guard_ps);
    for (OccKey key = 0; key < kKeyCount; ++key) {
        for (int s = 0; s < sim::kStageCount; ++s) {
            const auto& ks = key_stats_[static_cast<std::size_t>(key)][static_cast<std::size_t>(s)];
            if (ks.occurrences < static_cast<std::uint64_t>(config_.min_occurrences)) continue;
            table.set_characterized(key, static_cast<Stage>(s), ks.max_ps);
        }
    }
    return table;
}

}  // namespace focs::dta
