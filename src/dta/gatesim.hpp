// "Gate-level simulation" observer.
//
// Attaches to the cycle-accurate pipeline and produces, per cycle, the
// endpoint event stream (data arrivals vs. per-endpoint clock edges) that
// the paper obtains from SDF-annotated ModelSim runs, plus the aligned
// occupancy trace. The pipeline runs at a deliberately relaxed simulation
// clock (paper: "at a low clock frequency") so every arrival is observable.
//
// Two output modes:
//  - materialized (default): events and trace accumulate in an EventLog /
//    OccupancyTrace for offline analysis, serialization and golden tests;
//    also records the ground-truth per-cycle reference delays.
//  - streaming: construct with an EventSink; each cycle's events are built
//    in a reused scratch buffer and handed to the sink immediately, so the
//    observer allocates nothing per cycle and peak memory is independent of
//    the number of simulated cycles.
#pragma once

#include <array>
#include <vector>

#include "dta/event_log.hpp"
#include "sim/cycle_record.hpp"
#include "timing/delay_model.hpp"
#include "timing/netlist.hpp"

namespace focs::dta {

class GateLevelSimulation : public sim::PipelineObserver {
public:
    /// Materialized mode. `netlist` and `calculator` must outlive the
    /// observer. `sim_period_factor` sets the relaxed gate-sim clock as a
    /// multiple of the design's static period.
    GateLevelSimulation(const timing::SyntheticNetlist& netlist,
                        const timing::DelayCalculator& calculator,
                        double sim_period_factor = 1.25);

    /// Streaming mode: every cycle is forwarded to `sink` instead of being
    /// materialized. `sink` must outlive the observer.
    GateLevelSimulation(const timing::SyntheticNetlist& netlist,
                        const timing::DelayCalculator& calculator, EventSink& sink,
                        double sim_period_factor = 1.25);

    void on_cycle(const sim::CycleRecord& record) override;

    /// Materialized-mode accessors (empty in streaming mode).
    const EventLog& event_log() const { return event_log_; }
    const OccupancyTrace& trace() const { return trace_; }
    double sim_period_ps() const { return sim_period_ps_; }
    std::uint64_t cycles_observed() const { return cycles_observed_; }

    /// Ground-truth per-cycle stage delays (used by tests to verify that
    /// the analyzer recovers them exactly from the event log). Materialized
    /// mode only.
    const std::vector<std::array<double, sim::kStageCount>>& reference_delays() const {
        return reference_delays_;
    }

private:
    /// Stage-major SoA endpoint view (contiguous skew/setup/hash-key loads;
    /// the per-endpoint jitter-hash constants are precomputed here instead
    /// of being rederived per endpoint per cycle).
    const timing::EndpointSoA& soa_;
    const timing::DelayCalculator& calculator_;
    EventSink* sink_ = nullptr;
    double sim_period_ps_;
    std::vector<EndpointEvent> cycle_events_;  ///< per-cycle scratch, reused
    std::uint64_t cycles_observed_ = 0;
    EventLog event_log_;
    OccupancyTrace trace_;
    std::vector<std::array<double, sim::kStageCount>> reference_delays_;
};

}  // namespace focs::dta
