// "Gate-level simulation" observer.
//
// Attaches to the cycle-accurate pipeline and produces, per cycle, the
// endpoint event stream (data arrivals vs. per-endpoint clock edges) that
// the paper obtains from SDF-annotated ModelSim runs, plus the aligned
// occupancy trace. The pipeline runs at a deliberately relaxed simulation
// clock (paper: "at a low clock frequency") so every arrival is observable.
#pragma once

#include <array>
#include <vector>

#include "dta/event_log.hpp"
#include "sim/cycle_record.hpp"
#include "timing/delay_model.hpp"
#include "timing/netlist.hpp"

namespace focs::dta {

class GateLevelSimulation : public sim::PipelineObserver {
public:
    /// `netlist` and `calculator` must outlive the observer.
    /// `sim_period_factor` sets the relaxed gate-sim clock as a multiple of
    /// the design's static period.
    GateLevelSimulation(const timing::SyntheticNetlist& netlist,
                        const timing::DelayCalculator& calculator,
                        double sim_period_factor = 1.25);

    void on_cycle(const sim::CycleRecord& record) override;

    const EventLog& event_log() const { return event_log_; }
    const OccupancyTrace& trace() const { return trace_; }
    double sim_period_ps() const { return sim_period_ps_; }

    /// Ground-truth per-cycle stage delays (used by tests to verify that
    /// the analyzer recovers them exactly from the event log).
    const std::vector<std::array<double, sim::kStageCount>>& reference_delays() const {
        return reference_delays_;
    }

private:
    const timing::SyntheticNetlist& netlist_;
    const timing::DelayCalculator& calculator_;
    double sim_period_ps_;
    std::array<std::vector<int>, sim::kStageCount> stage_endpoints_;
    EventLog event_log_;
    OccupancyTrace trace_;
    std::vector<std::array<double, sim::kStageCount>> reference_delays_;
};

}  // namespace focs::dta
