#include "dta/batch_engine.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "obs/span_tracer.hpp"

namespace focs::dta {

namespace {

/// Ring depth: one slot being filled, one being merged, plus one in flight
/// per worker keeps every thread busy without unbounded buffering.
std::size_t ring_slots(int threads) { return static_cast<std::size_t>(threads) + 2; }

[[noreturn]] void throw_violated_endpoint() {
    throw Error("gate-level simulation clock violated an endpoint");
}

#ifndef FOCS_OBS_COMPILE_OUT
/// Pipeline-stage metrics of the batched engine, on the global registry.
/// All sites fire per batch / per shard / per stall — never per cycle or
/// per endpoint — so the disabled cost is one relaxed load at each.
struct BatchObsIds {
    obs::MetricsRegistry::Id batches, cycles, producer_stalls, shard_kernels, merges,
        ring_occupancy;
    explicit BatchObsIds(obs::MetricsRegistry& m)
        : batches(m.counter("dta.batches_published")),
          cycles(m.counter("dta.cycles_batched")),
          producer_stalls(m.counter("dta.producer_stalls")),
          shard_kernels(m.counter("dta.shard_kernels")),
          merges(m.counter("dta.merges")),
          ring_occupancy(m.gauge("dta.ring_occupancy")) {}
};

const BatchObsIds& batch_obs_ids() {
    static const BatchObsIds ids(obs::global_metrics());
    return ids;
}
#endif

}  // namespace

// ---------------------------------------------------------------- parallel

struct BatchCharacterizationEngine::Impl {
    struct Slot {
        std::vector<std::uint64_t> cycles;
        std::vector<std::array<OccKey, sim::kStageCount>> keys;
        std::vector<std::array<double, sim::kStageCount>> stage_ps;
        std::size_t count = 0;
        /// Per-shard partial per-stage maxima, [shard][cycle][stage] flat.
        std::vector<double> partial;
        int next_shard = 0;
        int shards_done = 0;
        enum class State { kFree, kKernel, kMerge } state = State::kFree;
    };

    std::vector<Slot> ring;
    /// Slots are processed strictly in sequence order: the producer fills
    /// slot produce_seq, workers drain any published slot, the merger folds
    /// slot merge_seq. merge_seq <= produce_seq < merge_seq + ring.size().
    std::uint64_t produce_seq = 0;
    std::uint64_t merge_seq = 0;
    bool producer_owns = false;  ///< producer is filling ring[produce_seq % n]
    bool stopping = false;
    std::exception_ptr error;

    std::mutex mutex;
    std::condition_variable work_cv;   ///< workers: kernel work / stop
    std::condition_variable space_cv;  ///< producer: next slot freed
    std::condition_variable merge_cv;  ///< merger: oldest slot kernel-done

    std::vector<std::thread> workers;
    std::thread merger;

    Slot* find_kernel_work(int shard_count) {
        for (std::uint64_t seq = merge_seq; seq < produce_seq; ++seq) {
            Slot& slot = ring[seq % ring.size()];
            if (slot.state == Slot::State::kKernel && slot.next_shard < shard_count) return &slot;
        }
        return nullptr;
    }

    void fail(std::exception_ptr e) {
        std::lock_guard<std::mutex> lock(mutex);
        if (!error) error = e;
        work_cv.notify_all();
        space_cv.notify_all();
        merge_cv.notify_all();
    }
};

BatchCharacterizationEngine::BatchCharacterizationEngine(
    const timing::SyntheticNetlist& netlist, const timing::DelayCalculator& calculator,
    DynamicTimingAnalysis& analysis, BatchOptions options, double sim_period_factor)
    : soa_(netlist.endpoint_soa()),
      calculator_(calculator),
      analysis_(analysis),
      options_(options) {
    check(sim_period_factor >= 1.0, "gate-sim clock must be at or below the STA frequency");
    check(options_.batch_cycles >= 1, "batch needs at least one cycle per slot");
    check(options_.batch_cycles <= (1 << 24), "implausible batch slot size");
    check(options_.threads <= 256, "implausible endpoint-kernel thread count");
    sim_period_ps_ = calculator.static_period_ps() * sim_period_factor;
    for (int s = 0; s < sim::kStageCount; ++s) {
        check(soa_.stage_size(s) > 0, "netlist has a stage without endpoints");
    }

    // Contiguous endpoint shards over the stage-major SoA order; each shard
    // precomputes the stage segments it overlaps so the kernel's inner loop
    // is branch-free over a flat [begin, end) run.
    const std::size_t total = soa_.size();
    const auto shard_count =
        static_cast<std::size_t>(std::clamp(options_.threads, 1, static_cast<int>(total)));
    shards_.resize(shard_count);
    for (std::size_t shard = 0; shard < shard_count; ++shard) {
        const std::size_t begin = total * shard / shard_count;
        const std::size_t end = total * (shard + 1) / shard_count;
        for (int s = 0; s < sim::kStageCount; ++s) {
            Segment seg;
            seg.stage = s;
            seg.stage_first = soa_.stage_begin[static_cast<std::size_t>(s)];
            seg.stage_size = soa_.stage_size(s);
            seg.begin = std::max(begin, seg.stage_first);
            seg.end = std::min(end, soa_.stage_begin[static_cast<std::size_t>(s) + 1]);
            if (seg.begin < seg.end) shards_[shard].push_back(seg);
        }
    }

    const auto batch = static_cast<std::size_t>(options_.batch_cycles);
    if (options_.threads <= 1) {
        serial_cycles_.resize(batch);
        serial_keys_.resize(batch);
        serial_stage_ps_.resize(batch);
        serial_partial_.resize(batch * sim::kStageCount);
        fold_scratch_.resize(batch);
        return;
    }

    impl_ = std::make_unique<Impl>();
    impl_->ring.resize(ring_slots(options_.threads));
    for (Impl::Slot& slot : impl_->ring) {
        slot.cycles.resize(batch);
        slot.keys.resize(batch);
        slot.stage_ps.resize(batch);
        slot.partial.resize(shards_.size() * batch * sim::kStageCount);
    }
    fold_scratch_.resize(batch);

    Impl* impl = impl_.get();
    const int worker_count = options_.threads;
    const auto worker_main = [this, impl, shard_count = static_cast<int>(shards_.size())] {
        for (;;) {
            Impl::Slot* slot = nullptr;
            int shard = -1;
            {
                std::unique_lock<std::mutex> lock(impl->mutex);
                impl->work_cv.wait(lock, [&] {
                    return impl->error || impl->stopping ||
                           impl->find_kernel_work(shard_count) != nullptr;
                });
                if (impl->error) return;
                slot = impl->find_kernel_work(shard_count);
                if (slot == nullptr) {
                    if (impl->stopping) return;
                    continue;
                }
                shard = slot->next_shard++;
            }
            try {
                FOCS_OBS_SPAN(span, obs::global_tracer(), "dta.shard_kernel");
                span.arg("shard", static_cast<std::int64_t>(shard))
                    .arg("cycles", static_cast<std::int64_t>(slot->count));
                FOCS_OBS(obs::global_metrics().add(batch_obs_ids().shard_kernels));
                const std::size_t stride = slot->cycles.size() * sim::kStageCount;
                run_shard(shards_[static_cast<std::size_t>(shard)], slot->cycles.data(),
                          slot->stage_ps.data(), slot->count,
                          slot->partial.data() + static_cast<std::size_t>(shard) * stride);
            } catch (...) {
                impl->fail(std::current_exception());
                return;
            }
            {
                std::lock_guard<std::mutex> lock(impl->mutex);
                if (++slot->shards_done == shard_count) {
                    slot->state = Impl::Slot::State::kMerge;
                    impl->merge_cv.notify_one();
                }
            }
        }
    };
    const auto merger_main = [this, impl] {
        for (;;) {
            Impl::Slot* slot = nullptr;
            {
                std::unique_lock<std::mutex> lock(impl->mutex);
                impl->merge_cv.wait(lock, [&] {
                    if (impl->error) return true;
                    if (impl->merge_seq < impl->produce_seq) {
                        return impl->ring[impl->merge_seq % impl->ring.size()].state ==
                               Impl::Slot::State::kMerge;
                    }
                    return impl->stopping;
                });
                if (impl->error) return;
                if (impl->merge_seq == impl->produce_seq) return;  // stopping, drained
                slot = &impl->ring[impl->merge_seq % impl->ring.size()];
            }
            try {
                FOCS_OBS_SPAN(span, obs::global_tracer(), "dta.merge");
                span.arg("cycles", static_cast<std::int64_t>(slot->count));
                FOCS_OBS(obs::global_metrics().add(batch_obs_ids().merges));
                // Deterministic shard-order max-merge of the partial per-
                // stage maxima, then one block fold into the analyzer.
                const std::size_t stride = slot->cycles.size() * sim::kStageCount;
                for (std::size_t c = 0; c < slot->count; ++c) {
                    FoldedCycle& fold = fold_scratch_[c];
                    fold.cycle = slot->cycles[c];
                    fold.keys = slot->keys[c];
                    fold.stage_ps.fill(0.0);
                    for (std::size_t shard = 0; shard < shards_.size(); ++shard) {
                        const double* row =
                            slot->partial.data() + shard * stride + c * sim::kStageCount;
                        for (int s = 0; s < sim::kStageCount; ++s) {
                            const auto stage = static_cast<std::size_t>(s);
                            if (row[stage] > fold.stage_ps[stage]) fold.stage_ps[stage] = row[stage];
                        }
                    }
                }
                analysis_.consume_batch({fold_scratch_.data(), slot->count});
            } catch (...) {
                impl->fail(std::current_exception());
                return;
            }
            {
                std::lock_guard<std::mutex> lock(impl->mutex);
                slot->count = 0;
                slot->next_shard = 0;
                slot->shards_done = 0;
                slot->state = Impl::Slot::State::kFree;
                ++impl->merge_seq;
                impl->space_cv.notify_one();
            }
        }
    };

    impl_->workers.reserve(static_cast<std::size_t>(worker_count));
    for (int i = 0; i < worker_count; ++i) impl_->workers.emplace_back(worker_main);
    impl_->merger = std::thread(merger_main);
}

BatchCharacterizationEngine::~BatchCharacterizationEngine() {
    if (impl_ == nullptr || finished_) return;
    {
        std::lock_guard<std::mutex> lock(impl_->mutex);
        impl_->stopping = true;
        impl_->work_cv.notify_all();
        impl_->merge_cv.notify_all();
    }
    for (std::thread& worker : impl_->workers) worker.join();
    if (impl_->merger.joinable()) impl_->merger.join();
}

// -------------------------------------------------------------- the kernel

void BatchCharacterizationEngine::run_shard(const std::vector<Segment>& shard,
                                            const std::uint64_t* cycles,
                                            const std::array<double, sim::kStageCount>* stage_ps,
                                            std::size_t count, double* partial) const {
    const double* skew = soa_.skew_ps.data();
    const std::uint64_t* jitter_key = soa_.jitter_key.data();
    const double sim_period = sim_period_ps_;

    for (std::size_t c = 0; c < count; ++c) {
        const std::uint64_t cycle = cycles[c];
        const std::uint64_t cycle_mix = cycle * 131u;
        double local[sim::kStageCount] = {};
        for (const Segment& seg : shard) {
            const double required = stage_ps[c][static_cast<std::size_t>(seg.stage)];
            // One endpoint of the stage carries the worst arrival this
            // cycle (rotating pseudo-randomly, like the shifting worst
            // endpoint of a real design); the rest settle earlier by a
            // per-endpoint jitter factor derived from ONE fused splitmix64
            // over the precomputed per-endpoint key. The event-emitting
            // producer hashes a second round on top; since every jittered
            // endpoint settles strictly earlier than the worst one, the
            // recovered per-stage maximum — the only value the analyzer
            // accumulates — is identical either way.
            const std::size_t worst =
                splitmix64(cycle * 31 + static_cast<std::uint64_t>(seg.stage)) % seg.stage_size;
            double stage_max = 0;
            for (std::size_t i = seg.begin; i < seg.end; ++i) {
                double endpoint_required = required;
                if (i - seg.stage_first != worst) {
                    endpoint_required *= 0.45 + 0.5 * hash_unit_double(cycle_mix + jitter_key[i]);
                }
                // Fused event production + slack recovery: events carry the
                // normalized requirement directly (see GateLevelSimulation),
                // so the recovered value is the requirement itself. The
                // slack check keeps the exact floating-point expression
                // order of DynamicTimingAnalysis::consume_cycle so the two
                // paths accept/reject identically.
                const double clock_edge = sim_period + skew[i];
                const double slack = clock_edge - endpoint_required - skew[i];
                if (slack < 0) throw_violated_endpoint();
                if (endpoint_required > stage_max) stage_max = endpoint_required;
            }
            local[seg.stage] = stage_max;
        }
        std::memcpy(partial + c * sim::kStageCount, local, sizeof local);
    }
}

// -------------------------------------------------------------- the driver

void BatchCharacterizationEngine::on_cycle(const sim::CycleRecord& record) {
    if (finished_) [[unlikely]] {
        throw Error("batched characterization engine already finished");
    }
    if (impl_ == nullptr) {
        // Slot-boundary cancellation check: one token poll per
        // batch_cycles cycles, nothing on the per-cycle path.
        if (serial_count_ == 0 && options_.cancel != nullptr) {
            options_.cancel->throw_if_cancelled();
        }
        serial_cycles_[serial_count_] = record.cycle;
        serial_keys_[serial_count_] = attribution_keys(record);
        serial_stage_ps_[serial_count_] = calculator_.evaluate(record).stage_ps;
        ++cycles_observed_;
        if (++serial_count_ == serial_cycles_.size()) flush_serial();
        return;
    }

    Impl::Slot& slot = impl_->ring[impl_->produce_seq % impl_->ring.size()];
    if (!impl_->producer_owns) {
        // Slot-boundary cancellation check (see the serial path). Thrown
        // here the exception unwinds through machine.run; the engine's
        // destructor stops and joins the ring threads.
        if (options_.cancel != nullptr) options_.cancel->throw_if_cancelled();
        std::unique_lock<std::mutex> lock(impl_->mutex);
        if (!impl_->error && slot.state != Impl::Slot::State::kFree) {
            // The ring is full: the producer out-ran the kernel/merge
            // stages. The stall count and span show where a slow sweep's
            // characterization time actually went.
            FOCS_OBS(obs::global_metrics().add(batch_obs_ids().producer_stalls));
            FOCS_OBS_SPAN(stall_span, obs::global_tracer(), "dta.producer_stall");
            impl_->space_cv.wait(lock, [&] {
                return impl_->error || slot.state == Impl::Slot::State::kFree;
            });
        }
        if (impl_->error) std::rethrow_exception(impl_->error);
        impl_->producer_owns = true;
    }
    slot.cycles[slot.count] = record.cycle;
    slot.keys[slot.count] = attribution_keys(record);
    slot.stage_ps[slot.count] = calculator_.evaluate(record).stage_ps;
    ++cycles_observed_;
    if (++slot.count == slot.cycles.size()) {
        std::lock_guard<std::mutex> lock(impl_->mutex);
        slot.state = Impl::Slot::State::kKernel;
        ++impl_->produce_seq;
        impl_->producer_owns = false;
        FOCS_OBS({
            obs::MetricsRegistry& metrics = obs::global_metrics();
            metrics.add(batch_obs_ids().batches);
            metrics.add(batch_obs_ids().cycles, slot.cycles.size());
            // Occupancy at publish: slots produced but not yet merged —
            // the pipeline's high-water backlog.
            metrics.gauge_max(batch_obs_ids().ring_occupancy,
                              static_cast<std::int64_t>(impl_->produce_seq - impl_->merge_seq));
        });
        impl_->work_cv.notify_all();
    }
}

void BatchCharacterizationEngine::flush_serial() {
    if (serial_count_ == 0) return;
    FOCS_OBS({
        obs::MetricsRegistry& metrics = obs::global_metrics();
        metrics.add(batch_obs_ids().batches);
        metrics.add(batch_obs_ids().cycles, serial_count_);
    });
    run_shard(shards_[0], serial_cycles_.data(), serial_stage_ps_.data(), serial_count_,
              serial_partial_.data());
    for (std::size_t c = 0; c < serial_count_; ++c) {
        FoldedCycle& fold = fold_scratch_[c];
        fold.cycle = serial_cycles_[c];
        fold.keys = serial_keys_[c];
        const double* row = serial_partial_.data() + c * sim::kStageCount;
        for (int s = 0; s < sim::kStageCount; ++s) {
            fold.stage_ps[static_cast<std::size_t>(s)] = row[s];
        }
    }
    analysis_.consume_batch({fold_scratch_.data(), serial_count_});
    serial_count_ = 0;
}

void BatchCharacterizationEngine::finish() {
    if (finished_) return;
    if (impl_ == nullptr) {
        flush_serial();
        finished_ = true;
        return;
    }

    {
        std::lock_guard<std::mutex> lock(impl_->mutex);
        if (impl_->producer_owns) {
            // Publish the partial tail slot (possibly empty); the merger
            // folds whatever count it carries.
            Impl::Slot& slot = impl_->ring[impl_->produce_seq % impl_->ring.size()];
            slot.state = Impl::Slot::State::kKernel;
            ++impl_->produce_seq;
            impl_->producer_owns = false;
        }
        impl_->stopping = true;
        impl_->work_cv.notify_all();
        impl_->merge_cv.notify_all();
    }
    for (std::thread& worker : impl_->workers) worker.join();
    if (impl_->merger.joinable()) impl_->merger.join();
    finished_ = true;
    if (impl_->error) std::rethrow_exception(impl_->error);
}

}  // namespace focs::dta
