// FOCS-as-a-service: a hardened, long-lived sweep daemon.
//
// The sweep runtime already amortizes artifact builds *within* one process
// run; the server amortizes them *across* requests: a single shared
// ArtifactCache serves every request, so a warm repeat of a sweep performs
// zero characterizations and zero guest simulations (asserted in CI via the
// response's own metrics block). The protocol is the minimal HTTP subset in
// service/http.hpp: POST /sweep with a sweep-spec body returns the standard
// focs-sweep-v5 result JSON with one extra top-level field, "partial"
// (true when any cell failed or was cancelled), plus GET /healthz and
// GET /metricsz for probes.
//
// Robustness model, in the order a request meets it:
//  - Admission control: a single-threaded acceptor (deterministic admission
//    order) parses each request and either queues it or, when the bounded
//    queue is full, sheds it immediately with 503 and a JSON error body
//    carrying ErrorCode::kOverloaded — a parseable, bounded-latency "no"
//    instead of an unbounded pile-up.
//  - Deadlines: X-Focs-Deadline-Ms (or the server-wide default) arms a
//    CancellationToken at *admission*, so queue wait counts against the
//    budget. A fired deadline returns the finished cell prefix as partial
//    results (206) rather than nothing.
//  - Memory: the shared cache runs under a byte budget with LRU eviction
//    (see ArtifactCache); a long-lived daemon's resident set stays bounded
//    no matter how many distinct specs it has served.
//  - Drain: request_drain() (wired to SIGTERM/SIGINT by the CLI via the
//    async-signal-safe signal_fd) stops admitting — the listen socket
//    closes, so new connects are refused — and lets queued + in-flight
//    requests finish under their own deadlines; request_hard_cancel()
//    (second signal) additionally fires every in-flight token and answers
//    queued requests with 503. wait() returns once the last response is
//    written, after which the CLI flushes metrics/trace exports.
//
// Like the cache, the server keeps its counters (requests.{accepted,shed,
// served_ok,served_partial,bad_request,error}, queue depth watermark,
// request latency histogram) on a private always-enabled registry so CI
// can assert exact values regardless of the global --metrics flag.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.hpp"
#include "obs/metrics.hpp"
#include "runtime/artifact_cache.hpp"
#include "runtime/sweep_engine.hpp"
#include "service/http.hpp"

namespace focs::service {

struct ServerConfig {
    /// TCP port on 127.0.0.1; 0 binds an ephemeral port (read it back via
    /// port() after start()).
    int port = 0;
    /// Worker threads evaluating requests concurrently.
    int max_inflight = 2;
    /// Bound of the admission queue: at most max_inflight + queue_depth
    /// requests are open (queued or evaluating) at once; the next one is
    /// shed with 503/kOverloaded. Counted against queued + in-flight so the
    /// shed count does not depend on worker scheduling.
    int queue_depth = 8;
    /// Deadline applied to requests that carry no X-Focs-Deadline-Ms
    /// header; 0 = no default deadline.
    double deadline_default_ms = 0;
    /// ArtifactCache byte budget; 0 = unbounded.
    std::uint64_t cache_budget_bytes = 0;
    /// SweepEngine worker threads per request (0 = hardware concurrency).
    int jobs = 0;
    runtime::EvalMode mode = runtime::EvalMode::kReplay;
    /// Pin replay cells to the scalar reference path (focs serve
    /// --no-simd); byte-identical results, diagnostic escape hatch only.
    bool force_scalar_replay = false;
};

/// Totals of the server's request counters (exact once quiesced).
struct ServerStats {
    std::uint64_t accepted = 0;
    std::uint64_t shed = 0;
    std::uint64_t served_ok = 0;       ///< 200 complete results
    std::uint64_t served_partial = 0;  ///< 206 partial results
    std::uint64_t bad_request = 0;     ///< 4xx
    std::uint64_t error = 0;           ///< 5xx (unexpected)

    std::uint64_t served() const { return served_ok + served_partial; }
};

class SweepServer {
public:
    explicit SweepServer(ServerConfig config);
    ~SweepServer();
    SweepServer(const SweepServer&) = delete;
    SweepServer& operator=(const SweepServer&) = delete;

    /// Binds 127.0.0.1:port, spawns the acceptor and max_inflight workers.
    /// Throws focs::Error when the socket cannot be bound.
    void start();

    /// Blocks until the server drained (every thread joined). Idempotent.
    void wait();

    /// Actual bound port (after start()).
    int port() const { return port_; }

    /// Graceful drain: stop admitting (listen socket closes), finish queued
    /// and in-flight requests under their own deadlines. Thread-safe.
    void request_drain();

    /// Hard drain: additionally fires every in-flight request's token and
    /// answers queued requests with 503. Thread-safe.
    void request_hard_cancel();

    /// Write end of the drain self-pipe: a signal handler may ::write()
    /// 'd' (drain) or 'c' (hard cancel) here — the only async-signal-safe
    /// way to reach the server from SIGTERM/SIGINT.
    int signal_fd() const { return drain_pipe_[1]; }

    bool draining() const;

    const std::shared_ptr<runtime::ArtifactCache>& cache() const { return cache_; }
    const ServerConfig& config() const { return config_; }

    ServerStats stats() const;

    /// Server registry + shared-cache registry, merged (the /metricsz body
    /// and the CLI's post-drain export).
    obs::MetricsSnapshot metrics_snapshot() const;

private:
    /// One admitted request: the connection, the parsed message and the
    /// deadline armed at admission time.
    struct Pending {
        int fd = -1;
        HttpRequest request;
        std::optional<CancellationToken> cancel;
        bool canonical = false;
    };

    void accept_loop();
    void worker_loop(int slot);
    void handle_connection(int fd);
    void admit_or_shed(int fd, HttpRequest request);
    void process(Pending pending);
    void begin_drain_locked(bool hard);
    void respond_and_close(int fd, const HttpResponse& response);

    ServerConfig config_;
    std::shared_ptr<runtime::ArtifactCache> cache_;

    int listen_fd_ = -1;
    int drain_pipe_[2] = {-1, -1};
    int port_ = 0;
    bool started_ = false;
    bool joined_ = false;

    std::thread acceptor_;
    std::vector<std::thread> workers_;

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<Pending> queue_;
    /// Tokens of requests currently being processed, one slot per worker —
    /// what request_hard_cancel() fires.
    std::vector<std::optional<CancellationToken>> active_;
    int inflight_ = 0;
    bool draining_ = false;

    obs::MetricsRegistry metrics_{/*enabled=*/true};
    struct Ids {
        obs::MetricsRegistry::Id accepted, shed, served_ok, served_partial, bad_request, error;
        obs::MetricsRegistry::Id queue_depth, request_ms;
    } ids_;
};

/// The focs-sweep-v5 result JSON with the service's "partial" field
/// injected as the first key (from_json ignores unknown keys, so the body
/// round-trips through the standard parser).
std::string sweep_response_body(const runtime::SweepResult& result, bool include_timing);

/// {"error": message, "error_code": name} — the body of every non-2xx.
std::string error_body(const std::string& message, ErrorCode code);

}  // namespace focs::service
