// Blocking HTTP client + load generator for the sweep daemon.
//
// Two layers: http_request() is a one-shot request/response helper over the
// service's one-request-per-connection protocol (also the test harness's
// way to poke a server), and run_load() is the deterministic load generator
// behind `focs client` — N requests fired by C threads that all start
// together (a latch), so an overload experiment admits or sheds a known
// number of requests regardless of thread startup jitter.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "service/http.hpp"

namespace focs::service {

/// A fully received response. `status` 0 never occurs — transport failures
/// throw focs::Error instead.
struct ClientResponse {
    int status = 0;
    std::string body;
};

/// Sends one request to 127.0.0.1:`port` (or `host`) and reads the full
/// response (Connection: close framing). Throws focs::Error on connect,
/// send or malformed-response failures.
ClientResponse http_request(int port, const HttpRequest& request,
                            const std::string& host = "127.0.0.1");

/// Convenience wrapper: POST /sweep with `spec_text`; `deadline_ms` > 0
/// adds X-Focs-Deadline-Ms, `canonical` requests the canonical document.
ClientResponse post_sweep(int port, const std::string& spec_text, double deadline_ms = 0,
                          bool canonical = false, const std::string& host = "127.0.0.1");

struct LoadOptions {
    int port = 0;
    std::string host = "127.0.0.1";
    std::string spec_text;
    int requests = 1;     ///< total requests to send
    int concurrency = 1;  ///< sender threads (all released simultaneously)
    double deadline_ms = 0;
    bool canonical = false;
};

/// Aggregate outcome of one load run. Per-HTTP-status counts are
/// deterministic when the server's admission window and the request cost
/// make them so; transport errors indicate a test-environment problem.
struct LoadReport {
    std::uint64_t ok = 0;               ///< 200 complete results
    std::uint64_t partial = 0;          ///< 206 partial results
    std::uint64_t shed = 0;             ///< 503 overloaded/draining
    std::uint64_t client_error = 0;     ///< other 4xx
    std::uint64_t server_error = 0;     ///< 5xx
    std::uint64_t transport_error = 0;  ///< no HTTP response at all
    /// Response bodies in request order (empty string on transport error).
    std::vector<std::string> bodies;
    /// HTTP statuses in request order (0 on transport error).
    std::vector<int> statuses;

    std::uint64_t responses() const { return ok + partial + shed + client_error + server_error; }
};

/// Fires options.requests POSTs to /sweep from options.concurrency threads
/// and aggregates the outcomes. Never throws on per-request failures —
/// they land in transport_error.
LoadReport run_load(const LoadOptions& options);

}  // namespace focs::service
