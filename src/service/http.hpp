// Minimal HTTP/1.1 message layer of the sweep service.
//
// Deliberately a subset, sized to what the daemon and its load-generator
// client actually speak: one request per connection (every response carries
// "Connection: close"), Content-Length framing only (no chunked encoding),
// header names case-folded to lowercase. Keeping the wire format HTTP means
// the daemon is scriptable with curl and the responses are self-describing
// (status code + JSON body), without pulling a dependency into the tree.
//
// Robustness limits are enforced at the parse layer so a misbehaving client
// cannot wedge the single-threaded acceptor: bounded header block, bounded
// body, and a socket receive timeout surfaced as ReadOutcome::kTimeout.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace focs::service {

/// Largest accepted request-line + header block, and largest accepted body
/// (sweep specs are small text files; these bounds are generous).
inline constexpr std::size_t kMaxHeaderBytes = 64 * 1024;
inline constexpr std::size_t kMaxBodyBytes = 4 * 1024 * 1024;

struct HttpRequest {
    std::string method;  ///< "GET", "POST", ...
    std::string target;  ///< origin-form, e.g. "/sweep"
    std::map<std::string, std::string> headers;  ///< names lowercased
    std::string body;

    /// Header value by lowercase name, or nullptr when absent.
    const std::string* header(const std::string& name) const;
};

struct HttpResponse {
    int status = 200;
    /// Extra headers; Content-Length, Content-Type and Connection: close
    /// are appended by serialize_response.
    std::vector<std::pair<std::string, std::string>> headers;
    std::string body;
};

/// Reason phrase of the status codes the service emits.
std::string status_reason(int status);

/// How reading one request off a connection ended.
enum class ReadOutcome {
    kOk,
    kClosed,     ///< peer closed before a complete request arrived
    kMalformed,  ///< unparsable request line / headers / length
    kTooLarge,   ///< header block or body over the limits above
    kTimeout,    ///< socket receive timeout expired mid-request
};

/// Reads exactly one request (headers + Content-Length body) from `fd`.
/// Blocking; honours a SO_RCVTIMEO configured by the caller. On anything
/// but kOk, `error` carries a one-line description.
ReadOutcome read_http_request(int fd, HttpRequest& out, std::string& error);

/// Serializes status line + headers + body, appending Content-Length,
/// Content-Type: application/json and Connection: close.
std::string serialize_response(const HttpResponse& response);

/// Blocking full write (EINTR-retrying); false on error (e.g. EPIPE when
/// the peer gave up).
bool write_all(int fd, const std::string& data);

}  // namespace focs::service
