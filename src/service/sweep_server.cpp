#include "service/sweep_server.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>
#include <utility>

#include "common/error.hpp"
#include "runtime/result_io.hpp"
#include "runtime/sweep_spec.hpp"

namespace focs::service {

namespace {

/// Receive timeout on accepted connections: bounds how long a stalled or
/// dead client can occupy the single-threaded acceptor.
constexpr int kRecvTimeoutSeconds = 5;

void close_quietly(int& fd) {
    if (fd >= 0) ::close(fd);
    fd = -1;
}

double ms_since(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
        .count();
}

}  // namespace

std::string sweep_response_body(const runtime::SweepResult& result, bool include_timing) {
    std::string json = runtime::to_json(result, include_timing);
    // to_json's document opens with "{\n"; the service's partial flag slots
    // in as the first key so the rest of the document stays byte-identical
    // to the offline artifact (and from_json skips unknown keys).
    check(json.rfind("{\n", 0) == 0, "unexpected sweep JSON framing");
    json.insert(2, std::string("  \"partial\": ") + (result.complete() ? "false" : "true") +
                       ",\n");
    return json;
}

std::string error_body(const std::string& message, ErrorCode code) {
    return "{\n  \"error\": " + runtime::json_string(message) +
           ",\n  \"error_code\": " + runtime::json_string(error_code_name(code)) + "\n}\n";
}

SweepServer::SweepServer(ServerConfig config)
    : config_(std::move(config)), cache_(std::make_shared<runtime::ArtifactCache>()) {
    check(config_.max_inflight >= 1, "server max_inflight wants >= 1");
    check(config_.queue_depth >= 0, "server queue_depth wants >= 0");
    if (config_.cache_budget_bytes > 0) cache_->set_byte_budget(config_.cache_budget_bytes);
    active_.resize(static_cast<std::size_t>(config_.max_inflight));

    ids_.accepted = metrics_.counter("server.requests.accepted");
    ids_.shed = metrics_.counter("server.requests.shed");
    ids_.served_ok = metrics_.counter("server.requests.served_ok");
    ids_.served_partial = metrics_.counter("server.requests.served_partial");
    ids_.bad_request = metrics_.counter("server.requests.bad_request");
    ids_.error = metrics_.counter("server.requests.error");
    ids_.queue_depth = metrics_.gauge("server.queue.depth");
    ids_.request_ms = metrics_.histogram("server.request_ms", obs::latency_ms_bounds());
}

SweepServer::~SweepServer() {
    if (started_) {
        request_hard_cancel();
        wait();
    }
    close_quietly(drain_pipe_[0]);
    close_quietly(drain_pipe_[1]);
    close_quietly(listen_fd_);
}

void SweepServer::start() {
    check(!started_, "SweepServer::start called twice");

    if (::pipe(drain_pipe_) != 0) throw Error("cannot create drain pipe");
    // Non-blocking read end: the acceptor drains every pending command in
    // one pass. The write end stays blocking — a pipe buffer holds far more
    // single-byte commands than signals can queue.
    ::fcntl(drain_pipe_[0], F_SETFL, O_NONBLOCK);

    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw Error("cannot create listen socket");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(config_.port));
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
        throw Error("cannot bind 127.0.0.1:" + std::to_string(config_.port) + ": " +
                    std::strerror(errno));
    }
    if (::listen(listen_fd_, 64) != 0) throw Error("cannot listen");

    socklen_t len = sizeof addr;
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = static_cast<int>(ntohs(addr.sin_port));

    started_ = true;
    acceptor_ = std::thread([this] { accept_loop(); });
    workers_.reserve(static_cast<std::size_t>(config_.max_inflight));
    for (int slot = 0; slot < config_.max_inflight; ++slot) {
        workers_.emplace_back([this, slot] { worker_loop(slot); });
    }
}

void SweepServer::wait() {
    if (!started_ || joined_) return;
    if (acceptor_.joinable()) acceptor_.join();
    for (auto& worker : workers_) {
        if (worker.joinable()) worker.join();
    }
    joined_ = true;
}

void SweepServer::request_drain() {
    const char cmd = 'd';
    [[maybe_unused]] const ssize_t n = ::write(drain_pipe_[1], &cmd, 1);
}

void SweepServer::request_hard_cancel() {
    const char cmd = 'c';
    [[maybe_unused]] const ssize_t n = ::write(drain_pipe_[1], &cmd, 1);
}

bool SweepServer::draining() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return draining_;
}

ServerStats SweepServer::stats() const {
    return {metrics_.counter_value(ids_.accepted),       metrics_.counter_value(ids_.shed),
            metrics_.counter_value(ids_.served_ok),      metrics_.counter_value(ids_.served_partial),
            metrics_.counter_value(ids_.bad_request),    metrics_.counter_value(ids_.error)};
}

obs::MetricsSnapshot SweepServer::metrics_snapshot() const {
    obs::MetricsSnapshot snapshot = metrics_.snapshot();
    snapshot.merge(cache_->metrics_snapshot());
    return snapshot;
}

void SweepServer::begin_drain_locked(bool hard) {
    draining_ = true;
    if (!hard) return;
    // Hard cancel: fire every in-flight token; queued-but-unstarted
    // requests are answered 503 right here so the workers only ever see an
    // empty queue afterwards.
    for (auto& token : active_) {
        if (token.has_value()) token->request_cancel();
    }
    std::deque<Pending> flushed;
    flushed.swap(queue_);
    for (auto& pending : flushed) {
        metrics_.add(ids_.shed);
        respond_and_close(pending.fd,
                          {503, {}, error_body("server draining", ErrorCode::kOverloaded)});
    }
}

void SweepServer::accept_loop() {
    bool accepting = true;
    for (;;) {
        pollfd fds[2];
        fds[0] = {drain_pipe_[0], POLLIN, 0};
        fds[1] = {listen_fd_, POLLIN, 0};
        // While draining, poll only the pipe (a 'c' may still arrive) with
        // a short timeout so the loop notices the last worker finishing.
        const int rc = ::poll(fds, accepting ? 2 : 1, accepting ? -1 : 50);
        if (rc < 0) {
            if (errno == EINTR) continue;
            break;
        }
        if (fds[0].revents & POLLIN) {
            char cmd = 0;
            bool hard = false;
            while (::read(drain_pipe_[0], &cmd, 1) == 1) {
                if (cmd == 'c') hard = true;
            }
            {
                std::lock_guard<std::mutex> lock(mutex_);
                begin_drain_locked(hard);
            }
            cv_.notify_all();
            if (accepting) {
                // Refuse new connects at the socket layer from here on.
                close_quietly(listen_fd_);
                accepting = false;
            }
        }
        if (accepting && (fds[1].revents & POLLIN)) {
            const int fd = ::accept(listen_fd_, nullptr, nullptr);
            if (fd >= 0) handle_connection(fd);
        }
        if (!accepting) {
            std::lock_guard<std::mutex> lock(mutex_);
            if (queue_.empty() && inflight_ == 0) break;
        }
    }
    cv_.notify_all();
}

void SweepServer::handle_connection(int fd) {
    timeval timeout{kRecvTimeoutSeconds, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);

    HttpRequest request;
    std::string error;
    const ReadOutcome outcome = read_http_request(fd, request, error);
    if (outcome == ReadOutcome::kClosed) {
        close_quietly(fd);
        return;
    }
    if (outcome != ReadOutcome::kOk) {
        metrics_.add(ids_.bad_request);
        respond_and_close(fd, {400, {}, error_body(error, ErrorCode::kUnknown)});
        return;
    }

    if (request.target == "/healthz") {
        const bool draining = this->draining();
        respond_and_close(
            fd, {200, {}, std::string("{\n  \"status\": \"ok\",\n  \"draining\": ") +
                              (draining ? "true" : "false") + "\n}\n"});
        return;
    }
    if (request.target == "/metricsz") {
        respond_and_close(fd, {200, {}, metrics_snapshot().to_json()});
        return;
    }
    if (request.target != "/sweep") {
        metrics_.add(ids_.bad_request);
        respond_and_close(
            fd, {404, {}, error_body("unknown target " + request.target, ErrorCode::kUnknown)});
        return;
    }
    if (request.method != "POST") {
        metrics_.add(ids_.bad_request);
        respond_and_close(fd, {405, {}, error_body("/sweep wants POST", ErrorCode::kUnknown)});
        return;
    }
    admit_or_shed(fd, std::move(request));
}

void SweepServer::admit_or_shed(int fd, HttpRequest request) {
    // The deadline arms at admission so queue wait counts against it, and
    // so a malformed header is rejected before the request occupies a slot.
    Pending pending;
    pending.fd = fd;
    double deadline_ms = config_.deadline_default_ms;
    if (const std::string* value = request.header("x-focs-deadline-ms")) {
        char* end = nullptr;
        deadline_ms = std::strtod(value->c_str(), &end);
        if (end == value->c_str() || *end != '\0' || deadline_ms <= 0) {
            metrics_.add(ids_.bad_request);
            respond_and_close(
                fd, {400, {},
                     error_body("X-Focs-Deadline-Ms wants a positive number, got '" + *value + "'",
                                ErrorCode::kUnknown)});
            return;
        }
    }
    if (deadline_ms > 0) pending.cancel = CancellationToken::with_deadline_ms(deadline_ms);
    if (const std::string* value = request.header("x-focs-canonical")) {
        pending.canonical = (*value == "1" || *value == "true");
    }
    pending.request = std::move(request);

    {
        std::lock_guard<std::mutex> lock(mutex_);
        // Admission window = max_inflight + queue_depth requests open at
        // once. Counting queued + in-flight (not queue length alone) makes
        // the shed count independent of how fast workers pop the queue.
        const std::size_t open = queue_.size() + static_cast<std::size_t>(inflight_);
        const std::size_t window =
            static_cast<std::size_t>(config_.max_inflight + config_.queue_depth);
        if (draining_ || open >= window) {
            metrics_.add(ids_.shed);
            respond_and_close(
                pending.fd,
                {503, {},
                 error_body(draining_ ? "server draining"
                                      : "server overloaded: admission queue full (depth " +
                                            std::to_string(config_.queue_depth) + ")",
                            ErrorCode::kOverloaded)});
            return;
        }
        queue_.push_back(std::move(pending));
        metrics_.add(ids_.accepted);
        metrics_.gauge_max(ids_.queue_depth, static_cast<std::int64_t>(queue_.size()));
    }
    cv_.notify_one();
}

void SweepServer::worker_loop(int slot) {
    for (;;) {
        Pending pending;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [&] { return !queue_.empty() || draining_; });
            if (queue_.empty()) return;  // draining and nothing left
            pending = std::move(queue_.front());
            queue_.pop_front();
            ++inflight_;
            active_[static_cast<std::size_t>(slot)] = pending.cancel;
        }
        process(std::move(pending));
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --inflight_;
            active_[static_cast<std::size_t>(slot)].reset();
        }
        cv_.notify_all();
    }
}

void SweepServer::process(Pending pending) {
    const auto start = std::chrono::steady_clock::now();
    HttpResponse response;
    try {
        const runtime::SweepSpec spec = runtime::SweepSpec::parse(pending.request.body);
        runtime::SweepRunOptions options;
        if (pending.cancel.has_value()) options.cancel = &*pending.cancel;
        options.force_scalar_replay = config_.force_scalar_replay;
        const runtime::SweepEngine engine(config_.jobs, cache_, config_.mode);
        const runtime::SweepResult result = engine.run(spec, options);
        response.status = result.complete() ? 200 : 206;
        response.body = sweep_response_body(result, /*include_timing=*/!pending.canonical);
        metrics_.add(result.complete() ? ids_.served_ok : ids_.served_partial);
    } catch (const Error& e) {
        // Spec parse errors and cache-poisoning failures surface here; the
        // request is answered, never dropped.
        response.status = 400;
        response.body = error_body(e.what(), e.code());
        metrics_.add(ids_.bad_request);
    } catch (const std::exception& e) {
        response.status = 500;
        response.body = error_body(e.what(), ErrorCode::kUnknown);
        metrics_.add(ids_.error);
    }
    respond_and_close(pending.fd, response);
    metrics_.observe(ids_.request_ms, ms_since(start));
}

void SweepServer::respond_and_close(int fd, const HttpResponse& response) {
    if (fd < 0) return;
    if (!write_all(fd, serialize_response(response))) {
        // The peer gave up (EPIPE); nothing sensible to do but log.
        std::fprintf(stderr, "focs-serve: client went away before the response\n");
    }
    ::close(fd);
}

}  // namespace focs::service
