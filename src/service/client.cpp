#include "service/client.hpp"

#include <arpa/inet.h>
#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <netinet/in.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

#include "common/error.hpp"

namespace focs::service {

namespace {

int connect_to(const std::string& host, int port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw Error("cannot create client socket");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        throw Error("bad host address '" + host + "'");
    }
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
        const std::string detail = std::strerror(errno);
        ::close(fd);
        throw Error("cannot connect to " + host + ":" + std::to_string(port) + ": " + detail);
    }
    return fd;
}

std::string serialize_request(const HttpRequest& request) {
    std::string out = request.method + " " + request.target + " HTTP/1.1\r\n";
    out += "Host: focs\r\n";
    for (const auto& [name, value] : request.headers) out += name + ": " + value + "\r\n";
    out += "Content-Length: " + std::to_string(request.body.size()) + "\r\n";
    out += "Connection: close\r\n\r\n";
    out += request.body;
    return out;
}

}  // namespace

ClientResponse http_request(int port, const HttpRequest& request, const std::string& host) {
    const int fd = connect_to(host, port);
    if (!write_all(fd, serialize_request(request))) {
        ::close(fd);
        throw Error("send failed to " + host + ":" + std::to_string(port));
    }
    // Connection: close framing — read to EOF.
    std::string data;
    char chunk[4096];
    for (;;) {
        const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
        if (n < 0) {
            if (errno == EINTR) continue;
            ::close(fd);
            throw Error("recv failed from " + host + ":" + std::to_string(port));
        }
        if (n == 0) break;
        data.append(chunk, static_cast<std::size_t>(n));
    }
    ::close(fd);

    // Status line: HTTP/1.1 SP CODE SP REASON.
    const auto line_end = data.find('\n');
    const auto sp = data.find(' ');
    if (line_end == std::string::npos || sp == std::string::npos || sp > line_end) {
        throw Error("malformed response from " + host + ":" + std::to_string(port));
    }
    ClientResponse response;
    response.status = std::atoi(data.c_str() + sp + 1);
    if (response.status < 100 || response.status > 599) {
        throw Error("malformed response status from " + host + ":" + std::to_string(port));
    }
    auto body = data.find("\r\n\r\n");
    std::size_t body_start = body == std::string::npos ? 0 : body + 4;
    if (body == std::string::npos) {
        body = data.find("\n\n");
        body_start = body == std::string::npos ? data.size() : body + 2;
    }
    response.body = data.substr(body_start);
    return response;
}

ClientResponse post_sweep(int port, const std::string& spec_text, double deadline_ms,
                          bool canonical, const std::string& host) {
    HttpRequest request;
    request.method = "POST";
    request.target = "/sweep";
    request.body = spec_text;
    if (deadline_ms > 0) {
        char buf[48];
        const int len = std::snprintf(buf, sizeof buf, "%.6g", deadline_ms);
        request.headers["X-Focs-Deadline-Ms"].assign(buf, len > 0 ? static_cast<std::size_t>(len) : 0);
    }
    if (canonical) request.headers["X-Focs-Canonical"] = std::string("1");
    return http_request(port, request, host);
}

LoadReport run_load(const LoadOptions& options) {
    const int total = options.requests < 0 ? 0 : options.requests;
    const int threads = options.concurrency < 1 ? 1 : options.concurrency;
    LoadReport report;
    report.bodies.assign(static_cast<std::size_t>(total), "");
    report.statuses.assign(static_cast<std::size_t>(total), 0);

    // Start latch: every sender connects only after all threads exist, so
    // the burst reaches the server as one deterministic admission wave.
    std::mutex gate_mutex;
    std::condition_variable gate_cv;
    bool gate_open = false;
    std::atomic<int> next{0};

    auto sender = [&] {
        {
            std::unique_lock<std::mutex> lock(gate_mutex);
            gate_cv.wait(lock, [&] { return gate_open; });
        }
        for (;;) {
            const int index = next.fetch_add(1);
            if (index >= total) return;
            try {
                const ClientResponse response =
                    post_sweep(options.port, options.spec_text, options.deadline_ms,
                               options.canonical, options.host);
                report.statuses[static_cast<std::size_t>(index)] = response.status;
                report.bodies[static_cast<std::size_t>(index)] = response.body;
            } catch (const std::exception&) {
                // statuses[index] stays 0 = transport error
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int i = 0; i < threads; ++i) pool.emplace_back(sender);
    {
        std::lock_guard<std::mutex> lock(gate_mutex);
        gate_open = true;
    }
    gate_cv.notify_all();
    for (auto& thread : pool) thread.join();

    for (const int status : report.statuses) {
        if (status == 200) {
            ++report.ok;
        } else if (status == 206) {
            ++report.partial;
        } else if (status == 503) {
            ++report.shed;
        } else if (status >= 400 && status < 500) {
            ++report.client_error;
        } else if (status >= 500) {
            ++report.server_error;
        } else {
            ++report.transport_error;
        }
    }
    return report;
}

}  // namespace focs::service
