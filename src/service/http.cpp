#include "service/http.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <sys/socket.h>
#include <unistd.h>

namespace focs::service {

namespace {

std::string to_lower(std::string text) {
    for (char& c : text) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return text;
}

std::string trim(const std::string& text) {
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
    while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
    return text.substr(begin, end - begin);
}

/// One recv with EINTR retry; returns bytes read, 0 on orderly close, -1
/// on error (errno preserved, EAGAIN/EWOULDBLOCK = receive timeout).
ssize_t recv_some(int fd, char* buffer, std::size_t size) {
    for (;;) {
        const ssize_t n = ::recv(fd, buffer, size, 0);
        if (n >= 0 || errno != EINTR) return n;
    }
}

}  // namespace

const std::string* HttpRequest::header(const std::string& name) const {
    const auto it = headers.find(name);
    return it == headers.end() ? nullptr : &it->second;
}

std::string status_reason(int status) {
    switch (status) {
        case 200: return "OK";
        case 206: return "Partial Content";
        case 400: return "Bad Request";
        case 404: return "Not Found";
        case 405: return "Method Not Allowed";
        case 500: return "Internal Server Error";
        case 503: return "Service Unavailable";
        default: return "Unknown";
    }
}

ReadOutcome read_http_request(int fd, HttpRequest& out, std::string& error) {
    // Accumulate until the blank line terminating the header block. Bare
    // "\n" line endings are tolerated alongside "\r\n".
    std::string data;
    std::size_t header_end = std::string::npos;
    std::size_t body_start = 0;
    char chunk[4096];
    while (header_end == std::string::npos) {
        if (data.size() > kMaxHeaderBytes) {
            error = "header block exceeds " + std::to_string(kMaxHeaderBytes) + " bytes";
            return ReadOutcome::kTooLarge;
        }
        const ssize_t n = recv_some(fd, chunk, sizeof chunk);
        if (n == 0) {
            if (data.empty()) {
                error = "connection closed before a request arrived";
                return ReadOutcome::kClosed;
            }
            error = "connection closed mid-headers";
            return ReadOutcome::kMalformed;
        }
        if (n < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                error = "receive timeout while reading headers";
                return ReadOutcome::kTimeout;
            }
            error = "recv failed while reading headers";
            return ReadOutcome::kMalformed;
        }
        data.append(chunk, static_cast<std::size_t>(n));
        if (const auto pos = data.find("\r\n\r\n"); pos != std::string::npos) {
            header_end = pos;
            body_start = pos + 4;
        } else if (const auto lf = data.find("\n\n"); lf != std::string::npos) {
            header_end = lf;
            body_start = lf + 2;
        }
    }

    // Request line: METHOD SP TARGET SP VERSION.
    std::size_t line_end = data.find('\n');
    std::string request_line = trim(data.substr(0, line_end));
    const auto sp1 = request_line.find(' ');
    const auto sp2 = request_line.rfind(' ');
    if (sp1 == std::string::npos || sp2 == sp1) {
        error = "malformed request line: '" + request_line + "'";
        return ReadOutcome::kMalformed;
    }
    out.method = request_line.substr(0, sp1);
    out.target = trim(request_line.substr(sp1 + 1, sp2 - sp1 - 1));
    out.headers.clear();
    out.body.clear();

    // Header fields: "name: value" per line until the blank line.
    std::size_t cursor = line_end + 1;
    while (cursor <= header_end) {
        std::size_t eol = data.find('\n', cursor);
        if (eol == std::string::npos || eol > header_end + 1) eol = header_end + 1;
        const std::string line = trim(data.substr(cursor, eol - cursor));
        cursor = eol + 1;
        if (line.empty()) continue;
        const auto colon = line.find(':');
        if (colon == std::string::npos) {
            error = "malformed header line: '" + line + "'";
            return ReadOutcome::kMalformed;
        }
        out.headers[to_lower(trim(line.substr(0, colon)))] = trim(line.substr(colon + 1));
    }

    // Body: exactly Content-Length bytes (0 when absent).
    std::size_t content_length = 0;
    if (const std::string* value = out.header("content-length")) {
        char* end = nullptr;
        const unsigned long long parsed = std::strtoull(value->c_str(), &end, 10);
        if (end == value->c_str() || *end != '\0') {
            error = "malformed Content-Length: '" + *value + "'";
            return ReadOutcome::kMalformed;
        }
        content_length = static_cast<std::size_t>(parsed);
    }
    if (content_length > kMaxBodyBytes) {
        error = "body of " + std::to_string(content_length) + " bytes exceeds " +
                std::to_string(kMaxBodyBytes);
        return ReadOutcome::kTooLarge;
    }
    out.body = data.substr(body_start);
    while (out.body.size() < content_length) {
        const ssize_t n = recv_some(fd, chunk, sizeof chunk);
        if (n == 0) {
            error = "connection closed mid-body";
            return ReadOutcome::kMalformed;
        }
        if (n < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                error = "receive timeout while reading body";
                return ReadOutcome::kTimeout;
            }
            error = "recv failed while reading body";
            return ReadOutcome::kMalformed;
        }
        out.body.append(chunk, static_cast<std::size_t>(n));
    }
    out.body.resize(content_length);  // drop any pipelined surplus
    return ReadOutcome::kOk;
}

std::string serialize_response(const HttpResponse& response) {
    std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                      status_reason(response.status) + "\r\n";
    for (const auto& [name, value] : response.headers) out += name + ": " + value + "\r\n";
    out += "Content-Type: application/json\r\n";
    out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
    out += "Connection: close\r\n\r\n";
    out += response.body;
    return out;
}

bool write_all(int fd, const std::string& data) {
    std::size_t sent = 0;
    while (sent < data.size()) {
        const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

}  // namespace focs::service
