// Per-cycle pipeline occupancy snapshot.
//
// This is the interface between the microarchitectural simulator and every
// timing consumer (the synthetic "gate-level" delay calculator, the dynamic
// timing analysis flow, and the DCA policies). It corresponds to the paper's
// program trace L[t] aligned to pipeline stages: Is[t] = L[t+1-s].
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "isa/instruction.hpp"

namespace focs::sim {

/// Pipeline stages of the modelled 6-stage mor1kx-style core (paper Fig. 4).
enum class Stage : std::uint8_t { kAdr = 0, kFe, kDc, kEx, kCtrl, kWb };

inline constexpr int kStageCount = 6;

/// Short stage name as used in the paper's figures ("adr", "fe", ...).
std::string_view stage_name(Stage stage);

/// What one pipeline stage holds during one cycle.
struct StageView {
    bool valid = false;        ///< false: bubble (squash or stall slot)
    bool held = false;         ///< repeat occupancy due to a stall (few signal transitions)
    isa::Instruction inst;     ///< decoded instruction when valid
    std::uint32_t pc = 0;
    // Operand/result values, populated from the EX stage onwards; used by the
    // data-dependent delay model.
    std::uint32_t operand_a = 0;
    std::uint32_t operand_b = 0;
    std::uint32_t result = 0;
};

/// One cycle of pipeline activity.
struct CycleRecord {
    std::uint64_t cycle = 0;
    std::array<StageView, kStageCount> stages;

    /// True when the instruction-memory address mux selected a non-sequential
    /// address this cycle (jump/branch target application).
    bool fetch_redirect = false;
    /// Opcode of the control-transfer instruction driving the redirect
    /// (meaningful only when fetch_redirect). The DTA pipeline specification
    /// attributes the long instruction-address paths excited by a redirect to
    /// this instruction (see DESIGN.md, "ADR attribution").
    isa::Opcode redirect_source = isa::Opcode::kInvalid;
    std::uint32_t fetch_addr = 0;  ///< instruction SRAM address driven

    bool dmem_access = false;  ///< data SRAM request issued from EX
    bool dmem_write = false;
    std::uint32_t dmem_addr = 0;

    const StageView& stage(Stage s) const { return stages[static_cast<std::size_t>(s)]; }
};

/// Observer invoked once per simulated cycle (after all stages settled).
class PipelineObserver {
public:
    virtual ~PipelineObserver() = default;
    virtual void on_cycle(const CycleRecord& record) = 0;
};

}  // namespace focs::sim
