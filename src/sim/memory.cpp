#include "sim/memory.hpp"

#include <cstdio>

#include "common/error.hpp"

namespace focs::sim {

Sram::Sram(std::string name, std::uint32_t base, std::uint32_t size)
    : name_(std::move(name)), base_(base), bytes_(size, 0) {
    check(size > 0 && size % 4 == 0, "SRAM size must be a positive multiple of 4");
}

std::uint32_t Sram::offset_checked(std::uint32_t addr, std::uint32_t bytes) const {
    if (!contains(addr, bytes)) {
        char buf[96];
        std::snprintf(buf, sizeof buf, "%s: access to 0x%08x (%u bytes) outside [0x%08x, 0x%08x)",
                      name_.c_str(), addr, bytes, base_, base_ + size());
        throw GuestError(buf);
    }
    if (addr % bytes != 0) {
        char buf[80];
        std::snprintf(buf, sizeof buf, "%s: misaligned %u-byte access to 0x%08x", name_.c_str(),
                      bytes, addr);
        throw GuestError(buf);
    }
    return addr - base_;
}

std::uint8_t Sram::read_u8(std::uint32_t addr) const { return bytes_[offset_checked(addr, 1)]; }

std::uint16_t Sram::read_u16(std::uint32_t addr) const {
    const std::uint32_t o = offset_checked(addr, 2);
    return static_cast<std::uint16_t>(bytes_[o] << 8 | bytes_[o + 1]);
}

std::uint32_t Sram::read_u32(std::uint32_t addr) const {
    const std::uint32_t o = offset_checked(addr, 4);
    return static_cast<std::uint32_t>(bytes_[o]) << 24 | static_cast<std::uint32_t>(bytes_[o + 1]) << 16 |
           static_cast<std::uint32_t>(bytes_[o + 2]) << 8 | bytes_[o + 3];
}

void Sram::write_u8(std::uint32_t addr, std::uint8_t value) {
    bytes_[offset_checked(addr, 1)] = value;
}

void Sram::write_u16(std::uint32_t addr, std::uint16_t value) {
    const std::uint32_t o = offset_checked(addr, 2);
    bytes_[o] = static_cast<std::uint8_t>(value >> 8);
    bytes_[o + 1] = static_cast<std::uint8_t>(value);
}

void Sram::write_u32(std::uint32_t addr, std::uint32_t value) {
    const std::uint32_t o = offset_checked(addr, 4);
    bytes_[o] = static_cast<std::uint8_t>(value >> 24);
    bytes_[o + 1] = static_cast<std::uint8_t>(value >> 16);
    bytes_[o + 2] = static_cast<std::uint8_t>(value >> 8);
    bytes_[o + 3] = static_cast<std::uint8_t>(value);
}

}  // namespace focs::sim
