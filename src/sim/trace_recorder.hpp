// Record-once pipeline traces for replay-many evaluation.
//
// The guest instruction stream and pipeline occupancy of one (program,
// machine config) pair are invariant across every clocking scheme the
// evaluation grid applies to it — only the granted period changes. A
// TraceRecorder therefore captures one canonical run as a PipelineTrace:
// the full per-cycle CycleRecord array (ground truth for delay evaluation
// and for replaying arbitrary ClockPolicy objects) plus stage-major SoA
// occupancy-key rows that let the replay engine's devirtualized policy
// kernels walk whole trace blocks with one indexed load per (stage, cycle).
//
// Layering note: the occupancy-key domain (OccKey, attribution rules) is
// owned by dta/delay_table; the trace pre-applies it at record time so
// every downstream consumer shares one attribution pass per trace instead
// of one per evaluated cell.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "asm/program.hpp"
#include "dta/delay_table.hpp"
#include "sim/cycle_record.hpp"
#include "sim/machine.hpp"

namespace focs::sim {

/// One recorded guest run: everything the evaluation side needs to score
/// any clocking scheme without stepping the machine again. Immutable after
/// recording; safe to share read-only across replay worker threads.
struct PipelineTrace {
    /// Canonical per-cycle records (AoS). Consumed by the per-(trace,
    /// voltage) required-period computation and by the virtual-policy
    /// replay fallback.
    std::vector<CycleRecord> records;
    /// Stage-major SoA occupancy keys: stage_keys[s][c] is the delay-table
    /// row charged to stage s in cycle c (attribution_keys pre-applied, so
    /// ADR redirects and held dividers are already resolved).
    std::array<std::vector<dta::OccKey>, kStageCount> stage_keys;
    /// Guest-architectural outcome of the recorded run.
    RunResult guest;

    std::uint64_t cycles() const { return static_cast<std::uint64_t>(records.size()); }

    /// Resident size for cache byte budgeting: the AoS record array plus
    /// the stage-major SoA key rows (traces dominate the sweep runtime's
    /// memory, so this is the figure LRU eviction is sized around).
    std::uint64_t estimated_bytes() const {
        std::uint64_t total = sizeof *this;
        total += static_cast<std::uint64_t>(records.capacity()) * sizeof(CycleRecord);
        for (const auto& row : stage_keys) {
            total += static_cast<std::uint64_t>(row.capacity()) * sizeof(dta::OccKey);
        }
        return total;
    }
};

/// Observer that captures every cycle of a run into a PipelineTrace.
class TraceRecorder final : public PipelineObserver {
public:
    TraceRecorder() = default;

    /// Pre-sizes the trace arrays (e.g. from a prior run's cycle count).
    void reserve(std::size_t cycles);

    void on_cycle(const CycleRecord& record) override;

    /// Moves the recorded trace out (guest metadata must be filled by the
    /// caller, which owns the RunResult — see record_trace).
    PipelineTrace take() { return std::move(trace_); }

private:
    PipelineTrace trace_;
};

/// Records the canonical trace of one program on one machine configuration.
PipelineTrace record_trace(const assembler::Program& program, const MachineConfig& config = {});

}  // namespace focs::sim
