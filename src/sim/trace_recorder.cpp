#include "sim/trace_recorder.hpp"

namespace focs::sim {

void TraceRecorder::reserve(std::size_t cycles) {
    trace_.records.reserve(cycles);
    for (auto& row : trace_.stage_keys) row.reserve(cycles);
}

void TraceRecorder::on_cycle(const CycleRecord& record) {
    trace_.records.push_back(record);
    const auto keys = dta::attribution_keys(record);
    for (int s = 0; s < kStageCount; ++s) {
        trace_.stage_keys[static_cast<std::size_t>(s)].push_back(
            keys[static_cast<std::size_t>(s)]);
    }
}

PipelineTrace record_trace(const assembler::Program& program, const MachineConfig& config) {
    Machine machine(config);
    machine.load(program);
    TraceRecorder recorder;
    const RunResult guest = machine.run(&recorder);
    PipelineTrace trace = recorder.take();
    trace.guest = guest;
    return trace;
}

}  // namespace focs::sim
