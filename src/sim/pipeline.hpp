// Cycle-accurate model of the customized 6-stage mor1kx-style OpenRISC core
// (paper Fig. 4): ADR, FE, DC, EX, CTRL, WB.
//
// Microarchitectural behaviour (see DESIGN.md for rationale):
//  - Single-cycle tightly-coupled instruction and data SRAMs.
//  - Full forwarding CTRL->EX and WB->EX; flag forwarding for l.sf*/l.bf
//    pairs; write-before-read register file semantics.
//  - Loads read the data SRAM in CTRL; one bubble on load-use hazards.
//  - One architectural branch delay slot (OR1K semantics).
//  - l.j / l.jal targets are computed by the fetch unit while the jump is in
//    FE: taken immediate jumps cost no bubbles.
//  - l.jr / l.jalr / l.bf / l.bnf resolve in EX: 2 bubbles when taken.
//  - Serial divider: l.div / l.divu occupy EX for `div_latency` cycles.
//  - Simulation control via l.nop codes: 0x1 exit (exit code in r3),
//    0x2 report (pushes r3 to the report stream).
#pragma once

#include <cstdint>
#include <vector>

#include "isa/instruction.hpp"
#include "sim/cycle_record.hpp"
#include "sim/memory.hpp"
#include "sim/regfile.hpp"

namespace focs::sim {

/// l.nop immediate codes interpreted by the simulation environment.
inline constexpr std::int32_t kNopExit = 0x1;
inline constexpr std::int32_t kNopReport = 0x2;

struct PipelineConfig {
    int div_latency = 32;  ///< EX occupancy of the serial divider, cycles
};

class Pipeline {
public:
    /// `imem` and `dmem` must outlive the pipeline.
    Pipeline(Sram& imem, Sram& dmem, PipelineConfig config = {});

    /// Resets all architectural and microarchitectural state and starts
    /// fetching at `entry`.
    void reset(std::uint32_t entry);

    /// Advances one clock cycle; fills `record` with this cycle's occupancy.
    /// Returns false once the exit l.nop has retired (the cycle in which it
    /// retires still returns true and is recorded).
    bool step(CycleRecord& record);

    bool exited() const { return exited_; }
    std::uint32_t exit_code() const { return exit_code_; }
    const std::vector<std::uint32_t>& reports() const { return reports_; }

    std::uint64_t cycles() const { return cycle_; }
    std::uint64_t retired_instructions() const { return retired_; }

    RegisterFile& registers() { return regfile_; }
    const RegisterFile& registers() const { return regfile_; }
    bool flag() const { return flag_; }

private:
    struct Slot {
        bool valid = false;
        isa::Instruction inst;
        std::uint32_t pc = 0;
        // Populated during EX:
        std::uint32_t a = 0, b = 0;
        std::uint32_t result = 0;
        std::uint32_t store_data = 0;
        std::uint32_t mem_addr = 0;
        bool writes_reg = false;
        std::uint8_t wreg = 0;
        bool sets_flag = false;
        bool flag_value = false;
        bool is_load = false;
        bool is_store = false;
        // Fetch bookkeeping:
        bool fetched_by_redirect = false;          ///< address mux selected a target
        isa::Opcode redirect_source = isa::Opcode::kInvalid;
        bool held = false;  ///< repeat occupancy due to an upstream stall
    };

    Slot make_fetch_slot(std::uint32_t pc, bool redirect, isa::Opcode source);
    std::uint32_t forward_reg(std::uint8_t reg) const;
    bool forward_flag() const;
    void execute(Slot& slot);
    void commit_wb();
    void ctrl_memory_access();
    static void fill_view(StageView& view, const Slot& slot);

    Sram& imem_;
    Sram& dmem_;
    PipelineConfig config_;
    RegisterFile regfile_;

    // Lazy decode cache over the instruction SRAM: every imem word is
    // decoded at most once per reset() instead of once per fetch. Valid
    // because the guest cannot write imem mid-run (stores only reach dmem)
    // and Machine::load always resets after (re)writing the image.
    std::vector<isa::Instruction> decode_cache_;
    std::vector<std::uint8_t> decoded_;

    Slot adr_, fe_, dc_, ex_, ctrl_, wb_;
    bool flag_ = false;
    int ex_hold_ = 0;  ///< remaining extra EX cycles of a multi-cycle op

    bool exited_ = false;
    std::uint32_t exit_code_ = 0;
    std::vector<std::uint32_t> reports_;
    std::uint64_t cycle_ = 0;
    std::uint64_t retired_ = 0;
};

}  // namespace focs::sim
