#include "sim/reference_iss.hpp"

#include "common/error.hpp"
#include "isa/encoding.hpp"
#include "isa/isa_info.hpp"

namespace focs::sim {

namespace {

using isa::Opcode;

std::uint32_t rotate_right(std::uint32_t value, unsigned amount) {
    amount &= 31u;
    if (amount == 0) return value;
    return value >> amount | value << (32 - amount);
}

}  // namespace

ReferenceIss::ReferenceIss(Sram& imem, Sram& dmem) : imem_(imem), dmem_(dmem) {}

void ReferenceIss::reset(std::uint32_t entry) {
    regfile_.reset();
    flag_ = false;
    pc_ = entry;
    pending_redirect_ = false;
    redirect_target_ = 0;
    exited_ = false;
    exit_code_ = 0;
    reports_.clear();
    executed_ = 0;
}

RunResult ReferenceIss::run(std::uint64_t max_steps) {
    while (!exited_) {
        if (executed_ >= max_steps) throw GuestError("reference ISS: step limit exceeded");
        if (!imem_.contains(pc_, 4) || pc_ % 4 != 0) {
            throw GuestError("reference ISS: bad instruction fetch");
        }
        const isa::Instruction inst = isa::decode(imem_.read_u32(pc_));
        if (inst.opcode == Opcode::kInvalid) {
            throw GuestError("reference ISS: invalid instruction");
        }
        const bool in_delay_slot = pending_redirect_;
        std::uint32_t next = pc_ + 4;
        if (pending_redirect_) {
            next = redirect_target_;
            pending_redirect_ = false;
        }
        if (in_delay_slot && isa::is_control_transfer(inst.opcode)) {
            throw GuestError("reference ISS: control transfer in delay slot");
        }
        execute(inst, pc_);
        ++executed_;
        pc_ = next;
    }
    RunResult result;
    result.exit_code = exit_code_;
    result.cycles = executed_;  // 1 instruction per "cycle" in the reference
    result.instructions = executed_;
    result.reports = reports_;
    return result;
}

void ReferenceIss::execute(const isa::Instruction& inst, std::uint32_t pc) {
    const auto& meta = isa::info(inst.opcode);
    const std::uint32_t a = meta.reads_ra ? regfile_.read(inst.ra) : 0;
    const std::uint32_t b = meta.reads_rb ? regfile_.read(inst.rb) : 0;
    const auto imm = static_cast<std::uint32_t>(inst.imm);
    auto write = [&](std::uint32_t value) { regfile_.write(inst.rd, value); };

    switch (inst.opcode) {
        case Opcode::kAdd: write(a + b); break;
        case Opcode::kAddi: write(a + imm); break;
        case Opcode::kSub: write(a - b); break;
        case Opcode::kAnd: write(a & b); break;
        case Opcode::kAndi: write(a & imm); break;
        case Opcode::kOr: write(a | b); break;
        case Opcode::kOri: write(a | imm); break;
        case Opcode::kXor: write(a ^ b); break;
        case Opcode::kXori: write(a ^ imm); break;
        case Opcode::kMul: write(a * b); break;
        case Opcode::kMulu: write(a * b); break;
        case Opcode::kMuli: write(a * imm); break;
        case Opcode::kDiv: {
            const auto sa = static_cast<std::int32_t>(a);
            const auto sb = static_cast<std::int32_t>(b);
            const bool undefined = sb == 0 || (sa == INT32_MIN && sb == -1);
            write(undefined ? 0u : static_cast<std::uint32_t>(sa / sb));
            break;
        }
        case Opcode::kDivu: write(b == 0 ? 0u : a / b); break;
        case Opcode::kSll: write(a << (b & 31u)); break;
        case Opcode::kSlli: write(a << (imm & 31u)); break;
        case Opcode::kSrl: write(a >> (b & 31u)); break;
        case Opcode::kSrli: write(a >> (imm & 31u)); break;
        case Opcode::kSra:
            write(static_cast<std::uint32_t>(static_cast<std::int32_t>(a) >>
                                             static_cast<std::int32_t>(b & 31u)));
            break;
        case Opcode::kSrai:
            write(static_cast<std::uint32_t>(static_cast<std::int32_t>(a) >>
                                             static_cast<std::int32_t>(imm & 31u)));
            break;
        case Opcode::kRor: write(rotate_right(a, b)); break;
        case Opcode::kRori: write(rotate_right(a, static_cast<unsigned>(inst.imm))); break;
        case Opcode::kExths:
            write(static_cast<std::uint32_t>(
                static_cast<std::int32_t>(static_cast<std::int16_t>(a & 0xffffu))));
            break;
        case Opcode::kExtbs:
            write(static_cast<std::uint32_t>(
                static_cast<std::int32_t>(static_cast<std::int8_t>(a & 0xffu))));
            break;
        case Opcode::kExthz: write(a & 0xffffu); break;
        case Opcode::kExtbz: write(a & 0xffu); break;
        case Opcode::kExtws:
        case Opcode::kExtwz: write(a); break;
        case Opcode::kCmov: write(flag_ ? a : b); break;
        case Opcode::kFf1: write(a == 0 ? 0u : static_cast<std::uint32_t>(__builtin_ctz(a) + 1)); break;
        case Opcode::kFl1: write(a == 0 ? 0u : static_cast<std::uint32_t>(32 - __builtin_clz(a))); break;
        case Opcode::kMovhi: write(imm << 16); break;
        case Opcode::kLwz: write(dmem_.read_u32(a + imm)); break;
        case Opcode::kLbz: write(dmem_.read_u8(a + imm)); break;
        case Opcode::kLbs:
            write(static_cast<std::uint32_t>(
                static_cast<std::int32_t>(static_cast<std::int8_t>(dmem_.read_u8(a + imm)))));
            break;
        case Opcode::kLhz: write(dmem_.read_u16(a + imm)); break;
        case Opcode::kLhs:
            write(static_cast<std::uint32_t>(
                static_cast<std::int32_t>(static_cast<std::int16_t>(dmem_.read_u16(a + imm)))));
            break;
        case Opcode::kSw: dmem_.write_u32(a + imm, b); break;
        case Opcode::kSb: dmem_.write_u8(a + imm, static_cast<std::uint8_t>(b)); break;
        case Opcode::kSh: dmem_.write_u16(a + imm, static_cast<std::uint16_t>(b)); break;
        case Opcode::kJ:
            pending_redirect_ = true;
            redirect_target_ = pc + 4u * imm;
            break;
        case Opcode::kJal:
            write(pc + 8);
            pending_redirect_ = true;
            redirect_target_ = pc + 4u * imm;
            break;
        case Opcode::kJr:
            pending_redirect_ = true;
            redirect_target_ = b;
            break;
        case Opcode::kJalr:
            write(pc + 8);
            pending_redirect_ = true;
            redirect_target_ = b;
            break;
        case Opcode::kBf:
        case Opcode::kBnf:
            if ((inst.opcode == Opcode::kBf) == flag_) {
                pending_redirect_ = true;
                redirect_target_ = pc + 4u * imm;
            }
            break;
        case Opcode::kNop:
            if (inst.imm == kNopExit) {
                exited_ = true;
                exit_code_ = regfile_.read(3);
            } else if (inst.imm == kNopReport) {
                reports_.push_back(regfile_.read(3));
            }
            break;
        case Opcode::kInvalid: check(false, "unreachable"); break;
        default: {
            check(meta.sets_flag, "unhandled opcode in reference ISS");
            const auto sa = static_cast<std::int32_t>(a);
            const std::uint32_t ub = meta.has_immediate ? imm : b;
            const auto sb = static_cast<std::int32_t>(ub);
            switch (inst.opcode) {
                case Opcode::kSfeq: case Opcode::kSfeqi: flag_ = a == ub; break;
                case Opcode::kSfne: case Opcode::kSfnei: flag_ = a != ub; break;
                case Opcode::kSfgtu: case Opcode::kSfgtui: flag_ = a > ub; break;
                case Opcode::kSfgeu: case Opcode::kSfgeui: flag_ = a >= ub; break;
                case Opcode::kSfltu: case Opcode::kSfltui: flag_ = a < ub; break;
                case Opcode::kSfleu: case Opcode::kSfleui: flag_ = a <= ub; break;
                case Opcode::kSfgts: case Opcode::kSfgtsi: flag_ = sa > sb; break;
                case Opcode::kSfges: case Opcode::kSfgesi: flag_ = sa >= sb; break;
                case Opcode::kSflts: case Opcode::kSfltsi: flag_ = sa < sb; break;
                case Opcode::kSfles: case Opcode::kSflesi: flag_ = sa <= sb; break;
                default: check(false, "unhandled set-flag opcode"); break;
            }
            break;
        }
    }

    if (pending_redirect_ && redirect_target_ % 4 != 0) {
        throw GuestError("reference ISS: misaligned branch target");
    }
}

}  // namespace focs::sim
