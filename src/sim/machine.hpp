// Machine: couples the pipeline with its tightly-coupled memories, loads
// program images and runs them to completion.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "asm/program.hpp"
#include "sim/cycle_record.hpp"
#include "sim/memory.hpp"
#include "sim/pipeline.hpp"

namespace focs::sim {

struct MachineConfig {
    std::uint32_t imem_size = 64 * 1024;  ///< instruction SRAM, base 0
    std::uint32_t dmem_base = 0x0010'0000;
    std::uint32_t dmem_size = 64 * 1024;
    std::uint64_t max_cycles = 50'000'000;  ///< watchdog against runaway guests
    PipelineConfig pipeline;
};

/// Result of a completed guest run.
struct RunResult {
    std::uint32_t exit_code = 0;
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    std::vector<std::uint32_t> reports;  ///< values published via l.nop 0x2

    double ipc() const {
        return cycles > 0 ? static_cast<double>(instructions) / static_cast<double>(cycles) : 0.0;
    }
};

class Machine {
public:
    explicit Machine(MachineConfig config = {});

    /// Loads a program image (code bytes below dmem_base go to the
    /// instruction SRAM, the rest to the data SRAM) and resets the pipeline.
    void load(const assembler::Program& program);

    /// Runs until the guest executes the exit nop.
    /// `observer` (optional) receives every cycle record.
    /// Throws focs::GuestError on guest faults or watchdog expiry.
    RunResult run(PipelineObserver* observer = nullptr);

    Pipeline& pipeline() { return *pipeline_; }
    Sram& imem() { return imem_; }
    Sram& dmem() { return dmem_; }
    const MachineConfig& config() const { return config_; }

private:
    MachineConfig config_;
    Sram imem_;
    Sram dmem_;
    std::unique_ptr<Pipeline> pipeline_;
    std::uint32_t entry_ = 0;
};

}  // namespace focs::sim
