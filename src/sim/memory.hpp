// Tightly-coupled SRAM model.
//
// The case-study core uses single-cycle instruction and data SRAM macros
// (paper Sec. III-A). This class models one such macro: a byte array with
// big-endian word order (OpenRISC), bounds-checked accesses, and aligned
// word/half access requirements.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace focs::sim {

class Sram {
public:
    /// `base` is the first byte address served; `size` the capacity in bytes.
    Sram(std::string name, std::uint32_t base, std::uint32_t size);

    std::uint32_t base() const { return base_; }
    std::uint32_t size() const { return static_cast<std::uint32_t>(bytes_.size()); }
    const std::string& name() const { return name_; }

    bool contains(std::uint32_t addr, std::uint32_t bytes = 1) const {
        return addr >= base_ && addr - base_ + bytes <= size();
    }

    std::uint8_t read_u8(std::uint32_t addr) const;
    std::uint16_t read_u16(std::uint32_t addr) const;  ///< requires 2-byte alignment
    std::uint32_t read_u32(std::uint32_t addr) const;  ///< requires 4-byte alignment

    void write_u8(std::uint32_t addr, std::uint8_t value);
    void write_u16(std::uint32_t addr, std::uint16_t value);
    void write_u32(std::uint32_t addr, std::uint32_t value);

private:
    /// Validates range and alignment; throws focs::GuestError on violation.
    std::uint32_t offset_checked(std::uint32_t addr, std::uint32_t bytes) const;

    std::string name_;
    std::uint32_t base_;
    std::vector<std::uint8_t> bytes_;
};

}  // namespace focs::sim
