#include "sim/cycle_record.hpp"

namespace focs::sim {

std::string_view stage_name(Stage stage) {
    switch (stage) {
        case Stage::kAdr: return "adr";
        case Stage::kFe: return "fe";
        case Stage::kDc: return "dc";
        case Stage::kEx: return "ex";
        case Stage::kCtrl: return "ctrl";
        case Stage::kWb: return "wb";
    }
    return "<invalid>";
}

}  // namespace focs::sim
