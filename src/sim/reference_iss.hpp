// Golden-reference instruction set simulator.
//
// A minimal sequential interpreter (one architectural instruction at a
// time, with OR1K delay-slot semantics) used to cross-check the pipelined
// model: after running the same program on both, the register file, flag,
// data memory, report stream and exit code must match exactly.
//
// Caveat: the pipeline executes (but never retires) a few wrong-path/post-
// exit instructions; stores among them could not be compared — which is why
// the program convention requires l.nop padding after the exit nop.
#pragma once

#include <cstdint>

#include "sim/machine.hpp"
#include "sim/memory.hpp"
#include "sim/regfile.hpp"

namespace focs::sim {

class ReferenceIss {
public:
    /// `imem` / `dmem` must outlive the interpreter.
    ReferenceIss(Sram& imem, Sram& dmem);

    void reset(std::uint32_t entry);

    /// Runs until the exit nop executes (or `max_steps` instructions).
    /// Throws focs::GuestError on faults, exactly like the pipeline.
    RunResult run(std::uint64_t max_steps = 50'000'000);

    RegisterFile& registers() { return regfile_; }
    const RegisterFile& registers() const { return regfile_; }
    bool flag() const { return flag_; }

private:
    void execute(const isa::Instruction& inst, std::uint32_t pc);

    Sram& imem_;
    Sram& dmem_;
    RegisterFile regfile_;
    bool flag_ = false;
    std::uint32_t pc_ = 0;
    bool pending_redirect_ = false;
    std::uint32_t redirect_target_ = 0;
    bool exited_ = false;
    std::uint32_t exit_code_ = 0;
    std::vector<std::uint32_t> reports_;
    std::uint64_t executed_ = 0;
};

}  // namespace focs::sim
