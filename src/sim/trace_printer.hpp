// Human-readable pipeline trace (pipeline-viewer style).
//
// An observer that renders, per cycle, the occupancy of all six stages plus
// fetch-redirect and data-memory activity. Used by the CLI (`focs run
// --trace N`) and handy when writing new kernels.
#pragma once

#include <cstdint>
#include <string>

#include "sim/cycle_record.hpp"

namespace focs::sim {

class TracePrinter : public PipelineObserver {
public:
    /// Records at most `max_cycles` cycles (0 = unlimited).
    explicit TracePrinter(std::uint64_t max_cycles = 0) : max_cycles_(max_cycles) {}

    void on_cycle(const CycleRecord& record) override;

    /// The rendered table (header + one row per recorded cycle).
    std::string text() const;

private:
    std::uint64_t max_cycles_;
    std::string rows_;
    std::uint64_t recorded_ = 0;
};

}  // namespace focs::sim
