// 32x32 general-purpose register file (2R1W in the modelled core).
// r0 is hardwired to zero per the OpenRISC architecture.
#pragma once

#include <array>
#include <cstdint>

namespace focs::sim {

class RegisterFile {
public:
    std::uint32_t read(std::uint8_t index) const { return regs_[index & 31u]; }

    void write(std::uint8_t index, std::uint32_t value) {
        if ((index & 31u) != 0) regs_[index & 31u] = value;
    }

    void reset() { regs_.fill(0); }

private:
    std::array<std::uint32_t, 32> regs_{};
};

}  // namespace focs::sim
