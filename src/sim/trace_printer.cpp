#include "sim/trace_printer.hpp"

#include <cstdio>

#include "isa/isa_info.hpp"

namespace focs::sim {

namespace {

/// Fixed-width cell for one stage slot.
std::string cell(const StageView& view) {
    if (!view.valid) return "--------    ";
    std::string name{isa::mnemonic(view.inst.opcode)};
    if (view.held) name += "*";  // stalled occupancy
    name.resize(12, ' ');
    return name;
}

}  // namespace

void TracePrinter::on_cycle(const CycleRecord& record) {
    if (max_cycles_ != 0 && recorded_ >= max_cycles_) return;
    ++recorded_;
    char prefix[32];
    std::snprintf(prefix, sizeof prefix, "%6llu | ",
                  static_cast<unsigned long long>(record.cycle));
    rows_ += prefix;
    for (int s = 0; s < kStageCount; ++s) {
        rows_ += cell(record.stages[static_cast<std::size_t>(s)]);
        rows_ += "| ";
    }
    if (record.fetch_redirect) {
        rows_ += "redirect<-";
        rows_ += isa::mnemonic(record.redirect_source);
    }
    if (record.dmem_access) rows_ += record.dmem_write ? " dmem-wr" : " dmem-rd";
    rows_ += '\n';
}

std::string TracePrinter::text() const {
    std::string header = " cycle | ";
    for (int s = 0; s < kStageCount; ++s) {
        std::string name{stage_name(static_cast<Stage>(s))};
        name.resize(12, ' ');
        header += name + "| ";
    }
    header += "\n";
    header.append(header.size() - 1, '-');
    header += "\n";
    return header + rows_;
}

}  // namespace focs::sim
