#include "sim/pipeline.hpp"

#include <cstdio>

#include "common/error.hpp"
#include "isa/disasm.hpp"
#include "isa/encoding.hpp"
#include "isa/isa_info.hpp"

namespace focs::sim {

namespace {

using isa::Opcode;

std::uint32_t rotate_right(std::uint32_t value, unsigned amount) {
    amount &= 31u;
    if (amount == 0) return value;
    return value >> amount | value << (32 - amount);
}

[[noreturn]] void guest_fault(const char* what, std::uint32_t pc) {
    char buf[96];
    std::snprintf(buf, sizeof buf, "%s at pc=0x%08x", what, pc);
    throw GuestError(buf);
}

}  // namespace

Pipeline::Pipeline(Sram& imem, Sram& dmem, PipelineConfig config)
    : imem_(imem), dmem_(dmem), config_(config) {
    check(config_.div_latency >= 1, "divider latency must be at least 1 cycle");
    decode_cache_.resize(imem_.size() / 4);
    decoded_.assign(imem_.size() / 4, 0);
}

void Pipeline::reset(std::uint32_t entry) {
    regfile_.reset();
    adr_ = fe_ = dc_ = ex_ = ctrl_ = wb_ = Slot{};
    flag_ = false;
    ex_hold_ = 0;
    exited_ = false;
    exit_code_ = 0;
    reports_.clear();
    cycle_ = 0;
    retired_ = 0;
    decoded_.assign(decoded_.size(), 0);  // imem may have been rewritten
    adr_ = make_fetch_slot(entry, false, Opcode::kInvalid);
}

Pipeline::Slot Pipeline::make_fetch_slot(std::uint32_t pc, bool redirect, Opcode source) {
    Slot slot;
    slot.valid = true;
    slot.pc = pc;
    slot.fetched_by_redirect = redirect;
    slot.redirect_source = source;
    // Decode eagerly for trace attribution; wrong-path fetches past the end
    // of the program image decode to kInvalid and are harmless unless they
    // reach EX. Loops hit the decode cache after the first iteration.
    if (pc % 4 == 0 && imem_.contains(pc, 4)) {
        const std::size_t idx = (pc - imem_.base()) / 4;
        if (!decoded_[idx]) {
            decode_cache_[idx] = isa::decode(imem_.read_u32(pc));
            decoded_[idx] = 1;
        }
        slot.inst = decode_cache_[idx];
    } else {
        slot.inst = isa::Instruction{};
    }
    return slot;
}

std::uint32_t Pipeline::forward_reg(std::uint8_t reg) const {
    if (reg == 0) return 0;
    if (ctrl_.valid && ctrl_.writes_reg && ctrl_.wreg == reg) {
        // A load's data is not available from CTRL within the same cycle;
        // the load-use hazard bubble guarantees this is never needed.
        check(!ctrl_.is_load, "load-use forwarding violation");
        return ctrl_.result;
    }
    if (wb_.valid && wb_.writes_reg && wb_.wreg == reg) return wb_.result;
    return regfile_.read(reg);
}

bool Pipeline::forward_flag() const {
    if (ctrl_.valid && ctrl_.sets_flag) return ctrl_.flag_value;
    if (wb_.valid && wb_.sets_flag) return wb_.flag_value;
    return flag_;
}

void Pipeline::commit_wb() {
    if (!wb_.valid) return;
    if (wb_.writes_reg) regfile_.write(wb_.wreg, wb_.result);
    if (wb_.sets_flag) flag_ = wb_.flag_value;
    ++retired_;
    if (wb_.inst.opcode == Opcode::kNop) {
        if (wb_.inst.imm == kNopExit) {
            exited_ = true;
            exit_code_ = regfile_.read(3);
        } else if (wb_.inst.imm == kNopReport) {
            reports_.push_back(regfile_.read(3));
        }
    }
}

void Pipeline::ctrl_memory_access() {
    if (!ctrl_.valid) return;
    const Opcode op = ctrl_.inst.opcode;
    if (ctrl_.is_load) {
        switch (op) {
            case Opcode::kLwz: ctrl_.result = dmem_.read_u32(ctrl_.mem_addr); break;
            case Opcode::kLbz: ctrl_.result = dmem_.read_u8(ctrl_.mem_addr); break;
            case Opcode::kLbs:
                ctrl_.result = static_cast<std::uint32_t>(
                    static_cast<std::int32_t>(static_cast<std::int8_t>(dmem_.read_u8(ctrl_.mem_addr))));
                break;
            case Opcode::kLhz: ctrl_.result = dmem_.read_u16(ctrl_.mem_addr); break;
            case Opcode::kLhs:
                ctrl_.result = static_cast<std::uint32_t>(static_cast<std::int32_t>(
                    static_cast<std::int16_t>(dmem_.read_u16(ctrl_.mem_addr))));
                break;
            default: check(false, "not a load"); break;
        }
    } else if (ctrl_.is_store) {
        switch (op) {
            case Opcode::kSw: dmem_.write_u32(ctrl_.mem_addr, ctrl_.store_data); break;
            case Opcode::kSb:
                dmem_.write_u8(ctrl_.mem_addr, static_cast<std::uint8_t>(ctrl_.store_data));
                break;
            case Opcode::kSh:
                dmem_.write_u16(ctrl_.mem_addr, static_cast<std::uint16_t>(ctrl_.store_data));
                break;
            default: check(false, "not a store"); break;
        }
    }
}

void Pipeline::execute(Slot& s) {
    const isa::Instruction& inst = s.inst;
    const auto& meta = isa::info(inst.opcode);
    if (inst.opcode == Opcode::kInvalid) guest_fault("invalid instruction reached EX", s.pc);

    const std::uint32_t a = meta.reads_ra ? forward_reg(inst.ra) : 0;
    const std::uint32_t b = meta.reads_rb ? forward_reg(inst.rb) : 0;
    const auto imm = static_cast<std::uint32_t>(inst.imm);
    s.a = a;
    s.b = meta.has_immediate && !meta.is_store ? imm : b;
    s.writes_reg = meta.writes_rd && inst.rd != 0;
    s.wreg = inst.rd;
    s.is_load = meta.is_load;
    s.is_store = meta.is_store;

    switch (inst.opcode) {
        case Opcode::kAdd: s.result = a + b; break;
        case Opcode::kAddi: s.result = a + imm; break;
        case Opcode::kSub: s.result = a - b; break;
        case Opcode::kAnd: s.result = a & b; break;
        case Opcode::kAndi: s.result = a & imm; break;
        case Opcode::kOr: s.result = a | b; break;
        case Opcode::kOri: s.result = a | imm; break;
        case Opcode::kXor: s.result = a ^ b; break;
        case Opcode::kXori: s.result = a ^ imm; break;
        case Opcode::kMul: s.result = a * b; break;
        case Opcode::kMuli: s.result = a * imm; break;
        case Opcode::kDiv: {
            const auto sa = static_cast<std::int32_t>(a);
            const auto sb = static_cast<std::int32_t>(b);
            // Division by zero and INT_MIN/-1 produce 0 in this model (the
            // real core flags overflow in SR; no trap in either case).
            const bool undefined = sb == 0 || (sa == INT32_MIN && sb == -1);
            s.result = undefined ? 0u : static_cast<std::uint32_t>(sa / sb);
            break;
        }
        case Opcode::kDivu: s.result = b == 0 ? 0u : a / b; break;
        case Opcode::kSll: s.result = a << (b & 31u); break;
        case Opcode::kSlli: s.result = a << (imm & 31u); break;
        case Opcode::kSrl: s.result = a >> (b & 31u); break;
        case Opcode::kSrli: s.result = a >> (imm & 31u); break;
        case Opcode::kSra:
            s.result = static_cast<std::uint32_t>(static_cast<std::int32_t>(a) >>
                                                  static_cast<std::int32_t>(b & 31u));
            break;
        case Opcode::kSrai:
            s.result = static_cast<std::uint32_t>(static_cast<std::int32_t>(a) >>
                                                  static_cast<std::int32_t>(imm & 31u));
            break;
        case Opcode::kRor: s.result = rotate_right(a, b); break;
        case Opcode::kRori: s.result = rotate_right(a, static_cast<unsigned>(imm)); break;
        case Opcode::kMulu: s.result = a * b; break;
        case Opcode::kExths:
            s.result = static_cast<std::uint32_t>(
                static_cast<std::int32_t>(static_cast<std::int16_t>(a & 0xffffu)));
            break;
        case Opcode::kExtbs:
            s.result = static_cast<std::uint32_t>(
                static_cast<std::int32_t>(static_cast<std::int8_t>(a & 0xffu)));
            break;
        case Opcode::kExthz: s.result = a & 0xffffu; break;
        case Opcode::kExtbz: s.result = a & 0xffu; break;
        case Opcode::kExtws:
        case Opcode::kExtwz: s.result = a; break;
        case Opcode::kCmov: s.result = forward_flag() ? a : b; break;
        case Opcode::kFf1:
            s.result = a == 0 ? 0u : static_cast<std::uint32_t>(__builtin_ctz(a) + 1);
            break;
        case Opcode::kFl1:
            s.result = a == 0 ? 0u : static_cast<std::uint32_t>(32 - __builtin_clz(a));
            break;
        case Opcode::kMovhi: s.result = imm << 16; break;
        case Opcode::kNop: break;
        case Opcode::kJal:
        case Opcode::kJalr: s.result = s.pc + 8; break;  // return past the delay slot
        case Opcode::kJ:
        case Opcode::kJr:
        case Opcode::kBf:
        case Opcode::kBnf: break;  // control handled by the caller
        default: {
            if (meta.sets_flag) {
                const auto sa = static_cast<std::int32_t>(a);
                const std::uint32_t ub = meta.has_immediate ? imm : b;
                const auto sb = static_cast<std::int32_t>(ub);
                bool f = false;
                switch (inst.opcode) {
                    case Opcode::kSfeq: case Opcode::kSfeqi: f = a == ub; break;
                    case Opcode::kSfne: case Opcode::kSfnei: f = a != ub; break;
                    case Opcode::kSfgtu: case Opcode::kSfgtui: f = a > ub; break;
                    case Opcode::kSfgeu: case Opcode::kSfgeui: f = a >= ub; break;
                    case Opcode::kSfltu: case Opcode::kSfltui: f = a < ub; break;
                    case Opcode::kSfleu: case Opcode::kSfleui: f = a <= ub; break;
                    case Opcode::kSfgts: case Opcode::kSfgtsi: f = sa > sb; break;
                    case Opcode::kSfges: case Opcode::kSfgesi: f = sa >= sb; break;
                    case Opcode::kSflts: case Opcode::kSfltsi: f = sa < sb; break;
                    case Opcode::kSfles: case Opcode::kSflesi: f = sa <= sb; break;
                    default: check(false, "unhandled set-flag opcode"); break;
                }
                s.sets_flag = true;
                s.flag_value = f;
            }
            break;
        }
    }

    if (meta.is_load || meta.is_store) {
        s.mem_addr = a + imm;
        if (meta.is_store) s.store_data = b;
    }
}

void Pipeline::fill_view(StageView& view, const Slot& slot) {
    if (!slot.valid) {
        // Invalid slots are always default-constructed bubbles (only the
        // held flag is ever touched afterwards), so a value-init view plus
        // the held flag reproduces the full copy without reading the slot.
        view = StageView{};
        view.held = slot.held;
        return;
    }
    view.valid = true;
    view.held = slot.held;
    view.inst = slot.inst;
    view.pc = slot.pc;
    view.operand_a = slot.a;
    view.operand_b = slot.b;
    view.result = slot.result;
}

bool Pipeline::step(CycleRecord& record) {
    if (exited_) return false;

    // ---- In-cycle stage activity (using the current latch values) --------
    commit_wb();
    ctrl_memory_access();

    bool redirect = false;
    std::uint32_t redirect_target = 0;
    Opcode redirect_source = Opcode::kInvalid;

    const bool ex_is_new = ex_.valid && ex_hold_ == 0;
    if (ex_is_new) {
        if (isa::is_control_transfer(ex_.inst.opcode) && dc_.valid &&
            isa::is_control_transfer(dc_.inst.opcode)) {
            guest_fault("control transfer in delay slot", dc_.pc);
        }
        execute(ex_);
        if (ex_.inst.opcode == Opcode::kDiv || ex_.inst.opcode == Opcode::kDivu) {
            ex_hold_ = config_.div_latency - 1;
        }
        // EX-resolved control transfers (register jumps and conditional
        // branches). Immediate jumps are handled in the fetch stage below.
        switch (ex_.inst.opcode) {
            case Opcode::kJr:
            case Opcode::kJalr:
                redirect = true;
                redirect_target = ex_.b;
                redirect_source = ex_.inst.opcode;
                break;
            case Opcode::kBf:
            case Opcode::kBnf: {
                const bool flag = forward_flag();
                const bool taken = (ex_.inst.opcode == Opcode::kBf) == flag;
                if (taken) {
                    redirect = true;
                    redirect_target = ex_.pc + 4u * static_cast<std::uint32_t>(ex_.inst.imm);
                    redirect_source = ex_.inst.opcode;
                }
                break;
            }
            default: break;
        }
        if (redirect && redirect_target % 4 != 0) guest_fault("misaligned branch target", ex_.pc);
    } else if (ex_.valid && ex_hold_ > 0) {
        --ex_hold_;
    }
    const bool ex_retains = ex_.valid && ex_hold_ > 0;

    // Load-use hazard: the DC instruction needs a register that the load
    // currently in EX will only produce at the end of CTRL.
    bool dc_stall = false;
    if (dc_.valid && ex_.valid && !ex_retains && ex_.is_load && ex_.writes_reg) {
        const auto& meta = isa::info(dc_.inst.opcode);
        if ((meta.reads_ra && dc_.inst.ra == ex_.wreg) ||
            (meta.reads_rb && dc_.inst.rb == ex_.wreg)) {
            dc_stall = true;
        }
    }
    const bool front_stall = dc_stall || ex_retains;

    // Fetch-stage handling of immediate jumps: target computed while the
    // jump sits in FE; applied to the address mux for the cycle after the
    // delay slot's fetch (zero bubbles).
    bool fe_jump = false;
    std::uint32_t fe_jump_target = 0;
    Opcode fe_jump_source = Opcode::kInvalid;
    if (!front_stall && fe_.valid &&
        (fe_.inst.opcode == Opcode::kJ || fe_.inst.opcode == Opcode::kJal)) {
        if (dc_.valid && isa::is_control_transfer(dc_.inst.opcode)) {
            guest_fault("control transfer in delay slot", fe_.pc);
        }
        fe_jump = true;
        fe_jump_target = fe_.pc + 4u * static_cast<std::uint32_t>(fe_.inst.imm);
        fe_jump_source = fe_.inst.opcode;
    }

    // ---- Record this cycle ------------------------------------------------
    // Every field is assigned explicitly (no full re-zeroing of the record,
    // which callers reuse across cycles) and invalid slots take the cheap
    // bubble path in fill_view.
    record.cycle = cycle_;
    fill_view(record.stages[static_cast<std::size_t>(Stage::kAdr)], adr_);
    fill_view(record.stages[static_cast<std::size_t>(Stage::kFe)], fe_);
    fill_view(record.stages[static_cast<std::size_t>(Stage::kDc)], dc_);
    fill_view(record.stages[static_cast<std::size_t>(Stage::kEx)], ex_);
    fill_view(record.stages[static_cast<std::size_t>(Stage::kCtrl)], ctrl_);
    fill_view(record.stages[static_cast<std::size_t>(Stage::kWb)], wb_);
    record.fetch_redirect = adr_.valid && adr_.fetched_by_redirect && !adr_.held;
    record.redirect_source = adr_.redirect_source;
    record.fetch_addr = adr_.pc;
    const bool dmem_access = ex_is_new && (ex_.is_load || ex_.is_store);
    record.dmem_access = dmem_access;
    record.dmem_write = dmem_access && ex_.is_store;
    record.dmem_addr = dmem_access ? ex_.mem_addr : 0;

    // ---- Latch update (end of cycle) --------------------------------------
    check(!(redirect && front_stall), "redirect cannot coincide with a front-end stall");
    wb_ = ctrl_;
    wb_.held = false;
    ctrl_ = ex_retains ? Slot{} : ex_;
    ctrl_.held = false;
    if (ex_retains) {
        // EX keeps the divider; nothing upstream moves.
        ex_.held = true;
        dc_.held = fe_.held = adr_.held = true;
    } else if (dc_stall) {
        ex_ = Slot{};  // bubble between the load and its consumer
        dc_.held = fe_.held = adr_.held = true;
    } else {
        ex_ = dc_;
        ex_.held = false;
        if (redirect) {
            // The delay slot (in DC this cycle) has advanced into EX above;
            // FE and ADR hold wrong-path sequential fetches and are squashed.
            dc_ = Slot{};
            fe_ = Slot{};
            adr_ = make_fetch_slot(redirect_target, true, redirect_source);
        } else {
            dc_ = fe_;
            dc_.held = false;
            fe_ = adr_;
            fe_.held = false;
            if (fe_jump) {
                adr_ = make_fetch_slot(fe_jump_target, true, fe_jump_source);
            } else {
                adr_ = make_fetch_slot(adr_.pc + 4, false, Opcode::kInvalid);
            }
        }
    }

    ++cycle_;
    return !exited_;
}

}  // namespace focs::sim
