#include "sim/machine.hpp"

#include "common/error.hpp"

namespace focs::sim {

Machine::Machine(MachineConfig config)
    : config_(config),
      imem_("imem", 0, config.imem_size),
      dmem_("dmem", config.dmem_base, config.dmem_size),
      pipeline_(std::make_unique<Pipeline>(imem_, dmem_, config.pipeline)) {
    check(config.imem_size <= config.dmem_base, "instruction SRAM overlaps data SRAM region");
}

void Machine::load(const assembler::Program& program) {
    for (const auto& [addr, value] : program.bytes()) {
        if (addr < config_.dmem_base) {
            if (!imem_.contains(addr)) throw GuestError("program byte outside instruction SRAM");
            imem_.write_u8(addr, value);
        } else {
            dmem_.write_u8(addr, value);
        }
    }
    entry_ = program.entry();
    pipeline_->reset(entry_);
}

RunResult Machine::run(PipelineObserver* observer) {
    CycleRecord record;
    while (!pipeline_->exited()) {
        if (pipeline_->cycles() >= config_.max_cycles) {
            throw GuestError("watchdog: guest did not exit within max_cycles");
        }
        pipeline_->step(record);
        if (observer != nullptr) observer->on_cycle(record);
    }
    RunResult result;
    result.exit_code = pipeline_->exit_code();
    result.cycles = pipeline_->cycles();
    result.instructions = pipeline_->retired_instructions();
    result.reports = pipeline_->reports();
    return result;
}

}  // namespace focs::sim
