// Directed characterization kernels (paper Fig. 2: hand-written kernels).
//
// Each kernel hammers one functional-unit family with operand patterns
// chosen to excite the family's worst dynamic paths (full-length carry
// chains, all-bits toggles, maximal operand widths, dense address bits),
// repeated enough times that the dynamic-timing-analysis extraction sees a
// stable per-instruction maximum. Characterization kernels exit 0
// unconditionally; functional correctness of each opcode is covered by the
// unit tests and the self-checking benchmark kernels.
#include <cstdint>

#include "workloads/kernel_util.hpp"
#include "workloads/kernels.hpp"

namespace focs::workloads {

namespace {

constexpr int kDefaultRounds = 48;

std::string prologue(const char* comment, int rounds = kDefaultRounds) {
    std::string s;
    s += format("; %s\n", comment);
    s += ".text\n_start:\n";
    s += format("  l.addi r20, r0, %d   ; rounds\n", rounds);
    s += "round:\n";
    return s;
}

std::string epilogue() {
    std::string s;
    s += "  l.addi r20, r20, -1\n";
    s += "  l.sfgts r20, r0\n";
    s += "  l.bf round\n";
    s += "  l.nop\n";
    s += "  l.addi r3, r0, 0\n";
    s += "  l.nop 0x1\n";
    s += "  l.nop\n  l.nop\n  l.nop\n  l.nop\n";
    return s;
}

}  // namespace

Kernel char_alu() {
    std::string s = prologue("char_alu: adder carry chains and full logic toggles");
    // Full-length carry propagation: 0xffffffff + 1 and variants.
    s += load_imm("r10", 0xffffffffu);
    s += "  l.addi r11, r0, 1\n";
    s += "  l.add r12, r10, r11      ; 32-bit carry chain\n";
    s += "  l.add r12, r11, r10\n";
    s += load_imm("r13", 0x7fffffffu);
    s += "  l.addi r12, r13, 1       ; carry into the sign bit\n";
    s += load_imm("r14", 0x55555555u);
    s += load_imm("r15", 0xaaaaaaabu);
    s += "  l.add r12, r14, r15      ; alternating generate/propagate\n";
    s += "  l.sub r12, r0, r11       ; borrow chain through all bits\n";
    s += "  l.sub r12, r14, r15\n";
    s += "  l.addi r12, r10, 1       ; immediate form, full carry\n";
    // Logic with a ^ b == 0xffffffff (maximum toggle factor).
    s += "  l.xor r12, r10, r0\n";
    s += "  l.xor r12, r14, r15\n";
    s += "  l.and r12, r10, r14\n";
    s += "  l.and r12, r10, r10\n";
    s += "  l.or  r12, r0, r10\n";
    s += "  l.or  r12, r14, r15\n";
    s += "  l.andi r12, r10, 0xffff\n";
    s += "  l.ori  r12, r0, 0xffff\n";
    s += "  l.xori r12, r10, -1\n";
    s += "  l.movhi r12, 0xffff\n";
    s += "  l.movhi r12, 0x0000\n";
    // Extension / conditional-move unit (full-width operands).
    s += "  l.exths r12, r10\n";
    s += "  l.extbs r12, r10\n";
    s += "  l.exthz r12, r10\n";
    s += "  l.extbz r12, r10\n";
    s += "  l.extws r12, r10\n";
    s += "  l.extwz r12, r10\n";
    s += "  l.sfeq r10, r10\n";
    s += "  l.cmov r12, r10, r14\n";
    s += "  l.sfne r10, r10\n";
    s += "  l.cmov r12, r14, r10\n";
    s += epilogue();
    return {"char_alu", "directed adder/logic worst-case excitation", std::move(s)};
}

Kernel char_mul_div() {
    std::string s = prologue("char_mul_div: maximal-width multiplier/divider operands");
    s += load_imm("r10", 0xffffffffu);
    s += load_imm("r11", 0xfffffffbu);
    s += load_imm("r12", 0x80000001u);
    s += "  l.mul r13, r10, r11      ; full 32x32 partial-product array\n";
    s += "  l.mul r13, r12, r10\n";
    s += "  l.mul r13, r13, r11\n";
    s += "  l.muli r13, r10, 0x7fff\n";
    s += "  l.muli r13, r12, -3\n";
    s += "  l.addi r14, r0, 7\n";
    s += "  l.divu r13, r10, r14     ; long serial division\n";
    s += "  l.div  r13, r12, r14\n";
    s += "  l.mul r13, r13, r13\n";
    s += "  l.mulu r13, r10, r11     ; unsigned full-width product\n";
    s += "  l.mulu r13, r12, r12\n";
    s += epilogue();
    return {"char_mul_div", "directed multiplier/divider worst-case excitation", std::move(s)};
}

Kernel char_shift() {
    std::string s = prologue("char_shift: full-width shifts and rotates, all shifter modes");
    s += load_imm("r10", 0xffffffffu);
    s += load_imm("r11", 0x80000001u);
    s += "  l.addi r12, r0, 31\n";
    s += "  l.sll r13, r10, r12      ; max shift amount\n";
    s += "  l.srl r13, r10, r12\n";
    s += "  l.sra r13, r11, r12\n";
    s += "  l.ror r13, r11, r12\n";
    s += "  l.slli r13, r10, 31\n";
    s += "  l.srli r13, r10, 31\n";
    s += "  l.srai r13, r11, 31\n";
    s += "  l.rori r13, r11, 17\n";
    s += "  l.slli r13, r11, 1\n";
    s += "  l.srli r13, r11, 1\n";
    s += "  l.ff1 r13, r11           ; priority encoders\n";
    s += "  l.fl1 r13, r11\n";
    s += "  l.ff1 r13, r0\n";
    s += "  l.fl1 r13, r10\n";
    s += epilogue();
    return {"char_shift", "directed barrel-shifter worst-case excitation", std::move(s)};
}

Kernel char_memory() {
    std::string s = prologue("char_memory: all access widths at dense-bit addresses");
    s += "  l.li r26, buf            ; buf ends 0x10000 below the dmem top\n";
    s += load_imm("r10", 0xa5a5f00fu);
    // Word accesses at offsets with many set address bits.
    s += "  l.sw 0x7ffc(r26), r10\n";
    s += "  l.lwz r11, 0x7ffc(r26)\n";
    s += "  l.sw 0x7bbc(r26), r11\n";
    s += "  l.lwz r11, 0x7bbc(r26)\n";
    // Half accesses (zero and sign extending).
    s += "  l.sh 0x7ffe(r26), r10\n";
    s += "  l.lhz r12, 0x7ffe(r26)\n";
    s += "  l.lhs r12, 0x7ffe(r26)\n";
    // Byte accesses at the all-ones offset.
    s += "  l.sb 0x7fff(r26), r10\n";
    s += "  l.lbz r12, 0x7fff(r26)\n";
    s += "  l.lbs r12, 0x7fff(r26)\n";
    // Back-to-back load-use chains (forwarding + stall coverage).
    s += "  l.lwz r13, 0x7ffc(r26)\n";
    s += "  l.add r14, r13, r13\n";
    s += "  l.sw 0(r26), r14\n";
    s += epilogue();
    s += ".data\nbuf: .space 0x8000\n";
    return {"char_memory", "directed SRAM access worst-case excitation", std::move(s)};
}

Kernel char_compare_branch() {
    std::string s = prologue("char_compare_branch: every set-flag condition, taken + untaken", 10);
    // Register forms first (full borrow chains through the comparator),
    // then immediate forms; each compare feeds a branch so both the taken
    // and the fall-through flag paths are exercised.
    s += load_imm("r10", 0xffffffffu);
    s += load_imm("r11", 0x80000000u);
    s += "  l.addi r12, r0, 1\n";
    const char* reg_ops[] = {"l.sfeq", "l.sfne", "l.sfgtu", "l.sfgeu", "l.sfltu",
                             "l.sfleu", "l.sfgts", "l.sfges", "l.sflts", "l.sfles"};
    int label = 0;
    for (const char* op : reg_ops) {
        s += format("  %s r10, r12\n", op);
        s += format("  l.bf cb_%d\n", label);
        s += "  l.nop\n";
        s += format("cb_%d:\n", label);
        ++label;
        s += format("  %s r11, r10\n", op);
        s += format("  l.bnf cb_%d\n", label);
        s += "  l.nop\n";
        s += format("cb_%d:\n", label);
        ++label;
    }
    const char* imm_ops[] = {"l.sfeqi", "l.sfnei", "l.sfgtui", "l.sfgeui", "l.sfltui",
                             "l.sfleui", "l.sfgtsi", "l.sfgesi", "l.sfltsi", "l.sflesi"};
    for (const char* op : imm_ops) {
        s += format("  %s r10, -1\n", op);
        s += format("  l.bf cb_%d\n", label);
        s += "  l.nop\n";
        s += format("cb_%d:\n", label);
        ++label;
        s += format("  %s r11, 0x7fff\n", op);
        s += format("  l.bnf cb_%d\n", label);
        s += "  l.nop\n";
        s += format("cb_%d:\n", label);
        ++label;
    }
    s += epilogue();
    return {"char_compare_branch", "directed comparator/branch excitation, all 20 conditions",
            std::move(s)};
}

Kernel char_jump() {
    std::string s = prologue("char_jump: immediate jumps, calls and register jumps", 16);
    s += "  l.j hop1\n";
    s += "  l.nop\n";
    s += "hop_back:\n";
    s += "  l.jal leaf               ; call (writes r9)\n";
    s += "  l.nop\n";
    s += "  l.li r16, leaf\n";
    s += "  l.jalr r16               ; register call\n";
    s += "  l.nop\n";
    s += "  l.j hop_done\n";
    s += "  l.nop\n";
    s += "hop1:\n";
    s += "  l.j hop2\n";
    s += "  l.nop\n";
    s += "hop2:\n";
    s += "  l.j hop_back\n";
    s += "  l.nop\n";
    s += "leaf:\n";
    s += "  l.jr r9                  ; return\n";
    s += "  l.nop\n";
    s += "hop_done:\n";
    s += epilogue();
    return {"char_jump", "directed jump/call/return excitation (fetch address paths)",
            std::move(s)};
}

}  // namespace focs::workloads
