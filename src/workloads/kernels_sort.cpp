// Sorting/searching kernels: bubblesort, insertsort, bsearch.
#include <algorithm>
#include <cstdint>
#include <vector>

#include "workloads/kernel_util.hpp"
#include "workloads/kernels.hpp"

namespace focs::workloads {

namespace {

std::vector<std::uint32_t> lcg_values(std::uint32_t seed, int count, std::uint32_t mask) {
    std::vector<std::uint32_t> v(static_cast<std::size_t>(count));
    std::uint32_t x = seed;
    for (auto& e : v) {
        x = lcg_next(x);
        e = x & mask;
    }
    return v;
}

/// Weighted checksum Sum a[i]*(i+1) of a sorted array.
std::uint32_t weighted_checksum(std::vector<std::uint32_t> v) {
    std::sort(v.begin(), v.end());
    std::uint32_t sum = 0;
    for (std::size_t i = 0; i < v.size(); ++i) {
        sum += v[i] * static_cast<std::uint32_t>(i + 1);
    }
    return sum;
}

/// Emits the shared LCG fill loop: `count` words at label buf, masked.
std::string emit_fill(std::uint32_t seed, int count, std::uint32_t mask) {
    std::string s;
    s += "  l.li r26, buf\n";
    s += load_imm("r10", seed);
    s += format("  l.addi r11, r0, %d\n", count);
    s += load_imm("r12", 1664525u);
    s += load_imm("r13", 1013904223u);
    s += load_imm("r15", mask);
    s += "fill:\n";
    s += "  l.mul r10, r10, r12\n";
    s += "  l.add r10, r10, r13\n";
    s += "  l.and r14, r10, r15\n";
    s += "  l.sw 0(r26), r14\n";
    s += "  l.addi r26, r26, 4\n";
    s += "  l.addi r11, r11, -1\n";
    s += "  l.sfgts r11, r0\n";
    s += "  l.bf fill\n";
    s += "  l.nop\n";
    return s;
}

/// Emits the weighted-checksum loop over `count` sorted words at buf,
/// leaving the sum in r18. Also verifies ascending order: jumps to
/// `order_fail` (which must set r18 to a poison value) on any inversion.
std::string emit_weighted_checksum(int count) {
    std::string s;
    s += "  l.li r26, buf\n";
    s += "  l.addi r18, r0, 0        ; checksum\n";
    s += "  l.addi r19, r0, 1        ; index+1\n";
    s += format("  l.addi r11, r0, %d\n", count);
    s += "  l.addi r20, r0, 0        ; previous value\n";
    s += "chk:\n";
    s += "  l.lwz r14, 0(r26)\n";
    s += "  l.sfgtu r20, r14         ; previous > current: not sorted\n";
    s += "  l.bf order_fail\n";
    s += "  l.nop\n";
    s += "  l.mov r20, r14\n";
    s += "  l.mul r16, r14, r19\n";
    s += "  l.add r18, r18, r16\n";
    s += "  l.addi r26, r26, 4\n";
    s += "  l.addi r19, r19, 1\n";
    s += "  l.addi r11, r11, -1\n";
    s += "  l.sfgts r11, r0\n";
    s += "  l.bf chk\n";
    s += "  l.nop\n";
    s += "  l.j chk_done\n";
    s += "  l.nop\n";
    s += "order_fail:\n";
    s += "  l.addi r18, r0, -1       ; poison: order violated\n";
    s += "chk_done:\n";
    return s;
}

}  // namespace

Kernel kernel_bubblesort() {
    constexpr int kCount = 64;
    constexpr std::uint32_t kSeed = 0xb0b51234u;
    const std::uint32_t expected = weighted_checksum(lcg_values(kSeed, kCount, 0xffffu));

    std::string s;
    s += "; bubblesort: in-place bubble sort + sortedness check (BEEBS bubblesort)\n";
    s += ".text\n_start:\n";
    s += emit_fill(kSeed, kCount, 0xffffu);
    // for i = count-1 .. 1: for j = 0 .. i-1: swap if a[j] > a[j+1]
    s += format("  l.addi r21, r0, %d   ; i\n", kCount - 1);
    s += "outer:\n";
    s += "  l.li r26, buf\n";
    s += "  l.addi r22, r0, 0        ; j\n";
    s += "inner:\n";
    s += "  l.lwz r14, 0(r26)\n";
    s += "  l.lwz r16, 4(r26)\n";
    s += "  l.sfgtu r14, r16\n";
    s += "  l.bnf no_swap\n";
    s += "  l.nop\n";
    s += "  l.sw 0(r26), r16\n";
    s += "  l.sw 4(r26), r14\n";
    s += "no_swap:\n";
    s += "  l.addi r26, r26, 4\n";
    s += "  l.addi r22, r22, 1\n";
    s += "  l.sflts r22, r21\n";
    s += "  l.bf inner\n";
    s += "  l.nop\n";
    s += "  l.addi r21, r21, -1\n";
    s += "  l.sfgts r21, r0\n";
    s += "  l.bf outer\n";
    s += "  l.nop\n";
    s += emit_weighted_checksum(kCount);
    s += check_and_exit("r18", expected);
    s += format(".data\nbuf: .space %d\n", 4 * kCount);
    return {"bubblesort", "bubble sort of 64 16-bit values with order check", std::move(s)};
}

Kernel kernel_insertsort() {
    constexpr int kCount = 48;
    constexpr std::uint32_t seed = 0x15e77001u;
    const std::uint32_t expected = weighted_checksum(lcg_values(seed, kCount, 0xfffffu));

    std::string s;
    s += "; insertsort: insertion sort (BEEBS insertsort)\n";
    s += ".text\n_start:\n";
    s += emit_fill(seed, kCount, 0xfffffu);
    // for i = 1 .. count-1: key = a[i]; j = i-1; while j >= 0 && a[j] > key:
    //   a[j+1] = a[j]; --j;  a[j+1] = key
    s += "  l.addi r21, r0, 1        ; i\n";
    s += "ins_outer:\n";
    s += "  l.li r26, buf\n";
    s += "  l.slli r14, r21, 2\n";
    s += "  l.add r26, r26, r14      ; &a[i]\n";
    s += "  l.lwz r22, 0(r26)        ; key\n";
    s += "  l.addi r27, r26, -4      ; &a[j]\n";
    s += "  l.addi r23, r21, -1      ; j\n";
    s += "ins_inner:\n";
    s += "  l.sflts r23, r0\n";
    s += "  l.bf ins_place\n";
    s += "  l.nop\n";
    s += "  l.lwz r14, 0(r27)\n";
    s += "  l.sfgtu r14, r22\n";
    s += "  l.bnf ins_place\n";
    s += "  l.nop\n";
    s += "  l.sw 4(r27), r14         ; a[j+1] = a[j]\n";
    s += "  l.addi r27, r27, -4\n";
    s += "  l.j ins_inner\n";
    s += "  l.addi r23, r23, -1      ; --j (delay slot)\n";
    s += "ins_place:\n";
    s += "  l.sw 4(r27), r22         ; a[j+1] = key\n";
    s += "  l.addi r21, r21, 1\n";
    s += format("  l.sfltsi r21, %d\n", kCount);
    s += "  l.bf ins_outer\n";
    s += "  l.nop\n";
    s += emit_weighted_checksum(kCount);
    s += check_and_exit("r18", expected);
    s += format(".data\nbuf: .space %d\n", 4 * kCount);
    return {"insertsort", "insertion sort of 48 20-bit values with order check", std::move(s)};
}

Kernel kernel_bsearch() {
    constexpr int kCount = 128;
    constexpr int kQueries = 200;
    // Sorted table a[i] = 7*i + 3; queries from the LCG; accumulate found
    // index or ~0 for misses.
    std::uint32_t expected = 0;
    std::uint32_t x = 0x5ea4c4u;
    for (int q = 0; q < kQueries; ++q) {
        x = lcg_next(x);
        const std::uint32_t key = x % (7u * kCount + 10u);
        std::int32_t lo = 0;
        std::int32_t hi = kCount - 1;
        std::uint32_t found = 0xffffffffu;
        while (lo <= hi) {
            const std::int32_t mid = (lo + hi) / 2;
            const std::uint32_t v = 7u * static_cast<std::uint32_t>(mid) + 3u;
            if (v == key) {
                found = static_cast<std::uint32_t>(mid);
                break;
            }
            if (v < key) {
                lo = mid + 1;
            } else {
                hi = mid - 1;
            }
        }
        expected += found;
    }

    std::string s;
    s += "; bsearch: binary search over a sorted table (branch heavy)\n";
    s += ".text\n_start:\n";
    // Build table a[i] = 7*i + 3.
    s += "  l.li r26, buf\n";
    s += "  l.addi r10, r0, 0        ; i\n";
    s += "tab:\n";
    s += "  l.muli r14, r10, 7\n";
    s += "  l.addi r14, r14, 3\n";
    s += "  l.sw 0(r26), r14\n";
    s += "  l.addi r26, r26, 4\n";
    s += "  l.addi r10, r10, 1\n";
    s += format("  l.sfltsi r10, %d\n", kCount);
    s += "  l.bf tab\n";
    s += "  l.nop\n";
    // Query loop.
    s += load_imm("r10", 0x5ea4c4u);
    s += format("  l.addi r11, r0, %d   ; queries\n", kQueries);
    s += "  l.addi r18, r0, 0        ; checksum\n";
    s += load_imm("r12", 1664525u);
    s += load_imm("r13", 1013904223u);
    s += format("  l.addi r24, r0, %d   ; modulus\n", 7 * kCount + 10);
    s += "query:\n";
    s += "  l.mul r10, r10, r12\n";
    s += "  l.add r10, r10, r13\n";
    s += "  l.divu r14, r10, r24\n";
    s += "  l.mul r14, r14, r24\n";
    s += "  l.sub r22, r10, r14      ; key = x %% mod\n";
    s += "  l.addi r15, r0, 0        ; lo\n";
    s += format("  l.addi r16, r0, %d   ; hi\n", kCount - 1);
    s += "  l.addi r23, r0, -1       ; found = ~0\n";
    s += "bs_loop:\n";
    s += "  l.sfgts r15, r16\n";
    s += "  l.bf bs_done\n";
    s += "  l.nop\n";
    s += "  l.add r17, r15, r16\n";
    s += "  l.srai r17, r17, 1       ; mid\n";
    s += "  l.li r26, buf\n";
    s += "  l.slli r14, r17, 2\n";
    s += "  l.add r14, r26, r14\n";
    s += "  l.lwz r14, 0(r14)        ; v = a[mid]\n";
    s += "  l.sfeq r14, r22\n";
    s += "  l.bnf bs_cmp\n";
    s += "  l.nop\n";
    s += "  l.j bs_done\n";
    s += "  l.mov r23, r17           ; found = mid (delay slot)\n";
    s += "bs_cmp:\n";
    s += "  l.sfltu r14, r22\n";
    s += "  l.bnf bs_upper\n";
    s += "  l.nop\n";
    s += "  l.j bs_loop\n";
    s += "  l.addi r15, r17, 1       ; lo = mid+1 (delay slot)\n";
    s += "bs_upper:\n";
    s += "  l.j bs_loop\n";
    s += "  l.addi r16, r17, -1      ; hi = mid-1 (delay slot)\n";
    s += "bs_done:\n";
    s += "  l.add r18, r18, r23\n";
    s += "  l.addi r11, r11, -1\n";
    s += "  l.sfgts r11, r0\n";
    s += "  l.bf query\n";
    s += "  l.nop\n";
    s += check_and_exit("r18", expected);
    s += format(".data\nbuf: .space %d\n", 4 * kCount);
    return {"bsearch", "200 binary searches over a 128-entry table", std::move(s)};
}

}  // namespace focs::workloads
