// Shared helpers for kernel authoring.
//
// Kernels embed host-computed reference checksums into their assembly text;
// the guest recomputes the value and self-checks. The shared epilogue
// implements the compare-report-exit sequence, including the mandatory
// l.nop padding after the exit nop (instructions behind the exit are still
// fetched and executed by the pipeline before the exit retires).
#pragma once

#include <cstdint>
#include <string>

namespace focs::workloads {

/// printf-style formatting into std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// The LCG shared by host reference models and guest kernels for data
/// generation (Numerical Recipes constants; cheap to emit as OR1K code).
constexpr std::uint32_t lcg_next(std::uint32_t x) { return x * 1664525u + 1013904223u; }

/// Standard self-check epilogue. Expects the computed checksum in `reg`
/// (any register except r3/r9). Reports the checksum, compares with
/// `expected`, and exits with r3 = 0 (pass) or 1 (fail).
std::string check_and_exit(const char* reg, std::uint32_t expected);

/// Emits "l.li reg, value" (2 instructions).
std::string load_imm(const char* reg, std::uint32_t value);

}  // namespace focs::workloads
