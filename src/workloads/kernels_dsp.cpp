// DSP-style kernels: fir, edn, matmult (multiplier-heavy workloads).
#include <cstdint>
#include <vector>

#include "workloads/kernel_util.hpp"
#include "workloads/kernels.hpp"

namespace focs::workloads {

namespace {

std::vector<std::uint32_t> lcg_fill(std::uint32_t seed, int count, std::uint32_t mask) {
    std::vector<std::uint32_t> v(static_cast<std::size_t>(count));
    std::uint32_t x = seed;
    for (auto& e : v) {
        x = lcg_next(x);
        e = x & mask;
    }
    return v;
}

/// Fill loop writing `count` masked LCG words at `label`, with a unique
/// loop-label prefix so a kernel can fill several arrays.
std::string emit_fill_at(const char* label, const char* loop, std::uint32_t seed, int count,
                         std::uint32_t mask) {
    std::string s;
    s += format("  l.li r26, %s\n", label);
    s += load_imm("r10", seed);
    s += format("  l.addi r11, r0, %d\n", count);
    s += load_imm("r12", 1664525u);
    s += load_imm("r13", 1013904223u);
    s += load_imm("r15", mask);
    s += format("%s:\n", loop);
    s += "  l.mul r10, r10, r12\n";
    s += "  l.add r10, r10, r13\n";
    s += "  l.and r14, r10, r15\n";
    s += "  l.sw 0(r26), r14\n";
    s += "  l.addi r26, r26, 4\n";
    s += "  l.addi r11, r11, -1\n";
    s += "  l.sfgts r11, r0\n";
    s += format("  l.bf %s\n", loop);
    s += "  l.nop\n";
    return s;
}

}  // namespace

Kernel kernel_fir() {
    constexpr int kTaps = 16;
    constexpr int kSamples = 144;
    const auto h = lcg_fill(0xf117001u, kTaps, 0x3ffu);
    const auto xs = lcg_fill(0x5a5a5a5au, kSamples, 0xfffu);
    std::uint32_t expected = 0;
    for (int n = kTaps - 1; n < kSamples; ++n) {
        std::uint32_t acc = 0;
        for (int k = 0; k < kTaps; ++k) {
            acc += h[static_cast<std::size_t>(k)] * xs[static_cast<std::size_t>(n - k)];
        }
        expected += acc >> 6;
    }

    std::string s;
    s += "; fir: 16-tap FIR filter over 144 samples (BEEBS fir class)\n";
    s += ".text\n_start:\n";
    s += emit_fill_at("taps", "fill_h", 0xf117001u, kTaps, 0x3ffu);
    s += emit_fill_at("samples", "fill_x", 0x5a5a5a5au, kSamples, 0xfffu);
    s += format("  l.addi r20, r0, %d   ; n\n", kTaps - 1);
    s += "  l.addi r18, r0, 0        ; checksum\n";
    s += "fir_n:\n";
    s += "  l.addi r21, r0, 0        ; k\n";
    s += "  l.addi r22, r0, 0        ; acc\n";
    s += "  l.li r26, taps\n";
    s += "  l.li r27, samples\n";
    s += "  l.slli r14, r20, 2\n";
    s += "  l.add r27, r27, r14      ; &x[n]\n";
    s += "fir_k:\n";
    s += "  l.lwz r14, 0(r26)        ; h[k]\n";
    s += "  l.lwz r16, 0(r27)        ; x[n-k]\n";
    s += "  l.mul r14, r14, r16\n";
    s += "  l.add r22, r22, r14\n";
    s += "  l.addi r26, r26, 4\n";
    s += "  l.addi r27, r27, -4\n";
    s += "  l.addi r21, r21, 1\n";
    s += format("  l.sfltsi r21, %d\n", kTaps);
    s += "  l.bf fir_k\n";
    s += "  l.nop\n";
    s += "  l.srli r22, r22, 6\n";
    s += "  l.add r18, r18, r22\n";
    s += "  l.addi r20, r20, 1\n";
    s += format("  l.sfltsi r20, %d\n", kSamples);
    s += "  l.bf fir_n\n";
    s += "  l.nop\n";
    s += check_and_exit("r18", expected);
    s += format(".data\ntaps: .space %d\nsamples: .space %d\n", 4 * kTaps, 4 * kSamples);
    return {"fir", "16-tap FIR filter over 144 samples", std::move(s)};
}

Kernel kernel_edn() {
    constexpr int kLen = 96;
    const auto a = lcg_fill(0xeda0001u, kLen, 0xfffu);  // see note below
    const auto b = lcg_fill(0x0dd5eedu, kLen, 0xfffu);
    // Dot product plus a scaled multiply-accumulate pass (BEEBS edn spirit).
    std::uint32_t dot = 0;
    std::uint32_t scaled = 0;
    for (int i = 0; i < kLen; ++i) {
        dot += a[static_cast<std::size_t>(i)] * b[static_cast<std::size_t>(i)];
        scaled += (a[static_cast<std::size_t>(i)] * b[static_cast<std::size_t>(i)]) >> 4;
    }
    const std::uint32_t expected = dot ^ scaled;

    std::string s;
    s += "; edn: vector dot product + scaled MAC pass (BEEBS edn class)\n";
    s += ".text\n_start:\n";
    s += emit_fill_at("vec_a", "fill_a", 0xeda0001u, kLen, 0xfffu);
    s += emit_fill_at("vec_b", "fill_b", 0x0dd5eedu, kLen, 0xfffu);
    s += "  l.li r26, vec_a\n";
    s += "  l.li r27, vec_b\n";
    s += format("  l.addi r11, r0, %d\n", kLen);
    s += "  l.addi r18, r0, 0        ; dot\n";
    s += "  l.addi r19, r0, 0        ; scaled\n";
    s += "edn_loop:\n";
    s += "  l.lwz r14, 0(r26)\n";
    s += "  l.lwz r16, 0(r27)\n";
    s += "  l.mul r14, r14, r16\n";
    s += "  l.add r18, r18, r14\n";
    s += "  l.srli r14, r14, 4\n";
    s += "  l.add r19, r19, r14\n";
    s += "  l.addi r26, r26, 4\n";
    s += "  l.addi r27, r27, 4\n";
    s += "  l.addi r11, r11, -1\n";
    s += "  l.sfgts r11, r0\n";
    s += "  l.bf edn_loop\n";
    s += "  l.nop\n";
    s += "  l.xor r18, r18, r19\n";
    s += check_and_exit("r18", expected);
    s += format(".data\nvec_a: .space %d\nvec_b: .space %d\n", 4 * kLen, 4 * kLen);
    return {"edn", "vector dot product and scaled MAC over 96-element vectors", std::move(s)};
}

Kernel kernel_matmult() {
    constexpr int kN = 12;
    const auto a = lcg_fill(0x3a7a0001u, kN * kN, 0xffu);
    const auto b = lcg_fill(0x3a7b0002u, kN * kN, 0xffu);
    std::uint32_t expected = 0;
    for (int i = 0; i < kN; ++i) {
        for (int j = 0; j < kN; ++j) {
            std::uint32_t acc = 0;
            for (int k = 0; k < kN; ++k) {
                acc += a[static_cast<std::size_t>(i * kN + k)] *
                       b[static_cast<std::size_t>(k * kN + j)];
            }
            expected += acc;
        }
    }

    std::string s;
    s += "; matmult: 12x12 integer matrix multiply (BEEBS matmult class)\n";
    s += ".text\n_start:\n";
    s += emit_fill_at("mat_a", "fill_a", 0x3a7a0001u, kN * kN, 0xffu);
    s += emit_fill_at("mat_b", "fill_b", 0x3a7b0002u, kN * kN, 0xffu);
    s += "  l.addi r20, r0, 0        ; i\n";
    s += "  l.addi r18, r0, 0        ; checksum\n";
    s += "mm_i:\n";
    s += "  l.addi r21, r0, 0        ; j\n";
    s += "mm_j:\n";
    s += "  l.addi r22, r0, 0        ; k\n";
    s += "  l.addi r23, r0, 0        ; acc\n";
    s += format("  l.muli r14, r20, %d\n", 4 * kN);
    s += "  l.li r26, mat_a\n";
    s += "  l.add r26, r26, r14      ; &a[i][0]\n";
    s += "  l.slli r14, r21, 2\n";
    s += "  l.li r27, mat_b\n";
    s += "  l.add r27, r27, r14      ; &b[0][j]\n";
    s += "mm_k:\n";
    s += "  l.lwz r14, 0(r26)\n";
    s += "  l.lwz r16, 0(r27)\n";
    s += "  l.mul r14, r14, r16\n";
    s += "  l.add r23, r23, r14\n";
    s += "  l.addi r26, r26, 4\n";
    s += format("  l.addi r27, r27, %d\n", 4 * kN);
    s += "  l.addi r22, r22, 1\n";
    s += format("  l.sfltsi r22, %d\n", kN);
    s += "  l.bf mm_k\n";
    s += "  l.nop\n";
    s += "  l.add r18, r18, r23\n";
    s += "  l.addi r21, r21, 1\n";
    s += format("  l.sfltsi r21, %d\n", kN);
    s += "  l.bf mm_j\n";
    s += "  l.nop\n";
    s += "  l.addi r20, r20, 1\n";
    s += format("  l.sfltsi r20, %d\n", kN);
    s += "  l.bf mm_i\n";
    s += "  l.nop\n";
    s += check_and_exit("r18", expected);
    s += format(".data\nmat_a: .space %d\nmat_b: .space %d\n", 4 * kN * kN, 4 * kN * kN);
    return {"matmult", "12x12 integer matrix multiplication", std::move(s)};
}

}  // namespace focs::workloads
