// Basic BEEBS-style kernels: crc32, fibcall, prime, isqrt.
#include <cstdint>

#include "workloads/kernel_util.hpp"
#include "workloads/kernels.hpp"

namespace focs::workloads {

namespace {
constexpr std::uint32_t kCrcSeed = 0x12345678u;
constexpr std::uint32_t kCrcPoly = 0xedb88320u;
constexpr int kCrcWords = 64;
}  // namespace

Kernel kernel_crc32() {
    // Host reference: CRC-32 (reflected polynomial) over kCrcWords LCG words.
    std::uint32_t x = kCrcSeed;
    std::uint32_t crc = 0xffffffffu;
    for (int i = 0; i < kCrcWords; ++i) {
        x = lcg_next(x);
        crc ^= x;
        for (int b = 0; b < 32; ++b) crc = (crc & 1u) != 0 ? (crc >> 1) ^ kCrcPoly : crc >> 1;
    }
    crc ^= 0xffffffffu;

    std::string s;
    s += "; crc32: bitwise CRC-32 over an LCG-generated buffer (BEEBS crc32)\n";
    s += ".text\n_start:\n";
    s += "  l.li r26, buf\n";
    s += load_imm("r10", kCrcSeed);
    s += format("  l.addi r11, r0, %d\n", kCrcWords);
    s += load_imm("r12", 1664525u);
    s += load_imm("r13", 1013904223u);
    s += "fill:\n";
    s += "  l.mul r10, r10, r12\n";
    s += "  l.add r10, r10, r13\n";
    s += "  l.sw 0(r26), r10\n";
    s += "  l.addi r26, r26, 4\n";
    s += "  l.addi r11, r11, -1\n";
    s += "  l.sfgts r11, r0\n";
    s += "  l.bf fill\n";
    s += "  l.nop\n";
    s += "  l.li r26, buf\n";
    s += load_imm("r14", 0xffffffffu);
    s += load_imm("r15", kCrcPoly);
    s += format("  l.addi r11, r0, %d\n", kCrcWords);
    s += "crc_word:\n";
    s += "  l.lwz r16, 0(r26)\n";
    s += "  l.xor r14, r14, r16\n";
    s += "  l.addi r17, r0, 32\n";
    s += "crc_bit:\n";
    s += "  l.andi r18, r14, 1\n";
    s += "  l.srli r14, r14, 1\n";
    s += "  l.sfne r18, r0\n";
    s += "  l.bnf crc_skip\n";
    s += "  l.nop\n";
    s += "  l.xor r14, r14, r15\n";
    s += "crc_skip:\n";
    s += "  l.addi r17, r17, -1\n";
    s += "  l.sfgts r17, r0\n";
    s += "  l.bf crc_bit\n";
    s += "  l.nop\n";
    s += "  l.addi r26, r26, 4\n";
    s += "  l.addi r11, r11, -1\n";
    s += "  l.sfgts r11, r0\n";
    s += "  l.bf crc_word\n";
    s += "  l.nop\n";
    s += "  l.xori r14, r14, -1\n";
    s += check_and_exit("r14", crc);
    s += ".data\nbuf: .space 256\n";
    return {"crc32", "bitwise CRC-32 over 256 bytes (BEEBS crc32 class)", std::move(s)};
}

Kernel kernel_fibcall() {
    // 60 restarts of a 31-step iterative Fibonacci with varying seeds.
    std::uint32_t sum = 0;
    for (std::uint32_t r = 1; r <= 60; ++r) {
        std::uint32_t a = r;
        std::uint32_t b = 1;
        for (int i = 0; i < 31; ++i) {
            const std::uint32_t t = a + b;
            a = b;
            b = t;
        }
        sum += b;
    }

    std::string s;
    s += "; fibcall: iterative Fibonacci sweeps (BEEBS fibcall class)\n";
    s += ".text\n_start:\n";
    s += "  l.addi r10, r0, 1        ; r = round\n";
    s += "  l.addi r18, r0, 0        ; sum\n";
    s += "outer:\n";
    s += "  l.mov r11, r10           ; a = r\n";
    s += "  l.addi r12, r0, 1        ; b = 1\n";
    s += "  l.addi r13, r0, 31       ; i\n";
    s += "inner:\n";
    s += "  l.add r14, r11, r12      ; t = a + b\n";
    s += "  l.mov r11, r12\n";
    s += "  l.mov r12, r14\n";
    s += "  l.addi r13, r13, -1\n";
    s += "  l.sfgts r13, r0\n";
    s += "  l.bf inner\n";
    s += "  l.nop\n";
    s += "  l.add r18, r18, r12\n";
    s += "  l.addi r10, r10, 1\n";
    s += "  l.sflesi r10, 60\n";
    s += "  l.bf outer\n";
    s += "  l.nop\n";
    s += check_and_exit("r18", sum);
    return {"fibcall", "iterative Fibonacci sweeps (BEEBS fibcall class)", std::move(s)};
}

Kernel kernel_prime() {
    // Trial division prime count below 400 (exercises the serial divider).
    std::uint32_t count = 1;  // 2 is prime
    for (std::uint32_t n = 3; n < 400; n += 2) {
        bool prime = true;
        for (std::uint32_t d = 3; d * d <= n; d += 2) {
            if (n % d == 0) {
                prime = false;
                break;
            }
        }
        if (prime) ++count;
    }

    std::string s;
    s += "; prime: trial-division prime counting (BEEBS prime class)\n";
    s += ".text\n_start:\n";
    s += "  l.addi r18, r0, 1        ; count (2 is prime)\n";
    s += "  l.addi r10, r0, 3        ; n\n";
    s += "next_n:\n";
    s += "  l.addi r11, r0, 3        ; d\n";
    s += "trial:\n";
    s += "  l.mul r12, r11, r11      ; d*d\n";
    s += "  l.sfgtu r12, r10\n";
    s += "  l.bf is_prime            ; d*d > n: no divisor found\n";
    s += "  l.nop\n";
    s += "  l.divu r13, r10, r11     ; q = n / d\n";
    s += "  l.mul r14, r13, r11\n";
    s += "  l.sub r14, r10, r14      ; r = n - q*d\n";
    s += "  l.sfeq r14, r0\n";
    s += "  l.bf not_prime\n";
    s += "  l.nop\n";
    s += "  l.j trial\n";
    s += "  l.addi r11, r11, 2       ; d += 2 (delay slot)\n";
    s += "is_prime:\n";
    s += "  l.addi r18, r18, 1\n";
    s += "not_prime:\n";
    s += "  l.addi r10, r10, 2\n";
    s += "  l.sfltui r10, 400\n";
    s += "  l.bf next_n\n";
    s += "  l.nop\n";
    s += check_and_exit("r18", count);
    return {"prime", "trial-division prime counting below 400 (divider-heavy)", std::move(s)};
}

Kernel kernel_isqrt() {
    // Bitwise integer square root of 96 LCG values (shift/compare heavy).
    std::uint32_t x = 0xcafe1234u;
    std::uint32_t sum = 0;
    for (int i = 0; i < 96; ++i) {
        x = lcg_next(x);
        std::uint32_t v = x;
        std::uint32_t res = 0;
        std::uint32_t bit = 1u << 30;
        while (bit > v) bit >>= 2;
        while (bit != 0) {
            if (v >= res + bit) {
                v -= res + bit;
                res = (res >> 1) + bit;
            } else {
                res >>= 1;
            }
            bit >>= 2;
        }
        sum += res;
    }

    std::string s;
    s += "; isqrt: bitwise integer square roots (BEEBS sqrt class)\n";
    s += ".text\n_start:\n";
    s += load_imm("r10", 0xcafe1234u);
    s += "  l.addi r11, r0, 96       ; count\n";
    s += "  l.addi r18, r0, 0        ; sum\n";
    s += load_imm("r12", 1664525u);
    s += load_imm("r13", 1013904223u);
    s += "next_value:\n";
    s += "  l.mul r10, r10, r12\n";
    s += "  l.add r10, r10, r13\n";
    s += "  l.mov r14, r10           ; v\n";
    s += "  l.addi r15, r0, 0        ; res\n";
    s += load_imm("r16", 1u << 30);
    s += "find_bit:\n";
    s += "  l.sfgtu r16, r14\n";
    s += "  l.bnf bit_loop\n";
    s += "  l.nop\n";
    s += "  l.j find_bit\n";
    s += "  l.srli r16, r16, 2       ; bit >>= 2 (delay slot)\n";
    s += "bit_loop:\n";
    s += "  l.sfeq r16, r0\n";
    s += "  l.bf value_done\n";
    s += "  l.nop\n";
    s += "  l.add r17, r15, r16      ; res + bit\n";
    s += "  l.sfgeu r14, r17\n";
    s += "  l.bnf no_sub\n";
    s += "  l.nop\n";
    s += "  l.sub r14, r14, r17\n";
    s += "  l.srli r15, r15, 1\n";
    s += "  l.j bit_next\n";
    s += "  l.add r15, r15, r16      ; res = (res>>1) + bit (delay slot)\n";
    s += "no_sub:\n";
    s += "  l.srli r15, r15, 1\n";
    s += "bit_next:\n";
    s += "  l.j bit_loop\n";
    s += "  l.srli r16, r16, 2       ; bit >>= 2 (delay slot)\n";
    s += "value_done:\n";
    s += "  l.add r18, r18, r15\n";
    s += "  l.addi r11, r11, -1\n";
    s += "  l.sfgts r11, r0\n";
    s += "  l.bf next_value\n";
    s += "  l.nop\n";
    s += check_and_exit("r18", sum);
    return {"isqrt", "bitwise integer square roots of 96 values", std::move(s)};
}

}  // namespace focs::workloads
