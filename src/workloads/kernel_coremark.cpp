// CoreMark-like composite kernel: linked-list processing + matrix
// multiply-accumulate + CRC of the partial results (the three workload
// classes CoreMark combines).
#include <array>
#include <cstdint>

#include "workloads/kernel_util.hpp"
#include "workloads/kernels.hpp"

namespace focs::workloads {

namespace {
constexpr int kNodes = 24;
constexpr int kDim = 8;
constexpr std::uint32_t kSeedList = 0xc03e0001u;
constexpr std::uint32_t kSeedMatA = 0xc03e000au;
constexpr std::uint32_t kSeedMatB = 0xc03e000bu;
}  // namespace

Kernel kernel_coremark_mini() {
    // ---- Host reference ----------------------------------------------------
    std::array<std::uint32_t, kNodes> values{};
    std::uint32_t x = kSeedList;
    for (auto& v : values) {
        x = lcg_next(x);
        v = x & 0xffffu;
    }
    std::uint32_t lsum = 0;
    for (const auto v : values) lsum += v;
    std::uint32_t wsum = 0;
    for (int k = 0; k < kNodes; ++k) {
        wsum += values[static_cast<std::size_t>(kNodes - 1 - k)] * static_cast<std::uint32_t>(k + 1);
    }
    std::array<std::uint32_t, kDim * kDim> a{};
    std::array<std::uint32_t, kDim * kDim> b{};
    x = kSeedMatA;
    for (auto& e : a) {
        x = lcg_next(x);
        e = x & 0xfu;
    }
    x = kSeedMatB;
    for (auto& e : b) {
        x = lcg_next(x);
        e = x & 0xfu;
    }
    std::uint32_t msum = 0;
    for (int i = 0; i < kDim; ++i) {
        for (int j = 0; j < kDim; ++j) {
            std::uint32_t acc = 0;
            for (int k = 0; k < kDim; ++k) {
                acc += a[static_cast<std::size_t>(i * kDim + k)] *
                       b[static_cast<std::size_t>(k * kDim + j)];
            }
            msum += acc;
        }
    }
    std::uint32_t crc = 0;
    for (const std::uint32_t w : {lsum, wsum, msum}) {
        crc ^= w;
        for (int bit = 0; bit < 32; ++bit) {
            crc = (crc & 1u) != 0 ? (crc >> 1) ^ 0xa001a001u : crc >> 1;
        }
    }
    const std::uint32_t expected = crc;

    // ---- Guest -------------------------------------------------------------
    std::string s;
    s += "; coremark_mini: list processing + matrix MAC + CRC (CoreMark classes)\n";
    s += ".text\n_start:\n";
    // Build the linked list (node: [value, next]).
    s += "  l.li r25, nodes\n";
    s += "  l.mov r26, r25\n";
    s += load_imm("r10", kSeedList);
    s += format("  l.addi r11, r0, %d\n", kNodes);
    s += load_imm("r12", 1664525u);
    s += load_imm("r13", 1013904223u);
    s += "build:\n";
    s += "  l.mul r10, r10, r12\n";
    s += "  l.add r10, r10, r13\n";
    s += "  l.andi r14, r10, 0xffff\n";
    s += "  l.sw 0(r26), r14\n";
    s += "  l.addi r16, r26, 8\n";
    s += "  l.sw 4(r26), r16\n";
    s += "  l.mov r26, r16\n";
    s += "  l.addi r11, r11, -1\n";
    s += "  l.sfgts r11, r0\n";
    s += "  l.bf build\n";
    s += "  l.nop\n";
    s += "  l.sw -4(r26), r0         ; terminate the list\n";
    // Forward traversal.
    s += "  l.mov r26, r25\n";
    s += "  l.addi r18, r0, 0        ; lsum\n";
    s += "trav1:\n";
    s += "  l.sfeq r26, r0\n";
    s += "  l.bf trav1_done\n";
    s += "  l.nop\n";
    s += "  l.lwz r14, 0(r26)\n";
    s += "  l.add r18, r18, r14\n";
    s += "  l.j trav1\n";
    s += "  l.lwz r26, 4(r26)        ; cur = cur->next (delay slot)\n";
    s += "trav1_done:\n";
    // In-place reversal.
    s += "  l.addi r27, r0, 0        ; prev\n";
    s += "  l.mov r26, r25\n";
    s += "rev:\n";
    s += "  l.sfeq r26, r0\n";
    s += "  l.bf rev_done\n";
    s += "  l.nop\n";
    s += "  l.lwz r16, 4(r26)\n";
    s += "  l.sw 4(r26), r27\n";
    s += "  l.mov r27, r26\n";
    s += "  l.j rev\n";
    s += "  l.mov r26, r16           ; cur = next (delay slot)\n";
    s += "rev_done:\n";
    // Weighted traversal of the reversed list.
    s += "  l.addi r19, r0, 1        ; idx\n";
    s += "  l.addi r20, r0, 0        ; wsum\n";
    s += "trav2:\n";
    s += "  l.sfeq r27, r0\n";
    s += "  l.bf trav2_done\n";
    s += "  l.nop\n";
    s += "  l.lwz r14, 0(r27)\n";
    s += "  l.mul r14, r14, r19\n";
    s += "  l.add r20, r20, r14\n";
    s += "  l.addi r19, r19, 1\n";
    s += "  l.j trav2\n";
    s += "  l.lwz r27, 4(r27)        ; (delay slot)\n";
    s += "trav2_done:\n";
    // Matrix fill + multiply.
    for (const auto& [label, loop, seed] :
         {std::tuple{"mat_a", "fill_a", kSeedMatA}, std::tuple{"mat_b", "fill_b", kSeedMatB}}) {
        s += format("  l.li r26, %s\n", label);
        s += load_imm("r10", seed);
        s += format("  l.addi r11, r0, %d\n", kDim * kDim);
        s += format("%s:\n", loop);
        s += "  l.mul r10, r10, r12\n";
        s += "  l.add r10, r10, r13\n";
        s += "  l.andi r14, r10, 0xf\n";
        s += "  l.sw 0(r26), r14\n";
        s += "  l.addi r26, r26, 4\n";
        s += "  l.addi r11, r11, -1\n";
        s += "  l.sfgts r11, r0\n";
        s += format("  l.bf %s\n", loop);
        s += "  l.nop\n";
    }
    s += "  l.addi r21, r0, 0        ; msum\n";
    s += "  l.addi r22, r0, 0        ; i\n";
    s += "cm_i:\n";
    s += "  l.addi r23, r0, 0        ; j\n";
    s += "cm_j:\n";
    s += "  l.addi r24, r0, 0        ; k\n";
    s += "  l.addi r17, r0, 0        ; acc\n";
    s += format("  l.muli r14, r22, %d\n", 4 * kDim);
    s += "  l.li r26, mat_a\n";
    s += "  l.add r26, r26, r14\n";
    s += "  l.slli r14, r23, 2\n";
    s += "  l.li r27, mat_b\n";
    s += "  l.add r27, r27, r14\n";
    s += "cm_k:\n";
    s += "  l.lwz r14, 0(r26)\n";
    s += "  l.lwz r16, 0(r27)\n";
    s += "  l.mul r14, r14, r16\n";
    s += "  l.add r17, r17, r14\n";
    s += "  l.addi r26, r26, 4\n";
    s += format("  l.addi r27, r27, %d\n", 4 * kDim);
    s += "  l.addi r24, r24, 1\n";
    s += format("  l.sfltsi r24, %d\n", kDim);
    s += "  l.bf cm_k\n";
    s += "  l.nop\n";
    s += "  l.add r21, r21, r17\n";
    s += "  l.addi r23, r23, 1\n";
    s += format("  l.sfltsi r23, %d\n", kDim);
    s += "  l.bf cm_j\n";
    s += "  l.nop\n";
    s += "  l.addi r22, r22, 1\n";
    s += format("  l.sfltsi r22, %d\n", kDim);
    s += "  l.bf cm_i\n";
    s += "  l.nop\n";
    // CRC over {lsum (r18), wsum (r20), msum (r21)}.
    s += "  l.li r26, scratch\n";
    s += "  l.sw 0(r26), r18\n";
    s += "  l.sw 4(r26), r20\n";
    s += "  l.sw 8(r26), r21\n";
    s += "  l.addi r15, r0, 0        ; crc\n";
    s += "  l.addi r11, r0, 3\n";
    s += load_imm("r16", 0xa001a001u);
    s += "crcw:\n";
    s += "  l.lwz r14, 0(r26)\n";
    s += "  l.xor r15, r15, r14\n";
    s += "  l.addi r17, r0, 32\n";
    s += "crcb:\n";
    s += "  l.andi r14, r15, 1\n";
    s += "  l.srli r15, r15, 1\n";
    s += "  l.sfne r14, r0\n";
    s += "  l.bnf crcskip\n";
    s += "  l.nop\n";
    s += "  l.xor r15, r15, r16\n";
    s += "crcskip:\n";
    s += "  l.addi r17, r17, -1\n";
    s += "  l.sfgts r17, r0\n";
    s += "  l.bf crcb\n";
    s += "  l.nop\n";
    s += "  l.addi r26, r26, 4\n";
    s += "  l.addi r11, r11, -1\n";
    s += "  l.sfgts r11, r0\n";
    s += "  l.bf crcw\n";
    s += "  l.nop\n";
    s += check_and_exit("r15", expected);
    s += format(".data\nnodes: .space %d\nmat_a: .space %d\nmat_b: .space %d\nscratch: .space 12\n",
                8 * kNodes, 4 * kDim * kDim, 4 * kDim * kDim);
    return {"coremark_mini",
            "CoreMark-class composite: linked list + matrix MAC + CRC",
            std::move(s)};
}

}  // namespace focs::workloads
