#include "workloads/testgen.hpp"

#include <array>
#include <string>

#include "common/rng.hpp"
#include "workloads/kernel_util.hpp"

namespace focs::workloads {

namespace {

/// Working registers the generator may write. r24 is reserved for jalr
/// targets, r25 holds a non-zero divisor, r26 the scratch-buffer base.
constexpr std::array<int, 10> kPool = {10, 11, 12, 13, 14, 15, 16, 17, 18, 19};

class Generator {
public:
    explicit Generator(const TestGenConfig& config) : config_(config), rng_(config.seed) {}

    Kernel run() {
        emit_header();
        const int total = config_.weight_alu + config_.weight_mul + config_.weight_div +
                          config_.weight_shift + config_.weight_memory + config_.weight_branch +
                          config_.weight_jump + config_.weight_movhi;
        while (emitted_ < config_.instruction_count) {
            int pick = static_cast<int>(rng_.next_below(static_cast<std::uint64_t>(total)));
            if ((pick -= config_.weight_alu) < 0) emit_alu();
            else if ((pick -= config_.weight_mul) < 0) emit_mul();
            else if ((pick -= config_.weight_div) < 0) emit_div();
            else if ((pick -= config_.weight_shift) < 0) emit_shift();
            else if ((pick -= config_.weight_memory) < 0) emit_memory();
            else if ((pick -= config_.weight_branch) < 0) emit_branch();
            else if ((pick -= config_.weight_jump) < 0) emit_jump();
            else emit_movhi();
        }
        emit_footer();
        Kernel kernel;
        kernel.name = format("testgen_%llu", static_cast<unsigned long long>(config_.seed));
        kernel.description =
            format("semi-random characterization program (seed %llu, ~%d instructions)",
                   static_cast<unsigned long long>(config_.seed), config_.instruction_count);
        kernel.source = std::move(source_);
        return kernel;
    }

private:
    const char* reg() {
        return reg_name(kPool[static_cast<std::size_t>(rng_.next_below(kPool.size()))]);
    }

    static const char* reg_name(int index) {
        static const char* names[] = {"r10", "r11", "r12", "r13", "r14",
                                      "r15", "r16", "r17", "r18", "r19"};
        return names[index - 10];
    }

    void line(const std::string& text) {
        source_ += text;
        source_ += '\n';
        ++emitted_;
    }

    void emit_header() {
        source_ += format("; semi-random characterization program, seed %llu\n",
                          static_cast<unsigned long long>(config_.seed));
        source_ += ".text\n_start:\n";
        source_ += "  l.li r26, scratch\n";
        source_ += "  l.addi r25, r0, 7        ; non-zero divisor\n";
        // Seed the working registers with random values.
        for (const int r : kPool) {
            source_ += format("  l.li %s, 0x%08x\n", reg_name(r), rng_.next_u32());
        }
        emitted_ = 12 + 10;
    }

    void emit_footer() {
        source_ += "  l.addi r3, r0, 0\n";
        source_ += "  l.nop 0x1\n";
        source_ += "  l.nop\n  l.nop\n  l.nop\n  l.nop\n";
        source_ += format(".data\nscratch: .space %d\n", kScratchBytes);
    }

    void emit_alu() {
        static const char* ops3[] = {"l.add", "l.sub", "l.and", "l.or", "l.xor"};
        static const char* opsi[] = {"l.addi", "l.andi", "l.ori", "l.xori"};
        if (rng_.next_bool(0.6)) {
            line(format("  %s %s, %s, %s", ops3[rng_.next_below(5)], reg(), reg(), reg()));
        } else {
            const std::size_t op = rng_.next_below(4);
            const bool unsigned_imm = op == 1 || op == 2;  // andi/ori
            const std::int64_t imm = unsigned_imm ? rng_.next_range(0, 0xffff)
                                                  : rng_.next_range(-32768, 32767);
            line(format("  %s %s, %s, %lld", opsi[op], reg(), reg(),
                        static_cast<long long>(imm)));
        }
    }

    void emit_mul() {
        if (rng_.next_bool(0.7)) {
            line(format("  l.mul %s, %s, %s", reg(), reg(), reg()));
        } else {
            line(format("  l.muli %s, %s, %lld", reg(), reg(),
                        static_cast<long long>(rng_.next_range(-32768, 32767))));
        }
    }

    void emit_div() {
        line(format("  %s %s, %s, r25", rng_.next_bool(0.5) ? "l.div" : "l.divu", reg(), reg()));
    }

    void emit_shift() {
        static const char* ops3[] = {"l.sll", "l.srl", "l.sra", "l.ror"};
        static const char* opsi[] = {"l.slli", "l.srli", "l.srai", "l.rori"};
        if (rng_.next_bool(0.5)) {
            line(format("  %s %s, %s, %s", ops3[rng_.next_below(4)], reg(), reg(), reg()));
        } else {
            line(format("  %s %s, %s, %lld", opsi[rng_.next_below(4)], reg(), reg(),
                        static_cast<long long>(rng_.next_range(0, 31))));
        }
    }

    void emit_memory() {
        static const char* loads[] = {"l.lwz", "l.lhz", "l.lhs", "l.lbz", "l.lbs"};
        static const char* stores[] = {"l.sw", "l.sh", "l.sb"};
        if (rng_.next_bool(0.5)) {
            const std::size_t op = rng_.next_below(5);
            const int align = op == 0 ? 4 : op <= 2 ? 2 : 1;
            const std::int64_t offset = rng_.next_range(0, (kScratchBytes - 4) / align) * align;
            line(format("  %s %s, %lld(r26)", loads[op], reg(), static_cast<long long>(offset)));
        } else {
            const std::size_t op = rng_.next_below(3);
            const int align = op == 0 ? 4 : op == 1 ? 2 : 1;
            const std::int64_t offset = rng_.next_range(0, (kScratchBytes - 4) / align) * align;
            line(format("  %s %lld(r26), %s", stores[op], static_cast<long long>(offset), reg()));
        }
    }

    void emit_branch() {
        static const char* compares[] = {"l.sfeq",  "l.sfne",  "l.sfgtu", "l.sfgeu", "l.sfltu",
                                         "l.sfleu", "l.sfgts", "l.sfges", "l.sflts", "l.sfles"};
        static const char* compares_i[] = {"l.sfeqi",  "l.sfnei",  "l.sfgtui", "l.sfgeui",
                                           "l.sfltui", "l.sfleui", "l.sfgtsi", "l.sfgesi",
                                           "l.sfltsi", "l.sflesi"};
        if (rng_.next_bool(0.5)) {
            line(format("  %s %s, %s", compares[rng_.next_below(10)], reg(), reg()));
        } else {
            line(format("  %s %s, %lld", compares_i[rng_.next_below(10)], reg(),
                        static_cast<long long>(rng_.next_range(-32768, 32767))));
        }
        const int label = next_label_++;
        line(format("  %s tg_%d", rng_.next_bool(0.5) ? "l.bf" : "l.bnf", label));
        line("  l.nop");
        // A short block that executes only on fall-through.
        const int skip = static_cast<int>(rng_.next_below(3));
        for (int i = 0; i < skip; ++i) emit_alu();
        source_ += format("tg_%d:\n", label);
    }

    void emit_jump() {
        const int label = next_label_++;
        const double kind = rng_.next_double();
        if (kind < 0.6) {
            line(format("  l.j tg_%d", label));
            line("  l.nop");
        } else if (kind < 0.85) {
            line(format("  l.jal tg_%d", label));  // clobbers r9, unused here
            line("  l.nop");
        } else {
            source_ += format("  l.li r24, tg_%d\n", label);
            emitted_ += 2;
            line("  l.jalr r24");
            line("  l.nop");
        }
        source_ += format("tg_%d:\n", label);
    }

    void emit_movhi() {
        line(format("  l.movhi %s, 0x%04x", reg(),
                    static_cast<unsigned>(rng_.next_below(0x10000))));
    }

    static constexpr int kScratchBytes = 4096;

    TestGenConfig config_;
    Rng rng_;
    std::string source_;
    int emitted_ = 0;
    int next_label_ = 0;
};

}  // namespace

Kernel generate_random_kernel(const TestGenConfig& config) {
    Generator generator(config);
    return generator.run();
}

}  // namespace focs::workloads
