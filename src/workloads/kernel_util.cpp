#include "workloads/kernel_util.hpp"

#include <cstdarg>
#include <cstdio>
#include <vector>

#include "common/error.hpp"

namespace focs::workloads {

std::string format(const char* fmt, ...) {
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    check(needed >= 0, "format: encoding error");
    std::vector<char> buffer(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(buffer.data(), buffer.size(), fmt, args_copy);
    va_end(args_copy);
    return std::string(buffer.data(), static_cast<std::size_t>(needed));
}

std::string load_imm(const char* reg, std::uint32_t value) {
    return format("  l.li %s, 0x%08x\n", reg, value);
}

std::string check_and_exit(const char* reg, std::uint32_t expected) {
    std::string out;
    out += format("  l.mov r3, %s          ; publish the checksum\n", reg);
    out += "  l.nop 0x2               ; report\n";
    out += load_imm("r30", expected);
    out += format("  l.sfeq %s, r30\n", reg);
    out += "  l.bf self_check_pass\n";
    out += "  l.nop\n";
    out += "  l.addi r3, r0, 1        ; FAIL\n";
    out += "  l.j self_check_done\n";
    out += "  l.nop\n";
    out += "self_check_pass:\n";
    out += "  l.addi r3, r0, 0        ; PASS\n";
    out += "self_check_done:\n";
    out += "  l.nop 0x1               ; exit\n";
    out += "  l.nop\n  l.nop\n  l.nop\n  l.nop\n";
    return out;
}

}  // namespace focs::workloads
