// Graph / string / state-machine kernels: dijkstra, levenshtein, fsm.
#include <array>
#include <cstdint>
#include <vector>

#include "workloads/kernel_util.hpp"
#include "workloads/kernels.hpp"

namespace focs::workloads {

Kernel kernel_dijkstra() {
    constexpr int kV = 12;
    constexpr std::uint32_t kSeed = 0xd13c57a1u;
    constexpr std::uint32_t kInf = 0x7fffffffu;

    // Host reference (identical traversal and tie-breaking).
    std::array<std::array<std::uint32_t, kV>, kV> w{};
    std::uint32_t x = kSeed;
    for (int i = 0; i < kV; ++i) {
        for (int j = 0; j < kV; ++j) {
            x = lcg_next(x);
            w[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = (x & 0x3fu) + 1u;
        }
    }
    for (int i = 0; i < kV; ++i) w[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)] = 0;
    std::array<std::uint32_t, kV> dist{};
    std::array<std::uint32_t, kV> visited{};
    dist.fill(kInf);
    dist[0] = 0;
    for (int round = 0; round < kV; ++round) {
        std::uint32_t best = kInf;
        int u = -1;
        for (int v = 0; v < kV; ++v) {
            if (visited[static_cast<std::size_t>(v)] == 0 &&
                dist[static_cast<std::size_t>(v)] < best) {
                best = dist[static_cast<std::size_t>(v)];
                u = v;
            }
        }
        if (u < 0) break;
        visited[static_cast<std::size_t>(u)] = 1;
        for (int v = 0; v < kV; ++v) {
            if (visited[static_cast<std::size_t>(v)] != 0) continue;
            const std::uint32_t nd = dist[static_cast<std::size_t>(u)] +
                                     w[static_cast<std::size_t>(u)][static_cast<std::size_t>(v)];
            if (nd < dist[static_cast<std::size_t>(v)]) dist[static_cast<std::size_t>(v)] = nd;
        }
    }
    std::uint32_t expected = 0;
    for (int v = 0; v < kV; ++v) expected += dist[static_cast<std::size_t>(v)];

    std::string s;
    s += "; dijkstra: single-source shortest paths, O(V^2) (BEEBS dijkstra class)\n";
    s += ".text\n_start:\n";
    // Fill weight matrix.
    s += "  l.li r25, wmat\n";
    s += "  l.mov r26, r25\n";
    s += load_imm("r10", kSeed);
    s += format("  l.addi r11, r0, %d\n", kV * kV);
    s += load_imm("r12", 1664525u);
    s += load_imm("r13", 1013904223u);
    s += "fill_w:\n";
    s += "  l.mul r10, r10, r12\n";
    s += "  l.add r10, r10, r13\n";
    s += "  l.andi r14, r10, 0x3f\n";
    s += "  l.addi r14, r14, 1\n";
    s += "  l.sw 0(r26), r14\n";
    s += "  l.addi r26, r26, 4\n";
    s += "  l.addi r11, r11, -1\n";
    s += "  l.sfgts r11, r0\n";
    s += "  l.bf fill_w\n";
    s += "  l.nop\n";
    // Zero the diagonal: w[i][i] at offset i*(4*kV+4).
    s += "  l.mov r26, r25\n";
    s += format("  l.addi r11, r0, %d\n", kV);
    s += "zero_diag:\n";
    s += "  l.sw 0(r26), r0\n";
    s += format("  l.addi r26, r26, %d\n", 4 * kV + 4);
    s += "  l.addi r11, r11, -1\n";
    s += "  l.sfgts r11, r0\n";
    s += "  l.bf zero_diag\n";
    s += "  l.nop\n";
    // dist[] = INF except dist[0] = 0; visited[] = 0.
    s += "  l.li r26, dist\n";
    s += "  l.li r27, visited\n";
    s += load_imm("r15", kInf);
    s += format("  l.addi r11, r0, %d\n", kV);
    s += "init_d:\n";
    s += "  l.sw 0(r26), r15\n";
    s += "  l.sw 0(r27), r0\n";
    s += "  l.addi r26, r26, 4\n";
    s += "  l.addi r27, r27, 4\n";
    s += "  l.addi r11, r11, -1\n";
    s += "  l.sfgts r11, r0\n";
    s += "  l.bf init_d\n";
    s += "  l.nop\n";
    s += "  l.li r26, dist\n";
    s += "  l.sw 0(r26), r0          ; dist[0] = 0\n";
    // Main loop: kV rounds.
    s += format("  l.addi r20, r0, %d   ; rounds\n", kV);
    s += "round:\n";
    // Find unvisited minimum.
    s += "  l.addi r21, r0, 0        ; v\n";
    s += load_imm("r22", kInf);
    s += "  l.addi r23, r0, -1       ; u = -1\n";
    s += "scan:\n";
    s += "  l.li r27, visited\n";
    s += "  l.slli r14, r21, 2\n";
    s += "  l.add r16, r27, r14\n";
    s += "  l.lwz r16, 0(r16)\n";
    s += "  l.sfne r16, r0\n";
    s += "  l.bf scan_next\n";
    s += "  l.nop\n";
    s += "  l.li r26, dist\n";
    s += "  l.add r16, r26, r14\n";
    s += "  l.lwz r16, 0(r16)        ; dist[v]\n";
    s += "  l.sfltu r16, r22\n";
    s += "  l.bnf scan_next\n";
    s += "  l.nop\n";
    s += "  l.mov r22, r16           ; best = dist[v]\n";
    s += "  l.mov r23, r21           ; u = v\n";
    s += "scan_next:\n";
    s += "  l.addi r21, r21, 1\n";
    s += format("  l.sfltsi r21, %d\n", kV);
    s += "  l.bf scan\n";
    s += "  l.nop\n";
    s += "  l.sflts r23, r0\n";
    s += "  l.bf done_rounds         ; no reachable unvisited node\n";
    s += "  l.nop\n";
    // visited[u] = 1.
    s += "  l.li r27, visited\n";
    s += "  l.slli r14, r23, 2\n";
    s += "  l.add r14, r27, r14\n";
    s += "  l.addi r16, r0, 1\n";
    s += "  l.sw 0(r14), r16\n";
    // Relax neighbours: r24 = &w[u][0], r17 = dist[u].
    s += "  l.li r26, dist\n";
    s += "  l.slli r14, r23, 2\n";
    s += "  l.add r14, r26, r14\n";
    s += "  l.lwz r17, 0(r14)        ; dist[u]\n";
    s += format("  l.muli r14, r23, %d\n", 4 * kV);
    s += "  l.add r24, r25, r14      ; &w[u][0]\n";
    s += "  l.addi r21, r0, 0        ; v\n";
    s += "relax:\n";
    s += "  l.li r27, visited\n";
    s += "  l.slli r14, r21, 2\n";
    s += "  l.add r16, r27, r14\n";
    s += "  l.lwz r16, 0(r16)\n";
    s += "  l.sfne r16, r0\n";
    s += "  l.bf relax_next\n";
    s += "  l.nop\n";
    s += "  l.lwz r16, 0(r24)        ; w[u][v]\n";
    s += "  l.add r16, r17, r16      ; nd\n";
    s += "  l.li r26, dist\n";
    s += "  l.add r14, r26, r14\n";
    s += "  l.lwz r15, 0(r14)        ; dist[v]\n";
    s += "  l.sfltu r16, r15\n";
    s += "  l.bnf relax_next\n";
    s += "  l.nop\n";
    s += "  l.sw 0(r14), r16\n";
    s += "relax_next:\n";
    s += "  l.addi r24, r24, 4\n";
    s += "  l.addi r21, r21, 1\n";
    s += format("  l.sfltsi r21, %d\n", kV);
    s += "  l.bf relax\n";
    s += "  l.nop\n";
    s += "  l.addi r20, r20, -1\n";
    s += "  l.sfgts r20, r0\n";
    s += "  l.bf round\n";
    s += "  l.nop\n";
    s += "done_rounds:\n";
    // checksum = sum dist[].
    s += "  l.li r26, dist\n";
    s += "  l.addi r18, r0, 0\n";
    s += format("  l.addi r11, r0, %d\n", kV);
    s += "sum_d:\n";
    s += "  l.lwz r14, 0(r26)\n";
    s += "  l.add r18, r18, r14\n";
    s += "  l.addi r26, r26, 4\n";
    s += "  l.addi r11, r11, -1\n";
    s += "  l.sfgts r11, r0\n";
    s += "  l.bf sum_d\n";
    s += "  l.nop\n";
    s += check_and_exit("r18", expected);
    s += format(".data\nwmat: .space %d\ndist: .space %d\nvisited: .space %d\n", 4 * kV * kV,
                4 * kV, 4 * kV);
    return {"dijkstra", "O(V^2) Dijkstra over a dense 12-node graph", std::move(s)};
}

Kernel kernel_levenshtein() {
    constexpr int kM = 12;  // |s|
    constexpr int kN = 16;  // |t|
    constexpr std::uint32_t kSeed = 0x7e7e1234u;

    // Host reference.
    std::array<std::uint8_t, kM> sa{};
    std::array<std::uint8_t, kN> ta{};
    std::uint32_t x = kSeed;
    for (auto& c : sa) {
        x = lcg_next(x);
        c = static_cast<std::uint8_t>('a' + (x & 7u));
    }
    for (auto& c : ta) {
        x = lcg_next(x);
        c = static_cast<std::uint8_t>('a' + (x & 7u));
    }
    std::vector<std::uint32_t> prev(kN + 1), curr(kN + 1);
    for (int j = 0; j <= kN; ++j) prev[static_cast<std::size_t>(j)] = static_cast<std::uint32_t>(j);
    for (int i = 1; i <= kM; ++i) {
        curr[0] = static_cast<std::uint32_t>(i);
        for (int j = 1; j <= kN; ++j) {
            const std::uint32_t cost = sa[static_cast<std::size_t>(i - 1)] ==
                                               ta[static_cast<std::size_t>(j - 1)]
                                           ? 0u
                                           : 1u;
            std::uint32_t best = prev[static_cast<std::size_t>(j)] + 1u;
            const std::uint32_t left = curr[static_cast<std::size_t>(j - 1)] + 1u;
            if (left < best) best = left;
            const std::uint32_t diag = prev[static_cast<std::size_t>(j - 1)] + cost;
            if (diag < best) best = diag;
            curr[static_cast<std::size_t>(j)] = best;
        }
        std::swap(prev, curr);
    }
    const std::uint32_t expected = prev[kN];

    std::string s;
    s += "; levenshtein: edit distance DP with byte loads/stores\n";
    s += ".text\n_start:\n";
    // Fill strings as bytes (exercises l.sb / l.lbz).
    s += "  l.li r26, str_s\n";
    s += load_imm("r10", kSeed);
    s += format("  l.addi r11, r0, %d\n", kM + kN);
    s += load_imm("r12", 1664525u);
    s += load_imm("r13", 1013904223u);
    s += "fill_str:\n";
    s += "  l.mul r10, r10, r12\n";
    s += "  l.add r10, r10, r13\n";
    s += "  l.andi r14, r10, 7\n";
    s += format("  l.addi r14, r14, %d   ; 'a'\n", 'a');
    s += "  l.sb 0(r26), r14\n";
    s += "  l.addi r26, r26, 1\n";
    s += "  l.addi r11, r11, -1\n";
    s += "  l.sfgts r11, r0\n";
    s += "  l.bf fill_str\n";
    s += "  l.nop\n";
    // prev[j] = j.
    s += "  l.li r26, row_prev\n";
    s += "  l.addi r14, r0, 0\n";
    s += "init_prev:\n";
    s += "  l.sw 0(r26), r14\n";
    s += "  l.addi r26, r26, 4\n";
    s += "  l.addi r14, r14, 1\n";
    s += format("  l.sflesi r14, %d\n", kN);
    s += "  l.bf init_prev\n";
    s += "  l.nop\n";
    s += "  l.li r26, row_prev        ; prev pointer\n";
    s += "  l.li r27, row_curr        ; curr pointer\n";
    s += "  l.addi r20, r0, 1         ; i\n";
    s += "lev_i:\n";
    s += "  l.sw 0(r27), r20          ; curr[0] = i\n";
    s += "  l.li r24, str_s\n";
    s += "  l.add r14, r24, r20\n";
    s += "  l.lbz r22, -1(r14)        ; sc = s[i-1]\n";
    s += "  l.addi r21, r0, 1         ; j\n";
    s += "lev_j:\n";
    s += "  l.li r24, str_t\n";
    s += "  l.add r14, r24, r21\n";
    s += "  l.lbz r23, -1(r14)        ; tc = t[j-1]\n";
    s += "  l.slli r14, r21, 2\n";
    s += "  l.add r15, r26, r14\n";
    s += "  l.lwz r16, 0(r15)         ; prev[j]\n";
    s += "  l.lwz r17, -4(r15)        ; prev[j-1]\n";
    s += "  l.add r15, r27, r14\n";
    s += "  l.lwz r19, -4(r15)        ; curr[j-1]\n";
    s += "  l.addi r16, r16, 1        ; up = prev[j]+1\n";
    s += "  l.addi r19, r19, 1        ; left = curr[j-1]+1\n";
    s += "  l.sfeq r22, r23\n";
    s += "  l.bf lev_same\n";
    s += "  l.nop\n";
    s += "  l.addi r17, r17, 1        ; diag = prev[j-1]+cost\n";
    s += "lev_same:\n";
    s += "  l.sfltu r19, r16          ; left < up?\n";
    s += "  l.bnf lev_m1\n";
    s += "  l.nop\n";
    s += "  l.mov r16, r19\n";
    s += "lev_m1:\n";
    s += "  l.sfltu r17, r16          ; diag < best?\n";
    s += "  l.bnf lev_m2\n";
    s += "  l.nop\n";
    s += "  l.mov r16, r17\n";
    s += "lev_m2:\n";
    s += "  l.sw 0(r15), r16          ; curr[j] = best\n";
    s += "  l.addi r21, r21, 1\n";
    s += format("  l.sflesi r21, %d\n", kN);
    s += "  l.bf lev_j\n";
    s += "  l.nop\n";
    s += "  l.mov r14, r26            ; swap prev/curr pointers\n";
    s += "  l.mov r26, r27\n";
    s += "  l.mov r27, r14\n";
    s += "  l.addi r20, r20, 1\n";
    s += format("  l.sflesi r20, %d\n", kM);
    s += "  l.bf lev_i\n";
    s += "  l.nop\n";
    s += format("  l.lwz r18, %d(r26)   ; distance = prev[N]\n", 4 * kN);
    s += check_and_exit("r18", expected);
    s += format(".data\nstr_s: .space %d\nstr_t: .space %d\n.align 4\nrow_prev: .space %d\n"
                "row_curr: .space %d\n",
                kM, kN, 4 * (kN + 1), 4 * (kN + 1));
    return {"levenshtein", "edit-distance dynamic programming (byte memory ops)", std::move(s)};
}

Kernel kernel_fsm() {
    constexpr int kSteps = 256;
    constexpr std::uint32_t kSeed = 0xf5a10001u;

    // Host reference.
    std::uint32_t x = kSeed;
    std::uint32_t h = 0;
    std::uint32_t state = 0;
    for (int i = 0; i < kSteps; ++i) {
        x = lcg_next(x);
        const std::uint32_t sym = x & 3u;
        h = h * 31u + (7u * state + sym);
        state = (sym + 2u * state) & 3u;
    }
    const std::uint32_t expected = h;

    std::string s;
    s += "; fsm: table-driven state machine with computed jumps (l.jr)\n";
    s += ".text\n_start:\n";
    s += load_imm("r10", kSeed);
    s += format("  l.addi r11, r0, %d   ; steps\n", kSteps);
    s += "  l.addi r18, r0, 0        ; h\n";
    s += "  l.addi r20, r0, 0        ; state\n";
    s += load_imm("r12", 1664525u);
    s += load_imm("r13", 1013904223u);
    s += "fsm_loop:\n";
    s += "  l.sfgts r11, r0\n";
    s += "  l.bnf fsm_done\n";
    s += "  l.nop\n";
    s += "  l.mul r10, r10, r12\n";
    s += "  l.add r10, r10, r13\n";
    s += "  l.andi r21, r10, 3       ; sym\n";
    s += "  l.li r26, jumptab\n";
    s += "  l.slli r14, r20, 2\n";
    s += "  l.add r14, r26, r14\n";
    s += "  l.lwz r16, 0(r14)\n";
    s += "  l.jr r16\n";
    s += "  l.addi r11, r11, -1      ; --steps (delay slot)\n";
    s += "state0:\n";
    s += "  l.muli r18, r18, 31\n";
    s += "  l.add r18, r18, r21\n";
    s += "  l.j fsm_loop\n";
    s += "  l.andi r20, r21, 3       ; next = sym (delay slot)\n";
    s += "state1:\n";
    s += "  l.muli r18, r18, 31\n";
    s += "  l.addi r14, r21, 7\n";
    s += "  l.add r18, r18, r14\n";
    s += "  l.addi r14, r21, 2\n";
    s += "  l.j fsm_loop\n";
    s += "  l.andi r20, r14, 3       ; next = (sym+2)&3 (delay slot)\n";
    s += "state2:\n";
    s += "  l.muli r18, r18, 31\n";
    s += "  l.addi r14, r21, 14\n";
    s += "  l.add r18, r18, r14\n";
    s += "  l.addi r14, r21, 4\n";
    s += "  l.j fsm_loop\n";
    s += "  l.andi r20, r14, 3       ; next = (sym+4)&3 (delay slot)\n";
    s += "state3:\n";
    s += "  l.muli r18, r18, 31\n";
    s += "  l.addi r14, r21, 21\n";
    s += "  l.add r18, r18, r14\n";
    s += "  l.addi r14, r21, 6\n";
    s += "  l.j fsm_loop\n";
    s += "  l.andi r20, r14, 3       ; next = (sym+6)&3 (delay slot)\n";
    s += "fsm_done:\n";
    s += check_and_exit("r18", expected);
    s += ".data\njumptab: .word state0, state1, state2, state3\n";
    return {"fsm", "table-driven 4-state machine, 256 steps, computed jumps", std::move(s)};
}

}  // namespace focs::workloads
