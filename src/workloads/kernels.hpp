// Internal: individual kernel constructors (each computes its reference
// checksum host-side and embeds it into the generated assembly).
#pragma once

#include "workloads/kernel.hpp"

namespace focs::workloads {

// BEEBS-style / CoreMark-style benchmark kernels (Fig. 8 suite).
Kernel kernel_crc32();
Kernel kernel_fibcall();
Kernel kernel_prime();
Kernel kernel_isqrt();
Kernel kernel_bubblesort();
Kernel kernel_insertsort();
Kernel kernel_bsearch();
Kernel kernel_fir();
Kernel kernel_edn();
Kernel kernel_matmult();
Kernel kernel_dijkstra();
Kernel kernel_levenshtein();
Kernel kernel_fsm();
Kernel kernel_coremark_mini();
Kernel kernel_strsearch();
Kernel kernel_bitcount();
Kernel kernel_shellsort();
Kernel kernel_fixmath();
Kernel kernel_qsort();

// Directed characterization kernels (per functional unit).
Kernel char_alu();
Kernel char_mul_div();
Kernel char_shift();
Kernel char_memory();
Kernel char_compare_branch();
Kernel char_jump();

}  // namespace focs::workloads
