// Workload kernels.
//
// The paper evaluates with CoreMark and BEEBS compiled by the OpenRISC GCC
// toolchain. This repository substitutes hand-written OR1K assembly kernels
// that mirror those workload classes (sorting, CRC, FIR, matrix algebra,
// graph search, string processing, state machines, ...) — see DESIGN.md.
// Every kernel is self-checking: it computes a checksum, reports it via
// l.nop 0x2, compares against a host-computed reference embedded at
// generation time, and exits with r3 == 0 only on success.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "asm/program.hpp"

namespace focs::workloads {

struct Kernel {
    std::string name;
    std::string description;
    std::string source;  ///< OR1K assembly accepted by focs::assembler
};

/// The benchmark suite evaluated in paper Fig. 8 (CoreMark-like composite
/// plus BEEBS-style kernels).
const std::vector<Kernel>& benchmark_suite();

/// The characterization suite of paper Fig. 2: directed per-instruction
/// kernels plus seeded semi-random test programs. Covers every opcode of
/// the ISA subset with worst-case-exciting operand patterns.
const std::vector<Kernel>& characterization_suite();

/// Finds a kernel by name in either suite; throws focs::Error if unknown.
const Kernel& find_kernel(const std::string& name);

/// Assembles every kernel of a suite.
std::vector<std::pair<std::string, assembler::Program>> assemble_suite(
    const std::vector<Kernel>& kernels);

/// Assembles every kernel into the bare Program list (characterization
/// flow input).
std::vector<assembler::Program> assemble_programs(const std::vector<Kernel>& kernels);

}  // namespace focs::workloads
