#include "workloads/kernel.hpp"

#include "asm/assembler.hpp"
#include "common/error.hpp"
#include "workloads/kernels.hpp"
#include "workloads/testgen.hpp"

namespace focs::workloads {

const std::vector<Kernel>& benchmark_suite() {
    static const std::vector<Kernel> suite = [] {
        std::vector<Kernel> kernels;
        kernels.push_back(kernel_coremark_mini());
        kernels.push_back(kernel_crc32());
        kernels.push_back(kernel_fibcall());
        kernels.push_back(kernel_prime());
        kernels.push_back(kernel_isqrt());
        kernels.push_back(kernel_bubblesort());
        kernels.push_back(kernel_insertsort());
        kernels.push_back(kernel_bsearch());
        kernels.push_back(kernel_fir());
        kernels.push_back(kernel_edn());
        kernels.push_back(kernel_matmult());
        kernels.push_back(kernel_dijkstra());
        kernels.push_back(kernel_levenshtein());
        kernels.push_back(kernel_fsm());
        kernels.push_back(kernel_strsearch());
        kernels.push_back(kernel_bitcount());
        kernels.push_back(kernel_shellsort());
        kernels.push_back(kernel_fixmath());
        kernels.push_back(kernel_qsort());
        return kernels;
    }();
    return suite;
}

const std::vector<Kernel>& characterization_suite() {
    static const std::vector<Kernel> suite = [] {
        std::vector<Kernel> kernels;
        kernels.push_back(char_alu());
        kernels.push_back(char_mul_div());
        kernels.push_back(char_shift());
        kernels.push_back(char_memory());
        kernels.push_back(char_compare_branch());
        kernels.push_back(char_jump());
        for (const std::uint64_t seed : {0xa1ULL, 0xb2ULL, 0xc3ULL, 0xd4ULL, 0xe5ULL, 0xf6ULL}) {
            TestGenConfig config;
            config.seed = seed;
            config.instruction_count = 2200;
            config.weight_branch = 7;
            config.weight_jump = 3;
            config.weight_mul = 10;
            config.weight_shift = 8;
            config.weight_movhi = 4;
            kernels.push_back(generate_random_kernel(config));
        }
        return kernels;
    }();
    return suite;
}

const Kernel& find_kernel(const std::string& name) {
    for (const auto& k : benchmark_suite()) {
        if (k.name == name) return k;
    }
    for (const auto& k : characterization_suite()) {
        if (k.name == name) return k;
    }
    throw Error("unknown kernel: " + name);
}

std::vector<std::pair<std::string, assembler::Program>> assemble_suite(
    const std::vector<Kernel>& kernels) {
    std::vector<std::pair<std::string, assembler::Program>> out;
    out.reserve(kernels.size());
    for (const auto& k : kernels) {
        out.emplace_back(k.name, assembler::assemble(k.source));
    }
    return out;
}

std::vector<assembler::Program> assemble_programs(const std::vector<Kernel>& kernels) {
    std::vector<assembler::Program> out;
    out.reserve(kernels.size());
    for (const auto& k : kernels) {
        out.push_back(assembler::assemble(k.source));
    }
    return out;
}

}  // namespace focs::workloads
