// Additional BEEBS-class kernels: strsearch, bitcount, shellsort, fixmath.
#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "workloads/kernel_util.hpp"
#include "workloads/kernels.hpp"

namespace focs::workloads {

Kernel kernel_strsearch() {
    constexpr int kTextLen = 256;
    constexpr int kPatLen = 4;
    constexpr int kPatPos = 100;
    constexpr std::uint32_t kSeed = 0x57a5ea1cu;

    // Host reference: naive substring search, count matches + first index.
    std::array<std::uint8_t, kTextLen> text{};
    std::uint32_t x = kSeed;
    for (auto& c : text) {
        x = lcg_next(x);
        c = static_cast<std::uint8_t>('a' + (x & 3u));  // 4-letter alphabet
    }
    std::array<std::uint8_t, kPatLen> pattern{};
    for (int j = 0; j < kPatLen; ++j) {
        pattern[static_cast<std::size_t>(j)] = text[static_cast<std::size_t>(kPatPos + j)];
    }
    std::uint32_t count = 0;
    std::uint32_t first = 0xffffffffu;
    for (int i = 0; i + kPatLen <= kTextLen; ++i) {
        bool match = true;
        for (int j = 0; j < kPatLen; ++j) {
            if (text[static_cast<std::size_t>(i + j)] != pattern[static_cast<std::size_t>(j)]) {
                match = false;
                break;
            }
        }
        if (match) {
            ++count;
            if (first == 0xffffffffu) first = static_cast<std::uint32_t>(i);
        }
    }
    const std::uint32_t expected = count * 0x10001u + first;

    std::string s;
    s += "; strsearch: naive substring search over a 256-byte text\n";
    s += ".text\n_start:\n";
    // Fill text.
    s += "  l.li r26, text\n";
    s += load_imm("r10", kSeed);
    s += format("  l.addi r11, r0, %d\n", kTextLen);
    s += load_imm("r12", 1664525u);
    s += load_imm("r13", 1013904223u);
    s += "fill_t:\n";
    s += "  l.mul r10, r10, r12\n";
    s += "  l.add r10, r10, r13\n";
    s += "  l.andi r14, r10, 3\n";
    s += format("  l.addi r14, r14, %d\n", 'a');
    s += "  l.sb 0(r26), r14\n";
    s += "  l.addi r11, r11, -1\n";
    s += "  l.sfgts r11, r0\n";
    s += "  l.bf fill_t\n";
    s += "  l.addi r26, r26, 1       ; pointer bump (delay slot)\n";
    // Copy the pattern out of the text.
    s += "  l.li r26, text\n";
    s += "  l.li r27, pat\n";
    s += format("  l.addi r11, r0, %d\n", kPatLen);
    s += format("  l.addi r26, r26, %d\n", kPatPos);
    s += "copy_p:\n";
    s += "  l.lbz r14, 0(r26)\n";
    s += "  l.sb 0(r27), r14\n";
    s += "  l.addi r26, r26, 1\n";
    s += "  l.addi r27, r27, 1\n";
    s += "  l.addi r11, r11, -1\n";
    s += "  l.sfgts r11, r0\n";
    s += "  l.bf copy_p\n";
    s += "  l.nop\n";
    // Search.
    s += "  l.addi r20, r0, 0        ; i\n";
    s += "  l.addi r21, r0, 0        ; count\n";
    s += "  l.addi r22, r0, -1       ; first\n";
    s += "search_i:\n";
    s += "  l.li r26, text\n";
    s += "  l.add r26, r26, r20\n";
    s += "  l.li r27, pat\n";
    s += "  l.addi r23, r0, 0        ; j\n";
    s += "cmp_j:\n";
    s += "  l.lbz r14, 0(r26)\n";
    s += "  l.lbz r16, 0(r27)\n";
    s += "  l.sfne r14, r16\n";
    s += "  l.bf no_match\n";
    s += "  l.nop\n";
    s += "  l.addi r26, r26, 1\n";
    s += "  l.addi r27, r27, 1\n";
    s += "  l.addi r23, r23, 1\n";
    s += format("  l.sfltsi r23, %d\n", kPatLen);
    s += "  l.bf cmp_j\n";
    s += "  l.nop\n";
    s += "  l.addi r21, r21, 1       ; match\n";
    s += "  l.sflts r22, r0\n";
    s += "  l.bnf no_match\n";
    s += "  l.nop\n";
    s += "  l.mov r22, r20           ; first = i\n";
    s += "no_match:\n";
    s += "  l.addi r20, r20, 1\n";
    s += format("  l.sflesi r20, %d\n", kTextLen - kPatLen);
    s += "  l.bf search_i\n";
    s += "  l.nop\n";
    // checksum = count * 0x10001 + first
    s += load_imm("r16", 0x10001u);
    s += "  l.mul r18, r21, r16\n";
    s += "  l.add r18, r18, r22\n";
    s += check_and_exit("r18", expected);
    s += format(".data\ntext: .space %d\npat: .space %d\n", kTextLen, kPatLen);
    return {"strsearch", "naive substring search, 4-letter alphabet", std::move(s)};
}

Kernel kernel_bitcount() {
    constexpr int kWords = 128;
    constexpr std::uint32_t kSeed = 0xb17c0047u;

    // Host reference: Kernighan loop + nibble table, combined.
    std::uint32_t x = kSeed;
    std::uint32_t sum_kernighan = 0;
    std::uint32_t sum_table = 0;
    for (int i = 0; i < kWords; ++i) {
        x = lcg_next(x);
        std::uint32_t v = x;
        while (v != 0) {
            v &= v - 1;
            ++sum_kernighan;
        }
        for (std::uint32_t w = x; w != 0; w >>= 4) {
            sum_table += std::uint32_t{static_cast<std::uint32_t>(__builtin_popcount(w & 0xfu))};
        }
    }
    const std::uint32_t expected = sum_kernighan * 3u + sum_table;

    std::string s;
    s += "; bitcount: population counts, Kernighan loop + nibble table (BEEBS bitcnt)\n";
    s += ".text\n_start:\n";
    // Build the 16-entry nibble popcount table.
    s += "  l.li r26, nibble_tab\n";
    s += "  l.addi r10, r0, 0        ; n\n";
    s += "tab_loop:\n";
    s += "  l.mov r14, r10\n";
    s += "  l.addi r15, r0, 0\n";
    s += "tab_inner:\n";
    s += "  l.sfeq r14, r0\n";
    s += "  l.bf tab_store\n";
    s += "  l.nop\n";
    s += "  l.addi r16, r14, -1\n";
    s += "  l.and r14, r14, r16\n";
    s += "  l.j tab_inner\n";
    s += "  l.addi r15, r15, 1       ; ++bits (delay slot)\n";
    s += "tab_store:\n";
    s += "  l.sw 0(r26), r15\n";
    s += "  l.addi r26, r26, 4\n";
    s += "  l.addi r10, r10, 1\n";
    s += "  l.sfltsi r10, 16\n";
    s += "  l.bf tab_loop\n";
    s += "  l.nop\n";
    // Main loop over LCG words.
    s += load_imm("r10", kSeed);
    s += format("  l.addi r11, r0, %d\n", kWords);
    s += load_imm("r12", 1664525u);
    s += load_imm("r13", 1013904223u);
    s += "  l.addi r18, r0, 0        ; sum_kernighan\n";
    s += "  l.addi r19, r0, 0        ; sum_table\n";
    s += "word_loop:\n";
    s += "  l.mul r10, r10, r12\n";
    s += "  l.add r10, r10, r13\n";
    // Kernighan.
    s += "  l.mov r14, r10\n";
    s += "kern:\n";
    s += "  l.sfeq r14, r0\n";
    s += "  l.bf kern_done\n";
    s += "  l.nop\n";
    s += "  l.addi r16, r14, -1\n";
    s += "  l.and r14, r14, r16\n";
    s += "  l.j kern\n";
    s += "  l.addi r18, r18, 1       ; (delay slot)\n";
    s += "kern_done:\n";
    // Nibble table.
    s += "  l.mov r14, r10\n";
    s += "  l.li r26, nibble_tab\n";
    s += "nib:\n";
    s += "  l.sfeq r14, r0\n";
    s += "  l.bf nib_done\n";
    s += "  l.nop\n";
    s += "  l.andi r16, r14, 0xf\n";
    s += "  l.slli r16, r16, 2\n";
    s += "  l.add r16, r26, r16\n";
    s += "  l.lwz r16, 0(r16)\n";
    s += "  l.add r19, r19, r16\n";
    s += "  l.j nib\n";
    s += "  l.srli r14, r14, 4       ; (delay slot)\n";
    s += "nib_done:\n";
    s += "  l.addi r11, r11, -1\n";
    s += "  l.sfgts r11, r0\n";
    s += "  l.bf word_loop\n";
    s += "  l.nop\n";
    s += "  l.muli r18, r18, 3\n";
    s += "  l.add r18, r18, r19\n";
    s += check_and_exit("r18", expected);
    s += ".data\nnibble_tab: .space 64\n";
    return {"bitcount", "population counts via Kernighan loop and nibble table", std::move(s)};
}

Kernel kernel_shellsort() {
    constexpr int kCount = 96;
    constexpr std::uint32_t kSeed = 0x5e115047u;

    std::vector<std::uint32_t> values(kCount);
    std::uint32_t x = kSeed;
    for (auto& v : values) {
        x = lcg_next(x);
        v = x & 0x3ffffu;
    }
    std::sort(values.begin(), values.end());
    std::uint32_t expected = 0;
    for (std::size_t i = 0; i < values.size(); ++i) {
        expected += values[i] * static_cast<std::uint32_t>(i + 1);
    }

    std::string s;
    s += "; shellsort: gap sequence {40, 13, 4, 1} over 96 values\n";
    s += ".text\n_start:\n";
    s += "  l.li r26, buf\n";
    s += load_imm("r10", kSeed);
    s += format("  l.addi r11, r0, %d\n", kCount);
    s += load_imm("r12", 1664525u);
    s += load_imm("r13", 1013904223u);
    s += load_imm("r15", 0x3ffffu);
    s += "fill:\n";
    s += "  l.mul r10, r10, r12\n";
    s += "  l.add r10, r10, r13\n";
    s += "  l.and r14, r10, r15\n";
    s += "  l.sw 0(r26), r14\n";
    s += "  l.addi r11, r11, -1\n";
    s += "  l.sfgts r11, r0\n";
    s += "  l.bf fill\n";
    s += "  l.addi r26, r26, 4       ; (delay slot)\n";
    // Gaps live in a small table.
    s += "  l.li r28, gaps\n";
    s += "gap_loop:\n";
    s += "  l.lwz r20, 0(r28)        ; gap\n";
    s += "  l.sfeq r20, r0\n";
    s += "  l.bf sorted\n";
    s += "  l.addi r28, r28, 4       ; advance gap pointer (delay slot)\n";
    // for i = gap..count-1: insertion with stride gap.
    s += "  l.mov r21, r20           ; i = gap\n";
    s += "sh_outer:\n";
    s += "  l.li r26, buf\n";
    s += "  l.slli r14, r21, 2\n";
    s += "  l.add r26, r26, r14      ; &a[i]\n";
    s += "  l.lwz r22, 0(r26)        ; key\n";
    s += "  l.mov r23, r21           ; j = i\n";
    s += "sh_inner:\n";
    s += "  l.sflts r23, r20\n";
    s += "  l.bf sh_place            ; j < gap\n";
    s += "  l.nop\n";
    s += "  l.li r26, buf\n";
    s += "  l.sub r14, r23, r20      ; j - gap\n";
    s += "  l.slli r14, r14, 2\n";
    s += "  l.add r16, r26, r14\n";
    s += "  l.lwz r17, 0(r16)        ; a[j-gap]\n";
    s += "  l.sfgtu r17, r22\n";
    s += "  l.bnf sh_place\n";
    s += "  l.nop\n";
    s += "  l.slli r14, r20, 2\n";
    s += "  l.add r14, r16, r14      ; &a[j]\n";
    s += "  l.sw 0(r14), r17         ; a[j] = a[j-gap]\n";
    s += "  l.j sh_inner\n";
    s += "  l.sub r23, r23, r20      ; j -= gap (delay slot)\n";
    s += "sh_place:\n";
    s += "  l.li r26, buf\n";
    s += "  l.slli r14, r23, 2\n";
    s += "  l.add r14, r26, r14\n";
    s += "  l.sw 0(r14), r22         ; a[j] = key\n";
    s += "  l.addi r21, r21, 1\n";
    s += format("  l.sfltsi r21, %d\n", kCount);
    s += "  l.bf sh_outer\n";
    s += "  l.nop\n";
    s += "  l.j gap_loop\n";
    s += "  l.nop\n";
    s += "sorted:\n";
    // Weighted checksum with in-guest sortedness check.
    s += "  l.li r26, buf\n";
    s += "  l.addi r18, r0, 0\n";
    s += "  l.addi r19, r0, 1\n";
    s += format("  l.addi r11, r0, %d\n", kCount);
    s += "  l.addi r20, r0, 0        ; previous\n";
    s += "chk:\n";
    s += "  l.lwz r14, 0(r26)\n";
    s += "  l.sfgtu r20, r14\n";
    s += "  l.bf order_fail\n";
    s += "  l.nop\n";
    s += "  l.mov r20, r14\n";
    s += "  l.mul r16, r14, r19\n";
    s += "  l.add r18, r18, r16\n";
    s += "  l.addi r26, r26, 4\n";
    s += "  l.addi r19, r19, 1\n";
    s += "  l.addi r11, r11, -1\n";
    s += "  l.sfgts r11, r0\n";
    s += "  l.bf chk\n";
    s += "  l.nop\n";
    s += "  l.j chk_done\n";
    s += "  l.nop\n";
    s += "order_fail:\n";
    s += "  l.addi r18, r0, -1\n";
    s += "chk_done:\n";
    s += check_and_exit("r18", expected);
    s += format(".data\nbuf: .space %d\ngaps: .word 40, 13, 4, 1, 0\n", 4 * kCount);
    return {"shellsort", "shell sort with gap table over 96 values", std::move(s)};
}

Kernel kernel_fixmath() {
    constexpr int kInputs = 64;
    constexpr std::uint32_t kSeed = 0xf17ed0c5u;
    // Q16 fixed-point polynomial c3*x^3 + c2*x^2 + c1*x + c0 via Horner.
    constexpr std::int32_t kC3 = 0x0000'2182;   // ~0.1309
    constexpr std::int32_t kC2 = -0x0000'51ec;  // ~-0.3200
    constexpr std::int32_t kC1 = 0x0001'0c4f;   // ~1.0481
    constexpr std::int32_t kC0 = 0x0000'0a3d;   // ~0.0400

    auto qmul = [](std::int32_t a, std::int32_t b) {
        // Q16 multiply keeping the low 32 bits of the product before the
        // arithmetic shift — exactly what the guest's l.mul + l.srai does.
        const auto product = static_cast<std::int32_t>(static_cast<std::uint32_t>(a) *
                                                       static_cast<std::uint32_t>(b));
        return product >> 16;
    };
    std::uint32_t x = kSeed;
    std::uint32_t expected = 0;
    for (int i = 0; i < kInputs; ++i) {
        x = lcg_next(x);
        const auto input = static_cast<std::int32_t>(x & 0x1ffffu);  // [0, 2) in Q16
        std::int32_t acc = kC3;
        acc = qmul(acc, input) + kC2;
        acc = qmul(acc, input) + kC1;
        acc = qmul(acc, input) + kC0;
        expected += static_cast<std::uint32_t>(acc);
    }

    std::string s;
    s += "; fixmath: Q16 fixed-point Horner polynomial (BEEBS qurt/cubic class)\n";
    s += ".text\n_start:\n";
    s += load_imm("r10", kSeed);
    s += format("  l.addi r11, r0, %d\n", kInputs);
    s += load_imm("r12", 1664525u);
    s += load_imm("r13", 1013904223u);
    s += "  l.addi r18, r0, 0        ; checksum\n";
    s += load_imm("r20", static_cast<std::uint32_t>(kC3));
    s += load_imm("r21", static_cast<std::uint32_t>(kC2));
    s += load_imm("r22", static_cast<std::uint32_t>(kC1));
    s += load_imm("r23", static_cast<std::uint32_t>(kC0));
    s += "poly:\n";
    s += "  l.mul r10, r10, r12\n";
    s += "  l.add r10, r10, r13\n";
    s += load_imm("r15", 0x1ffffu);
    s += "  l.and r14, r10, r15      ; input in Q16 [0, 2)\n";
    s += "  l.mov r16, r20           ; acc = c3\n";
    s += "  l.mul r16, r16, r14\n";
    s += "  l.srai r16, r16, 16\n";
    s += "  l.add r16, r16, r21      ; acc = acc*x + c2\n";
    s += "  l.mul r16, r16, r14\n";
    s += "  l.srai r16, r16, 16\n";
    s += "  l.add r16, r16, r22      ; acc = acc*x + c1\n";
    s += "  l.mul r16, r16, r14\n";
    s += "  l.srai r16, r16, 16\n";
    s += "  l.add r16, r16, r23      ; acc = acc*x + c0\n";
    s += "  l.add r18, r18, r16\n";
    s += "  l.addi r11, r11, -1\n";
    s += "  l.sfgts r11, r0\n";
    s += "  l.bf poly\n";
    s += "  l.nop\n";
    s += check_and_exit("r18", expected);
    return {"fixmath", "Q16 fixed-point Horner polynomial over 64 inputs", std::move(s)};
}

Kernel kernel_qsort() {
    constexpr int kCount = 80;
    constexpr std::uint32_t kSeed = 0x950471e5u;

    std::vector<std::uint32_t> values(kCount);
    std::uint32_t x = kSeed;
    for (auto& v : values) {
        x = lcg_next(x);
        v = x & 0xfffffu;
    }
    std::sort(values.begin(), values.end());
    std::uint32_t expected = 0;
    for (std::size_t i = 0; i < values.size(); ++i) {
        expected += values[i] * static_cast<std::uint32_t>(i + 1);
    }

    std::string s;
    s += "; qsort: iterative Lomuto quicksort with an explicit stack (BEEBS qsort)\n";
    s += ".text\n_start:\n";
    s += "  l.li r26, buf\n";
    s += load_imm("r10", kSeed);
    s += format("  l.addi r11, r0, %d\n", kCount);
    s += load_imm("r12", 1664525u);
    s += load_imm("r13", 1013904223u);
    s += load_imm("r15", 0xfffffu);
    s += "fill:\n";
    s += "  l.mul r10, r10, r12\n";
    s += "  l.add r10, r10, r13\n";
    s += "  l.and r14, r10, r15\n";
    s += "  l.sw 0(r26), r14\n";
    s += "  l.addi r11, r11, -1\n";
    s += "  l.sfgts r11, r0\n";
    s += "  l.bf fill\n";
    s += "  l.addi r26, r26, 4       ; (delay slot)\n";
    // Push the initial range (0, count-1).
    s += "  l.li r25, qstack\n";
    s += "  l.sw 0(r25), r0\n";
    s += format("  l.addi r14, r0, %d\n", kCount - 1);
    s += "  l.sw 4(r25), r14\n";
    s += "  l.addi r25, r25, 8\n";
    s += "  l.li r26, buf\n";
    s += "qloop:\n";
    s += "  l.li r14, qstack\n";
    s += "  l.sfgtu r25, r14         ; stack non-empty?\n";
    s += "  l.bnf qdone\n";
    s += "  l.nop\n";
    s += "  l.addi r25, r25, -8\n";
    s += "  l.lwz r20, 0(r25)        ; lo\n";
    s += "  l.lwz r21, 4(r25)        ; hi\n";
    s += "  l.sfges r20, r21\n";
    s += "  l.bf qloop               ; trivial range\n";
    s += "  l.nop\n";
    s += "  l.slli r14, r21, 2\n";
    s += "  l.add r14, r26, r14\n";
    s += "  l.lwz r22, 0(r14)        ; pivot = a[hi]\n";
    s += "  l.addi r23, r20, -1      ; i = lo - 1\n";
    s += "  l.mov r24, r20           ; j = lo\n";
    s += "part:\n";
    s += "  l.sfges r24, r21         ; j >= hi: partition done\n";
    s += "  l.bf part_done\n";
    s += "  l.nop\n";
    s += "  l.slli r14, r24, 2\n";
    s += "  l.add r14, r26, r14\n";
    s += "  l.lwz r16, 0(r14)        ; a[j]\n";
    s += "  l.sfgtu r16, r22\n";
    s += "  l.bf part_next\n";
    s += "  l.nop\n";
    s += "  l.addi r23, r23, 1       ; ++i\n";
    s += "  l.slli r15, r23, 2\n";
    s += "  l.add r15, r26, r15\n";
    s += "  l.lwz r17, 0(r15)\n";
    s += "  l.sw 0(r15), r16         ; swap a[i] <-> a[j]\n";
    s += "  l.sw 0(r14), r17\n";
    s += "part_next:\n";
    s += "  l.j part\n";
    s += "  l.addi r24, r24, 1       ; ++j (delay slot)\n";
    s += "part_done:\n";
    s += "  l.addi r23, r23, 1       ; p = i + 1\n";
    s += "  l.slli r15, r23, 2\n";
    s += "  l.add r15, r26, r15\n";
    s += "  l.lwz r17, 0(r15)\n";
    s += "  l.slli r14, r21, 2\n";
    s += "  l.add r14, r26, r14\n";
    s += "  l.lwz r16, 0(r14)\n";
    s += "  l.sw 0(r15), r16         ; swap a[p] <-> a[hi]\n";
    s += "  l.sw 0(r14), r17\n";
    s += "  l.sw 0(r25), r20         ; push (lo, p-1)\n";
    s += "  l.addi r14, r23, -1\n";
    s += "  l.sw 4(r25), r14\n";
    s += "  l.addi r25, r25, 8\n";
    s += "  l.addi r14, r23, 1       ; push (p+1, hi)\n";
    s += "  l.sw 0(r25), r14\n";
    s += "  l.sw 4(r25), r21\n";
    s += "  l.j qloop\n";
    s += "  l.addi r25, r25, 8       ; (delay slot)\n";
    s += "qdone:\n";
    // Weighted checksum + in-guest order check.
    s += "  l.li r26, buf\n";
    s += "  l.addi r18, r0, 0\n";
    s += "  l.addi r19, r0, 1\n";
    s += format("  l.addi r11, r0, %d\n", kCount);
    s += "  l.addi r20, r0, 0\n";
    s += "chk:\n";
    s += "  l.lwz r14, 0(r26)\n";
    s += "  l.sfgtu r20, r14\n";
    s += "  l.bf order_fail\n";
    s += "  l.nop\n";
    s += "  l.mov r20, r14\n";
    s += "  l.mul r16, r14, r19\n";
    s += "  l.add r18, r18, r16\n";
    s += "  l.addi r26, r26, 4\n";
    s += "  l.addi r19, r19, 1\n";
    s += "  l.addi r11, r11, -1\n";
    s += "  l.sfgts r11, r0\n";
    s += "  l.bf chk\n";
    s += "  l.nop\n";
    s += "  l.j chk_done\n";
    s += "  l.nop\n";
    s += "order_fail:\n";
    s += "  l.addi r18, r0, -1\n";
    s += "chk_done:\n";
    s += check_and_exit("r18", expected);
    s += format(".data\nbuf: .space %d\nqstack: .space %d\n", 4 * kCount, 8 * 2 * kCount);
    return {"qsort", "iterative Lomuto quicksort with an explicit stack", std::move(s)};
}

}  // namespace focs::workloads
