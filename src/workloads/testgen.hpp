// Directed semi-random test generation (the Python tool of paper Fig. 2).
//
// Generates seeded straight-line OR1K programs with a configurable mix of
// ALU, multiplier/divider, shifter, memory, compare/branch and jump
// instructions. Used to pad characterization coverage beyond the directed
// kernels, exactly as the paper pads its characterization benchmark with
// "directed semi-random test-cases".
#pragma once

#include <cstdint>

#include "workloads/kernel.hpp"

namespace focs::workloads {

struct TestGenConfig {
    std::uint64_t seed = 1;
    int instruction_count = 1200;  ///< approximate generated body length
    // Relative mix weights (need not sum to anything particular).
    int weight_alu = 40;
    int weight_mul = 6;
    int weight_div = 1;
    int weight_shift = 10;
    int weight_memory = 20;
    int weight_branch = 12;
    int weight_jump = 5;
    int weight_movhi = 6;
};

/// Generates one self-terminating random program (always exits 0).
Kernel generate_random_kernel(const TestGenConfig& config);

}  // namespace focs::workloads
