// Portable scalar implementation of the replay kernel table. These loops
// are the reference shapes: the SIMD implementations in
// replay_kernels_simd.cpp must be elementwise byte-identical to them (see
// the header for the argument, tests/test_replay.cpp for the proof).
#include "core/replay_kernels.hpp"

#include <algorithm>

#include "sim/cycle_record.hpp"

namespace focs::core {
namespace {

void gather_max_scalar(const GatherStage* stages, int stage_count, std::size_t begin,
                       std::size_t count, double* out) {
    std::fill(out, out + count, 0.0);
    for (int s = 0; s < stage_count; ++s) {
        const dta::OccKey* row = stages[s].keys + begin;
        const double* values = stages[s].values;
        for (std::size_t i = 0; i < count; ++i) {
            const double d = values[static_cast<std::size_t>(row[i])];
            if (d > out[i]) out[i] = d;
        }
    }
}

void scale_scalar(const double* in, double factor, std::size_t count, double* out) {
    for (std::size_t i = 0; i < count; ++i) out[i] = in[i] * factor;
}

void reduce_ideal_scalar(const double* requested, const double* unit, double scale,
                         double tolerance, std::size_t begin, std::size_t count, double* total,
                         std::uint64_t* violations, double* worst) {
    double total_time_ps = *total;
    std::uint64_t violation_count = *violations;
    double worst_violation_ps = *worst;
    for (std::size_t i = 0; i < count; ++i) {
        const double granted = requested[i];
        total_time_ps += granted;
        const double required = unit[begin + i] * scale;
        if (granted + tolerance < required) {
            ++violation_count;
            worst_violation_ps = std::max(worst_violation_ps, required - granted);
        }
    }
    *total = total_time_ps;
    *violations = violation_count;
    *worst = worst_violation_ps;
}

void gather_reduce_ideal_scalar(const GatherStage* stages, int stage_count, const double* unit,
                                double scale, double tolerance, std::size_t begin,
                                std::size_t count, double* total, std::uint64_t* violations,
                                double* worst) {
    double total_time_ps = *total;
    std::uint64_t violation_count = *violations;
    double worst_violation_ps = *worst;
    for (std::size_t i = 0; i < count; ++i) {
        double granted = 0.0;
        for (int s = 0; s < stage_count; ++s) {
            const double d = stages[s].values[static_cast<std::size_t>(stages[s].keys[begin + i])];
            if (d > granted) granted = d;
        }
        total_time_ps += granted;
        const double required = unit[begin + i] * scale;
        if (granted + tolerance < required) {
            ++violation_count;
            worst_violation_ps = std::max(worst_violation_ps, required - granted);
        }
    }
    *total = total_time_ps;
    *violations = violation_count;
    *worst = worst_violation_ps;
}

constexpr ReplayKernels kScalarKernels = {
    &gather_max_scalar,
    &scale_scalar,
    &reduce_ideal_scalar,
    &gather_reduce_ideal_scalar,
    "scalar",
};

}  // namespace

const ReplayKernels& scalar_replay_kernels() { return kScalarKernels; }

}  // namespace focs::core
