// DCA evaluation engine: the delay-annotated cycle-accurate ISS of the
// paper (Sec. III-B), plus a built-in timing-safety checker.
//
// Runs a guest program on the pipeline model; each cycle the selected
// policy requests a clock period, the clock generator grants one, and the
// engine integrates total execution time. In parallel the engine computes
// the cycle's *actual* timing requirement from the synthetic gate-level
// delay model and counts any violation (granted < required) — a correct
// predictive policy must finish every run with zero violations.
#pragma once

#include <string>

#include "asm/program.hpp"
#include "clock/clock_generator.hpp"
#include "core/policies.hpp"
#include "sim/machine.hpp"
#include "sim/trace_recorder.hpp"
#include "timing/delay_model.hpp"
#include "timing/trace_delays.hpp"

namespace focs::core {

/// Safety-check tolerance (1 fs, absorbs rounding): a granted period this
/// close below the actual requirement is not a violation. Shared by the
/// live engine and the replay kernels — the replay==live byte-identity
/// contract depends on both using the same value.
inline constexpr double kViolationTolerancePs = 1e-3;

struct DcaRunResult {
    std::string policy;
    std::string clock_generator;
    std::uint64_t cycles = 0;
    double total_time_ps = 0;
    double avg_period_ps = 0;
    double eff_freq_mhz = 0;           ///< cycles / total time
    double static_period_ps = 0;
    double speedup_vs_static = 0;      ///< static period / average period
    std::uint64_t timing_violations = 0;
    double worst_violation_ps = 0;     ///< max (required - granted) over violations
    sim::RunResult guest;
};

class DcaEngine {
public:
    explicit DcaEngine(const timing::DesignConfig& design,
                       sim::MachineConfig machine_config = {});

    /// Runs `program` to completion under `policy` and `generator`.
    DcaRunResult run(const assembler::Program& program, ClockPolicy& policy,
                     clocking::ClockGenerator& generator);

    /// Convenience overload with an ideal (continuously tunable) generator.
    DcaRunResult run(const assembler::Program& program, ClockPolicy& policy);

    /// Replays a recorded trace under `policy` without stepping the machine:
    /// walks the trace's cycle records through the same per-cycle protocol
    /// as run() (evaluate actual requirement, request, grant, integrate,
    /// check safety) and produces a byte-identical DcaRunResult. This is
    /// the generic path for arbitrary ClockPolicy objects; the bundled
    /// PolicyKinds have devirtualized SoA kernels in ReplayEvaluationEngine.
    DcaRunResult replay(const sim::PipelineTrace& trace, ClockPolicy& policy,
                        clocking::ClockGenerator& generator) const;

    /// Replay overload with an ideal (continuously tunable) generator.
    DcaRunResult replay(const sim::PipelineTrace& trace, ClockPolicy& policy) const;

    /// Generic replay against precomputed shared ground truth: the per-
    /// cycle requirement is one multiply of the voltage-free unit array
    /// instead of a full delay-model pass per replayed cell — the same
    /// record-once/derive-many move the devirtualized kernels use, for
    /// arbitrary ClockPolicy objects. The PolicyContext handed to the
    /// policy carries the requirement and limiting stage of each cycle but
    /// zeroed per-stage arrivals (PolicyContext::actual is reserved for the
    /// genie bound; predictive policies must not read it). Byte-identical
    /// to the evaluating overloads for every policy honouring that
    /// contract. `delays` must view unit delays of `trace` at this engine's
    /// operating point.
    DcaRunResult replay(const sim::PipelineTrace& trace,
                        const timing::ScaledTraceDelays& delays, ClockPolicy& policy,
                        clocking::ClockGenerator& generator) const;

    /// Shared-ground-truth replay with an ideal generator.
    DcaRunResult replay(const sim::PipelineTrace& trace,
                        const timing::ScaledTraceDelays& delays, ClockPolicy& policy) const;

    const timing::DelayCalculator& calculator() const { return calculator_; }

private:
    timing::DesignConfig design_;
    sim::MachineConfig machine_config_;
    timing::DelayCalculator calculator_;
};

/// Derives the ratio fields of a DcaRunResult from the accumulated raw
/// figures — the single definition shared by the live engine and the
/// replay kernels, so both assemble results identically (guest metadata is
/// filled by the caller).
DcaRunResult finish_run(std::string policy, std::string generator, std::uint64_t cycles,
                        double total_time_ps, double static_period_ps,
                        std::uint64_t timing_violations, double worst_violation_ps);

}  // namespace focs::core
