// Batched policy-replay engine over recorded pipeline traces.
//
// Scores clocking schemes against one canonical PipelineTrace without
// re-simulating the guest. The per-cycle requested period of every bundled
// PolicyKind is a pure function of the trace's stage-major occupancy-key
// rows and the delay table, so each kind gets a devirtualized kernel that
// fills whole trace blocks of requests with plain indexed loads (no
// virtual dispatch, no CycleRecord reconstruction); the grant/integrate/
// safety-check pass then walks the block sequentially (clock generators
// are stateful). The required-period ground truth is consumed as a
// ScaledTraceDelays view — the trace's voltage-free unit array plus the
// operating point's delay scale — so every voltage point of a sweep shares
// one resident array and the safety check is one multiply per cycle.
// Custom ClockPolicy objects fall back to the generic DcaEngine::replay
// walk. Every path produces DcaRunResults byte-identical to a live
// DcaEngine::run of the same cell at any block size.
//
// The block fills dispatch through a kernel table (replay_kernels.hpp):
// explicit SIMD (AVX2/NEON) when compiled in and supported, a portable
// scalar table otherwise, and — under ReplayOptions::force_scalar — the
// original handwritten reference loops. The sequential generator walk
// reads its required period through a fixed-point mult+shift evaluator
// (timing::FixedPointPeriod) that is bit-exact against the double path.
// All of these are byte-identity-preserving; force_scalar exists as the
// escape hatch and as the baseline the tests diff against.
#pragma once

#include <array>
#include <cstddef>
#include <optional>
#include <vector>

#include "common/cancel.hpp"
#include "core/dca_engine.hpp"
#include "core/policies.hpp"
#include "core/replay_kernels.hpp"
#include "dta/delay_table.hpp"
#include "sim/trace_recorder.hpp"
#include "timing/trace_delays.hpp"

namespace focs::core {

/// How the replay hot loop resolves its instrumentation. The enabled check
/// is hoisted out of the cycle loop entirely: the engine selects one of two
/// template instantiations per run, so the uninstrumented path contains no
/// flag check and no instrumentation code at all.
enum class ReplayObsMode {
    /// Follow the global observability switches (--metrics / --trace-out):
    /// one branch per run, then the matching instantiation.
    kAuto,
    /// Always the uninstrumented instantiation — the exact code a
    /// -DFOCS_OBS_COMPILE_OUT build always runs. Lets one binary measure
    /// the compiled-out baseline (bench_sim_throughput's overhead series).
    kForceOff,
    /// Always the instrumented instantiation, regardless of the global
    /// switches (so the bench can measure the enabled path without
    /// flipping process-global state).
    kForceOn,
};

struct ReplayOptions {
    /// Cycles per request block. Any value >= 1 produces identical results;
    /// the default keeps the request buffer L1/L2-resident.
    int block_cycles = 4096;
    /// Instrumentation of the block loop (never affects results).
    ReplayObsMode obs = ReplayObsMode::kAuto;
    /// Pin the handwritten scalar reference path (CLI --no-simd): no SIMD
    /// kernel table, no branch-free mask kernel, no fixed-point period
    /// arithmetic. Results are byte-identical either way — this is the
    /// escape hatch and the baseline the scalar==SIMD tests diff against.
    bool force_scalar = false;
    /// Optional cooperative cancellation, polled once per block (never per
    /// cycle — a dormant token costs one relaxed load per block_cycles): a
    /// fired token throws CancelledError at the next block boundary.
    const CancellationToken* cancel = nullptr;
};

/// One (policy, generator) cell of a replay batch. A null generator means
/// the ideal (continuously tunable) clock generator.
struct ReplayRequest {
    PolicySpec policy = PolicyKind::kInstructionLut;
    clocking::ClockGenerator* generator = nullptr;
};

class ReplayEvaluationEngine {
public:
    /// `trace` and `table` are borrowed read-only and must outlive the
    /// engine; `delays` (held by value — it shares the unit array) must
    /// view unit delays computed from `trace` with the design variant and
    /// voltage `table` was characterized for.
    ReplayEvaluationEngine(const sim::PipelineTrace& trace, timing::ScaledTraceDelays delays,
                           const dta::DelayTable& table, ReplayOptions options = {});

    /// Replays one bundled policy through its devirtualized kernel. The
    /// spec's parameter (approx-lut scale, dual-cycle stretch) is threaded
    /// into the kernel constants; a bare PolicyKind converts implicitly and
    /// gets the kind's default parameter.
    DcaRunResult run(const PolicySpec& spec, clocking::ClockGenerator* generator = nullptr) const;

    /// Replays a whole policy x generator batch over the shared trace.
    /// Consecutive requests sharing a policy are fused (see run_fused).
    std::vector<DcaRunResult> run_batch(const std::vector<ReplayRequest>& requests) const;

    /// Fused multi-generator replay: scores one policy across all generator
    /// variants of a sweep column (nullptr = ideal) in a single pass over
    /// the trace. The requested-period array of a block depends only on the
    /// policy, never on the generator, so one block fill serves every
    /// variant; each variant then pays only its own grant/integrate/safety
    /// walk. Results are byte-identical to per-variant run() calls — a
    /// G-variant column costs one gather/max fill instead of G.
    std::vector<DcaRunResult> run_fused(
        const PolicySpec& spec, const std::vector<clocking::ClockGenerator*>& generators) const;

    const sim::PipelineTrace& trace() const { return *trace_; }
    const timing::ScaledTraceDelays& delays() const { return delays_; }

    /// True when this engine dispatches through an ISA-specific kernel
    /// table (compiled in, supported by the CPU, not forced scalar).
    bool simd_active() const { return kernels_ != nullptr && kernels_ != &scalar_replay_kernels(); }
    /// "reference" (force_scalar), "scalar", "avx2" or "neon".
    const char* kernels_name() const { return kernels_ != nullptr ? kernels_->name : "reference"; }

private:
    /// Dispatches to replay_blocks_impl<true/false> per ReplayObsMode (one
    /// branch per run; the cycle loop itself is branch-free either way).
    /// `gather_stages` (optional) describes a fill that is a pure
    /// gather/max over those stage rows; ideal-generator blocks then take
    /// the fused gather_reduce_ideal kernel — one pass, no scratch
    /// round-trip — instead of fill-then-reduce. Same figures either way.
    template <typename FillBlock>
    DcaRunResult replay_blocks(const ClockPolicy& policy, clocking::ClockGenerator* generator,
                               FillBlock&& fill, const GatherStage* gather_stages = nullptr,
                               int gather_stage_count = 0) const;

    template <bool kObs, typename FillBlock>
    DcaRunResult replay_blocks_impl(const ClockPolicy& policy, clocking::ClockGenerator* generator,
                                    FillBlock&& fill, const GatherStage* gather_stages,
                                    int gather_stage_count) const;

    /// Shared kernel of the two-class family (two-class, dual-cycle). On
    /// the kernel-table path the slow-bitmap select is restructured into a
    /// branch-free mask kernel: each stage gets a kKeyCount select row
    /// (slow-or-uncharacterized ? slow_period : fast_period) and the block
    /// fill is the same gather/max-reduce the LUT kernel uses — valid
    /// because slow >= fast makes "any stage slow" and "max over per-stage
    /// selects" the same function. The reference path keeps the hoisted
    /// bitmap + stage-major OR-reduction + two-way select.
    DcaRunResult replay_class_select(const ClockPolicy& policy,
                                     clocking::ClockGenerator* generator, double fast_period_ps,
                                     double slow_period_ps) const;

    /// One block's worth of per-cycle scratch, clamped to the trace length
    /// — the single sizing rule for every scratch buffer (requested-period
    /// block, reference-path any_slow), so block-size-1 runs allocate
    /// exactly one element per buffer. Never zero: .data() must stay
    /// dereferenceable on empty traces.
    std::size_t scratch_cycles() const;

    const sim::PipelineTrace* trace_;
    timing::ScaledTraceDelays delays_;
    const dta::DelayTable* table_;
    ReplayOptions options_;
    /// Kernel table of the block fills: SIMD when available, the portable
    /// scalar table otherwise; nullptr iff force_scalar (the handwritten
    /// reference path).
    const ReplayKernels* kernels_ = nullptr;
    /// Integer mult+shift period evaluator (bit-exact vs the double path);
    /// engaged on the kernel-table path when the view resolves.
    std::optional<timing::FixedPointPeriod> fx_;
    /// Stage-major transpose of the fallback-resolved delay table
    /// (DelayTable::effective is key-major) so each gather reads one
    /// contiguous per-stage value row.
    std::array<std::array<double, dta::kKeyCount>, sim::kStageCount> effective_rows_{};
};

}  // namespace focs::core
