// Batched policy-replay engine over recorded pipeline traces.
//
// Scores clocking schemes against one canonical PipelineTrace without
// re-simulating the guest. The per-cycle requested period of every bundled
// PolicyKind is a pure function of the trace's stage-major occupancy-key
// rows and the delay table, so each kind gets a devirtualized kernel that
// fills whole trace blocks of requests with plain indexed loads (no
// virtual dispatch, no CycleRecord reconstruction); the grant/integrate/
// safety-check pass then walks the block sequentially (clock generators
// are stateful). Custom ClockPolicy objects fall back to the generic
// DcaEngine::replay walk. Every path produces DcaRunResults byte-identical
// to a live DcaEngine::run of the same cell at any block size.
#pragma once

#include <vector>

#include "core/dca_engine.hpp"
#include "core/policies.hpp"
#include "dta/delay_table.hpp"
#include "sim/trace_recorder.hpp"
#include "timing/trace_delays.hpp"

namespace focs::core {

struct ReplayOptions {
    /// Cycles per request block. Any value >= 1 produces identical results;
    /// the default keeps the request buffer L1/L2-resident.
    int block_cycles = 4096;
};

/// One (policy, generator) cell of a replay batch. A null generator means
/// the ideal (continuously tunable) clock generator.
struct ReplayRequest {
    PolicyKind kind = PolicyKind::kInstructionLut;
    clocking::ClockGenerator* generator = nullptr;
};

class ReplayEvaluationEngine {
public:
    /// `trace`, `delays` and `table` are borrowed read-only and must
    /// outlive the engine; `delays` must have been computed from `trace` at
    /// the operating point `table` was characterized for.
    ReplayEvaluationEngine(const sim::PipelineTrace& trace, const timing::TraceDelays& delays,
                           const dta::DelayTable& table, ReplayOptions options = {});

    /// Replays one bundled policy kind through its devirtualized kernel.
    DcaRunResult run(PolicyKind kind, clocking::ClockGenerator* generator = nullptr) const;

    /// Replays a whole policy x generator batch over the shared trace.
    std::vector<DcaRunResult> run_batch(const std::vector<ReplayRequest>& requests) const;

    const sim::PipelineTrace& trace() const { return *trace_; }
    const timing::TraceDelays& delays() const { return *delays_; }

private:
    template <typename FillBlock>
    DcaRunResult replay_blocks(const ClockPolicy& policy, clocking::ClockGenerator* generator,
                               FillBlock&& fill) const;

    const sim::PipelineTrace* trace_;
    const timing::TraceDelays* delays_;
    const dta::DelayTable* table_;
    ReplayOptions options_;
};

}  // namespace focs::core
