// Hardware-cost model of the DCA controller itself.
//
// The paper notes that the clock generator and adjustment logic "can have a
// significant influence on the system power consumption, and requires
// special care" (Sec. II-A) but does not quantify it. This model estimates
// the controller's area/power overhead so the net (rather than gross)
// energy gain can be reported:
//   - per-stage delay LUTs: one row per occupancy key, each row a clock-
//     generator tap index of `resolution_bits` bits,
//   - the S-input maximum tree + opcode monitors,
//   - the tunable clock generator's own standing power.
#pragma once

#include "dta/delay_table.hpp"
#include "power/power_model.hpp"

namespace focs::core {

struct ControllerCostConfig {
    int resolution_bits = 5;      ///< tap-index width stored per LUT entry (32 taps)
    int monitored_stages = 6;     ///< 6 for the full monitor, 1 for EX-only
    double bit_read_energy_fj = 1.2;   ///< per LUT bit per cycle at 0.70 V (28 nm-ish)
    double max_tree_energy_fj = 90.0;  ///< S-input comparator tree per cycle
    double clockgen_power_uw = 55.0;   ///< ring-oscillator + mux standing power
};

struct ControllerCost {
    int lut_rows = 0;          ///< characterized keys (rows per stage LUT)
    int total_lut_bits = 0;
    double dynamic_uw = 0;     ///< lookup + max-tree power at the effective clock
    double standing_uw = 0;    ///< clock generator
    double total_uw = 0;
    double overhead_fraction = 0;  ///< of the given core power
};

class ControllerCostModel {
public:
    explicit ControllerCostModel(ControllerCostConfig config = {});

    /// Cost of a controller holding `table`, clocking at `freq_mhz`, on a
    /// core drawing `core_power_uw`. Energies scale with V^2 relative to
    /// the 0.70 V calibration of the per-bit numbers.
    ControllerCost estimate(const dta::DelayTable& table, double freq_mhz, double core_power_uw,
                            double voltage_v = 0.70) const;

    const ControllerCostConfig& config() const { return config_; }

private:
    ControllerCostConfig config_;
};

}  // namespace focs::core
