#include "core/controller_cost.hpp"

#include "common/error.hpp"

namespace focs::core {

ControllerCostModel::ControllerCostModel(ControllerCostConfig config) : config_(config) {
    check(config.resolution_bits >= 1 && config.resolution_bits <= 16,
          "tap index width out of range");
    check(config.monitored_stages >= 1 && config.monitored_stages <= sim::kStageCount,
          "monitored stage count out of range");
}

ControllerCost ControllerCostModel::estimate(const dta::DelayTable& table, double freq_mhz,
                                             double core_power_uw, double voltage_v) const {
    check(freq_mhz > 0 && core_power_uw > 0, "need positive frequency and core power");
    ControllerCost cost;
    // Rows: every key with at least one characterized stage entry.
    for (dta::OccKey key = 0; key < dta::kKeyCount; ++key) {
        for (int s = 0; s < sim::kStageCount; ++s) {
            if (table.characterized(key, static_cast<sim::Stage>(s))) {
                ++cost.lut_rows;
                break;
            }
        }
    }
    cost.total_lut_bits = cost.lut_rows * config_.resolution_bits * config_.monitored_stages;

    // Dynamic energy: each cycle reads one row per monitored stage and runs
    // the max tree. fJ/cycle * MHz = uW * 1e-3... (1 fJ * 1e6 1/s = 1e-9 W).
    const double vscale = (voltage_v * voltage_v) / (0.70 * 0.70);
    const double read_fj = static_cast<double>(config_.monitored_stages * config_.resolution_bits) *
                           config_.bit_read_energy_fj;
    const double per_cycle_fj = (read_fj + config_.max_tree_energy_fj) * vscale;
    cost.dynamic_uw = per_cycle_fj * freq_mhz * 1e-3;
    cost.standing_uw = config_.clockgen_power_uw * vscale;
    cost.total_uw = cost.dynamic_uw + cost.standing_uw;
    cost.overhead_fraction = cost.total_uw / core_power_uw;
    return cost;
}

}  // namespace focs::core
