// Clock-adjustment policies.
//
// A policy decides, per cycle, the clock period requested from the clock
// generator. All policies except the genie are *predictive*: they only look
// at which instructions occupy the pipeline (paper eq. 2), never at actual
// signal arrival times, so no timing-error detection/recovery is needed.
#pragma once

#include <memory>
#include <string>

#include "dta/delay_table.hpp"
#include "sim/cycle_record.hpp"
#include "timing/delay_model.hpp"

namespace focs::core {

struct PolicyContext {
    const sim::CycleRecord& record;
    /// Ground-truth requirements of this cycle. Reserved for the genie
    /// bound; predictive policies must not read it.
    const timing::CycleDelays& actual;
};

class ClockPolicy {
public:
    virtual ~ClockPolicy() = default;
    virtual double requested_period_ps(const PolicyContext& context) = 0;
    virtual std::string name() const = 0;
    virtual void reset() {}
};

/// Conventional synchronous clocking: the STA worst-case period, always.
class StaticClockPolicy final : public ClockPolicy {
public:
    explicit StaticClockPolicy(double static_period_ps);
    double requested_period_ps(const PolicyContext& context) override;
    std::string name() const override { return "static"; }

private:
    double static_period_ps_;
};

/// Genie-aided per-cycle oracle (paper Sec. IV-A): adjusts to the
/// a-posteriori measured requirement of every cycle. Upper bound on any
/// realizable policy (~50% speedup in the paper).
class GenieOraclePolicy final : public ClockPolicy {
public:
    double requested_period_ps(const PolicyContext& context) override;
    std::string name() const override { return "genie"; }
};

/// The paper's proposal: per-cycle LUT lookup of the worst-case delay of
/// the instruction in each pipeline stage, clocked at the max over stages.
class InstructionLutPolicy final : public ClockPolicy {
public:
    /// `table` must outlive the policy. `margin_ps` adds an optional safety
    /// margin on top of every granted period (0 in the paper's setup).
    explicit InstructionLutPolicy(const dta::DelayTable& table, double margin_ps = 0);
    double requested_period_ps(const PolicyContext& context) override;
    std::string name() const override { return "instruction-lut"; }

private:
    const dta::DelayTable* table_;
    double margin_ps_;
};

/// The paper's simplified controller (Sec. IV-A): monitor only the EX-stage
/// instruction, and cover every other stage by a constant floor equal to
/// the worst LUT entry outside EX (dominated by the instruction-memory
/// address timing, l.j at 1172 ps). Needs far less monitoring hardware.
class ExOnlyPolicy final : public ClockPolicy {
public:
    explicit ExOnlyPolicy(const dta::DelayTable& table);
    double requested_period_ps(const PolicyContext& context) override;
    std::string name() const override { return "ex-only"; }
    double floor_ps() const { return floor_ps_; }

private:
    const dta::DelayTable* table_;
    double floor_ps_;  ///< worst characterized delay of all non-EX stages
};

/// Coarse two-class baseline in the spirit of application-adaptive
/// guardbanding [8] (Rahimi et al.): instructions are split into a slow
/// class (multiplier/divider and anything uncharacterized, clocked at the
/// static limit) and a single fast class (clocked at the worst fast-class
/// LUT entry). Only one bit of pipeline monitoring is required.
class TwoClassPolicy final : public ClockPolicy {
public:
    explicit TwoClassPolicy(const dta::DelayTable& table);
    double requested_period_ps(const PolicyContext& context) override;
    std::string name() const override { return "two-class"; }
    double fast_period_ps() const { return fast_period_ps_; }

    /// True for the critical instruction class (multiplier/divider).
    static bool is_slow_key(dta::OccKey key);

private:
    const dta::DelayTable* table_;
    double fast_period_ps_;
};

/// Approximate-computing extension (paper Sec. IV-A, last paragraph): run
/// with clock periods *shorter* than the characterized worst case,
/// deliberately accepting occasional timing violations in exchange for
/// speed — e.g. approximate multiplication results. `scale` < 1 compresses
/// every LUT period; the DcaEngine's violation counters then quantify the
/// error-incidence/speedup trade-off.
class ApproximateLutPolicy final : public ClockPolicy {
public:
    ApproximateLutPolicy(const dta::DelayTable& table, double scale);
    double requested_period_ps(const PolicyContext& context) override;
    std::string name() const override;
    double scale() const { return scale_; }

private:
    const dta::DelayTable* table_;
    double scale_;
};

/// Dual-cycle baseline in the spirit of CRISTA [6] (Ghosh et al., TCAD'07):
/// the clock runs at a fixed fast period that covers everything except the
/// isolated critical unit (multiplier/divider); when a critical instruction
/// is in flight the cycle is stretched to `stretch` fast periods (two in
/// the original scheme). No per-instruction LUT, only a single
/// critical-class detector.
class DualCyclePolicy final : public ClockPolicy {
public:
    /// `stretch` >= 1 scales the stretched (critical) cycle relative to the
    /// fast period; the fast period is floored at static/stretch so the
    /// stretched cycle always covers the static limit.
    explicit DualCyclePolicy(const dta::DelayTable& table, double stretch = 2.0);
    double requested_period_ps(const PolicyContext& context) override;
    std::string name() const override;
    double fast_period_ps() const { return fast_period_ps_; }
    double stretch() const { return stretch_; }

private:
    const dta::DelayTable* table_;
    double fast_period_ps_;
    double stretch_;
};

/// Factory enum used by the evaluation flow, the sweep axis and benches.
/// kApproxLut and kDualCycle are the promoted forms of the approximate /
/// dual-cycle baselines, so sweeps can grid over them with devirtualized
/// replay kernels instead of the generic fallback.
enum class PolicyKind {
    kStatic,
    kGenie,
    kInstructionLut,
    kExOnly,
    kTwoClass,
    kApproxLut,
    kDualCycle,
};

/// Period compression of the promoted approx-lut PolicyKind when no
/// explicit parameter is given (the paper's Sec. IV-A approximate-operation
/// trade-off at one canonical grid point).
inline constexpr double kApproxLutKindScale = 0.9;

/// Stretch factor of the promoted dual-cycle PolicyKind when no explicit
/// parameter is given (the original CRISTA-style two-cycle operation).
inline constexpr double kDualCycleKindStretch = 2.0;

/// One policy axis point: a kind plus its optional parameter. The two
/// parameterized kinds are approx-lut (param = compression scale in
/// (0, 1], default kApproxLutKindScale) and dual-cycle (param = critical-
/// cycle stretch >= 1, default kDualCycleKindStretch); every other kind
/// takes no parameter. Implicitly constructible from a bare PolicyKind so
/// kind-only call sites keep working unchanged.
struct PolicySpec {
    PolicyKind kind = PolicyKind::kInstructionLut;
    /// < 0 means "the kind's default" (see resolved_param); parse()
    /// normalizes an explicit parameter equal to the default back to -1, so
    /// equal grids compare and serialize equal.
    double param = -1;

    PolicySpec() = default;
    PolicySpec(PolicyKind kind, double param = -1) : kind(kind), param(param) {}

    /// The effective parameter: `param` when explicit, the kind's default
    /// otherwise (meaningful only for the parameterized kinds).
    double resolved_param() const;

    /// Stable label, also the spec-file syntax: the kind's short name, plus
    /// ":PARAM" (shortest round-trip decimal) when the parameter differs
    /// from the kind's default — "approx-lut:0.8", "dual-cycle:3".
    std::string label() const;

    /// Inverse of label(). Validates at parse time: approx-lut scale must
    /// be in (0, 1], dual-cycle stretch >= 1, and no other kind accepts a
    /// parameter; violations throw focs::Error (a usage error — the CLI
    /// reports it and exits 1).
    static PolicySpec parse(const std::string& text);

    friend bool operator==(const PolicySpec&, const PolicySpec&) = default;
};

std::unique_ptr<ClockPolicy> make_policy(PolicyKind kind, const dta::DelayTable& table,
                                         double static_period_ps);

/// PolicySpec-aware factory: threads the spec's resolved parameter into the
/// approx-lut / dual-cycle constructors; identical to the kind overload for
/// every other kind.
std::unique_ptr<ClockPolicy> make_policy(const PolicySpec& spec, const dta::DelayTable& table,
                                         double static_period_ps);

/// Stable short name of a kind ("static"|"two-class"|"ex-only"|"lut"|
/// "genie"|"approx-lut"|"dual-cycle"); inverse of parse_policy_kind. Used
/// by the CLI and the sweep runtime.
std::string policy_kind_name(PolicyKind kind);
PolicyKind parse_policy_kind(const std::string& name);

}  // namespace focs::core
