// Explicit SIMD implementations of the replay kernel table.
//
// This translation unit is the only one built with ISA-specific flags
// (CMake applies -mavx2 as a source-file property on x86-64; aarch64 has
// NEON in its baseline), so vector codegen never leaks into TUs that must
// run on the portable baseline. Selection is layered:
//   compile time — FOCS_SIMD_ENABLED (the FOCS_SIMD CMake option) plus the
//     ISA predicate (__AVX2__ / __aarch64__); anything else compiles this
//     TU down to a nullptr-returning stub, which is what the CI simd-parity
//     job byte-diffs against the default build;
//   run time — on x86 the AVX2 table is handed out only when the running
//     CPU reports AVX2 (__builtin_cpu_supports), so a generic binary is
//     safe on older cores;
//   per engine — ReplayOptions::force_scalar (CLI --no-simd) ignores this
//     table entirely and keeps the handwritten reference path.
//
// Byte-identity with the scalar kernels (the contract in
// replay_kernels.hpp) holds lane by lane: gathers read the same doubles,
// _mm256_max_pd / vmaxq_f64 over NaN-free non-negative inputs equals the
// reference's compare-and-replace, multiplies and the tolerance add are
// the same IEEE ops, and the violation count / worst-delta reductions are
// order-free. The integrated total is summed in strict cycle order from
// the same requested[] values the vector lanes see.
#include "core/replay_kernels.hpp"

#if defined(FOCS_SIMD_ENABLED) && defined(__AVX2__)

#include <immintrin.h>

#include <algorithm>

namespace focs::core {
namespace {

// Four-key gather from one stage's value row, built from scalar loads:
// vgatherdpd is microcoded on the AMD cores this project benches on
// (several times the cost of four plain loads), while four vmovsd plus
// three shuffles sustain the load-port throughput on every AVX2 core.
// Identical lane values either way — these are the same doubles the
// scalar reference reads.
inline __m256d gather4_pd(const double* values, const dta::OccKey* row) {
    return _mm256_set_pd(values[static_cast<std::size_t>(row[3])],
                         values[static_cast<std::size_t>(row[2])],
                         values[static_cast<std::size_t>(row[1])],
                         values[static_cast<std::size_t>(row[0])]);
}

void gather_max_avx2(const GatherStage* stages, int stage_count, std::size_t begin,
                     std::size_t count, double* out) {
    std::size_t i = 0;
    for (; i + 4 <= count; i += 4) {
        __m256d acc = _mm256_setzero_pd();
        for (int s = 0; s < stage_count; ++s) {
            acc = _mm256_max_pd(acc, gather4_pd(stages[s].values, stages[s].keys + begin + i));
        }
        _mm256_storeu_pd(out + i, acc);
    }
    for (; i < count; ++i) {
        double m = 0.0;
        for (int s = 0; s < stage_count; ++s) {
            const double d = stages[s].values[static_cast<std::size_t>(stages[s].keys[begin + i])];
            if (d > m) m = d;
        }
        out[i] = m;
    }
}

void scale_avx2(const double* in, double factor, std::size_t count, double* out) {
    const __m256d vfactor = _mm256_set1_pd(factor);
    std::size_t i = 0;
    for (; i + 4 <= count; i += 4) {
        _mm256_storeu_pd(out + i, _mm256_mul_pd(_mm256_loadu_pd(in + i), vfactor));
    }
    for (; i < count; ++i) out[i] = in[i] * factor;
}

void reduce_ideal_avx2(const double* requested, const double* unit, double scale,
                       double tolerance, std::size_t begin, std::size_t count, double* total,
                       std::uint64_t* violations, double* worst) {
    double total_time_ps = *total;
    std::uint64_t violation_count = *violations;
    double worst_violation_ps = *worst;
    const __m256d vscale = _mm256_set1_pd(scale);
    const __m256d vtol = _mm256_set1_pd(tolerance);
    // Worst-violation lanes accumulate by max and merge at the end
    // (order-free); seeding with the carried-in worst keeps the merge a
    // plain horizontal max.
    __m256d vworst = _mm256_set1_pd(worst_violation_ps);
    std::size_t i = 0;
    for (; i + 4 <= count; i += 4) {
        const __m256d granted = _mm256_loadu_pd(requested + i);
        const __m256d required =
            _mm256_mul_pd(_mm256_loadu_pd(unit + begin + i), vscale);
        const __m256d mask =
            _mm256_cmp_pd(_mm256_add_pd(granted, vtol), required, _CMP_LT_OQ);
        const int bits = _mm256_movemask_pd(mask);
        if (bits != 0) {
            violation_count += static_cast<unsigned>(__builtin_popcount(static_cast<unsigned>(bits)));
            // Violating lanes contribute required - granted; others 0.0,
            // absorbed by the max (worst is never negative).
            vworst = _mm256_max_pd(
                vworst, _mm256_and_pd(mask, _mm256_sub_pd(required, granted)));
        }
        // The integrated time is the one order-sensitive reduction: strict
        // cycle order, same as the scalar reference.
        total_time_ps += requested[i];
        total_time_ps += requested[i + 1];
        total_time_ps += requested[i + 2];
        total_time_ps += requested[i + 3];
    }
    alignas(32) double lanes[4];
    _mm256_store_pd(lanes, vworst);
    worst_violation_ps = std::max(std::max(lanes[0], lanes[1]), std::max(lanes[2], lanes[3]));
    for (; i < count; ++i) {
        const double granted = requested[i];
        total_time_ps += granted;
        const double required = unit[begin + i] * scale;
        if (granted + tolerance < required) {
            ++violation_count;
            worst_violation_ps = std::max(worst_violation_ps, required - granted);
        }
    }
    *total = total_time_ps;
    *violations = violation_count;
    *worst = worst_violation_ps;
}

void gather_reduce_ideal_avx2(const GatherStage* stages, int stage_count, const double* unit,
                              double scale, double tolerance, std::size_t begin,
                              std::size_t count, double* total, std::uint64_t* violations,
                              double* worst) {
    double total_time_ps = *total;
    std::uint64_t violation_count = *violations;
    double worst_violation_ps = *worst;
    const __m256d vscale = _mm256_set1_pd(scale);
    const __m256d vtol = _mm256_set1_pd(tolerance);
    __m256d vworst = _mm256_set1_pd(worst_violation_ps);
    // Strict cycle order for the time integral: extract the lanes with
    // register shuffles (no store/reload round-trip) and chain the adds
    // serially — same values in the same order as the scalar reference.
    const auto add_lanes_in_order = [&total_time_ps](__m256d v) {
        const __m128d lo = _mm256_castpd256_pd128(v);
        const __m128d hi = _mm256_extractf128_pd(v, 1);
        total_time_ps += _mm_cvtsd_f64(lo);
        total_time_ps += _mm_cvtsd_f64(_mm_unpackhi_pd(lo, lo));
        total_time_ps += _mm_cvtsd_f64(hi);
        total_time_ps += _mm_cvtsd_f64(_mm_unpackhi_pd(hi, hi));
    };
    std::size_t i = 0;
    // 8-wide main loop (two independent accumulators): the serial add
    // chain is the latency bound, and a deeper iteration gives the
    // out-of-order core eight elements' worth of independent gathers,
    // maxes and compares to retire under it.
    for (; i + 8 <= count; i += 8) {
        __m256d g0 = _mm256_setzero_pd();
        __m256d g1 = _mm256_setzero_pd();
        for (int s = 0; s < stage_count; ++s) {
            const dta::OccKey* row = stages[s].keys + begin + i;
            const double* values = stages[s].values;
            g0 = _mm256_max_pd(g0, gather4_pd(values, row));
            g1 = _mm256_max_pd(g1, gather4_pd(values, row + 4));
        }
        const __m256d r0 = _mm256_mul_pd(_mm256_loadu_pd(unit + begin + i), vscale);
        const __m256d r1 = _mm256_mul_pd(_mm256_loadu_pd(unit + begin + i + 4), vscale);
        const __m256d m0 = _mm256_cmp_pd(_mm256_add_pd(g0, vtol), r0, _CMP_LT_OQ);
        const __m256d m1 = _mm256_cmp_pd(_mm256_add_pd(g1, vtol), r1, _CMP_LT_OQ);
        const int bits =
            _mm256_movemask_pd(m0) | (_mm256_movemask_pd(m1) << 4);
        if (bits != 0) {
            violation_count += static_cast<unsigned>(__builtin_popcount(static_cast<unsigned>(bits)));
            vworst = _mm256_max_pd(vworst, _mm256_and_pd(m0, _mm256_sub_pd(r0, g0)));
            vworst = _mm256_max_pd(vworst, _mm256_and_pd(m1, _mm256_sub_pd(r1, g1)));
        }
        add_lanes_in_order(g0);
        add_lanes_in_order(g1);
    }
    for (; i + 4 <= count; i += 4) {
        __m256d granted = _mm256_setzero_pd();
        for (int s = 0; s < stage_count; ++s) {
            granted =
                _mm256_max_pd(granted, gather4_pd(stages[s].values, stages[s].keys + begin + i));
        }
        const __m256d required =
            _mm256_mul_pd(_mm256_loadu_pd(unit + begin + i), vscale);
        const __m256d mask =
            _mm256_cmp_pd(_mm256_add_pd(granted, vtol), required, _CMP_LT_OQ);
        const int bits = _mm256_movemask_pd(mask);
        if (bits != 0) {
            violation_count += static_cast<unsigned>(__builtin_popcount(static_cast<unsigned>(bits)));
            vworst = _mm256_max_pd(
                vworst, _mm256_and_pd(mask, _mm256_sub_pd(required, granted)));
        }
        add_lanes_in_order(granted);
    }
    alignas(32) double lanes[4];
    _mm256_store_pd(lanes, vworst);
    worst_violation_ps = std::max(std::max(lanes[0], lanes[1]), std::max(lanes[2], lanes[3]));
    for (; i < count; ++i) {
        double granted = 0.0;
        for (int s = 0; s < stage_count; ++s) {
            const double d = stages[s].values[static_cast<std::size_t>(stages[s].keys[begin + i])];
            if (d > granted) granted = d;
        }
        total_time_ps += granted;
        const double required = unit[begin + i] * scale;
        if (granted + tolerance < required) {
            ++violation_count;
            worst_violation_ps = std::max(worst_violation_ps, required - granted);
        }
    }
    *total = total_time_ps;
    *violations = violation_count;
    *worst = worst_violation_ps;
}

constexpr ReplayKernels kAvx2Kernels = {
    &gather_max_avx2,
    &scale_avx2,
    &reduce_ideal_avx2,
    &gather_reduce_ideal_avx2,
    "avx2",
};

}  // namespace

const ReplayKernels* simd_replay_kernels() {
    static const bool supported = __builtin_cpu_supports("avx2") != 0;
    return supported ? &kAvx2Kernels : nullptr;
}

}  // namespace focs::core

#elif defined(FOCS_SIMD_ENABLED) && defined(__aarch64__)

#include <arm_neon.h>

#include <algorithm>

namespace focs::core {
namespace {

void gather_max_neon(const GatherStage* stages, int stage_count, std::size_t begin,
                     std::size_t count, double* out) {
    std::size_t i = 0;
    for (; i + 2 <= count; i += 2) {
        float64x2_t acc = vdupq_n_f64(0.0);
        for (int s = 0; s < stage_count; ++s) {
            const dta::OccKey* row = stages[s].keys + begin + i;
            const double* values = stages[s].values;
            // No hardware gather on NEON: two scalar loads per vector.
            float64x2_t v = vdupq_n_f64(values[static_cast<std::size_t>(row[0])]);
            v = vsetq_lane_f64(values[static_cast<std::size_t>(row[1])], v, 1);
            acc = vmaxq_f64(acc, v);
        }
        vst1q_f64(out + i, acc);
    }
    for (; i < count; ++i) {
        double m = 0.0;
        for (int s = 0; s < stage_count; ++s) {
            const double d = stages[s].values[static_cast<std::size_t>(stages[s].keys[begin + i])];
            if (d > m) m = d;
        }
        out[i] = m;
    }
}

void scale_neon(const double* in, double factor, std::size_t count, double* out) {
    const float64x2_t vfactor = vdupq_n_f64(factor);
    std::size_t i = 0;
    for (; i + 2 <= count; i += 2) {
        vst1q_f64(out + i, vmulq_f64(vld1q_f64(in + i), vfactor));
    }
    for (; i < count; ++i) out[i] = in[i] * factor;
}

void reduce_ideal_neon(const double* requested, const double* unit, double scale,
                       double tolerance, std::size_t begin, std::size_t count, double* total,
                       std::uint64_t* violations, double* worst) {
    double total_time_ps = *total;
    std::uint64_t violation_count = *violations;
    double worst_violation_ps = *worst;
    const float64x2_t vscale = vdupq_n_f64(scale);
    const float64x2_t vtol = vdupq_n_f64(tolerance);
    float64x2_t vworst = vdupq_n_f64(worst_violation_ps);
    std::size_t i = 0;
    for (; i + 2 <= count; i += 2) {
        const float64x2_t granted = vld1q_f64(requested + i);
        const float64x2_t required = vmulq_f64(vld1q_f64(unit + begin + i), vscale);
        const uint64x2_t mask = vcltq_f64(vaddq_f64(granted, vtol), required);
        if ((vgetq_lane_u64(mask, 0) | vgetq_lane_u64(mask, 1)) != 0) {
            violation_count += (vgetq_lane_u64(mask, 0) >> 63) + (vgetq_lane_u64(mask, 1) >> 63);
            const float64x2_t delta = vreinterpretq_f64_u64(
                vandq_u64(mask, vreinterpretq_u64_f64(vsubq_f64(required, granted))));
            vworst = vmaxq_f64(vworst, delta);
        }
        total_time_ps += requested[i];
        total_time_ps += requested[i + 1];
    }
    worst_violation_ps = std::max(vgetq_lane_f64(vworst, 0), vgetq_lane_f64(vworst, 1));
    for (; i < count; ++i) {
        const double granted = requested[i];
        total_time_ps += granted;
        const double required = unit[begin + i] * scale;
        if (granted + tolerance < required) {
            ++violation_count;
            worst_violation_ps = std::max(worst_violation_ps, required - granted);
        }
    }
    *total = total_time_ps;
    *violations = violation_count;
    *worst = worst_violation_ps;
}

void gather_reduce_ideal_neon(const GatherStage* stages, int stage_count, const double* unit,
                              double scale, double tolerance, std::size_t begin,
                              std::size_t count, double* total, std::uint64_t* violations,
                              double* worst) {
    double total_time_ps = *total;
    std::uint64_t violation_count = *violations;
    double worst_violation_ps = *worst;
    const float64x2_t vscale = vdupq_n_f64(scale);
    const float64x2_t vtol = vdupq_n_f64(tolerance);
    float64x2_t vworst = vdupq_n_f64(worst_violation_ps);
    std::size_t i = 0;
    for (; i + 2 <= count; i += 2) {
        float64x2_t granted = vdupq_n_f64(0.0);
        for (int s = 0; s < stage_count; ++s) {
            const dta::OccKey* row = stages[s].keys + begin + i;
            const double* values = stages[s].values;
            float64x2_t v = vdupq_n_f64(values[static_cast<std::size_t>(row[0])]);
            v = vsetq_lane_f64(values[static_cast<std::size_t>(row[1])], v, 1);
            granted = vmaxq_f64(granted, v);
        }
        const float64x2_t required = vmulq_f64(vld1q_f64(unit + begin + i), vscale);
        const uint64x2_t mask = vcltq_f64(vaddq_f64(granted, vtol), required);
        if ((vgetq_lane_u64(mask, 0) | vgetq_lane_u64(mask, 1)) != 0) {
            violation_count += (vgetq_lane_u64(mask, 0) >> 63) + (vgetq_lane_u64(mask, 1) >> 63);
            const float64x2_t delta = vreinterpretq_f64_u64(
                vandq_u64(mask, vreinterpretq_u64_f64(vsubq_f64(required, granted))));
            vworst = vmaxq_f64(vworst, delta);
        }
        total_time_ps += vgetq_lane_f64(granted, 0);
        total_time_ps += vgetq_lane_f64(granted, 1);
    }
    worst_violation_ps = std::max(worst_violation_ps,
                                  std::max(vgetq_lane_f64(vworst, 0), vgetq_lane_f64(vworst, 1)));
    for (; i < count; ++i) {
        double granted = 0.0;
        for (int s = 0; s < stage_count; ++s) {
            const double d = stages[s].values[static_cast<std::size_t>(stages[s].keys[begin + i])];
            if (d > granted) granted = d;
        }
        total_time_ps += granted;
        const double required = unit[begin + i] * scale;
        if (granted + tolerance < required) {
            ++violation_count;
            worst_violation_ps = std::max(worst_violation_ps, required - granted);
        }
    }
    *total = total_time_ps;
    *violations = violation_count;
    *worst = worst_violation_ps;
}

constexpr ReplayKernels kNeonKernels = {
    &gather_max_neon,
    &scale_neon,
    &reduce_ideal_neon,
    &gather_reduce_ideal_neon,
    "neon",
};

}  // namespace

const ReplayKernels* simd_replay_kernels() { return &kNeonKernels; }

}  // namespace focs::core

#else  // FOCS_SIMD disabled or no SIMD implementation for this target.

namespace focs::core {

const ReplayKernels* simd_replay_kernels() { return nullptr; }

}  // namespace focs::core

#endif
