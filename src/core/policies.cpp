#include "core/policies.hpp"

#include <algorithm>
#include <cstdio>

#include "common/error.hpp"
#include "isa/isa_info.hpp"

namespace focs::core {

using dta::DelayTable;
using dta::OccKey;
using sim::Stage;

StaticClockPolicy::StaticClockPolicy(double static_period_ps)
    : static_period_ps_(static_period_ps) {
    check(static_period_ps > 0, "static period must be positive");
}

double StaticClockPolicy::requested_period_ps(const PolicyContext&) {
    return static_period_ps_;
}

double GenieOraclePolicy::requested_period_ps(const PolicyContext& context) {
    return context.actual.required_period_ps;
}

InstructionLutPolicy::InstructionLutPolicy(const DelayTable& table, double margin_ps)
    : table_(&table), margin_ps_(margin_ps) {
    check(margin_ps >= 0, "negative safety margin");
}

double InstructionLutPolicy::requested_period_ps(const PolicyContext& context) {
    // Fused attribution + lookup: this runs once per simulated cycle and is
    // the per-cycle cost the paper's controller would pay in hardware.
    return table_->cycle_period_ps(context.record) + margin_ps_;
}

ExOnlyPolicy::ExOnlyPolicy(const DelayTable& table) : table_(&table) {
    double floor = 0;
    for (OccKey key = 0; key < dta::kKeyCount; ++key) {
        for (int s = 0; s < sim::kStageCount; ++s) {
            const auto stage = static_cast<Stage>(s);
            if (stage == Stage::kEx) continue;
            if (!table.characterized(key, stage)) continue;
            floor = std::max(floor, table.lookup(key, stage));
        }
    }
    check(floor > 0, "delay table has no non-EX entries to build the floor from");
    floor_ps_ = floor;
}

double ExOnlyPolicy::requested_period_ps(const PolicyContext& context) {
    const auto keys = dta::attribution_keys(context.record);
    const double ex =
        table_->lookup(keys[static_cast<std::size_t>(Stage::kEx)], Stage::kEx);
    return std::max(ex, floor_ps_);
}

bool TwoClassPolicy::is_slow_key(OccKey key) {
    if (key == dta::kKeyBubble || key == dta::kKeyHeld) return false;
    const auto family = isa::timing_family(static_cast<isa::Opcode>(key));
    return family == isa::TimingFamily::kMul || family == isa::TimingFamily::kDiv;
}

TwoClassPolicy::TwoClassPolicy(const DelayTable& table) : table_(&table) {
    // The single fast-class period covers the worst *characterized* entry
    // of every fast-class instruction across all stages. Cycles containing
    // any uncharacterized (key, stage) pair are treated as slow at run
    // time, so characterization gaps can never become unsafe.
    double fast = 0;
    for (OccKey key = 0; key < dta::kKeyCount; ++key) {
        if (is_slow_key(key)) continue;
        for (int s = 0; s < sim::kStageCount; ++s) {
            const auto stage = static_cast<Stage>(s);
            if (table.characterized(key, stage)) {
                fast = std::max(fast, table.lookup(key, stage));
            }
        }
    }
    fast_period_ps_ = fast > 0 ? fast : table.static_period_ps();
}

double TwoClassPolicy::requested_period_ps(const PolicyContext& context) {
    const auto keys = dta::attribution_keys(context.record);
    for (int s = 0; s < sim::kStageCount; ++s) {
        const OccKey key = keys[static_cast<std::size_t>(s)];
        if (is_slow_key(key) || !table_->characterized(key, static_cast<Stage>(s))) {
            return table_->static_period_ps();
        }
    }
    return fast_period_ps_;
}

DualCyclePolicy::DualCyclePolicy(const DelayTable& table, double stretch)
    : table_(&table), stretch_(stretch) {
    check(stretch >= 1.0, "dual-cycle stretch must be >= 1");
    // The fast period covers every characterized non-critical entry; the
    // stretched period must cover the critical class and the
    // uncharacterized static fallback, or the scheme degenerates safely to
    // the fallback.
    double fast = 0;
    for (OccKey key = 0; key < dta::kKeyCount; ++key) {
        if (TwoClassPolicy::is_slow_key(key)) continue;
        for (int s = 0; s < sim::kStageCount; ++s) {
            const auto stage = static_cast<Stage>(s);
            if (table.characterized(key, stage)) {
                fast = std::max(fast, table.lookup(key, stage));
            }
        }
    }
    fast_period_ps_ = fast > 0 ? fast : table.static_period_ps();
    // `stretch` fast cycles must cover the static limit so stretched cycles
    // and fallback cases stay safe.
    fast_period_ps_ = std::max(fast_period_ps_, table.static_period_ps() / stretch_);
}

double DualCyclePolicy::requested_period_ps(const PolicyContext& context) {
    const auto keys = dta::attribution_keys(context.record);
    for (int s = 0; s < sim::kStageCount; ++s) {
        const OccKey key = keys[static_cast<std::size_t>(s)];
        if (TwoClassPolicy::is_slow_key(key) ||
            !table_->characterized(key, static_cast<Stage>(s))) {
            return stretch_ * fast_period_ps_;  // occasional stretched cycle
        }
    }
    return fast_period_ps_;
}

std::string DualCyclePolicy::name() const {
    if (stretch_ == kDualCycleKindStretch) return "dual-cycle";
    char buf[48];
    std::snprintf(buf, sizeof buf, "dual-cycle/%.2f", stretch_);
    return buf;
}

ApproximateLutPolicy::ApproximateLutPolicy(const DelayTable& table, double scale)
    : table_(&table), scale_(scale) {
    check(scale > 0 && scale <= 1.0, "approximation scale must be in (0, 1]");
}

double ApproximateLutPolicy::requested_period_ps(const PolicyContext& context) {
    return table_->cycle_period_ps(context.record) * scale_;
}

std::string ApproximateLutPolicy::name() const {
    char buf[48];
    std::snprintf(buf, sizeof buf, "approx-lut/%.2f", scale_);
    return buf;
}

double PolicySpec::resolved_param() const {
    if (param >= 0) return param;
    switch (kind) {
        case PolicyKind::kApproxLut: return kApproxLutKindScale;
        case PolicyKind::kDualCycle: return kDualCycleKindStretch;
        default: return param;
    }
}

namespace {

/// Shortest decimal that round-trips to `value` exactly (tries increasing
/// "%.*g" precision, 1..17). Keeps explicit policy parameters readable in
/// labels and canonical spec text ("0.8", not "0.80000000000000004") while
/// staying lossless.
std::string format_param(double value) {
    char buf[64];
    for (int precision = 1; precision <= 17; ++precision) {
        std::snprintf(buf, sizeof buf, "%.*g", precision, value);
        if (std::stod(buf) == value) break;
    }
    return buf;
}

/// The default parameter of a kind, or -1 when the kind takes none.
double kind_default_param(PolicyKind kind) {
    return PolicySpec{kind}.resolved_param();
}

}  // namespace

std::string PolicySpec::label() const {
    std::string text = policy_kind_name(kind);
    if (param >= 0 && param != kind_default_param(kind)) {
        text += ':' + format_param(param);
    }
    return text;
}

PolicySpec PolicySpec::parse(const std::string& text) {
    const auto colon = text.find(':');
    PolicySpec spec;
    spec.kind = parse_policy_kind(colon == std::string::npos ? text : text.substr(0, colon));
    if (colon == std::string::npos) return spec;
    check(spec.kind == PolicyKind::kApproxLut || spec.kind == PolicyKind::kDualCycle,
          "policy '" + text + "': only approx-lut and dual-cycle take a parameter");
    const std::string param_text = text.substr(colon + 1);
    double param = 0;
    try {
        std::size_t pos = 0;
        param = std::stod(param_text, &pos);
        check(pos == param_text.size(),
              "policy '" + text + "': trailing characters in parameter");
    } catch (const std::invalid_argument&) {
        throw Error("policy '" + text + "': malformed parameter '" + param_text + "'");
    } catch (const std::out_of_range&) {
        throw Error("policy '" + text + "': parameter out of range");
    }
    if (spec.kind == PolicyKind::kApproxLut) {
        check(param > 0 && param <= 1.0,
              "policy '" + text + "': approx-lut scale must be in (0, 1]");
    } else {
        check(param >= 1.0, "policy '" + text + "': dual-cycle stretch must be >= 1");
    }
    // Normalize a spelled-out default back to "no parameter" so equal grids
    // compare, hash and serialize identically.
    spec.param = param == kind_default_param(spec.kind) ? -1 : param;
    return spec;
}

std::unique_ptr<ClockPolicy> make_policy(PolicyKind kind, const DelayTable& table,
                                         double static_period_ps) {
    return make_policy(PolicySpec{kind}, table, static_period_ps);
}

std::unique_ptr<ClockPolicy> make_policy(const PolicySpec& spec, const DelayTable& table,
                                         double static_period_ps) {
    switch (spec.kind) {
        case PolicyKind::kStatic: return std::make_unique<StaticClockPolicy>(static_period_ps);
        case PolicyKind::kGenie: return std::make_unique<GenieOraclePolicy>();
        case PolicyKind::kInstructionLut: return std::make_unique<InstructionLutPolicy>(table);
        case PolicyKind::kExOnly: return std::make_unique<ExOnlyPolicy>(table);
        case PolicyKind::kTwoClass: return std::make_unique<TwoClassPolicy>(table);
        case PolicyKind::kApproxLut:
            return std::make_unique<ApproximateLutPolicy>(table, spec.resolved_param());
        case PolicyKind::kDualCycle:
            return std::make_unique<DualCyclePolicy>(table, spec.resolved_param());
    }
    check(false, "unknown policy kind");
    return nullptr;
}

std::string policy_kind_name(PolicyKind kind) {
    switch (kind) {
        case PolicyKind::kStatic: return "static";
        case PolicyKind::kGenie: return "genie";
        case PolicyKind::kInstructionLut: return "lut";
        case PolicyKind::kExOnly: return "ex-only";
        case PolicyKind::kTwoClass: return "two-class";
        case PolicyKind::kApproxLut: return "approx-lut";
        case PolicyKind::kDualCycle: return "dual-cycle";
    }
    check(false, "unknown policy kind");
    return {};
}

PolicyKind parse_policy_kind(const std::string& name) {
    if (name == "static") return PolicyKind::kStatic;
    if (name == "two-class") return PolicyKind::kTwoClass;
    if (name == "ex-only") return PolicyKind::kExOnly;
    if (name == "lut") return PolicyKind::kInstructionLut;
    if (name == "genie") return PolicyKind::kGenie;
    if (name == "approx-lut") return PolicyKind::kApproxLut;
    if (name == "dual-cycle") return PolicyKind::kDualCycle;
    throw Error("unknown policy '" + name +
                "' (static|two-class|ex-only|lut|genie|approx-lut|dual-cycle)");
}

}  // namespace focs::core
