#include "core/mix_stats.hpp"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/table.hpp"

namespace focs::core {

namespace {

class MixObserver final : public sim::PipelineObserver {
public:
    explicit MixObserver(MixReport& report) : report_(report) {}

    void on_cycle(const sim::CycleRecord& record) override {
        ++report_.total_cycles;
        const auto keys = dta::attribution_keys(record);
        ++report_.ex_cycles[static_cast<std::size_t>(
            keys[static_cast<std::size_t>(sim::Stage::kEx)])];
        if (record.fetch_redirect) ++report_.redirect_cycles;
        const auto& wb = record.stage(sim::Stage::kWb);
        if (wb.valid && !wb.held) {
            ++report_.retired[static_cast<std::size_t>(dta::key_of(wb))];
        }
    }

private:
    MixReport& report_;
};

}  // namespace

MixReport collect_mix(const assembler::Program& program, sim::MachineConfig config) {
    MixReport report;
    sim::Machine machine(config);
    machine.load(program);
    MixObserver observer(report);
    const sim::RunResult result = machine.run(&observer);
    report.total_instructions = result.instructions;
    report.ipc = result.ipc();
    return report;
}

std::string MixReport::to_string(const dta::DelayTable* table) const {
    std::vector<dta::OccKey> order;
    for (dta::OccKey key = 0; key < dta::kKeyCount; ++key) {
        if (ex_cycles[static_cast<std::size_t>(key)] > 0) order.push_back(key);
    }
    std::sort(order.begin(), order.end(), [&](dta::OccKey a, dta::OccKey b) {
        return ex_cycles[static_cast<std::size_t>(a)] > ex_cycles[static_cast<std::size_t>(b)];
    });

    std::vector<std::string> headers = {"EX occupant", "Cycles", "Share [%]", "Retired"};
    if (table != nullptr) headers.push_back("EX LUT [ps]");
    TextTable out(headers);
    for (const auto key : order) {
        std::vector<std::string> row = {
            std::string(dta::key_name(key)),
            std::to_string(ex_cycles[static_cast<std::size_t>(key)]),
            TextTable::num(100.0 * static_cast<double>(ex_cycles[static_cast<std::size_t>(key)]) /
                               static_cast<double>(total_cycles),
                           2),
            std::to_string(retired[static_cast<std::size_t>(key)]),
        };
        if (table != nullptr) {
            row.push_back(TextTable::num(table->lookup(key, sim::Stage::kEx), 0));
        }
        out.add_row(std::move(row));
    }
    char summary[160];
    std::snprintf(summary, sizeof summary,
                  "cycles: %llu, instructions: %llu (IPC %.3f), redirect cycles: %llu (%.1f%%)\n",
                  static_cast<unsigned long long>(total_cycles),
                  static_cast<unsigned long long>(total_instructions), ipc,
                  static_cast<unsigned long long>(redirect_cycles),
                  100.0 * static_cast<double>(redirect_cycles) /
                      static_cast<double>(std::max<std::uint64_t>(total_cycles, 1)));
    return out.to_string() + summary;
}

}  // namespace focs::core
