// Block-fill primitives of the replay engine, as a dispatchable kernel
// table: one scalar implementation (the portable fallback) plus, when
// FOCS_SIMD is compiled in and the running CPU supports it, one explicit
// SIMD implementation (AVX2 on x86-64, NEON on aarch64).
//
// Every implementation is elementwise byte-identical to the scalar
// reference by construction: the per-element operations are the same IEEE
// doubles in the same per-element order (gather, multiply, compare), and
// the only cross-element reductions — the per-cycle max over stages, the
// violation count, and the worst-violation max — are order-free (max and
// integer addition are associative and commutative over the NaN-free
// inputs the engine feeds them). The one order-sensitive figure, the
// integrated total time, is summed in strict cycle order by every
// implementation. tests/test_replay.cpp pins the identity per policy kind,
// block size and voltage; CI's simd-parity job byte-diffs whole sweeps.
#pragma once

#include <cstddef>
#include <cstdint>

#include "dta/delay_table.hpp"

namespace focs::core {

/// One stage's contribution to a gather/max fill: the stage's full-trace
/// occupancy-key row (indexed by absolute cycle) and a kKeyCount-entry
/// value row. The value row is what makes the kernel shared: the LUT fill
/// gathers fallback-resolved delays, the ex-only fill a floor-folded
/// single-stage row, and the two-class/dual-cycle mask kernel a per-stage
/// select row (slow ? slow_period : fast_period) — turning the slow-bitmap
/// OR-reduction into the same branch-free gather/max.
struct GatherStage {
    const dta::OccKey* keys = nullptr;
    const double* values = nullptr;
};

/// Kernel table resolved once per ReplayEvaluationEngine.
struct ReplayKernels {
    /// out[i] = max over s of stages[s].values[stages[s].keys[begin + i]]
    /// for i in [0, count). Zero-initialized accumulator, stages maxed in
    /// ascending order per element (order-free: max commutes).
    void (*gather_max)(const GatherStage* stages, int stage_count, std::size_t begin,
                       std::size_t count, double* out);
    /// out[i] = fl(in[i] * factor), elementwise; `in` may alias `out`
    /// (the genie fill and the approx-lut compression multiply).
    void (*scale)(const double* in, double factor, std::size_t count, double* out);
    /// Grant/integrate/safety reduction of one ideal-generator block
    /// (granted == requested): *total accumulates requested[i] in strict
    /// cycle order; a violation whenever fl(requested[i] + tolerance) <
    /// fl(unit[begin+i] * scale), with *worst maxed over the violating
    /// fl(required - requested) deltas. Bitwise the same figures as the
    /// scalar per-cycle loop at any block size.
    void (*reduce_ideal)(const double* requested, const double* unit, double scale,
                         double tolerance, std::size_t begin, std::size_t count, double* total,
                         std::uint64_t* violations, double* worst);
    /// Fused gather_max + reduce_ideal in one pass, for ideal-generator
    /// blocks whose fill is a pure gather (LUT, ex-only, the two-class
    /// mask select): per element the gathered max feeds the strict-order
    /// total and the safety check directly, with no scratch round-trip.
    /// Identical figures to gather_max into a buffer followed by
    /// reduce_ideal — same per-element operations in the same order — but
    /// the independent gather chains overlap the serial FADD chain of the
    /// time integral instead of running as a separate memory pass.
    void (*gather_reduce_ideal)(const GatherStage* stages, int stage_count, const double* unit,
                                double scale, double tolerance, std::size_t begin,
                                std::size_t count, double* total, std::uint64_t* violations,
                                double* worst);
    /// "scalar" | "avx2" | "neon" — surfaced in the bench artifact.
    const char* name;
};

/// The portable reference-shaped table (plain loops, no intrinsics).
const ReplayKernels& scalar_replay_kernels();

/// The SIMD table when FOCS_SIMD was compiled in, the target ISA has an
/// implementation, and (on x86) the running CPU reports AVX2; nullptr
/// otherwise — callers fall back to scalar_replay_kernels().
const ReplayKernels* simd_replay_kernels();

}  // namespace focs::core
