#include "core/flows.hpp"

#include "common/error.hpp"
#include "dta/batch_engine.hpp"
#include "dta/gatesim.hpp"

namespace focs::core {

CharacterizationFlow::CharacterizationFlow(const timing::DesignConfig& design,
                                           dta::AnalyzerConfig analyzer_config,
                                           sim::MachineConfig machine_config)
    : design_(design),
      analyzer_config_(analyzer_config),
      machine_config_(machine_config),
      netlist_(timing::SyntheticNetlist::generate(design)),
      calculator_(design) {
    if (analyzer_config_.static_period_ps <= 0) {
        analyzer_config_.static_period_ps = calculator_.static_period_ps();
    }
}

namespace {

void check_self_check(const sim::RunResult& run) {
    if (run.exit_code != 0) {
        throw GuestError("characterization program failed self-check (exit code " +
                         std::to_string(run.exit_code) + ")");
    }
}

}  // namespace

CharacterizationResult CharacterizationFlow::run(const std::vector<assembler::Program>& programs,
                                                 const CharacterizationOptions& options) const {
    check(!programs.empty(), "characterization needs at least one program");

    auto analysis = std::make_shared<dta::DynamicTimingAnalysis>(
        dta::PipelineSpec::from_netlist(netlist_), analyzer_config_);

    CharacterizationResult result;
    if (options.mode == CharacterizationMode::kBatched) {
        // One batch engine consumes every program's cycle stream back to
        // back: the pipeline produces distilled cycle batches, the SoA
        // endpoint kernel (optionally on options.threads workers) reduces
        // them, and the in-order merger folds blocks into the analyzer.
        dta::BatchOptions batch_options;
        batch_options.threads = options.threads;
        batch_options.batch_cycles = options.batch_cycles;
        batch_options.cancel = options.cancel;
        dta::BatchCharacterizationEngine engine(netlist_, calculator_, *analysis, batch_options);
        for (const auto& program : programs) {
            if (options.cancel != nullptr) options.cancel->throw_if_cancelled();
            sim::Machine machine(machine_config_);
            machine.load(program);
            check_self_check(machine.run(&engine));
        }
        engine.finish();
    } else if (options.mode == CharacterizationMode::kStreaming) {
        // Single pass: one streaming analyzer consumes every program's cycle
        // stream back to back. Per-program cycle numbering is irrelevant to
        // the accumulators, so no merged timeline is needed.
        for (const auto& program : programs) {
            if (options.cancel != nullptr) options.cancel->throw_if_cancelled();
            sim::Machine machine(machine_config_);
            machine.load(program);
            dta::GateLevelSimulation gatesim(netlist_, calculator_, *analysis);
            check_self_check(machine.run(&gatesim));
        }
    } else {
        // Gate-level-style simulation of every program; cycles are
        // concatenated into one global timeline before analysis.
        auto merged_log = std::make_shared<dta::EventLog>();
        auto merged_trace = std::make_shared<dta::OccupancyTrace>();
        std::uint64_t cycle_offset = 0;
        for (const auto& program : programs) {
            if (options.cancel != nullptr) options.cancel->throw_if_cancelled();
            sim::Machine machine(machine_config_);
            machine.load(program);
            dta::GateLevelSimulation gatesim(netlist_, calculator_);
            check_self_check(machine.run(&gatesim));
            merged_log->append_shifted(gatesim.event_log(), cycle_offset);
            merged_trace->append_shifted(gatesim.trace(), cycle_offset);
            cycle_offset += gatesim.trace().size();
        }
        analysis->analyze(*merged_log, *merged_trace);
        result.event_log = std::move(merged_log);
        result.trace = std::move(merged_trace);
    }

    result.table = analysis->build_delay_table();
    result.static_period_ps = analyzer_config_.static_period_ps;
    result.genie_mean_period_ps = analysis->genie_mean_period_ps();
    result.genie_speedup = result.genie_mean_period_ps > 0
                               ? result.static_period_ps / result.genie_mean_period_ps
                               : 0;
    result.cycles = analysis->cycles();
    result.analysis = std::move(analysis);
    return result;
}

EvaluationFlow::EvaluationFlow(const timing::DesignConfig& design, const dta::DelayTable& table,
                               sim::MachineConfig machine_config)
    : design_(design), table_(&table), machine_config_(machine_config) {}

double EvaluationFlow::static_period_ps() const {
    return timing::DelayCalculator(design_).static_period_ps();
}

DcaRunResult evaluate_cell(const timing::DesignConfig& design, const dta::DelayTable& table,
                           const assembler::Program& program, const PolicySpec& policy_spec,
                           clocking::ClockGenerator* generator,
                           const sim::MachineConfig& machine_config) {
    DcaEngine engine(design, machine_config);
    const auto policy = make_policy(policy_spec, table, engine.calculator().static_period_ps());
    if (generator != nullptr) return engine.run(program, *policy, *generator);
    return engine.run(program, *policy);
}

DcaRunResult EvaluationFlow::run_one(const assembler::Program& program, PolicyKind kind,
                                     clocking::ClockGenerator* generator) const {
    return evaluate_cell(design_, *table_, program, kind, generator, machine_config_);
}

SuiteResult EvaluationFlow::run_suite(
    const std::vector<std::pair<std::string, assembler::Program>>& suite, PolicyKind kind,
    clocking::ClockGenerator* generator) const {
    check(!suite.empty(), "empty benchmark suite");
    SuiteResult result;
    for (const auto& [name, program] : suite) {
        BenchmarkRow row;
        row.benchmark = name;
        row.result = run_one(program, kind, generator);
        result.mean_eff_freq_mhz += row.result.eff_freq_mhz;
        result.mean_speedup += row.result.speedup_vs_static;
        result.total_violations += row.result.timing_violations;
        result.rows.push_back(std::move(row));
    }
    result.mean_eff_freq_mhz /= static_cast<double>(result.rows.size());
    result.mean_speedup /= static_cast<double>(result.rows.size());
    return result;
}

}  // namespace focs::core
