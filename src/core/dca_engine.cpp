#include "core/dca_engine.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/units.hpp"

namespace focs::core {

namespace {

/// Observer integrating execution time and checking timing safety.
class DcaObserver final : public sim::PipelineObserver {
public:
    DcaObserver(const timing::DelayCalculator& calculator, ClockPolicy& policy,
                clocking::ClockGenerator& generator)
        : calculator_(calculator), policy_(policy), generator_(generator) {}

    void on_cycle(const sim::CycleRecord& record) override {
        const timing::CycleDelays actual = calculator_.evaluate(record);
        const PolicyContext context{record, actual};
        const double requested = policy_.requested_period_ps(context);
        const double granted = generator_.grant_period_ps(requested);
        total_time_ps_ += granted;
        ++cycles_;
        // Safety: the granted period must cover the actual requirement of
        // every excited path this cycle.
        if (granted + kViolationTolerancePs < actual.required_period_ps) {
            ++violations_;
            worst_violation_ps_ =
                std::max(worst_violation_ps_, actual.required_period_ps - granted);
        }
    }

    double total_time_ps() const { return total_time_ps_; }
    std::uint64_t cycles() const { return cycles_; }
    std::uint64_t violations() const { return violations_; }
    double worst_violation_ps() const { return worst_violation_ps_; }

private:
    const timing::DelayCalculator& calculator_;
    ClockPolicy& policy_;
    clocking::ClockGenerator& generator_;
    double total_time_ps_ = 0;
    std::uint64_t cycles_ = 0;
    std::uint64_t violations_ = 0;
    double worst_violation_ps_ = 0;
};

}  // namespace

DcaEngine::DcaEngine(const timing::DesignConfig& design, sim::MachineConfig machine_config)
    : design_(design), machine_config_(machine_config), calculator_(design) {}

DcaRunResult DcaEngine::run(const assembler::Program& program, ClockPolicy& policy,
                            clocking::ClockGenerator& generator) {
    sim::Machine machine(machine_config_);
    machine.load(program);
    policy.reset();
    generator.reset();
    DcaObserver observer(calculator_, policy, generator);
    const sim::RunResult guest = machine.run(&observer);

    DcaRunResult result = finish_run(policy.name(), generator.name(), observer.cycles(),
                                     observer.total_time_ps(), calculator_.static_period_ps(),
                                     observer.violations(), observer.worst_violation_ps());
    result.guest = guest;
    return result;
}

DcaRunResult DcaEngine::run(const assembler::Program& program, ClockPolicy& policy) {
    clocking::IdealClockGenerator ideal;
    return run(program, policy, ideal);
}

DcaRunResult DcaEngine::replay(const sim::PipelineTrace& trace, ClockPolicy& policy,
                               clocking::ClockGenerator& generator) const {
    policy.reset();
    generator.reset();
    // Same per-cycle protocol as DcaObserver::on_cycle, fed from the
    // recorded records instead of a stepping pipeline. The actual timing
    // requirement is re-evaluated here because an arbitrary policy may read
    // any CycleDelays field; the bundled kinds go through the replay
    // engine's cached flat arrays instead.
    DcaObserver observer(calculator_, policy, generator);
    for (const sim::CycleRecord& record : trace.records) observer.on_cycle(record);

    DcaRunResult result = finish_run(policy.name(), generator.name(), observer.cycles(),
                                     observer.total_time_ps(), calculator_.static_period_ps(),
                                     observer.violations(), observer.worst_violation_ps());
    result.guest = trace.guest;
    return result;
}

DcaRunResult DcaEngine::replay(const sim::PipelineTrace& trace, ClockPolicy& policy) const {
    clocking::IdealClockGenerator ideal;
    return replay(trace, policy, ideal);
}

DcaRunResult DcaEngine::replay(const sim::PipelineTrace& trace,
                               const timing::ScaledTraceDelays& delays, ClockPolicy& policy,
                               clocking::ClockGenerator& generator) const {
    check(delays.unit != nullptr, "replay needs a unit trace-delay artifact");
    check(delays.cycles() == trace.cycles(),
          "trace delays were computed from a different trace (cycle count mismatch)");
    // cycles() is defined by the required-period array alone; the limiting-
    // stage row is indexed per cycle below, so a hand-assembled artifact
    // with mismatched rows must not get past construction checks.
    check(delays.unit->limiting_stage.size() == delays.unit->unit_required_period_ps.size(),
          "unit trace delays have mismatched limiting-stage and period rows");
    // scale_trace_delays copies the calculator's static period verbatim, so
    // a view derived at a different operating point than this engine's is
    // caught by one exact compare instead of silently skewing violations.
    check(delays.static_period_ps == calculator_.static_period_ps(),
          "trace delays were scaled for a different operating point");
    policy.reset();
    generator.reset();
    const double* unit = delays.unit->unit_required_period_ps.data();
    const sim::Stage* limiting = delays.unit->limiting_stage.data();
    const double scale = delays.delay_scale;

    // Same per-cycle protocol as DcaObserver::on_cycle, with the actual
    // requirement derived from the shared unit array (fl(unit * scale) is
    // bit-identical to the live calculator's per-stage max) instead of a
    // fresh delay-model pass. Per-stage arrivals are not materialized —
    // PolicyContext::actual is the genie's oracle channel only.
    double total_time_ps = 0;
    std::uint64_t cycles = 0;
    std::uint64_t violations = 0;
    double worst_violation_ps = 0;
    timing::CycleDelays actual;
    for (const sim::CycleRecord& record : trace.records) {
        actual.required_period_ps = unit[cycles] * scale;
        actual.limiting_stage = limiting[cycles];
        const PolicyContext context{record, actual};
        const double requested = policy.requested_period_ps(context);
        const double granted = generator.grant_period_ps(requested);
        total_time_ps += granted;
        ++cycles;
        if (granted + kViolationTolerancePs < actual.required_period_ps) {
            ++violations;
            worst_violation_ps =
                std::max(worst_violation_ps, actual.required_period_ps - granted);
        }
    }

    DcaRunResult result =
        finish_run(policy.name(), generator.name(), cycles, total_time_ps,
                   delays.static_period_ps, violations, worst_violation_ps);
    result.guest = trace.guest;
    return result;
}

DcaRunResult DcaEngine::replay(const sim::PipelineTrace& trace,
                               const timing::ScaledTraceDelays& delays,
                               ClockPolicy& policy) const {
    clocking::IdealClockGenerator ideal;
    return replay(trace, delays, policy, ideal);
}

DcaRunResult finish_run(std::string policy, std::string generator, std::uint64_t cycles,
                        double total_time_ps, double static_period_ps,
                        std::uint64_t timing_violations, double worst_violation_ps) {
    DcaRunResult result;
    result.policy = std::move(policy);
    result.clock_generator = std::move(generator);
    result.cycles = cycles;
    result.total_time_ps = total_time_ps;
    result.avg_period_ps =
        result.cycles > 0 ? result.total_time_ps / static_cast<double>(result.cycles) : 0;
    result.eff_freq_mhz = result.avg_period_ps > 0 ? mhz_from_period_ps(result.avg_period_ps) : 0;
    result.static_period_ps = static_period_ps;
    result.speedup_vs_static =
        result.avg_period_ps > 0 ? result.static_period_ps / result.avg_period_ps : 0;
    result.timing_violations = timing_violations;
    result.worst_violation_ps = worst_violation_ps;
    return result;
}

}  // namespace focs::core
