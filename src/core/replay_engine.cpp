#include "core/replay_engine.hpp"

#include <algorithm>
#include <array>
#include <functional>
#include <utility>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/span_tracer.hpp"

namespace focs::core {

using dta::OccKey;
using sim::Stage;

ReplayEvaluationEngine::ReplayEvaluationEngine(const sim::PipelineTrace& trace,
                                               timing::ScaledTraceDelays delays,
                                               const dta::DelayTable& table,
                                               ReplayOptions options)
    : trace_(&trace), delays_(std::move(delays)), table_(&table), options_(options) {
    check(options_.block_cycles >= 1, "replay block size must be >= 1");
    check(delays_.unit != nullptr, "replay engine needs a unit trace-delay artifact");
    check(delays_.cycles() == trace.cycles(),
          "trace delays were computed from a different trace (cycle count mismatch)");
    if (!options_.force_scalar) {
        kernels_ = simd_replay_kernels();
        if (kernels_ == nullptr) kernels_ = &scalar_replay_kernels();
        fx_ = timing::FixedPointPeriod::resolve(delays_);
        for (int s = 0; s < sim::kStageCount; ++s) {
            for (OccKey key = 0; key < dta::kKeyCount; ++key) {
                effective_rows_[static_cast<std::size_t>(s)][static_cast<std::size_t>(key)] =
                    table.effective(key, static_cast<Stage>(s));
            }
        }
    }
}

std::size_t ReplayEvaluationEngine::scratch_cycles() const {
    return std::min<std::size_t>(static_cast<std::size_t>(options_.block_cycles),
                                 std::max<std::size_t>(trace_->records.size(), 1));
}

/// Shared block loop: `fill(begin, end, out)` writes the requested period
/// of cycles [begin, end) into out[0..end-begin); the grant/integrate/
/// safety pass then consumes the block in exactly the live engine's
/// per-cycle order, so the integrated time and violation figures are
/// bit-identical at every block size. With the ideal generator the pass is
/// a block reduction through the kernel table (SIMD when available); with
/// a stateful generator it stays a sequential walk, reading the required
/// period from the fixed-point evaluator when one resolved. Either way the
/// required period is the same fl(unit * scale) double the live calculator
/// produces (positive-constant multiplication is monotone under IEEE
/// rounding, so it commutes with the per-stage max; the fixed-point path
/// reproduces the multiply bit for bit — see FixedPointPeriod).
///
/// kObs=false is the exact pre-observability loop (no flag checks inside);
/// kObs=true layers counters, a granted-period histogram and a per-run
/// span on top. Both instantiations produce identical DcaRunResults — the
/// instrumentation only ever reads the loop's values.
template <bool kObs, typename FillBlock>
DcaRunResult ReplayEvaluationEngine::replay_blocks_impl(const ClockPolicy& policy,
                                                        clocking::ClockGenerator* generator,
                                                        FillBlock&& fill,
                                                        const GatherStage* gather_stages,
                                                        int gather_stage_count) const {
    const double* unit = delays_.unit->unit_required_period_ps.data();
    const double scale = delays_.delay_scale;
    const std::size_t cycles = trace_->records.size();
    const std::size_t block = static_cast<std::size_t>(options_.block_cycles);
    std::vector<double> requested(scratch_cycles());
    // Fixed-point required-period evaluator for the sequential generator
    // walk (bit-exact vs unit[c] * scale — see FixedPointPeriod); nullptr
    // on the reference path or when the view did not resolve.
    const timing::FixedPointPeriod* fx = fx_.has_value() ? &*fx_ : nullptr;

#ifndef FOCS_OBS_COMPILE_OUT
    obs::Span span;
    if constexpr (kObs) {
        span = obs::global_tracer().span("replay.run");
        span.arg("policy", policy.name()).arg("cycles", static_cast<std::int64_t>(cycles));
    }
#endif

    if (generator != nullptr) generator->reset();
    double total_time_ps = 0;
    std::uint64_t violations = 0;
    double worst_violation_ps = 0;
    [[maybe_unused]] std::uint64_t blocks = 0;
    for (std::size_t begin = 0; begin < cycles; begin += block) {
        // Block-boundary cancellation check; the cycle loop below stays
        // token-free (see the cost note on ReplayOptions::cancel).
        if (options_.cancel != nullptr) options_.cancel->throw_if_cancelled();
        const std::size_t end = std::min(cycles, begin + block);
        if (generator == nullptr && kernels_ != nullptr && gather_stages != nullptr) {
            // Ideal generator over a pure-gather fill: the fused kernel
            // gathers, integrates (strict cycle order) and safety-checks
            // in one pass — no scratch round-trip, and the independent
            // gather chains overlap the serial time-integral adds.
            kernels_->gather_reduce_ideal(gather_stages, gather_stage_count, unit, scale,
                                          kViolationTolerancePs, begin, end - begin,
                                          &total_time_ps, &violations, &worst_violation_ps);
            if constexpr (kObs) ++blocks;
            continue;
        }
        fill(begin, end, requested.data());
        if (generator == nullptr && kernels_ != nullptr) {
            // Ideal generator (granted == requested): the whole grant/
            // integrate/safety pass is a block reduction — vectorizable
            // except for the order-sensitive time integral, which the
            // kernel sums in strict cycle order.
            kernels_->reduce_ideal(requested.data(), unit, scale, kViolationTolerancePs, begin,
                                   end - begin, &total_time_ps, &violations,
                                   &worst_violation_ps);
        } else if (generator != nullptr && fx != nullptr) {
            // Stateful generator: sequential walk, required period from
            // the integer mult+shift path.
            for (std::size_t c = begin; c < end; ++c) {
                const double granted = generator->grant_period_ps(requested[c - begin]);
                total_time_ps += granted;
                const double required = (*fx)(c);
                if (granted + kViolationTolerancePs < required) {
                    ++violations;
                    worst_violation_ps = std::max(worst_violation_ps, required - granted);
                }
            }
        } else {
            // Reference walk (force_scalar, or an unresolvable fixed-point
            // view): the exact pre-kernel per-cycle loop.
            for (std::size_t c = begin; c < end; ++c) {
                const double request = requested[c - begin];
                const double granted =
                    generator != nullptr ? generator->grant_period_ps(request) : request;
                total_time_ps += granted;
                const double required = unit[c] * scale;
                if (granted + kViolationTolerancePs < required) {
                    ++violations;
                    worst_violation_ps = std::max(worst_violation_ps, required - granted);
                }
            }
        }
        if constexpr (kObs) ++blocks;
    }

#ifndef FOCS_OBS_COMPILE_OUT
    if constexpr (kObs) {
        obs::MetricsRegistry& metrics = obs::global_metrics();
        static const struct Ids {
            obs::MetricsRegistry::Id runs, blocks, cycles, violations, avg_period;
            explicit Ids(obs::MetricsRegistry& m)
                : runs(m.counter("replay.runs")),
                  blocks(m.counter("replay.blocks")),
                  cycles(m.counter("replay.cycles")),
                  violations(m.counter("replay.violations")),
                  avg_period(m.histogram("replay.avg_period_ps",
                                         {100, 150, 200, 300, 400, 500, 700, 1000, 1500, 2000,
                                          3000, 5000})) {}
        } ids(metrics);
        metrics.add(ids.runs);
        metrics.add(ids.blocks, blocks);
        metrics.add(ids.cycles, cycles);
        metrics.add(ids.violations, violations);
        if (cycles > 0) {
            metrics.observe(ids.avg_period, total_time_ps / static_cast<double>(cycles));
        }
        span.arg("blocks", static_cast<std::int64_t>(blocks))
            .arg("violations", static_cast<std::int64_t>(violations));
    }
#endif

    DcaRunResult result = finish_run(
        policy.name(),
        generator != nullptr ? generator->name() : clocking::IdealClockGenerator().name(),
        cycles, total_time_ps, delays_.static_period_ps, violations, worst_violation_ps);
    result.guest = trace_->guest;
    return result;
}

template <typename FillBlock>
DcaRunResult ReplayEvaluationEngine::replay_blocks(const ClockPolicy& policy,
                                                   clocking::ClockGenerator* generator,
                                                   FillBlock&& fill,
                                                   const GatherStage* gather_stages,
                                                   int gather_stage_count) const {
#ifdef FOCS_OBS_COMPILE_OUT
    return replay_blocks_impl<false>(policy, generator, std::forward<FillBlock>(fill),
                                     gather_stages, gather_stage_count);
#else
    bool instrumented = false;
    switch (options_.obs) {
        case ReplayObsMode::kAuto:
            instrumented = obs::global_metrics().enabled() || obs::global_tracer().enabled();
            break;
        case ReplayObsMode::kForceOff: instrumented = false; break;
        case ReplayObsMode::kForceOn: instrumented = true; break;
    }
    return instrumented
               ? replay_blocks_impl<true>(policy, generator, std::forward<FillBlock>(fill),
                                          gather_stages, gather_stage_count)
               : replay_blocks_impl<false>(policy, generator, std::forward<FillBlock>(fill),
                                           gather_stages, gather_stage_count);
#endif
}

DcaRunResult ReplayEvaluationEngine::replay_class_select(const ClockPolicy& policy,
                                                         clocking::ClockGenerator* generator,
                                                         double fast_period_ps,
                                                         double slow_period_ps) const {
    const dta::DelayTable& table = *table_;
    const auto& keys = trace_->stage_keys;
    if (kernels_ != nullptr && slow_period_ps >= fast_period_ps && fast_period_ps >= 0.0) {
        // Branch-free mask kernel: per-stage select rows (slow-or-
        // uncharacterized ? slow : fast), then the shared gather/max fill.
        // Because slow >= fast >= 0, "max over per-stage selects" equals
        // "any stage slow ? slow : fast" exactly — no bitmap, no byte
        // scratch, no per-cycle branch. (Both class policies satisfy the
        // guard by construction; it protects hypothetical period choices.)
        std::array<std::array<double, dta::kKeyCount>, sim::kStageCount> select{};
        std::array<GatherStage, sim::kStageCount> stages{};
        for (int s = 0; s < sim::kStageCount; ++s) {
            for (OccKey key = 0; key < dta::kKeyCount; ++key) {
                const bool slow = TwoClassPolicy::is_slow_key(key) ||
                                  !table.characterized(key, static_cast<Stage>(s));
                select[static_cast<std::size_t>(s)][static_cast<std::size_t>(key)] =
                    slow ? slow_period_ps : fast_period_ps;
            }
            stages[static_cast<std::size_t>(s)] = {
                keys[static_cast<std::size_t>(s)].data(),
                select[static_cast<std::size_t>(s)].data()};
        }
        return replay_blocks(policy, generator,
                             [&](std::size_t begin, std::size_t end, double* out) {
                                 kernels_->gather_max(stages.data(), sim::kStageCount, begin,
                                                      end - begin, out);
                             },
                             stages.data(), sim::kStageCount);
    }
    // Reference path: per-(key, stage) "forces the slow period" bitmap,
    // hoisted out of the cycle loop: critical class or uncharacterized
    // entry.
    std::array<std::array<bool, sim::kStageCount>, dta::kKeyCount> slow{};
    for (OccKey key = 0; key < dta::kKeyCount; ++key) {
        for (int s = 0; s < sim::kStageCount; ++s) {
            slow[static_cast<std::size_t>(key)][static_cast<std::size_t>(s)] =
                TwoClassPolicy::is_slow_key(key) ||
                !table.characterized(key, static_cast<Stage>(s));
        }
    }
    // Block-sized scratch, reused across blocks (the same sizing rule as
    // the requested-period buffer).
    std::vector<char> any_slow(scratch_cycles());
    return replay_blocks(
        policy, generator, [&](std::size_t begin, std::size_t end, double* out) {
            const std::size_t count = end - begin;
            // Stage-major OR-reduction of the slow bits, then one select
            // pass.
            std::fill(any_slow.begin(), any_slow.begin() + static_cast<std::ptrdiff_t>(count), 0);
            for (int s = 0; s < sim::kStageCount; ++s) {
                const OccKey* row = keys[static_cast<std::size_t>(s)].data() + begin;
                for (std::size_t i = 0; i < count; ++i) {
                    any_slow[i] |= static_cast<char>(
                        slow[static_cast<std::size_t>(row[i])]
                            [static_cast<std::size_t>(s)]);
                }
            }
            for (std::size_t i = 0; i < count; ++i) {
                out[i] = any_slow[i] != 0 ? slow_period_ps : fast_period_ps;
            }
        });
}

DcaRunResult ReplayEvaluationEngine::run(const PolicySpec& spec,
                                         clocking::ClockGenerator* generator) const {
    // The policy object supplies the exact name string and the derived
    // constants (ex-only floor, class fast periods, approx scale, dual-
    // cycle stretch) of the live path; its virtual request hook is never
    // called — the kernels below are the devirtualized equivalents over
    // the trace's SoA rows.
    const auto policy = make_policy(spec, *table_, delays_.static_period_ps);
    const PolicyKind kind = spec.kind;
    const dta::DelayTable& table = *table_;
    const auto& keys = trace_->stage_keys;

    // Kernel-table gather descriptors over the stage-major transposed
    // effective rows (built at construction); unused on the reference path.
    std::array<GatherStage, sim::kStageCount> lut_stages{};
    if (kernels_ != nullptr) {
        for (int s = 0; s < sim::kStageCount; ++s) {
            lut_stages[static_cast<std::size_t>(s)] = {
                keys[static_cast<std::size_t>(s)].data(),
                effective_rows_[static_cast<std::size_t>(s)].data()};
        }
    }
    // Stage-major SoA max (paper eq. 2) through the kernel table: one
    // gather/max pass per stage over the block's key row. Shared by the
    // lut kernel and (with a trailing compression multiply) the approx-lut
    // kernel.
    const auto fill_lut_kernel = [&](std::size_t begin, std::size_t end, double* out) {
        kernels_->gather_max(lut_stages.data(), sim::kStageCount, begin, end - begin, out);
    };
    // Reference shape of the same fill: one plain indexed-load pass per
    // stage, maxing the fallback-resolved entries in place.
    const auto fill_lut_max = [&](std::size_t begin, std::size_t end, double* out) {
        const std::size_t count = end - begin;
        std::fill(out, out + count, 0.0);
        for (int s = 0; s < sim::kStageCount; ++s) {
            const OccKey* row = keys[static_cast<std::size_t>(s)].data() + begin;
            for (std::size_t i = 0; i < count; ++i) {
                const double d = table.effective(row[i], static_cast<Stage>(s));
                if (d > out[i]) out[i] = d;
            }
        }
    };

    switch (kind) {
        case PolicyKind::kStatic: {
            const double period = delays_.static_period_ps;
            return replay_blocks(*policy, generator,
                                 [&](std::size_t begin, std::size_t end, double* out) {
                                     std::fill(out, out + (end - begin), period);
                                 });
        }
        case PolicyKind::kGenie: {
            // The oracle requests exactly the cycle requirement: the unit
            // row scaled to the operating point.
            const double* unit = delays_.unit->unit_required_period_ps.data();
            const double scale = delays_.delay_scale;
            if (kernels_ != nullptr) {
                return replay_blocks(*policy, generator,
                                     [&](std::size_t begin, std::size_t end, double* out) {
                                         kernels_->scale(unit + begin, scale, end - begin, out);
                                     });
            }
            return replay_blocks(*policy, generator,
                                 [&](std::size_t begin, std::size_t end, double* out) {
                                     for (std::size_t c = begin; c < end; ++c) {
                                         out[c - begin] = unit[c] * scale;
                                     }
                                 });
        }
        case PolicyKind::kInstructionLut:
            if (kernels_ != nullptr) {
                return replay_blocks(*policy, generator, fill_lut_kernel, lut_stages.data(),
                                     sim::kStageCount);
            }
            return replay_blocks(*policy, generator, fill_lut_max);
        case PolicyKind::kApproxLut: {
            const auto* approx = dynamic_cast<const ApproximateLutPolicy*>(policy.get());
            check(approx != nullptr, "approx-lut policy kind produced an unexpected type");
            const double approx_scale = approx->scale();
            // The LUT max pass, then one compression multiply per cycle —
            // the same fl order as the live cycle_period_ps(record) * scale.
            if (kernels_ != nullptr) {
                return replay_blocks(
                    *policy, generator, [&](std::size_t begin, std::size_t end, double* out) {
                        fill_lut_kernel(begin, end, out);
                        kernels_->scale(out, approx_scale, end - begin, out);
                    });
            }
            return replay_blocks(
                *policy, generator, [&](std::size_t begin, std::size_t end, double* out) {
                    fill_lut_max(begin, end, out);
                    for (std::size_t i = 0; i < end - begin; ++i) out[i] *= approx_scale;
                });
        }
        case PolicyKind::kExOnly: {
            const auto* ex_only = dynamic_cast<const ExOnlyPolicy*>(policy.get());
            check(ex_only != nullptr, "ex-only policy kind produced an unexpected policy type");
            const double floor = ex_only->floor_ps();
            const OccKey* ex_row = keys[static_cast<std::size_t>(Stage::kEx)].data();
            if (kernels_ != nullptr) {
                // Fold the floor into a single-stage value row: the fill
                // becomes a one-stage gather/max (identical doubles — the
                // max with the floor is precomputed per key).
                std::array<double, dta::kKeyCount> ex_values{};
                for (OccKey key = 0; key < dta::kKeyCount; ++key) {
                    ex_values[static_cast<std::size_t>(key)] =
                        std::max(table.effective(key, Stage::kEx), floor);
                }
                const GatherStage ex_stage{ex_row, ex_values.data()};
                return replay_blocks(*policy, generator,
                                     [&](std::size_t begin, std::size_t end, double* out) {
                                         kernels_->gather_max(&ex_stage, 1, begin, end - begin,
                                                              out);
                                     },
                                     &ex_stage, 1);
            }
            return replay_blocks(*policy, generator,
                                 [&](std::size_t begin, std::size_t end, double* out) {
                                     for (std::size_t c = begin; c < end; ++c) {
                                         out[c - begin] = std::max(
                                             table.effective(ex_row[c], Stage::kEx), floor);
                                     }
                                 });
        }
        case PolicyKind::kTwoClass: {
            const auto* two_class = dynamic_cast<const TwoClassPolicy*>(policy.get());
            check(two_class != nullptr, "two-class policy kind produced an unexpected type");
            return replay_class_select(*policy, generator, two_class->fast_period_ps(),
                                       table.static_period_ps());
        }
        case PolicyKind::kDualCycle: {
            const auto* dual = dynamic_cast<const DualCyclePolicy*>(policy.get());
            check(dual != nullptr, "dual-cycle policy kind produced an unexpected type");
            const double fast = dual->fast_period_ps();
            return replay_class_select(*policy, generator, fast, dual->stretch() * fast);
        }
    }
    check(false, "unknown policy kind");
    return {};
}

std::vector<DcaRunResult> ReplayEvaluationEngine::run_batch(
    const std::vector<ReplayRequest>& requests) const {
    std::vector<DcaRunResult> results;
    results.reserve(requests.size());
    // Fuse runs of consecutive requests that share a policy: their request
    // arrays are identical, so one block fill serves the whole run.
    std::size_t begin = 0;
    while (begin < requests.size()) {
        std::size_t end = begin + 1;
        while (end < requests.size() && requests[end].policy == requests[begin].policy) ++end;
        std::vector<clocking::ClockGenerator*> generators;
        generators.reserve(end - begin);
        for (std::size_t i = begin; i < end; ++i) generators.push_back(requests[i].generator);
        auto fused = run_fused(requests[begin].policy, generators);
        for (auto& result : fused) results.push_back(std::move(result));
        begin = end;
    }
    return results;
}

std::vector<DcaRunResult> ReplayEvaluationEngine::run_fused(
    const PolicySpec& spec, const std::vector<clocking::ClockGenerator*>& generators) const {
    if (generators.empty()) return {};
    if (generators.size() == 1) return {run(spec, generators[0])};

    const auto policy = make_policy(spec, *table_, delays_.static_period_ps);
    const dta::DelayTable& table = *table_;
    const auto& keys = trace_->stage_keys;
    const double* unit = delays_.unit->unit_required_period_ps.data();
    const double scale = delays_.delay_scale;

    // --- Requested-period fill of this policy, type-erased: exactly the
    // fills run() builds, but one closure now serves every variant, so the
    // per-block gather/max (or select/scale) pass is paid once per column
    // instead of once per cell. Value rows referenced by the closure are
    // owned by the locals below and outlive the block loop.
    std::array<GatherStage, sim::kStageCount> lut_stages{};
    if (kernels_ != nullptr) {
        for (int s = 0; s < sim::kStageCount; ++s) {
            lut_stages[static_cast<std::size_t>(s)] = {
                keys[static_cast<std::size_t>(s)].data(),
                effective_rows_[static_cast<std::size_t>(s)].data()};
        }
    }
    std::array<double, dta::kKeyCount> ex_values{};
    GatherStage ex_stage{};
    std::array<std::array<double, dta::kKeyCount>, sim::kStageCount> select{};
    std::array<GatherStage, sim::kStageCount> select_stages{};
    std::array<std::array<bool, sim::kStageCount>, dta::kKeyCount> slow_map{};
    std::vector<char> any_slow;

    const auto fill_lut_max = [&](std::size_t begin, std::size_t end, double* out) {
        const std::size_t count = end - begin;
        std::fill(out, out + count, 0.0);
        for (int s = 0; s < sim::kStageCount; ++s) {
            const OccKey* row = keys[static_cast<std::size_t>(s)].data() + begin;
            for (std::size_t i = 0; i < count; ++i) {
                const double d = table.effective(row[i], static_cast<Stage>(s));
                if (d > out[i]) out[i] = d;
            }
        }
    };
    // Class-select fill shared by two-class and dual-cycle: the same
    // branch-free mask kernel / hoisted-bitmap pair replay_class_select
    // uses, with identical guards, so fused figures match per-variant runs
    // bit for bit.
    const auto make_class_select_fill =
        [&](double fast_period_ps,
            double slow_period_ps) -> std::function<void(std::size_t, std::size_t, double*)> {
        if (kernels_ != nullptr && slow_period_ps >= fast_period_ps && fast_period_ps >= 0.0) {
            for (int s = 0; s < sim::kStageCount; ++s) {
                for (OccKey key = 0; key < dta::kKeyCount; ++key) {
                    const bool slow = TwoClassPolicy::is_slow_key(key) ||
                                      !table.characterized(key, static_cast<Stage>(s));
                    select[static_cast<std::size_t>(s)][static_cast<std::size_t>(key)] =
                        slow ? slow_period_ps : fast_period_ps;
                }
                select_stages[static_cast<std::size_t>(s)] = {
                    keys[static_cast<std::size_t>(s)].data(),
                    select[static_cast<std::size_t>(s)].data()};
            }
            return [&](std::size_t begin, std::size_t end, double* out) {
                kernels_->gather_max(select_stages.data(), sim::kStageCount, begin, end - begin,
                                     out);
            };
        }
        for (OccKey key = 0; key < dta::kKeyCount; ++key) {
            for (int s = 0; s < sim::kStageCount; ++s) {
                slow_map[static_cast<std::size_t>(key)][static_cast<std::size_t>(s)] =
                    TwoClassPolicy::is_slow_key(key) ||
                    !table.characterized(key, static_cast<Stage>(s));
            }
        }
        any_slow.assign(scratch_cycles(), 0);
        return [&, fast_period_ps, slow_period_ps](std::size_t begin, std::size_t end,
                                                   double* out) {
            const std::size_t count = end - begin;
            std::fill(any_slow.begin(), any_slow.begin() + static_cast<std::ptrdiff_t>(count),
                      0);
            for (int s = 0; s < sim::kStageCount; ++s) {
                const OccKey* row = keys[static_cast<std::size_t>(s)].data() + begin;
                for (std::size_t i = 0; i < count; ++i) {
                    any_slow[i] |= static_cast<char>(
                        slow_map[static_cast<std::size_t>(row[i])][static_cast<std::size_t>(s)]);
                }
            }
            for (std::size_t i = 0; i < count; ++i) {
                out[i] = any_slow[i] != 0 ? slow_period_ps : fast_period_ps;
            }
        };
    };

    std::function<void(std::size_t, std::size_t, double*)> fill;
    switch (spec.kind) {
        case PolicyKind::kStatic: {
            const double period = delays_.static_period_ps;
            fill = [period](std::size_t begin, std::size_t end, double* out) {
                std::fill(out, out + (end - begin), period);
            };
            break;
        }
        case PolicyKind::kGenie:
            if (kernels_ != nullptr) {
                fill = [&](std::size_t begin, std::size_t end, double* out) {
                    kernels_->scale(unit + begin, scale, end - begin, out);
                };
            } else {
                fill = [&](std::size_t begin, std::size_t end, double* out) {
                    for (std::size_t c = begin; c < end; ++c) out[c - begin] = unit[c] * scale;
                };
            }
            break;
        case PolicyKind::kInstructionLut:
            if (kernels_ != nullptr) {
                fill = [&](std::size_t begin, std::size_t end, double* out) {
                    kernels_->gather_max(lut_stages.data(), sim::kStageCount, begin, end - begin,
                                         out);
                };
            } else {
                fill = fill_lut_max;
            }
            break;
        case PolicyKind::kApproxLut: {
            const auto* approx = dynamic_cast<const ApproximateLutPolicy*>(policy.get());
            check(approx != nullptr, "approx-lut policy kind produced an unexpected type");
            const double approx_scale = approx->scale();
            if (kernels_ != nullptr) {
                fill = [&, approx_scale](std::size_t begin, std::size_t end, double* out) {
                    kernels_->gather_max(lut_stages.data(), sim::kStageCount, begin, end - begin,
                                         out);
                    kernels_->scale(out, approx_scale, end - begin, out);
                };
            } else {
                fill = [&, approx_scale](std::size_t begin, std::size_t end, double* out) {
                    fill_lut_max(begin, end, out);
                    for (std::size_t i = 0; i < end - begin; ++i) out[i] *= approx_scale;
                };
            }
            break;
        }
        case PolicyKind::kExOnly: {
            const auto* ex_only = dynamic_cast<const ExOnlyPolicy*>(policy.get());
            check(ex_only != nullptr, "ex-only policy kind produced an unexpected policy type");
            const double floor = ex_only->floor_ps();
            const OccKey* ex_row = keys[static_cast<std::size_t>(Stage::kEx)].data();
            if (kernels_ != nullptr) {
                for (OccKey key = 0; key < dta::kKeyCount; ++key) {
                    ex_values[static_cast<std::size_t>(key)] =
                        std::max(table.effective(key, Stage::kEx), floor);
                }
                ex_stage = {ex_row, ex_values.data()};
                fill = [&](std::size_t begin, std::size_t end, double* out) {
                    kernels_->gather_max(&ex_stage, 1, begin, end - begin, out);
                };
            } else {
                fill = [&, floor, ex_row](std::size_t begin, std::size_t end, double* out) {
                    for (std::size_t c = begin; c < end; ++c) {
                        out[c - begin] = std::max(table.effective(ex_row[c], Stage::kEx), floor);
                    }
                };
            }
            break;
        }
        case PolicyKind::kTwoClass: {
            const auto* two_class = dynamic_cast<const TwoClassPolicy*>(policy.get());
            check(two_class != nullptr, "two-class policy kind produced an unexpected type");
            fill = make_class_select_fill(two_class->fast_period_ps(), table.static_period_ps());
            break;
        }
        case PolicyKind::kDualCycle: {
            const auto* dual = dynamic_cast<const DualCyclePolicy*>(policy.get());
            check(dual != nullptr, "dual-cycle policy kind produced an unexpected type");
            const double fast = dual->fast_period_ps();
            fill = make_class_select_fill(fast, dual->stretch() * fast);
            break;
        }
    }
    check(fill != nullptr, "unknown policy kind");

    // --- One block loop, G variant walks per filled block. Each variant
    // keeps private accumulator state and consumes the shared block in the
    // live engine's per-cycle order, so every variant's figures are bit-
    // identical to its own run() call.
    struct VariantState {
        clocking::ClockGenerator* generator;
        double total_time_ps = 0;
        std::uint64_t violations = 0;
        double worst_violation_ps = 0;
    };
    std::vector<VariantState> variants;
    variants.reserve(generators.size());
    for (clocking::ClockGenerator* generator : generators) {
        if (generator != nullptr) generator->reset();
        variants.push_back(VariantState{generator});
    }

    const std::size_t cycles = trace_->records.size();
    const std::size_t block = static_cast<std::size_t>(options_.block_cycles);
    std::vector<double> requested(scratch_cycles());
    const timing::FixedPointPeriod* fx = fx_.has_value() ? &*fx_ : nullptr;

#ifndef FOCS_OBS_COMPILE_OUT
    bool instrumented = false;
    switch (options_.obs) {
        case ReplayObsMode::kAuto:
            instrumented = obs::global_metrics().enabled() || obs::global_tracer().enabled();
            break;
        case ReplayObsMode::kForceOff: instrumented = false; break;
        case ReplayObsMode::kForceOn: instrumented = true; break;
    }
    obs::Span span;
    if (instrumented) {
        span = obs::global_tracer().span("replay.run_fused");
        span.arg("policy", policy->name())
            .arg("variants", static_cast<std::int64_t>(variants.size()))
            .arg("cycles", static_cast<std::int64_t>(cycles));
    }
#endif

    [[maybe_unused]] std::uint64_t blocks = 0;
    for (std::size_t begin = 0; begin < cycles; begin += block) {
        if (options_.cancel != nullptr) options_.cancel->throw_if_cancelled();
        const std::size_t end = std::min(cycles, begin + block);
        fill(begin, end, requested.data());
        ++blocks;
        for (VariantState& variant : variants) {
            if (variant.generator == nullptr && kernels_ != nullptr) {
                // Ideal variant: the whole grant/integrate/safety pass is a
                // block reduction over the shared request array.
                kernels_->reduce_ideal(requested.data(), unit, scale, kViolationTolerancePs,
                                       begin, end - begin, &variant.total_time_ps,
                                       &variant.violations, &variant.worst_violation_ps);
            } else if (variant.generator != nullptr && fx != nullptr) {
                for (std::size_t c = begin; c < end; ++c) {
                    const double granted =
                        variant.generator->grant_period_ps(requested[c - begin]);
                    variant.total_time_ps += granted;
                    const double required = (*fx)(c);
                    if (granted + kViolationTolerancePs < required) {
                        ++variant.violations;
                        variant.worst_violation_ps =
                            std::max(variant.worst_violation_ps, required - granted);
                    }
                }
            } else {
                for (std::size_t c = begin; c < end; ++c) {
                    const double request = requested[c - begin];
                    const double granted = variant.generator != nullptr
                                               ? variant.generator->grant_period_ps(request)
                                               : request;
                    variant.total_time_ps += granted;
                    const double required = unit[c] * scale;
                    if (granted + kViolationTolerancePs < required) {
                        ++variant.violations;
                        variant.worst_violation_ps =
                            std::max(variant.worst_violation_ps, required - granted);
                    }
                }
            }
        }
    }

#ifndef FOCS_OBS_COMPILE_OUT
    if (instrumented) {
        obs::MetricsRegistry& metrics = obs::global_metrics();
        static const struct Ids {
            obs::MetricsRegistry::Id batches, variants, blocks;
            explicit Ids(obs::MetricsRegistry& m)
                : batches(m.counter("replay.fused_batches")),
                  variants(m.counter("replay.fused_variants")),
                  blocks(m.counter("replay.fused_blocks")) {}
        } ids(metrics);
        metrics.add(ids.batches);
        metrics.add(ids.variants, variants.size());
        metrics.add(ids.blocks, blocks);
        span.arg("blocks", static_cast<std::int64_t>(blocks));
    }
#endif

    std::vector<DcaRunResult> results;
    results.reserve(variants.size());
    for (const VariantState& variant : variants) {
        DcaRunResult result = finish_run(
            policy->name(),
            variant.generator != nullptr ? variant.generator->name()
                                         : clocking::IdealClockGenerator().name(),
            cycles, variant.total_time_ps, delays_.static_period_ps, variant.violations,
            variant.worst_violation_ps);
        result.guest = trace_->guest;
        results.push_back(std::move(result));
    }
    return results;
}

}  // namespace focs::core
