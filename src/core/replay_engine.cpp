#include "core/replay_engine.hpp"

#include <algorithm>
#include <array>
#include <utility>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/span_tracer.hpp"

namespace focs::core {

using dta::OccKey;
using sim::Stage;

ReplayEvaluationEngine::ReplayEvaluationEngine(const sim::PipelineTrace& trace,
                                               timing::ScaledTraceDelays delays,
                                               const dta::DelayTable& table,
                                               ReplayOptions options)
    : trace_(&trace), delays_(std::move(delays)), table_(&table), options_(options) {
    check(options_.block_cycles >= 1, "replay block size must be >= 1");
    check(delays_.unit != nullptr, "replay engine needs a unit trace-delay artifact");
    check(delays_.cycles() == trace.cycles(),
          "trace delays were computed from a different trace (cycle count mismatch)");
}

/// Shared block loop: `fill(begin, end, out)` writes the requested period
/// of cycles [begin, end) into out[0..end-begin); the sequential pass then
/// applies the (stateful) clock generator and the safety check in exactly
/// the live engine's per-cycle order, so the integrated time and violation
/// figures are bit-identical at every block size. The required period is
/// derived inline from the voltage-free unit array and the operating
/// point's scale — the same fl(unit * scale) double the live calculator
/// produces (positive-constant multiplication is monotone under IEEE
/// rounding, so it commutes with the per-stage max).
///
/// kObs=false is the exact pre-observability loop (no flag checks inside);
/// kObs=true layers counters, a granted-period histogram and a per-run
/// span on top. Both instantiations produce identical DcaRunResults — the
/// instrumentation only ever reads the loop's values.
template <bool kObs, typename FillBlock>
DcaRunResult ReplayEvaluationEngine::replay_blocks_impl(const ClockPolicy& policy,
                                                        clocking::ClockGenerator* generator,
                                                        FillBlock&& fill) const {
    const double* unit = delays_.unit->unit_required_period_ps.data();
    const double scale = delays_.delay_scale;
    const std::size_t cycles = trace_->records.size();
    const std::size_t block = static_cast<std::size_t>(options_.block_cycles);
    std::vector<double> requested(std::min<std::size_t>(block, std::max<std::size_t>(cycles, 1)));

#ifndef FOCS_OBS_COMPILE_OUT
    obs::Span span;
    if constexpr (kObs) {
        span = obs::global_tracer().span("replay.run");
        span.arg("policy", policy.name()).arg("cycles", static_cast<std::int64_t>(cycles));
    }
#endif

    if (generator != nullptr) generator->reset();
    double total_time_ps = 0;
    std::uint64_t violations = 0;
    double worst_violation_ps = 0;
    [[maybe_unused]] std::uint64_t blocks = 0;
    for (std::size_t begin = 0; begin < cycles; begin += block) {
        // Block-boundary cancellation check; the cycle loop below stays
        // token-free (see the cost note on ReplayOptions::cancel).
        if (options_.cancel != nullptr) options_.cancel->throw_if_cancelled();
        const std::size_t end = std::min(cycles, begin + block);
        fill(begin, end, requested.data());
        for (std::size_t c = begin; c < end; ++c) {
            const double request = requested[c - begin];
            const double granted =
                generator != nullptr ? generator->grant_period_ps(request) : request;
            total_time_ps += granted;
            const double required = unit[c] * scale;
            if (granted + kViolationTolerancePs < required) {
                ++violations;
                worst_violation_ps = std::max(worst_violation_ps, required - granted);
            }
        }
        if constexpr (kObs) ++blocks;
    }

#ifndef FOCS_OBS_COMPILE_OUT
    if constexpr (kObs) {
        obs::MetricsRegistry& metrics = obs::global_metrics();
        static const struct Ids {
            obs::MetricsRegistry::Id runs, blocks, cycles, violations, avg_period;
            explicit Ids(obs::MetricsRegistry& m)
                : runs(m.counter("replay.runs")),
                  blocks(m.counter("replay.blocks")),
                  cycles(m.counter("replay.cycles")),
                  violations(m.counter("replay.violations")),
                  avg_period(m.histogram("replay.avg_period_ps",
                                         {100, 150, 200, 300, 400, 500, 700, 1000, 1500, 2000,
                                          3000, 5000})) {}
        } ids(metrics);
        metrics.add(ids.runs);
        metrics.add(ids.blocks, blocks);
        metrics.add(ids.cycles, cycles);
        metrics.add(ids.violations, violations);
        if (cycles > 0) {
            metrics.observe(ids.avg_period, total_time_ps / static_cast<double>(cycles));
        }
        span.arg("blocks", static_cast<std::int64_t>(blocks))
            .arg("violations", static_cast<std::int64_t>(violations));
    }
#endif

    DcaRunResult result = finish_run(
        policy.name(),
        generator != nullptr ? generator->name() : clocking::IdealClockGenerator().name(),
        cycles, total_time_ps, delays_.static_period_ps, violations, worst_violation_ps);
    result.guest = trace_->guest;
    return result;
}

template <typename FillBlock>
DcaRunResult ReplayEvaluationEngine::replay_blocks(const ClockPolicy& policy,
                                                   clocking::ClockGenerator* generator,
                                                   FillBlock&& fill) const {
#ifdef FOCS_OBS_COMPILE_OUT
    return replay_blocks_impl<false>(policy, generator, std::forward<FillBlock>(fill));
#else
    bool instrumented = false;
    switch (options_.obs) {
        case ReplayObsMode::kAuto:
            instrumented = obs::global_metrics().enabled() || obs::global_tracer().enabled();
            break;
        case ReplayObsMode::kForceOff: instrumented = false; break;
        case ReplayObsMode::kForceOn: instrumented = true; break;
    }
    return instrumented
               ? replay_blocks_impl<true>(policy, generator, std::forward<FillBlock>(fill))
               : replay_blocks_impl<false>(policy, generator, std::forward<FillBlock>(fill));
#endif
}

DcaRunResult ReplayEvaluationEngine::replay_class_select(const ClockPolicy& policy,
                                                         clocking::ClockGenerator* generator,
                                                         double fast_period_ps,
                                                         double slow_period_ps) const {
    const dta::DelayTable& table = *table_;
    const auto& keys = trace_->stage_keys;
    // Per-(key, stage) "forces the slow period" bitmap, hoisted out of the
    // cycle loop: critical class or uncharacterized entry.
    std::array<std::array<bool, sim::kStageCount>, dta::kKeyCount> slow{};
    for (OccKey key = 0; key < dta::kKeyCount; ++key) {
        for (int s = 0; s < sim::kStageCount; ++s) {
            slow[static_cast<std::size_t>(key)][static_cast<std::size_t>(s)] =
                TwoClassPolicy::is_slow_key(key) ||
                !table.characterized(key, static_cast<Stage>(s));
        }
    }
    // Block-sized scratch, reused across blocks (same size clamp as the
    // requested-period buffer in replay_blocks).
    std::vector<char> any_slow(std::min<std::size_t>(
        static_cast<std::size_t>(options_.block_cycles),
        std::max<std::size_t>(trace_->records.size(), 1)));
    return replay_blocks(
        policy, generator, [&](std::size_t begin, std::size_t end, double* out) {
            const std::size_t count = end - begin;
            // Stage-major OR-reduction of the slow bits, then one select
            // pass.
            std::fill(any_slow.begin(), any_slow.begin() + static_cast<std::ptrdiff_t>(count), 0);
            for (int s = 0; s < sim::kStageCount; ++s) {
                const OccKey* row = keys[static_cast<std::size_t>(s)].data() + begin;
                for (std::size_t i = 0; i < count; ++i) {
                    any_slow[i] |= static_cast<char>(
                        slow[static_cast<std::size_t>(row[i])]
                            [static_cast<std::size_t>(s)]);
                }
            }
            for (std::size_t i = 0; i < count; ++i) {
                out[i] = any_slow[i] != 0 ? slow_period_ps : fast_period_ps;
            }
        });
}

DcaRunResult ReplayEvaluationEngine::run(PolicyKind kind,
                                         clocking::ClockGenerator* generator) const {
    // The policy object supplies the exact name string and the derived
    // constants (ex-only floor, class fast periods, approx scale) of the
    // live path; its virtual request hook is never called — the kernels
    // below are the devirtualized equivalents over the trace's SoA rows.
    const auto policy = make_policy(kind, *table_, delays_.static_period_ps);
    const dta::DelayTable& table = *table_;
    const auto& keys = trace_->stage_keys;

    // Stage-major SoA max (paper eq. 2): one pass per stage over the
    // block's key row, maxing the fallback-resolved entries in place.
    // Shared by the lut kernel and (with a trailing compression multiply)
    // the approx-lut kernel.
    const auto fill_lut_max = [&](std::size_t begin, std::size_t end, double* out) {
        const std::size_t count = end - begin;
        std::fill(out, out + count, 0.0);
        for (int s = 0; s < sim::kStageCount; ++s) {
            const OccKey* row = keys[static_cast<std::size_t>(s)].data() + begin;
            for (std::size_t i = 0; i < count; ++i) {
                const double d = table.effective(row[i], static_cast<Stage>(s));
                if (d > out[i]) out[i] = d;
            }
        }
    };

    switch (kind) {
        case PolicyKind::kStatic: {
            const double period = delays_.static_period_ps;
            return replay_blocks(*policy, generator,
                                 [&](std::size_t begin, std::size_t end, double* out) {
                                     std::fill(out, out + (end - begin), period);
                                 });
        }
        case PolicyKind::kGenie: {
            // The oracle requests exactly the cycle requirement: the unit
            // row scaled to the operating point.
            const double* unit = delays_.unit->unit_required_period_ps.data();
            const double scale = delays_.delay_scale;
            return replay_blocks(*policy, generator,
                                 [&](std::size_t begin, std::size_t end, double* out) {
                                     for (std::size_t c = begin; c < end; ++c) {
                                         out[c - begin] = unit[c] * scale;
                                     }
                                 });
        }
        case PolicyKind::kInstructionLut:
            return replay_blocks(*policy, generator, fill_lut_max);
        case PolicyKind::kApproxLut: {
            const auto* approx = dynamic_cast<const ApproximateLutPolicy*>(policy.get());
            check(approx != nullptr, "approx-lut policy kind produced an unexpected type");
            const double approx_scale = approx->scale();
            // The LUT max pass, then one compression multiply per cycle —
            // the same fl order as the live cycle_period_ps(record) * scale.
            return replay_blocks(
                *policy, generator, [&](std::size_t begin, std::size_t end, double* out) {
                    fill_lut_max(begin, end, out);
                    for (std::size_t i = 0; i < end - begin; ++i) out[i] *= approx_scale;
                });
        }
        case PolicyKind::kExOnly: {
            const auto* ex_only = dynamic_cast<const ExOnlyPolicy*>(policy.get());
            check(ex_only != nullptr, "ex-only policy kind produced an unexpected policy type");
            const double floor = ex_only->floor_ps();
            const OccKey* ex_row = keys[static_cast<std::size_t>(Stage::kEx)].data();
            return replay_blocks(*policy, generator,
                                 [&](std::size_t begin, std::size_t end, double* out) {
                                     for (std::size_t c = begin; c < end; ++c) {
                                         out[c - begin] = std::max(
                                             table.effective(ex_row[c], Stage::kEx), floor);
                                     }
                                 });
        }
        case PolicyKind::kTwoClass: {
            const auto* two_class = dynamic_cast<const TwoClassPolicy*>(policy.get());
            check(two_class != nullptr, "two-class policy kind produced an unexpected type");
            return replay_class_select(*policy, generator, two_class->fast_period_ps(),
                                       table.static_period_ps());
        }
        case PolicyKind::kDualCycle: {
            const auto* dual = dynamic_cast<const DualCyclePolicy*>(policy.get());
            check(dual != nullptr, "dual-cycle policy kind produced an unexpected type");
            const double fast = dual->fast_period_ps();
            return replay_class_select(*policy, generator, fast, 2.0 * fast);
        }
    }
    check(false, "unknown policy kind");
    return {};
}

std::vector<DcaRunResult> ReplayEvaluationEngine::run_batch(
    const std::vector<ReplayRequest>& requests) const {
    std::vector<DcaRunResult> results;
    results.reserve(requests.size());
    for (const ReplayRequest& request : requests) {
        results.push_back(run(request.kind, request.generator));
    }
    return results;
}

}  // namespace focs::core
