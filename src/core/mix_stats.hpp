// Instruction-mix and cycle-share statistics (the "stats" box of paper
// Fig. 2). Explains *why* a benchmark gains what it gains: which occupancy
// classes dominate the EX stage and what LUT period each contributes.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "asm/program.hpp"
#include "dta/delay_table.hpp"
#include "sim/machine.hpp"

namespace focs::core {

struct MixReport {
    /// Cycles each occupancy key spent in EX (including bubble/held rows).
    std::array<std::uint64_t, dta::kKeyCount> ex_cycles{};
    /// Retired-instruction counts per opcode key.
    std::array<std::uint64_t, dta::kKeyCount> retired{};
    std::uint64_t total_cycles = 0;
    std::uint64_t total_instructions = 0;
    double ipc = 0;
    /// Taken-redirect cycles (fetch address mux applied a target).
    std::uint64_t redirect_cycles = 0;

    /// Renders the report: per-class EX share, retirement mix, IPC.
    /// When `table` is non-null each row also shows the class's EX-stage
    /// LUT period, connecting the mix to the achievable speedup.
    std::string to_string(const dta::DelayTable* table = nullptr) const;
};

/// Runs `program` once and collects its mix statistics.
MixReport collect_mix(const assembler::Program& program, sim::MachineConfig config = {});

}  // namespace focs::core
