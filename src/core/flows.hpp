// End-to-end flows of the paper's methodology (Fig. 2).
//
// CharacterizationFlow: program binaries -> cycle-accurate execution with
// the synthetic gate-level delay model -> endpoint event log + occupancy
// trace -> dynamic timing analysis -> per-instruction delay LUT.
//
// EvaluationFlow: benchmark binaries + delay LUT -> delay-annotated ISS
// runs under a selectable policy/clock generator -> effective clock
// frequency, speedup and safety statistics.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "asm/program.hpp"
#include "common/cancel.hpp"
#include "core/dca_engine.hpp"
#include "core/policies.hpp"
#include "dta/analyzer.hpp"
#include "dta/delay_table.hpp"
#include "timing/design_config.hpp"
#include "timing/netlist.hpp"

namespace focs::core {

/// How the characterization flow ingests the gate-level event stream.
enum class CharacterizationMode {
    /// Batched single-pass: cycles are distilled into batch slots and the
    /// SoA endpoint kernel folds whole blocks straight into the analyzer
    /// (optionally on worker threads — see CharacterizationOptions). No
    /// events are materialized; delay tables, figure histograms and
    /// statistics are byte-identical to the other modes. This is the
    /// default (and what the sweep runtime uses).
    kBatched,
    /// Per-cycle single-pass: every cycle's endpoint events are built in a
    /// scratch buffer and folded into the analyzer through the EventSink
    /// interface. Kept as the reference implementation of the event-level
    /// protocol (and for comparison benchmarks).
    kStreaming,
    /// Materializes the merged EventLog/OccupancyTrace before analysis.
    /// Opt-in for offline serialization of the logs and for golden tests;
    /// also retains the analyzer's per-cycle delay vector.
    kMaterialized,
};

/// Knobs of the characterization run. All combinations produce identical
/// results; they only trade wall-clock time and memory.
struct CharacterizationOptions {
    CharacterizationMode mode = CharacterizationMode::kBatched;
    /// Endpoint-kernel worker threads (kBatched only): <= 1 runs the batch
    /// kernel inline, N > 1 adds intra-flow pipeline parallelism (N kernel
    /// workers + one merger behind a bounded slot ring).
    int threads = 1;
    /// Cycles per batch slot (kBatched only).
    int batch_cycles = 1024;
    /// Optional cooperative cancellation: polled between programs (all
    /// modes) and at batch-slot boundaries (kBatched); a fired token
    /// throws CancelledError. nullptr = never cancelled.
    const CancellationToken* cancel = nullptr;
};

struct CharacterizationResult {
    dta::DelayTable table;
    double static_period_ps = 0;
    double genie_mean_period_ps = 0;
    double genie_speedup = 0;  ///< static period / genie mean period
    std::uint64_t cycles = 0;
    /// Full analysis object for figure-level queries (histograms, per-
    /// instruction stats).
    std::shared_ptr<dta::DynamicTimingAnalysis> analysis;
    /// Merged gate-level artifacts for offline dumps; populated only in
    /// CharacterizationMode::kMaterialized.
    std::shared_ptr<const dta::EventLog> event_log;
    std::shared_ptr<const dta::OccupancyTrace> trace;
};

class CharacterizationFlow {
public:
    explicit CharacterizationFlow(const timing::DesignConfig& design,
                                  dta::AnalyzerConfig analyzer_config = {},
                                  sim::MachineConfig machine_config = {});

    /// Runs every program through the gate-level-style flow and merges all
    /// cycles into one analysis (the paper's characterization benchmark of
    /// ~14k cycles is a concatenation of kernels and semi-random tests).
    /// All modes produce byte-identical delay tables; see
    /// CharacterizationMode / CharacterizationOptions for the trade-offs.
    CharacterizationResult run(const std::vector<assembler::Program>& programs,
                               const CharacterizationOptions& options = {}) const;

    /// Mode-only convenience overload (default thread/batch knobs).
    CharacterizationResult run(const std::vector<assembler::Program>& programs,
                               CharacterizationMode mode) const {
        CharacterizationOptions options;
        options.mode = mode;
        return run(programs, options);
    }

    const timing::SyntheticNetlist& netlist() const { return netlist_; }
    const timing::DelayCalculator& calculator() const { return calculator_; }

private:
    timing::DesignConfig design_;
    dta::AnalyzerConfig analyzer_config_;
    sim::MachineConfig machine_config_;
    timing::SyntheticNetlist netlist_;
    timing::DelayCalculator calculator_;
};

/// One benchmark evaluated under one policy.
struct BenchmarkRow {
    std::string benchmark;
    DcaRunResult result;
};

struct SuiteResult {
    std::vector<BenchmarkRow> rows;
    double mean_eff_freq_mhz = 0;  ///< arithmetic mean over benchmarks
    double mean_speedup = 0;       ///< arithmetic mean of per-benchmark speedups
    std::uint64_t total_violations = 0;
};

/// Evaluates one sweep cell: `program` under `policy` against a prepared
/// delay table, optionally through a concrete clock generator. This is the
/// unit of work the runtime's SweepEngine schedules onto worker threads —
/// it constructs all mutable state (engine, policy) locally, so concurrent
/// calls sharing `table` and `program` (both read-only here) are safe. A
/// bare PolicyKind converts implicitly (default parameter).
DcaRunResult evaluate_cell(const timing::DesignConfig& design, const dta::DelayTable& table,
                           const assembler::Program& program, const PolicySpec& policy,
                           clocking::ClockGenerator* generator = nullptr,
                           const sim::MachineConfig& machine_config = {});

class EvaluationFlow {
public:
    EvaluationFlow(const timing::DesignConfig& design, const dta::DelayTable& table,
                   sim::MachineConfig machine_config = {});

    /// Runs one program under `kind` with an ideal clock generator (or
    /// `generator` when provided).
    DcaRunResult run_one(const assembler::Program& program, PolicyKind kind,
                         clocking::ClockGenerator* generator = nullptr) const;

    /// Runs a whole named suite under `kind`.
    SuiteResult run_suite(const std::vector<std::pair<std::string, assembler::Program>>& suite,
                          PolicyKind kind, clocking::ClockGenerator* generator = nullptr) const;

    double static_period_ps() const;

private:
    timing::DesignConfig design_;
    const dta::DelayTable* table_;
    sim::MachineConfig machine_config_;
};

}  // namespace focs::core
