// Assembled program image.
//
// The guest address space is Harvard-style, mirroring the paper's tightly
// coupled memories: code lives in the instruction SRAM region starting at 0,
// data in the data SRAM region starting at kDataBase. The assembler's
// `.text` / `.data` directives switch the location counter between the two.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace focs::assembler {

/// Base address of the data SRAM region in the flat guest address space.
inline constexpr std::uint32_t kDataBase = 0x0010'0000;

/// One line of the assembly listing (for debugging and documentation).
struct ListingEntry {
    std::uint32_t address = 0;
    std::uint32_t word = 0;
    std::string disassembly;
    int source_line = 0;
};

/// A fully assembled, relocated program image with symbols and a listing.
class Program {
public:
    /// Stores one byte; later stores to the same address overwrite.
    void set_byte(std::uint32_t addr, std::uint8_t value) { bytes_[addr] = value; }

    /// Stores a 32-bit word big-endian (OpenRISC byte order).
    void set_word(std::uint32_t addr, std::uint32_t value) {
        set_byte(addr + 0, static_cast<std::uint8_t>(value >> 24));
        set_byte(addr + 1, static_cast<std::uint8_t>(value >> 16));
        set_byte(addr + 2, static_cast<std::uint8_t>(value >> 8));
        set_byte(addr + 3, static_cast<std::uint8_t>(value));
    }

    /// Reads back a big-endian word (0 for unset bytes).
    std::uint32_t word_at(std::uint32_t addr) const {
        auto byte = [&](std::uint32_t a) -> std::uint32_t {
            const auto it = bytes_.find(a);
            return it == bytes_.end() ? 0u : it->second;
        };
        return byte(addr) << 24 | byte(addr + 1) << 16 | byte(addr + 2) << 8 | byte(addr + 3);
    }

    const std::map<std::uint32_t, std::uint8_t>& bytes() const { return bytes_; }

    void set_entry(std::uint32_t entry) { entry_ = entry; }
    std::uint32_t entry() const { return entry_; }

    void define_symbol(const std::string& name, std::uint32_t value) { symbols_[name] = value; }
    std::optional<std::uint32_t> symbol(const std::string& name) const {
        const auto it = symbols_.find(name);
        if (it == symbols_.end()) return std::nullopt;
        return it->second;
    }
    const std::map<std::string, std::uint32_t>& symbols() const { return symbols_; }

    void add_listing(ListingEntry entry) { listing_.push_back(std::move(entry)); }
    const std::vector<ListingEntry>& listing() const { return listing_; }

    /// Renders the listing as "address: word  disassembly" lines.
    std::string listing_text() const;

    /// Deterministic resident-size estimate for cache byte budgeting: image
    /// bytes dominate, with flat per-node allowances for the map/listing/
    /// symbol bookkeeping (platform-independent on purpose, so LRU eviction
    /// order is reproducible across builds).
    std::uint64_t estimated_bytes() const {
        std::uint64_t total = sizeof *this;
        total += static_cast<std::uint64_t>(bytes_.size()) * 64;  // map node + payload
        for (const auto& entry : listing_) {
            total += sizeof(ListingEntry) + entry.disassembly.size();
        }
        for (const auto& [name, value] : symbols_) total += 64 + name.size() + sizeof value;
        return total;
    }

private:
    std::map<std::uint32_t, std::uint8_t> bytes_;
    std::map<std::string, std::uint32_t> symbols_;
    std::vector<ListingEntry> listing_;
    std::uint32_t entry_ = 0;
};

}  // namespace focs::assembler
