#include "asm/assembler.hpp"

#include <cctype>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "isa/disasm.hpp"
#include "isa/encoding.hpp"
#include "isa/isa_info.hpp"

namespace focs::assembler {

namespace {

using isa::Instruction;
using isa::Opcode;

// ---------------------------------------------------------------------------
// Expression evaluation
// ---------------------------------------------------------------------------

/// Recursive-descent evaluator over + - ( ) hi() lo() numbers and symbols.
/// All arithmetic is modulo 2^32 (matching linker semantics).
class ExprEvaluator {
public:
    ExprEvaluator(const std::map<std::string, std::uint32_t>& symbols, int line)
        : symbols_(symbols), line_(line) {}

    std::uint32_t evaluate(std::string_view text) {
        text_ = text;
        pos_ = 0;
        const std::uint32_t value = parse_expr();
        skip_space();
        if (pos_ != text_.size()) fail("trailing characters in expression");
        return value;
    }

private:
    [[noreturn]] void fail(const std::string& message) const {
        throw ParseError(message + " in '" + std::string(text_) + "'", line_);
    }

    void skip_space() {
        while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }

    bool consume(char c) {
        skip_space();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    std::uint32_t parse_expr() {
        std::uint32_t value = parse_term();
        for (;;) {
            if (consume('+')) value += parse_term();
            else if (consume('-')) value -= parse_term();
            else return value;
        }
    }

    std::uint32_t parse_term() {
        skip_space();
        if (pos_ >= text_.size()) fail("unexpected end of expression");
        const char c = text_[pos_];
        if (c == '(') {
            ++pos_;
            const std::uint32_t inner = parse_expr();
            if (!consume(')')) fail("missing ')'");
            return inner;
        }
        if (c == '-') {
            ++pos_;
            return 0u - parse_term();
        }
        if (std::isdigit(static_cast<unsigned char>(c))) return parse_number();
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '.') return parse_ident();
        fail("unexpected character");
    }

    std::uint32_t parse_number() {
        const std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == 'x' ||
                text_[pos_] == 'X')) {
            ++pos_;
        }
        const auto parsed = parse_int(text_.substr(start, pos_ - start));
        if (!parsed) fail("malformed number");
        return static_cast<std::uint32_t>(*parsed);
    }

    std::uint32_t parse_ident() {
        const std::size_t start = pos_;
        while (pos_ < text_.size() && (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                                       text_[pos_] == '_' || text_[pos_] == '.')) {
            ++pos_;
        }
        const std::string name{text_.substr(start, pos_ - start)};
        if (name == "hi" || name == "lo") {
            if (!consume('(')) fail("expected '(' after " + name);
            const std::uint32_t inner = parse_expr();
            if (!consume(')')) fail("missing ')'");
            return name == "hi" ? (inner >> 16) & 0xffffu : inner & 0xffffu;
        }
        const auto it = symbols_.find(name);
        if (it == symbols_.end()) fail("undefined symbol '" + name + "'");
        return it->second;
    }

    const std::map<std::string, std::uint32_t>& symbols_;
    int line_;
    std::string_view text_;
    std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Line scanning
// ---------------------------------------------------------------------------

/// One logical source statement after label extraction.
struct Statement {
    int line = 0;
    std::vector<std::string> labels;
    std::string head;  ///< mnemonic or directive (lower-case), may be empty
    std::string rest;  ///< untouched operand text
};

/// Strips comments respecting double-quoted strings.
std::string strip_comment(std::string_view line) {
    std::string out;
    bool in_string = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
        const char c = line[i];
        if (in_string) {
            out += c;
            if (c == '\\' && i + 1 < line.size()) {
                out += line[++i];
            } else if (c == '"') {
                in_string = false;
            }
            continue;
        }
        if (c == '#' || c == ';') break;
        if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') break;
        if (c == '"') in_string = true;
        out += c;
    }
    return out;
}

bool is_ident_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.';
}

std::vector<Statement> scan(std::string_view source) {
    std::vector<Statement> statements;
    int line_no = 0;
    std::size_t start = 0;
    while (start <= source.size()) {
        const std::size_t end = source.find('\n', start);
        const auto raw = source.substr(start, end == std::string_view::npos ? std::string_view::npos
                                                                            : end - start);
        start = end == std::string_view::npos ? source.size() + 1 : end + 1;
        ++line_no;

        std::string text = strip_comment(raw);
        std::string_view rest = trim(text);
        Statement st;
        st.line = line_no;
        // Pull off any number of leading "label:" prefixes.
        for (;;) {
            std::size_t i = 0;
            while (i < rest.size() && is_ident_char(rest[i])) ++i;
            if (i == 0 || i >= rest.size() || rest[i] != ':') break;
            st.labels.emplace_back(rest.substr(0, i));
            rest = trim(rest.substr(i + 1));
        }
        if (!rest.empty()) {
            std::size_t i = 0;
            while (i < rest.size() && !std::isspace(static_cast<unsigned char>(rest[i]))) ++i;
            st.head = to_lower(rest.substr(0, i));
            st.rest = std::string(trim(rest.substr(i)));
        }
        if (!st.labels.empty() || !st.head.empty()) statements.push_back(std::move(st));
    }
    return statements;
}

// ---------------------------------------------------------------------------
// Operand parsing helpers
// ---------------------------------------------------------------------------

std::uint8_t parse_register(std::string_view token, int line) {
    const auto t = trim(token);
    if (t.size() >= 2 && (t[0] == 'r' || t[0] == 'R')) {
        const auto parsed = parse_int(t.substr(1));
        if (parsed && *parsed >= 0 && *parsed < 32) return static_cast<std::uint8_t>(*parsed);
    }
    throw ParseError("expected register, got '" + std::string(t) + "'", line);
}

/// Splits "disp(base)" into its two parts.
void parse_mem_operand(std::string_view token, int line, std::string& disp, std::string& base) {
    const auto t = trim(token);
    const std::size_t open = t.rfind('(');
    if (open == std::string_view::npos || t.empty() || t.back() != ')') {
        throw ParseError("expected displacement(base) operand, got '" + std::string(t) + "'", line);
    }
    const auto d = trim(t.substr(0, open));
    disp = d.empty() ? std::string("0") : std::string(d);
    base = std::string(trim(t.substr(open + 1, t.size() - open - 2)));
}

void check_signed16(std::uint32_t value, int line) {
    const auto s = static_cast<std::int32_t>(value);
    if (s < -32768 || s > 32767) {
        throw ParseError("immediate " + std::to_string(s) + " does not fit in signed 16 bits", line);
    }
}

void check_unsigned16(std::uint32_t value, int line) {
    if (value > 0xffffu) {
        throw ParseError("immediate " + std::to_string(value) + " does not fit in 16 bits", line);
    }
}

// ---------------------------------------------------------------------------
// Assembler core
// ---------------------------------------------------------------------------

class Assembler {
public:
    explicit Assembler(const AssemblyOptions& options) : options_(options) {}

    Program run(std::string_view source) {
        statements_ = scan(source);
        layout_pass();
        emit_pass();
        const auto entry = program_.symbol("_start");
        program_.set_entry(entry ? *entry : options_.text_base);
        for (const auto& [name, value] : symbols_) program_.define_symbol(name, value);
        return std::move(program_);
    }

private:
    /// Byte size contributed by a statement at location counter `lc`.
    std::uint32_t statement_size(const Statement& st, std::uint32_t lc) {
        const std::string& h = st.head;
        if (h.empty()) return 0;
        if (h[0] != '.') {
            if (h == "l.li") return 8;  // movhi + ori
            return 4;
        }
        if (h == ".word") return 4 * count_operands(st);
        if (h == ".half") return 2 * count_operands(st);
        if (h == ".byte") return 1 * count_operands(st);
        if (h == ".space") {
            const auto parts = split(st.rest, ',');
            ExprEvaluator eval(symbols_, st.line);
            return eval.evaluate(parts.at(0));
        }
        if (h == ".align") {
            ExprEvaluator eval(symbols_, st.line);
            const std::uint32_t align = eval.evaluate(st.rest);
            if (align == 0 || (align & (align - 1)) != 0) {
                throw ParseError("alignment must be a power of two", st.line);
            }
            return (align - lc % align) % align;
        }
        if (h == ".ascii" || h == ".asciz") {
            return static_cast<std::uint32_t>(parse_string(st).size()) + (h == ".asciz" ? 1 : 0);
        }
        return 0;  // .org/.text/.data/.equ/.global handled separately
    }

    static std::uint32_t count_operands(const Statement& st) {
        return static_cast<std::uint32_t>(split(st.rest, ',').size());
    }

    static std::string parse_string(const Statement& st) {
        const auto t = trim(st.rest);
        if (t.size() < 2 || t.front() != '"' || t.back() != '"') {
            throw ParseError("expected quoted string", st.line);
        }
        std::string out;
        for (std::size_t i = 1; i + 1 < t.size(); ++i) {
            char c = t[i];
            if (c == '\\' && i + 2 < t.size()) {
                const char esc = t[++i];
                c = esc == 'n' ? '\n' : esc == 't' ? '\t' : esc == '0' ? '\0' : esc;
            }
            out += c;
        }
        return out;
    }

    void layout_pass() {
        std::uint32_t text_lc = options_.text_base;
        std::uint32_t data_lc = options_.data_base;
        bool in_text = true;
        for (const auto& st : statements_) {
            std::uint32_t& lc = in_text ? text_lc : data_lc;
            for (const auto& label : st.labels) {
                if (symbols_.count(label) != 0) {
                    throw ParseError("duplicate label '" + label + "'", st.line);
                }
                symbols_[label] = lc;
            }
            if (st.head.empty()) continue;
            if (st.head == ".text") { in_text = true; continue; }
            if (st.head == ".data") { in_text = false; continue; }
            if (st.head == ".global") continue;
            if (st.head == ".org") {
                ExprEvaluator eval(symbols_, st.line);
                lc = eval.evaluate(st.rest);
                continue;
            }
            if (st.head == ".equ") {
                const auto parts = split(st.rest, ',');
                if (parts.size() != 2 || parts[0].empty()) {
                    throw ParseError(".equ expects NAME, EXPR", st.line);
                }
                ExprEvaluator eval(symbols_, st.line);
                symbols_[parts[0]] = eval.evaluate(parts[1]);
                continue;
            }
            lc += statement_size(st, lc);
        }
    }

    void emit_pass() {
        std::uint32_t text_lc = options_.text_base;
        std::uint32_t data_lc = options_.data_base;
        bool in_text = true;
        for (const auto& st : statements_) {
            std::uint32_t& lc = in_text ? text_lc : data_lc;
            if (st.head.empty()) continue;
            if (st.head == ".text") { in_text = true; continue; }
            if (st.head == ".data") { in_text = false; continue; }
            if (st.head == ".global" || st.head == ".equ") continue;
            if (st.head == ".org") {
                ExprEvaluator eval(symbols_, st.line);
                lc = eval.evaluate(st.rest);
                continue;
            }
            if (st.head[0] == '.') {
                emit_directive(st, lc);
                continue;
            }
            emit_instruction(st, lc);
        }
    }

    void emit_directive(const Statement& st, std::uint32_t& lc) {
        ExprEvaluator eval(symbols_, st.line);
        if (st.head == ".word" || st.head == ".half" || st.head == ".byte") {
            const std::uint32_t size = st.head == ".word" ? 4 : st.head == ".half" ? 2 : 1;
            for (const auto& operand : split(st.rest, ',')) {
                const std::uint32_t value = eval.evaluate(operand);
                for (std::uint32_t b = 0; b < size; ++b) {
                    program_.set_byte(lc + b,
                                      static_cast<std::uint8_t>(value >> (8 * (size - 1 - b))));
                }
                lc += size;
            }
            return;
        }
        if (st.head == ".space") {
            const auto parts = split(st.rest, ',');
            const std::uint32_t count = eval.evaluate(parts.at(0));
            const std::uint8_t fill =
                parts.size() > 1 ? static_cast<std::uint8_t>(eval.evaluate(parts[1])) : 0;
            for (std::uint32_t b = 0; b < count; ++b) program_.set_byte(lc + b, fill);
            lc += count;
            return;
        }
        if (st.head == ".align") {
            const std::uint32_t align = eval.evaluate(st.rest);
            const std::uint32_t pad = (align - lc % align) % align;
            for (std::uint32_t b = 0; b < pad; ++b) program_.set_byte(lc + b, 0);
            lc += pad;
            return;
        }
        if (st.head == ".ascii" || st.head == ".asciz") {
            std::string s = parse_string(st);
            if (st.head == ".asciz") s += '\0';
            for (char c : s) program_.set_byte(lc++, static_cast<std::uint8_t>(c));
            return;
        }
        throw ParseError("unknown directive '" + st.head + "'", st.line);
    }

    void emit_word(const Instruction& inst, std::uint32_t& lc, int line) {
        const std::uint32_t word = isa::encode(inst);
        program_.set_word(lc, word);
        program_.add_listing({lc, word, isa::disassemble(inst, lc), line});
        lc += 4;
    }

    void emit_instruction(const Statement& st, std::uint32_t& lc) {
        ExprEvaluator eval(symbols_, st.line);
        const auto operands = st.rest.empty() ? std::vector<std::string>{} : split(st.rest, ',');
        auto need = [&](std::size_t n) {
            if (operands.size() != n) {
                throw ParseError(st.head + " expects " + std::to_string(n) + " operand(s)", st.line);
            }
        };

        // Pseudo-instructions first.
        if (st.head == "l.li") {
            need(2);
            const std::uint8_t rd = parse_register(operands[0], st.line);
            const std::uint32_t value = eval.evaluate(operands[1]);
            emit_word({Opcode::kMovhi, rd, 0, 0, static_cast<std::int32_t>(value >> 16)}, lc, st.line);
            emit_word({Opcode::kOri, rd, rd, 0, static_cast<std::int32_t>(value & 0xffffu)}, lc, st.line);
            return;
        }
        if (st.head == "l.mov") {
            need(2);
            const std::uint8_t rd = parse_register(operands[0], st.line);
            const std::uint8_t ra = parse_register(operands[1], st.line);
            emit_word({Opcode::kOri, rd, ra, 0, 0}, lc, st.line);
            return;
        }

        const auto opcode = isa::opcode_from_mnemonic(st.head);
        if (!opcode) throw ParseError("unknown mnemonic '" + st.head + "'", st.line);
        const auto& meta = isa::info(*opcode);
        Instruction inst;
        inst.opcode = *opcode;

        if (meta.is_jump || meta.is_branch) {
            if (*opcode == Opcode::kJr || *opcode == Opcode::kJalr) {
                need(1);
                inst.rb = parse_register(operands[0], st.line);
            } else {
                need(1);
                const std::uint32_t target = eval.evaluate(operands[0]);
                const auto diff = static_cast<std::int32_t>(target - lc);
                if (diff % 4 != 0) throw ParseError("branch target not word aligned", st.line);
                inst.imm = diff / 4;
                if (*opcode == Opcode::kJal) inst.rd = 9;
            }
            emit_word(inst, lc, st.line);
            return;
        }
        if (meta.is_load) {
            need(2);
            inst.rd = parse_register(operands[0], st.line);
            std::string disp, base;
            parse_mem_operand(operands[1], st.line, disp, base);
            inst.ra = parse_register(base, st.line);
            const std::uint32_t value = eval.evaluate(disp);
            check_signed16(value, st.line);
            inst.imm = static_cast<std::int32_t>(value);
            emit_word(inst, lc, st.line);
            return;
        }
        if (meta.is_store) {
            need(2);
            std::string disp, base;
            parse_mem_operand(operands[0], st.line, disp, base);
            inst.ra = parse_register(base, st.line);
            inst.rb = parse_register(operands[1], st.line);
            const std::uint32_t value = eval.evaluate(disp);
            check_signed16(value, st.line);
            inst.imm = static_cast<std::int32_t>(value);
            emit_word(inst, lc, st.line);
            return;
        }
        if (meta.sets_flag) {
            need(2);
            inst.ra = parse_register(operands[0], st.line);
            if (meta.has_immediate) {
                const std::uint32_t value = eval.evaluate(operands[1]);
                check_signed16(value, st.line);
                inst.imm = static_cast<std::int32_t>(value);
            } else {
                inst.rb = parse_register(operands[1], st.line);
            }
            emit_word(inst, lc, st.line);
            return;
        }
        switch (*opcode) {
            case Opcode::kNop: {
                if (operands.size() > 1) need(1);
                inst.imm = operands.empty()
                               ? 0
                               : static_cast<std::int32_t>(eval.evaluate(operands[0]));
                break;
            }
            case Opcode::kMovhi: {
                need(2);
                inst.rd = parse_register(operands[0], st.line);
                const std::uint32_t value = eval.evaluate(operands[1]);
                check_unsigned16(value, st.line);
                inst.imm = static_cast<std::int32_t>(value);
                break;
            }
            default: {
                // Two-operand unary ALU forms: l.exths/l.ff1/... rD, rA.
                if (meta.writes_rd && meta.reads_ra && !meta.reads_rb && !meta.has_immediate) {
                    need(2);
                    inst.rd = parse_register(operands[0], st.line);
                    inst.ra = parse_register(operands[1], st.line);
                    break;
                }
                need(3);
                inst.rd = parse_register(operands[0], st.line);
                inst.ra = parse_register(operands[1], st.line);
                if (meta.has_immediate) {
                    const std::uint32_t value = eval.evaluate(operands[2]);
                    switch (*opcode) {
                        case Opcode::kAndi:
                        case Opcode::kOri: check_unsigned16(value, st.line); break;
                        case Opcode::kSlli:
                        case Opcode::kSrli:
                        case Opcode::kSrai:
                        case Opcode::kRori:
                            if (value > 63) throw ParseError("shift amount out of range", st.line);
                            break;
                        default: check_signed16(value, st.line); break;
                    }
                    inst.imm = static_cast<std::int32_t>(value);
                } else {
                    inst.rb = parse_register(operands[2], st.line);
                }
                break;
            }
        }
        emit_word(inst, lc, st.line);
    }

    AssemblyOptions options_;
    std::vector<Statement> statements_;
    std::map<std::string, std::uint32_t> symbols_;
    Program program_;
};

}  // namespace

Program assemble(std::string_view source, const AssemblyOptions& options) {
    Assembler assembler(options);
    return assembler.run(source);
}

std::string Program::listing_text() const {
    std::string out;
    char buf[64];
    for (const auto& e : listing_) {
        std::snprintf(buf, sizeof buf, "%08x: %08x  ", e.address, e.word);
        out += buf;
        out += e.disassembly;
        out += '\n';
    }
    return out;
}

}  // namespace focs::assembler
