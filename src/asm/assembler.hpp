// Two-pass assembler for the ORBIS32 subset.
//
// Supported syntax (GNU as flavour):
//   label:               ; labels, may share a line with an instruction
//   l.addi r3,r3,-1      ; canonical mnemonics, registers r0..r31
//   l.lwz  r4,8(r2)      ; loads/stores with displacement(base)
//   l.bf   loop          ; branch/jump targets are labels or expressions
//   l.movhi r5,hi(table) ; hi()/lo() relocation operators
//   l.li   r5,0x12345678 ; pseudo: expands to l.movhi + l.ori
//   l.mov  r5,r6         ; pseudo: l.ori r5,r6,0
//   .text / .data        ; switch location counter (data base 0x00100000)
//   .org ADDR            ; set location counter
//   .align N             ; align to N bytes (power of two)
//   .word/.half/.byte v,... ; literal data (big-endian)
//   .space N [, FILL]    ; reserve N bytes
//   .ascii/.asciz "s"    ; string data
//   .equ NAME, EXPR      ; symbolic constant
//   .global NAME         ; accepted, ignored
// Comments: '#', ';' or "//" to end of line. Expressions support + - and
// parentheses over numbers (dec/hex/bin) and symbols.
#pragma once

#include <string_view>

#include "asm/program.hpp"

namespace focs::assembler {

/// Assembler configuration.
struct AssemblyOptions {
    std::uint32_t text_base = 0;          ///< initial .text location counter
    std::uint32_t data_base = kDataBase;  ///< initial .data location counter
};

/// Assembles `source` into a program image.
/// The entry point is the `_start` symbol when defined, else `text_base`.
/// Throws focs::ParseError (with line number) on malformed input.
Program assemble(std::string_view source, const AssemblyOptions& options = {});

}  // namespace focs::assembler
