#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>

#include "common/error.hpp"
#include "common/json.hpp"

namespace focs::obs {

// ---------------------------------------------------------------- storage

struct MetricsRegistry::HistogramDef {
    std::string name;
    std::vector<double> bounds;
};

struct MetricsRegistry::Shard {
    std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
    std::array<std::atomic<std::int64_t>, kMaxGauges> gauge_max{};
    struct Hist {
        std::array<std::atomic<std::uint64_t>, kMaxHistogramBuckets + 1> buckets{};
        std::atomic<std::uint64_t> count{0};
        std::atomic<double> sum{0};
    };
    std::array<Hist, kMaxHistograms> histograms{};

    void reset() {
        for (auto& c : counters) c.store(0, std::memory_order_relaxed);
        for (auto& g : gauge_max) g.store(0, std::memory_order_relaxed);
        for (auto& h : histograms) {
            for (auto& b : h.buckets) b.store(0, std::memory_order_relaxed);
            h.count.store(0, std::memory_order_relaxed);
            h.sum.store(0, std::memory_order_relaxed);
        }
    }
};

namespace {

std::uint64_t next_instance_id() {
    static std::atomic<std::uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

MetricsRegistry::MetricsRegistry(bool enabled)
    : enabled_(enabled), instance_id_(next_instance_id()) {}

MetricsRegistry::~MetricsRegistry() {
    for (auto& slot : shards_) delete slot.load(std::memory_order_acquire);
    for (auto& def : histogram_defs_) delete def.load(std::memory_order_acquire);
}

MetricsRegistry::Shard* MetricsRegistry::shard_at(std::size_t slot) const {
    return shards_[slot].load(std::memory_order_acquire);
}

MetricsRegistry::Shard& MetricsRegistry::shard_for_thread() {
    // Each thread caches its slot index per registry *identity* (not
    // address — a destroyed registry's address may be recycled). The slot
    // is just an index, so even a stale cache entry can never dangle.
    struct TlsEntry {
        std::uint64_t instance = 0;
        std::uint32_t slot = 0;
    };
    thread_local std::array<TlsEntry, 8> tls{};
    thread_local std::size_t tls_used = 0;

    std::uint32_t slot = kShardCount;  // sentinel: not cached
    for (std::size_t i = 0; i < tls_used; ++i) {
        if (tls[i].instance == instance_id_) {
            slot = tls[i].slot;
            break;
        }
    }
    if (slot == kShardCount) {
        slot = next_slot_.fetch_add(1, std::memory_order_relaxed) % kShardCount;
        if (tls_used < tls.size()) {
            tls[tls_used++] = {instance_id_, slot};
        } else {
            // More live registries than cache entries: evict round-robin.
            tls[instance_id_ % tls.size()] = {instance_id_, slot};
        }
    }

    Shard* shard = shards_[slot].load(std::memory_order_acquire);
    if (shard == nullptr) {
        auto fresh = std::make_unique<Shard>();
        Shard* expected = nullptr;
        if (shards_[slot].compare_exchange_strong(expected, fresh.get(),
                                                  std::memory_order_acq_rel)) {
            shard = fresh.release();
        } else {
            shard = expected;  // another thread won; ours is freed
        }
    }
    return *shard;
}

// ----------------------------------------------------------- registration

MetricsRegistry::Id MetricsRegistry::counter(std::string_view name) {
    std::lock_guard<std::mutex> lock(names_mutex_);
    for (std::size_t i = 0; i < counter_names_.size(); ++i) {
        if (counter_names_[i] == name) return static_cast<Id>(i);
    }
    check(counter_names_.size() < kMaxCounters, "metrics registry: counter capacity exhausted");
    counter_names_.emplace_back(name);
    return static_cast<Id>(counter_names_.size() - 1);
}

MetricsRegistry::Id MetricsRegistry::gauge(std::string_view name) {
    std::lock_guard<std::mutex> lock(names_mutex_);
    for (std::size_t i = 0; i < gauge_names_.size(); ++i) {
        if (gauge_names_[i] == name) return static_cast<Id>(i);
    }
    check(gauge_names_.size() < kMaxGauges, "metrics registry: gauge capacity exhausted");
    gauge_names_.emplace_back(name);
    return static_cast<Id>(gauge_names_.size() - 1);
}

MetricsRegistry::Id MetricsRegistry::histogram(std::string_view name, std::vector<double> bounds) {
    check(!bounds.empty() && bounds.size() <= kMaxHistogramBuckets,
          "metrics registry: histogram wants 1.." + std::to_string(kMaxHistogramBuckets) +
              " bucket bounds");
    check(std::is_sorted(bounds.begin(), bounds.end()),
          "metrics registry: histogram bounds must ascend");
    std::lock_guard<std::mutex> lock(names_mutex_);
    for (std::uint32_t i = 0; i < histogram_count_; ++i) {
        const HistogramDef* def = histogram_defs_[i].load(std::memory_order_acquire);
        if (def->name == name) {
            check(def->bounds == bounds,
                  "metrics registry: histogram '" + std::string(name) +
                      "' re-registered with different bounds");
            return i;
        }
    }
    check(histogram_count_ < kMaxHistograms, "metrics registry: histogram capacity exhausted");
    auto def = std::make_unique<HistogramDef>();
    def->name = std::string(name);
    def->bounds = std::move(bounds);
    histogram_defs_[histogram_count_].store(def.release(), std::memory_order_release);
    return histogram_count_++;
}

// -------------------------------------------------------------- mutations

void MetricsRegistry::add(Id counter, std::uint64_t delta) {
    if (!enabled()) return;
    shard_for_thread().counters[counter].fetch_add(delta, std::memory_order_relaxed);
}

void MetricsRegistry::gauge_max(Id gauge, std::int64_t value) {
    if (!enabled()) return;
    std::atomic<std::int64_t>& slot = shard_for_thread().gauge_max[gauge];
    std::int64_t seen = slot.load(std::memory_order_relaxed);
    while (value > seen &&
           !slot.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
    }
}

void MetricsRegistry::observe(Id histogram, double value) {
    if (!enabled()) return;
    const HistogramDef* def = histogram_defs_[histogram].load(std::memory_order_acquire);
    const auto& bounds = def->bounds;
    const std::size_t bucket = static_cast<std::size_t>(
        std::lower_bound(bounds.begin(), bounds.end(), value) - bounds.begin());
    Shard::Hist& hist = shard_for_thread().histograms[histogram];
    hist.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
    hist.count.fetch_add(1, std::memory_order_relaxed);
    double sum = hist.sum.load(std::memory_order_relaxed);
    while (!hist.sum.compare_exchange_weak(sum, sum + value, std::memory_order_relaxed)) {
    }
}

// -------------------------------------------------------------- snapshots

std::uint64_t MetricsRegistry::counter_value(Id counter) const {
    std::uint64_t total = 0;
    for (std::size_t slot = 0; slot < kShardCount; ++slot) {
        if (const Shard* shard = shard_at(slot)) {
            total += shard->counters[counter].load(std::memory_order_relaxed);
        }
    }
    return total;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
    MetricsSnapshot snap;
    std::size_t counters = 0, gauges = 0;
    std::uint32_t histograms = 0;
    {
        std::lock_guard<std::mutex> lock(names_mutex_);
        counters = counter_names_.size();
        gauges = gauge_names_.size();
        histograms = histogram_count_;
        snap.counters.resize(counters);
        snap.gauges.resize(gauges);
        snap.histograms.resize(histograms);
        for (std::size_t i = 0; i < counters; ++i) snap.counters[i].name = counter_names_[i];
        for (std::size_t i = 0; i < gauges; ++i) snap.gauges[i].name = gauge_names_[i];
        for (std::uint32_t i = 0; i < histograms; ++i) {
            const HistogramDef* def = histogram_defs_[i].load(std::memory_order_acquire);
            snap.histograms[i].name = def->name;
            snap.histograms[i].bounds = def->bounds;
            snap.histograms[i].buckets.assign(def->bounds.size() + 1, 0);
        }
    }
    for (std::size_t slot = 0; slot < kShardCount; ++slot) {
        const Shard* shard = shard_at(slot);
        if (shard == nullptr) continue;
        for (std::size_t i = 0; i < counters; ++i) {
            snap.counters[i].value += shard->counters[i].load(std::memory_order_relaxed);
        }
        for (std::size_t i = 0; i < gauges; ++i) {
            snap.gauges[i].max = std::max(snap.gauges[i].max,
                                          shard->gauge_max[i].load(std::memory_order_relaxed));
        }
        for (std::uint32_t i = 0; i < histograms; ++i) {
            MetricsSnapshot::Histogram& out = snap.histograms[i];
            const Shard::Hist& hist = shard->histograms[i];
            for (std::size_t b = 0; b < out.buckets.size(); ++b) {
                out.buckets[b] += hist.buckets[b].load(std::memory_order_relaxed);
            }
            out.count += hist.count.load(std::memory_order_relaxed);
            out.sum += hist.sum.load(std::memory_order_relaxed);
        }
    }
    return snap;
}

void MetricsRegistry::reset() {
    for (std::size_t slot = 0; slot < kShardCount; ++slot) {
        if (Shard* shard = shards_[slot].load(std::memory_order_acquire)) shard->reset();
    }
}

// ---------------------------------------------------- snapshot consumers

std::uint64_t MetricsSnapshot::counter_value(std::string_view name) const {
    for (const Counter& counter : counters) {
        if (counter.name == name) return counter.value;
    }
    return 0;
}

const MetricsSnapshot::Histogram* MetricsSnapshot::find_histogram(std::string_view name) const {
    for (const Histogram& histogram : histograms) {
        if (histogram.name == name) return &histogram;
    }
    return nullptr;
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
    counters.insert(counters.end(), other.counters.begin(), other.counters.end());
    gauges.insert(gauges.end(), other.gauges.begin(), other.gauges.end());
    histograms.insert(histograms.end(), other.histograms.begin(), other.histograms.end());
}

std::string MetricsSnapshot::to_json() const {
    std::string out = "{\"counters\": {";
    for (std::size_t i = 0; i < counters.size(); ++i) {
        if (i > 0) out += ", ";
        out += json::quote(counters[i].name) + ": " + std::to_string(counters[i].value);
    }
    out += "}, \"gauges\": {";
    for (std::size_t i = 0; i < gauges.size(); ++i) {
        if (i > 0) out += ", ";
        out += json::quote(gauges[i].name) + ": " + std::to_string(gauges[i].max);
    }
    out += "}, \"histograms\": {";
    for (std::size_t i = 0; i < histograms.size(); ++i) {
        const Histogram& h = histograms[i];
        if (i > 0) out += ", ";
        out += json::quote(h.name) + ": {\"count\": " + std::to_string(h.count) +
               ", \"sum\": " + json::number(h.sum) + ", \"bounds\": [";
        for (std::size_t b = 0; b < h.bounds.size(); ++b) {
            if (b > 0) out += ", ";
            out += json::number(h.bounds[b]);
        }
        out += "], \"buckets\": [";
        for (std::size_t b = 0; b < h.buckets.size(); ++b) {
            if (b > 0) out += ", ";
            out += std::to_string(h.buckets[b]);
        }
        out += "]}";
    }
    out += "}}";
    return out;
}

std::string MetricsSnapshot::to_table() const {
    std::string out;
    char buf[160];
    for (const Counter& counter : counters) {
        std::snprintf(buf, sizeof buf, "  %-40s %llu\n", counter.name.c_str(),
                      static_cast<unsigned long long>(counter.value));
        out += buf;
    }
    for (const Gauge& gauge : gauges) {
        std::snprintf(buf, sizeof buf, "  %-40s %lld (max)\n", gauge.name.c_str(),
                      static_cast<long long>(gauge.max));
        out += buf;
    }
    for (const Histogram& histogram : histograms) {
        const double mean =
            histogram.count > 0 ? histogram.sum / static_cast<double>(histogram.count) : 0;
        std::snprintf(buf, sizeof buf, "  %-40s n=%llu mean=%.3f\n", histogram.name.c_str(),
                      static_cast<unsigned long long>(histogram.count), mean);
        out += buf;
    }
    return out;
}

MetricsRegistry& global_metrics() {
    // Leaked on purpose: instrumentation may fire from detached/static
    // destructors; a never-destroyed registry has no shutdown order issues.
    static MetricsRegistry* const global = new MetricsRegistry(/*enabled=*/false);
    return *global;
}

std::vector<double> latency_ms_bounds() {
    return {0.1, 0.3, 1, 3, 10, 30, 100, 300, 1000, 3000, 10000};
}

}  // namespace focs::obs
