// Span tracer: RAII scoped spans recorded into per-thread buffers and
// exported as Chrome trace-event JSON (open with Perfetto or
// chrome://tracing).
//
// The recording path is designed around the same constraints as the
// metrics registry (obs/metrics.hpp):
//  - Disabled is the default and costs one relaxed atomic load per span
//    construction; FOCS_OBS_SPAN compiles call sites out entirely under
//    -DFOCS_OBS_COMPILE_OUT.
//  - Recording appends to a thread-local buffer guarded by a per-buffer
//    mutex that only the owning thread and the exporter ever take, so
//    threads never contend with each other — only (briefly) with an
//    export/snapshot, which is rare and happens after the workload.
//  - Buffers are owned by shared_ptr from both the thread-local slot and
//    the tracer's buffer list, so neither thread exit order nor tracer
//    reuse across sweeps can dangle.
//
// Timestamps are microseconds on the steady clock, rebased to the
// tracer's construction (or last reset) so traces start near t=0.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace focs::obs {

/// One completed span ("ph":"X") or instant event ("ph":"i").
struct SpanEvent {
    std::string name;
    std::uint32_t tid = 0;       ///< small sequential id, stable per thread
    double start_us = 0;         ///< since tracer construction / reset
    double duration_us = 0;      ///< 0 and instant=true for instant events
    bool instant = false;
    /// Pre-rendered JSON fragments: each entry is `"key": <value>`.
    std::vector<std::string> args;
};

class SpanTracer;

/// RAII span: records [construction, destruction) on the owning tracer.
/// A default-constructed / disabled span is inert and costs nothing
/// beyond the construction-time enabled check.
class Span {
public:
    Span() = default;
    Span(SpanTracer* tracer, std::string_view name);
    Span(Span&& other) noexcept;
    Span& operator=(Span&& other) noexcept;
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span() { finish(); }

    /// Attach an argument shown in the trace viewer. Chainable; no-ops on
    /// an inert span.
    Span& arg(std::string_view key, const std::string& value);
    Span& arg(std::string_view key, std::int64_t value);
    Span& arg(std::string_view key, double value);

    /// Ends the span now (idempotent; the destructor calls it too).
    void finish();

    bool active() const { return tracer_ != nullptr; }

private:
    SpanTracer* tracer_ = nullptr;
    std::string name_;
    double start_us_ = 0;
    std::vector<std::string> args_;
};

class SpanTracer {
public:
    explicit SpanTracer(bool enabled = false);
    SpanTracer(const SpanTracer&) = delete;
    SpanTracer& operator=(const SpanTracer&) = delete;

    bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
    void set_enabled(bool enabled) { enabled_.store(enabled, std::memory_order_relaxed); }

    /// Starts a span on this tracer; inert when disabled.
    Span span(std::string_view name) { return Span(enabled() ? this : nullptr, name); }

    /// Records a zero-duration instant event; no-op when disabled.
    void instant(std::string_view name);

    /// Microseconds since construction / last reset.
    double now_us() const;

    /// All recorded events, per-thread order preserved, threads
    /// concatenated. Same-thread spans close in LIFO order, so for any
    /// two spans on one thread the intervals either nest or are disjoint
    /// (asserted in tests).
    std::vector<SpanEvent> snapshot() const;

    /// Chrome trace-event JSON: {"traceEvents": [...], "metrics": {...}?}.
    /// When `metrics` is provided its snapshot JSON is embedded so one
    /// file carries both the timeline and the counters
    /// (tools/trace_summary.py reads both).
    std::string export_chrome_json(const MetricsSnapshot* metrics = nullptr) const;

    /// Drops all recorded events and rebases the clock; thread buffers
    /// and tid assignments survive.
    void reset();

private:
    friend class Span;

    struct ThreadBuf {
        std::uint32_t tid = 0;
        mutable std::mutex mutex;  ///< owner thread vs. exporter only
        std::vector<SpanEvent> events;
    };

    void record(SpanEvent event);
    ThreadBuf& buf_for_thread();

    std::atomic<bool> enabled_;
    const std::uint64_t instance_id_;  ///< never-reused; keys the TLS cache
    std::chrono::steady_clock::time_point epoch_;

    mutable std::mutex bufs_mutex_;  ///< guards the list, not the events
    std::vector<std::shared_ptr<ThreadBuf>> bufs_;
};

/// The process-global tracer: default disabled, flipped on by the CLI's
/// --trace-out flag (or tests). Never destroyed.
SpanTracer& global_tracer();

}  // namespace focs::obs

// Declares a scoped span variable at a call site; vanishes (along with
// its arguments' evaluation) in a -DFOCS_OBS_COMPILE_OUT build.
#ifdef FOCS_OBS_COMPILE_OUT
namespace focs::obs {
struct NullSpan {
    template <typename K, typename V>
    NullSpan& arg(K&&, V&&) {
        return *this;
    }
    void finish() {}
};
}  // namespace focs::obs
#define FOCS_OBS_SPAN(var, tracer, name) [[maybe_unused]] ::focs::obs::NullSpan var
#else
#define FOCS_OBS_SPAN(var, tracer, name) ::focs::obs::Span var = (tracer).span(name)
#endif
