// Metrics registry: lock-free counters, max-watermark gauges and
// fixed-bucket latency histograms for the sweep runtime.
//
// Design constraints, in order:
//  1. Near-zero cost when disabled: every mutation starts with one relaxed
//     atomic load of the enabled flag; a FOCS_OBS_COMPILE_OUT build removes
//     even that (see the macros at the bottom and the hot-loop dispatch in
//     core/replay_engine.cpp).
//  2. Exact under concurrency: mutations are relaxed atomic RMWs on sharded
//     slots, so a snapshot taken after the writers quiesce merges to the
//     exact totals (asserted under TSan in tests/test_obs.cpp). Snapshots
//     taken mid-flight are racy-but-valid: they see a consistent prefix of
//     each shard, never torn values.
//  3. No thread lifetime hazards: a thread is pinned to one of a fixed pool
//     of shards (thread-local slot index, assigned round-robin on first
//     touch), so shard storage never depends on thread exit order and
//     nothing is unregistered. Beyond kShardCount concurrent threads slots
//     are shared — still exact, only more contended.
//
// Registries are instantiable: the process-global one (global_metrics(),
// default disabled, switched on by --metrics) serves the generic
// instrumentation, while the ArtifactCache embeds an always-enabled private
// registry so its per-artifact-class hit/miss/wait counters are exact
// regardless of the global flag (sweep results stamp them into JSON).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace focs::obs {

inline constexpr std::size_t kShardCount = 32;
inline constexpr std::size_t kMaxCounters = 192;
inline constexpr std::size_t kMaxGauges = 32;
inline constexpr std::size_t kMaxHistograms = 32;
/// Upper bucket bounds per histogram (plus one implicit overflow bucket).
inline constexpr std::size_t kMaxHistogramBuckets = 24;

/// Merged point-in-time view of one registry; plain data, safe to keep
/// after the registry mutates further.
struct MetricsSnapshot {
    struct Counter {
        std::string name;
        std::uint64_t value = 0;
    };
    struct Gauge {
        std::string name;
        std::int64_t max = 0;  ///< high-water mark since construction/reset
    };
    struct Histogram {
        std::string name;
        std::vector<double> bounds;          ///< ascending upper bucket bounds
        std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1 (overflow last)
        std::uint64_t count = 0;
        double sum = 0;
    };

    std::vector<Counter> counters;
    std::vector<Gauge> gauges;
    std::vector<Histogram> histograms;

    /// Value of a counter by name; 0 when absent.
    std::uint64_t counter_value(std::string_view name) const;
    const Histogram* find_histogram(std::string_view name) const;

    /// Appends another snapshot (e.g. the global registry plus a cache's
    /// private one) for a combined dump; names are assumed disjoint.
    void merge(const MetricsSnapshot& other);

    /// {"counters": {...}, "gauges": {...}, "histograms": {...}} with
    /// deterministic (registration) order inside each section.
    std::string to_json() const;

    /// Human-readable dump for the CLI's --metrics flag.
    std::string to_table() const;
};

class MetricsRegistry {
public:
    using Id = std::uint32_t;

    explicit MetricsRegistry(bool enabled = false);
    ~MetricsRegistry();
    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    /// Register-or-look-up by name (idempotent; the same name always maps
    /// to the same id). Throws focs::Error when a fixed capacity is
    /// exhausted or a histogram is re-registered with different bounds.
    Id counter(std::string_view name);
    Id gauge(std::string_view name);
    Id histogram(std::string_view name, std::vector<double> bounds);

    bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
    void set_enabled(bool enabled) { enabled_.store(enabled, std::memory_order_relaxed); }

    /// All mutations are no-ops while disabled.
    void add(Id counter, std::uint64_t delta = 1);
    /// Raises the gauge's high-water mark (gauges are max-watermarks; the
    /// instrumented quantities — ring occupancy, queue depth — want their
    /// peak, and peaks merge exactly across shards where "last value"
    /// would not).
    void gauge_max(Id gauge, std::int64_t value);
    void observe(Id histogram, double value);

    /// Exact merged counter value (sums shards; cheap, no allocation).
    std::uint64_t counter_value(Id counter) const;

    MetricsSnapshot snapshot() const;

    /// Zeroes every shard; registrations (names, ids, bounds) survive.
    void reset();

private:
    struct Shard;
    struct HistogramDef;

    Shard& shard_for_thread();
    Shard* shard_at(std::size_t slot) const;

    std::atomic<bool> enabled_;
    std::atomic<std::uint32_t> next_slot_{0};
    std::array<std::atomic<Shard*>, kShardCount> shards_{};

    /// Never-reused registry identity for the thread-local slot cache (an
    /// address could be recycled by a later registry; this cannot).
    const std::uint64_t instance_id_;

    mutable std::mutex names_mutex_;
    std::vector<std::string> counter_names_;
    std::vector<std::string> gauge_names_;
    std::array<std::atomic<const HistogramDef*>, kMaxHistograms> histogram_defs_{};
    std::uint32_t histogram_count_ = 0;
};

/// The process-global registry: default disabled, flipped on by the CLI's
/// --metrics flag (or tests). Never destroyed.
MetricsRegistry& global_metrics();

/// Shared latency histogram bounds (ms), sub-millisecond up to tens of
/// seconds in a 1-3-10 ladder: one shape for every duration histogram
/// (artifact builds, service requests) so distributions compare across
/// subsystems without bucket-boundary artifacts.
std::vector<double> latency_ms_bounds();

}  // namespace focs::obs

// Statement wrapper for instrumentation call sites: compiles to nothing in
// a -DFOCS_OBS_COMPILE_OUT build, so even the enabled-flag checks (and any
// id-registration statics behind them) vanish from the binary.
#ifdef FOCS_OBS_COMPILE_OUT
#define FOCS_OBS(statement) ((void)0)
#else
#define FOCS_OBS(statement) \
    do {                    \
        statement;          \
    } while (0)
#endif
