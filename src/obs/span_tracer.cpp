#include "obs/span_tracer.hpp"

#include <algorithm>
#include <utility>

#include "common/json.hpp"

namespace focs::obs {

namespace {

std::uint64_t next_tracer_instance_id() {
    static std::atomic<std::uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

// ------------------------------------------------------------------ Span

Span::Span(SpanTracer* tracer, std::string_view name) : tracer_(tracer) {
    if (tracer_ == nullptr) return;
    name_ = std::string(name);
    start_us_ = tracer_->now_us();
}

Span::Span(Span&& other) noexcept
    : tracer_(std::exchange(other.tracer_, nullptr)),
      name_(std::move(other.name_)),
      start_us_(other.start_us_),
      args_(std::move(other.args_)) {}

Span& Span::operator=(Span&& other) noexcept {
    if (this != &other) {
        finish();
        tracer_ = std::exchange(other.tracer_, nullptr);
        name_ = std::move(other.name_);
        start_us_ = other.start_us_;
        args_ = std::move(other.args_);
    }
    return *this;
}

Span& Span::arg(std::string_view key, const std::string& value) {
    if (tracer_ != nullptr) {
        args_.push_back(json::quote(std::string(key)) + ": " + json::quote(value));
    }
    return *this;
}

Span& Span::arg(std::string_view key, std::int64_t value) {
    if (tracer_ != nullptr) {
        args_.push_back(json::quote(std::string(key)) + ": " + std::to_string(value));
    }
    return *this;
}

Span& Span::arg(std::string_view key, double value) {
    if (tracer_ != nullptr) {
        args_.push_back(json::quote(std::string(key)) + ": " + json::number(value));
    }
    return *this;
}

void Span::finish() {
    if (tracer_ == nullptr) return;
    SpanTracer* tracer = std::exchange(tracer_, nullptr);
    SpanEvent event;
    event.name = std::move(name_);
    event.start_us = start_us_;
    event.duration_us = std::max(0.0, tracer->now_us() - start_us_);
    event.args = std::move(args_);
    tracer->record(std::move(event));
}

// ------------------------------------------------------------ SpanTracer

SpanTracer::SpanTracer(bool enabled)
    : enabled_(enabled),
      instance_id_(next_tracer_instance_id()),
      epoch_(std::chrono::steady_clock::now()) {}

double SpanTracer::now_us() const {
    return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - epoch_)
        .count();
}

SpanTracer::ThreadBuf& SpanTracer::buf_for_thread() {
    // Mirrors MetricsRegistry::shard_for_thread: the cache is keyed by a
    // never-reused tracer identity, and the buffer is co-owned by the
    // thread-local shared_ptr and the tracer's list, so neither thread
    // exit nor (hypothetical) tracer destruction can leave the other side
    // with a dangling pointer.
    struct TlsEntry {
        std::uint64_t instance = 0;
        std::shared_ptr<ThreadBuf> buf;
    };
    thread_local std::vector<TlsEntry> tls;

    for (const TlsEntry& entry : tls) {
        if (entry.instance == instance_id_) return *entry.buf;
    }
    auto buf = std::make_shared<ThreadBuf>();
    {
        std::lock_guard<std::mutex> lock(bufs_mutex_);
        buf->tid = static_cast<std::uint32_t>(bufs_.size());
        bufs_.push_back(buf);
    }
    tls.push_back({instance_id_, buf});
    return *tls.back().buf;
}

void SpanTracer::record(SpanEvent event) {
    ThreadBuf& buf = buf_for_thread();
    event.tid = buf.tid;
    std::lock_guard<std::mutex> lock(buf.mutex);
    buf.events.push_back(std::move(event));
}

void SpanTracer::instant(std::string_view name) {
    if (!enabled()) return;
    SpanEvent event;
    event.name = std::string(name);
    event.start_us = now_us();
    event.instant = true;
    record(std::move(event));
}

std::vector<SpanEvent> SpanTracer::snapshot() const {
    std::vector<std::shared_ptr<ThreadBuf>> bufs;
    {
        std::lock_guard<std::mutex> lock(bufs_mutex_);
        bufs = bufs_;
    }
    std::vector<SpanEvent> events;
    for (const auto& buf : bufs) {
        std::lock_guard<std::mutex> lock(buf->mutex);
        events.insert(events.end(), buf->events.begin(), buf->events.end());
    }
    return events;
}

std::string SpanTracer::export_chrome_json(const MetricsSnapshot* metrics) const {
    const std::vector<SpanEvent> events = snapshot();
    std::string out = "{\"traceEvents\": [";
    bool first = true;
    for (const SpanEvent& event : events) {
        if (!first) out += ",";
        first = false;
        out += "\n  {\"name\": " + json::quote(event.name) +
               ", \"ph\": " + (event.instant ? "\"i\", \"s\": \"t\"" : std::string("\"X\"")) +
               ", \"pid\": 1, \"tid\": " + std::to_string(event.tid) +
               ", \"ts\": " + json::number(event.start_us);
        if (!event.instant) out += ", \"dur\": " + json::number(event.duration_us);
        if (!event.args.empty()) {
            out += ", \"args\": {";
            for (std::size_t i = 0; i < event.args.size(); ++i) {
                if (i > 0) out += ", ";
                out += event.args[i];
            }
            out += "}";
        }
        out += "}";
    }
    out += "\n], \"displayTimeUnit\": \"ms\"";
    if (metrics != nullptr) out += ",\n\"metrics\": " + metrics->to_json();
    out += "}\n";
    return out;
}

void SpanTracer::reset() {
    std::vector<std::shared_ptr<ThreadBuf>> bufs;
    {
        std::lock_guard<std::mutex> lock(bufs_mutex_);
        bufs = bufs_;
    }
    for (const auto& buf : bufs) {
        std::lock_guard<std::mutex> lock(buf->mutex);
        buf->events.clear();
    }
    epoch_ = std::chrono::steady_clock::now();
}

SpanTracer& global_tracer() {
    static SpanTracer* const global = new SpanTracer(/*enabled=*/false);
    return *global;
}

}  // namespace focs::obs
