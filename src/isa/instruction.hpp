// Decoded instruction representation.
#pragma once

#include <cstdint>

#include "isa/opcode.hpp"

namespace focs::isa {

/// A fully decoded ORBIS32 instruction.
///
/// `imm` carries the already sign- or zero-extended immediate as defined by
/// the opcode's semantics; for jumps/branches it is the signed *word* offset
/// relative to the instruction (target = pc + 4*imm).
struct Instruction {
    Opcode opcode = Opcode::kInvalid;
    std::uint8_t rd = 0;   ///< destination register index (0..31)
    std::uint8_t ra = 0;   ///< first source register index
    std::uint8_t rb = 0;   ///< second source register index
    std::int32_t imm = 0;  ///< extended immediate / branch word offset / nop code
};

/// Two instructions are equal when all architectural fields match.
constexpr bool operator==(const Instruction& a, const Instruction& b) {
    return a.opcode == b.opcode && a.rd == b.rd && a.ra == b.ra && a.rb == b.rb && a.imm == b.imm;
}

}  // namespace focs::isa
