// Disassembler for the ORBIS32 subset.
#pragma once

#include <cstdint>
#include <string>

#include "isa/instruction.hpp"

namespace focs::isa {

/// Sentinel for "instruction address unknown".
inline constexpr std::uint32_t kNoPc = 0xffffffffu;

/// Renders one instruction in GNU-style OR1K syntax, e.g.
/// "l.addi r3,r3,-1" or "l.bf 0x1234" (branch targets are absolute when the
/// instruction's own address `pc` is supplied, raw word offsets otherwise).
std::string disassemble(const Instruction& inst, std::uint32_t pc = kNoPc);

}  // namespace focs::isa
