#include "isa/isa_info.hpp"

#include <array>
#include <unordered_map>

#include "common/error.hpp"

namespace focs::isa {

namespace {

// Shorthand flags for table construction.
struct Flags {
    bool rd = false, ra = false, rb = false;
    bool load = false, store = false, branch = false, jump = false;
    bool setf = false, readf = false, imm = false;
};

constexpr OpcodeInfo make(Opcode op, std::string_view name, Flags f) {
    OpcodeInfo i;
    i.opcode = op;
    i.mnemonic = name;
    i.writes_rd = f.rd;
    i.reads_ra = f.ra;
    i.reads_rb = f.rb;
    i.is_load = f.load;
    i.is_store = f.store;
    i.is_branch = f.branch;
    i.is_jump = f.jump;
    i.sets_flag = f.setf;
    i.reads_flag = f.readf;
    i.has_immediate = f.imm;
    return i;
}

constexpr Flags kR3{.rd = true, .ra = true, .rb = true};                    // l.add rD,rA,rB
constexpr Flags kR2I{.rd = true, .ra = true, .imm = true};                  // l.addi rD,rA,I
constexpr Flags kSf{.ra = true, .rb = true, .setf = true};                  // l.sfeq rA,rB
constexpr Flags kSfi{.ra = true, .setf = true, .imm = true};                // l.sfeqi rA,I
constexpr Flags kLoad{.rd = true, .ra = true, .load = true, .imm = true};   // l.lwz rD,I(rA)
constexpr Flags kStore{.ra = true, .rb = true, .store = true, .imm = true}; // l.sw I(rA),rB

constexpr std::array<OpcodeInfo, kOpcodeCount> kTable = {
    make(Opcode::kAdd, "l.add", kR3),
    make(Opcode::kAddi, "l.addi", kR2I),
    make(Opcode::kSub, "l.sub", kR3),
    make(Opcode::kAnd, "l.and", kR3),
    make(Opcode::kAndi, "l.andi", kR2I),
    make(Opcode::kOr, "l.or", kR3),
    make(Opcode::kOri, "l.ori", kR2I),
    make(Opcode::kXor, "l.xor", kR3),
    make(Opcode::kXori, "l.xori", kR2I),
    make(Opcode::kMul, "l.mul", kR3),
    make(Opcode::kMuli, "l.muli", kR2I),
    make(Opcode::kDiv, "l.div", kR3),
    make(Opcode::kDivu, "l.divu", kR3),
    make(Opcode::kSll, "l.sll", kR3),
    make(Opcode::kSlli, "l.slli", kR2I),
    make(Opcode::kSrl, "l.srl", kR3),
    make(Opcode::kSrli, "l.srli", kR2I),
    make(Opcode::kSra, "l.sra", kR3),
    make(Opcode::kSrai, "l.srai", kR2I),
    make(Opcode::kRor, "l.ror", kR3),
    make(Opcode::kRori, "l.rori", kR2I),
    make(Opcode::kSfeq, "l.sfeq", kSf),
    make(Opcode::kSfne, "l.sfne", kSf),
    make(Opcode::kSfgtu, "l.sfgtu", kSf),
    make(Opcode::kSfgeu, "l.sfgeu", kSf),
    make(Opcode::kSfltu, "l.sfltu", kSf),
    make(Opcode::kSfleu, "l.sfleu", kSf),
    make(Opcode::kSfgts, "l.sfgts", kSf),
    make(Opcode::kSfges, "l.sfges", kSf),
    make(Opcode::kSflts, "l.sflts", kSf),
    make(Opcode::kSfles, "l.sfles", kSf),
    make(Opcode::kSfeqi, "l.sfeqi", kSfi),
    make(Opcode::kSfnei, "l.sfnei", kSfi),
    make(Opcode::kSfgtui, "l.sfgtui", kSfi),
    make(Opcode::kSfgeui, "l.sfgeui", kSfi),
    make(Opcode::kSfltui, "l.sfltui", kSfi),
    make(Opcode::kSfleui, "l.sfleui", kSfi),
    make(Opcode::kSfgtsi, "l.sfgtsi", kSfi),
    make(Opcode::kSfgesi, "l.sfgesi", kSfi),
    make(Opcode::kSfltsi, "l.sfltsi", kSfi),
    make(Opcode::kSflesi, "l.sflesi", kSfi),
    make(Opcode::kJ, "l.j", {.jump = true, .imm = true}),
    make(Opcode::kJal, "l.jal", {.rd = true, .jump = true, .imm = true}),
    make(Opcode::kJr, "l.jr", {.rb = true, .jump = true}),
    make(Opcode::kJalr, "l.jalr", {.rd = true, .rb = true, .jump = true}),
    make(Opcode::kBf, "l.bf", {.branch = true, .readf = true, .imm = true}),
    make(Opcode::kBnf, "l.bnf", {.branch = true, .readf = true, .imm = true}),
    make(Opcode::kLwz, "l.lwz", kLoad),
    make(Opcode::kLbz, "l.lbz", kLoad),
    make(Opcode::kLbs, "l.lbs", kLoad),
    make(Opcode::kLhz, "l.lhz", kLoad),
    make(Opcode::kLhs, "l.lhs", kLoad),
    make(Opcode::kSw, "l.sw", kStore),
    make(Opcode::kSb, "l.sb", kStore),
    make(Opcode::kSh, "l.sh", kStore),
    make(Opcode::kExths, "l.exths", {.rd = true, .ra = true}),
    make(Opcode::kExtbs, "l.extbs", {.rd = true, .ra = true}),
    make(Opcode::kExthz, "l.exthz", {.rd = true, .ra = true}),
    make(Opcode::kExtbz, "l.extbz", {.rd = true, .ra = true}),
    make(Opcode::kExtws, "l.extws", {.rd = true, .ra = true}),
    make(Opcode::kExtwz, "l.extwz", {.rd = true, .ra = true}),
    make(Opcode::kCmov, "l.cmov", {.rd = true, .ra = true, .rb = true, .readf = true}),
    make(Opcode::kFf1, "l.ff1", {.rd = true, .ra = true}),
    make(Opcode::kFl1, "l.fl1", {.rd = true, .ra = true}),
    make(Opcode::kMulu, "l.mulu", kR3),
    make(Opcode::kMovhi, "l.movhi", {.rd = true, .imm = true}),
    make(Opcode::kNop, "l.nop", {.imm = true}),
};

const OpcodeInfo kInvalidInfo = make(Opcode::kInvalid, "<invalid>", {});

}  // namespace

const OpcodeInfo& info(Opcode op) {
    const auto index = static_cast<std::size_t>(op);
    if (index >= kTable.size()) return kInvalidInfo;
    return kTable[index];
}

std::string_view mnemonic(Opcode op) { return info(op).mnemonic; }

std::optional<Opcode> opcode_from_mnemonic(std::string_view name) {
    static const auto* map = [] {
        auto* m = new std::unordered_map<std::string_view, Opcode>();
        for (const auto& entry : kTable) m->emplace(entry.mnemonic, entry.opcode);
        return m;
    }();
    const auto it = map->find(name);
    if (it == map->end()) return std::nullopt;
    return it->second;
}

std::string_view timing_family_name(TimingFamily family) {
    switch (family) {
        case TimingFamily::kAdd: return "add";
        case TimingFamily::kLogicAnd: return "and";
        case TimingFamily::kLogicOr: return "or";
        case TimingFamily::kLogicXor: return "xor";
        case TimingFamily::kShift: return "shift";
        case TimingFamily::kMul: return "mul";
        case TimingFamily::kDiv: return "div";
        case TimingFamily::kCompare: return "compare";
        case TimingFamily::kBranch: return "branch";
        case TimingFamily::kJump: return "jump";
        case TimingFamily::kLoad: return "load";
        case TimingFamily::kStore: return "store";
        case TimingFamily::kMovhi: return "movhi";
        case TimingFamily::kNop: return "nop";
        case TimingFamily::kCount: break;
    }
    return "<invalid>";
}

TimingFamily timing_family(Opcode op) {
    switch (op) {
        case Opcode::kAdd:
        case Opcode::kAddi:
        case Opcode::kSub: return TimingFamily::kAdd;
        case Opcode::kAnd:
        case Opcode::kAndi: return TimingFamily::kLogicAnd;
        case Opcode::kOr:
        case Opcode::kOri: return TimingFamily::kLogicOr;
        case Opcode::kXor:
        case Opcode::kXori: return TimingFamily::kLogicXor;
        case Opcode::kMul:
        case Opcode::kMuli: return TimingFamily::kMul;
        case Opcode::kDiv:
        case Opcode::kDivu: return TimingFamily::kDiv;
        case Opcode::kSll:
        case Opcode::kSlli:
        case Opcode::kSrl:
        case Opcode::kSrli:
        case Opcode::kSra:
        case Opcode::kSrai:
        case Opcode::kRor:
        case Opcode::kRori: return TimingFamily::kShift;
        case Opcode::kSfeq:
        case Opcode::kSfne:
        case Opcode::kSfgtu:
        case Opcode::kSfgeu:
        case Opcode::kSfltu:
        case Opcode::kSfleu:
        case Opcode::kSfgts:
        case Opcode::kSfges:
        case Opcode::kSflts:
        case Opcode::kSfles:
        case Opcode::kSfeqi:
        case Opcode::kSfnei:
        case Opcode::kSfgtui:
        case Opcode::kSfgeui:
        case Opcode::kSfltui:
        case Opcode::kSfleui:
        case Opcode::kSfgtsi:
        case Opcode::kSfgesi:
        case Opcode::kSfltsi:
        case Opcode::kSflesi: return TimingFamily::kCompare;
        case Opcode::kJ:
        case Opcode::kJal:
        case Opcode::kJr:
        case Opcode::kJalr: return TimingFamily::kJump;
        case Opcode::kBf:
        case Opcode::kBnf: return TimingFamily::kBranch;
        case Opcode::kLwz:
        case Opcode::kLbz:
        case Opcode::kLbs:
        case Opcode::kLhz:
        case Opcode::kLhs: return TimingFamily::kLoad;
        case Opcode::kSw:
        case Opcode::kSb:
        case Opcode::kSh: return TimingFamily::kStore;
        case Opcode::kExths:
        case Opcode::kExtbs:
        case Opcode::kExthz:
        case Opcode::kExtbz:
        case Opcode::kExtws:
        case Opcode::kExtwz: return TimingFamily::kLogicAnd;  // mask/replicate logic
        case Opcode::kCmov: return TimingFamily::kLogicOr;    // flag-controlled mux
        case Opcode::kFf1:
        case Opcode::kFl1: return TimingFamily::kShift;       // priority encoder
        case Opcode::kMulu: return TimingFamily::kMul;
        case Opcode::kMovhi: return TimingFamily::kMovhi;
        case Opcode::kNop: return TimingFamily::kNop;
        case Opcode::kInvalid: break;
    }
    check(false, "timing_family: invalid opcode");
    return TimingFamily::kNop;  // unreachable
}

}  // namespace focs::isa
