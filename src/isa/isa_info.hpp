// Static per-opcode metadata: mnemonics and architectural properties.
#pragma once

#include <optional>
#include <string_view>

#include "isa/opcode.hpp"

namespace focs::isa {

/// Architectural properties of one opcode, used by the decoder, the hazard
/// logic of the pipeline model and the assembler.
struct OpcodeInfo {
    Opcode opcode = Opcode::kInvalid;
    std::string_view mnemonic;  ///< e.g. "l.add"
    bool writes_rd = false;     ///< produces a GPR result (jal/jalr write r9)
    bool reads_ra = false;
    bool reads_rb = false;
    bool is_load = false;
    bool is_store = false;
    bool is_branch = false;  ///< conditional: l.bf / l.bnf
    bool is_jump = false;    ///< unconditional: l.j / l.jal / l.jr / l.jalr
    bool sets_flag = false;  ///< l.sf* family
    bool reads_flag = false; ///< l.bf / l.bnf
    bool has_immediate = false;
};

/// Metadata for `op`; valid for every opcode except kInvalid.
const OpcodeInfo& info(Opcode op);

/// Mnemonic string, e.g. "l.xori". Returns "<invalid>" for kInvalid.
std::string_view mnemonic(Opcode op);

/// Reverse lookup; accepts canonical mnemonics only (lower-case, "l." prefix).
std::optional<Opcode> opcode_from_mnemonic(std::string_view name);

/// True for any control transfer with an architectural delay slot.
inline bool is_control_transfer(Opcode op) {
    const auto& i = info(op);
    return i.is_branch || i.is_jump;
}

}  // namespace focs::isa
