// Binary encode/decode for the ORBIS32 subset.
//
// Encodings follow the OpenRISC 1000 Architecture Manual: major opcode in
// bits [31:26], register fields D[25:21] A[20:16] B[15:11], ALU sub-opcodes
// in bits [9:8] and [3:0], shift sub-opcodes in bits [7:6], and split
// store immediates (I[15:11] in [25:21], I[10:0] in [10:0]).
#pragma once

#include <cstdint>

#include "isa/instruction.hpp"

namespace focs::isa {

/// Encodes a decoded instruction into its 32-bit instruction word.
/// Throws focs::Error for kInvalid or out-of-range fields.
std::uint32_t encode(const Instruction& inst);

/// Decodes a 32-bit instruction word. Words outside the supported subset
/// decode to an Instruction with opcode kInvalid.
Instruction decode(std::uint32_t word);

}  // namespace focs::isa
