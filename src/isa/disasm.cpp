#include "isa/disasm.hpp"

#include <cstdio>

#include "isa/isa_info.hpp"

namespace focs::isa {

namespace {

std::string reg(std::uint8_t r) {
    char buf[8];
    std::snprintf(buf, sizeof buf, "r%u", r);
    return buf;
}

std::string hex(std::uint32_t v) {
    char buf[16];
    std::snprintf(buf, sizeof buf, "0x%x", v);
    return buf;
}

}  // namespace

std::string disassemble(const Instruction& inst, std::uint32_t pc) {
    const OpcodeInfo& meta = info(inst.opcode);
    std::string out{meta.mnemonic};
    if (inst.opcode == Opcode::kInvalid) return out;
    out += ' ';

    switch (inst.opcode) {
        case Opcode::kJ:
        case Opcode::kJal:
        case Opcode::kBf:
        case Opcode::kBnf:
            if (pc != kNoPc) {
                out += hex(pc + 4u * static_cast<std::uint32_t>(inst.imm));
            } else {
                out += std::to_string(inst.imm);
            }
            return out;
        case Opcode::kJr:
        case Opcode::kJalr:
            out += reg(inst.rb);
            return out;
        case Opcode::kNop:
            out += hex(static_cast<std::uint32_t>(inst.imm));
            return out;
        case Opcode::kMovhi:
            out += reg(inst.rd) + "," + hex(static_cast<std::uint32_t>(inst.imm));
            return out;
        default: break;
    }

    if (meta.writes_rd && meta.reads_ra && !meta.reads_rb && !meta.has_immediate) {
        out += reg(inst.rd) + "," + reg(inst.ra);  // unary ALU: l.exths, l.ff1, ...
        return out;
    }
    if (meta.is_load) {
        out += reg(inst.rd) + "," + std::to_string(inst.imm) + "(" + reg(inst.ra) + ")";
    } else if (meta.is_store) {
        out += std::to_string(inst.imm) + "(" + reg(inst.ra) + ")," + reg(inst.rb);
    } else if (meta.sets_flag) {
        out += reg(inst.ra) + ",";
        out += meta.has_immediate ? std::to_string(inst.imm) : reg(inst.rb);
    } else if (meta.has_immediate) {
        out += reg(inst.rd) + "," + reg(inst.ra) + "," + std::to_string(inst.imm);
    } else {
        out += reg(inst.rd) + "," + reg(inst.ra) + "," + reg(inst.rb);
    }
    return out;
}

}  // namespace focs::isa
