// OpenRISC 1000 (ORBIS32 subset) opcode definitions.
//
// The subset matches the instructions exercised by the mor1kx "cappuccino"
// case study in the paper: integer ALU, single-cycle multiplier, serial
// divider, shifter, set-flag comparisons, branches/jumps with one
// architectural delay slot, and byte/half/word loads and stores against
// tightly-coupled SRAMs.
#pragma once

#include <cstdint>
#include <string_view>

namespace focs::isa {

/// Decoded instruction mnemonics. `kInvalid` marks undecodable words.
enum class Opcode : std::uint8_t {
    // Arithmetic / logic (register and immediate forms)
    kAdd, kAddi, kSub,
    kAnd, kAndi, kOr, kOri, kXor, kXori,
    kMul, kMuli, kDiv, kDivu,
    // Shifts and rotate
    kSll, kSlli, kSrl, kSrli, kSra, kSrai, kRor, kRori,
    // Set-flag comparisons (register forms)
    kSfeq, kSfne, kSfgtu, kSfgeu, kSfltu, kSfleu, kSfgts, kSfges, kSflts, kSfles,
    // Set-flag comparisons (immediate forms)
    kSfeqi, kSfnei, kSfgtui, kSfgeui, kSfltui, kSfleui, kSfgtsi, kSfgesi, kSfltsi, kSflesi,
    // Control transfer (all with one delay slot)
    kJ, kJal, kJr, kJalr, kBf, kBnf,
    // Memory
    kLwz, kLbz, kLbs, kLhz, kLhs, kSw, kSb, kSh,
    // Sign/zero extension, conditional move, bit scan (ORBIS32 optional
    // instructions, emitted by the OpenRISC GCC when enabled)
    kExths, kExtbs, kExthz, kExtbz, kExtws, kExtwz,
    kCmov, kFf1, kFl1, kMulu,
    // Other
    kMovhi, kNop,
    kInvalid,
};

/// Number of valid opcodes (excludes kInvalid).
inline constexpr int kOpcodeCount = static_cast<int>(Opcode::kInvalid);

/// Functional-unit families used by the synthetic timing model to assign
/// path-delay anchors (paper Tables I/II list delays per mnemonic family,
/// e.g. "l.add(i)" covers both register and immediate forms).
enum class TimingFamily : std::uint8_t {
    kAdd,      // l.add / l.addi / l.sub: adder carry chain
    kLogicAnd, // l.and(i)
    kLogicOr,  // l.or(i)
    kLogicXor, // l.xor(i)
    kShift,    // barrel shifter / rotate
    kMul,      // shielded single-cycle multiplier
    kDiv,      // serial divider
    kCompare,  // l.sf* flag generation
    kBranch,   // l.bf / l.bnf (flag evaluation + target)
    kJump,     // l.j / l.jal / l.jr / l.jalr (PC/address paths)
    kLoad,     // LSU + data SRAM read
    kStore,    // LSU + data SRAM write
    kMovhi,    // immediate formation only
    kNop,      // no datapath activity
    kCount,
};

inline constexpr int kTimingFamilyCount = static_cast<int>(TimingFamily::kCount);

/// Short name for a timing family (e.g. "add", "mul").
std::string_view timing_family_name(TimingFamily family);

/// Functional-unit family of an opcode.
TimingFamily timing_family(Opcode op);

}  // namespace focs::isa
