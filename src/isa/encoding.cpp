#include "isa/encoding.hpp"

#include "common/error.hpp"
#include "isa/isa_info.hpp"

namespace focs::isa {

namespace {

constexpr std::uint32_t kLinkRegister = 9;

// Sign-extends the low `bits` bits of `value`.
constexpr std::int32_t sext(std::uint32_t value, int bits) {
    const std::uint32_t mask = (bits >= 32) ? 0xffffffffu : ((1u << bits) - 1u);
    value &= mask;
    const std::uint32_t sign = 1u << (bits - 1);
    return static_cast<std::int32_t>((value ^ sign) - sign);
}

constexpr std::uint32_t major(std::uint32_t word) { return word >> 26; }
constexpr std::uint32_t field_d(std::uint32_t word) { return (word >> 21) & 0x1f; }
constexpr std::uint32_t field_a(std::uint32_t word) { return (word >> 16) & 0x1f; }
constexpr std::uint32_t field_b(std::uint32_t word) { return (word >> 11) & 0x1f; }
constexpr std::uint32_t field_imm16(std::uint32_t word) { return word & 0xffff; }

// Set-flag condition codes shared by the 0x39 (register) and 0x2f
// (immediate) major opcodes.
constexpr std::uint32_t kCondEq = 0x0, kCondNe = 0x1, kCondGtu = 0x2, kCondGeu = 0x3,
                        kCondLtu = 0x4, kCondLeu = 0x5, kCondGts = 0xa, kCondGes = 0xb,
                        kCondLts = 0xc, kCondLes = 0xd;

std::uint32_t sf_cond(Opcode op) {
    switch (op) {
        case Opcode::kSfeq: case Opcode::kSfeqi: return kCondEq;
        case Opcode::kSfne: case Opcode::kSfnei: return kCondNe;
        case Opcode::kSfgtu: case Opcode::kSfgtui: return kCondGtu;
        case Opcode::kSfgeu: case Opcode::kSfgeui: return kCondGeu;
        case Opcode::kSfltu: case Opcode::kSfltui: return kCondLtu;
        case Opcode::kSfleu: case Opcode::kSfleui: return kCondLeu;
        case Opcode::kSfgts: case Opcode::kSfgtsi: return kCondGts;
        case Opcode::kSfges: case Opcode::kSfgesi: return kCondGes;
        case Opcode::kSflts: case Opcode::kSfltsi: return kCondLts;
        case Opcode::kSfles: case Opcode::kSflesi: return kCondLes;
        default: check(false, "sf_cond: not a set-flag opcode"); return 0;
    }
}

Opcode sf_reg_opcode(std::uint32_t cond) {
    switch (cond) {
        case kCondEq: return Opcode::kSfeq;
        case kCondNe: return Opcode::kSfne;
        case kCondGtu: return Opcode::kSfgtu;
        case kCondGeu: return Opcode::kSfgeu;
        case kCondLtu: return Opcode::kSfltu;
        case kCondLeu: return Opcode::kSfleu;
        case kCondGts: return Opcode::kSfgts;
        case kCondGes: return Opcode::kSfges;
        case kCondLts: return Opcode::kSflts;
        case kCondLes: return Opcode::kSfles;
        default: return Opcode::kInvalid;
    }
}

Opcode sf_imm_opcode(std::uint32_t cond) {
    switch (cond) {
        case kCondEq: return Opcode::kSfeqi;
        case kCondNe: return Opcode::kSfnei;
        case kCondGtu: return Opcode::kSfgtui;
        case kCondGeu: return Opcode::kSfgeui;
        case kCondLtu: return Opcode::kSfltui;
        case kCondLeu: return Opcode::kSfleui;
        case kCondGts: return Opcode::kSfgtsi;
        case kCondGes: return Opcode::kSfgesi;
        case kCondLts: return Opcode::kSfltsi;
        case kCondLes: return Opcode::kSflesi;
        default: return Opcode::kInvalid;
    }
}

// Major opcodes of the subset.
constexpr std::uint32_t kMajJ = 0x00, kMajJal = 0x01, kMajBnf = 0x03, kMajBf = 0x04,
                        kMajNop = 0x05, kMajMovhi = 0x06, kMajJr = 0x11, kMajJalr = 0x12,
                        kMajLwz = 0x21, kMajLbz = 0x23, kMajLbs = 0x24, kMajLhz = 0x25,
                        kMajLhs = 0x26, kMajAddi = 0x27, kMajAndi = 0x29, kMajOri = 0x2a,
                        kMajXori = 0x2b, kMajMuli = 0x2c, kMajShifti = 0x2e, kMajSfi = 0x2f,
                        kMajSw = 0x35, kMajSb = 0x36, kMajSh = 0x37, kMajAlu = 0x38,
                        kMajSf = 0x39;

std::uint32_t check_reg(std::uint32_t r) {
    check(r < 32, "register index out of range");
    return r;
}

std::uint32_t encode_r2i(std::uint32_t maj, const Instruction& i) {
    return maj << 26 | check_reg(i.rd) << 21 | check_reg(i.ra) << 16 |
           (static_cast<std::uint32_t>(i.imm) & 0xffff);
}

std::uint32_t encode_store(std::uint32_t maj, const Instruction& i) {
    const auto imm = static_cast<std::uint32_t>(i.imm);
    return maj << 26 | ((imm >> 11) & 0x1f) << 21 | check_reg(i.ra) << 16 |
           check_reg(i.rb) << 11 | (imm & 0x7ff);
}

std::uint32_t encode_alu(const Instruction& i, std::uint32_t op2, std::uint32_t op3,
                         std::uint32_t shift_op = 0) {
    return kMajAlu << 26 | check_reg(i.rd) << 21 | check_reg(i.ra) << 16 |
           check_reg(i.rb) << 11 | op2 << 8 | shift_op << 6 | op3;
}

std::uint32_t encode_jump_offset(std::uint32_t maj, const Instruction& i) {
    check(i.imm >= -(1 << 25) && i.imm < (1 << 25), "jump/branch offset out of 26-bit range");
    return maj << 26 | (static_cast<std::uint32_t>(i.imm) & 0x03ffffff);
}

}  // namespace

std::uint32_t encode(const Instruction& i) {
    switch (i.opcode) {
        case Opcode::kJ: return encode_jump_offset(kMajJ, i);
        case Opcode::kJal: return encode_jump_offset(kMajJal, i);
        case Opcode::kBnf: return encode_jump_offset(kMajBnf, i);
        case Opcode::kBf: return encode_jump_offset(kMajBf, i);
        case Opcode::kNop:
            return kMajNop << 26 | 0x01u << 24 | (static_cast<std::uint32_t>(i.imm) & 0xffff);
        case Opcode::kMovhi:
            return kMajMovhi << 26 | check_reg(i.rd) << 21 |
                   (static_cast<std::uint32_t>(i.imm) & 0xffff);
        case Opcode::kJr: return kMajJr << 26 | check_reg(i.rb) << 11;
        case Opcode::kJalr: return kMajJalr << 26 | check_reg(i.rb) << 11;
        case Opcode::kLwz: return encode_r2i(kMajLwz, i);
        case Opcode::kLbz: return encode_r2i(kMajLbz, i);
        case Opcode::kLbs: return encode_r2i(kMajLbs, i);
        case Opcode::kLhz: return encode_r2i(kMajLhz, i);
        case Opcode::kLhs: return encode_r2i(kMajLhs, i);
        case Opcode::kAddi: return encode_r2i(kMajAddi, i);
        case Opcode::kAndi: return encode_r2i(kMajAndi, i);
        case Opcode::kOri: return encode_r2i(kMajOri, i);
        case Opcode::kXori: return encode_r2i(kMajXori, i);
        case Opcode::kMuli: return encode_r2i(kMajMuli, i);
        case Opcode::kSlli:
        case Opcode::kSrli:
        case Opcode::kSrai:
        case Opcode::kRori: {
            std::uint32_t op2 = 0;
            if (i.opcode == Opcode::kSrli) op2 = 1;
            if (i.opcode == Opcode::kSrai) op2 = 2;
            if (i.opcode == Opcode::kRori) op2 = 3;
            check(i.imm >= 0 && i.imm < 64, "shift amount out of range");
            return kMajShifti << 26 | check_reg(i.rd) << 21 | check_reg(i.ra) << 16 | op2 << 6 |
                   static_cast<std::uint32_t>(i.imm);
        }
        case Opcode::kSfeqi:
        case Opcode::kSfnei:
        case Opcode::kSfgtui:
        case Opcode::kSfgeui:
        case Opcode::kSfltui:
        case Opcode::kSfleui:
        case Opcode::kSfgtsi:
        case Opcode::kSfgesi:
        case Opcode::kSfltsi:
        case Opcode::kSflesi:
            return kMajSfi << 26 | sf_cond(i.opcode) << 21 | check_reg(i.ra) << 16 |
                   (static_cast<std::uint32_t>(i.imm) & 0xffff);
        case Opcode::kSw: return encode_store(kMajSw, i);
        case Opcode::kSb: return encode_store(kMajSb, i);
        case Opcode::kSh: return encode_store(kMajSh, i);
        case Opcode::kAdd: return encode_alu(i, 0, 0x0);
        case Opcode::kSub: return encode_alu(i, 0, 0x2);
        case Opcode::kAnd: return encode_alu(i, 0, 0x3);
        case Opcode::kOr: return encode_alu(i, 0, 0x4);
        case Opcode::kXor: return encode_alu(i, 0, 0x5);
        case Opcode::kMul: return encode_alu(i, 3, 0x6);
        case Opcode::kDiv: return encode_alu(i, 3, 0x9);
        case Opcode::kDivu: return encode_alu(i, 3, 0xa);
        case Opcode::kMulu: return encode_alu(i, 3, 0xb);
        case Opcode::kExths: return encode_alu(i, 0, 0xc, 0);
        case Opcode::kExtbs: return encode_alu(i, 0, 0xc, 1);
        case Opcode::kExthz: return encode_alu(i, 0, 0xc, 2);
        case Opcode::kExtbz: return encode_alu(i, 0, 0xc, 3);
        case Opcode::kExtws: return encode_alu(i, 0, 0xd, 0);
        case Opcode::kExtwz: return encode_alu(i, 0, 0xd, 1);
        case Opcode::kCmov: return encode_alu(i, 0, 0xe);
        case Opcode::kFf1: return encode_alu(i, 0, 0xf);
        case Opcode::kFl1: return encode_alu(i, 1, 0xf);
        case Opcode::kSll: return encode_alu(i, 0, 0x8, 0);
        case Opcode::kSrl: return encode_alu(i, 0, 0x8, 1);
        case Opcode::kSra: return encode_alu(i, 0, 0x8, 2);
        case Opcode::kRor: return encode_alu(i, 0, 0x8, 3);
        case Opcode::kSfeq:
        case Opcode::kSfne:
        case Opcode::kSfgtu:
        case Opcode::kSfgeu:
        case Opcode::kSfltu:
        case Opcode::kSfleu:
        case Opcode::kSfgts:
        case Opcode::kSfges:
        case Opcode::kSflts:
        case Opcode::kSfles:
            return kMajSf << 26 | sf_cond(i.opcode) << 21 | check_reg(i.ra) << 16 |
                   check_reg(i.rb) << 11;
        case Opcode::kInvalid: break;
    }
    check(false, "encode: invalid opcode");
    return 0;  // unreachable
}

Instruction decode(std::uint32_t word) {
    Instruction i;
    const std::uint32_t maj = major(word);
    switch (maj) {
        case kMajJ:
        case kMajJal:
        case kMajBnf:
        case kMajBf: {
            i.opcode = maj == kMajJ    ? Opcode::kJ
                       : maj == kMajJal ? Opcode::kJal
                       : maj == kMajBnf ? Opcode::kBnf
                                        : Opcode::kBf;
            i.imm = sext(word, 26);
            if (i.opcode == Opcode::kJal) i.rd = kLinkRegister;
            return i;
        }
        case kMajNop:
            if (((word >> 24) & 0x3) != 0x1) break;
            i.opcode = Opcode::kNop;
            i.imm = static_cast<std::int32_t>(field_imm16(word));
            return i;
        case kMajMovhi:
            if ((word >> 16 & 1) != 0) break;  // bit16=1 is l.macrc (unsupported)
            i.opcode = Opcode::kMovhi;
            i.rd = static_cast<std::uint8_t>(field_d(word));
            i.imm = static_cast<std::int32_t>(field_imm16(word));
            return i;
        case kMajJr:
        case kMajJalr:
            i.opcode = maj == kMajJr ? Opcode::kJr : Opcode::kJalr;
            i.rb = static_cast<std::uint8_t>(field_b(word));
            if (i.opcode == Opcode::kJalr) i.rd = kLinkRegister;
            return i;
        case kMajLwz:
        case kMajLbz:
        case kMajLbs:
        case kMajLhz:
        case kMajLhs: {
            i.opcode = maj == kMajLwz   ? Opcode::kLwz
                       : maj == kMajLbz ? Opcode::kLbz
                       : maj == kMajLbs ? Opcode::kLbs
                       : maj == kMajLhz ? Opcode::kLhz
                                        : Opcode::kLhs;
            i.rd = static_cast<std::uint8_t>(field_d(word));
            i.ra = static_cast<std::uint8_t>(field_a(word));
            i.imm = sext(word, 16);
            return i;
        }
        case kMajAddi:
        case kMajMuli:
        case kMajXori:
            i.opcode = maj == kMajAddi   ? Opcode::kAddi
                       : maj == kMajMuli ? Opcode::kMuli
                                         : Opcode::kXori;
            i.rd = static_cast<std::uint8_t>(field_d(word));
            i.ra = static_cast<std::uint8_t>(field_a(word));
            i.imm = sext(word, 16);
            return i;
        case kMajAndi:
        case kMajOri:
            i.opcode = maj == kMajAndi ? Opcode::kAndi : Opcode::kOri;
            i.rd = static_cast<std::uint8_t>(field_d(word));
            i.ra = static_cast<std::uint8_t>(field_a(word));
            i.imm = static_cast<std::int32_t>(field_imm16(word));
            return i;
        case kMajShifti: {
            const std::uint32_t op2 = (word >> 6) & 0x3;
            i.opcode = op2 == 0   ? Opcode::kSlli
                       : op2 == 1 ? Opcode::kSrli
                       : op2 == 2 ? Opcode::kSrai
                                  : Opcode::kRori;
            i.rd = static_cast<std::uint8_t>(field_d(word));
            i.ra = static_cast<std::uint8_t>(field_a(word));
            i.imm = static_cast<std::int32_t>(word & 0x3f);
            return i;
        }
        case kMajSfi: {
            i.opcode = sf_imm_opcode(field_d(word));
            if (i.opcode == Opcode::kInvalid) break;
            i.ra = static_cast<std::uint8_t>(field_a(word));
            i.imm = sext(word, 16);
            return i;
        }
        case kMajSw:
        case kMajSb:
        case kMajSh: {
            i.opcode = maj == kMajSw ? Opcode::kSw : maj == kMajSb ? Opcode::kSb : Opcode::kSh;
            i.ra = static_cast<std::uint8_t>(field_a(word));
            i.rb = static_cast<std::uint8_t>(field_b(word));
            const std::uint32_t imm = (field_d(word) << 11) | (word & 0x7ff);
            i.imm = sext(imm, 16);
            return i;
        }
        case kMajAlu: {
            const std::uint32_t op2 = (word >> 8) & 0x3;
            const std::uint32_t op3 = word & 0xf;
            i.rd = static_cast<std::uint8_t>(field_d(word));
            i.ra = static_cast<std::uint8_t>(field_a(word));
            i.rb = static_cast<std::uint8_t>(field_b(word));
            if (op2 == 0) {
                switch (op3) {
                    case 0x0: i.opcode = Opcode::kAdd; return i;
                    case 0x2: i.opcode = Opcode::kSub; return i;
                    case 0x3: i.opcode = Opcode::kAnd; return i;
                    case 0x4: i.opcode = Opcode::kOr; return i;
                    case 0x5: i.opcode = Opcode::kXor; return i;
                    case 0x8: {
                        const std::uint32_t shift_op = (word >> 6) & 0x3;
                        i.opcode = shift_op == 0   ? Opcode::kSll
                                   : shift_op == 1 ? Opcode::kSrl
                                   : shift_op == 2 ? Opcode::kSra
                                                   : Opcode::kRor;
                        return i;
                    }
                    case 0xc: {
                        const std::uint32_t ext_op = (word >> 6) & 0x3;
                        i.opcode = ext_op == 0   ? Opcode::kExths
                                   : ext_op == 1 ? Opcode::kExtbs
                                   : ext_op == 2 ? Opcode::kExthz
                                                 : Opcode::kExtbz;
                        i.rb = 0;
                        return i;
                    }
                    case 0xd: {
                        const std::uint32_t ext_op = (word >> 6) & 0x3;
                        if (ext_op > 1) break;
                        i.opcode = ext_op == 0 ? Opcode::kExtws : Opcode::kExtwz;
                        i.rb = 0;
                        return i;
                    }
                    case 0xe: i.opcode = Opcode::kCmov; return i;
                    case 0xf: i.opcode = Opcode::kFf1; i.rb = 0; return i;
                    default: break;
                }
            } else if (op2 == 1) {
                if (op3 == 0xf) {
                    i.opcode = Opcode::kFl1;
                    i.rb = 0;
                    return i;
                }
            } else if (op2 == 3) {
                switch (op3) {
                    case 0x6: i.opcode = Opcode::kMul; return i;
                    case 0x9: i.opcode = Opcode::kDiv; return i;
                    case 0xa: i.opcode = Opcode::kDivu; return i;
                    case 0xb: i.opcode = Opcode::kMulu; return i;
                    default: break;
                }
            }
            break;
        }
        case kMajSf: {
            i.opcode = sf_reg_opcode(field_d(word));
            if (i.opcode == Opcode::kInvalid) break;
            i.ra = static_cast<std::uint8_t>(field_a(word));
            i.rb = static_cast<std::uint8_t>(field_b(word));
            return i;
        }
        default: break;
    }
    return Instruction{};  // kInvalid
}

}  // namespace focs::isa
