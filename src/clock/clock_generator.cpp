#include "clock/clock_generator.hpp"

#include <algorithm>
#include <cstdio>

#include "common/error.hpp"

namespace focs::clocking {

QuantizedClockGenerator::QuantizedClockGenerator(double min_period_ps, double max_period_ps,
                                                 int num_taps) {
    check(num_taps >= 1, "need at least one tap");
    check(min_period_ps > 0 && max_period_ps >= min_period_ps, "invalid tap range");
    taps_.reserve(static_cast<std::size_t>(num_taps));
    if (num_taps == 1) {
        taps_.push_back(max_period_ps);
    } else {
        const double step = (max_period_ps - min_period_ps) / (num_taps - 1);
        for (int i = 0; i < num_taps; ++i) taps_.push_back(min_period_ps + step * i);
    }
}

QuantizedClockGenerator QuantizedClockGenerator::for_static_period(double static_period_ps,
                                                                   int num_taps) {
    return QuantizedClockGenerator(0.5 * static_period_ps, static_period_ps, num_taps);
}

double QuantizedClockGenerator::grant_period_ps(double requested_ps) {
    const auto it = std::lower_bound(taps_.begin(), taps_.end(), requested_ps);
    if (it == taps_.end()) return requested_ps;  // beyond slowest tap: stretch
    return *it;
}

std::string QuantizedClockGenerator::name() const {
    char buf[48];
    std::snprintf(buf, sizeof buf, "ring-osc/%zu-taps", taps_.size());
    return buf;
}

PllBankClockGenerator::PllBankClockGenerator(std::vector<double> periods_ps, int min_dwell_cycles)
    : periods_(std::move(periods_ps)), min_dwell_cycles_(min_dwell_cycles) {
    check(!periods_.empty(), "PLL bank needs at least one source");
    check(min_dwell_cycles >= 0, "negative dwell");
    std::sort(periods_.begin(), periods_.end());
}

void PllBankClockGenerator::reset() {
    current_ = 0;
    dwell_ = 0;
    started_ = false;
}

double PllBankClockGenerator::grant_period_ps(double requested_ps) {
    // Smallest source covering the request; beyond the slowest source we
    // stretch the slowest one.
    std::size_t want = periods_.size() - 1;
    double want_period = requested_ps;
    const auto it = std::lower_bound(periods_.begin(), periods_.end(), requested_ps);
    if (it != periods_.end()) {
        want = static_cast<std::size_t>(it - periods_.begin());
        want_period = *it;
    } else {
        want_period = std::max(requested_ps, periods_.back());
    }

    if (!started_) {
        started_ = true;
        current_ = want;
        dwell_ = 1;
        return want_period;
    }

    if (want >= current_) {
        // Slower or equal: always allowed.
        if (want != current_) dwell_ = 0;
        current_ = want;
        ++dwell_;
        return std::max(want_period, periods_[current_]);
    }
    // Faster: only after the dwell requirement is met.
    if (dwell_ >= min_dwell_cycles_) {
        current_ = want;
        dwell_ = 1;
        return want_period;
    }
    ++dwell_;
    return periods_[current_];
}

std::string PllBankClockGenerator::name() const {
    char buf[48];
    std::snprintf(buf, sizeof buf, "pll-bank/%zu-sources", periods_.size());
    return buf;
}

}  // namespace focs::clocking
