// Tunable clock generator models.
//
// The paper assumes a cycle-by-cycle tunable clock generator (CG), e.g. a
// tunable ring oscillator with a muxed output [9][10] or a multi-PLL
// clocking unit [11], and notes its design is outside the paper's scope.
// These models capture the first-order constraint such a CG imposes on DCA:
// the granted period is the requested period rounded UP to a realizable
// one, and some CGs cannot retune to a faster clock instantly.
#pragma once

#include <string>
#include <vector>

namespace focs::clocking {

class ClockGenerator {
public:
    virtual ~ClockGenerator() = default;

    /// Returns the period the CG actually produces for this cycle.
    /// Postcondition: granted >= requested (never unsafe).
    virtual double grant_period_ps(double requested_ps) = 0;

    /// Re-arms the CG for a new run.
    virtual void reset() = 0;

    virtual std::string name() const = 0;
};

/// Continuously tunable CG: grants exactly the requested period.
class IdealClockGenerator final : public ClockGenerator {
public:
    double grant_period_ps(double requested_ps) override { return requested_ps; }
    void reset() override {}
    std::string name() const override { return "ideal"; }
};

/// Ring-oscillator style CG with `num_taps` equally spaced periods in
/// [min_period_ps, max_period_ps]; requests are ceiled to the next tap.
/// Requests above the slowest tap are granted verbatim (cycle stretching).
class QuantizedClockGenerator final : public ClockGenerator {
public:
    QuantizedClockGenerator(double min_period_ps, double max_period_ps, int num_taps);

    /// Convenience: taps spanning [0.5 * static, static].
    static QuantizedClockGenerator for_static_period(double static_period_ps, int num_taps);

    double grant_period_ps(double requested_ps) override;
    void reset() override {}
    std::string name() const override;

    const std::vector<double>& taps() const { return taps_; }

private:
    std::vector<double> taps_;  ///< ascending
};

/// Multi-PLL CG: a small set of clock sources; switching to a *faster*
/// clock is only possible after `min_dwell_cycles` on the current source
/// (relock/mux constraints), while switching to a slower clock (stretching)
/// is always possible. Safety is preserved by staying slow when in doubt.
class PllBankClockGenerator final : public ClockGenerator {
public:
    PllBankClockGenerator(std::vector<double> periods_ps, int min_dwell_cycles);

    double grant_period_ps(double requested_ps) override;
    void reset() override;
    std::string name() const override;

private:
    std::vector<double> periods_;  ///< ascending
    int min_dwell_cycles_;
    std::size_t current_ = 0;  ///< index of the currently selected source
    int dwell_ = 0;            ///< cycles spent on the current source
    bool started_ = false;
};

}  // namespace focs::clocking
