// Declarative description of a batch evaluation sweep.
//
// A SweepSpec names the grid the paper's methodology walks — kernels x
// policies x clock generators x voltage points, plus the characterization
// knobs (guard band, minimum occurrences) — without saying anything about
// how it executes. The SweepEngine expands the spec into independent jobs
// and runs them on a thread pool; the spec's declaration order fixes the
// order of the aggregated results, so a parallel run is byte-identical to
// a serial one.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "clock/clock_generator.hpp"
#include "core/policies.hpp"
#include "timing/design_config.hpp"

namespace focs::runtime {

/// Declarative clock-generator choice for one sweep axis point. Generators
/// are mutable (PLL dwell counters), so each job instantiates its own.
struct GeneratorSpec {
    enum class Kind { kIdeal, kQuantized, kPllBank };

    Kind kind = Kind::kIdeal;
    int num_taps = 0;                ///< quantized: taps in [static/2, static]
    std::vector<double> periods_ps;  ///< pll bank: available source periods
    int min_dwell_cycles = 0;        ///< pll bank: relock constraint

    /// Stable label, also the spec-file syntax: "ideal", "taps:N",
    /// "pll:P1/P2/...:DWELL".
    std::string label() const;
    static GeneratorSpec parse(const std::string& text);

    /// Builds a fresh generator instance for one job.
    std::unique_ptr<clocking::ClockGenerator> instantiate(double static_period_ps) const;
};

/// The full sweep grid plus execution knobs. Empty axis vectors mean the
/// natural default (full benchmark suite, lut policy, ideal generator, the
/// design's default voltage).
struct SweepSpec {
    std::vector<std::string> kernels;
    /// Policy axis points; parameterized kinds carry their parameter
    /// ("approx-lut:0.8", "dual-cycle:3" in spec syntax). Bare PolicyKinds
    /// convert implicitly and get the kind's default parameter.
    std::vector<core::PolicySpec> policies;
    std::vector<GeneratorSpec> generators;
    std::vector<double> voltages_v;

    timing::DesignVariant variant = timing::DesignVariant::kCriticalRangeOptimized;
    double lut_guard_ps = -1;  ///< <0: analyzer default
    int min_occurrences = -1;  ///< <0: analyzer default
    int jobs = 0;              ///< worker threads; 0 = hardware concurrency

    /// Copy with every empty axis replaced by its default, so the grid shape
    /// is explicit. Kernels default to the full benchmark suite.
    SweepSpec resolved() const;

    /// Number of grid cells after resolution.
    std::size_t cell_count() const;

    /// Design config of one voltage point.
    timing::DesignConfig design_for(double voltage_v) const;

    /// Line-based "key = v1, v2, ..." format with '#' comments. Keys:
    /// kernels, policies, generators, voltages, variant, guard_ps,
    /// min_occurrences, jobs.
    static SweepSpec parse(const std::string& text);
    std::string serialize() const;
};

}  // namespace focs::runtime
