// Thread-pooled batch evaluation engine.
//
// Expands a SweepSpec into one job per (voltage, kernel, policy, generator)
// grid cell and executes the jobs on a pool of worker threads. Workers pull
// jobs from a shared atomic cursor (cheap work stealing: whoever is free
// takes the next cell), instantiate all mutable simulator state privately
// (DcaEngine, policy, clock generator — the sim is mutable, so nothing is
// shared except read-only artifacts), and obtain shared artifacts from an
// ArtifactCache, where assembled programs and the characterization
// DelayTable are computed exactly once behind shared_futures. When the
// grid needs fewer distinct delay tables than there are workers, the
// would-be-idle parallelism is handed to the batched characterization
// engine as intra-flow worker threads. Results land in a pre-sized vector
// slot per cell, so aggregation order is the spec's declaration order and
// a --jobs 8 run is byte-identical to --jobs 1.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/flows.hpp"
#include "runtime/artifact_cache.hpp"
#include "runtime/sweep_spec.hpp"

namespace focs::runtime {

/// One evaluated grid cell, labelled by its axis coordinates.
struct SweepCell {
    std::string kernel;
    std::string policy;     ///< PolicyKind short name
    std::string generator;  ///< GeneratorSpec label
    double voltage_v = 0;
    core::DcaRunResult result;
};

struct SweepResult {
    std::vector<SweepCell> cells;  ///< in spec declaration order
    int jobs = 0;                  ///< worker threads actually used
    double wall_ms = 0;
    std::uint64_t characterizations = 0;  ///< delay tables built this sweep
    std::uint64_t cache_hits = 0;

    /// Mean over all cells (matches SuiteResult semantics when the sweep is
    /// a single-policy suite).
    double mean_eff_freq_mhz = 0;
    double mean_speedup = 0;
    std::uint64_t total_violations = 0;
};

class SweepEngine {
public:
    /// `jobs` > 0 forces the pool size; 0 defers to the spec's `jobs` knob
    /// and then to std::thread::hardware_concurrency(). `cache` may be
    /// shared across sweeps (a serving scenario: repeated requests reuse
    /// programs and tables); by default each engine owns a fresh one.
    explicit SweepEngine(int jobs = 0, std::shared_ptr<ArtifactCache> cache = nullptr);

    /// Executes the sweep. Deterministic: the returned cell order and every
    /// per-cell result are independent of the job count and of thread
    /// scheduling.
    SweepResult run(const SweepSpec& spec) const;

    int jobs() const { return jobs_; }
    const std::shared_ptr<ArtifactCache>& cache() const { return cache_; }

    /// Analyzer config a spec's knobs resolve to (shared with the CLI so a
    /// pre-seeded --lut table lands under the same cache key).
    static dta::AnalyzerConfig analyzer_config_for(const SweepSpec& spec);

private:
    int jobs_;
    std::shared_ptr<ArtifactCache> cache_;
};

}  // namespace focs::runtime
