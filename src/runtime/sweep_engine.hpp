// Thread-pooled batch evaluation engine.
//
// Expands a SweepSpec into one job per (voltage, kernel, policy, generator)
// grid cell and executes the jobs on a pool of worker threads. Workers pull
// jobs from a shared atomic cursor (cheap work stealing: whoever is free
// takes the next cell), instantiate all mutable simulator state privately
// (policy, clock generator — mutable, so nothing is shared except read-only
// artifacts), and obtain shared artifacts from an ArtifactCache, where
// assembled programs, the characterization DelayTable, recorded traces and
// their voltage-free unit delay arrays are computed exactly once behind
// shared_futures. When the grid needs fewer distinct delay tables than
// there are workers, the would-be-idle parallelism is handed to the batched
// characterization engine as intra-flow worker threads. Results land in a
// pre-sized vector slot per cell, so aggregation order is the spec's
// declaration order and a --jobs 8 run is byte-identical to --jobs 1.
//
// Two execution modes produce byte-identical cells:
//  - kReplay (default): record-once / replay-many. Each (kernel, machine
//    config) is simulated exactly once into a cached PipelineTrace and its
//    voltage-free unit delay array is computed in one fused pass; every
//    policy x generator x voltage cell over that kernel is then scored by
//    the batched SoA ReplayEvaluationEngine against a ScaledTraceDelays
//    view (the shared unit array plus the point's delay scale). A P-policy
//    x G-generator x V-voltage column costs one guest simulation and one
//    delay-model pass instead of P*G (and P*G*V delay passes).
//  - kLive: the reference path; every cell steps the full delay-annotated
//    cycle-accurate pipeline (DcaEngine::run).
//
// Failures are isolated per cell: by default (FailureMode::kKeepGoing) a
// throwing cell records its status/error code and every other cell keeps
// running, with aggregates computed over the survivors; kFailFast aborts
// the sweep and rethrows the first failure wrapped with the failing cell's
// grid coordinates. A CancellationToken (deadline or caller-driven) drains
// the remaining queue as `cancelled` cells and returns partial results.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/cancel.hpp"
#include "core/flows.hpp"
#include "runtime/artifact_cache.hpp"
#include "runtime/sweep_spec.hpp"

namespace focs::runtime {

/// How the engine evaluates grid cells. Both modes produce byte-identical
/// results; kReplay simulates each guest exactly once.
enum class EvalMode { kReplay, kLive };

/// Stable mode name ("replay"|"live"), inverse of parse_eval_mode.
std::string eval_mode_name(EvalMode mode);
EvalMode parse_eval_mode(const std::string& name);

/// What the engine does when a cell's evaluation throws.
enum class FailureMode {
    /// Default: record the failure on the cell (status, error code, what),
    /// keep every other cell running, and report partial results. Failed
    /// cells are excluded from the sweep's aggregate figures.
    kKeepGoing,
    /// Abort the sweep on the first failing cell: sibling workers stop at
    /// their next cell boundary and run() rethrows the failure, wrapped
    /// with the failing cell's grid coordinates.
    kFailFast,
};

/// Outcome of one grid cell.
enum class CellStatus {
    kOk,
    kFailed,     ///< evaluation or artifact build threw
    kCancelled,  ///< deadline expired / caller cancelled before completion
};

/// Stable status name ("ok"|"failed"|"cancelled"), inverse of
/// parse_cell_status.
std::string cell_status_name(CellStatus status);
CellStatus parse_cell_status(const std::string& name);

/// One evaluated grid cell, labelled by its axis coordinates.
struct SweepCell {
    std::string kernel;
    std::string policy;     ///< PolicySpec label (short name, or name:param)
    std::string generator;  ///< GeneratorSpec label
    double voltage_v = 0;
    /// Per-cell isolation: failures land here instead of tearing down the
    /// sweep. `result` is meaningful only when ok(); `error_code`/`error`
    /// only when not.
    CellStatus status = CellStatus::kOk;
    ErrorCode error_code = ErrorCode::kUnknown;
    std::string error;
    core::DcaRunResult result;
    /// Wall time of this cell's evaluation on its worker (artifact waits
    /// included). Run-dependent: serialized only under include_timing.
    double wall_ms = 0;
    /// Time the expanded job sat in the queue before a worker picked it
    /// up (dequeue time minus sweep start). Run-dependent.
    double queue_wait_ms = 0;

    bool ok() const { return status == CellStatus::kOk; }
};

/// Per-run execution knobs of SweepEngine::run (the engine itself stays
/// reusable across runs with different failure handling).
struct SweepRunOptions {
    FailureMode failure_mode = FailureMode::kKeepGoing;
    /// Pin replay cells to the scalar reference path (CLI --no-simd): no
    /// SIMD kernel table, no fixed-point period arithmetic. Never affects
    /// results — replay is byte-identical either way.
    bool force_scalar_replay = false;
    /// Characterize every operating point with the full per-voltage
    /// gate-level flow (CLI --reference-characterization) instead of
    /// deriving scaled views of the shared nominal table. Never affects
    /// results — the views are bit-identical to the reference — only how
    /// the tables are produced (V characterizations instead of 1).
    bool reference_characterization = false;
    /// Optional cooperative cancellation (deadline- or caller-driven),
    /// polled at cell boundaries and threaded into artifact builds and the
    /// replay block loop. Cells not finished when the token fires are
    /// reported with CellStatus::kCancelled; run() still returns normally
    /// with the partial results.
    const CancellationToken* cancel = nullptr;
};

/// Run-dependent observability block stamped into the focs-sweep-v5 timing
/// header: per-artifact-class cache outcomes (deltas of the cache's
/// embedded registry over this sweep) and the per-cell wall-time
/// distribution. Misses are deterministic (exactly-once builds); the
/// hit/wait split depends on thread scheduling.
struct SweepMetrics {
    ArtifactClassCounters program;
    ArtifactClassCounters delay_table;
    ArtifactClassCounters trace;
    ArtifactClassCounters unit_delays;

    /// Nearest-rank percentiles over the cells' wall_ms (exact, computed
    /// from the per-cell samples, not from histogram buckets).
    double cell_wall_ms_p50 = 0;
    double cell_wall_ms_p95 = 0;
    double cell_wall_ms_max = 0;
    /// Sum of every cell's queue_wait_ms — the scheduling overhead the
    /// pool paid on top of the evaluation work.
    double queue_wait_ms_total = 0;
};

struct SweepResult {
    std::vector<SweepCell> cells;  ///< in spec declaration order
    /// Per-status cell counts (ok + failed + cancelled == cells.size()).
    /// Aggregate figures below cover the ok cells only.
    std::uint64_t cells_ok = 0;
    std::uint64_t cells_failed = 0;
    std::uint64_t cells_cancelled = 0;
    int jobs = 0;                  ///< worker threads actually used
    std::string mode;              ///< eval_mode_name of the executing engine
    double wall_ms = 0;
    /// Gate-level characterization flows this sweep executed (nominal +
    /// reference passes; NOT derived scaled views). Exactly 1 on a cold
    /// cache regardless of the voltage-axis width, unless
    /// reference_characterization forces one per operating point.
    std::uint64_t characterizations = 0;
    /// Nominal characterization passes this sweep executed (cold cache: 1;
    /// warm or pre-seeded: 0; reference mode: 0).
    std::uint64_t nominal_passes = 0;
    /// Per-voltage delay tables derived as DelayTable::scaled views of the
    /// shared nominal entry (cold cache: one per operating point).
    std::uint64_t scaled_views = 0;
    std::uint64_t cache_hits = 0;
    /// Guest simulations this sweep paid for its cells: traces recorded in
    /// replay mode (exactly one per (kernel, machine config) on a cold
    /// cache), one per cell in live mode. Characterization guest runs are
    /// tracked separately via `characterizations`.
    std::uint64_t guest_simulations = 0;
    /// Fused voltage-free delay-model passes this sweep executed: exactly
    /// one per (kernel, design variant) on a cold cache in replay mode,
    /// independent of the voltage-axis width. 0 in live mode.
    std::uint64_t unit_delay_passes = 0;
    /// Replay cells served a ScaledTraceDelays view from an already-present
    /// unit array (the per-voltage/per-cell reuse count of the shared
    /// ground truth).
    std::uint64_t unit_delay_reuses = 0;
    /// Resolved spec the cells were produced from, and a stable hash of it,
    /// stamped into JSON artifacts so cached results.json files stay
    /// traceable to their originating grid.
    std::string spec_text;
    std::string spec_hash;
    /// Cache outcome deltas and wall-time distribution for this run.
    SweepMetrics metrics;

    /// Mean over the ok cells (matches SuiteResult semantics when the sweep
    /// is a single-policy suite and everything succeeded).
    double mean_eff_freq_mhz = 0;
    double mean_speedup = 0;
    std::uint64_t total_violations = 0;

    bool complete() const { return cells_failed == 0 && cells_cancelled == 0; }
};

class SweepEngine {
public:
    /// `jobs` > 0 forces the pool size; 0 defers to the spec's `jobs` knob
    /// and then to std::thread::hardware_concurrency(). `cache` may be
    /// shared across sweeps (a serving scenario: repeated requests reuse
    /// programs, tables and traces); by default each engine owns a fresh
    /// one. `mode` selects replay (default) or live evaluation — the spec
    /// declares the grid only, so the same spec can be executed either way.
    explicit SweepEngine(int jobs = 0, std::shared_ptr<ArtifactCache> cache = nullptr,
                         EvalMode mode = EvalMode::kReplay);

    /// Executes the sweep. Deterministic: the returned cell order and every
    /// per-cell result are independent of the job count, of thread
    /// scheduling, and of the evaluation mode — including each failed
    /// cell's status and error code under FailureMode::kKeepGoing (only
    /// *which* cells a fired cancellation token reaches is run-dependent).
    SweepResult run(const SweepSpec& spec, const SweepRunOptions& options = {}) const;

    int jobs() const { return jobs_; }
    EvalMode mode() const { return mode_; }
    const std::shared_ptr<ArtifactCache>& cache() const { return cache_; }

    /// Analyzer config a spec's knobs resolve to (shared with the CLI so a
    /// pre-seeded --lut table lands under the same cache key).
    static dta::AnalyzerConfig analyzer_config_for(const SweepSpec& spec);

private:
    int jobs_;
    std::shared_ptr<ArtifactCache> cache_;
    EvalMode mode_;
};

/// FNV-1a 64-bit hash (offset basis 0xcbf29ce484222325, prime 0x100000001b3)
/// of `text`, formatted "fnv1a:%016llx" (16 lowercase hex digits). Sweep
/// results stamp stable_text_hash(spec.resolved().serialize()) — the hash
/// is over the *canonical* spec text, so any textual variant that resolves
/// to the same grid hashes identically (dependency-free, stable across
/// platforms).
std::string stable_text_hash(const std::string& text);

}  // namespace focs::runtime
