// Shared-artifact cache for the sweep runtime.
//
// A sweep grid re-uses four expensive artifacts across many cells:
// assembled Programs (one per kernel, shared by every policy/generator/
// voltage cell), the characterization DelayTable (see below), recorded
// PipelineTraces (one guest simulation per (kernel, machine config), shared
// by every clocking scheme replayed over it), and UnitTraceDelays (the
// voltage-free per-cycle required-period ground truth, one per (trace,
// design variant) — the *entire voltage axis* of a sweep derives its
// ScaledTraceDelays views from this one array). The cache computes each
// artifact exactly once behind a std::shared_future: the first requester
// becomes the builder, every concurrent requester blocks on the same
// future, and later requesters get the cached value immediately. All
// artifacts are immutable after construction, so sharing references across
// worker threads is safe.
//
// Delay tables are factorized along the voltage axis the same way the unit
// trace delays are: the expensive gate-level characterization flow runs
// exactly once per voltage-free nominal key (variant, seed, analyzer
// config) at the cell library's nominal operating point (0.70 V, where
// delay_scale == 1.0 exactly), and every per-voltage table is derived from
// that shared nominal entry as a DelayTable::scaled view — bit-identical to
// a reference characterization at the target voltage (see
// DelayTable::scaled for the rounding-monotonicity argument). The nominal
// entry sits behind its own shared_future<shared_ptr<const DelayTable>>
// with the same exactly-once election, and participates in the byte-budget
// LRU like any other entry. cache.delay_table.nominal_passes counts nominal
// flows actually executed and cache.delay_table.scaled_views counts derived
// per-voltage views; the per-voltage reference flow stays available behind
// delay_table(..., reference_characterization=true), counted in
// cache.delay_table.reference_passes.
//
// Every lookup lands in exactly one of three outcomes per artifact class,
// counted on an embedded (always-enabled, private) metrics registry:
//  - miss: this requester became the builder and ran the build;
//  - hit:  the entry was present and its future already ready;
//  - wait: the entry was present but still being built — the requester
//          blocks on the builder's shared_future.
// Misses are deterministic (the exactly-once contract: one per distinct
// key); the hit/wait split depends on thread scheduling, so consumers
// assert on misses and on hit+wait sums ("served"). Build durations land
// in per-class histograms, and builds record spans on the global tracer.
//
// Builder failures do NOT poison the cache. An elected builder retries a
// failing build in place (bounded by max_build_attempts, deterministic —
// the fault-injection attempt ordinal is cumulative per key); if every
// attempt fails, the exception is classified (ErrorCode::kArtifactBuild,
// or the cancellation code when a CancellationToken fired mid-build),
// published to the current waiters through the shared_future, and the
// entry is *evicted* under the mutex — so the next requester of the same
// key re-elects a builder instead of inheriting a stale exception for the
// process lifetime. Outcomes land in cache.<class>.build_failed /
// retried / evicted counters next to the lookup taxonomy above.
//
// Memory is bounded by an optional byte budget (set_byte_budget; 0 =
// unbounded, the default). Every completed entry is accounted at its
// artifact's estimated_bytes() and linked into one global LRU list
// (lookups touch entries most-recently-used); when the resident total
// exceeds the budget, least-recently-used entries are evicted until it
// fits, counted per class in cache.<class>.evicted_lru. In-flight entries
// (build still running) are pinned — they are not in the LRU list and can
// never be evicted, preserving the exactly-once builder election. Evicting
// a ready entry is always safe: consumers hold shared_future copies that
// keep the value alive, so eviction only drops the *cache's* reference —
// the next requester of that key re-builds. A single artifact larger than
// the whole budget is admitted (the build already paid for it) and then
// evicted as soon as the next entry completes.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "asm/program.hpp"
#include "common/cancel.hpp"
#include "dta/analyzer.hpp"
#include "dta/delay_table.hpp"
#include "obs/metrics.hpp"
#include "sim/trace_recorder.hpp"
#include "timing/design_config.hpp"
#include "timing/trace_delays.hpp"

namespace focs::runtime {

/// The four artifact classes the cache serves.
enum class ArtifactClass { kProgram, kDelayTable, kTrace, kUnitDelays };

/// Stable short name ("program"|"delay_table"|"trace"|"unit_delays") used
/// in metric names and JSON keys.
std::string artifact_class_name(ArtifactClass artifact_class);

/// Lookup-outcome counters of one artifact class (see the header comment
/// for the miss/hit/wait taxonomy).
struct ArtifactClassCounters {
    std::uint64_t miss = 0;
    std::uint64_t hit = 0;
    std::uint64_t wait = 0;

    /// Requests answered without building: hit + wait. Deterministic where
    /// the individual split is not.
    std::uint64_t served() const { return hit + wait; }
};

/// Build-outcome counters of one artifact class: `failed` counts failed
/// build attempts, `retried` in-place re-attempts after a failure,
/// `evicted` entries removed after a terminal failure (every attempt
/// exhausted) so later requesters re-elect a builder, `evicted_lru`
/// entries dropped by the byte-budget LRU policy.
struct ArtifactBuildStats {
    std::uint64_t built = 0;
    std::uint64_t failed = 0;
    std::uint64_t retried = 0;
    std::uint64_t evicted = 0;
    std::uint64_t evicted_lru = 0;
};

class ArtifactCache {
public:
    /// `max_build_attempts` bounds the in-place retry of a failing build
    /// (>= 1; the default pays one deterministic retry before declaring
    /// the failure terminal and evicting the entry).
    explicit ArtifactCache(int max_build_attempts = 2);

    /// Assembled program of a bundled kernel (benchmark or characterization
    /// suite). Throws focs::Error through the future on unknown kernels.
    std::shared_future<assembler::Program> program(const std::string& kernel);

    /// Characterization delay table of one operating point. By default the
    /// table is derived as a DelayTable::scaled view of the shared nominal
    /// entry (one gate-level characterization per voltage-free nominal key,
    /// bit-identical to characterizing at the target voltage); pass
    /// `reference_characterization = true` to force the per-voltage
    /// reference flow instead (the byte-identity escape hatch). A table
    /// pre-seeded via put_delay_table for this operating point always wins
    /// over both paths. `analyzer_config` participates in the cache key, so
    /// different guard bands are distinct artifacts; an explicit
    /// analyzer_config.static_period_ps (> 0) disables the nominal
    /// factorization for that request (the override breaks the pure
    /// delay-scale relation the view depends on). `flow_threads` sets the
    /// batched characterization engine's intra-flow worker count for a
    /// build triggered by this request (it does not affect the artifact —
    /// every thread count produces the same table — so it is not part of
    /// the cache key); sweeps pass > 1 when grid-level parallelism would
    /// otherwise sit idle behind the build. `cancel` (optional, like
    /// flow_threads not part of the key) is polled by the characterization
    /// flow at batch boundaries: a fired token fails the build with the
    /// token's cancellation code, which evicts the entry — a later request
    /// without the token rebuilds.
    std::shared_future<dta::DelayTable> delay_table(const timing::DesignConfig& design,
                                                    const dta::AnalyzerConfig& analyzer_config,
                                                    int flow_threads = 1,
                                                    const CancellationToken* cancel = nullptr,
                                                    bool reference_characterization = false);

    /// Pre-seeds the table cache (e.g. a LUT loaded from disk with --lut),
    /// so the sweep skips characterization for this operating point.
    /// Counts as neither miss nor hit (nothing was built or requested).
    void put_delay_table(const timing::DesignConfig& design,
                         const dta::AnalyzerConfig& analyzer_config, dta::DelayTable table);

    /// Canonical recorded run of one (kernel, machine config): the guest is
    /// simulated exactly once, then every clocking scheme replays the
    /// trace. Recording triggers the kernel's program artifact on demand.
    std::shared_future<sim::PipelineTrace> trace(const std::string& kernel,
                                                 const sim::MachineConfig& machine_config = {});

    /// Voltage-free required-period ground truth of one trace: one fused
    /// unit pass per (kernel, design variant, seed, machine config),
    /// keyed *without* the voltage — every operating point on the voltage
    /// axis derives its ScaledTraceDelays view from this shared array
    /// (timing::scale_trace_delays), so a V-point grid pays one delay-model
    /// pass instead of V. `design.voltage_v` is ignored.
    std::shared_future<std::shared_ptr<const timing::UnitTraceDelays>> unit_trace_delays(
        const std::string& kernel, const timing::DesignConfig& design,
        const sim::MachineConfig& machine_config = {});

    /// Number of gate-level characterization flows actually executed (not
    /// pre-seeded, not cache hits, not derived scaled views): nominal
    /// passes plus reference passes. The determinism test asserts a
    /// V-voltage sweep pays exactly one (the nominal pass), independent of
    /// V.
    std::uint64_t characterizations_built() const;

    /// Nominal characterization flows executed (one per distinct
    /// voltage-free nominal key; the cache.delay_table.nominal_passes
    /// counter).
    std::uint64_t nominal_passes() const;

    /// Per-voltage tables derived from a nominal entry via
    /// DelayTable::scaled (the cache.delay_table.scaled_views counter).
    std::uint64_t scaled_views() const;

    /// Per-voltage reference characterization flows executed on behalf of
    /// delay_table(..., reference_characterization=true) requests (the
    /// cache.delay_table.reference_passes counter).
    std::uint64_t reference_passes() const;

    /// Total requests answered from an already-present entry (hit + wait,
    /// summed over all four artifact classes).
    std::uint64_t cache_hits() const;

    /// Guest simulations actually recorded as traces (not cache hits). A
    /// replay sweep's exactly-once contract is asserted on this counter:
    /// one per distinct (kernel, machine config), independent of how many
    /// policy/generator/voltage cells consume the trace.
    std::uint64_t traces_recorded() const;

    /// Fused unit delay passes executed (not cache hits): exactly one per
    /// distinct (kernel, design variant, seed, machine config), independent
    /// of how many voltage points consume the array.
    std::uint64_t unit_delay_passes() const;

    /// Requests for a unit delay artifact answered from an already-present
    /// entry — the per-voltage (and per-cell) reuse count of the shared
    /// arrays.
    std::uint64_t unit_delay_reuses() const;

    /// Current miss/hit/wait totals of one artifact class. Exact once the
    /// requesting threads have quiesced; sweeps stamp before/after deltas
    /// into their JSON metrics block.
    ArtifactClassCounters class_counters(ArtifactClass artifact_class) const;

    /// Current built/failed/retried/evicted totals of one artifact class.
    ArtifactBuildStats build_stats(ArtifactClass artifact_class) const;

    int max_build_attempts() const { return max_build_attempts_; }

    /// Arms (or re-arms) the byte budget: when the resident total exceeds
    /// `bytes`, least-recently-used completed entries are evicted until it
    /// fits (immediately, and after every build completion). 0 disarms the
    /// budget (the default — sweeps on a private cache keep everything).
    void set_byte_budget(std::uint64_t bytes);
    std::uint64_t byte_budget() const;

    /// Bytes currently accounted to resident (completed, unpinned) entries.
    /// In-flight builds are pinned at 0 bytes until they complete.
    std::uint64_t cached_bytes() const;

    /// Total LRU evictions over all four classes (sum of the per-class
    /// cache.<class>.evicted_lru counters).
    std::uint64_t lru_evictions() const;

    /// Point-in-time view of the embedded registry (counters plus build
    /// duration histograms), e.g. for embedding into a trace export.
    obs::MetricsSnapshot metrics_snapshot() const { return metrics_.snapshot(); }

    static std::string design_key(const timing::DesignConfig& design,
                                  const dta::AnalyzerConfig& analyzer_config);
    /// Voltage-free key of the shared nominal delay-table entry ("nominal/"
    /// prefix + variant, seed, guard band, min occurrences).
    static std::string nominal_key(const timing::DesignConfig& design,
                                   const dta::AnalyzerConfig& analyzer_config);
    static std::string trace_key(const std::string& kernel,
                                 const sim::MachineConfig& machine_config);

private:
    /// One LRU list node: enough identity to erase the entry from its
    /// class map when evicted.
    struct LruNode {
        ArtifactClass artifact_class;
        std::string key;
    };
    using LruList = std::list<LruNode>;

    /// One cached artifact: the shared future every requester receives,
    /// plus LRU/byte-accounting state. `resident` is false while the build
    /// is in flight (pinned: not in the LRU list, never evicted) and true
    /// once the value was published and accounted.
    template <typename T>
    struct Entry {
        std::shared_future<T> future;
        std::uint64_t bytes = 0;
        bool resident = false;
        LruList::iterator lru{};
    };

    /// Assembled characterization suite, shared by every operating point's
    /// characterization run (assembly is voltage-independent).
    std::shared_future<std::vector<assembler::Program>> characterization_programs();

    /// Shared nominal delay-table entry: runs the characterization flow at
    /// the nominal operating point (delay_scale == 1.0) exactly once per
    /// nominal_key. Internal lookups on this map are not counted in the
    /// miss/hit/wait taxonomy (the public per-voltage lookup already was);
    /// executed flows bump cache.delay_table.nominal_passes. On failure the
    /// slot is cleared so the per-voltage builder's in-place retry
    /// re-elects a nominal builder.
    std::shared_future<std::shared_ptr<const dta::DelayTable>> nominal_delay_table(
        const timing::DesignConfig& design, const dta::AnalyzerConfig& analyzer_config,
        int flow_threads, const CancellationToken* cancel);

    /// Classifies a found entry as hit (ready) or wait (pending) and bumps
    /// the class counter accordingly.
    template <typename T>
    void count_found(ArtifactClass artifact_class, const std::shared_future<T>& future);

    /// Shared builder-side protocol of all four artifact classes: runs
    /// `build` with bounded in-place retry and fault-injection attempt
    /// ordinals (delay rules observe `cancel`), publishes the value (or
    /// the classified terminal failure) through `promise`; on success the
    /// entry becomes resident in the LRU accounting, on terminal failure
    /// `key` is evicted from `entries` under the mutex. Cancellation is
    /// never retried.
    template <typename T, typename Build>
    void run_build(ArtifactClass artifact_class, const std::string& key,
                   std::map<std::string, Entry<T>>& entries, std::promise<T>& promise,
                   Build&& build, const CancellationToken* cancel = nullptr);

    /// Marks a just-built entry resident: accounts `bytes`, links the LRU
    /// node, and evicts over-budget entries. No-op when the entry vanished
    /// or was replaced (pre-seeded via put_delay_table) meanwhile.
    template <typename T>
    void make_resident(ArtifactClass artifact_class, const std::string& key,
                       std::map<std::string, Entry<T>>& entries, std::uint64_t bytes);

    /// Unlinks + un-accounts a resident entry (mutex held). The entry's
    /// map node must still be erased by the caller.
    template <typename T>
    void unlink_locked(Entry<T>& entry);

    /// Evicts least-recently-used resident entries until the resident
    /// total fits the budget (mutex held).
    void evict_over_budget_locked();

    /// Cumulative build-attempt ordinal of one (class, key): in-place
    /// retries AND post-eviction re-elections keep counting up, so a
    /// seeded fault rule's per-attempt draws never repeat for a key.
    std::uint64_t next_build_attempt(ArtifactClass artifact_class, const std::string& key);

    mutable std::mutex mutex_;
    int max_build_attempts_;
    std::map<std::string, std::uint64_t> build_attempts_;
    std::map<std::string, Entry<assembler::Program>> programs_;
    std::map<std::string, Entry<dta::DelayTable>> tables_;
    /// Shared voltage-free nominal entries (keys carry the "nominal/"
    /// prefix; LRU nodes dispatch on it within ArtifactClass::kDelayTable).
    std::map<std::string, Entry<std::shared_ptr<const dta::DelayTable>>> nominal_tables_;
    std::map<std::string, Entry<sim::PipelineTrace>> traces_;
    std::map<std::string, Entry<std::shared_ptr<const timing::UnitTraceDelays>>> unit_delays_;
    std::shared_future<std::vector<assembler::Program>> characterization_programs_;
    bool characterization_programs_started_ = false;

    /// Byte-budget LRU state (all guarded by mutex_): front = least
    /// recently used. Only resident entries are linked.
    LruList lru_;
    std::uint64_t byte_budget_ = 0;  ///< 0 = unbounded
    std::uint64_t cached_bytes_ = 0;

    /// Always-enabled private registry: the cache's counters feed sweep
    /// result stamps and must be exact regardless of the global --metrics
    /// flag. The lookup path is lock-dominated, so the relaxed RMWs are
    /// noise.
    obs::MetricsRegistry metrics_{/*enabled=*/true};
    struct ClassIds {
        obs::MetricsRegistry::Id miss, hit, wait, built, build_ms;
        obs::MetricsRegistry::Id build_failed, retried, evicted, evicted_lru;
    };
    std::array<ClassIds, 4> ids_;
    /// Delay-table-only counters of the nominal factorization (metric names
    /// cache.delay_table.{nominal_passes,scaled_views,reference_passes}).
    obs::MetricsRegistry::Id nominal_passes_id_, scaled_views_id_, reference_passes_id_;

    const ClassIds& ids(ArtifactClass artifact_class) const {
        return ids_[static_cast<std::size_t>(artifact_class)];
    }
};

}  // namespace focs::runtime
