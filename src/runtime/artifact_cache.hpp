// Shared-artifact cache for the sweep runtime.
//
// A sweep grid re-uses four expensive artifacts across many cells:
// assembled Programs (one per kernel, shared by every policy/generator/
// voltage cell), the characterization DelayTable (one per design operating
// point, shared by every cell at that point), recorded PipelineTraces (one
// guest simulation per (kernel, machine config), shared by every clocking
// scheme replayed over it), and UnitTraceDelays (the voltage-free per-cycle
// required-period ground truth, one per (trace, design variant) — the
// *entire voltage axis* of a sweep derives its ScaledTraceDelays views from
// this one array). The cache computes each artifact exactly once behind a
// std::shared_future: the first requester becomes the builder, every
// concurrent requester blocks on the same future, and later requesters get
// the cached value immediately. All artifacts are immutable after
// construction, so sharing references across worker threads is safe.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "asm/program.hpp"
#include "dta/analyzer.hpp"
#include "dta/delay_table.hpp"
#include "sim/trace_recorder.hpp"
#include "timing/design_config.hpp"
#include "timing/trace_delays.hpp"

namespace focs::runtime {

class ArtifactCache {
public:
    /// Assembled program of a bundled kernel (benchmark or characterization
    /// suite). Throws focs::Error through the future on unknown kernels.
    std::shared_future<assembler::Program> program(const std::string& kernel);

    /// Characterization delay table of one operating point. Runs the full
    /// gate-level characterization flow on first request; `analyzer_config`
    /// participates in the cache key, so different guard bands are distinct
    /// artifacts. `flow_threads` sets the batched characterization engine's
    /// intra-flow worker count for a build triggered by this request (it
    /// does not affect the artifact — every thread count produces the same
    /// table — so it is not part of the cache key); sweeps pass > 1 when
    /// grid-level parallelism would otherwise sit idle behind the build.
    std::shared_future<dta::DelayTable> delay_table(const timing::DesignConfig& design,
                                                    const dta::AnalyzerConfig& analyzer_config,
                                                    int flow_threads = 1);

    /// Pre-seeds the table cache (e.g. a LUT loaded from disk with --lut),
    /// so the sweep skips characterization for this operating point.
    void put_delay_table(const timing::DesignConfig& design,
                         const dta::AnalyzerConfig& analyzer_config, dta::DelayTable table);

    /// Canonical recorded run of one (kernel, machine config): the guest is
    /// simulated exactly once, then every clocking scheme replays the
    /// trace. Recording triggers the kernel's program artifact on demand.
    std::shared_future<sim::PipelineTrace> trace(const std::string& kernel,
                                                 const sim::MachineConfig& machine_config = {});

    /// Voltage-free required-period ground truth of one trace: one fused
    /// unit pass per (kernel, design variant, seed, machine config),
    /// keyed *without* the voltage — every operating point on the voltage
    /// axis derives its ScaledTraceDelays view from this shared array
    /// (timing::scale_trace_delays), so a V-point grid pays one delay-model
    /// pass instead of V. `design.voltage_v` is ignored.
    std::shared_future<std::shared_ptr<const timing::UnitTraceDelays>> unit_trace_delays(
        const std::string& kernel, const timing::DesignConfig& design,
        const sim::MachineConfig& machine_config = {});

    /// Number of characterization flows actually executed (not pre-seeded,
    /// not cache hits). The determinism test asserts this is exactly the
    /// number of distinct operating points in a sweep.
    std::uint64_t characterizations_built() const { return characterizations_built_.load(); }

    /// Total requests answered from an already-present entry.
    std::uint64_t cache_hits() const { return cache_hits_.load(); }

    /// Guest simulations actually recorded as traces (not cache hits). A
    /// replay sweep's exactly-once contract is asserted on this counter:
    /// one per distinct (kernel, machine config), independent of how many
    /// policy/generator/voltage cells consume the trace.
    std::uint64_t traces_recorded() const { return traces_recorded_.load(); }

    /// Fused unit delay passes executed (not cache hits): exactly one per
    /// distinct (kernel, design variant, seed, machine config), independent
    /// of how many voltage points consume the array.
    std::uint64_t unit_delay_passes() const { return unit_delay_passes_.load(); }

    /// Requests for a unit delay artifact answered from an already-present
    /// entry — the per-voltage (and per-cell) reuse count of the shared
    /// arrays.
    std::uint64_t unit_delay_reuses() const { return unit_delay_reuses_.load(); }

    static std::string design_key(const timing::DesignConfig& design,
                                  const dta::AnalyzerConfig& analyzer_config);
    static std::string trace_key(const std::string& kernel,
                                 const sim::MachineConfig& machine_config);

private:
    /// Assembled characterization suite, shared by every operating point's
    /// characterization run (assembly is voltage-independent).
    std::shared_future<std::vector<assembler::Program>> characterization_programs();

    std::mutex mutex_;
    std::map<std::string, std::shared_future<assembler::Program>> programs_;
    std::map<std::string, std::shared_future<dta::DelayTable>> tables_;
    std::map<std::string, std::shared_future<sim::PipelineTrace>> traces_;
    std::map<std::string, std::shared_future<std::shared_ptr<const timing::UnitTraceDelays>>>
        unit_delays_;
    std::shared_future<std::vector<assembler::Program>> characterization_programs_;
    bool characterization_programs_started_ = false;
    std::atomic<std::uint64_t> characterizations_built_{0};
    std::atomic<std::uint64_t> cache_hits_{0};
    std::atomic<std::uint64_t> traces_recorded_{0};
    std::atomic<std::uint64_t> unit_delay_passes_{0};
    std::atomic<std::uint64_t> unit_delay_reuses_{0};
};

}  // namespace focs::runtime
