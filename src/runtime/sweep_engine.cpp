#include "runtime/sweep_engine.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <exception>
#include <mutex>
#include <optional>
#include <set>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "core/replay_engine.hpp"
#include "obs/span_tracer.hpp"
#include "timing/delay_model.hpp"

namespace focs::runtime {

namespace {

/// One expanded grid cell awaiting execution.
struct SweepJob {
    std::string kernel;
    core::PolicySpec policy;
    const GeneratorSpec* generator = nullptr;
    timing::DesignConfig design;
};

/// Nearest-rank percentile of an already-sorted ascending sample vector.
double nearest_rank(const std::vector<double>& sorted, double percentile) {
    if (sorted.empty()) return 0;
    const std::size_t rank = static_cast<std::size_t>(
        std::ceil(percentile / 100.0 * static_cast<double>(sorted.size())));
    return sorted[std::min(sorted.size() - 1, rank == 0 ? 0 : rank - 1)];
}

/// Grid coordinates of one cell, "kernel/policy/generator@<V>V" — the
/// fault-injection key of the eval.cell site and the identity stamped into
/// fail-fast errors and CLI failure summaries.
std::string cell_key(const SweepCell& cell) {
    char volts[32];
    std::snprintf(volts, sizeof volts, "%.6g", cell.voltage_v);
    return cell.kernel + "/" + cell.policy + "/" + cell.generator + "@" + volts + "V";
}

/// Classifies a thrown cell failure onto the cell: cancellation codes map
/// to CellStatus::kCancelled, everything else to kFailed (focs::Error
/// keeps its code; foreign exceptions read as plain evaluation failures).
void record_failure(SweepCell& cell, const std::exception& e) {
    ErrorCode code = ErrorCode::kEvaluation;
    if (const auto* error = dynamic_cast<const Error*>(&e);
        error != nullptr && error->code() != ErrorCode::kUnknown) {
        code = error->code();
    }
    cell.error = e.what();
    cell.error_code = code;
    cell.status = code == ErrorCode::kDeadline || code == ErrorCode::kCancelled
                      ? CellStatus::kCancelled
                      : CellStatus::kFailed;
}

}  // namespace

std::string eval_mode_name(EvalMode mode) {
    switch (mode) {
        case EvalMode::kReplay: return "replay";
        case EvalMode::kLive: return "live";
    }
    check(false, "unknown eval mode");
    return {};
}

EvalMode parse_eval_mode(const std::string& name) {
    if (name == "replay") return EvalMode::kReplay;
    if (name == "live") return EvalMode::kLive;
    throw Error("unknown evaluation mode '" + name + "' (replay|live)");
}

std::string cell_status_name(CellStatus status) {
    switch (status) {
        case CellStatus::kOk: return "ok";
        case CellStatus::kFailed: return "failed";
        case CellStatus::kCancelled: return "cancelled";
    }
    check(false, "unknown cell status");
    return {};
}

CellStatus parse_cell_status(const std::string& name) {
    if (name == "ok") return CellStatus::kOk;
    if (name == "failed") return CellStatus::kFailed;
    if (name == "cancelled") return CellStatus::kCancelled;
    throw Error("unknown cell status '" + name + "' (ok|failed|cancelled)");
}

std::string stable_text_hash(const std::string& text) {
    std::uint64_t hash = 0xcbf29ce484222325ull;
    for (const char c : text) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x00000100000001b3ull;
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "fnv1a:%016llx", static_cast<unsigned long long>(hash));
    return buf;
}

SweepEngine::SweepEngine(int jobs, std::shared_ptr<ArtifactCache> cache, EvalMode mode)
    : jobs_(jobs), cache_(std::move(cache)), mode_(mode) {
    if (!cache_) cache_ = std::make_shared<ArtifactCache>();
}

dta::AnalyzerConfig SweepEngine::analyzer_config_for(const SweepSpec& spec) {
    dta::AnalyzerConfig config;
    if (spec.lut_guard_ps >= 0) config.lut_guard_ps = spec.lut_guard_ps;
    if (spec.min_occurrences >= 0) config.min_occurrences = spec.min_occurrences;
    return config;
}

SweepResult SweepEngine::run(const SweepSpec& raw_spec, const SweepRunOptions& options) const {
    const auto start = std::chrono::steady_clock::now();
    const SweepSpec spec = raw_spec.resolved();
    check(!spec.kernels.empty(), "sweep has no kernels");

    const dta::AnalyzerConfig analyzer_config = analyzer_config_for(spec);
    const std::uint64_t tables_before = cache_->characterizations_built();
    const std::uint64_t nominal_before = cache_->nominal_passes();
    const std::uint64_t views_before = cache_->scaled_views();
    const std::uint64_t hits_before = cache_->cache_hits();
    const std::uint64_t traces_before = cache_->traces_recorded();
    const std::uint64_t unit_passes_before = cache_->unit_delay_passes();
    const std::uint64_t unit_reuses_before = cache_->unit_delay_reuses();
    // Per-class cache outcomes: capture the embedded registry's totals now
    // and stamp the delta into the result's metrics block afterwards.
    const auto classes = {ArtifactClass::kProgram, ArtifactClass::kDelayTable,
                          ArtifactClass::kTrace, ArtifactClass::kUnitDelays};
    std::array<ArtifactClassCounters, 4> class_before;
    for (const ArtifactClass artifact_class : classes) {
        class_before[static_cast<std::size_t>(artifact_class)] =
            cache_->class_counters(artifact_class);
    }

    // Expand the grid in deterministic declaration order: voltage-major so
    // one operating point's cells are adjacent, then kernel, policy,
    // generator.
    std::vector<SweepJob> jobs_list;
    jobs_list.reserve(spec.cell_count());
    for (const double voltage : spec.voltages_v) {
        for (const auto& kernel : spec.kernels) {
            for (const auto policy : spec.policies) {
                for (const auto& generator : spec.generators) {
                    jobs_list.push_back(
                        SweepJob{kernel, policy, &generator, spec.design_for(voltage)});
                }
            }
        }
    }

    // Generator fusion: the expansion above is generator-innermost, so the
    // cells of one (voltage, kernel, policy) column sit at adjacent
    // indices. In replay mode the pool schedules whole columns and fuses
    // each column's variants into a single pass over the shared trace (one
    // request fill serving every generator — the request array depends only
    // on the policy); live mode and single-variant columns evaluate per
    // cell. Either way every cell's result is byte-identical.
    const std::size_t group_size = std::max<std::size_t>(1, spec.generators.size());
    const bool fuse_columns = mode_ == EvalMode::kReplay && group_size > 1;
    const std::size_t unit_count =
        fuse_columns ? jobs_list.size() / group_size : jobs_list.size();

    // Jobs precedence: explicit engine argument (e.g. a --jobs flag) beats
    // the spec's `jobs =` line, which beats hardware concurrency. The pool
    // never exceeds the number of schedulable units (cells, or fused
    // columns).
    int worker_count = jobs_ > 0 ? jobs_ : spec.jobs;
    if (worker_count <= 0) worker_count = static_cast<int>(std::thread::hardware_concurrency());
    if (worker_count <= 0) worker_count = 1;
    worker_count = std::max(1, std::min<int>(worker_count, static_cast<int>(unit_count)));

    // Intra-flow pipeline parallelism for the characterization artifacts:
    // when the grid needs few distinct delay tables, most workers block on
    // the builders' shared_futures with nothing to steal — so hand the
    // idle parallelism to the batched characterization engine instead. One
    // operating point and 8 workers means the single characterization flow
    // runs its endpoint kernel on 8 threads; with as many distinct points
    // as workers, each flow stays serial and grid parallelism wins.
    std::set<std::string> operating_points;
    for (const SweepJob& job : jobs_list) {
        operating_points.insert(ArtifactCache::design_key(job.design, analyzer_config));
    }
    const int flow_threads = std::clamp(
        worker_count / std::max<int>(1, static_cast<int>(operating_points.size())), 1, 8);

    SweepResult result;
    result.cells.resize(jobs_list.size());
    result.jobs = worker_count;
    result.mode = eval_mode_name(mode_);
    result.spec_text = spec.serialize();
    result.spec_hash = stable_text_hash(result.spec_text);

    FOCS_OBS_SPAN(sweep_span, obs::global_tracer(), "sweep.run");
    sweep_span.arg("mode", result.mode)
        .arg("cells", static_cast<std::int64_t>(jobs_list.size()))
        .arg("jobs", static_cast<std::int64_t>(worker_count));

    std::atomic<std::size_t> cursor{0};
    // Set only in fail-fast mode: sibling workers observe it at their next
    // cell boundary and stop pulling jobs. Keep-going never sets it — a
    // failing cell must not starve its siblings (each failure stays on its
    // own cell).
    std::atomic<bool> abort_sweep{false};
    std::exception_ptr first_error;
    std::mutex error_mutex;

    // Stores `cell`'s failure as the sweep's first error and aborts the
    // pool (fail-fast only). Returns true when the caller must stop
    // pulling work. Fail-fast names the failing cell: the whole point of
    // aborting early is telling the user where.
    const auto abort_on_failure = [&](const SweepCell& cell) {
        if (options.failure_mode != FailureMode::kFailFast) return false;
        {
            std::lock_guard<std::mutex> lock(error_mutex);
            if (!first_error) {
                first_error = std::make_exception_ptr(Error(
                    "sweep cell " + cell_key(cell) + " failed: " + cell.error, cell.error_code));
            }
        }
        abort_sweep.store(true, std::memory_order_relaxed);
        return true;
    };

    // Labels a cell ahead of evaluation (so failed and cancelled cells
    // still carry their grid coordinates) and stamps its queue wait: the
    // job was runnable at sweep start, this is how long it sat before a
    // worker reached it.
    const auto label_cell = [&](std::size_t index,
                                std::chrono::steady_clock::time_point dequeued) -> SweepCell& {
        const SweepJob& job = jobs_list[index];
        SweepCell& cell = result.cells[index];
        cell.kernel = job.kernel;
        cell.policy = job.policy.label();
        cell.generator = job.generator->label();
        cell.voltage_v = job.design.voltage_v;
        cell.queue_wait_ms = std::chrono::duration<double, std::milli>(dequeued - start).count();
        return cell;
    };

    // Cell-boundary cancellation check: once the token fires the remaining
    // queue drains as cancelled cells without paying for any further
    // evaluation. Returns true when the cell was drained.
    const auto drain_if_cancelled = [&](SweepCell& cell) {
        if (options.cancel == nullptr || !options.cancel->cancelled()) return false;
        cell.error_code = options.cancel->reason();
        cell.error = cell.error_code == ErrorCode::kDeadline
                         ? "deadline exceeded before evaluation"
                         : "cancelled before evaluation";
        cell.status = CellStatus::kCancelled;
        return true;
    };

    // Per-cell evaluation (live mode and single-variant columns). Returns
    // false when the worker must stop pulling work (fail-fast abort).
    const auto evaluate_one = [&](std::size_t index) {
        const SweepJob& job = jobs_list[index];
        const auto dequeued = std::chrono::steady_clock::now();
        SweepCell& cell = label_cell(index, dequeued);
        if (drain_if_cancelled(cell)) return true;
        try {
            FOCS_OBS_SPAN(cell_span, obs::global_tracer(), "sweep.cell");
            cell_span.arg("kernel", job.kernel)
                .arg("policy", cell.policy)
                .arg("generator", cell.generator)
                .arg("voltage_v", job.design.voltage_v)
                .arg("queue_wait_ms", cell.queue_wait_ms);
            // The token rides into the inject point so an injected
            // delay rule cannot stall a cell past its deadline.
            FOCS_FAULT_POINT_CANCEL("eval.cell", cell_key(cell), options.cancel);
            // Shared artifacts: built once, then served from the cache.
            auto table_future =
                cache_->delay_table(job.design, analyzer_config, flow_threads, options.cancel,
                                    options.reference_characterization);

            core::DcaRunResult run;
            if (mode_ == EvalMode::kReplay) {
                // Record-once / replay-many: the trace is one guest
                // simulation per (kernel, machine config), the unit
                // delay array one fused pass per (kernel, variant) —
                // voltage-free, so every operating point of the grid
                // derives a ScaledTraceDelays view (one scalar) from
                // the same cache-hot array and this cell only pays the
                // devirtualized policy kernel.
                auto trace_future = cache_->trace(job.kernel);
                auto unit_future = cache_->unit_trace_delays(job.kernel, job.design);
                const sim::PipelineTrace& trace = trace_future.get();
                const dta::DelayTable& table = table_future.get();
                const timing::DelayCalculator calculator(job.design);
                const timing::ScaledTraceDelays delays =
                    timing::scale_trace_delays(unit_future.get(), calculator);

                const auto generator = job.generator->instantiate(delays.static_period_ps);
                core::ReplayOptions replay_options;
                replay_options.cancel = options.cancel;
                replay_options.force_scalar = options.force_scalar_replay;
                const core::ReplayEvaluationEngine replay(trace, delays, table, replay_options);
                run = replay.run(job.policy, job.generator->kind == GeneratorSpec::Kind::kIdeal
                                                 ? nullptr
                                                 : generator.get());
            } else {
                auto program_future = cache_->program(job.kernel);
                const assembler::Program& program = program_future.get();
                const dta::DelayTable& table = table_future.get();

                // Private mutable state: engine, policy and generator
                // are constructed per job inside evaluate_cell / here.
                const double static_period_ps =
                    timing::DelayCalculator(job.design).static_period_ps();
                const auto generator = job.generator->instantiate(static_period_ps);
                run = core::evaluate_cell(
                    job.design, table, program, job.policy,
                    job.generator->kind == GeneratorSpec::Kind::kIdeal ? nullptr
                                                                       : generator.get());
            }

            cell.result = std::move(run);
            cell.wall_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - dequeued)
                               .count();
            cell_span.arg("wall_ms", cell.wall_ms);
        } catch (const std::exception& e) {
            record_failure(cell, e);
            cell.wall_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - dequeued)
                               .count();
            if (abort_on_failure(cell)) return false;
        }
        return true;
    };

    // Fused evaluation of one (voltage, kernel, policy) column: every
    // per-cell isolation point survives — each cell runs its own
    // cancellation drain, eval.cell fault point, AND artifact acquisition
    // (fetch + wait), so a poisoned cache entry fails only the cell that
    // observed it and the next cell re-elects a fresh builder, exactly as
    // under per-cell scheduling. Only the survivors join the single fused
    // replay pass (one request fill serving every generator variant).
    // Returns false on fail-fast abort.
    const auto evaluate_column = [&](std::size_t group) {
        const std::size_t base = group * group_size;
        const std::size_t limit = std::min(jobs_list.size(), base + group_size);
        const auto dequeued = std::chrono::steady_clock::now();
        std::vector<std::size_t> live;
        live.reserve(limit - base);
        std::optional<std::shared_future<dta::DelayTable>> table_future;
        std::optional<std::shared_future<sim::PipelineTrace>> trace_future;
        std::optional<std::shared_future<std::shared_ptr<const timing::UnitTraceDelays>>>
            unit_future;
        for (std::size_t index = base; index < limit; ++index) {
            SweepCell& cell = label_cell(index, dequeued);
            if (drain_if_cancelled(cell)) continue;
            const SweepJob& job = jobs_list[index];
            try {
                // The token rides into the inject point so an injected
                // delay rule cannot stall a cell past its deadline.
                FOCS_FAULT_POINT_CANCEL("eval.cell", cell_key(cell), options.cancel);
                // One fetch-and-wait triple per cell keeps the cache's
                // per-class serving accounting identical to per-cell
                // scheduling; on success the later fetches alias the
                // earlier ones (the artifacts are built exactly once).
                auto cell_table =
                    cache_->delay_table(job.design, analyzer_config, flow_threads, options.cancel,
                                        options.reference_characterization);
                auto cell_trace = cache_->trace(job.kernel);
                auto cell_unit = cache_->unit_trace_delays(job.kernel, job.design);
                cell_table.get();
                cell_trace.get();
                cell_unit.get();
                table_future = std::move(cell_table);
                trace_future = std::move(cell_trace);
                unit_future = std::move(cell_unit);
                live.push_back(index);
            } catch (const std::exception& e) {
                record_failure(cell, e);
                if (abort_on_failure(cell)) return false;
            }
        }
        if (live.empty()) return true;
        try {
            const SweepJob& job = jobs_list[live.front()];
            FOCS_OBS_SPAN(column_span, obs::global_tracer(), "sweep.column");
            column_span.arg("kernel", job.kernel)
                .arg("policy", result.cells[live.front()].policy)
                .arg("voltage_v", job.design.voltage_v)
                .arg("variants", static_cast<std::int64_t>(live.size()));
            const sim::PipelineTrace& trace = trace_future->get();
            const dta::DelayTable& table = table_future->get();
            const timing::DelayCalculator calculator(job.design);
            const timing::ScaledTraceDelays delays =
                timing::scale_trace_delays(unit_future->get(), calculator);

            // Per-variant generators (mutable; nullptr = ideal), in the
            // column's declaration order.
            std::vector<std::unique_ptr<clocking::ClockGenerator>> owned;
            std::vector<clocking::ClockGenerator*> variants;
            owned.reserve(live.size());
            variants.reserve(live.size());
            for (const std::size_t index : live) {
                const SweepJob& variant_job = jobs_list[index];
                owned.push_back(variant_job.generator->instantiate(delays.static_period_ps));
                variants.push_back(variant_job.generator->kind == GeneratorSpec::Kind::kIdeal
                                       ? nullptr
                                       : owned.back().get());
            }
            core::ReplayOptions replay_options;
            replay_options.cancel = options.cancel;
            replay_options.force_scalar = options.force_scalar_replay;
            const core::ReplayEvaluationEngine replay(trace, delays, table, replay_options);
            auto fused = replay.run_fused(job.policy, variants);

            // The fused pass is shared work: every participating cell gets
            // the column's wall time (run-dependent fields either way).
            const double wall = std::chrono::duration<double, std::milli>(
                                    std::chrono::steady_clock::now() - dequeued)
                                    .count();
            for (std::size_t k = 0; k < live.size(); ++k) {
                SweepCell& cell = result.cells[live[k]];
                cell.result = std::move(fused[k]);
                cell.wall_ms = wall;
            }
            column_span.arg("wall_ms", wall);
        } catch (const std::exception& e) {
            const double wall = std::chrono::duration<double, std::milli>(
                                    std::chrono::steady_clock::now() - dequeued)
                                    .count();
            for (const std::size_t index : live) {
                record_failure(result.cells[index], e);
                result.cells[index].wall_ms = wall;
            }
            if (abort_on_failure(result.cells[live.front()])) return false;
        }
        return true;
    };

    const auto worker = [&] {
        while (!abort_sweep.load(std::memory_order_relaxed)) {
            const std::size_t index = cursor.fetch_add(1, std::memory_order_relaxed);
            if (index >= unit_count) return;
            if (fuse_columns) {
                if (!evaluate_column(index)) return;
            } else {
                if (!evaluate_one(index)) return;
            }
        }
    };

    if (worker_count <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(static_cast<std::size_t>(worker_count));
        for (int i = 0; i < worker_count; ++i) pool.emplace_back(worker);
        for (auto& thread : pool) thread.join();
    }
    if (first_error) std::rethrow_exception(first_error);

    // Aggregate over surviving cells only: a failed cell's zeroed result
    // must not drag the sweep's means toward 0.
    for (const auto& cell : result.cells) {
        switch (cell.status) {
            case CellStatus::kOk: ++result.cells_ok; break;
            case CellStatus::kFailed: ++result.cells_failed; break;
            case CellStatus::kCancelled: ++result.cells_cancelled; break;
        }
        if (!cell.ok()) continue;
        result.mean_eff_freq_mhz += cell.result.eff_freq_mhz;
        result.mean_speedup += cell.result.speedup_vs_static;
        result.total_violations += cell.result.timing_violations;
    }
    if (result.cells_ok > 0) {
        result.mean_eff_freq_mhz /= static_cast<double>(result.cells_ok);
        result.mean_speedup /= static_cast<double>(result.cells_ok);
    }
    result.characterizations = cache_->characterizations_built() - tables_before;
    result.nominal_passes = cache_->nominal_passes() - nominal_before;
    result.scaled_views = cache_->scaled_views() - views_before;
    result.cache_hits = cache_->cache_hits() - hits_before;
    result.guest_simulations = mode_ == EvalMode::kReplay
                                   ? cache_->traces_recorded() - traces_before
                                   : static_cast<std::uint64_t>(result.cells.size());
    result.unit_delay_passes = cache_->unit_delay_passes() - unit_passes_before;
    result.unit_delay_reuses = cache_->unit_delay_reuses() - unit_reuses_before;

    // Metrics block: per-class cache deltas over this sweep plus the exact
    // per-cell wall-time distribution.
    const auto class_delta = [&](ArtifactClass artifact_class) {
        const ArtifactClassCounters now = cache_->class_counters(artifact_class);
        const ArtifactClassCounters& before =
            class_before[static_cast<std::size_t>(artifact_class)];
        return ArtifactClassCounters{now.miss - before.miss, now.hit - before.hit,
                                     now.wait - before.wait};
    };
    result.metrics.program = class_delta(ArtifactClass::kProgram);
    result.metrics.delay_table = class_delta(ArtifactClass::kDelayTable);
    result.metrics.trace = class_delta(ArtifactClass::kTrace);
    result.metrics.unit_delays = class_delta(ArtifactClass::kUnitDelays);
    std::vector<double> walls;
    walls.reserve(result.cells.size());
    for (const auto& cell : result.cells) {
        walls.push_back(cell.wall_ms);
        result.metrics.queue_wait_ms_total += cell.queue_wait_ms;
    }
    std::sort(walls.begin(), walls.end());
    result.metrics.cell_wall_ms_p50 = nearest_rank(walls, 50);
    result.metrics.cell_wall_ms_p95 = nearest_rank(walls, 95);
    result.metrics.cell_wall_ms_max = walls.empty() ? 0 : walls.back();
    result.wall_ms = std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                               start)
                         .count();
    return result;
}

}  // namespace focs::runtime
