#include "runtime/sweep_spec.hpp"

#include <cstdio>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "workloads/kernel.hpp"

namespace focs::runtime {

namespace {

std::string format_double(double value) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    return buf;
}

double parse_double(const std::string& text) {
    try {
        std::size_t pos = 0;
        const double value = std::stod(text, &pos);
        check(pos == text.size(), "trailing characters in number '" + text + "'");
        return value;
    } catch (const std::invalid_argument&) {
        throw Error("malformed number '" + text + "' in sweep spec");
    } catch (const std::out_of_range&) {
        throw Error("number out of range '" + text + "' in sweep spec");
    }
}

std::vector<std::string> split_list(const std::string& value) {
    std::vector<std::string> items;
    for (const auto& piece : split(value, ',')) {
        if (!piece.empty()) items.push_back(piece);
    }
    return items;
}

}  // namespace

std::string GeneratorSpec::label() const {
    switch (kind) {
        case Kind::kIdeal: return "ideal";
        case Kind::kQuantized: return "taps:" + std::to_string(num_taps);
        case Kind::kPllBank: {
            std::string label = "pll:";
            for (std::size_t i = 0; i < periods_ps.size(); ++i) {
                if (i > 0) label += '/';
                label += format_double(periods_ps[i]);
            }
            label += ':' + std::to_string(min_dwell_cycles);
            return label;
        }
    }
    check(false, "unknown generator kind");
    return {};
}

GeneratorSpec GeneratorSpec::parse(const std::string& text) {
    GeneratorSpec spec;
    if (text == "ideal") return spec;
    if (starts_with(text, "taps:")) {
        spec.kind = Kind::kQuantized;
        const auto taps = parse_int(text.substr(5));
        check(taps.has_value() && *taps >= 2, "generator '" + text + "': need taps:N with N >= 2");
        spec.num_taps = static_cast<int>(*taps);
        return spec;
    }
    if (starts_with(text, "pll:")) {
        const auto parts = split(text.substr(4), ':');
        check(parts.size() == 2, "generator '" + text + "': want pll:P1/P2/...:DWELL");
        spec.kind = Kind::kPllBank;
        for (const auto& period : split(parts[0], '/')) {
            spec.periods_ps.push_back(parse_double(period));
        }
        check(!spec.periods_ps.empty(), "generator '" + text + "': no PLL periods");
        const auto dwell = parse_int(parts[1]);
        check(dwell.has_value() && *dwell >= 0, "generator '" + text + "': bad dwell");
        spec.min_dwell_cycles = static_cast<int>(*dwell);
        return spec;
    }
    throw Error("unknown generator '" + text + "' (ideal|taps:N|pll:P1/P2/...:DWELL)");
}

std::unique_ptr<clocking::ClockGenerator> GeneratorSpec::instantiate(
    double static_period_ps) const {
    switch (kind) {
        case Kind::kIdeal: return std::make_unique<clocking::IdealClockGenerator>();
        case Kind::kQuantized:
            return std::make_unique<clocking::QuantizedClockGenerator>(
                clocking::QuantizedClockGenerator::for_static_period(static_period_ps,
                                                                     num_taps));
        case Kind::kPllBank:
            return std::make_unique<clocking::PllBankClockGenerator>(periods_ps,
                                                                     min_dwell_cycles);
    }
    check(false, "unknown generator kind");
    return nullptr;
}

SweepSpec SweepSpec::resolved() const {
    SweepSpec out = *this;
    if (out.kernels.empty()) {
        for (const auto& kernel : workloads::benchmark_suite()) out.kernels.push_back(kernel.name);
    }
    if (out.policies.empty()) out.policies.push_back(core::PolicySpec{});
    if (out.generators.empty()) out.generators.push_back(GeneratorSpec{});
    if (out.voltages_v.empty()) out.voltages_v.push_back(timing::DesignConfig{}.voltage_v);
    return out;
}

std::size_t SweepSpec::cell_count() const {
    const SweepSpec spec = resolved();
    return spec.kernels.size() * spec.policies.size() * spec.generators.size() *
           spec.voltages_v.size();
}

timing::DesignConfig SweepSpec::design_for(double voltage_v) const {
    timing::DesignConfig design;
    design.variant = variant;
    design.voltage_v = voltage_v;
    return design;
}

SweepSpec SweepSpec::parse(const std::string& text) {
    SweepSpec spec;
    int line_no = 0;
    for (const auto& raw_line : split(text, '\n')) {
        ++line_no;
        std::string line = raw_line;
        if (const auto hash = line.find('#'); hash != std::string::npos) {
            line = line.substr(0, hash);
        }
        line = std::string(trim(line));
        if (line.empty()) continue;
        const auto eq = line.find('=');
        check(eq != std::string::npos,
              "sweep spec line " + std::to_string(line_no) + ": expected 'key = value'");
        const std::string key = std::string(trim(line.substr(0, eq)));
        const std::string value = std::string(trim(line.substr(eq + 1)));
        if (key == "kernels") {
            spec.kernels = split_list(value);
        } else if (key == "policies") {
            for (const auto& name : split_list(value)) {
                spec.policies.push_back(core::PolicySpec::parse(name));
            }
        } else if (key == "generators") {
            for (const auto& label : split_list(value)) {
                spec.generators.push_back(GeneratorSpec::parse(label));
            }
        } else if (key == "voltages") {
            for (const auto& voltage : split_list(value)) {
                spec.voltages_v.push_back(parse_double(voltage));
            }
        } else if (key == "variant") {
            if (value == "conventional") {
                spec.variant = timing::DesignVariant::kConventional;
            } else if (value == "critical-range") {
                spec.variant = timing::DesignVariant::kCriticalRangeOptimized;
            } else {
                throw Error("unknown variant '" + value + "' (conventional|critical-range)");
            }
        } else if (key == "guard_ps") {
            spec.lut_guard_ps = parse_double(value);
        } else if (key == "min_occurrences") {
            const auto n = parse_int(value);
            check(n.has_value() && *n >= 0, "bad min_occurrences '" + value + "'");
            spec.min_occurrences = static_cast<int>(*n);
        } else if (key == "jobs") {
            const auto n = parse_int(value);
            check(n.has_value() && *n >= 0, "bad jobs '" + value + "'");
            spec.jobs = static_cast<int>(*n);
        } else {
            throw Error("unknown sweep spec key '" + key + "'");
        }
    }
    return spec;
}

std::string SweepSpec::serialize() const {
    std::string out;
    const auto join = [](const std::vector<std::string>& items) {
        std::string joined;
        for (std::size_t i = 0; i < items.size(); ++i) {
            if (i > 0) joined += ", ";
            joined += items[i];
        }
        return joined;
    };
    if (!kernels.empty()) out += "kernels = " + join(kernels) + "\n";
    if (!policies.empty()) {
        std::vector<std::string> names;
        for (const auto& policy : policies) names.push_back(policy.label());
        out += "policies = " + join(names) + "\n";
    }
    if (!generators.empty()) {
        std::vector<std::string> labels;
        for (const auto& generator : generators) labels.push_back(generator.label());
        out += "generators = " + join(labels) + "\n";
    }
    if (!voltages_v.empty()) {
        std::vector<std::string> values;
        for (const auto voltage : voltages_v) values.push_back(format_double(voltage));
        out += "voltages = " + join(values) + "\n";
    }
    out += std::string("variant = ") +
           (variant == timing::DesignVariant::kConventional ? "conventional" : "critical-range") +
           "\n";
    if (lut_guard_ps >= 0) out += "guard_ps = " + format_double(lut_guard_ps) + "\n";
    if (min_occurrences >= 0) out += "min_occurrences = " + std::to_string(min_occurrences) + "\n";
    if (jobs > 0) out += "jobs = " + std::to_string(jobs) + "\n";
    return out;
}

}  // namespace focs::runtime
