// JSON serialization of sweep results.
//
// The bench trajectory (policy search, training corpora à la the unified
// DFS learning platform, cross-run comparisons) consumes sweep output as
// data, not as pretty-printed tables — so results are written as a stable,
// dependency-free JSON document. Formatting is deterministic (fixed key
// order, "%.17g" doubles, i.e. shortest round-trippable form), which makes
// byte-comparison of two runs a valid determinism check. from_json parses
// exactly the documents to_json emits (plus whitespace), enough for
// lossless round-trips and for downstream tools to re-load result sets.
#pragma once

#include <string>

#include "runtime/sweep_engine.hpp"

namespace focs::runtime {

/// Deterministic JSON scalar formatting shared by every artifact emitter
/// (sweep results, bench reports): "%.17g" doubles (shortest round-
/// trippable form) and fully escaped strings. Throws focs::Error on
/// non-finite numbers — JSON has no inf/nan, and silently clamping would
/// hide bugs.
std::string json_number(double value);
std::string json_string(const std::string& value);

/// Serializes a sweep result (schema "focs-sweep-v6", which adds the
/// characterization-collapse counters to v5: header nominal_passes /
/// scaled_views, stamped alongside the other run-dependent counters). v5
/// added the fault-tolerance vocabulary (header cells_ok / cells_failed /
/// cells_cancelled counts and per-cell status / error_code / error
/// fields); failure fields are emitted only when present — a fully
/// successful sweep's document differs from v4 solely in the schema
/// string, so canonical byte-comparison across job counts and evaluation
/// modes stays valid. The originating spec text and its stable hash are
/// always stamped into the header so cached results.json files stay
/// traceable. `include_timing` controls the run-dependent fields
/// (wall_ms, jobs, mode, cache counters, the metrics block and the
/// per-cell timing); switch it off to obtain the canonical document.
std::string to_json(const SweepResult& result, bool include_timing = true);

/// Parses a document produced by to_json (v6, the pre-characterization-
/// collapse v5, the pre-fault-tolerance v4, the pre-observability v3, the
/// pre-unit-delays v2, or the pre-replay v1
/// without the spec stamp). Throws focs::Error on malformed input. Header
/// fields absent from the document are left zero/empty; per-status cell
/// counts are derived from the cells when the header lacks them, so
/// documents of every vintage report cells_ok consistently.
SweepResult from_json(const std::string& text);

}  // namespace focs::runtime
