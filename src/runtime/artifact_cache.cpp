#include "runtime/artifact_cache.hpp"

#include <cstdio>
#include <exception>
#include <memory>
#include <utility>

#include "asm/assembler.hpp"
#include "core/flows.hpp"
#include "workloads/kernel.hpp"

namespace focs::runtime {

namespace {

/// Runs `build` and publishes its value (or exception) through `promise`.
template <typename T, typename Build>
void fulfil(std::promise<T>& promise, Build&& build) {
    try {
        promise.set_value(build());
    } catch (...) {
        promise.set_exception(std::current_exception());
    }
}

}  // namespace

std::string ArtifactCache::design_key(const timing::DesignConfig& design,
                                      const dta::AnalyzerConfig& analyzer_config) {
    char buf[160];
    std::snprintf(buf, sizeof buf, "v%d:%.6f:%llu:g%.6f:m%d",
                  static_cast<int>(design.variant), design.voltage_v,
                  static_cast<unsigned long long>(design.seed), analyzer_config.lut_guard_ps,
                  analyzer_config.min_occurrences);
    return buf;
}

std::string ArtifactCache::trace_key(const std::string& kernel,
                                     const sim::MachineConfig& machine_config) {
    char buf[160];
    std::snprintf(buf, sizeof buf, ":i%u:d%u:%u:w%llu:l%d", machine_config.imem_size,
                  machine_config.dmem_base, machine_config.dmem_size,
                  static_cast<unsigned long long>(machine_config.max_cycles),
                  machine_config.pipeline.div_latency);
    return kernel + buf;
}

std::shared_future<assembler::Program> ArtifactCache::program(const std::string& kernel) {
    std::promise<assembler::Program> promise;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (const auto it = programs_.find(kernel); it != programs_.end()) {
            cache_hits_.fetch_add(1);
            return it->second;
        }
        programs_.emplace(kernel, promise.get_future().share());
    }
    // This thread won the build; assemble outside the lock.
    fulfil(promise, [&] { return assembler::assemble(workloads::find_kernel(kernel).source); });
    std::lock_guard<std::mutex> lock(mutex_);
    return programs_.at(kernel);
}

std::shared_future<std::vector<assembler::Program>> ArtifactCache::characterization_programs() {
    std::promise<std::vector<assembler::Program>> promise;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (characterization_programs_started_) return characterization_programs_;
        characterization_programs_ = promise.get_future().share();
        characterization_programs_started_ = true;
    }
    fulfil(promise,
           [] { return workloads::assemble_programs(workloads::characterization_suite()); });
    std::lock_guard<std::mutex> lock(mutex_);
    return characterization_programs_;
}

std::shared_future<dta::DelayTable> ArtifactCache::delay_table(
    const timing::DesignConfig& design, const dta::AnalyzerConfig& analyzer_config,
    int flow_threads) {
    const std::string key = design_key(design, analyzer_config);
    std::promise<dta::DelayTable> promise;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (const auto it = tables_.find(key); it != tables_.end()) {
            cache_hits_.fetch_add(1);
            return it->second;
        }
        tables_.emplace(key, promise.get_future().share());
    }
    const auto programs = characterization_programs();
    fulfil(promise, [&] {
        const core::CharacterizationFlow flow(design, analyzer_config);
        core::CharacterizationOptions options;
        options.threads = flow_threads;
        dta::DelayTable table = flow.run(programs.get(), options).table;
        characterizations_built_.fetch_add(1);
        return table;
    });
    std::lock_guard<std::mutex> lock(mutex_);
    return tables_.at(key);
}

std::shared_future<sim::PipelineTrace> ArtifactCache::trace(
    const std::string& kernel, const sim::MachineConfig& machine_config) {
    const std::string key = trace_key(kernel, machine_config);
    std::promise<sim::PipelineTrace> promise;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (const auto it = traces_.find(key); it != traces_.end()) {
            cache_hits_.fetch_add(1);
            return it->second;
        }
        traces_.emplace(key, promise.get_future().share());
    }
    const auto program = this->program(kernel);
    fulfil(promise, [&] {
        sim::PipelineTrace trace = sim::record_trace(program.get(), machine_config);
        traces_recorded_.fetch_add(1);
        return trace;
    });
    std::lock_guard<std::mutex> lock(mutex_);
    return traces_.at(key);
}

std::shared_future<std::shared_ptr<const timing::UnitTraceDelays>>
ArtifactCache::unit_trace_delays(const std::string& kernel, const timing::DesignConfig& design,
                                 const sim::MachineConfig& machine_config) {
    // Voltage-free key: the unit pass depends on the trace, the variant's
    // calibration bands and the jitter seed only, so every voltage point of
    // a sweep resolves to the same entry.
    char design_part[64];
    std::snprintf(design_part, sizeof design_part, "@u%d:%llu",
                  static_cast<int>(design.variant),
                  static_cast<unsigned long long>(design.seed));
    const std::string key = trace_key(kernel, machine_config) + design_part;
    std::promise<std::shared_ptr<const timing::UnitTraceDelays>> promise;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (const auto it = unit_delays_.find(key); it != unit_delays_.end()) {
            cache_hits_.fetch_add(1);
            unit_delay_reuses_.fetch_add(1);
            return it->second;
        }
        unit_delays_.emplace(key, promise.get_future().share());
    }
    const auto trace = this->trace(kernel, machine_config);
    fulfil(promise, [&]() -> std::shared_ptr<const timing::UnitTraceDelays> {
        const timing::DelayCalculator calculator(design);
        auto unit = std::make_shared<const timing::UnitTraceDelays>(
            timing::compute_unit_trace_delays(calculator, trace.get().records));
        unit_delay_passes_.fetch_add(1);
        return unit;
    });
    std::lock_guard<std::mutex> lock(mutex_);
    return unit_delays_.at(key);
}

void ArtifactCache::put_delay_table(const timing::DesignConfig& design,
                                    const dta::AnalyzerConfig& analyzer_config,
                                    dta::DelayTable table) {
    const std::string key = design_key(design, analyzer_config);
    std::promise<dta::DelayTable> promise;
    promise.set_value(std::move(table));
    std::lock_guard<std::mutex> lock(mutex_);
    tables_.insert_or_assign(key, promise.get_future().share());
}

}  // namespace focs::runtime
