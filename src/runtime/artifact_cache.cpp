#include "runtime/artifact_cache.hpp"

#include <chrono>
#include <cstdio>
#include <exception>
#include <memory>
#include <utility>

#include "asm/assembler.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/strings.hpp"
#include "core/flows.hpp"
#include "obs/span_tracer.hpp"
#include "timing/cell_library.hpp"
#include "workloads/kernel.hpp"

namespace focs::runtime {

namespace {

double ms_since(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
        .count();
}

/// Byte-accounting dispatch: every artifact class exposes its own
/// deterministic estimated_bytes().
std::uint64_t estimated_bytes_of(const assembler::Program& program) {
    return program.estimated_bytes();
}
std::uint64_t estimated_bytes_of(const dta::DelayTable& table) { return table.estimated_bytes(); }
std::uint64_t estimated_bytes_of(const sim::PipelineTrace& trace) {
    return trace.estimated_bytes();
}
std::uint64_t estimated_bytes_of(const std::shared_ptr<const timing::UnitTraceDelays>& unit) {
    return unit == nullptr ? 0 : unit->estimated_bytes();
}
std::uint64_t estimated_bytes_of(const std::shared_ptr<const dta::DelayTable>& table) {
    return table == nullptr ? 0 : table->estimated_bytes();
}

}  // namespace

std::string artifact_class_name(ArtifactClass artifact_class) {
    switch (artifact_class) {
        case ArtifactClass::kProgram: return "program";
        case ArtifactClass::kDelayTable: return "delay_table";
        case ArtifactClass::kTrace: return "trace";
        case ArtifactClass::kUnitDelays: return "unit_delays";
    }
    check(false, "unknown artifact class");
    return {};
}

ArtifactCache::ArtifactCache(int max_build_attempts)
    : max_build_attempts_(max_build_attempts < 1 ? 1 : max_build_attempts) {
    for (const ArtifactClass artifact_class :
         {ArtifactClass::kProgram, ArtifactClass::kDelayTable, ArtifactClass::kTrace,
          ArtifactClass::kUnitDelays}) {
        const std::string prefix = "cache." + artifact_class_name(artifact_class) + ".";
        ClassIds& ids = ids_[static_cast<std::size_t>(artifact_class)];
        ids.miss = metrics_.counter(prefix + "miss");
        ids.hit = metrics_.counter(prefix + "hit");
        ids.wait = metrics_.counter(prefix + "wait");
        ids.built = metrics_.counter(prefix + "built");
        ids.build_ms = metrics_.histogram(prefix + "build_ms", obs::latency_ms_bounds());
        ids.build_failed = metrics_.counter(prefix + "build_failed");
        ids.retried = metrics_.counter(prefix + "retried");
        ids.evicted = metrics_.counter(prefix + "evicted");
        ids.evicted_lru = metrics_.counter(prefix + "evicted_lru");
    }
    nominal_passes_id_ = metrics_.counter("cache.delay_table.nominal_passes");
    scaled_views_id_ = metrics_.counter("cache.delay_table.scaled_views");
    reference_passes_id_ = metrics_.counter("cache.delay_table.reference_passes");
}

template <typename T>
void ArtifactCache::count_found(ArtifactClass artifact_class,
                                const std::shared_future<T>& future) {
    const bool ready = future.wait_for(std::chrono::seconds(0)) == std::future_status::ready;
    metrics_.add(ready ? ids(artifact_class).hit : ids(artifact_class).wait);
}

std::uint64_t ArtifactCache::next_build_attempt(ArtifactClass artifact_class,
                                                const std::string& key) {
    std::lock_guard<std::mutex> lock(mutex_);
    return build_attempts_[artifact_class_name(artifact_class) + "/" + key]++;
}

template <typename T, typename Build>
void ArtifactCache::run_build(ArtifactClass artifact_class, const std::string& key,
                              std::map<std::string, Entry<T>>& entries, std::promise<T>& promise,
                              Build&& build, [[maybe_unused]] const CancellationToken* cancel) {
    const ClassIds& ids = this->ids(artifact_class);
    const std::string name = artifact_class_name(artifact_class);
    const std::string site = "build." + name;
    std::exception_ptr failure;
    for (int attempt = 0; attempt < max_build_attempts_; ++attempt) {
        if (attempt > 0) metrics_.add(ids.retried);
        try {
            FOCS_FAULT_POINT_AT_CANCEL(site, key, next_build_attempt(artifact_class, key),
                                       cancel);
            T value = build();
            const std::uint64_t bytes = estimated_bytes_of(value);
            // Publish first (waiters unblock), then account: the entry is
            // pinned until make_resident links it into the LRU list.
            promise.set_value(std::move(value));
            metrics_.add(ids.built);
            make_resident(artifact_class, key, entries, bytes);
            return;
        } catch (const CancelledError& e) {
            // Cancellation is terminal by design: the caller asked to stop,
            // so retrying would only burn the deadline further.
            metrics_.add(ids.build_failed);
            failure = std::make_exception_ptr(CancelledError(
                "artifact build cancelled (" + name + " '" + key + "'): " + e.what(), e.code()));
            break;
        } catch (const std::exception& e) {
            metrics_.add(ids.build_failed);
            failure = std::make_exception_ptr(
                Error("artifact build failed (" + name + " '" + key + "'): " + e.what(),
                      ErrorCode::kArtifactBuild));
        } catch (...) {
            metrics_.add(ids.build_failed);
            failure = std::make_exception_ptr(Error("artifact build failed (" + name + " '" +
                                                        key + "'): unknown exception",
                                                    ErrorCode::kArtifactBuild));
        }
    }
    // Terminal failure: publish the classified exception to the waiters
    // already parked on the shared_future, then evict the entry under the
    // mutex so the *next* requester of this key re-elects a builder instead
    // of inheriting the stale exception. Resident entries are left alone:
    // the slot was replaced (pre-seeded) while this build was failing.
    promise.set_exception(failure);
    metrics_.add(ids.evicted);
    std::lock_guard<std::mutex> lock(mutex_);
    if (const auto it = entries.find(key); it != entries.end() && !it->second.resident) {
        entries.erase(it);
    }
}

template <typename T>
void ArtifactCache::make_resident(ArtifactClass artifact_class, const std::string& key,
                                  std::map<std::string, Entry<T>>& entries, std::uint64_t bytes) {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries.find(key);
    if (it == entries.end() || it->second.resident) return;
    it->second.bytes = bytes;
    it->second.resident = true;
    it->second.lru = lru_.insert(lru_.end(), LruNode{artifact_class, key});
    cached_bytes_ += bytes;
    evict_over_budget_locked();
}

template <typename T>
void ArtifactCache::unlink_locked(Entry<T>& entry) {
    cached_bytes_ -= entry.bytes;
    lru_.erase(entry.lru);
    entry.bytes = 0;
    entry.resident = false;
}

void ArtifactCache::evict_over_budget_locked() {
    if (byte_budget_ == 0) return;
    const auto evict = [&](auto& entries, const LruNode& victim) {
        const auto it = entries.find(victim.key);
        check(it != entries.end(), "LRU node without a matching cache entry");
        cached_bytes_ -= it->second.bytes;
        entries.erase(it);
        lru_.pop_front();
        metrics_.add(ids(victim.artifact_class).evicted_lru);
    };
    // The newest entry (LRU back) is never evicted here: a single artifact
    // larger than the whole budget stays resident until the next entry
    // completes and pushes it to the front.
    while (cached_bytes_ > byte_budget_ && lru_.size() > 1) {
        const LruNode victim = lru_.front();
        switch (victim.artifact_class) {
            case ArtifactClass::kProgram: evict(programs_, victim); break;
            case ArtifactClass::kDelayTable:
                // Per-voltage tables and the shared nominal entry live in
                // separate maps under the same class; the key prefix tells
                // them apart.
                if (starts_with(victim.key, "nominal/")) {
                    evict(nominal_tables_, victim);
                } else {
                    evict(tables_, victim);
                }
                break;
            case ArtifactClass::kTrace: evict(traces_, victim); break;
            case ArtifactClass::kUnitDelays: evict(unit_delays_, victim); break;
        }
    }
}

void ArtifactCache::set_byte_budget(std::uint64_t bytes) {
    std::lock_guard<std::mutex> lock(mutex_);
    byte_budget_ = bytes;
    evict_over_budget_locked();
}

std::uint64_t ArtifactCache::byte_budget() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return byte_budget_;
}

std::uint64_t ArtifactCache::cached_bytes() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return cached_bytes_;
}

std::uint64_t ArtifactCache::lru_evictions() const {
    std::uint64_t total = 0;
    for (const ArtifactClass artifact_class :
         {ArtifactClass::kProgram, ArtifactClass::kDelayTable, ArtifactClass::kTrace,
          ArtifactClass::kUnitDelays}) {
        total += metrics_.counter_value(ids(artifact_class).evicted_lru);
    }
    return total;
}

std::string ArtifactCache::design_key(const timing::DesignConfig& design,
                                      const dta::AnalyzerConfig& analyzer_config) {
    char buf[160];
    std::snprintf(buf, sizeof buf, "v%d:%.6f:%llu:g%.6f:m%d",
                  static_cast<int>(design.variant), design.voltage_v,
                  static_cast<unsigned long long>(design.seed), analyzer_config.lut_guard_ps,
                  analyzer_config.min_occurrences);
    return buf;
}

std::string ArtifactCache::nominal_key(const timing::DesignConfig& design,
                                       const dta::AnalyzerConfig& analyzer_config) {
    // Voltage-free: one nominal characterization serves the whole voltage
    // axis of a (variant, seed, analyzer config) combination.
    char buf[160];
    std::snprintf(buf, sizeof buf, "nominal/v%d:%llu:g%.6f:m%d",
                  static_cast<int>(design.variant),
                  static_cast<unsigned long long>(design.seed), analyzer_config.lut_guard_ps,
                  analyzer_config.min_occurrences);
    return buf;
}

std::string ArtifactCache::trace_key(const std::string& kernel,
                                     const sim::MachineConfig& machine_config) {
    char buf[160];
    std::snprintf(buf, sizeof buf, ":i%u:d%u:%u:w%llu:l%d", machine_config.imem_size,
                  machine_config.dmem_base, machine_config.dmem_size,
                  static_cast<unsigned long long>(machine_config.max_cycles),
                  machine_config.pipeline.div_latency);
    return kernel + buf;
}

std::shared_future<assembler::Program> ArtifactCache::program(const std::string& kernel) {
    std::promise<assembler::Program> promise;
    std::shared_future<assembler::Program> future = promise.get_future().share();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (const auto it = programs_.find(kernel); it != programs_.end()) {
            count_found(ArtifactClass::kProgram, it->second.future);
            if (it->second.resident) lru_.splice(lru_.end(), lru_, it->second.lru);
            return it->second.future;
        }
        programs_.emplace(kernel, Entry<assembler::Program>{future});
    }
    // This thread won the build; assemble outside the lock.
    metrics_.add(ids(ArtifactClass::kProgram).miss);
    const auto start = std::chrono::steady_clock::now();
    FOCS_OBS_SPAN(span, obs::global_tracer(), "cache.build.program");
    span.arg("key", kernel);
    run_build(ArtifactClass::kProgram, kernel, programs_, promise, [&] {
        return assembler::assemble(workloads::find_kernel(kernel).source);
    });
    metrics_.observe(ids(ArtifactClass::kProgram).build_ms, ms_since(start));
    return future;
}

std::shared_future<std::vector<assembler::Program>> ArtifactCache::characterization_programs() {
    std::promise<std::vector<assembler::Program>> promise;
    std::shared_future<std::vector<assembler::Program>> future = promise.get_future().share();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (characterization_programs_started_) return characterization_programs_;
        characterization_programs_ = future;
        characterization_programs_started_ = true;
    }
    try {
        promise.set_value(workloads::assemble_programs(workloads::characterization_suite()));
    } catch (...) {
        // Publish to current waiters, then clear the slot so a later
        // delay-table build attempt re-runs the suite assembly.
        promise.set_exception(std::current_exception());
        std::lock_guard<std::mutex> lock(mutex_);
        characterization_programs_started_ = false;
        characterization_programs_ = {};
    }
    return future;
}

std::shared_future<dta::DelayTable> ArtifactCache::delay_table(
    const timing::DesignConfig& design, const dta::AnalyzerConfig& analyzer_config,
    int flow_threads, const CancellationToken* cancel, bool reference_characterization) {
    const std::string key = design_key(design, analyzer_config);
    std::promise<dta::DelayTable> promise;
    std::shared_future<dta::DelayTable> future = promise.get_future().share();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (const auto it = tables_.find(key); it != tables_.end()) {
            count_found(ArtifactClass::kDelayTable, it->second.future);
            if (it->second.resident) lru_.splice(lru_.end(), lru_, it->second.lru);
            return it->second.future;
        }
        tables_.emplace(key, Entry<dta::DelayTable>{future});
    }
    // An explicit static-period override breaks the pure delay-scale
    // relation between operating points, so such requests always take the
    // reference flow.
    const bool reference = reference_characterization || analyzer_config.static_period_ps > 0;
    metrics_.add(ids(ArtifactClass::kDelayTable).miss);
    const auto start = std::chrono::steady_clock::now();
    FOCS_OBS_SPAN(span, obs::global_tracer(), "cache.build.delay_table");
    span.arg("key", key).arg("flow_threads", static_cast<std::int64_t>(flow_threads));
    run_build(
        ArtifactClass::kDelayTable, key, tables_, promise,
        [&]() -> dta::DelayTable {
            if (reference) {
                // Per-voltage reference characterization: the byte-identity
                // escape hatch (and the explicit-static-period path).
                // Dependency fetched inside the build so a retry after a
                // failed suite assembly re-elects that builder too.
                const auto programs = characterization_programs();
                const core::CharacterizationFlow flow(design, analyzer_config);
                core::CharacterizationOptions options;
                options.threads = flow_threads;
                options.cancel = cancel;
                dta::DelayTable table = flow.run(programs.get(), options).table;
                metrics_.add(reference_passes_id_);
                return table;
            }
            // Derived view: scale the shared nominal table by the cell
            // library's delay ratio. delay_scale(kNominalVoltageV) == 1.0
            // exactly, so the ratio is delay_scale(target) itself and the
            // view is bit-identical to a reference characterization at the
            // target voltage (DelayTable::scaled).
            const auto nominal =
                nominal_delay_table(design, analyzer_config, flow_threads, cancel);
            const double factor =
                timing::CellLibrary::fdsoi28().delay_scale(design.voltage_v);
            dta::DelayTable table = nominal.get()->scaled(factor);
            metrics_.add(scaled_views_id_);
            return table;
        },
        cancel);
    metrics_.observe(ids(ArtifactClass::kDelayTable).build_ms, ms_since(start));
    return future;
}

std::shared_future<std::shared_ptr<const dta::DelayTable>> ArtifactCache::nominal_delay_table(
    const timing::DesignConfig& design, const dta::AnalyzerConfig& analyzer_config,
    int flow_threads, const CancellationToken* cancel) {
    const std::string key = nominal_key(design, analyzer_config);
    std::promise<std::shared_ptr<const dta::DelayTable>> promise;
    std::shared_future<std::shared_ptr<const dta::DelayTable>> future =
        promise.get_future().share();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (const auto it = nominal_tables_.find(key); it != nominal_tables_.end()) {
            if (it->second.resident) lru_.splice(lru_.end(), lru_, it->second.lru);
            return it->second.future;
        }
        nominal_tables_.emplace(key, Entry<std::shared_ptr<const dta::DelayTable>>{future});
    }
    // This thread won the nominal build. No in-place retry here: a failure
    // is published to the current waiters and the slot cleared, so the
    // per-voltage builder's retry (run_build) re-elects a nominal builder
    // with a fresh attempt ordinal.
    const auto start = std::chrono::steady_clock::now();
    FOCS_OBS_SPAN(span, obs::global_tracer(), "cache.build.nominal_table");
    span.arg("key", key).arg("flow_threads", static_cast<std::int64_t>(flow_threads));
    try {
        FOCS_FAULT_POINT_AT_CANCEL("build.nominal_table", key,
                                   next_build_attempt(ArtifactClass::kDelayTable, key), cancel);
        timing::DesignConfig nominal_design = design;
        nominal_design.voltage_v = timing::kNominalVoltageV;
        const auto programs = characterization_programs();
        const core::CharacterizationFlow flow(nominal_design, analyzer_config);
        core::CharacterizationOptions options;
        options.threads = flow_threads;
        options.cancel = cancel;
        auto table =
            std::make_shared<const dta::DelayTable>(flow.run(programs.get(), options).table);
        const std::uint64_t bytes = estimated_bytes_of(table);
        promise.set_value(std::move(table));
        metrics_.add(nominal_passes_id_);
        make_resident(ArtifactClass::kDelayTable, key, nominal_tables_, bytes);
    } catch (...) {
        promise.set_exception(std::current_exception());
        std::lock_guard<std::mutex> lock(mutex_);
        if (const auto it = nominal_tables_.find(key);
            it != nominal_tables_.end() && !it->second.resident) {
            nominal_tables_.erase(it);
        }
    }
    metrics_.observe(ids(ArtifactClass::kDelayTable).build_ms, ms_since(start));
    return future;
}

std::shared_future<sim::PipelineTrace> ArtifactCache::trace(
    const std::string& kernel, const sim::MachineConfig& machine_config) {
    const std::string key = trace_key(kernel, machine_config);
    std::promise<sim::PipelineTrace> promise;
    std::shared_future<sim::PipelineTrace> future = promise.get_future().share();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (const auto it = traces_.find(key); it != traces_.end()) {
            count_found(ArtifactClass::kTrace, it->second.future);
            if (it->second.resident) lru_.splice(lru_.end(), lru_, it->second.lru);
            return it->second.future;
        }
        traces_.emplace(key, Entry<sim::PipelineTrace>{future});
    }
    metrics_.add(ids(ArtifactClass::kTrace).miss);
    const auto start = std::chrono::steady_clock::now();
    FOCS_OBS_SPAN(span, obs::global_tracer(), "cache.build.trace");
    span.arg("key", key);
    run_build(ArtifactClass::kTrace, key, traces_, promise, [&] {
        const auto program = this->program(kernel);
        return sim::record_trace(program.get(), machine_config);
    });
    metrics_.observe(ids(ArtifactClass::kTrace).build_ms, ms_since(start));
    return future;
}

std::shared_future<std::shared_ptr<const timing::UnitTraceDelays>>
ArtifactCache::unit_trace_delays(const std::string& kernel, const timing::DesignConfig& design,
                                 const sim::MachineConfig& machine_config) {
    // Voltage-free key: the unit pass depends on the trace, the variant's
    // calibration bands and the jitter seed only, so every voltage point of
    // a sweep resolves to the same entry.
    char design_part[64];
    std::snprintf(design_part, sizeof design_part, "@u%d:%llu",
                  static_cast<int>(design.variant),
                  static_cast<unsigned long long>(design.seed));
    const std::string key = trace_key(kernel, machine_config) + design_part;
    std::promise<std::shared_ptr<const timing::UnitTraceDelays>> promise;
    std::shared_future<std::shared_ptr<const timing::UnitTraceDelays>> future =
        promise.get_future().share();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (const auto it = unit_delays_.find(key); it != unit_delays_.end()) {
            count_found(ArtifactClass::kUnitDelays, it->second.future);
            if (it->second.resident) lru_.splice(lru_.end(), lru_, it->second.lru);
            return it->second.future;
        }
        unit_delays_.emplace(key,
                             Entry<std::shared_ptr<const timing::UnitTraceDelays>>{future});
    }
    metrics_.add(ids(ArtifactClass::kUnitDelays).miss);
    const auto start = std::chrono::steady_clock::now();
    FOCS_OBS_SPAN(span, obs::global_tracer(), "cache.build.unit_delays");
    span.arg("key", key);
    run_build(ArtifactClass::kUnitDelays, key, unit_delays_, promise,
              [&]() -> std::shared_ptr<const timing::UnitTraceDelays> {
                  const auto trace = this->trace(kernel, machine_config);
                  const timing::DelayCalculator calculator(design);
                  return std::make_shared<const timing::UnitTraceDelays>(
                      timing::compute_unit_trace_delays(calculator, trace.get().records));
              });
    metrics_.observe(ids(ArtifactClass::kUnitDelays).build_ms, ms_since(start));
    return future;
}

void ArtifactCache::put_delay_table(const timing::DesignConfig& design,
                                    const dta::AnalyzerConfig& analyzer_config,
                                    dta::DelayTable table) {
    const std::string key = design_key(design, analyzer_config);
    std::promise<dta::DelayTable> promise;
    const std::uint64_t bytes = table.estimated_bytes();
    promise.set_value(std::move(table));
    std::lock_guard<std::mutex> lock(mutex_);
    if (const auto it = tables_.find(key); it != tables_.end()) {
        if (it->second.resident) unlink_locked(it->second);
        tables_.erase(it);
    }
    Entry<dta::DelayTable> entry{promise.get_future().share()};
    entry.bytes = bytes;
    entry.resident = true;
    entry.lru = lru_.insert(lru_.end(), LruNode{ArtifactClass::kDelayTable, key});
    cached_bytes_ += bytes;
    tables_.emplace(key, std::move(entry));
    evict_over_budget_locked();
}

// ------------------------------------------------------ counter accessors

ArtifactClassCounters ArtifactCache::class_counters(ArtifactClass artifact_class) const {
    const ClassIds& ids = this->ids(artifact_class);
    return {metrics_.counter_value(ids.miss), metrics_.counter_value(ids.hit),
            metrics_.counter_value(ids.wait)};
}

ArtifactBuildStats ArtifactCache::build_stats(ArtifactClass artifact_class) const {
    const ClassIds& ids = this->ids(artifact_class);
    return {metrics_.counter_value(ids.built), metrics_.counter_value(ids.build_failed),
            metrics_.counter_value(ids.retried), metrics_.counter_value(ids.evicted),
            metrics_.counter_value(ids.evicted_lru)};
}

std::uint64_t ArtifactCache::characterizations_built() const {
    return metrics_.counter_value(nominal_passes_id_) +
           metrics_.counter_value(reference_passes_id_);
}

std::uint64_t ArtifactCache::nominal_passes() const {
    return metrics_.counter_value(nominal_passes_id_);
}

std::uint64_t ArtifactCache::scaled_views() const {
    return metrics_.counter_value(scaled_views_id_);
}

std::uint64_t ArtifactCache::reference_passes() const {
    return metrics_.counter_value(reference_passes_id_);
}

std::uint64_t ArtifactCache::cache_hits() const {
    std::uint64_t total = 0;
    for (const ArtifactClass artifact_class :
         {ArtifactClass::kProgram, ArtifactClass::kDelayTable, ArtifactClass::kTrace,
          ArtifactClass::kUnitDelays}) {
        total += class_counters(artifact_class).served();
    }
    return total;
}

std::uint64_t ArtifactCache::traces_recorded() const {
    return metrics_.counter_value(ids(ArtifactClass::kTrace).built);
}

std::uint64_t ArtifactCache::unit_delay_passes() const {
    return metrics_.counter_value(ids(ArtifactClass::kUnitDelays).built);
}

std::uint64_t ArtifactCache::unit_delay_reuses() const {
    return class_counters(ArtifactClass::kUnitDelays).served();
}

}  // namespace focs::runtime
