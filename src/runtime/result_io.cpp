#include "runtime/result_io.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <variant>
#include <vector>

#include "common/error.hpp"

namespace focs::runtime {

// ---------------------------------------------------------------- writing

std::string json_number(double value) {
    // JSON has no inf/nan; silently clamping would hide bugs, so fail.
    check(std::isfinite(value), "non-finite value in JSON document");
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    return buf;
}

std::string json_string(const std::string& value) {
    std::string out = "\"";
    for (const char c : value) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    out += '"';
    return out;
}

namespace {

void append_cell(std::string& out, const SweepCell& cell) {
    const core::DcaRunResult& r = cell.result;
    out += "    {";
    out += "\"kernel\": " + json_string(cell.kernel);
    out += ", \"policy\": " + json_string(cell.policy);
    out += ", \"generator\": " + json_string(cell.generator);
    out += ", \"voltage_v\": " + json_number(cell.voltage_v);
    out += ", \"engine_policy\": " + json_string(r.policy);
    out += ", \"engine_generator\": " + json_string(r.clock_generator);
    out += ", \"cycles\": " + std::to_string(r.cycles);
    out += ", \"total_time_ps\": " + json_number(r.total_time_ps);
    out += ", \"avg_period_ps\": " + json_number(r.avg_period_ps);
    out += ", \"eff_freq_mhz\": " + json_number(r.eff_freq_mhz);
    out += ", \"static_period_ps\": " + json_number(r.static_period_ps);
    out += ", \"speedup_vs_static\": " + json_number(r.speedup_vs_static);
    out += ", \"timing_violations\": " + std::to_string(r.timing_violations);
    out += ", \"worst_violation_ps\": " + json_number(r.worst_violation_ps);
    out += ", \"guest\": {\"exit_code\": " + std::to_string(r.guest.exit_code);
    out += ", \"cycles\": " + std::to_string(r.guest.cycles);
    out += ", \"instructions\": " + std::to_string(r.guest.instructions);
    out += ", \"reports\": [";
    for (std::size_t i = 0; i < r.guest.reports.size(); ++i) {
        if (i > 0) out += ", ";
        out += std::to_string(r.guest.reports[i]);
    }
    out += "]}}";
}

// ---------------------------------------------------------------- parsing

struct Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

struct Value {
    std::variant<std::nullptr_t, bool, double, std::string, Array, Object> data;

    double number() const {
        check(std::holds_alternative<double>(data), "JSON: expected number");
        return std::get<double>(data);
    }
    const std::string& string() const {
        check(std::holds_alternative<std::string>(data), "JSON: expected string");
        return std::get<std::string>(data);
    }
    const Array& array() const {
        check(std::holds_alternative<Array>(data), "JSON: expected array");
        return std::get<Array>(data);
    }
    const Object& object() const {
        check(std::holds_alternative<Object>(data), "JSON: expected object");
        return std::get<Object>(data);
    }
};

class Parser {
public:
    explicit Parser(const std::string& text) : text_(text) {}

    Value parse_document() {
        const Value value = parse_value();
        skip_whitespace();
        check(pos_ == text_.size(), "JSON: trailing characters at offset " + std::to_string(pos_));
        return value;
    }

private:
    [[noreturn]] void fail(const std::string& what) const {
        throw Error("JSON parse error at offset " + std::to_string(pos_) + ": " + what);
    }

    void skip_whitespace() {
        while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
    }

    char peek() {
        skip_whitespace();
        if (pos_ >= text_.size()) fail("unexpected end of input");
        return text_[pos_];
    }

    void expect(char c) {
        if (peek() != c) fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool consume_literal(const char* literal) {
        const std::size_t len = std::string(literal).size();
        if (text_.compare(pos_, len, literal) == 0) {
            pos_ += len;
            return true;
        }
        return false;
    }

    Value parse_value() {
        const char c = peek();
        if (c == '{') return parse_object();
        if (c == '[') return parse_array();
        if (c == '"') return Value{parse_string()};
        if (consume_literal("true")) return Value{true};
        if (consume_literal("false")) return Value{false};
        if (consume_literal("null")) return Value{nullptr};
        return parse_number();
    }

    Value parse_object() {
        expect('{');
        Object object;
        if (peek() == '}') {
            ++pos_;
            return Value{std::move(object)};
        }
        while (true) {
            std::string key = parse_string_token();
            expect(':');
            object.emplace(std::move(key), parse_value());
            const char c = peek();
            ++pos_;
            if (c == '}') return Value{std::move(object)};
            if (c != ',') fail("expected ',' or '}' in object");
        }
    }

    Value parse_array() {
        expect('[');
        Array array;
        if (peek() == ']') {
            ++pos_;
            return Value{std::move(array)};
        }
        while (true) {
            array.push_back(parse_value());
            const char c = peek();
            ++pos_;
            if (c == ']') return Value{std::move(array)};
            if (c != ',') fail("expected ',' or ']' in array");
        }
    }

    std::string parse_string() { return parse_string_token(); }

    std::string parse_string_token() {
        if (peek() != '"') fail("expected string");
        ++pos_;
        std::string out;
        while (true) {
            if (pos_ >= text_.size()) fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"') return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size()) fail("unterminated escape");
            const char e = text_[pos_++];
            switch (e) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'u': {
                    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
                    long code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = text_[pos_ + static_cast<std::size_t>(i)];
                        if (!std::isxdigit(static_cast<unsigned char>(h))) {
                            fail("non-hex digit in \\u escape");
                        }
                        code = code * 16 + (h <= '9' ? h - '0' : (h | 0x20) - 'a' + 10);
                    }
                    pos_ += 4;
                    // to_json only emits \u for the control range; anything
                    // larger would need UTF-8 encoding we don't produce.
                    if (code >= 0x20) fail("unsupported \\u escape beyond control range");
                    out += static_cast<char>(code);
                    break;
                }
                default: fail("unknown escape");
            }
        }
    }

    Value parse_number() {
        skip_whitespace();
        const char* begin = text_.c_str() + pos_;
        char* end = nullptr;
        const double value = std::strtod(begin, &end);
        if (end == begin) fail("expected value");
        pos_ += static_cast<std::size_t>(end - begin);
        return Value{value};
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

std::uint64_t as_u64(const Value& value) { return static_cast<std::uint64_t>(value.number()); }

const Value& field(const Object& object, const char* key) {
    const auto it = object.find(key);
    check(it != object.end(), std::string("JSON: missing field '") + key + "'");
    return it->second;
}

}  // namespace

std::string to_json(const SweepResult& result, bool include_timing) {
    std::string out = "{\n";
    out += "  \"schema\": \"focs-sweep-v3\",\n";
    // The spec stamp is canonical (grid-derived, not run-dependent): two
    // runs of the same spec carry the same stamp regardless of job count or
    // evaluation mode, so cached results.json files stay traceable AND the
    // replay-vs-live byte-diff stays valid.
    out += "  \"spec\": " + json_string(result.spec_text) + ",\n";
    out += "  \"spec_hash\": " + json_string(result.spec_hash) + ",\n";
    if (include_timing) {
        out += "  \"jobs\": " + std::to_string(result.jobs) + ",\n";
        out += "  \"mode\": " + json_string(result.mode) + ",\n";
        out += "  \"wall_ms\": " + json_number(result.wall_ms) + ",\n";
        out += "  \"characterizations\": " + std::to_string(result.characterizations) + ",\n";
        out += "  \"cache_hits\": " + std::to_string(result.cache_hits) + ",\n";
        out += "  \"guest_simulations\": " + std::to_string(result.guest_simulations) + ",\n";
        out += "  \"unit_delay_passes\": " + std::to_string(result.unit_delay_passes) + ",\n";
        out += "  \"unit_delay_reuses\": " + std::to_string(result.unit_delay_reuses) + ",\n";
    }
    out += "  \"mean_eff_freq_mhz\": " + json_number(result.mean_eff_freq_mhz) + ",\n";
    out += "  \"mean_speedup\": " + json_number(result.mean_speedup) + ",\n";
    out += "  \"total_violations\": " + std::to_string(result.total_violations) + ",\n";
    out += "  \"cells\": [\n";
    for (std::size_t i = 0; i < result.cells.size(); ++i) {
        append_cell(out, result.cells[i]);
        if (i + 1 < result.cells.size()) out += ',';
        out += '\n';
    }
    out += "  ]\n}\n";
    return out;
}

SweepResult from_json(const std::string& text) {
    const Value document = Parser(text).parse_document();
    const Object& root = document.object();
    const std::string& schema = field(root, "schema").string();
    // v2: pre-unit-delays documents without the voltage-axis counters;
    // v1: pre-replay documents without the spec stamp. Both still readable.
    check(schema == "focs-sweep-v3" || schema == "focs-sweep-v2" || schema == "focs-sweep-v1",
          "unknown sweep result schema '" + schema + "'");

    SweepResult result;
    if (const auto it = root.find("spec"); it != root.end()) {
        result.spec_text = it->second.string();
    }
    if (const auto it = root.find("spec_hash"); it != root.end()) {
        result.spec_hash = it->second.string();
    }
    if (const auto it = root.find("jobs"); it != root.end()) {
        result.jobs = static_cast<int>(it->second.number());
    }
    if (const auto it = root.find("mode"); it != root.end()) {
        result.mode = it->second.string();
    }
    if (const auto it = root.find("wall_ms"); it != root.end()) {
        result.wall_ms = it->second.number();
    }
    if (const auto it = root.find("characterizations"); it != root.end()) {
        result.characterizations = as_u64(it->second);
    }
    if (const auto it = root.find("cache_hits"); it != root.end()) {
        result.cache_hits = as_u64(it->second);
    }
    if (const auto it = root.find("guest_simulations"); it != root.end()) {
        result.guest_simulations = as_u64(it->second);
    }
    if (const auto it = root.find("unit_delay_passes"); it != root.end()) {
        result.unit_delay_passes = as_u64(it->second);
    }
    if (const auto it = root.find("unit_delay_reuses"); it != root.end()) {
        result.unit_delay_reuses = as_u64(it->second);
    }
    result.mean_eff_freq_mhz = field(root, "mean_eff_freq_mhz").number();
    result.mean_speedup = field(root, "mean_speedup").number();
    result.total_violations = as_u64(field(root, "total_violations"));

    for (const Value& entry : field(root, "cells").array()) {
        const Object& o = entry.object();
        SweepCell cell;
        cell.kernel = field(o, "kernel").string();
        cell.policy = field(o, "policy").string();
        cell.generator = field(o, "generator").string();
        cell.voltage_v = field(o, "voltage_v").number();
        core::DcaRunResult& r = cell.result;
        r.policy = field(o, "engine_policy").string();
        r.clock_generator = field(o, "engine_generator").string();
        r.cycles = as_u64(field(o, "cycles"));
        r.total_time_ps = field(o, "total_time_ps").number();
        r.avg_period_ps = field(o, "avg_period_ps").number();
        r.eff_freq_mhz = field(o, "eff_freq_mhz").number();
        r.static_period_ps = field(o, "static_period_ps").number();
        r.speedup_vs_static = field(o, "speedup_vs_static").number();
        r.timing_violations = as_u64(field(o, "timing_violations"));
        r.worst_violation_ps = field(o, "worst_violation_ps").number();
        const Object& guest = field(o, "guest").object();
        r.guest.exit_code = static_cast<std::uint32_t>(as_u64(field(guest, "exit_code")));
        r.guest.cycles = as_u64(field(guest, "cycles"));
        r.guest.instructions = as_u64(field(guest, "instructions"));
        for (const Value& report : field(guest, "reports").array()) {
            r.guest.reports.push_back(static_cast<std::uint32_t>(as_u64(report)));
        }
        result.cells.push_back(std::move(cell));
    }
    return result;
}

}  // namespace focs::runtime
