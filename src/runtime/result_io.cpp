#include "runtime/result_io.hpp"

#include <cstdint>

#include "common/error.hpp"
#include "common/json.hpp"

namespace focs::runtime {

// ---------------------------------------------------------------- writing

std::string json_number(double value) { return json::number(value); }

std::string json_string(const std::string& value) { return json::quote(value); }

namespace {

using json::Array;
using json::Object;
using json::Value;
using json::field;

void append_cell(std::string& out, const SweepCell& cell, bool include_timing) {
    const core::DcaRunResult& r = cell.result;
    out += "    {";
    out += "\"kernel\": " + json_string(cell.kernel);
    out += ", \"policy\": " + json_string(cell.policy);
    out += ", \"generator\": " + json_string(cell.generator);
    out += ", \"voltage_v\": " + json_number(cell.voltage_v);
    if (!cell.ok()) {
        // Failure fields appear only on non-ok cells: an all-ok document
        // is byte-identical to the v4 layout (modulo the schema string).
        out += ", \"status\": " + json_string(cell_status_name(cell.status));
        out += ", \"error_code\": " + json_string(error_code_name(cell.error_code));
        out += ", \"error\": " + json_string(cell.error);
    }
    out += ", \"engine_policy\": " + json_string(r.policy);
    out += ", \"engine_generator\": " + json_string(r.clock_generator);
    out += ", \"cycles\": " + std::to_string(r.cycles);
    out += ", \"total_time_ps\": " + json_number(r.total_time_ps);
    out += ", \"avg_period_ps\": " + json_number(r.avg_period_ps);
    out += ", \"eff_freq_mhz\": " + json_number(r.eff_freq_mhz);
    out += ", \"static_period_ps\": " + json_number(r.static_period_ps);
    out += ", \"speedup_vs_static\": " + json_number(r.speedup_vs_static);
    out += ", \"timing_violations\": " + std::to_string(r.timing_violations);
    out += ", \"worst_violation_ps\": " + json_number(r.worst_violation_ps);
    if (include_timing) {
        // Run-dependent, so gated like the timing header: the canonical
        // (include_timing=false) document stays byte-comparable across job
        // counts and evaluation modes.
        out += ", \"wall_ms\": " + json_number(cell.wall_ms);
        out += ", \"queue_wait_ms\": " + json_number(cell.queue_wait_ms);
    }
    out += ", \"guest\": {\"exit_code\": " + std::to_string(r.guest.exit_code);
    out += ", \"cycles\": " + std::to_string(r.guest.cycles);
    out += ", \"instructions\": " + std::to_string(r.guest.instructions);
    out += ", \"reports\": [";
    for (std::size_t i = 0; i < r.guest.reports.size(); ++i) {
        if (i > 0) out += ", ";
        out += std::to_string(r.guest.reports[i]);
    }
    out += "]}}";
}

std::string class_counters_json(const ArtifactClassCounters& counters) {
    return "{\"miss\": " + std::to_string(counters.miss) +
           ", \"hit\": " + std::to_string(counters.hit) +
           ", \"wait\": " + std::to_string(counters.wait) + "}";
}

std::string metrics_json(const SweepMetrics& metrics) {
    std::string out = "{\n";
    out += "    \"cache\": {";
    out += "\"program\": " + class_counters_json(metrics.program);
    out += ", \"delay_table\": " + class_counters_json(metrics.delay_table);
    out += ", \"trace\": " + class_counters_json(metrics.trace);
    out += ", \"unit_delays\": " + class_counters_json(metrics.unit_delays);
    out += "},\n";
    out += "    \"cell_wall_ms\": {\"p50\": " + json_number(metrics.cell_wall_ms_p50) +
           ", \"p95\": " + json_number(metrics.cell_wall_ms_p95) +
           ", \"max\": " + json_number(metrics.cell_wall_ms_max) + "},\n";
    out += "    \"queue_wait_ms_total\": " + json_number(metrics.queue_wait_ms_total) + "\n";
    out += "  }";
    return out;
}

std::uint64_t as_u64(const Value& value) { return static_cast<std::uint64_t>(value.number()); }

ArtifactClassCounters parse_class_counters(const Value& value) {
    const Object& o = value.object();
    return {as_u64(field(o, "miss")), as_u64(field(o, "hit")), as_u64(field(o, "wait"))};
}

}  // namespace

std::string to_json(const SweepResult& result, bool include_timing) {
    std::string out = "{\n";
    out += "  \"schema\": \"focs-sweep-v6\",\n";
    // The spec stamp is canonical (grid-derived, not run-dependent): two
    // runs of the same spec carry the same stamp regardless of job count or
    // evaluation mode, so cached results.json files stay traceable AND the
    // replay-vs-live byte-diff stays valid.
    out += "  \"spec\": " + json_string(result.spec_text) + ",\n";
    out += "  \"spec_hash\": " + json_string(result.spec_hash) + ",\n";
    if (include_timing) {
        out += "  \"jobs\": " + std::to_string(result.jobs) + ",\n";
        out += "  \"mode\": " + json_string(result.mode) + ",\n";
        out += "  \"wall_ms\": " + json_number(result.wall_ms) + ",\n";
        out += "  \"characterizations\": " + std::to_string(result.characterizations) + ",\n";
        out += "  \"nominal_passes\": " + std::to_string(result.nominal_passes) + ",\n";
        out += "  \"scaled_views\": " + std::to_string(result.scaled_views) + ",\n";
        out += "  \"cache_hits\": " + std::to_string(result.cache_hits) + ",\n";
        out += "  \"guest_simulations\": " + std::to_string(result.guest_simulations) + ",\n";
        out += "  \"unit_delay_passes\": " + std::to_string(result.unit_delay_passes) + ",\n";
        out += "  \"unit_delay_reuses\": " + std::to_string(result.unit_delay_reuses) + ",\n";
        out += "  \"metrics\": " + metrics_json(result.metrics) + ",\n";
    }
    if (result.cells_failed > 0 || result.cells_cancelled > 0) {
        // Partial-result header; omitted from fully successful documents so
        // the canonical all-ok layout matches v4 (schema string aside).
        out += "  \"cells_ok\": " + std::to_string(result.cells_ok) + ",\n";
        out += "  \"cells_failed\": " + std::to_string(result.cells_failed) + ",\n";
        out += "  \"cells_cancelled\": " + std::to_string(result.cells_cancelled) + ",\n";
    }
    out += "  \"mean_eff_freq_mhz\": " + json_number(result.mean_eff_freq_mhz) + ",\n";
    out += "  \"mean_speedup\": " + json_number(result.mean_speedup) + ",\n";
    out += "  \"total_violations\": " + std::to_string(result.total_violations) + ",\n";
    out += "  \"cells\": [\n";
    for (std::size_t i = 0; i < result.cells.size(); ++i) {
        append_cell(out, result.cells[i], include_timing);
        if (i + 1 < result.cells.size()) out += ',';
        out += '\n';
    }
    out += "  ]\n}\n";
    return out;
}

SweepResult from_json(const std::string& text) {
    const Value document = json::parse(text);
    const Object& root = document.object();
    const std::string& schema = field(root, "schema").string();
    // v5: pre-characterization-collapse documents without the
    // nominal_passes / scaled_views counters; v4: pre-fault-tolerance
    // documents without cell statuses; v3: pre-observability documents
    // without the metrics block and per-cell timing; v2: pre-unit-delays
    // documents without the voltage-axis counters; v1: pre-replay documents
    // without the spec stamp. All still readable.
    check(schema == "focs-sweep-v6" || schema == "focs-sweep-v5" || schema == "focs-sweep-v4" ||
              schema == "focs-sweep-v3" || schema == "focs-sweep-v2" || schema == "focs-sweep-v1",
          "unknown sweep result schema '" + schema + "'");

    SweepResult result;
    if (const auto it = root.find("spec"); it != root.end()) {
        result.spec_text = it->second.string();
    }
    if (const auto it = root.find("spec_hash"); it != root.end()) {
        result.spec_hash = it->second.string();
    }
    if (const auto it = root.find("jobs"); it != root.end()) {
        result.jobs = static_cast<int>(it->second.number());
    }
    if (const auto it = root.find("mode"); it != root.end()) {
        result.mode = it->second.string();
    }
    if (const auto it = root.find("wall_ms"); it != root.end()) {
        result.wall_ms = it->second.number();
    }
    if (const auto it = root.find("characterizations"); it != root.end()) {
        result.characterizations = as_u64(it->second);
    }
    if (const auto it = root.find("nominal_passes"); it != root.end()) {
        result.nominal_passes = as_u64(it->second);
    }
    if (const auto it = root.find("scaled_views"); it != root.end()) {
        result.scaled_views = as_u64(it->second);
    }
    if (const auto it = root.find("cache_hits"); it != root.end()) {
        result.cache_hits = as_u64(it->second);
    }
    if (const auto it = root.find("guest_simulations"); it != root.end()) {
        result.guest_simulations = as_u64(it->second);
    }
    if (const auto it = root.find("unit_delay_passes"); it != root.end()) {
        result.unit_delay_passes = as_u64(it->second);
    }
    if (const auto it = root.find("unit_delay_reuses"); it != root.end()) {
        result.unit_delay_reuses = as_u64(it->second);
    }
    if (const auto it = root.find("metrics"); it != root.end()) {
        const Object& m = it->second.object();
        const Object& cache = field(m, "cache").object();
        result.metrics.program = parse_class_counters(field(cache, "program"));
        result.metrics.delay_table = parse_class_counters(field(cache, "delay_table"));
        result.metrics.trace = parse_class_counters(field(cache, "trace"));
        result.metrics.unit_delays = parse_class_counters(field(cache, "unit_delays"));
        const Object& walls = field(m, "cell_wall_ms").object();
        result.metrics.cell_wall_ms_p50 = field(walls, "p50").number();
        result.metrics.cell_wall_ms_p95 = field(walls, "p95").number();
        result.metrics.cell_wall_ms_max = field(walls, "max").number();
        result.metrics.queue_wait_ms_total = field(m, "queue_wait_ms_total").number();
    }
    result.mean_eff_freq_mhz = field(root, "mean_eff_freq_mhz").number();
    result.mean_speedup = field(root, "mean_speedup").number();
    result.total_violations = as_u64(field(root, "total_violations"));

    for (const Value& entry : field(root, "cells").array()) {
        const Object& o = entry.object();
        SweepCell cell;
        cell.kernel = field(o, "kernel").string();
        cell.policy = field(o, "policy").string();
        cell.generator = field(o, "generator").string();
        cell.voltage_v = field(o, "voltage_v").number();
        if (const auto it = o.find("status"); it != o.end()) {
            cell.status = parse_cell_status(it->second.string());
        }
        if (const auto it = o.find("error_code"); it != o.end()) {
            cell.error_code = parse_error_code(it->second.string());
        }
        if (const auto it = o.find("error"); it != o.end()) {
            cell.error = it->second.string();
        }
        if (const auto it = o.find("wall_ms"); it != o.end()) {
            cell.wall_ms = it->second.number();
        }
        if (const auto it = o.find("queue_wait_ms"); it != o.end()) {
            cell.queue_wait_ms = it->second.number();
        }
        core::DcaRunResult& r = cell.result;
        r.policy = field(o, "engine_policy").string();
        r.clock_generator = field(o, "engine_generator").string();
        r.cycles = as_u64(field(o, "cycles"));
        r.total_time_ps = field(o, "total_time_ps").number();
        r.avg_period_ps = field(o, "avg_period_ps").number();
        r.eff_freq_mhz = field(o, "eff_freq_mhz").number();
        r.static_period_ps = field(o, "static_period_ps").number();
        r.speedup_vs_static = field(o, "speedup_vs_static").number();
        r.timing_violations = as_u64(field(o, "timing_violations"));
        r.worst_violation_ps = field(o, "worst_violation_ps").number();
        const Object& guest = field(o, "guest").object();
        r.guest.exit_code = static_cast<std::uint32_t>(as_u64(field(guest, "exit_code")));
        r.guest.cycles = as_u64(field(guest, "cycles"));
        r.guest.instructions = as_u64(field(guest, "instructions"));
        for (const Value& report : field(guest, "reports").array()) {
            r.guest.reports.push_back(static_cast<std::uint32_t>(as_u64(report)));
        }
        result.cells.push_back(std::move(cell));
    }
    // Per-status counts: trust the header when stamped (partial-result
    // documents), otherwise derive from the cells so all-ok v6 documents
    // and every pre-v6 vintage report cells_ok == cells.size().
    if (const auto it = root.find("cells_ok"); it != root.end()) {
        result.cells_ok = as_u64(it->second);
        if (const auto failed = root.find("cells_failed"); failed != root.end()) {
            result.cells_failed = as_u64(failed->second);
        }
        if (const auto cancelled = root.find("cells_cancelled"); cancelled != root.end()) {
            result.cells_cancelled = as_u64(cancelled->second);
        }
    } else {
        for (const SweepCell& cell : result.cells) {
            switch (cell.status) {
                case CellStatus::kOk: ++result.cells_ok; break;
                case CellStatus::kFailed: ++result.cells_failed; break;
                case CellStatus::kCancelled: ++result.cells_cancelled; break;
            }
        }
    }
    return result;
}

}  // namespace focs::runtime
