#include "common/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/error.hpp"

namespace focs::json {

std::string number(double value) {
    check(std::isfinite(value), "non-finite value in JSON document");
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    return buf;
}

std::string quote(const std::string& value) {
    std::string out = "\"";
    for (const char c : value) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    out += '"';
    return out;
}

double Value::number() const {
    check(std::holds_alternative<double>(data), "JSON: expected number");
    return std::get<double>(data);
}

const std::string& Value::string() const {
    check(std::holds_alternative<std::string>(data), "JSON: expected string");
    return std::get<std::string>(data);
}

const Array& Value::array() const {
    check(std::holds_alternative<Array>(data), "JSON: expected array");
    return std::get<Array>(data);
}

const Object& Value::object() const {
    check(std::holds_alternative<Object>(data), "JSON: expected object");
    return std::get<Object>(data);
}

const Value& field(const Object& object, const char* key) {
    const auto it = object.find(key);
    check(it != object.end(), std::string("JSON: missing field '") + key + "'");
    return it->second;
}

namespace {

class Parser {
public:
    explicit Parser(const std::string& text) : text_(text) {}

    Value parse_document() {
        const Value value = parse_value();
        skip_whitespace();
        check(pos_ == text_.size(), "JSON: trailing characters at offset " + std::to_string(pos_));
        return value;
    }

private:
    [[noreturn]] void fail(const std::string& what) const {
        throw Error("JSON parse error at offset " + std::to_string(pos_) + ": " + what);
    }

    void skip_whitespace() {
        while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
    }

    char peek() {
        skip_whitespace();
        if (pos_ >= text_.size()) fail("unexpected end of input");
        return text_[pos_];
    }

    void expect(char c) {
        if (peek() != c) fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool consume_literal(const char* literal) {
        const std::size_t len = std::string(literal).size();
        if (text_.compare(pos_, len, literal) == 0) {
            pos_ += len;
            return true;
        }
        return false;
    }

    Value parse_value() {
        const char c = peek();
        if (c == '{') return parse_object();
        if (c == '[') return parse_array();
        if (c == '"') return Value{parse_string_token()};
        if (consume_literal("true")) return Value{true};
        if (consume_literal("false")) return Value{false};
        if (consume_literal("null")) return Value{nullptr};
        return parse_number();
    }

    Value parse_object() {
        expect('{');
        Object object;
        if (peek() == '}') {
            ++pos_;
            return Value{std::move(object)};
        }
        while (true) {
            std::string key = parse_string_token();
            expect(':');
            object.emplace(std::move(key), parse_value());
            const char c = peek();
            ++pos_;
            if (c == '}') return Value{std::move(object)};
            if (c != ',') fail("expected ',' or '}' in object");
        }
    }

    Value parse_array() {
        expect('[');
        Array array;
        if (peek() == ']') {
            ++pos_;
            return Value{std::move(array)};
        }
        while (true) {
            array.push_back(parse_value());
            const char c = peek();
            ++pos_;
            if (c == ']') return Value{std::move(array)};
            if (c != ',') fail("expected ',' or ']' in array");
        }
    }

    std::string parse_string_token() {
        if (peek() != '"') fail("expected string");
        ++pos_;
        std::string out;
        while (true) {
            if (pos_ >= text_.size()) fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"') return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size()) fail("unterminated escape");
            const char e = text_[pos_++];
            switch (e) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'u': {
                    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
                    long code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = text_[pos_ + static_cast<std::size_t>(i)];
                        if (!std::isxdigit(static_cast<unsigned char>(h))) {
                            fail("non-hex digit in \\u escape");
                        }
                        code = code * 16 + (h <= '9' ? h - '0' : (h | 0x20) - 'a' + 10);
                    }
                    pos_ += 4;
                    // quote() only emits \u for the control range; anything
                    // larger would need UTF-8 encoding we don't produce.
                    if (code >= 0x20) fail("unsupported \\u escape beyond control range");
                    out += static_cast<char>(code);
                    break;
                }
                default: fail("unknown escape");
            }
        }
    }

    Value parse_number() {
        skip_whitespace();
        const char* begin = text_.c_str() + pos_;
        char* end = nullptr;
        const double value = std::strtod(begin, &end);
        if (end == begin) fail("expected value");
        pos_ += static_cast<std::size_t>(end - begin);
        return Value{value};
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

}  // namespace

Value parse(const std::string& text) { return Parser(text).parse_document(); }

}  // namespace focs::json
