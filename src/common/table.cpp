#include "common/table.hpp"

#include <algorithm>
#include <cstdio>

#include "common/error.hpp"

namespace focs {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
    check(!headers_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
    check(cells.size() == headers_.size(), "row arity does not match header");
    rows_.push_back(std::move(cells));
}

std::string TextTable::num(double value, int digits) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", digits, value);
    return buf;
}

std::string TextTable::to_string() const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string>& row) {
        std::string line = "|";
        for (std::size_t c = 0; c < row.size(); ++c) {
            line += ' ';
            line += row[c];
            line.append(width[c] - row[c].size() + 1, ' ');
            line += '|';
        }
        return line + "\n";
    };

    std::string rule = "+";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        rule.append(width[c] + 2, '-');
        rule += '+';
    }
    rule += '\n';

    std::string out = rule + emit_row(headers_) + rule;
    for (const auto& row : rows_) out += emit_row(row);
    out += rule;
    return out;
}

}  // namespace focs
