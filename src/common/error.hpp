// Error handling primitives.
//
// The library reports unrecoverable misuse and malformed inputs via
// exceptions derived from focs::Error (per the C++ Core Guidelines, errors
// that cannot be handled locally are thrown, not returned).
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace focs {

/// Base class of all exceptions thrown by this library.
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when an input file / assembly source / trace is malformed.
class ParseError : public Error {
public:
    ParseError(const std::string& what, int line = 0)
        : Error(line > 0 ? "line " + std::to_string(line) + ": " + what : what), line_(line) {}

    /// 1-based source line, or 0 when unknown.
    int line() const { return line_; }

private:
    int line_ = 0;
};

/// Thrown when a simulated guest program misbehaves (bad access, no exit, ...).
class GuestError : public Error {
public:
    using Error::Error;
};

/// Throws focs::Error with source location context when `condition` is false.
/// Used for internal invariants and precondition checks.
void check(bool condition, const std::string& message,
           std::source_location loc = std::source_location::current());

}  // namespace focs
