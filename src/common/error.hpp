// Error handling primitives.
//
// The library reports unrecoverable misuse and malformed inputs via
// exceptions derived from focs::Error (per the C++ Core Guidelines, errors
// that cannot be handled locally are thrown, not returned). The fault-
// tolerant sweep runtime additionally *classifies* errors: every Error
// carries an ErrorCode so a per-cell failure can be attributed (did the
// shared artifact build fail, did this cell's evaluation fail, did a
// deadline expire, was the fault injected?) without string matching.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace focs {

/// Failure classification carried by every focs::Error. The sweep runtime
/// maps codes onto per-cell statuses (deadline/cancelled -> cancelled,
/// everything else -> failed) and JSON stamps them for post-mortems.
enum class ErrorCode {
    kUnknown = 0,    ///< unclassified (legacy throw sites, invariants)
    kArtifactBuild,  ///< a shared-artifact build (program/table/trace) failed
    kEvaluation,     ///< a grid cell's evaluation failed
    kDeadline,       ///< a deadline expired (CancellationToken)
    kCancelled,      ///< cancelled by the caller (CancellationToken)
    kInjected,       ///< deterministic fault injection (FOCS_FAULT)
    kOverloaded,     ///< admission queue full (sweep daemon shed the request)
};

/// Stable short name ("unknown"|"artifact-build"|"evaluation"|"deadline"|
/// "cancelled"|"injected"|"overloaded"), inverse of parse_error_code.
std::string error_code_name(ErrorCode code);
ErrorCode parse_error_code(const std::string& name);

/// Base class of all exceptions thrown by this library.
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& what, ErrorCode code = ErrorCode::kUnknown)
        : std::runtime_error(what), code_(code) {}

    ErrorCode code() const { return code_; }

private:
    ErrorCode code_ = ErrorCode::kUnknown;
};

/// Thrown when an input file / assembly source / trace is malformed.
class ParseError : public Error {
public:
    ParseError(const std::string& what, int line = 0)
        : Error(line > 0 ? "line " + std::to_string(line) + ": " + what : what), line_(line) {}

    /// 1-based source line, or 0 when unknown.
    int line() const { return line_; }

private:
    int line_ = 0;
};

/// Thrown when a simulated guest program misbehaves (bad access, no exit, ...).
class GuestError : public Error {
public:
    using Error::Error;
};

/// Thrown when work is abandoned via a CancellationToken: code is
/// kDeadline when the token's deadline expired, kCancelled when the caller
/// requested the stop. Runtime layers (sweep workers, the artifact cache)
/// catch this to mark cells cancelled instead of failed.
class CancelledError : public Error {
public:
    using Error::Error;
};

/// Throws focs::Error with source location context when `condition` is false.
/// Used for internal invariants and precondition checks.
void check(bool condition, const std::string& message,
           std::source_location loc = std::source_location::current());

}  // namespace focs
