// Fixed-bin histogram with summary statistics and ASCII rendering.
//
// Used for all delay/slack distributions in the reproduction (paper Figs 3,
// 5 and 7 are histograms of picosecond delays).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hpp"

namespace focs {

/// Histogram over [lo, hi) with `bins` equal-width bins. Samples outside the
/// range are clamped into the first/last bin so no data is silently dropped.
class Histogram {
public:
    Histogram(double lo, double hi, int bins);

    void add(double x, std::uint64_t weight = 1);

    /// Merges a histogram with identical binning.
    void merge(const Histogram& other);

    /// Returns a copy with `bins` coarser bins (`bins` must divide bins()).
    /// Counts are summed groupwise; the summary statistics carry over
    /// unchanged since they describe the underlying samples, not the bins.
    /// Lets a fine-grained accumulator (e.g. the streaming analyzer's
    /// figure histograms) serve figure queries at any coarser resolution.
    Histogram coarsened(int bins) const;

    double lo() const { return lo_; }
    double hi() const { return hi_; }
    int bins() const { return static_cast<int>(counts_.size()); }
    double bin_width() const { return width_; }

    std::uint64_t count(int bin) const { return counts_.at(static_cast<std::size_t>(bin)); }
    std::uint64_t total() const { return stats_.count(); }

    /// Lower edge of bin `bin`.
    double bin_lo(int bin) const { return lo_ + width_ * bin; }

    const RunningStats& stats() const { return stats_; }

    /// Value below which `q` (in [0,1]) of the mass lies, interpolated
    /// within the containing bin.
    double quantile(double q) const;

    /// Multi-line ASCII bar chart; `width` is the maximum bar length.
    /// Empty leading/trailing bins are elided.
    std::string render_ascii(int width = 60) const;

private:
    double lo_;
    double hi_;
    double width_;
    double inv_width_;  ///< 1 / width, hoisting the divide out of add()
    std::vector<std::uint64_t> counts_;
    RunningStats stats_;
};

}  // namespace focs
