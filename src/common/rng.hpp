// Deterministic pseudo-random number generation.
//
// All stochastic components of the library (synthetic netlist generation,
// semi-random test programs, data-dependent delay jitter) draw from these
// generators so that a fixed seed reproduces byte-identical results on every
// platform. std::mt19937 is avoided because distribution implementations are
// not portable across standard libraries.
#pragma once

#include <cstdint>

namespace focs {

/// SplitMix64: used for seeding and for stateless hash-style sampling.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/// xoshiro256** — fast, high-quality 64-bit PRNG with explicit state.
class Rng {
public:
    explicit Rng(std::uint64_t seed = 0x5eedf0c5ULL) {
        std::uint64_t x = seed;
        for (auto& word : state_) {
            x = splitmix64(x);
            word = x;
        }
    }

    /// Next raw 64-bit value.
    std::uint64_t next_u64() {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Uniform 32-bit value.
    std::uint32_t next_u32() { return static_cast<std::uint32_t>(next_u64() >> 32); }

    /// Uniform integer in [0, bound) for bound >= 1.
    std::uint64_t next_below(std::uint64_t bound) { return next_u64() % bound; }

    /// Uniform integer in [lo, hi] inclusive.
    std::int64_t next_range(std::int64_t lo, std::int64_t hi) {
        return lo + static_cast<std::int64_t>(next_below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /// Uniform double in [0, 1).
    double next_double() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

    /// Uniform double in [lo, hi).
    double next_double(double lo, double hi) { return lo + (hi - lo) * next_double(); }

    /// True with probability `p`.
    bool next_bool(double p) { return next_double() < p; }

private:
    static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4] = {};
};

/// Stateless uniform double in [0,1) derived from a hash of `key`.
/// Used where a delay sample must depend only on (path, cycle, operands)
/// and not on evaluation order.
constexpr double hash_unit_double(std::uint64_t key) {
    return static_cast<double>(splitmix64(key) >> 11) * 0x1.0p-53;
}

}  // namespace focs
