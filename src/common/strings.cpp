#include "common/strings.hpp"

#include <cctype>

namespace focs {

namespace {
bool is_space(char c) { return std::isspace(static_cast<unsigned char>(c)) != 0; }
}  // namespace

std::string_view trim(std::string_view s) {
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && is_space(s[b])) ++b;
    while (e > b && is_space(s[e - 1])) --e;
    return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, char sep) {
    std::vector<std::string> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == sep) {
            out.emplace_back(trim(s.substr(start, i - start)));
            start = i + 1;
        }
    }
    return out;
}

std::vector<std::string> split_whitespace(std::string_view s) {
    std::vector<std::string> out;
    std::size_t i = 0;
    while (i < s.size()) {
        while (i < s.size() && is_space(s[i])) ++i;
        std::size_t start = i;
        while (i < s.size() && !is_space(s[i])) ++i;
        if (i > start) out.emplace_back(s.substr(start, i - start));
    }
    return out;
}

std::string to_lower(std::string_view s) {
    std::string out(s);
    for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
    return s.substr(0, prefix.size()) == prefix;
}

std::optional<std::int64_t> parse_int(std::string_view s) {
    s = trim(s);
    if (s.empty()) return std::nullopt;
    bool negative = false;
    if (s[0] == '-' || s[0] == '+') {
        negative = s[0] == '-';
        s.remove_prefix(1);
        if (s.empty()) return std::nullopt;
    }
    int base = 10;
    if (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
        base = 16;
        s.remove_prefix(2);
    } else if (s.size() > 2 && s[0] == '0' && (s[1] == 'b' || s[1] == 'B')) {
        base = 2;
        s.remove_prefix(2);
    }
    if (s.empty()) return std::nullopt;

    std::uint64_t value = 0;
    for (char c : s) {
        int digit;
        if (c >= '0' && c <= '9') digit = c - '0';
        else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
        else if (c >= 'A' && c <= 'F') digit = c - 'A' + 10;
        else return std::nullopt;
        if (digit >= base) return std::nullopt;
        const std::uint64_t next = value * static_cast<std::uint64_t>(base) + static_cast<std::uint64_t>(digit);
        if (next < value) return std::nullopt;  // overflow
        value = next;
    }
    // Accept the full uint32 range for hex constants and the int64 range otherwise.
    if (value > 0x8000000000000000ULL) return std::nullopt;
    const auto magnitude = static_cast<std::int64_t>(value & 0x7fffffffffffffffULL);
    if (negative) return -magnitude - static_cast<std::int64_t>(value >> 63);
    if (value >> 63) return std::nullopt;
    return magnitude;
}

}  // namespace focs
